// Command procstat renders the traces procsim writes: per-operation
// latency histograms, per-component cost breakdowns, and a model-drift
// summary, all in simulated milliseconds.
//
// Usage:
//
//	procsim -trace out.jsonl            # record a trace
//	procstat out.jsonl                  # summarize it
//	procstat -run ci out.jsonl          # one strategy run only
//	procstat -span op.query out.jsonl   # one span name only
//	procstat -chrome t.json out.jsonl   # export for chrome://tracing
//	procstat -flight dump.jsonl         # render a flight-recorder dump
//	procstat -concurrent BENCH_concurrent.json  # session-ladder table
//	procstat -scenarios BENCH_scenarios.json    # hostile-workload winner regions
//
// Multiple trace files aggregate: histograms and drift entries accumulate
// across all of them, so a directory of per-seed traces summarizes as one
// distribution.
//
// With -flight the inputs are flight-recorder dumps instead (written by
// procsim -flight on a watchdog/violation/fault trigger, or fetched from
// a live /events endpoint): procstat renders the event timeline — marking
// the serializability oracle's minimal non-serializable window when the
// dump carries a violation — plus any lock-contention records.
//
// With -concurrent the inputs are BENCH_concurrent.json reports (written
// by procbench -concurrent-json): procstat renders the session ladder per
// strategy and model, contrasting the measured wall speedup — which
// includes overlapped think time — against the latch-free schedule bound
// (wall_parallel_speedup), and flags projected rows measured on fewer
// cores than sessions. Reports written with procbench -serve carry an
// extra served column: the same cell measured through procserved over
// the database/sql driver, wire round-trips included (docs/SERVING.md).
//
// With -scenarios the inputs are BENCH_scenarios.json reports (written by
// procbench -scenarios-json): procstat renders the hostile-workload
// winner-region table — which strategy wins each scenario × model cell,
// by what margin, and whether the hostile conditions flipped the polite
// workload's verdict — followed by the per-strategy cost grid
// (docs/SCENARIOS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dbproc/internal/experiments"
	"dbproc/internal/obs"
	"dbproc/internal/telemetry"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "procstat: "+format+"\n", args...)
	os.Exit(1)
}

// splitName mirrors the tracer's span-name convention: the component is
// the part before the first dot.
func splitName(name string) (comp, event string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

func main() {
	runFilter := flag.String("run", "", "restrict to one run label (e.g. ci, uc-rvm)")
	spanFilter := flag.String("span", "", "restrict histograms to one span name (e.g. op.query)")
	chromePath := flag.String("chrome", "", "also write a Chrome trace-event file (chrome://tracing, perfetto)")
	flight := flag.Bool("flight", false, "treat inputs as flight-recorder dumps and render event timelines")
	concurrent := flag.Bool("concurrent", false, "treat inputs as BENCH_concurrent.json reports and render session-ladder tables")
	scenarios := flag.Bool("scenarios", false, "treat inputs as BENCH_scenarios.json reports and render winner-region tables")
	topK := flag.Int("topk", 10, "locks shown per contention report in -flight mode (0 = all)")
	driftThreshold := flag.Float64("drift-threshold", obs.DefaultDriftThreshold,
		"relative error above which measured cost is flagged as drifting from the model")
	flag.Parse()

	if flag.NArg() == 0 {
		fail("no trace files (usage: procstat [flags] trace.jsonl...)")
	}

	if *flight {
		renderFlight(flag.Args(), *topK)
		return
	}
	if *concurrent {
		renderConcurrent(flag.Args())
		return
	}
	if *scenarios {
		renderScenarios(flag.Args())
		return
	}

	merged := &obs.Trace{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		tr, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			fail("%s: %v", path, err)
		}
		merged.Spans = append(merged.Spans, tr.Spans...)
		merged.Runs = append(merged.Runs, tr.Runs...)
		merged.Breakdowns = append(merged.Breakdowns, tr.Breakdowns...)
	}

	keepRun := func(run string) bool { return *runFilter == "" || run == *runFilter }

	// Run summaries and the drift monitor.
	drift := obs.NewDrift(*driftThreshold)
	nRuns := 0
	fmt.Printf("%-12s %-22s %-8s %8s %8s %12s %12s %6s\n",
		"run", "strategy", "model", "queries", "updates", "measured", "predicted", "cold")
	for _, r := range merged.Runs {
		if !keepRun(r.Run) {
			continue
		}
		nRuns++
		drift.Record(r.Strategy, r.Model, r.MeasuredMsPerQuery, r.PredictedMsPerQuery)
		cold := "n/a"
		if r.ColdFraction != nil {
			cold = fmt.Sprintf("%.2f", *r.ColdFraction)
		}
		fmt.Printf("%-12s %-22s %-8s %8d %8d %9.1f ms %9.1f ms %6s\n",
			r.Run, r.Strategy, r.Model, r.Queries, r.Updates,
			r.MeasuredMsPerQuery, r.PredictedMsPerQuery, cold)
	}
	if nRuns == 0 {
		fmt.Println("(no run records)")
	}

	// Per-span latency histograms, keyed component.event like the live
	// registry.
	reg := obs.NewRegistry()
	nSpans := 0
	for _, sp := range merged.Spans {
		if !keepRun(sp.Run) {
			continue
		}
		if *spanFilter != "" && sp.Name != *spanFilter {
			continue
		}
		nSpans++
		comp, event := splitName(sp.Name)
		reg.Observe(comp, event, sp.DurMs)
	}
	if nSpans > 0 {
		fmt.Printf("\nper-operation latency, %d spans (simulated ms):\n\n", nSpans)
		reg.Render(os.Stdout)
	}

	// Per-component breakdowns.
	for _, bd := range merged.Breakdowns {
		if !keepRun(bd.Run) {
			continue
		}
		fmt.Printf("\nbreakdown [%s]:\n", bd.Run)
		obs.RenderBreakdownRecord(os.Stdout, bd)
	}

	if nRuns > 0 {
		fmt.Println()
		drift.Render(os.Stdout)
	}

	if *chromePath != "" {
		var spans []obs.SpanRecord
		for _, sp := range merged.Spans {
			if keepRun(sp.Run) {
				spans = append(spans, sp)
			}
		}
		f, err := os.Create(*chromePath)
		if err != nil {
			fail("%v", err)
		}
		if err := obs.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			fail("writing chrome trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("\nchrome trace written to %s\n", *chromePath)
	}
}

// renderConcurrent renders multi-session engine benchmark reports: one
// ladder table per file, with the measured speedup (think overlap
// included) next to the latch-free schedule bound. Rows whose bound is
// projected — more sessions than host cores — carry a "~" so the reader
// knows measured throughput could not corroborate it there.
func renderConcurrent(paths []string) {
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		var rep experiments.ConcurrentBenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			fail("%s: %v", path, err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s: cores=%d scale=%g seed=%d think=%gms ops=%d\n",
			path, rep.Cores, rep.Scale, rep.Seed, rep.ThinkMeanMs, rep.Ops)
		fmt.Printf("%-22s %-8s %8s %-18s %12s %9s %11s", "strategy", "model", "clients", "scenario", "ops/sec", "speedup", "latch-free")
		if rep.Served {
			fmt.Printf(" %12s", "served")
		}
		fmt.Printf(" %10s %10s %-16s %5s\n", "p50 us", "p95 us", "acc-wait 2pl→mvcc", "seq")
		hasDelta := false
		for _, row := range rep.Rows {
			bound := fmt.Sprintf("%.2fx", row.WallParallelSpeedup)
			if row.Projected {
				bound = "~" + bound
			}
			seq := ""
			if row.MatchesSequential {
				seq = "=sim"
			}
			if row.ServedMatchesSequential {
				seq += "=srv"
			}
			scenario := row.Scenario
			if scenario == "" {
				scenario = "polite"
			}
			// The before/after wait-share delta: contention rows carry a
			// paired pure-2PL measurement next to the MVCC one.
			wait := fmt.Sprintf("%.1f%%", 100*row.AccessWaitShare)
			if row.AccessWaitShare2PL > 0 {
				wait = fmt.Sprintf("%.1f%% → %.1f%%",
					100*row.AccessWaitShare2PL, 100*row.AccessWaitShare)
				hasDelta = true
			}
			fmt.Printf("%-22s %-8s %8d %-18s %12.1f %8.2fx %11s",
				row.Strategy, row.Model, row.Clients, scenario, row.ThroughputOps,
				row.Speedup, bound)
			if rep.Served {
				if row.WallServedOps > 0 {
					fmt.Printf(" %12.1f", row.WallServedOps)
				} else {
					fmt.Printf(" %12s", "-")
				}
			}
			fmt.Printf(" %10.1f %10.1f %-16s %5s\n", row.P50LatencyUs, row.P95LatencyUs, wait, seq)
		}
		note := `speedup counts overlapped think time; latch-free is the schedule bound over
the committed history's 2PL conflicts ("~" = projected: sessions exceed cores).`
		if hasDelta {
			note += `
acc-wait is the share of query wall time spent waiting on locks; contention rows
show the pure-2PL figure (before) against the MVCC snapshot read path (after).`
		}
		if rep.Served {
			note += `
served is measured ops/sec through procserved over the database/sql driver
(wire round-trips included); "=srv" marks served 1-client rows byte-equal to sim.Run.`
		}
		fmt.Println(note)
	}
}

// renderScenarios renders hostile-workload scenario benchmark reports:
// the winner-region table first — one row per scenario × model with the
// winning strategy, its margin over the runner-up, the caching-only
// winner by ledger evidence, and a FLIP mark where hostile traffic
// dethrones the polite workload's winner — then the full per-strategy
// cost grid the verdicts were derived from.
func renderScenarios(paths []string) {
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		var rep experiments.ScenarioBenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			fail("%s: %v", path, err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s: scale=%g seed=%d seeds/cell=%d scenarios=%d\n\n",
			path, rep.Scale, rep.Seed, rep.SeedsPerCell, len(rep.Scenarios))

		fmt.Printf("%-18s %-8s %-22s %8s %-22s %-22s %5s\n",
			"scenario", "model", "winner", "margin", "runner-up", "caching winner", "")
		for _, v := range rep.Verdicts {
			flip := ""
			if v.Flipped {
				flip = "FLIP"
			}
			fmt.Printf("%-18s %-8s %-22s %7.1f%% %-22s %-22s %5s\n",
				v.Scenario, v.Model, v.Winner, v.MarginPct, v.RunnerUp, v.CachingWinner, flip)
		}
		fmt.Println(`margin is the runner-up's mean cost over the winner's; FLIP marks scenarios
whose winner differs from the polite baseline's for the same model.`)

		fmt.Printf("\n%-18s %-8s %-22s %10s %12s %12s %8s\n",
			"scenario", "model", "strategy", "ms/query", "total ms", "ledger ms", "wasted")
		for _, r := range rep.Rows {
			ledger, wasted := "-", "-"
			if r.LedgerEventMs != nil {
				ledger = fmt.Sprintf("%.1f", *r.LedgerEventMs)
			}
			if r.WastedWorkMs != nil {
				wasted = fmt.Sprintf("%.1f", *r.WastedWorkMs)
			}
			fmt.Printf("%-18s %-8s %-22s %10.1f %12.1f %12s %8s\n",
				r.Scenario, r.Model, r.Strategy, r.MsPerQuery, r.TotalMs, ledger, wasted)
		}
	}
}

// renderFlight renders flight-recorder dumps: each dump's header, its
// event timeline — rows whose commit sequence the serializability oracle
// reported blocked are flagged with "*", aligning the minimal
// non-serializable window against the schedule that produced it — and
// any lock-contention records riding in the dump.
func renderFlight(paths []string, topK int) {
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		d, err := telemetry.ReadDump(f)
		f.Close()
		if err != nil {
			fail("%s: %v", path, err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s:\n", path)
		var dropped int64
		for _, h := range d.Headers {
			dropped = h.Dropped
			when := ""
			if h.StartUnixNs > 0 {
				when = ", recorder started " + time.Unix(0, h.StartUnixNs).UTC().Format(time.RFC3339)
			}
			fmt.Printf("dump reason %q: %d events, %d dropped%s\n", h.Reason, h.Events, h.Dropped, when)
		}

		violations := d.Violations()
		blocked := map[int]bool{}
		for _, v := range violations {
			for _, s := range v.Seqs {
				blocked[s] = true
			}
		}
		var mark func(telemetry.Event) bool
		if len(blocked) > 0 {
			mark = func(ev telemetry.Event) bool { return ev.Seq >= 0 && blocked[ev.Seq] }
			fmt.Println("rows marked * belong to the minimal non-serializable window")
		}
		telemetry.WriteTimeline(os.Stdout, d.Events, dropped, mark)

		for _, v := range violations {
			fmt.Printf("\nserializability violation (blocked seqs %v):\n%s\n", v.Seqs, v.Detail)
		}
		for _, cr := range d.Contention {
			fmt.Println()
			telemetry.RenderContention(os.Stdout, cr, topK)
		}
	}
}
