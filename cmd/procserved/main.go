// Command procserved serves the database-procedure system over the
// framed wire protocol (docs/SERVING.md): any Go program can reach it
// with sql.Open("dbproc", addr), and the bench harness can drive engine
// worlds through it to measure served wall-clock throughput.
//
// Usage:
//
//	procserved                            # listen on 127.0.0.1:7141
//	procserved -listen :7141              # all interfaces
//	procserved -telemetry 127.0.0.1:9141  # live /metrics, /events, /debug/pprof
//	procserved -flight flight.jsonl       # flight dump on fault
//	procserved -trace server.jsonl        # server-side wire spans (docs/TRACING.md)
//	procserved -max-conns 16              # admission bound
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dbproc/internal/obs"
	"dbproc/internal/server"
	"dbproc/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7141", "address to serve the wire protocol on")
	telemetryAddr := flag.String("telemetry", "", "address for the live ops endpoint (/metrics, /events, /debug/pprof); empty disables")
	flight := flag.String("flight", "", "flight-recorder auto-dump file (JSONL); empty disables the recorder")
	trace := flag.String("trace", "", "server-side wire-span file (JSONL, one span per sampled traced request); empty disables")
	maxConns := flag.Int("max-conns", 64, "maximum concurrently open connections")
	maxWorlds := flag.Int("max-worlds", 8, "maximum concurrently open bench worlds")
	page := flag.Int("page", 0, "pager page size for the shared session (0 = paper default, 4000)")
	width := flag.Int("width", 0, "default tuple width for the shared session (0 = paper default, 100)")
	drainTimeout := flag.Duration("drain", 10*time.Second, "graceful drain timeout on SIGINT/SIGTERM")
	flag.Parse()

	opt := server.Options{
		MaxConns:  *maxConns,
		MaxWorlds: *maxWorlds,
		PageSize:  *page,
		Width:     *width,
	}
	var rec *telemetry.Recorder
	if *flight != "" || *telemetryAddr != "" {
		rec = telemetry.NewRecorder(4096)
		if *flight != "" {
			rec.SetAutoDumpFile(*flight)
		}
		opt.Recorder = rec
	}
	var traceFile *os.File
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procserved: trace: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		opt.TraceSink = obs.NewWireSpanSink(f)
		th := telemetry.DefaultThresholds()
		opt.Detect = &th
	}
	srv := server.New(opt)

	hub := telemetry.NewHub()
	if *telemetryAddr != "" {
		hub.SetSource(srv)
		hub.SetRecorder(rec)
		if _, err := hub.ListenAndServe(*telemetryAddr); err != nil {
			fmt.Fprintf(os.Stderr, "procserved: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer hub.Close()
	}

	addr, err := srv.ListenAndServe(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "procserved: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "procserved: listening on %s\n", addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	fmt.Fprintln(os.Stderr, "procserved: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "procserved: drain: %v\n", err)
	}
	if traceFile != nil {
		fmt.Fprintf(os.Stderr, "procserved: wrote %d wire spans to %s\n", opt.TraceSink.Count(), *trace)
		traceFile.Close()
	}
	fmt.Fprintln(os.Stderr, "procserved: bye")
}
