package main

import (
	"strings"
	"testing"

	"dbproc/internal/telemetry"
)

// TestParseMetricsRoundTrip feeds the parser exactly what the hub's
// exposition writer produces, including escaped label values.
func TestParseMetricsRoundTrip(t *testing.T) {
	var b strings.Builder
	telemetry.WriteMetrics(&b, []telemetry.Metric{
		telemetry.Gauge("dbproc_up", "Up.", 1, nil),
		telemetry.Counter("dbproc_lock_wait_seconds_total", "Wait.", 0.25,
			map[string]string{"lock": "rel:r1"}),
		telemetry.Counter("dbproc_lock_wait_seconds_total", "Wait.", 1.5,
			map[string]string{"lock": `we"ird\`}),
	})
	m := metricSet{parseMetrics(b.String())}
	if v, ok := m.value("dbproc_up"); !ok || v != 1 {
		t.Fatalf("dbproc_up = %v, %v", v, ok)
	}
	waits := m.byLabel("dbproc_lock_wait_seconds_total", "lock")
	if waits["rel:r1"] != 0.25 {
		t.Fatalf("rel:r1 wait = %v (set: %v)", waits["rel:r1"], waits)
	}
	if waits[`we"ird\`] != 1.5 {
		t.Fatalf("escaped label lost: %v", waits)
	}
}

func TestParseMetricsSkipsGarbage(t *testing.T) {
	got := parseMetrics("# HELP x y\nnot a metric line\nx nan-ish\nok 2\n")
	if len(got) != 1 || got[0].name != "ok" || got[0].value != 2 {
		t.Fatalf("parsed %+v", got)
	}
}

// TestRenderFrame exercises one dashboard frame end to end: parsed
// metrics plus an event tail must render the headline counters, the lock
// table and the timeline without panicking.
func TestRenderFrame(t *testing.T) {
	var b strings.Builder
	telemetry.WriteMetrics(&b, []telemetry.Metric{
		telemetry.Gauge("dbproc_sessions", "", 8, nil),
		telemetry.Counter("dbproc_ops_committed_total", "", 40, nil),
		telemetry.Counter("dbproc_lock_wait_seconds_total", "", 0.002,
			map[string]string{"lock": "rel:r1"}),
		telemetry.Counter("dbproc_lock_acquires_total", "", 40,
			map[string]string{"lock": "rel:r1"}),
		telemetry.Gauge("dbproc_op_latency_wall_ns", "", 1500,
			map[string]string{"quantile": "0.5"}),
	})
	dump := &telemetry.Dump{Events: []telemetry.Event{
		{Kind: telemetry.EvOpCommit, Session: 1, Seq: 3, Name: "update"},
	}}
	var out strings.Builder
	render(&out, "http://x", metricSet{parseMetrics(b.String())}, dump, false, false, false)
	for _, want := range []string{"committed ops", "rel:r1", "op.commit", "p50=1.5us"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("frame missing %q:\n%s", want, out.String())
		}
	}
}

// TestRenderBlamePanel feeds the -blame panel the critpath and blame
// series the engine exports under -critpath and checks the segment split
// and the (lock, holder session, holder op) table come out.
func TestRenderBlamePanel(t *testing.T) {
	var b strings.Builder
	telemetry.WriteMetrics(&b, []telemetry.Metric{
		telemetry.Counter("dbproc_critpath_seconds_total", "", 0.003, map[string]string{"segment": "lock_wait"}),
		telemetry.Counter("dbproc_critpath_seconds_total", "", 0.007, map[string]string{"segment": "compute"}),
		telemetry.Counter("dbproc_blame_wait_seconds_total", "", 0.002,
			map[string]string{"lock": "rel:r1", "holder_session": "3", "holder_op": "update"}),
		telemetry.Counter("dbproc_blame_waits_total", "", 5,
			map[string]string{"lock": "rel:r1", "holder_session": "3", "holder_op": "update"}),
		telemetry.Counter("dbproc_blame_wait_seconds_total", "", 0.001,
			map[string]string{"lock": "proc:9", "holder_session": "0", "holder_op": "query proc:9"}),
	})
	var out strings.Builder
	render(&out, "http://x", metricSet{parseMetrics(b.String())}, nil, false, true, false)
	for _, want := range []string{
		"critical path:", "lock_wait=3.00ms (30%)", "compute=7.00ms (70%)",
		"blamed lock", "session 3 (update)", "rel:r1", "proc:9",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("blame panel missing %q:\n%s", want, out.String())
		}
	}
	// The top blocker row must carry its wait count.
	if !strings.Contains(out.String(), "5") {
		t.Fatalf("wait count missing:\n%s", out.String())
	}

	// Without the series, the panel says what to enable instead of
	// rendering an empty table.
	out.Reset()
	render(&out, "http://x", metricSet{}, nil, false, true, false)
	if !strings.Contains(out.String(), "-critpath") {
		t.Fatalf("missing-series hint absent:\n%s", out.String())
	}
}

// TestRenderServingPanel feeds the -serving panel procserved's counter
// and per-type quantile series and checks the latency table comes out.
func TestRenderServingPanel(t *testing.T) {
	var b strings.Builder
	lbl := func(q string) map[string]string { return map[string]string{"type": "stmt", "quantile": q} }
	telemetry.WriteMetrics(&b, []telemetry.Metric{
		telemetry.Gauge("dbproc_server_connections", "", 3, nil),
		telemetry.Counter("dbproc_server_requests_total", "", 120, nil),
		telemetry.Counter("dbproc_server_cancels_total", "", 2, nil),
		telemetry.Counter("dbproc_server_request_seconds_count", "", 100, map[string]string{"type": "stmt"}),
		telemetry.Gauge("dbproc_server_request_seconds", "", 0.001, lbl("0.5")),
		telemetry.Gauge("dbproc_server_request_seconds", "", 0.002, lbl("0.9")),
		telemetry.Gauge("dbproc_server_request_seconds", "", 0.003, lbl("0.95")),
		telemetry.Gauge("dbproc_server_request_seconds", "", 0.004, lbl("0.99")),
	})
	var out strings.Builder
	render(&out, "http://x", metricSet{parseMetrics(b.String())}, nil, false, false, true)
	for _, want := range []string{
		"serving:", "conns=3", "requests=120", "cancels=2",
		"stmt", "1.00ms", "4.00ms",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("serving panel missing %q:\n%s", want, out.String())
		}
	}

	// Without the series, the panel names what is missing.
	out.Reset()
	render(&out, "http://x", metricSet{}, nil, false, false, true)
	if !strings.Contains(out.String(), "procserved") {
		t.Fatalf("missing-series hint absent:\n%s", out.String())
	}
}
