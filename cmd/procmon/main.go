// Command procmon watches a running procsim/procbench process through its
// -listen telemetry endpoints: it polls /metrics and /events and renders a
// refreshing terminal dashboard of session activity, per-lock contention
// and operation-latency quantiles (docs/TELEMETRY.md).
//
// Usage:
//
//	procsim -clients 8 -listen :9090 &    # the process under observation
//	procmon -addr http://localhost:9090   # refreshing dashboard
//	procmon -addr ... -interval 2s -n 10  # 10 polls, 2s apart
//	procmon -addr ... -raw                # one poll, raw /metrics text
//	procmon -addr ... -tail 64            # last 64 flight events as JSONL
//	procmon -addr ... -blame              # + critical-path split and top blockers
//	procmon -addr ... -serving            # + served request-type latency quantiles
//
// -raw prints a single scrape verbatim and exits; -tail fetches the
// flight recorder's newest events as JSONL, ready to pipe into
// `procstat -flight`. Both are the scriptable modes scripts/verify.sh's
// telemetry smoke test uses.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"dbproc/internal/telemetry"
)

// sample is one parsed Prometheus text-exposition sample.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseMetrics parses Prometheus text exposition format: comment lines
// are skipped, every other line is `name[{labels}] value`. Lines that do
// not parse are ignored — the dashboard renders what it understands.
func parseMetrics(text string) []sample {
	var out []sample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		s := sample{name: line[:sp], value: v}
		if i := strings.IndexByte(s.name, '{'); i >= 0 {
			s.labels = parseLabels(s.name[i:])
			s.name = s.name[:i]
		}
		out = append(out, s)
	}
	return out
}

// parseLabels parses `{k="v",...}`, undoing the exposition escapes.
func parseLabels(s string) map[string]string {
	labels := map[string]string{}
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	for len(s) > 0 {
		eq := strings.Index(s, `="`)
		if eq < 0 {
			break
		}
		key := s[:eq]
		s = s[eq+2:]
		var b strings.Builder
		for i := 0; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			if s[i] == '"' {
				s = strings.TrimPrefix(s[i+1:], ",")
				break
			}
			b.WriteByte(s[i])
		}
		labels[key] = b.String()
	}
	return labels
}

// metricSet indexes one scrape for dashboard lookups.
type metricSet struct {
	samples []sample
}

func (m metricSet) value(name string) (float64, bool) {
	for _, s := range m.samples {
		if s.name == name {
			return s.value, true
		}
	}
	return 0, false
}

func (m metricSet) byLabel(name, label string) map[string]float64 {
	out := map[string]float64{}
	for _, s := range m.samples {
		if s.name == name {
			out[s.labels[label]] = s.value
		}
	}
	return out
}

// samplesOf returns every sample of a multi-label series, for panels
// that key on more than one label (the blame table keys on lock +
// holder_session + holder_op).
func (m metricSet) samplesOf(name string) []sample {
	var out []sample
	for _, s := range m.samples {
		if s.name == name {
			out = append(out, s)
		}
	}
	return out
}

func fetch(ctx context.Context, client *http.Client, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return string(body), nil
}

// render draws one dashboard frame from a scrape and an event tail.
// blame adds the causal-diagnosis panel (critical-path split plus top
// blockers) fed by the dbproc_critpath_* / dbproc_blame_* series.
func render(w io.Writer, addr string, m metricSet, dump *telemetry.Dump, clear, blame, serving bool) {
	if clear {
		fmt.Fprint(w, "\x1b[H\x1b[2J")
	}
	fmt.Fprintf(w, "dbproc procmon — %s\n\n", addr)

	row := func(label, name, unit string) {
		if v, ok := m.value(name); ok {
			fmt.Fprintf(w, "  %-22s %12g %s\n", label, v, unit)
		}
	}
	row("sessions", "dbproc_sessions", "")
	row("inflight ops", "dbproc_sessions_inflight", "")
	row("committed ops", "dbproc_ops_committed_total", "")
	row("goroutines", "dbproc_goroutines", "")
	row("flight events", "dbproc_flight_events_total", "")

	for _, dom := range []struct{ name, label, unit string }{
		{"dbproc_op_latency_wall_ns", "op latency (wall)", "us"},
		{"dbproc_op_latency_sim_ms", "op latency (sim)", "ms"},
	} {
		qs := m.byLabel(dom.name, "quantile")
		if len(qs) == 0 {
			continue
		}
		keys := make([]string, 0, len(qs))
		for q := range qs {
			keys = append(keys, q)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "\n  %s:", dom.label)
		for _, q := range keys {
			v := qs[q]
			if dom.unit == "us" {
				v /= 1e3
			}
			p := q
			if f, err := strconv.ParseFloat(q, 64); err == nil {
				p = strconv.FormatFloat(100*f, 'g', -1, 64)
			}
			fmt.Fprintf(w, "  p%s=%.1f%s", p, v, dom.unit)
		}
		fmt.Fprintln(w)
	}

	// Top locks by accumulated wait.
	waits := m.byLabel("dbproc_lock_wait_seconds_total", "lock")
	if len(waits) > 0 {
		acquires := m.byLabel("dbproc_lock_acquires_total", "lock")
		contended := m.byLabel("dbproc_lock_contended_total", "lock")
		holds := m.byLabel("dbproc_lock_hold_seconds_total", "lock")
		names := make([]string, 0, len(waits))
		for n := range waits {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if waits[names[i]] != waits[names[j]] {
				return waits[names[i]] > waits[names[j]]
			}
			return names[i] < names[j]
		})
		if len(names) > 8 {
			names = names[:8]
		}
		fmt.Fprintf(w, "\n  %-16s %9s %9s %10s %10s\n", "lock", "acquires", "contended", "wait", "hold")
		for _, n := range names {
			fmt.Fprintf(w, "  %-16s %9.0f %9.0f %8.2fms %8.2fms\n",
				n, acquires[n], contended[n], waits[n]*1e3, holds[n]*1e3)
		}
	}

	if blame {
		renderBlame(w, m)
	}

	if serving {
		renderServing(w, m)
	}

	if dump != nil && len(dump.Events) > 0 {
		fmt.Fprintln(w)
		telemetry.WriteTimeline(w, dump.Events, 0, nil)
	}
}

// renderBlame draws the causal diagnosis panel: the critical-path
// segment split and the top blockers by attributed wall-clock wait.
// Both series exist only when the observed process runs with critical
// path profiling on (procsim -critpath; docs/DIAGNOSIS.md).
func renderBlame(w io.Writer, m metricSet) {
	segs := m.byLabel("dbproc_critpath_seconds_total", "segment")
	if len(segs) > 0 {
		var total float64
		for _, v := range segs {
			total += v
		}
		fmt.Fprintf(w, "\n  critical path:")
		for _, name := range []string{"lock_wait", "io", "recompute", "compute"} {
			v, ok := segs[name]
			if !ok {
				continue
			}
			share := 0.0
			if total > 0 {
				share = 100 * v / total
			}
			fmt.Fprintf(w, "  %s=%.2fms (%.0f%%)", name, v*1e3, share)
		}
		fmt.Fprintln(w)
	}

	waits := m.samplesOf("dbproc_blame_wait_seconds_total")
	if len(waits) == 0 {
		if len(segs) == 0 {
			fmt.Fprintf(w, "\n  blame: no critical-path series (run the observed process with -critpath)\n")
		}
		return
	}
	counts := map[string]float64{}
	for _, s := range m.samplesOf("dbproc_blame_waits_total") {
		counts[s.labels["lock"]+"\x00"+s.labels["holder_session"]+"\x00"+s.labels["holder_op"]] = s.value
	}
	sort.Slice(waits, func(i, j int) bool {
		if waits[i].value != waits[j].value {
			return waits[i].value > waits[j].value
		}
		return waits[i].labels["lock"] < waits[j].labels["lock"]
	})
	if len(waits) > 8 {
		waits = waits[:8]
	}
	fmt.Fprintf(w, "\n  %-16s %-24s %7s %10s\n", "blamed lock", "holder", "waits", "wait")
	for _, s := range waits {
		lock := s.labels["lock"]
		holder := fmt.Sprintf("session %s (%s)", s.labels["holder_session"], s.labels["holder_op"])
		n := counts[lock+"\x00"+s.labels["holder_session"]+"\x00"+s.labels["holder_op"]]
		fmt.Fprintf(w, "  %-16s %-24s %7.0f %8.2fms\n", lock, holder, n, s.value*1e3)
	}
}

// renderServing draws the served-path panel from procserved's
// dbproc_server_* series: the connection/request counters and, per
// request type, the P² service-time quantiles
// (dbproc_server_request_seconds{type,quantile}).
func renderServing(w io.Writer, m metricSet) {
	fmt.Fprintf(w, "\n  serving:")
	for _, c := range []struct{ label, name string }{
		{"conns", "dbproc_server_connections"},
		{"requests", "dbproc_server_requests_total"},
		{"errors", "dbproc_server_errors_total"},
		{"cancels", "dbproc_server_cancels_total"},
		{"worlds", "dbproc_server_worlds_open"},
	} {
		if v, ok := m.value(c.name); ok {
			fmt.Fprintf(w, "  %s=%g", c.label, v)
		}
	}
	fmt.Fprintln(w)

	counts := m.byLabel("dbproc_server_request_seconds_count", "type")
	byType := map[string]map[string]float64{}
	for _, s := range m.samplesOf("dbproc_server_request_seconds") {
		typ := s.labels["type"]
		if byType[typ] == nil {
			byType[typ] = map[string]float64{}
		}
		byType[typ][s.labels["quantile"]] = s.value
	}
	if len(byType) == 0 {
		fmt.Fprintf(w, "  serving: no dbproc_server_request_seconds series (is the observed process procserved?)\n")
		return
	}
	types := make([]string, 0, len(byType))
	for typ := range byType {
		types = append(types, typ)
	}
	sort.Slice(types, func(i, j int) bool {
		if counts[types[i]] != counts[types[j]] {
			return counts[types[i]] > counts[types[j]]
		}
		return types[i] < types[j]
	})
	fmt.Fprintf(w, "\n  %-14s %9s %10s %10s %10s %10s\n", "request", "count", "p50", "p90", "p95", "p99")
	for _, typ := range types {
		qs := byType[typ]
		fmt.Fprintf(w, "  %-14s %9.0f %8.2fms %8.2fms %8.2fms %8.2fms\n",
			typ, counts[typ], qs["0.5"]*1e3, qs["0.9"]*1e3, qs["0.95"]*1e3, qs["0.99"]*1e3)
	}
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9090", "base URL of the -listen telemetry endpoint")
	interval := flag.Duration("interval", time.Second, "polling interval")
	polls := flag.Int("n", 0, "number of polls before exiting (0 = until interrupted)")
	events := flag.Int("events", 8, "flight-recorder events to tail per frame (0 = none)")
	raw := flag.Bool("raw", false, "poll /metrics once, print the raw scrape, and exit")
	tail := flag.Int("tail", 0, "fetch the last K flight events as raw JSONL and exit (pipe into procstat -flight)")
	blame := flag.Bool("blame", false, "add the causal-diagnosis panel: critical-path split and top blockers (needs -critpath on the observed process)")
	serving := flag.Bool("serving", false, "add the served-path panel: connection counters and per-request-type service-time quantiles (observe procserved -telemetry)")
	flag.Parse()

	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *raw || *tail > 0 {
		url := base + "/metrics"
		if *tail > 0 {
			url = fmt.Sprintf("%s/events?n=%d", base, *tail)
		}
		body, err := fetch(ctx, client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procmon: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(body)
		return
	}

	for n := 0; *polls <= 0 || n < *polls; n++ {
		if n > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(*interval):
			}
		}
		body, err := fetch(ctx, client, base+"/metrics")
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "procmon: %v\n", err)
			os.Exit(1)
		}
		var dump *telemetry.Dump
		if *events > 0 {
			if tail, err := fetch(ctx, client, fmt.Sprintf("%s/events?n=%d", base, *events)); err == nil {
				dump, _ = telemetry.ReadDump(strings.NewReader(tail))
			}
		}
		render(os.Stdout, base, metricSet{parseMetrics(body)}, dump, n > 0 || *polls != 1, *blame, *serving)
	}
}
