package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dbproc/client"
	"dbproc/internal/metric"
	"dbproc/internal/quel"
	"dbproc/internal/server"
)

// shellScript is the transcript corpus: the quel package's fuzz seeds
// (schema, DML, joins, aggregates, procedures, explain) plus the
// multi-line continuation and meta-command shapes only the shell layer
// exercises, including parse and execution errors.
const shellScript = `create emp (tid, age, dept, salary) cluster on age;
create dept (dname, floor) hash on dname buckets 4;
append to emp (tid = 1, age = 35, dept = 10, salary = 50000);
append to emp (tid = 2, age = 31, dept = 10, salary = 40000);
append to emp (tid = 3, age = 41, dept = 20, salary = 60000);
append to emp (tid = 4, age = 55, dept = 20, salary = 70000);
append to dept (dname = 10, floor = 1);
append to dept (dname = 20, floor = 2);
retrieve (emp.all) where emp.age >= 31 and emp.age <= 41;
retrieve (emp.tid, emp.salary) where emp.age = 35;
retrieve (emp.tid, dept.floor)
  ... where emp.dept = dept.dname and dept.floor = 1;
retrieve (count(emp.tid), avg(emp.salary));
define procedure seniors as retrieve (emp.all) where emp.age >= 41;
execute seniors;
execute seniors;
replace emp (salary = 1) where emp.tid = 1;
execute seniors;
explain retrieve (emp.all) where emp.age = 35;
explain seniors;
delete from emp where emp.age = 31;
retrieve (emp.tid) sort by emp.tid;
retrieve (;
append to emp (tid = 99999999999999999999);
execute nosuchproc;
.help
.quit
`

// runScript feeds the corpus through the repl. Lines containing the
// "  ... " continuation marker are split back into their two physical
// lines so the multi-line statement path is exercised.
func runScript(t *testing.T, ex executor) string {
	t.Helper()
	script := strings.ReplaceAll(shellScript, "\n  ... ", "\n")
	var out bytes.Buffer
	repl(ex, strings.NewReader(script), &out)
	return out.String()
}

// TestShellTranscript locks the shell's behavior with a golden
// transcript, and proves -connect is transparent: the same corpus run
// against a loopback procserved prints the identical bytes. Regenerate
// the golden with PROCSHELL_REGEN=1 after intentional output changes.
func TestShellTranscript(t *testing.T) {
	local := runScript(t, localExec{db: quel.Open(0, 0, metric.DefaultCosts())})

	srv := server.New(server.Options{})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	cn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	remote := runScript(t, remoteExec{cn: cn})
	cn.Close()

	if local != remote {
		t.Fatalf("served transcript diverges from local:\n--- local\n%s\n--- served\n%s", local, remote)
	}

	golden := filepath.Join("testdata", "transcript.golden")
	if os.Getenv("PROCSHELL_REGEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(local), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with PROCSHELL_REGEN=1 to create it)", err)
	}
	if local != string(want) {
		t.Fatalf("transcript diverges from golden (PROCSHELL_REGEN=1 regenerates):\n--- got\n%s\n--- want\n%s", local, want)
	}
}
