// Command procshell is an interactive QUEL-flavored shell over the
// engine: create relations, append tuples, run retrieves, and store
// database procedures whose cached results are maintained by Cache and
// Invalidate with i-locks — watch the cost meter to see cache hits,
// invalidations and recomputations.
//
//	$ go run ./cmd/procshell
//	quel> create emp (tid, age, dept) cluster on age
//	quel> append to emp (tid = 1, age = 30, dept = 10)
//	quel> define procedure thirties as retrieve (emp.all) where emp.age >= 30 and emp.age < 40
//	quel> execute thirties
//
// Meta commands: .help, .cost (cumulative meter), .quit.
// A statement may span lines; end it with a semicolon or an empty line.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"dbproc/internal/metric"
	"dbproc/internal/quel"
)

func main() {
	db := quel.Open(0, 0, metric.DefaultCosts())
	in := bufio.NewScanner(os.Stdin)
	fmt.Println("dbproc QUEL shell — .help for help, .quit to exit")
	var pending strings.Builder
	prompt := "quel> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "" && pending.Len() == 0:
			continue
		case strings.HasPrefix(line, "."):
			meta(db, line)
			continue
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
		if !strings.HasSuffix(line, ";") && line != "" {
			prompt = "  ... "
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
		pending.Reset()
		prompt = "quel> "
		if stmt == "" {
			continue
		}
		run(db, stmt)
	}
}

func meta(db *quel.DB, line string) {
	switch strings.Fields(line)[0] {
	case ".quit", ".exit":
		os.Exit(0)
	case ".cost":
		fmt.Printf("cumulative simulated cost: %.0f ms (%v)\n",
			db.Meter().Milliseconds(), db.Meter().Snapshot())
	case ".help":
		fmt.Println(`statements (end with ';' or an empty line):
  create <rel> (f1, f2, ...) cluster on <f> | hash on <f> [buckets N] [width N]
      clustered relations need a unique 'tid' field
  append to <rel> (f1 = v1, f2 = v2, ...)
  delete from <rel> [where quals]
  replace <rel> (f1 = v1, ...) [where quals]   -- in-place modification
  retrieve (rel.attr | rel.all | count(rel.attr) | sum/min/max/avg(rel.attr), ...)
      [where quals joined by 'and'] [sort by rel.attr, ...]
      plain attrs group the aggregates
  define procedure <name> as retrieve ...
  execute <name>            -- serves the cached result while valid
  explain retrieve ... | explain <name>
meta: .cost  .help  .quit`)
	default:
		fmt.Println("unknown meta command; try .help")
	}
}

func run(db *quel.DB, stmt string) {
	res, err := db.Run(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printSection(res.Columns, res.Rows)
	for _, sec := range res.Sections {
		fmt.Println()
		printSection(sec.Columns, sec.Rows)
	}
	fmt.Printf("%s   [%.0f ms simulated]\n", res.Message, res.CostMs)
}

func printSection(columns []string, rows [][]int64) {
	if len(columns) == 0 {
		return
	}
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, v := range row {
			if n := len(fmt.Sprint(v)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	for i, c := range columns {
		fmt.Printf("%*s  ", widths[i], c)
	}
	fmt.Println()
	for _, row := range rows {
		for i, v := range row {
			fmt.Printf("%*d  ", widths[i], v)
		}
		fmt.Println()
	}
}
