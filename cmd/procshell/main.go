// Command procshell is an interactive QUEL-flavored shell over the
// engine: create relations, append tuples, run retrieves, and store
// database procedures whose cached results are maintained by Cache and
// Invalidate with i-locks — watch the cost meter to see cache hits,
// invalidations and recomputations.
//
//	$ go run ./cmd/procshell
//	quel> create emp (tid, age, dept) cluster on age
//	quel> append to emp (tid = 1, age = 30, dept = 10)
//	quel> define procedure thirties as retrieve (emp.all) where emp.age >= 30 and emp.age < 40
//	quel> execute thirties
//
// With -connect the shell runs every statement against a procserved
// instance over the wire protocol instead of a private in-process
// session (docs/SERVING.md):
//
//	$ go run ./cmd/procshell -connect 127.0.0.1:7141
//
// Meta commands: .help, .cost (cumulative meter), .quit.
// A statement may span lines; end it with a semicolon or an empty line.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dbproc/client"
	"dbproc/internal/metric"
	"dbproc/internal/quel"
	"dbproc/internal/wire"
)

// shellResult is the executor-independent statement outcome: the same
// fields whether the statement ran in-process or over the wire, so both
// modes print byte-identical transcripts.
type shellResult struct {
	Message  string
	Columns  []string
	Rows     [][]int64
	Sections []shellSection
	CostMs   float64
}

type shellSection struct {
	Columns []string
	Rows    [][]int64
}

// executor runs statements for the shell: localExec over a private
// quel.DB, remoteExec over a procserved connection.
type executor interface {
	exec(stmt string) (*shellResult, error)
	cost() string
	close()
}

type localExec struct{ db *quel.DB }

func (l localExec) exec(stmt string) (*shellResult, error) {
	res, err := l.db.Run(stmt)
	if err != nil {
		return nil, err
	}
	out := &shellResult{Message: res.Message, Columns: res.Columns, Rows: res.Rows, CostMs: res.CostMs}
	for _, sec := range res.Sections {
		out.Sections = append(out.Sections, shellSection{Columns: sec.Columns, Rows: sec.Rows})
	}
	return out, nil
}

func (l localExec) cost() string {
	return fmt.Sprintf("cumulative simulated cost: %.0f ms (%v)",
		l.db.Meter().Milliseconds(), l.db.Meter().Snapshot())
}

func (l localExec) close() {}

type remoteExec struct{ cn *client.Conn }

func (r remoteExec) exec(stmt string) (*shellResult, error) {
	res, err := r.cn.Exec(context.Background(), stmt)
	if err != nil {
		// A server-side error's Msg is the quel error text verbatim;
		// surface it bare so remote transcripts match local ones byte
		// for byte.
		var werr *wire.Error
		if errors.As(err, &werr) {
			return nil, errors.New(werr.Msg)
		}
		return nil, err
	}
	out := &shellResult{Message: res.Message, Columns: res.Columns, Rows: res.Rows, CostMs: res.CostMs}
	for _, sec := range res.Sections {
		out.Sections = append(out.Sections, shellSection{Columns: sec.Columns, Rows: sec.Rows})
	}
	return out, nil
}

func (r remoteExec) cost() string {
	return "remote session: the meter lives server-side (scrape its /metrics endpoint)"
}

func (r remoteExec) close() { r.cn.Close() }

func main() {
	connect := flag.String("connect", "", "procserved address; empty runs a private in-process session")
	flag.Parse()

	var ex executor
	if *connect != "" {
		cn, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procshell: %v\n", err)
			os.Exit(1)
		}
		ex = remoteExec{cn: cn}
	} else {
		ex = localExec{db: quel.Open(0, 0, metric.DefaultCosts())}
	}
	defer ex.close()
	fmt.Println("dbproc QUEL shell — .help for help, .quit to exit")
	repl(ex, os.Stdin, os.Stdout)
}

// repl reads statements from in and prints transcripts to out. It
// returns when in is exhausted or on .quit.
func repl(ex executor, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	var pending strings.Builder
	prompt := "quel> "
	for {
		fmt.Fprint(out, prompt)
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" && pending.Len() == 0:
			continue
		case strings.HasPrefix(line, "."):
			if !meta(ex, out, line) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
		if !strings.HasSuffix(line, ";") && line != "" {
			prompt = "  ... "
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
		pending.Reset()
		prompt = "quel> "
		if stmt == "" {
			continue
		}
		run(ex, out, stmt)
	}
}

// meta handles a dot command; it returns false when the shell should
// exit.
func meta(ex executor, out io.Writer, line string) bool {
	switch strings.Fields(line)[0] {
	case ".quit", ".exit":
		return false
	case ".cost":
		fmt.Fprintln(out, ex.cost())
	case ".help":
		fmt.Fprintln(out, `statements (end with ';' or an empty line):
  create <rel> (f1, f2, ...) cluster on <f> | hash on <f> [buckets N] [width N]
      clustered relations need a unique 'tid' field
  append to <rel> (f1 = v1, f2 = v2, ...)
  delete from <rel> [where quals]
  replace <rel> (f1 = v1, ...) [where quals]   -- in-place modification
  retrieve (rel.attr | rel.all | count(rel.attr) | sum/min/max/avg(rel.attr), ...)
      [where quals joined by 'and'] [sort by rel.attr, ...]
      plain attrs group the aggregates
  define procedure <name> as retrieve ...
  execute <name>            -- serves the cached result while valid
  explain retrieve ... | explain <name>
meta: .cost  .help  .quit`)
	default:
		fmt.Fprintln(out, "unknown meta command; try .help")
	}
	return true
}

func run(ex executor, out io.Writer, stmt string) {
	res, err := ex.exec(stmt)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	printSection(out, res.Columns, res.Rows)
	for _, sec := range res.Sections {
		fmt.Fprintln(out)
		printSection(out, sec.Columns, sec.Rows)
	}
	fmt.Fprintf(out, "%s   [%.0f ms simulated]\n", res.Message, res.CostMs)
}

func printSection(out io.Writer, columns []string, rows [][]int64) {
	if len(columns) == 0 {
		return
	}
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, v := range row {
			if n := len(fmt.Sprint(v)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	for i, c := range columns {
		fmt.Fprintf(out, "%*s  ", widths[i], c)
	}
	fmt.Fprintln(out)
	for _, row := range rows {
		for i, v := range row {
			fmt.Fprintf(out, "%*d  ", widths[i], v)
		}
		fmt.Fprintln(out)
	}
}
