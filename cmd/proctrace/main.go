// Command proctrace works with end-to-end wire traces (docs/TRACING.md).
// Its main job is the merge: the client-side and server-side wire-span
// JSONL files of one served run — written by a client.Tracer and by
// procserved -trace — become a single clock-aligned Chrome trace with
// cross-wire flow arrows (load it in chrome://tracing or
// ui.perfetto.dev).
//
// Usage:
//
//	proctrace client.jsonl server.jsonl -o merged.json   # merge
//	proctrace -check client.jsonl server.jsonl           # verify sum-to-total, no output
//	proctrace -drive 127.0.0.1:7141 -o client.jsonl      # run a traced workload
//
// -check verifies every server span's segments partition its wall time
// exactly and exits nonzero on a violation (it composes with merging:
// -check -o merged.json does both). -drive runs a small mixed workload
// against a procserved instance — pooled database/sql statements, a
// cursored query closed mid-read, a transaction, and a 2-session
// critical-path bench world — writing the client half of the trace; run
// procserved with -trace to capture the matching server half.
package main

import (
	"context"
	"database/sql"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"

	"dbproc/client"
	"dbproc/internal/obs"
	"dbproc/internal/wire"
)

func main() {
	out := flag.String("o", "", "output file (merged Chrome trace, or client JSONL under -drive); empty = stdout")
	check := flag.Bool("check", false, "verify the server-side sum-to-total invariant; exit 1 on violation")
	drive := flag.String("drive", "", "drive a traced workload against this procserved address instead of merging")
	flag.Parse()

	if *drive != "" {
		if err := driveWorkload(*drive, *out); err != nil {
			fmt.Fprintf(os.Stderr, "proctrace: drive: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "proctrace: no trace files (usage: proctrace [-check] [-o merged.json] client.jsonl server.jsonl)")
		os.Exit(2)
	}
	var spans []obs.WireSpanRecord
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proctrace: %v\n", err)
			os.Exit(1)
		}
		tr, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "proctrace: %s: %v\n", name, err)
			os.Exit(1)
		}
		spans = append(spans, tr.WireSpans...)
	}
	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "proctrace: no wire spans in the given files")
		os.Exit(1)
	}

	if *check {
		if errs := obs.CheckWireSpans(spans); len(errs) > 0 {
			for _, err := range errs {
				fmt.Fprintf(os.Stderr, "proctrace: check: %v\n", err)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "proctrace: check: %d spans, server segments sum to wall\n", len(spans))
		if *out == "" {
			return
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proctrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	st, err := obs.MergeWireTrace(w, spans)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proctrace: merge: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "proctrace: merged %d client + %d server spans, %d pairs, %d flow arrows, clock offset %dns\n",
		st.ClientSpans, st.ServerSpans, st.Pairs, st.Arrows, st.MeanOffsetNs)
}

// driveWorkload exercises every traced wire path against addr and
// writes the client-side spans to out (JSONL).
func driveWorkload(addr, out string) error {
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tracer := client.NewTracer(obs.NewWireSpanSink(w))
	ctx := context.Background()

	// Pooled statements through database/sql: schema, appends, plain and
	// cursored retrieves (the cursor is closed mid-read, so cursor.close
	// goes over the wire), and one transaction.
	db := sql.OpenDB(client.NewConnector(addr, tracer))
	defer db.Close()
	db.SetMaxOpenConns(4)
	stmts := []string{
		"create emp (tid, age, dept) cluster on age",
		"append to emp (tid = 1, age = 30, dept = 10)",
		"append to emp (tid = 2, age = 41, dept = 20)",
		"append to emp (tid = 3, age = 35, dept = 10)",
		"retrieve (emp.age) where emp.dept = 10",
	}
	for _, s := range stmts {
		if _, err := db.ExecContext(ctx, s); err != nil {
			return fmt.Errorf("%s: %w", s, err)
		}
	}
	rows, err := db.QueryContext(ctx, "retrieve (emp.age)")
	if err != nil {
		return err
	}
	rows.Next()
	if err := rows.Close(); err != nil {
		return err
	}
	tx, err := db.BeginTx(ctx, nil)
	if err != nil {
		return err
	}
	if _, err := tx.ExecContext(ctx, "append to emp (tid = 4, age = 50, dept = 20)"); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	// A 2-session critical-path scenario world on the control plane:
	// world.next breakdowns carry the engine's lock-wait/io/recompute
	// split and scenario phase labels.
	cn, err := client.DialTraced(addr, tracer)
	if err != nil {
		return err
	}
	defer cn.Close()
	opened, err := cn.WorldOpen(ctx, &wire.WorldOpen{
		Model: "1", Strategy: "ci", Seed: 11, Clients: 2,
		Scenario: "hot-key-storm", R2UpdateFraction: 0.3, CritPath: true,
	})
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, opened.Sessions)
	for i := 0; i < opened.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := client.DialTraced(addr, tracer)
			if err != nil {
				errs[i] = err
				return
			}
			defer sess.Close()
			for {
				step, err := sess.WorldNext(ctx, opened.World, i)
				if err != nil {
					errs[i] = err
					return
				}
				if step.Done {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if _, err := cn.WorldStats(ctx, opened.World); err != nil {
		return err
	}
	if err := cn.WorldClose(ctx, opened.World); err != nil {
		return err
	}

	st := tracer.Stats()
	fmt.Fprintf(os.Stderr, "proctrace: drove %d traced requests (%d with server breakdown): client wall %.2fms, server wall %.2fms, network %.2fms\n",
		st.Requests, st.WithServer, float64(st.ClientWallNs)/1e6, float64(st.ServerWallNs)/1e6, float64(st.NetworkNs)/1e6)
	return nil
}
