// Command procbench regenerates the paper's tables and figures.
//
// Usage:
//
//	procbench                  # every figure and table, analytic only
//	procbench -figure fig05    # one figure
//	procbench -sim             # add measured points from the simulator
//	procbench -sim -scale 10   # simulate at 1/10 population scale
//	procbench -list            # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dbproc/internal/experiments"
)

func main() {
	figure := flag.String("figure", "", "experiment id to run (default: all)")
	chart := flag.Bool("chart", false, "draw ASCII charts under curve tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	simFlag := flag.Bool("sim", false, "add simulated validation points")
	simPoints := flag.Int("sim-points", 0, "max simulated points per curve (0 = all)")
	scale := flag.Float64("scale", 1, "divide populations and op counts by this for simulation")
	seed := flag.Int64("seed", 1, "simulation seed")
	obsJSON := flag.String("obs-json", "", "write the per-strategy observability benchmark (BENCH_obs.json) to this file and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{
		Sim:       *simFlag,
		SimPoints: *simPoints,
		SimSeed:   *seed,
		Scale:     *scale,
	}

	if *obsJSON != "" {
		rep := experiments.ObsBench(opt)
		f, err := os.Create(*obsJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "procbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "procbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("observability benchmark written to %s (%d rows)\n", *obsJSON, len(rep.Rows))
		return
	}

	show := func(tb *experiments.Table) {
		tb.Render(os.Stdout)
		if *chart {
			tb.Chart(os.Stdout)
		}
	}
	if *figure != "" {
		e, ok := experiments.Get(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "procbench: unknown experiment %q; try -list\n", *figure)
			os.Exit(1)
		}
		for _, tb := range e.Run(opt) {
			show(tb)
		}
		return
	}
	for _, e := range experiments.All() {
		for _, tb := range e.Run(opt) {
			show(tb)
		}
	}
}
