// Command procbench regenerates the paper's tables and figures.
//
// Usage:
//
//	procbench                  # every figure and table, analytic only
//	procbench -figure fig05    # one figure
//	procbench -sim             # add measured points from the simulator
//	procbench -sim -scale 10   # simulate at 1/10 population scale
//	procbench -sim -workers 4  # fan simulation cells over 4 workers
//	procbench -list            # list experiment ids
//
// Simulated sweeps fan their (figure point × seed × strategy) cells out
// across -workers workers; the reduction is deterministic, so any worker
// count prints byte-identical tables (see docs/PARALLEL.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"dbproc/internal/experiments"
	"dbproc/internal/telemetry"
	"dbproc/internal/workload"
)

func main() {
	figure := flag.String("figure", "", "experiment id to run (default: all)")
	chart := flag.Bool("chart", false, "draw ASCII charts under curve tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	simFlag := flag.Bool("sim", false, "add simulated validation points")
	simPoints := flag.Int("sim-points", 0, "max simulated points per curve (0 = all)")
	scale := flag.Float64("scale", 1, "divide populations and op counts by this for simulation")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "concurrent simulation cells (0 = one per CPU); output is identical for any value")
	obsJSON := flag.String("obs-json", "", "write the per-strategy observability benchmark (BENCH_obs.json) to this file and exit")
	parallelJSON := flag.String("parallel-json", "", "write the parallel sweep-engine benchmark (BENCH_parallel.json) to this file and exit")
	concurrentJSON := flag.String("concurrent-json", "", "write the multi-session engine benchmark (BENCH_concurrent.json) to this file and exit")
	scenariosJSON := flag.String("scenarios-json", "", "write the hostile-workload scenario benchmark (BENCH_scenarios.json) to this file and exit")
	scenarioFilter := flag.String("scenario-filter", "", "comma-separated scenario names to restrict -scenarios-json to (default: full catalog)")
	clients := flag.Int("clients", 0, "cap the concurrent benchmark's session ladder (0 = full 1/2/4/8)")
	think := flag.Float64("think", 0, "mean per-session think time in ms for the concurrent benchmark (0 = none)")
	serve := flag.Bool("serve", false, "add a measured wall_served pass to each concurrent-benchmark cell via a loopback procserved")
	connect := flag.String("connect", "", "drive the wall_served pass against this external procserved address (implies -serve)")
	listen := flag.String("listen", "", "serve live /metrics, /debug/pprof and /events on this address while benchmarks run")
	flag.Parse()

	// Ctrl-C stops claiming new simulation cells; in-flight cells finish
	// and the run exits after the current experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{
		Sim:         *simFlag,
		SimPoints:   *simPoints,
		SimSeed:     *seed,
		Scale:       *scale,
		Workers:     *workers,
		Clients:     *clients,
		ThinkMeanMs: *think,
		Served:      *serve || *connect != "",
		ServedAddr:  *connect,
	}
	if *scenarioFilter != "" {
		for _, name := range strings.Split(*scenarioFilter, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := workload.ByName(name); !ok && name != experiments.PoliteScenario {
				fmt.Fprintf(os.Stderr, "procbench: unknown scenario %q; catalog: %s\n",
					name, strings.Join(workload.Names(), ", "))
				os.Exit(1)
			}
			opt.Scenarios = append(opt.Scenarios, name)
		}
	}
	if *listen != "" {
		hub := telemetry.NewHub()
		hub.SetRecorder(telemetry.NewRecorder(1 << 14))
		if _, err := hub.ListenAndServe(*listen); err != nil {
			fmt.Fprintf(os.Stderr, "procbench: %v\n", err)
			os.Exit(1)
		}
		defer hub.Close()
		opt.Hub = hub
	}

	writeJSON := func(path string, v any, desc string) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "procbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "procbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s written to %s\n", desc, path)
	}

	if *scenariosJSON != "" {
		rep := experiments.ScenarioBench(ctx, opt)
		flipped := 0
		for _, v := range rep.Verdicts {
			if v.Flipped {
				flipped++
			}
		}
		writeJSON(*scenariosJSON, rep,
			fmt.Sprintf("scenario benchmark (%d scenarios, %d rows, %d verdict(s) flipped from polite)",
				len(rep.Scenarios), len(rep.Rows), flipped))
		return
	}

	if *obsJSON != "" {
		rep := experiments.ObsBench(ctx, opt)
		// The served-path latency decomposition rides along: a loopback
		// procserved driven through traced connections at 1 and 8
		// clients (docs/TRACING.md). Wall-clock measurements, so these
		// rows vary run to run; the simulated rows above do not.
		served, err := experiments.ServedLatencyBench(ctx, opt, 1, 8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procbench: served latency decomposition: %v\n", err)
			os.Exit(1)
		}
		rep.ServedLatency = served
		writeJSON(*obsJSON, rep, fmt.Sprintf("observability benchmark (%d rows, %d served latency rows)",
			len(rep.Rows), len(rep.ServedLatency)))
		return
	}

	if *parallelJSON != "" {
		rep := experiments.ParallelBench(ctx, opt)
		writeJSON(*parallelJSON, rep,
			fmt.Sprintf("parallel benchmark (%d cells, %.1fx measured / %.1fx projected@4, identical=%v)",
				rep.Cells, rep.MeasuredSpeedup, rep.ProjectedSpeedup["4"], rep.OutputIdentical))
		return
	}

	if *concurrentJSON != "" {
		rep := experiments.ConcurrentBench(ctx, opt)
		matches, servedMatches := true, true
		for _, row := range rep.Rows {
			if row.Clients == 1 && !row.MatchesSequential {
				matches = false
			}
			if rep.Served && row.Clients == 1 && !row.ServedMatchesSequential {
				servedMatches = false
			}
		}
		desc := fmt.Sprintf("concurrent benchmark (%d rows, matches_sequential=%v", len(rep.Rows), matches)
		if rep.Served {
			desc += fmt.Sprintf(", served_matches_sequential=%v", servedMatches)
		}
		writeJSON(*concurrentJSON, rep, desc+")")
		return
	}

	show := func(tb *experiments.Table) {
		tb.Render(os.Stdout)
		if *chart {
			tb.Chart(os.Stdout)
		}
	}
	if *figure != "" {
		e, ok := experiments.Get(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "procbench: unknown experiment %q; try -list\n", *figure)
			os.Exit(1)
		}
		for _, tb := range e.Run(ctx, opt) {
			show(tb)
		}
		return
	}
	for _, e := range experiments.All() {
		for _, tb := range e.Run(ctx, opt) {
			show(tb)
		}
	}
}
