// Command procadvisor answers the paper's practical question (section 8):
// given a database-procedure workload, which processing strategy should
// the system use? It evaluates the analytic cost model at the described
// parameters, prints the full cost table, and recommends the cheapest
// strategy along with the paper's implementation-order advice.
//
// Usage:
//
//	procadvisor -P 0.1 -f 0.0001          # small objects, few updates
//	procadvisor -P 0.8 -f 0.01 -model 2
package main

import (
	"flag"
	"fmt"

	"dbproc/internal/costmodel"
)

func main() {
	p := costmodel.Default()
	flag.Float64Var(&p.N, "N", p.N, "tuples in R1")
	flag.Float64Var(&p.F, "f", p.F, "selectivity of C_f (object size: fN tuples per P1 result)")
	flag.Float64Var(&p.F2, "f2", p.F2, "selectivity of C_f2")
	flag.Float64Var(&p.N1, "N1", p.N1, "P1 procedures")
	flag.Float64Var(&p.N2, "N2", p.N2, "P2 procedures")
	flag.Float64Var(&p.SF, "sf", p.SF, "sharing factor")
	flag.Float64Var(&p.Z, "Z", p.Z, "locality skew")
	flag.Float64Var(&p.CInval, "cinval", p.CInval, "invalidation cost (ms)")
	upd := flag.Float64("P", 0.5, "update probability")
	modelFlag := flag.Int("model", 1, "procedure model: 1 or 2")
	flag.Parse()

	p = p.WithUpdateProbability(*upd)
	model := costmodel.Model(*modelFlag)
	w := costmodel.BestStrategy(model, p)

	fmt.Printf("Workload: %s, P = %.2f, objects ~%.0f tuples (P1) / ~%.0f (P2), %0.f procedures\n\n",
		model, *upd, p.F*p.N, p.FStar()*p.N, p.NumProcs())
	fmt.Printf("%-22s %12s %9s\n", "strategy", "ms/access", "vs best")
	for _, s := range costmodel.Strategies {
		marker := ""
		if s == w.Best {
			marker = "  <- recommended"
		}
		fmt.Printf("%-22s %12.1f %8.2fx%s\n", s, w.Costs[s], w.Costs[s]/w.Costs[w.Best], marker)
	}

	fmt.Println()
	switch w.Best {
	case costmodel.AlwaysRecompute:
		fmt.Println("Updates dominate: caching buys nothing here. Always Recompute is also")
		fmt.Println("the simplest to implement — the paper's first-choice baseline.")
	case costmodel.CacheInvalidate:
		fmt.Println("Cache and Invalidate wins; keep C_inval small (battery-backed memory or")
		fmt.Println("logged invalidations), or its advantage evaporates (paper Figure 4).")
	case costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM:
		fmt.Println("Update Cache wins: objects are large or updates are rare enough that")
		fmt.Println("incremental maintenance beats recomputation. Beware: its cost rises")
		fmt.Println("steeply if the update probability grows (paper Figure 5) — Cache and")
		fmt.Println("Invalidate is the safer choice if P may exceed ~0.7.")
	}
	if ci := w.Costs[costmodel.CacheInvalidate]; w.Best != costmodel.CacheInvalidate &&
		ci <= 2*w.Costs[w.Best] {
		fmt.Println()
		fmt.Printf("Note: Cache and Invalidate is within %.1fx of the winner; the paper\n", ci/w.Costs[w.Best])
		fmt.Println("recommends it as the pragmatic second implementation step.")
	}
}
