// Command procadvisor answers the paper's practical question (section 8):
// given a database-procedure workload, which processing strategy should
// the system use? It evaluates the analytic cost model at the described
// parameters, prints the full cost table, and recommends the cheapest
// strategy along with the paper's implementation-order advice.
//
// Usage:
//
//	procadvisor -P 0.1 -f 0.0001          # small objects, few updates
//	procadvisor -P 0.8 -f 0.01 -model 2
//	procadvisor -scenarios BENCH_scenarios.json                # hostile-workload advice
//	procadvisor -scenarios BENCH_scenarios.json -scenario hot-key-storm
//
// With -scenarios the advice is conditioned on measured hostile-workload
// evidence instead of the analytic model: procadvisor re-derives every
// winner from the report's per-strategy rows — the same ranking
// ScenarioBench records — refuses the report if a recorded verdict does
// not match its own evidence, and explains where hostile traffic flips
// the polite recommendation (docs/SCENARIOS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dbproc/internal/costmodel"
	"dbproc/internal/experiments"
)

func main() {
	p := costmodel.Default()
	flag.Float64Var(&p.N, "N", p.N, "tuples in R1")
	flag.Float64Var(&p.F, "f", p.F, "selectivity of C_f (object size: fN tuples per P1 result)")
	flag.Float64Var(&p.F2, "f2", p.F2, "selectivity of C_f2")
	flag.Float64Var(&p.N1, "N1", p.N1, "P1 procedures")
	flag.Float64Var(&p.N2, "N2", p.N2, "P2 procedures")
	flag.Float64Var(&p.SF, "sf", p.SF, "sharing factor")
	flag.Float64Var(&p.Z, "Z", p.Z, "locality skew")
	flag.Float64Var(&p.CInval, "cinval", p.CInval, "invalidation cost (ms)")
	upd := flag.Float64("P", 0.5, "update probability")
	modelFlag := flag.Int("model", 1, "procedure model: 1 or 2")
	scenariosPath := flag.String("scenarios", "", "BENCH_scenarios.json report: advise from measured hostile-workload evidence instead of the analytic model")
	scenarioName := flag.String("scenario", "", "restrict -scenarios advice to one scenario")
	flag.Parse()

	if *scenariosPath != "" {
		if err := adviseScenarios(*scenariosPath, *scenarioName); err != nil {
			fmt.Fprintf(os.Stderr, "procadvisor: %v\n", err)
			os.Exit(1)
		}
		return
	}

	p = p.WithUpdateProbability(*upd)
	model := costmodel.Model(*modelFlag)
	w := costmodel.BestStrategy(model, p)

	fmt.Printf("Workload: %s, P = %.2f, objects ~%.0f tuples (P1) / ~%.0f (P2), %0.f procedures\n\n",
		model, *upd, p.F*p.N, p.FStar()*p.N, p.NumProcs())
	fmt.Printf("%-22s %12s %9s\n", "strategy", "ms/access", "vs best")
	for _, s := range costmodel.Strategies {
		marker := ""
		if s == w.Best {
			marker = "  <- recommended"
		}
		fmt.Printf("%-22s %12.1f %8.2fx%s\n", s, w.Costs[s], w.Costs[s]/w.Costs[w.Best], marker)
	}

	fmt.Println()
	switch w.Best {
	case costmodel.AlwaysRecompute:
		fmt.Println("Updates dominate: caching buys nothing here. Always Recompute is also")
		fmt.Println("the simplest to implement — the paper's first-choice baseline.")
	case costmodel.CacheInvalidate:
		fmt.Println("Cache and Invalidate wins; keep C_inval small (battery-backed memory or")
		fmt.Println("logged invalidations), or its advantage evaporates (paper Figure 4).")
	case costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM:
		fmt.Println("Update Cache wins: objects are large or updates are rare enough that")
		fmt.Println("incremental maintenance beats recomputation. Beware: its cost rises")
		fmt.Println("steeply if the update probability grows (paper Figure 5) — Cache and")
		fmt.Println("Invalidate is the safer choice if P may exceed ~0.7.")
	}
	if ci := w.Costs[costmodel.CacheInvalidate]; w.Best != costmodel.CacheInvalidate &&
		ci <= 2*w.Costs[w.Best] {
		fmt.Println()
		fmt.Printf("Note: Cache and Invalidate is within %.1fx of the winner; the paper\n", ci/w.Costs[w.Best])
		fmt.Println("recommends it as the pragmatic second implementation step.")
	}
}

// adviseScenarios conditions the recommendation on hostile-workload
// evidence: for every scenario × model cell of the report (or the one
// named by -scenario) it re-derives the winner from the per-strategy
// rows, verifies the report's recorded verdict agrees with that
// evidence, and explains the cells where hostile traffic dethrones the
// polite workload's recommendation.
func adviseScenarios(path, only string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep experiments.ScenarioBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Verdicts) == 0 {
		return fmt.Errorf("%s: no verdicts", path)
	}
	if only != "" {
		found := false
		for _, s := range rep.Scenarios {
			if s == only {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("scenario %q not in report (have %v)", only, rep.Scenarios)
		}
	}

	fmt.Printf("Hostile-workload advice from %s (%d scenarios, %d seeds/cell)\n\n",
		path, len(rep.Scenarios), rep.SeedsPerCell)
	matched := 0
	for _, v := range rep.Verdicts {
		if only != "" && v.Scenario != only {
			continue
		}
		var rows []experiments.ScenarioBenchRow
		for _, r := range rep.Rows {
			if r.Scenario == v.Scenario && r.Model == v.Model {
				rows = append(rows, r)
			}
		}
		// The trust step: the recorded verdict must be re-derivable from
		// the rows shipped beside it, or the report is inconsistent.
		got := experiments.DeriveScenarioVerdict(v.Scenario, v.Model, rows)
		if got.Winner != v.Winner || got.CachingWinner != v.CachingWinner {
			return fmt.Errorf("%s/%s: recorded verdict (%s, caching %s) does not match its evidence (%s, caching %s)",
				v.Scenario, v.Model, v.Winner, v.CachingWinner, got.Winner, got.CachingWinner)
		}
		matched++

		fmt.Printf("%s, %s: use %s (%.1f ms/query, %.1f%% ahead of %s)\n",
			v.Scenario, v.Model, v.Winner, v.WinnerMsPerQuery, v.MarginPct, v.RunnerUp)
		if v.Flipped {
			fmt.Printf("  hostile traffic flips the polite verdict: %s wins the polite workload,\n", v.PoliteWinner)
			fmt.Printf("  but under %s it loses to %s — condition the choice on traffic shape.\n", v.Scenario, v.Winner)
		}
		if v.CachingWinner != "" && v.CachingWinner != v.Winner {
			fmt.Printf("  if a cache is mandatory, ledger evidence ranks %s cheapest.\n", v.CachingWinner)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no verdicts matched scenario %q", only)
	}
	fmt.Printf("\nall %d verdict(s) re-derived from their row evidence and confirmed.\n", matched)
	return nil
}
