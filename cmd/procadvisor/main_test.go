package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbproc/internal/experiments"
)

// TestAdviseScenariosGolden: the checked-in BENCH_scenarios.json must
// pass procadvisor's trust step — every recorded winner verdict
// re-derivable from the row evidence shipped beside it.
func TestAdviseScenariosGolden(t *testing.T) {
	if _, err := os.Stat("../../BENCH_scenarios.json"); err != nil {
		t.Skipf("benchmark artifact not present: %v", err)
	}
	if err := adviseScenarios("../../BENCH_scenarios.json", ""); err != nil {
		t.Fatalf("golden report rejected: %v", err)
	}
	if err := adviseScenarios("../../BENCH_scenarios.json", "adversarial-inval"); err != nil {
		t.Fatalf("golden report rejected for one scenario: %v", err)
	}
	if err := adviseScenarios("../../BENCH_scenarios.json", "no-such-scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestAdviseScenariosRejectsTamperedVerdict: a report whose recorded
// winner cannot be re-derived from its own rows must be refused, not
// advised from.
func TestAdviseScenariosRejectsTamperedVerdict(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_scenarios.json")
	if err != nil {
		t.Skipf("benchmark artifact not present: %v", err)
	}
	var rep experiments.ScenarioBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	// Swap one verdict's winner and runner-up: the rows no longer back it.
	tampered := false
	for i, v := range rep.Verdicts {
		if v.Winner != v.RunnerUp && v.RunnerUp != "" {
			rep.Verdicts[i].Winner, rep.Verdicts[i].RunnerUp = v.RunnerUp, v.Winner
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no verdict to tamper with")
	}
	path := filepath.Join(t.TempDir(), "tampered.json")
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	err = adviseScenarios(path, "")
	if err == nil {
		t.Fatal("tampered report accepted")
	}
	if !strings.Contains(err.Error(), "does not match its evidence") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}
