// Command procdoctor is the causal diagnosis reader: it turns the
// artifacts the engine's diagnosis layer emits — cache-efficacy ledgers,
// flight-recorder dumps, span traces — into a verdict a person can act
// on. Where procstat renders raw timelines and procmon watches a live
// process, procdoctor answers "what dominated this run and which
// strategy should have won?":
//
//   - per-strategy dominant bottleneck (recompute vs hit service vs
//     maintenance vs invalidation) from the ledger's event-kind sums,
//   - the wasted-work leaderboard: entries whose cached generations died
//     without serving a hit, plus the false-invalidation rate,
//   - top blockers: who held the locks everyone else waited on, from
//     the flight dump's blame-annotated lock.acquire events,
//   - a strategy-winner verdict per (model, clients, seed) group from
//     ledger evidence alone — cross-checkable against
//     BENCH_concurrent.json with -bench, and against the analytic model
//     with procadvisor.
//
// Usage:
//
//	procsim -clients 8 -critpath -ledger ledger.jsonl -flight flight.jsonl
//	procdoctor -ledger ledger.jsonl -flight flight.jsonl
//	procdoctor -ledger ledger.jsonl -bench BENCH_concurrent.json
//
// See docs/DIAGNOSIS.md for the artifact formats and the decomposition
// semantics behind each section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/experiments"
	"dbproc/internal/obs"
	"dbproc/internal/telemetry"
)

func main() {
	ledgerPath := flag.String("ledger", "", "cache-efficacy ledger (JSONL) written by procsim -ledger")
	flightPath := flag.String("flight", "", "flight-recorder dump (JSONL) written by procsim -flight or an auto-dump")
	tracePath := flag.String("trace", "", "span trace (JSONL) written by procsim -trace")
	benchPath := flag.String("bench", "", "BENCH_concurrent.json to cross-check the ledger verdict against")
	topK := flag.Int("topk", 5, "rows per leaderboard")
	flag.Parse()

	if *ledgerPath == "" && *flightPath == "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "procdoctor: nothing to diagnose; pass -ledger, -flight and/or -trace")
		flag.Usage()
		os.Exit(2)
	}

	out := os.Stdout
	var verdicts []verdict
	if *ledgerPath != "" {
		runs := mustReadLedger(*ledgerPath)
		ledgerReport(out, runs, *topK)
		verdicts = ledgerVerdicts(runs)
		verdictReport(out, verdicts)
	}
	if *benchPath != "" {
		rep := mustReadBench(*benchPath)
		benchCrossCheck(out, verdicts, rep)
	}
	if *flightPath != "" {
		f := mustOpen(*flightPath)
		d, err := telemetry.ReadDump(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		flightReport(out, d, *topK)
	}
	if *tracePath != "" {
		f := mustOpen(*tracePath)
		tr, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		traceReport(out, tr, *topK)
	}
}

func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func mustReadLedger(path string) []cache.LedgerRun {
	f := mustOpen(path)
	defer f.Close()
	runs, err := cache.ReadLedger(f)
	if err != nil {
		fatal(err)
	}
	if len(runs) == 0 {
		fatal(fmt.Errorf("%s: no ledger sections", path))
	}
	return runs
}

func mustReadBench(path string) experiments.ConcurrentBenchReport {
	f := mustOpen(path)
	defer f.Close()
	var rep experiments.ConcurrentBenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "procdoctor: %v\n", err)
	os.Exit(1)
}

// ---------------------------------------------------------------------------
// Ledger: dominant bottleneck, wasted work, false invalidations

// bottleneck names the largest event-kind cost sum of a ledger run: the
// component a tuner should attack first.
func bottleneck(st cache.LedgerStats) (name string, ms float64) {
	name, ms = "recompute", st.ComputeMs
	for _, c := range []struct {
		name string
		ms   float64
	}{
		{"hit service", st.HitMs},
		{"maintenance", st.MaintainMs},
		{"invalidation", st.InvalMs},
		{"cache bypass", st.BypassMs},
	} {
		if c.ms > ms {
			name, ms = c.name, c.ms
		}
	}
	return name, ms
}

func ledgerReport(w io.Writer, runs []cache.LedgerRun, topK int) {
	for i, run := range runs {
		st := run.Stats()
		m := run.Meta
		fmt.Fprintf(w, "== run %d: %s, %s, %d client(s), seed %d ==\n",
			i+1, m.Strategy, costmodel.Model(m.Model), m.Clients, m.Seed)
		fmt.Fprintf(w, "  %d queries, %d updates; %d lifecycle events costing %.1f ms (run simulated total %.1f ms)\n",
			m.Queries, m.Updates, len(run.Events), st.TotalMs, m.TotalMs)
		if len(run.Events) == 0 {
			fmt.Fprintf(w, "  no events: strategy keeps no cache (nothing to diagnose)\n\n")
			continue
		}
		name, ms := bottleneck(st)
		share := 0.0
		if st.TotalMs > 0 {
			share = 100 * ms / st.TotalMs
		}
		fmt.Fprintf(w, "  dominant bottleneck: %s (%.1f ms, %.0f%% of event cost)\n", name, ms, share)
		fmt.Fprintf(w, "  breakdown: recompute %.1f  hit %.1f  maintain %.1f  invalidate %.1f  bypass %.1f\n",
			st.ComputeMs, st.HitMs, st.MaintainMs, st.InvalMs, st.BypassMs)
		if st.Invalidations > 0 {
			fmt.Fprintf(w, "  invalidations: %d (false: %d of %d comparable recomputes, rate %.1f%%)\n",
				st.Invalidations, st.FalseInvalidations, st.ComparableRecomputes, 100*st.FalseInvalidationRate)
			var parts []string
			for b, n := range st.Survival {
				if n > 0 {
					parts = append(parts, fmt.Sprintf("%s:%d", cache.SurvivalBuckets[b], n))
				}
			}
			if len(parts) > 0 {
				fmt.Fprintf(w, "  generation survival (hits before invalidation): %s\n", strings.Join(parts, "  "))
			}
		}
		fmt.Fprintf(w, "  wasted work: %d generation(s) invalidated unread, %.1f ms recomputed for nothing\n",
			st.WastedGenerations, st.WastedMs)
		fmt.Fprintf(w, "  net benefit vs always-recompute baselines: %+.1f ms\n", st.NetBenefitMs)
		wastedLeaderboard(w, st, topK)
		fmt.Fprintln(w)
	}
}

func wastedLeaderboard(w io.Writer, st cache.LedgerStats, topK int) {
	entries := append([]cache.EntryStats(nil), st.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].WastedMs != entries[j].WastedMs {
			return entries[i].WastedMs > entries[j].WastedMs
		}
		return entries[i].Entry < entries[j].Entry
	})
	shown := 0
	for _, e := range entries {
		if e.WastedMs <= 0 || shown >= topK {
			break
		}
		if shown == 0 {
			fmt.Fprintf(w, "  wasted-work leaderboard (top %d):\n", topK)
		}
		fmt.Fprintf(w, "    proc %-5d %2d wasted generation(s), %8.1f ms; %d hit(s), net %+.1f ms\n",
			e.Entry, e.WastedGenerations, e.WastedMs, e.Hits, e.NetBenefitMs)
		shown++
	}
}

// ---------------------------------------------------------------------------
// Strategy-winner verdict

// verdict is one (model, clients, seed) group's strategy ranking by
// ledger-event cost. Caching strategies only: the ledger records cache
// lifecycle work, so Always Recompute (which keeps no cache) has no
// evidence to rank.
type verdict struct {
	Model   int
	Clients int
	Seed    int64
	// Ranked is sorted cheapest-first by ledger event cost per query.
	Ranked []verdictRow
}

type verdictRow struct {
	Strategy  string
	TotalMs   float64 // ledger event cost
	MsPerWork float64 // ledger event cost per query
}

// Winner is the cheapest caching strategy by ledger evidence.
func (v verdict) Winner() string {
	if len(v.Ranked) == 0 {
		return ""
	}
	return v.Ranked[0].Strategy
}

// cachingStrategies is the set the verdict ranks: the ledger-recording
// strategies the paper's section 8 decision weighs against each other.
var cachingStrategies = map[string]bool{
	costmodel.CacheInvalidate.String(): true,
	costmodel.UpdateCacheAVM.String():  true,
	costmodel.UpdateCacheRVM.String():  true,
}

// ledgerVerdicts groups ledger runs by (model, clients, seed) and ranks
// the caching strategies within each group by total ledger-event cost.
// The base-relation update cost the ledger does not see is identical
// across strategies for the same workload, so the event-cost ranking
// reproduces the simulated-total ranking.
func ledgerVerdicts(runs []cache.LedgerRun) []verdict {
	type key struct {
		model, clients int
		seed           int64
	}
	groups := map[key]*verdict{}
	var order []key
	for _, run := range runs {
		m := run.Meta
		if !cachingStrategies[m.Strategy] {
			continue
		}
		k := key{m.Model, m.Clients, m.Seed}
		v, ok := groups[k]
		if !ok {
			v = &verdict{Model: m.Model, Clients: m.Clients, Seed: m.Seed}
			groups[k] = v
			order = append(order, k)
		}
		st := run.Stats()
		row := verdictRow{Strategy: m.Strategy, TotalMs: st.TotalMs}
		if m.Queries > 0 {
			row.MsPerWork = st.TotalMs / float64(m.Queries)
		}
		v.Ranked = append(v.Ranked, row)
	}
	out := make([]verdict, 0, len(order))
	for _, k := range order {
		v := groups[k]
		sort.SliceStable(v.Ranked, func(i, j int) bool { return v.Ranked[i].TotalMs < v.Ranked[j].TotalMs })
		out = append(out, *v)
	}
	return out
}

func verdictReport(w io.Writer, verdicts []verdict) {
	for _, v := range verdicts {
		if len(v.Ranked) < 2 {
			continue // a single strategy is not a comparison
		}
		fmt.Fprintf(w, "== strategy verdict: %s, %d client(s), seed %d ==\n",
			costmodel.Model(v.Model), v.Clients, v.Seed)
		for i, r := range v.Ranked {
			marker := ""
			if i == 0 {
				marker = "  <- winner by ledger evidence"
			}
			fmt.Fprintf(w, "  %-22s %10.1f ms event cost  %8.1f ms/query%s\n",
				r.Strategy, r.TotalMs, r.MsPerWork, marker)
		}
		fmt.Fprintf(w, "  confirm the parameter regime with procadvisor (analytic model).\n\n")
	}
}

// benchCrossCheck compares each ledger verdict against the matching
// BENCH_concurrent.json rows: the winner by ledger event cost should be
// the winner by simulated total among the same caching strategies.
func benchCrossCheck(w io.Writer, verdicts []verdict, rep experiments.ConcurrentBenchReport) {
	for _, v := range verdicts {
		if len(v.Ranked) < 2 {
			continue
		}
		want, ok := benchWinner(rep, costmodel.Model(v.Model).String(), v.Clients)
		if !ok {
			fmt.Fprintf(w, "bench cross-check: no %s %d-client rows in benchmark file\n",
				costmodel.Model(v.Model), v.Clients)
			continue
		}
		got := v.Winner()
		if got == want {
			fmt.Fprintf(w, "bench cross-check: ledger verdict %q agrees with BENCH_concurrent.json (%s, %d clients)\n",
				got, costmodel.Model(v.Model), v.Clients)
		} else {
			fmt.Fprintf(w, "bench cross-check: MISMATCH — ledger says %q, benchmark says %q (%s, %d clients)\n",
				got, want, costmodel.Model(v.Model), v.Clients)
		}
	}
	fmt.Fprintln(w)
}

// benchWinner is the cheapest caching strategy by SimTotalMs among the
// polite-baseline benchmark rows at (model, clients). Scenario rows run
// a different workload, so their totals are not comparable here.
func benchWinner(rep experiments.ConcurrentBenchReport, model string, clients int) (string, bool) {
	best, bestMs := "", 0.0
	for _, row := range rep.Rows {
		if row.Model != model || row.Clients != clients || row.Scenario != "" || !cachingStrategies[row.Strategy] {
			continue
		}
		if best == "" || row.SimTotalMs < bestMs {
			best, bestMs = row.Strategy, row.SimTotalMs
		}
	}
	return best, best != ""
}

// ---------------------------------------------------------------------------
// Flight dump: top blockers, detector firings

// blockerAgg aggregates blame-annotated lock.acquire events by
// (lock, holder) pair.
type blockerAgg struct {
	Lock      string
	Holder    string // the event Detail: "held by session N (op)"
	Waits     int
	WaitNs    int64
	MaxWaitNs int64
}

// topBlockers folds a dump's lock.acquire events into per-(lock, holder)
// wait totals, sorted by total wait descending.
func topBlockers(d *telemetry.Dump) []blockerAgg {
	type key struct{ lock, holder string }
	agg := map[key]*blockerAgg{}
	for _, ev := range d.Events {
		if ev.Kind != telemetry.EvLockAcquire || ev.WaitNs <= 0 {
			continue
		}
		k := key{ev.Name, ev.Detail}
		b, ok := agg[k]
		if !ok {
			b = &blockerAgg{Lock: ev.Name, Holder: ev.Detail}
			agg[k] = b
		}
		b.Waits++
		b.WaitNs += ev.WaitNs
		if ev.WaitNs > b.MaxWaitNs {
			b.MaxWaitNs = ev.WaitNs
		}
	}
	out := make([]blockerAgg, 0, len(agg))
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitNs != out[j].WaitNs {
			return out[i].WaitNs > out[j].WaitNs
		}
		if out[i].Lock != out[j].Lock {
			return out[i].Lock < out[j].Lock
		}
		return out[i].Holder < out[j].Holder
	})
	return out
}

func flightReport(w io.Writer, d *telemetry.Dump, topK int) {
	fmt.Fprintf(w, "== flight dump ==\n")
	for _, h := range d.Headers {
		fmt.Fprintf(w, "  dump reason %q: %d events retained, %d dropped\n", h.Reason, h.Events, h.Dropped)
	}
	for _, ev := range d.Events {
		switch ev.Kind {
		case telemetry.EvDetector:
			fmt.Fprintf(w, "  detector fired: %s — %s\n", ev.Name, ev.Detail)
		case telemetry.EvWatchdog, telemetry.EvViolation, telemetry.EvVlogFault, telemetry.EvFault:
			fmt.Fprintf(w, "  fault event: %s %s %s\n", ev.Kind, ev.Name, ev.Detail)
		}
	}
	blockers := topBlockers(d)
	if len(blockers) == 0 {
		fmt.Fprintf(w, "  no lock waits recorded: the run was contention-free\n\n")
		return
	}
	// Under the MVCC read path the only waits left fall into two causally
	// distinct classes: queueing behind an update's declared 2PL
	// footprint, or behind the post-commit version-chain sweep. The split
	// tells the reader which one a slow run is actually paying for.
	var fpNs, gcNs int64
	for _, b := range blockers {
		if waitClass(b.Lock) == waitClassGC {
			gcNs += b.WaitNs
		} else {
			fpNs += b.WaitNs
		}
	}
	fmt.Fprintf(w, "  wait split: %.3f ms waited on update footprints, %.3f ms on version-chain GC\n",
		float64(fpNs)/1e6, float64(gcNs)/1e6)
	if topK > len(blockers) {
		topK = len(blockers)
	}
	fmt.Fprintf(w, "  top blockers by wall-clock wait (top %d of %d):\n", topK, len(blockers))
	for _, b := range blockers[:topK] {
		holder := b.Holder
		if holder == "" {
			holder = "(holder unknown: blame attribution was off)"
		}
		fmt.Fprintf(w, "    %-14s %s: %d wait(s), %.3f ms total, max %.3f ms [%s]\n",
			b.Lock, holder, b.Waits, float64(b.WaitNs)/1e6, float64(b.MaxWaitNs)/1e6,
			waitClass(b.Lock))
	}
	fmt.Fprintln(w)
}

// Wait classes for blame reporting.
const (
	waitClassFootprint = "waited on update footprint"
	waitClassGC        = "waited on version-chain GC"
)

// waitClass classifies a lock name for blame output: rel:/ent: names are
// an update's declared 2PL footprint; the mvcc: namespace (the
// version-chain GC lock, engine.GCLock) is MVCC housekeeping that runs
// after an update's footprint is already released.
func waitClass(lock string) string {
	if strings.HasPrefix(lock, "mvcc:") {
		return waitClassGC
	}
	return waitClassFootprint
}

// ---------------------------------------------------------------------------
// Trace: per-run span totals and blame-edge counts

func traceReport(w io.Writer, tr *obs.Trace, topK int) {
	fmt.Fprintf(w, "== span trace ==\n")
	type runAgg struct {
		run     string
		spans   int
		durMs   float64
		blame   int
		byName  map[string]float64
		ordered []string
	}
	var runs []*runAgg
	idx := map[string]*runAgg{}
	for _, sp := range tr.Spans {
		a, ok := idx[sp.Run]
		if !ok {
			a = &runAgg{run: sp.Run, byName: map[string]float64{}}
			idx[sp.Run] = a
			runs = append(runs, a)
		}
		a.spans++
		a.durMs += sp.DurMs
		if _, seen := a.byName[sp.Name]; !seen {
			a.ordered = append(a.ordered, sp.Name)
		}
		a.byName[sp.Name] += sp.DurMs
		if _, blamed := sp.Attrs["blame_sessions"]; blamed {
			a.blame++
		}
	}
	for _, a := range runs {
		fmt.Fprintf(w, "  run %q: %d spans, %.1f ms simulated, %d span(s) carrying lock-wait blame edges\n",
			a.run, a.spans, a.durMs, a.blame)
		sort.SliceStable(a.ordered, func(i, j int) bool { return a.byName[a.ordered[i]] > a.byName[a.ordered[j]] })
		k := topK
		if k > len(a.ordered) {
			k = len(a.ordered)
		}
		for _, name := range a.ordered[:k] {
			fmt.Fprintf(w, "    %-20s %10.1f ms\n", name, a.byName[name])
		}
	}
	fmt.Fprintln(w)
}
