package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/experiments"
	"dbproc/internal/sim"
)

// TestScenarioVerdictReproducesGolden closes the loop between the two
// verdict paths: for the adversarial-invalidation scenario it
// regenerates the 1-client ledger evidence for every caching strategy
// and golden seed, runs it through procdoctor's ledgerVerdicts ranking,
// and requires the per-seed winners to equal the
// per_seed_caching_winners recorded in BENCH_scenarios.json. One-client
// scenario runs are replayable from (scenario, seed) alone, so exact
// agreement is required — no schedule-variance allowance.
func TestScenarioVerdictReproducesGolden(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_scenarios.json")
	if err != nil {
		t.Skipf("benchmark artifact not present: %v", err)
	}
	var rep experiments.ScenarioBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_scenarios.json: %v", err)
	}

	const scenario = "adversarial-inval"
	models := []costmodel.Model{costmodel.Model1, costmodel.Model2}
	caching := []costmodel.Strategy{
		costmodel.CacheInvalidate, costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM,
	}
	p := experiments.ScenarioBenchParams(experiments.Options{Scale: rep.Scale})

	var buf bytes.Buffer
	for _, model := range models {
		for _, strat := range caching {
			for i := 0; i < rep.SeedsPerCell; i++ {
				cfg := sim.Config{
					Params: p, Model: model, Strategy: strat,
					Seed: rep.Seed + int64(i), Scenario: scenario,
				}
				cfg.Ledger = cache.NewLedger()
				res := sim.Run(cfg)
				meta := cache.LedgerMeta{
					Strategy: strat.String(), Model: int(model), Clients: 1,
					Seed: cfg.Seed, Queries: res.Queries, Updates: res.Updates,
					TotalMs: res.TotalMs,
				}
				if err := cache.WriteLedger(&buf, meta, cfg.Ledger); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	runs, err := cache.ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := ledgerVerdicts(runs)

	for _, model := range models {
		want, ok := rep.FindScenarioVerdict(scenario, model.String())
		if !ok {
			t.Fatalf("artifact has no %s verdict for %s", model, scenario)
		}
		if len(want.PerSeedCachingWinners) != rep.SeedsPerCell {
			t.Fatalf("artifact verdict %s/%s has %d per-seed caching winners, want %d",
				scenario, model, len(want.PerSeedCachingWinners), rep.SeedsPerCell)
		}
		for i := 0; i < rep.SeedsPerCell; i++ {
			seed := rep.Seed + int64(i)
			got := ""
			for _, v := range verdicts {
				if v.Model == int(model) && v.Clients == 1 && v.Seed == seed {
					got = v.Winner()
				}
			}
			if got == "" {
				t.Fatalf("no ledger verdict for %s seed %d", model, seed)
			}
			if got != want.PerSeedCachingWinners[i] {
				t.Errorf("%s seed %d: ledger evidence says %q, artifact says %q",
					model, seed, got, want.PerSeedCachingWinners[i])
			}
		}
	}
}
