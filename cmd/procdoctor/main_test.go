package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/engine"
	"dbproc/internal/experiments"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
)

// TestVerdictReproducesConcurrentBench is the acceptance gate for the
// ledger verdict: regenerate the ledger evidence for the
// BENCH_concurrent.json 8-client contention rows (same parameter point,
// same seed, same client count) and require that the winner procdoctor
// derives from ledger evidence alone (a) matches the winner by the
// regenerated runs' simulated totals for both procedure models, and
// (b) agrees with the checked-in artifact on at least one 8-client row.
// (Only "at least one": Cache and Invalidate's simulated total is
// schedule-dependent — which accesses run cold depends on the commit
// interleaving — so the artifact's model-1 row, where CI and AVM are
// within a schedule's variance of each other, need not reproduce on a
// different scheduler. Model 2's margin is far wider than the variance.)
func TestVerdictReproducesConcurrentBench(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_concurrent.json")
	if err != nil {
		t.Skipf("benchmark artifact not present: %v", err)
	}
	var rep experiments.ConcurrentBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_concurrent.json: %v", err)
	}

	const clients = 8
	p := experiments.BenchParams(experiments.Options{Scale: rep.Scale, SimSeed: rep.Seed})
	var buf bytes.Buffer
	simWinner := map[string]string{} // model name -> cheapest strategy by regenerated SimTotalMs
	simBest := map[string]float64{}
	for _, model := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
		for _, strat := range []costmodel.Strategy{
			costmodel.CacheInvalidate, costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM,
		} {
			cfg := sim.Config{Params: p, Model: model, Strategy: strat, Seed: rep.Seed}
			cfg.Ledger = cache.NewLedger()
			e := engine.New(cfg, engine.Options{Clients: clients, ThinkMeanMs: rep.ThinkMeanMs})
			res := e.Run(context.Background())
			meta := cache.LedgerMeta{
				Strategy: strat.String(), Model: int(model), Clients: clients,
				Seed: rep.Seed, Queries: res.Queries, Updates: res.Updates,
				TotalMs: res.SimTotalMs,
			}
			if err := cache.WriteLedger(&buf, meta, cfg.Ledger); err != nil {
				t.Fatal(err)
			}
			mn := model.String()
			if best, ok := simBest[mn]; !ok || res.SimTotalMs < best {
				simBest[mn], simWinner[mn] = res.SimTotalMs, strat.String()
			}
		}
	}

	runs, err := cache.ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := ledgerVerdicts(runs)
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdict groups, want 2 (one per model)", len(verdicts))
	}
	agreed := 0
	for _, v := range verdicts {
		model := costmodel.Model(v.Model).String()
		if len(v.Ranked) != 3 {
			t.Fatalf("%s: ranked %d strategies, want 3", model, len(v.Ranked))
		}
		// Ledger evidence alone must reproduce the simulated verdict of
		// the runs it ledgered.
		if got := v.Winner(); got != simWinner[model] {
			t.Errorf("%s: ledger verdict %q, simulated-total winner %q\nranking: %+v",
				model, got, simWinner[model], v.Ranked)
		}
		want, ok := benchWinner(rep, model, clients)
		if !ok {
			t.Fatalf("no %s %d-client caching rows in BENCH_concurrent.json", model, clients)
		}
		if v.Winner() == want {
			agreed++
		}
	}
	if agreed == 0 {
		t.Errorf("ledger verdicts agree with no BENCH_concurrent.json 8-client row")
	}

	// The rendered report must carry the verdict and the cross-check.
	var out bytes.Buffer
	verdictReport(&out, verdicts)
	benchCrossCheck(&out, verdicts, rep)
	txt := out.String()
	if !strings.Contains(txt, "winner by ledger evidence") {
		t.Errorf("verdict report missing winner marker:\n%s", txt)
	}
	if !strings.Contains(txt, "agrees with BENCH_concurrent.json") {
		t.Errorf("bench cross-check reported no agreement:\n%s", txt)
	}
}

// TestTopBlockers checks the flight-dump blocker aggregation: grouping
// by (lock, holder), wait totals, and the wait-descending sort.
func TestTopBlockers(t *testing.T) {
	d := &telemetry.Dump{Events: []telemetry.Event{
		{Kind: telemetry.EvLockAcquire, Name: "rel:r1", WaitNs: 100, Detail: "held by session 2 (update)"},
		{Kind: telemetry.EvLockAcquire, Name: "rel:r1", WaitNs: 300, Detail: "held by session 2 (update)"},
		{Kind: telemetry.EvLockAcquire, Name: "rel:r2", WaitNs: 900, Detail: "held by session 0 (query proc:7)"},
		{Kind: telemetry.EvLockAcquire, Name: "rel:r3", WaitNs: 0}, // uncontended: excluded
		{Kind: telemetry.EvOpCommit, Name: "update", WaitNs: 500},  // wrong kind: excluded
	}}
	got := topBlockers(d)
	if len(got) != 2 {
		t.Fatalf("got %d blockers, want 2: %+v", len(got), got)
	}
	if got[0].Lock != "rel:r2" || got[0].WaitNs != 900 || got[0].Waits != 1 {
		t.Errorf("top blocker = %+v", got[0])
	}
	if got[1].Lock != "rel:r1" || got[1].WaitNs != 400 || got[1].Waits != 2 || got[1].MaxWaitNs != 300 {
		t.Errorf("second blocker = %+v", got[1])
	}
}

// TestBottleneck pins the dominant-bottleneck selection.
func TestBottleneck(t *testing.T) {
	name, ms := bottleneck(cache.LedgerStats{ComputeMs: 5, HitMs: 2, MaintainMs: 9, InvalMs: 1})
	if name != "maintenance" || ms != 9 {
		t.Errorf("bottleneck = %q %.1f, want maintenance 9.0", name, ms)
	}
	name, _ = bottleneck(cache.LedgerStats{ComputeMs: 5})
	if name != "recompute" {
		t.Errorf("bottleneck = %q, want recompute", name)
	}
}

// TestFlightReportWaitClasses: the flight report must causally separate
// waits on an update's declared 2PL footprint from waits on the MVCC
// version-chain GC lock, both per blocker line and in the summary split.
func TestFlightReportWaitClasses(t *testing.T) {
	if got := waitClass("rel:r1"); got != waitClassFootprint {
		t.Errorf("waitClass(rel:r1) = %q", got)
	}
	if got := waitClass("ent:proc:7"); got != waitClassFootprint {
		t.Errorf("waitClass(ent:proc:7) = %q", got)
	}
	if got := waitClass(engine.GCLock); got != waitClassGC {
		t.Errorf("waitClass(%s) = %q", engine.GCLock, got)
	}
	d := &telemetry.Dump{Events: []telemetry.Event{
		{Kind: telemetry.EvLockAcquire, Name: "rel:r1", WaitNs: 4_000_000, Detail: "held by session 2 (update)"},
		{Kind: telemetry.EvLockAcquire, Name: engine.GCLock, WaitNs: 1_000_000, Detail: "held by session 1 (gc)"},
	}}
	var buf bytes.Buffer
	flightReport(&buf, d, 10)
	out := buf.String()
	if !strings.Contains(out, "4.000 ms waited on update footprints, 1.000 ms on version-chain GC") {
		t.Errorf("missing wait split:\n%s", out)
	}
	if !strings.Contains(out, "[waited on update footprint]") || !strings.Contains(out, "[waited on version-chain GC]") {
		t.Errorf("blocker lines missing wait classes:\n%s", out)
	}
}
