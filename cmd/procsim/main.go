// Command procsim runs one simulated workload against the executable
// system and prints the measured cost next to the analytic prediction,
// followed by a model-drift summary.
//
// Usage:
//
//	procsim                               # paper defaults, all strategies
//	procsim -strategy uc-avm -P 0.3       # one strategy at P = 0.3
//	procsim -model 2 -f 0.01 -N 50000     # tweak parameters
//	procsim -seeds 5 -workers 4           # average 5 seeds, 4 cells at a time
//	procsim -clients 8 -think 1           # 8 concurrent sessions (docs/CONCURRENCY.md)
//	procsim -scenario hot-key-storm       # hostile-workload scenario (docs/SCENARIOS.md)
//	procsim -serve -clients 4             # drive a loopback procserved via database/sql (docs/SERVING.md)
//	procsim -connect 127.0.0.1:7141       # same, against an external procserved
//	procsim -clients 8 -listen :9090      # live /metrics, /debug/pprof, /events (docs/TELEMETRY.md)
//	procsim -clients 8 -flight dump.jsonl # flight dump on watchdog/violation/fault
//	procsim -breakdown                    # per-component cost tables
//	procsim -trace out.jsonl              # per-operation trace (see procstat)
//	procsim -json                         # machine-readable results
//
// With -seeds N every strategy runs N consecutive workload seeds; the
// (strategy × seed) cells fan out across -workers workers, and results —
// tables, JSON, and trace files alike — are reduced in canonical
// (strategy, seed) order, so output is byte-identical for any worker
// count (see docs/PARALLEL.md).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/engine"
	"dbproc/internal/experiments"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/parallel"
	"dbproc/internal/server"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
	"dbproc/internal/wire"
	"dbproc/internal/workload"
)

var strategyNames = map[string]costmodel.Strategy{
	"recompute": costmodel.AlwaysRecompute,
	"ci":        costmodel.CacheInvalidate,
	"uc-avm":    costmodel.UpdateCacheAVM,
	"uc-rvm":    costmodel.UpdateCacheRVM,
}

// shortName inverts strategyNames for run labels in trace files.
func shortName(s costmodel.Strategy) string {
	for k, v := range strategyNames {
		if v == s {
			return k
		}
	}
	return s.String()
}

// runJSON is one strategy's result in -json output.
type runJSON struct {
	obs.RunRecord
	Ratio          float64                     `json:"ratio"`
	TotalMs        float64                     `json:"total_ms"`
	TuplesReturned int                         `json:"tuples_returned"`
	Counters       obs.CountersJSON            `json:"counters"`
	Breakdown      map[string]obs.CountersJSON `json:"breakdown,omitempty"`
}

// driftJSON is one drift-monitor entry in -json output.
type driftJSON struct {
	Strategy      string  `json:"strategy"`
	Model         string  `json:"model"`
	Runs          int     `json:"runs"`
	MeasuredMs    float64 `json:"measured_ms_per_query"`
	PredictedMs   float64 `json:"predicted_ms_per_query"`
	RelativeError float64 `json:"relative_error"`
	Drifting      bool    `json:"drifting"`
}

// cellOut is one (strategy, seed) run's complete output, produced by a
// pool worker and consumed by the in-order reduction: the run result,
// the meter state, and the run's trace records pre-encoded into a
// private buffer so the trace file stays byte-stable under -workers N.
type cellOut struct {
	res    sim.Result
	bd     metric.Breakdown
	costs  metric.Costs
	trace  []byte
	ledger []byte
	record obs.RunRecord
}

func main() {
	p := costmodel.Default()
	flag.Float64Var(&p.N, "N", p.N, "tuples in R1")
	flag.Float64Var(&p.F, "f", p.F, "selectivity of C_f")
	flag.Float64Var(&p.F2, "f2", p.F2, "selectivity of C_f2")
	flag.Float64Var(&p.N1, "N1", p.N1, "P1 procedures")
	flag.Float64Var(&p.N2, "N2", p.N2, "P2 procedures")
	flag.Float64Var(&p.K, "k", p.K, "update transactions")
	flag.Float64Var(&p.Q, "q", p.Q, "procedure accesses")
	flag.Float64Var(&p.L, "l", p.L, "tuples modified per update")
	flag.Float64Var(&p.SF, "sf", p.SF, "sharing factor")
	flag.Float64Var(&p.Z, "Z", p.Z, "locality skew")
	flag.Float64Var(&p.CInval, "cinval", p.CInval, "invalidation cost (ms)")
	upd := flag.Float64("P", -1, "update probability (overrides -k, keeping -q)")
	modelFlag := flag.Int("model", 1, "procedure model: 1 (2-way joins) or 2 (3-way)")
	strategyFlag := flag.String("strategy", "", "recompute | ci | uc-avm | uc-rvm (default: all)")
	scenario := flag.String("scenario", "", "hostile-workload scenario from the catalog (see docs/SCENARIOS.md; default: polite workload)")
	seed := flag.Int64("seed", 1, "workload seed")
	seeds := flag.Int("seeds", 1, "consecutive workload seeds per strategy (averaged in the drift table)")
	workers := flag.Int("workers", 0, "concurrent (strategy x seed) cells (0 = one per CPU); output is identical for any value")
	clients := flag.Int("clients", 1, "concurrent client sessions (>1 switches to the multi-session engine)")
	think := flag.Float64("think", 0, "mean per-session think time in ms (exponential; concurrent mode)")
	serve := flag.Bool("serve", false, "drive the workload through a loopback procserved over the database/sql driver (docs/SERVING.md)")
	connect := flag.String("connect", "", "drive the workload against this external procserved address (implies -serve)")
	tracePath := flag.String("trace", "", "write a per-operation JSONL trace to this file (render with procstat)")
	ledgerPath := flag.String("ledger", "", "write a cache-efficacy ledger (JSONL) to this file (analyze with procdoctor; docs/DIAGNOSIS.md)")
	critpath := flag.Bool("critpath", false, "decompose each op's wall time into lock-wait/IO/recompute/compute with lock-wait blame (concurrent mode)")
	listen := flag.String("listen", "", "serve /metrics, /debug/pprof and /events on this address (e.g. :9090) until interrupted")
	flightPath := flag.String("flight", "", "write a flight-recorder dump to this file if the run trips a telemetry trigger")
	breakdown := flag.Bool("breakdown", false, "print the per-component cost breakdown of each run")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	driftThreshold := flag.Float64("drift-threshold", obs.DefaultDriftThreshold,
		"relative error above which measured cost is flagged as drifting from the model")
	flag.Parse()

	if *upd >= 0 {
		p = p.WithUpdateProbability(*upd)
	}
	model := costmodel.Model(*modelFlag)
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "procsim: -seeds must be >= 1\n")
		os.Exit(1)
	}

	if *scenario != "" {
		if _, ok := workload.ByName(*scenario); !ok {
			fmt.Fprintf(os.Stderr, "procsim: unknown scenario %q; catalog: %s\n",
				*scenario, strings.Join(workload.Names(), ", "))
			os.Exit(1)
		}
	}

	var strategies []costmodel.Strategy
	if *strategyFlag == "" {
		strategies = costmodel.Strategies[:]
	} else {
		s, ok := strategyNames[strings.ToLower(*strategyFlag)]
		if !ok {
			fmt.Fprintf(os.Stderr, "procsim: unknown strategy %q (want recompute, ci, uc-avm or uc-rvm)\n", *strategyFlag)
			os.Exit(1)
		}
		strategies = []costmodel.Strategy{s}
	}

	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		defer f.Close()
	}
	var ledgerFile *os.File
	if *ledgerPath != "" {
		f, err := os.Create(*ledgerPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
		ledgerFile = f
		defer f.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The live ops surface: a flight recorder feeding /events plus the
	// /metrics, /debug/vars and /debug/pprof endpoints (docs/TELEMETRY.md).
	var hub *telemetry.Hub
	var rec *telemetry.Recorder
	if *listen != "" || *flightPath != "" {
		rec = telemetry.NewRecorder(1 << 14)
		if *flightPath != "" {
			rec.SetAutoDumpFile(*flightPath)
		}
	}
	if *listen != "" {
		hub = telemetry.NewHub()
		hub.SetRecorder(rec)
		if _, err := hub.ListenAndServe(*listen); err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
		defer hub.Close()
	}

	if *serve || *connect != "" {
		runServed(ctx, p, model, strategies, *scenario, *seed, *clients, *connect, *jsonOut)
		waitServe(ctx, hub)
		return
	}

	if *clients > 1 {
		runConcurrent(ctx, p, model, strategies, *scenario, *seed, *clients, *think,
			traceFile, ledgerFile, *critpath, *jsonOut, hub, rec)
		waitServe(ctx, hub)
		return
	}

	// One cell per (strategy, seed), in canonical order: strategy first,
	// then seed — the order every reduction below iterates in.
	type cellCfg struct {
		strategy costmodel.Strategy
		seed     int64
	}
	var cellCfgs []cellCfg
	for _, s := range strategies {
		for i := 0; i < *seeds; i++ {
			cellCfgs = append(cellCfgs, cellCfg{strategy: s, seed: *seed + int64(i)})
		}
	}

	runLabel := func(c cellCfg) string {
		if *seeds == 1 {
			return shortName(c.strategy)
		}
		return fmt.Sprintf("%s#%d", shortName(c.strategy), c.seed)
	}

	cells, err := parallel.Map(ctx, parallel.Workers(*workers), len(cellCfgs),
		func(ctx context.Context, i int) (cellOut, error) {
			c := cellCfgs[i]
			cfg := sim.Config{Params: p, Model: model, Strategy: c.strategy, Seed: c.seed, Scenario: *scenario}
			if traceFile != nil {
				cfg.Tracer = obs.NewTracer()
			}
			if ledgerFile != nil {
				cfg.Ledger = cache.NewLedger()
			}
			w := sim.Build(cfg)
			res := w.Run()
			out := cellOut{res: res, bd: w.Meter().Breakdown(), costs: w.Meter().Costs()}
			run := runLabel(c)
			out.record = obs.RunRecord{
				Type:                obs.RecordRun,
				Run:                 run,
				Strategy:            c.strategy.String(),
				Model:               model.String(),
				Seed:                c.seed,
				Queries:             res.Queries,
				Updates:             res.Updates,
				MeasuredMsPerQuery:  res.MsPerQuery,
				PredictedMsPerQuery: res.PredictedMs,
			}
			if res.HasColdFraction() {
				cf := res.ColdFraction
				out.record.ColdFraction = &cf
			}
			if traceFile != nil {
				records := []any{out.record, obs.BreakdownToRecord(run, out.bd, out.costs)}
				for _, sp := range cfg.Tracer.Records(run) {
					records = append(records, sp)
				}
				enc, err := obs.EncodeJSONL(records...)
				if err != nil {
					return cellOut{}, fmt.Errorf("encoding trace: %w", err)
				}
				out.trace = enc
			}
			if ledgerFile != nil {
				var buf bytes.Buffer
				meta := cache.LedgerMeta{
					Strategy: c.strategy.String(), Model: int(model), Clients: 1,
					Seed: c.seed, Queries: res.Queries, Updates: res.Updates,
					TotalMs: res.TotalMs,
				}
				if err := cache.WriteLedger(&buf, meta, cfg.Ledger); err != nil {
					return cellOut{}, fmt.Errorf("encoding ledger: %w", err)
				}
				out.ledger = buf.Bytes()
			}
			return out, nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
		os.Exit(1)
	}
	drift := obs.NewDrift(*driftThreshold)
	var jsonRuns []runJSON

	if !*jsonOut {
		fmt.Printf("%s, P = %.2f (k=%.0f q=%.0f), f = %g, N1+N2 = %.0f, SF = %g, Z = %g, C_inval = %g ms\n",
			model, p.UpdateProbability(), p.K, p.Q, p.F, p.NumProcs(), p.SF, p.Z, p.CInval)
		if *scenario != "" {
			if sc, ok := workload.ByName(*scenario); ok {
				fmt.Printf("scenario: %s\n", workload.BuildSchedule(sc, workload.Base{
					K: int(p.K + 0.5), Q: int(p.Q + 0.5), Z: p.Z, L: int(p.L + 0.5),
				}).Describe())
			}
		}
		fmt.Println()
		fmt.Printf("%-22s %12s %12s %7s %6s   %s\n",
			"strategy", "measured", "predicted", "ratio", "cold", "events")
	}

	// The reduction: consume cells in canonical order. Everything below —
	// drift entries, trace bytes, table rows, JSON — depends only on this
	// order, never on which worker finished first.
	for i, c := range cellCfgs {
		out := cells[i]
		res := out.res
		drift.Record(c.strategy.String(), model.String(), res.MsPerQuery, res.PredictedMs)

		if traceFile != nil {
			if _, err := traceFile.Write(out.trace); err != nil {
				fmt.Fprintf(os.Stderr, "procsim: writing trace: %v\n", err)
				os.Exit(1)
			}
		}
		if ledgerFile != nil {
			if _, err := ledgerFile.Write(out.ledger); err != nil {
				fmt.Fprintf(os.Stderr, "procsim: writing ledger: %v\n", err)
				os.Exit(1)
			}
		}

		if *jsonOut {
			jr := runJSON{
				RunRecord:      out.record,
				Ratio:          res.MsPerQuery / res.PredictedMs,
				TotalMs:        res.TotalMs,
				TuplesReturned: res.TuplesReturned,
				Counters:       obs.ToCountersJSON(res.Counters),
			}
			if *breakdown {
				jr.Breakdown = obs.BreakdownToRecord(out.record.Run, out.bd, out.costs).Components
			}
			jsonRuns = append(jsonRuns, jr)
			continue
		}

		label := c.strategy.String()
		if *seeds > 1 {
			label = fmt.Sprintf("%s s=%d", c.strategy, c.seed)
		}
		fmt.Printf("%-22s %9.1f ms %9.1f ms %7.2f %6s   %v\n",
			label, res.MsPerQuery, res.PredictedMs, res.MsPerQuery/res.PredictedMs,
			res.ColdFractionString(), res.Counters)
		if *breakdown {
			fmt.Println()
			obs.RenderBreakdown(os.Stdout, out.bd, out.costs)
			fmt.Println()
		}
	}

	if *jsonOut {
		var drifts []driftJSON
		for _, e := range drift.Entries() {
			drifts = append(drifts, driftJSON{
				Strategy:      e.Strategy,
				Model:         e.Model,
				Runs:          e.Runs,
				MeasuredMs:    e.MeanMeasured(),
				PredictedMs:   e.MeanPredicted(),
				RelativeError: e.RelErr(),
				Drifting:      drift.Flagged(e),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"model":           model.String(),
			"scenario":        *scenario,
			"seed":            *seed,
			"seeds":           *seeds,
			"drift_threshold": *driftThreshold,
			"runs":            jsonRuns,
			"drift":           drifts,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Println()
		drift.Render(os.Stdout)
	}
	if traceFile != nil && !*jsonOut {
		fmt.Printf("\ntrace written to %s (render with procstat)\n", *tracePath)
	}
	if ledgerFile != nil && !*jsonOut {
		fmt.Printf("ledger written to %s (analyze with procdoctor)\n", *ledgerPath)
	}
	waitServe(ctx, hub)
}

// waitServe keeps the telemetry endpoints up after the run finishes so a
// live scrape (procmon, curl, Prometheus) can read the final state; the
// interrupt that cancels ctx ends it. No-op without -listen.
func waitServe(ctx context.Context, hub *telemetry.Hub) {
	if hub == nil || ctx.Err() != nil {
		return
	}
	fmt.Fprintln(os.Stderr, "telemetry: run complete; serving until interrupt")
	<-ctx.Done()
}

// concurrentJSON is one strategy's result in concurrent-mode -json
// output.
type concurrentJSON struct {
	Strategy      string                         `json:"strategy"`
	Model         string                         `json:"model"`
	Clients       int                            `json:"clients"`
	Ops           int                            `json:"ops"`
	WallSec       float64                        `json:"wall_sec"`
	ThroughputOps float64                        `json:"throughput_ops_per_sec"`
	P50LatencyUs  float64                        `json:"p50_latency_us"`
	P95LatencyUs  float64                        `json:"p95_latency_us"`
	SimTotalMs    float64                        `json:"sim_total_ms"`
	Counters      obs.CountersJSON               `json:"counters"`
	WallLatency   telemetry.SketchSummary        `json:"wall_latency"`
	SimLatency    telemetry.SketchSummary        `json:"sim_latency"`
	Contention    []telemetry.LockContentionJSON `json:"contention,omitempty"`
	CritPathNs    map[string]int64               `json:"crit_path_ns,omitempty"`
	TopBlockers   []blockerJSON                  `json:"top_blockers,omitempty"`
}

// blockerJSON is one aggregated blame edge in -json output.
type blockerJSON struct {
	Lock          string `json:"lock"`
	HolderSession int    `json:"holder_session"`
	HolderOp      string `json:"holder_op"`
	Waits         int    `json:"waits"`
	WaitNs        int64  `json:"wait_ns"`
}

// runConcurrent drives each strategy through the multi-session engine:
// the workload is dealt across -clients closed-loop sessions with
// exponential -think pauses, and the run reports wall-clock throughput
// and latency next to the simulated cost, then each run's lock-contention
// profile. With -trace, one span per operation is recorded, tagged with
// its session and commit sequence, plus one contention record per run.
// With -listen, each engine becomes the hub's metrics source and its
// events stream into the flight recorder. With -critpath, each op's wall
// time is decomposed and the top lock-wait blockers are reported; with
// -ledger, each strategy's cache-efficacy ledger is appended to the
// ledger file as one section.
func runConcurrent(ctx context.Context, p costmodel.Params, model costmodel.Model,
	strategies []costmodel.Strategy, scenario string, seed int64, clients int, think float64,
	traceFile, ledgerFile *os.File, critpath, jsonOut bool,
	hub *telemetry.Hub, rec *telemetry.Recorder) {
	if !jsonOut {
		label := ""
		if scenario != "" {
			label = fmt.Sprintf(", scenario %s", scenario)
		}
		fmt.Printf("%s, concurrent: %d sessions, think = %g ms, k=%.0f q=%.0f, seed = %d%s\n\n",
			model, clients, think, p.K, p.Q, seed, label)
		fmt.Printf("%-22s %8s %12s %10s %10s %12s\n",
			"strategy", "wall", "throughput", "p50", "p95", "sim cost")
	}
	var jsonRows []concurrentJSON
	var contRecs []telemetry.ContentionRecord
	for _, s := range strategies {
		if ctx.Err() != nil {
			break
		}
		cfg := sim.Config{Params: p, Model: model, Strategy: s, Seed: seed, Scenario: scenario}
		if ledgerFile != nil {
			cfg.Ledger = cache.NewLedger()
		}
		opt := engine.Options{
			Clients:      clients,
			ThinkMeanMs:  think,
			Recorder:     rec,
			ProfileLocks: true,
			Sketches:     true,
			CritPath:     critpath,
		}
		if rec != nil {
			// Always-on detectors: a p99-latency, contention-share or
			// wasted-work breach fires an EvDetector event, which
			// auto-dumps the flight ring (docs/DIAGNOSIS.md).
			th := telemetry.DefaultThresholds()
			opt.Detect = &th
		}
		if traceFile != nil {
			opt.Tracer = obs.NewTracer()
		}
		e := engine.New(cfg, opt)
		if hub != nil {
			hub.SetSource(e)
		}
		res := e.Run(ctx)
		contention := engine.ContentionJSON(res.Contention)
		contRec := telemetry.ContentionRecord{
			Type:  telemetry.RecordContention,
			Run:   shortName(s),
			Locks: contention,
		}
		contRecs = append(contRecs, contRec)
		if traceFile != nil {
			records := make([]any, 0, res.Ops+1)
			for _, sp := range opt.Tracer.Records(shortName(s)) {
				records = append(records, sp)
			}
			records = append(records, contRec)
			enc, err := obs.EncodeJSONL(records...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "procsim: encoding trace: %v\n", err)
				os.Exit(1)
			}
			if _, err := traceFile.Write(enc); err != nil {
				fmt.Fprintf(os.Stderr, "procsim: writing trace: %v\n", err)
				os.Exit(1)
			}
		}
		if ledgerFile != nil {
			meta := cache.LedgerMeta{
				Strategy: s.String(), Model: int(model), Clients: clients,
				Seed: seed, Queries: res.Queries, Updates: res.Updates,
				TotalMs: res.SimTotalMs,
			}
			if err := cache.WriteLedger(ledgerFile, meta, cfg.Ledger); err != nil {
				fmt.Fprintf(os.Stderr, "procsim: writing ledger: %v\n", err)
				os.Exit(1)
			}
		}
		var critNs map[string]int64
		var blockers []blockerJSON
		if critpath {
			critNs = map[string]int64{"lock_wait": 0, "io": 0, "recompute": 0, "compute": 0}
			for _, cp := range res.CritPaths {
				critNs["lock_wait"] += cp.WaitNs
				critNs["io"] += cp.IONs
				critNs["recompute"] += cp.RecomputeNs
				critNs["compute"] += cp.ComputeNs
			}
			for _, b := range res.TopBlockers {
				blockers = append(blockers, blockerJSON{
					Lock: b.Lock, HolderSession: b.HolderSession, HolderOp: b.HolderOp,
					Waits: b.Waits, WaitNs: b.WaitNs,
				})
			}
			if len(blockers) > 8 {
				blockers = blockers[:8]
			}
		}
		if jsonOut {
			jsonRows = append(jsonRows, concurrentJSON{
				Strategy:      s.String(),
				Model:         model.String(),
				Clients:       res.Clients,
				Ops:           res.Ops,
				WallSec:       res.WallSec,
				ThroughputOps: res.Throughput,
				P50LatencyUs:  float64(res.Percentile(50)) / 1e3,
				P95LatencyUs:  float64(res.Percentile(95)) / 1e3,
				SimTotalMs:    res.SimTotalMs,
				Counters:      obs.ToCountersJSON(res.Counters),
				WallLatency:   res.WallLatency,
				SimLatency:    res.SimLatency,
				Contention:    contention,
				CritPathNs:    critNs,
				TopBlockers:   blockers,
			})
			continue
		}
		fmt.Printf("%-22s %7.2fs %8.0f op/s %7.0f us %7.0f us %9.1f ms\n",
			s, res.WallSec, res.Throughput,
			float64(res.Percentile(50))/1e3, float64(res.Percentile(95))/1e3,
			res.SimTotalMs)
		if critpath {
			total := critNs["lock_wait"] + critNs["io"] + critNs["recompute"] + critNs["compute"]
			if total > 0 {
				fmt.Printf("  critical path: lock-wait %4.1f%%  io %4.1f%%  recompute %4.1f%%  compute %4.1f%%\n",
					100*float64(critNs["lock_wait"])/float64(total),
					100*float64(critNs["io"])/float64(total),
					100*float64(critNs["recompute"])/float64(total),
					100*float64(critNs["compute"])/float64(total))
			}
			for i, b := range blockers {
				if i >= 3 {
					break
				}
				fmt.Printf("  blocker: %-14s held by session %d (%s): %d waits, %.2f ms\n",
					b.Lock, b.HolderSession, b.HolderOp, b.Waits, float64(b.WaitNs)/1e6)
			}
		}
	}
	if !jsonOut {
		for _, cr := range contRecs {
			fmt.Println()
			telemetry.RenderContention(os.Stdout, cr, 5)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"model":    model.String(),
			"scenario": scenario,
			"clients":  clients,
			"think":    think,
			"seed":     seed,
			"runs":     jsonRows,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
	}
	if traceFile != nil && !jsonOut {
		fmt.Println("\ntrace written (render with procstat)")
	}
}

// servedJSON is one strategy's result in served-mode -json output.
type servedJSON struct {
	Strategy      string           `json:"strategy"`
	Model         string           `json:"model"`
	Clients       int              `json:"clients"`
	Ops           int              `json:"ops"`
	WallSec       float64          `json:"wall_sec"`
	ThroughputOps float64          `json:"throughput_ops_per_sec"`
	SimTotalMs    float64          `json:"sim_total_ms"`
	Counters      obs.CountersJSON `json:"counters"`
	// MatchesSequential is reported for 1-client runs: the served
	// world's counters and simulated cost equal sim.Run's byte for byte.
	MatchesSequential bool `json:"matches_sequential,omitempty"`
}

// runServed drives each strategy's workload through procserved: a bench
// world is opened over the wire and every session steps through its
// dealt operation stream via the standard database/sql driver, so the
// printed throughput is a measured wall-clock figure that includes real
// wire round-trips. With -connect the workload runs against an external
// server; otherwise a loopback procserved lives for the run's duration.
// One-client runs additionally check identity against sim.Run.
func runServed(ctx context.Context, p costmodel.Params, model costmodel.Model,
	strategies []costmodel.Strategy, scenario string, seed int64, clients int, addr string, jsonOut bool) {
	if addr == "" {
		srv := server.New(server.Options{})
		a, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "procsim: starting loopback procserved: %v\n", err)
			os.Exit(1)
		}
		addr = a
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
	}
	if clients < 1 {
		clients = 1
	}
	if !jsonOut {
		fmt.Printf("%s, served by %s: %d sessions over database/sql, k=%.0f q=%.0f, seed = %d\n\n",
			model, addr, clients, p.K, p.Q, seed)
		fmt.Printf("%-22s %8s %14s %12s   %s\n",
			"strategy", "wall", "throughput", "sim cost", "identity")
	}
	var jsonRows []servedJSON
	for _, s := range strategies {
		if ctx.Err() != nil {
			break
		}
		res, err := experiments.DriveServed(ctx, addr, &wire.WorldOpen{
			Params:   p,
			Model:    experiments.WireModel(model),
			Strategy: experiments.WireStrategy(s),
			Seed:     seed,
			Clients:  clients,
			Scenario: scenario,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
		identity := "-"
		match := false
		if clients == 1 {
			sq := sim.Run(sim.Config{Params: p, Model: model, Strategy: s, Seed: seed, Scenario: scenario})
			match = res.Counters == sq.Counters && res.SimTotalMs == sq.TotalMs
			if match {
				identity = "= sim.Run"
			} else {
				identity = "DIVERGES from sim.Run"
			}
		}
		if jsonOut {
			jsonRows = append(jsonRows, servedJSON{
				Strategy:          s.String(),
				Model:             model.String(),
				Clients:           res.Clients,
				Ops:               res.Ops,
				WallSec:           res.WallSec,
				ThroughputOps:     res.ThroughputOps,
				SimTotalMs:        res.SimTotalMs,
				Counters:          obs.ToCountersJSON(res.Counters),
				MatchesSequential: match,
			})
			continue
		}
		fmt.Printf("%-22s %7.2fs %10.0f op/s %9.1f ms   %s\n",
			s, res.WallSec, res.ThroughputOps, res.SimTotalMs, identity)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"model":    model.String(),
			"scenario": scenario,
			"clients":  clients,
			"seed":     seed,
			"served":   true,
			"runs":     jsonRows,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
	}
}
