// Command procsim runs one simulated workload against the executable
// system and prints the measured cost next to the analytic prediction.
//
// Usage:
//
//	procsim                               # paper defaults, all strategies
//	procsim -strategy uc-avm -P 0.3       # one strategy at P = 0.3
//	procsim -model 2 -f 0.01 -N 50000     # tweak parameters
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbproc/internal/costmodel"
	"dbproc/internal/sim"
)

var strategyNames = map[string]costmodel.Strategy{
	"recompute": costmodel.AlwaysRecompute,
	"ci":        costmodel.CacheInvalidate,
	"uc-avm":    costmodel.UpdateCacheAVM,
	"uc-rvm":    costmodel.UpdateCacheRVM,
}

func main() {
	p := costmodel.Default()
	flag.Float64Var(&p.N, "N", p.N, "tuples in R1")
	flag.Float64Var(&p.F, "f", p.F, "selectivity of C_f")
	flag.Float64Var(&p.F2, "f2", p.F2, "selectivity of C_f2")
	flag.Float64Var(&p.N1, "N1", p.N1, "P1 procedures")
	flag.Float64Var(&p.N2, "N2", p.N2, "P2 procedures")
	flag.Float64Var(&p.K, "k", p.K, "update transactions")
	flag.Float64Var(&p.Q, "q", p.Q, "procedure accesses")
	flag.Float64Var(&p.L, "l", p.L, "tuples modified per update")
	flag.Float64Var(&p.SF, "sf", p.SF, "sharing factor")
	flag.Float64Var(&p.Z, "Z", p.Z, "locality skew")
	flag.Float64Var(&p.CInval, "cinval", p.CInval, "invalidation cost (ms)")
	upd := flag.Float64("P", -1, "update probability (overrides -k, keeping -q)")
	modelFlag := flag.Int("model", 1, "procedure model: 1 (2-way joins) or 2 (3-way)")
	strategyFlag := flag.String("strategy", "", "recompute | ci | uc-avm | uc-rvm (default: all)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if *upd >= 0 {
		p = p.WithUpdateProbability(*upd)
	}
	model := costmodel.Model(*modelFlag)

	var strategies []costmodel.Strategy
	if *strategyFlag == "" {
		strategies = costmodel.Strategies[:]
	} else {
		s, ok := strategyNames[strings.ToLower(*strategyFlag)]
		if !ok {
			fmt.Fprintf(os.Stderr, "procsim: unknown strategy %q (want recompute, ci, uc-avm or uc-rvm)\n", *strategyFlag)
			os.Exit(1)
		}
		strategies = []costmodel.Strategy{s}
	}

	fmt.Printf("%s, P = %.2f (k=%.0f q=%.0f), f = %g, N1+N2 = %.0f, SF = %g, Z = %g, C_inval = %g ms\n\n",
		model, p.UpdateProbability(), p.K, p.Q, p.F, p.NumProcs(), p.SF, p.Z, p.CInval)
	fmt.Printf("%-22s %12s %12s %7s   %s\n", "strategy", "measured", "predicted", "ratio", "events")
	for _, s := range strategies {
		res := sim.Run(sim.Config{Params: p, Model: model, Strategy: s, Seed: *seed})
		fmt.Printf("%-22s %9.1f ms %9.1f ms %7.2f   %v\n",
			s, res.MsPerQuery, res.PredictedMs, res.MsPerQuery/res.PredictedMs, res.Counters)
	}
}
