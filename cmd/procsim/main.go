// Command procsim runs one simulated workload against the executable
// system and prints the measured cost next to the analytic prediction,
// followed by a model-drift summary.
//
// Usage:
//
//	procsim                               # paper defaults, all strategies
//	procsim -strategy uc-avm -P 0.3       # one strategy at P = 0.3
//	procsim -model 2 -f 0.01 -N 50000     # tweak parameters
//	procsim -breakdown                    # per-component cost tables
//	procsim -trace out.jsonl              # per-operation trace (see procstat)
//	procsim -json                         # machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dbproc/internal/costmodel"
	"dbproc/internal/obs"
	"dbproc/internal/sim"
)

var strategyNames = map[string]costmodel.Strategy{
	"recompute": costmodel.AlwaysRecompute,
	"ci":        costmodel.CacheInvalidate,
	"uc-avm":    costmodel.UpdateCacheAVM,
	"uc-rvm":    costmodel.UpdateCacheRVM,
}

// shortName inverts strategyNames for run labels in trace files.
func shortName(s costmodel.Strategy) string {
	for k, v := range strategyNames {
		if v == s {
			return k
		}
	}
	return s.String()
}

// runJSON is one strategy's result in -json output.
type runJSON struct {
	obs.RunRecord
	Ratio          float64                     `json:"ratio"`
	TotalMs        float64                     `json:"total_ms"`
	TuplesReturned int                         `json:"tuples_returned"`
	Counters       obs.CountersJSON            `json:"counters"`
	Breakdown      map[string]obs.CountersJSON `json:"breakdown,omitempty"`
}

// driftJSON is one drift-monitor entry in -json output.
type driftJSON struct {
	Strategy      string  `json:"strategy"`
	Model         string  `json:"model"`
	Runs          int     `json:"runs"`
	MeasuredMs    float64 `json:"measured_ms_per_query"`
	PredictedMs   float64 `json:"predicted_ms_per_query"`
	RelativeError float64 `json:"relative_error"`
	Drifting      bool    `json:"drifting"`
}

func main() {
	p := costmodel.Default()
	flag.Float64Var(&p.N, "N", p.N, "tuples in R1")
	flag.Float64Var(&p.F, "f", p.F, "selectivity of C_f")
	flag.Float64Var(&p.F2, "f2", p.F2, "selectivity of C_f2")
	flag.Float64Var(&p.N1, "N1", p.N1, "P1 procedures")
	flag.Float64Var(&p.N2, "N2", p.N2, "P2 procedures")
	flag.Float64Var(&p.K, "k", p.K, "update transactions")
	flag.Float64Var(&p.Q, "q", p.Q, "procedure accesses")
	flag.Float64Var(&p.L, "l", p.L, "tuples modified per update")
	flag.Float64Var(&p.SF, "sf", p.SF, "sharing factor")
	flag.Float64Var(&p.Z, "Z", p.Z, "locality skew")
	flag.Float64Var(&p.CInval, "cinval", p.CInval, "invalidation cost (ms)")
	upd := flag.Float64("P", -1, "update probability (overrides -k, keeping -q)")
	modelFlag := flag.Int("model", 1, "procedure model: 1 (2-way joins) or 2 (3-way)")
	strategyFlag := flag.String("strategy", "", "recompute | ci | uc-avm | uc-rvm (default: all)")
	seed := flag.Int64("seed", 1, "workload seed")
	tracePath := flag.String("trace", "", "write a per-operation JSONL trace to this file (render with procstat)")
	breakdown := flag.Bool("breakdown", false, "print the per-component cost breakdown of each run")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	driftThreshold := flag.Float64("drift-threshold", obs.DefaultDriftThreshold,
		"relative error above which measured cost is flagged as drifting from the model")
	flag.Parse()

	if *upd >= 0 {
		p = p.WithUpdateProbability(*upd)
	}
	model := costmodel.Model(*modelFlag)

	var strategies []costmodel.Strategy
	if *strategyFlag == "" {
		strategies = costmodel.Strategies[:]
	} else {
		s, ok := strategyNames[strings.ToLower(*strategyFlag)]
		if !ok {
			fmt.Fprintf(os.Stderr, "procsim: unknown strategy %q (want recompute, ci, uc-avm or uc-rvm)\n", *strategyFlag)
			os.Exit(1)
		}
		strategies = []costmodel.Strategy{s}
	}

	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		defer f.Close()
	}

	drift := obs.NewDrift(*driftThreshold)
	var jsonRuns []runJSON

	if !*jsonOut {
		fmt.Printf("%s, P = %.2f (k=%.0f q=%.0f), f = %g, N1+N2 = %.0f, SF = %g, Z = %g, C_inval = %g ms\n\n",
			model, p.UpdateProbability(), p.K, p.Q, p.F, p.NumProcs(), p.SF, p.Z, p.CInval)
		fmt.Printf("%-22s %12s %12s %7s %6s   %s\n",
			"strategy", "measured", "predicted", "ratio", "cold", "events")
	}
	for _, s := range strategies {
		cfg := sim.Config{Params: p, Model: model, Strategy: s, Seed: *seed}
		if traceFile != nil {
			cfg.Tracer = obs.NewTracer()
		}
		w := sim.Build(cfg)
		res := w.Run()
		run := shortName(s)
		bd := w.Meter().Breakdown()
		costs := w.Meter().Costs()
		drift.Record(s.String(), model.String(), res.MsPerQuery, res.PredictedMs)

		rec := obs.RunRecord{
			Type:                obs.RecordRun,
			Run:                 run,
			Strategy:            s.String(),
			Model:               model.String(),
			Seed:                *seed,
			Queries:             res.Queries,
			Updates:             res.Updates,
			MeasuredMsPerQuery:  res.MsPerQuery,
			PredictedMsPerQuery: res.PredictedMs,
		}
		if res.HasColdFraction() {
			cf := res.ColdFraction
			rec.ColdFraction = &cf
		}

		if traceFile != nil {
			records := []any{rec, obs.BreakdownToRecord(run, bd, costs)}
			for _, sp := range cfg.Tracer.Records(run) {
				records = append(records, sp)
			}
			if err := obs.WriteJSONL(traceFile, records...); err != nil {
				fmt.Fprintf(os.Stderr, "procsim: writing trace: %v\n", err)
				os.Exit(1)
			}
		}

		if *jsonOut {
			jr := runJSON{
				RunRecord:      rec,
				Ratio:          res.MsPerQuery / res.PredictedMs,
				TotalMs:        res.TotalMs,
				TuplesReturned: res.TuplesReturned,
				Counters:       obs.ToCountersJSON(res.Counters),
			}
			if *breakdown {
				jr.Breakdown = obs.BreakdownToRecord(run, bd, costs).Components
			}
			jsonRuns = append(jsonRuns, jr)
			continue
		}

		fmt.Printf("%-22s %9.1f ms %9.1f ms %7.2f %6s   %v\n",
			s, res.MsPerQuery, res.PredictedMs, res.MsPerQuery/res.PredictedMs,
			res.ColdFractionString(), res.Counters)
		if *breakdown {
			fmt.Println()
			obs.RenderBreakdown(os.Stdout, bd, costs)
			fmt.Println()
		}
	}

	if *jsonOut {
		var drifts []driftJSON
		for _, e := range drift.Entries() {
			drifts = append(drifts, driftJSON{
				Strategy:      e.Strategy,
				Model:         e.Model,
				Runs:          e.Runs,
				MeasuredMs:    e.MeanMeasured(),
				PredictedMs:   e.MeanPredicted(),
				RelativeError: e.RelErr(),
				Drifting:      drift.Flagged(e),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"model":           model.String(),
			"seed":            *seed,
			"drift_threshold": *driftThreshold,
			"runs":            jsonRuns,
			"drift":           drifts,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Println()
		drift.Render(os.Stdout)
	}
	if traceFile != nil && !*jsonOut {
		fmt.Printf("\ntrace written to %s (render with procstat)\n", *tracePath)
	}
}
