package dbproc

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func TestFacadeCostModel(t *testing.T) {
	p := DefaultParams()
	if p.N != 100_000 || p.NumProcs() != 200 {
		t.Fatalf("DefaultParams = %+v", p)
	}
	p = p.WithUpdateProbability(0.1)
	costs := AllCosts(Model1, p)
	for _, s := range Strategies {
		if got := Cost(Model1, s, p); got != costs[s] || got <= 0 || math.IsNaN(got) {
			t.Fatalf("Cost(%v) = %v vs AllCosts %v", s, got, costs[s])
		}
	}
	w := BestStrategy(Model1, p)
	if w.Best == AlwaysRecompute {
		t.Fatal("at P=0.1 a caching strategy must win")
	}
	if Cost(Model2, AlwaysRecompute, p) <= Cost(Model1, AlwaysRecompute, p) {
		t.Fatal("model 2 recompute should cost more (3-way joins)")
	}
}

func TestFacadeSimulate(t *testing.T) {
	p := DefaultParams()
	p.N = 10_000
	p.F = 0.01
	p.N1, p.N2 = 8, 8
	p.K, p.Q = 10, 10
	res := Simulate(SimConfig{Params: p, Model: Model1, Strategy: CacheInvalidate, Seed: 9})
	if res.Queries != 10 || res.Updates != 10 {
		t.Fatalf("bookkeeping wrong: %+v", res)
	}
	if res.MsPerQuery <= 0 || res.PredictedMs <= 0 {
		t.Fatalf("measurements missing: %+v", res)
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := Experiments()
	if len(all) < 20 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	var buf bytes.Buffer
	if !RunExperiment(context.Background(), "fig02", ExperimentOptions{}, &buf) {
		t.Fatal("fig02 missing")
	}
	if !strings.Contains(buf.String(), "tuples in R1") {
		t.Fatalf("fig02 output wrong: %q", buf.String())
	}
	if RunExperiment(context.Background(), "not-an-experiment", ExperimentOptions{}, &buf) {
		t.Fatal("unknown experiment reported success")
	}
}
