package client_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"testing"
	"time"

	"dbproc/internal/dbtest"
	"dbproc/internal/server"

	_ "dbproc/client"
)

// startServer boots a loopback procserved and returns its address; the
// server drains on test cleanup and the cleanup asserts every handle
// table drained to zero — the suite-wide leak check the issue demands.
func startServer(t *testing.T, opt server.Options) (*server.Server, string) {
	t.Helper()
	srv := server.New(opt)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, addr
}

// drained polls until the server's live handles hit zero; pool teardown
// is asynchronous, so a direct assertion would race the conn teardown.
func drained(t *testing.T, srv *server.Server, conns bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stat()
		if st.Stmts == 0 && st.Cursors == 0 && st.Tx == 0 && (!conns || st.Conns == 0) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("handles not drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustExec(t *testing.T, db *sql.DB, stmt string) sql.Result {
	t.Helper()
	res, err := db.Exec(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res
}

// seedSchema builds the suite's base tables through the driver itself.
func seedSchema(t *testing.T, db *sql.DB) {
	t.Helper()
	mustExec(t, db, "create emp (tid, age, dept, salary) cluster on age")
	mustExec(t, db, "create dept (dname, floor) hash on dname buckets 4")
	ages := []int{25, 31, 35, 41, 55, 35}
	depts := []int{10, 10, 20, 20, 30, 30}
	for i := range ages {
		mustExec(t, db, fmt.Sprintf("append to emp (tid = %d, age = %d, dept = %d, salary = %d)",
			i+1, ages[i], depts[i], (i+1)*100))
	}
	for i, d := range []int{10, 20, 30} {
		mustExec(t, db, fmt.Sprintf("append to dept (dname = %d, floor = %d)", d, i%2+1))
	}
}

func countRows(t *testing.T, rows *sql.Rows) int {
	t.Helper()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestDriverConformance is the end-to-end driver suite: pooled reuse,
// prepared re-execution, transaction visibility, mid-cursor close, and
// context cancellation — each scenario followed by a server-side
// handle-drain assertion.
func TestDriverConformance(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	srv, addr := startServer(t, server.Options{FetchBatch: 4})
	db, err := sql.Open("dbproc", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(2)
	seedSchema(t, db)

	t.Run("PooledReuse", func(t *testing.T) {
		before := srv.Stat().Accepted
		for i := 0; i < 10; i++ {
			rows, err := db.Query("retrieve (emp.tid) where emp.age >= 31")
			if err != nil {
				t.Fatal(err)
			}
			if n := countRows(t, rows); n != 5 {
				t.Fatalf("query %d: %d rows, want 5", i, n)
			}
		}
		if got := srv.Stat().Accepted - before; got > 2 {
			t.Fatalf("10 queries dialed %d new connections; pool not reused", got)
		}
		drained(t, srv, false)
	})

	t.Run("PreparedReexecution", func(t *testing.T) {
		stmt, err := db.Prepare("retrieve (emp.tid, emp.salary) where emp.dept = 20")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			rows, err := stmt.Query()
			if err != nil {
				t.Fatalf("execution %d: %v", i, err)
			}
			if n := countRows(t, rows); n != 2 {
				t.Fatalf("execution %d: %d rows, want 2", i, n)
			}
		}
		if st := srv.Stat(); st.Stmts == 0 {
			t.Fatal("prepared statement not held server-side")
		}
		if err := stmt.Close(); err != nil {
			t.Fatal(err)
		}
		drained(t, srv, false)
	})

	t.Run("TxCommitVisibility", func(t *testing.T) {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec("append to emp (tid = 7, age = 62, dept = 30, salary = 700)"); err != nil {
			t.Fatal(err)
		}
		rows, err := tx.Query("retrieve (emp.tid) where emp.age = 62")
		if err != nil {
			t.Fatal(err)
		}
		if n := countRows(t, rows); n != 1 {
			t.Fatalf("tx does not see its own append: %d rows", n)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		rows, err = db.Query("retrieve (emp.tid) where emp.age = 62")
		if err != nil {
			t.Fatal(err)
		}
		if n := countRows(t, rows); n != 1 {
			t.Fatalf("committed append invisible: %d rows", n)
		}
		drained(t, srv, false)
	})

	t.Run("TxRollbackVisibility", func(t *testing.T) {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		res, err := tx.Exec("delete from emp where emp.age >= 0")
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.RowsAffected(); n != 7 {
			t.Fatalf("delete affected %d rows, want 7", n)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
		rows, err := db.Query("retrieve (emp.tid) where emp.age >= 0")
		if err != nil {
			t.Fatal(err)
		}
		if n := countRows(t, rows); n != 7 {
			t.Fatalf("rollback lost rows: %d, want 7", n)
		}
		drained(t, srv, false)
	})

	t.Run("RowsCloseMidCursor", func(t *testing.T) {
		// FetchBatch is 4, so 7 emp rows leave a live cursor after the
		// first batch. Abandoning the rows early must free it.
		rows, err := db.Query("retrieve (emp.all) where emp.age >= 0")
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() || !rows.Next() {
			t.Fatal("fewer than 2 rows")
		}
		if st := srv.Stat(); st.Cursors != 1 {
			t.Fatalf("cursor not held server-side: %+v", st)
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		drained(t, srv, false)
	})

	t.Run("ContextCancellationMidQuery", func(t *testing.T) {
		// Hold the statement gate through an open transaction, then
		// cancel a query stuck behind it.
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_, qerr := db.QueryContext(ctx, "retrieve (emp.tid) where emp.age >= 0")
		if !errors.Is(qerr, context.DeadlineExceeded) {
			t.Fatalf("blocked query returned %v, want deadline exceeded", qerr)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
		// The cancelled connection consumed the server's answer, so it
		// stays pooled and usable.
		rows, err := db.Query("retrieve (emp.tid) where emp.age >= 0")
		if err != nil {
			t.Fatalf("query after cancellation: %v", err)
		}
		if n := countRows(t, rows); n != 7 {
			t.Fatalf("%d rows after cancellation, want 7", n)
		}
		drained(t, srv, false)
	})

	t.Run("ProcedureThroughDriver", func(t *testing.T) {
		mustExec(t, db, "define procedure seniors as retrieve (emp.all) where emp.age >= 41")
		rows, err := db.Query("execute seniors")
		if err != nil {
			t.Fatal(err)
		}
		if n := countRows(t, rows); n != 3 {
			t.Fatalf("seniors returned %d rows, want 3", n)
		}
		drained(t, srv, false)
	})

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	drained(t, srv, true)
}

// TestAdmissionLimit: connections beyond MaxConns are refused at the
// handshake with a limit error, and a freed slot admits again.
func TestAdmissionLimit(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	_, addr := startServer(t, server.Options{MaxConns: 1})
	db1, err := sql.Open("dbproc", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	if err := db1.Ping(); err != nil {
		t.Fatal(err)
	}
	db2, err := sql.Open("dbproc", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Ping(); err == nil {
		t.Fatal("second connection admitted past MaxConns=1")
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := db2.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("freed connection slot never admitted a new client")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain: Shutdown refuses new work and existing pooled
// connections close without hanging.
func TestGracefulDrain(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	srv, addr := startServer(t, server.Options{})
	db, err := sql.Open("dbproc", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	db2, err := sql.Open("dbproc", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Ping(); err == nil {
		t.Fatal("connection admitted after drain")
	}
}
