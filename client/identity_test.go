package client_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"dbproc/client"
	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/engine"
	"dbproc/internal/obs"
	"dbproc/internal/server"
	"dbproc/internal/sim"
	"dbproc/internal/wire"
)

func identityParams(k, q int) costmodel.Params {
	p := costmodel.Default()
	p.N = 600
	p.F = 8.0 / p.N
	p.F2 = 0.02
	p.N1 = 3
	p.N2 = 3
	p.L = 2
	p.SF = 0.5
	p.Z = 0.3
	p.K = float64(k)
	p.Q = float64(q)
	return p
}

// TestServedIdentity extends TestDiagnosisPreservesSequentialIdentity
// across the wire: a 1-client workload driven operation by operation
// through a loopback procserved must reproduce the sequential
// simulator's counters and cost exactly, commit the same history
// (digest) as an in-process engine run, and serialize a byte-identical
// cache-efficacy ledger.
func TestServedIdentity(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	// Tracing is ON for the whole run: propagated contexts and server
	// breakdowns ride every frame, and identity must still hold — the
	// observability layer cannot perturb what the engine computes.
	var spans bytes.Buffer
	_, addr := startServer(t, server.Options{TraceSink: obs.NewWireSpanSink(&spans)})
	cn, err := client.DialTraced(addr, client.NewTracer(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ctx := context.Background()
	params := identityParams(15, 25)

	for _, tc := range []struct {
		strategy string
		strat    costmodel.Strategy
		model    string
		m        costmodel.Model
	}{
		{"ci", costmodel.CacheInvalidate, "1", costmodel.Model1},
		{"uc-avm", costmodel.UpdateCacheAVM, "2", costmodel.Model2},
		{"recompute", costmodel.AlwaysRecompute, "1", costmodel.Model1},
	} {
		t.Run(fmt.Sprintf("%s/model%s", tc.strategy, tc.model), func(t *testing.T) {
			cfg := sim.Config{
				Params: params, Model: tc.m, Strategy: tc.strat,
				Seed: 41, R2UpdateFraction: 0.3,
			}
			seq := sim.Run(cfg)

			// In-process reference: engine, 1 client, diagnosis on —
			// the configuration the served world must reproduce.
			lcfg := cfg
			lcfg.Ledger = cache.NewLedger()
			e := engine.New(lcfg, engine.Options{Clients: 1, RecordHistory: true, CritPath: true})
			local := e.Run(context.Background())
			var localLedger bytes.Buffer
			meta := cache.LedgerMeta{
				Strategy: lcfg.Strategy.String(), Model: int(tc.m), Clients: 1,
				Seed: lcfg.Seed, Queries: local.Queries, Updates: local.Updates,
				TotalMs: local.SimTotalMs,
			}
			if err := cache.WriteLedger(&localLedger, meta, lcfg.Ledger); err != nil {
				t.Fatal(err)
			}

			// Served run: open a world, drive session 0 to exhaustion.
			opened, err := cn.WorldOpen(ctx, &wire.WorldOpen{
				Params: params, Model: tc.model, Strategy: tc.strategy,
				Seed: 41, R2UpdateFraction: 0.3, Clients: 1,
				Ledger: true, CritPath: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cn.WorldClose(ctx, opened.World)
			if opened.Sessions != 1 || len(opened.Ops) != 1 {
				t.Fatalf("world shape %+v, want 1 session", opened)
			}
			steps := 0
			for {
				step, err := cn.WorldNext(ctx, opened.World, 0)
				if err != nil {
					t.Fatalf("step %d: %v", steps, err)
				}
				if step.Done {
					break
				}
				steps++
				if steps > opened.Ops[0] {
					t.Fatalf("world never drained after %d steps", steps)
				}
			}
			if steps != opened.Ops[0] {
				t.Fatalf("executed %d ops, world advertised %d", steps, opened.Ops[0])
			}
			stats, err := cn.WorldStats(ctx, opened.World)
			if err != nil {
				t.Fatal(err)
			}

			// Identity against the sequential simulator...
			if stats.Counters != seq.Counters {
				t.Fatalf("served counters diverge from sequential:\n served     %v\n sequential %v",
					stats.Counters, seq.Counters)
			}
			if stats.SimTotalMs != seq.TotalMs {
				t.Fatalf("served cost %v, sequential %v", stats.SimTotalMs, seq.TotalMs)
			}
			// ...and against the in-process engine: same committed
			// history, byte-identical ledger.
			if want := server.HistoryDigest(local.History); stats.HistoryDigest != want {
				t.Fatalf("history digest %s, in-process %s", stats.HistoryDigest, want)
			}
			if !bytes.Equal(stats.Ledger, localLedger.Bytes()) {
				t.Fatalf("served ledger differs from in-process ledger:\n--- served\n%s\n--- local\n%s",
					stats.Ledger, localLedger.Bytes())
			}
			if stats.Ops != local.Ops || stats.Queries != local.Queries || stats.Updates != local.Updates {
				t.Fatalf("op counts diverge: served %d/%d/%d, local %d/%d/%d",
					stats.Ops, stats.Queries, stats.Updates, local.Ops, local.Queries, local.Updates)
			}
		})
	}
}
