package client

import (
	"context"
	"database/sql/driver"
	"sync"
	"sync/atomic"
	"time"

	"dbproc/internal/obs"
	"dbproc/internal/wire"
)

// Tracer instruments a connection's requests end to end: every request
// that can carry a trace context gets a fresh one (the driver-side call
// is the root span, the server's span nests under it), the driver
// stamps its own wall clock around the round trip, and the server's
// reported breakdown splits that wall into network time (client wall
// minus server wall) and the server's exact segment partition.
//
// A Tracer aggregates Stats over all requests and per connection, and —
// when built with a sink — writes one client-side wire span per request
// as JSONL, which cmd/proctrace merges with the server's file into a
// single cross-process timeline.
//
// Attach a Tracer at dial time (DialTraced, or NewConnector +
// sql.OpenDB). Plain Dial / sql.Open stay untraced and put exactly the
// pre-tracing bytes on the wire.
type Tracer struct {
	sink     *obs.WireSpanSink
	nextConn atomic.Int64

	mu   sync.Mutex
	agg  Stats
	conn map[int64]*Stats
}

// Stats accumulates driver-side latency accounting. ServerWallNs and
// the segment sums only grow on responses that carried a breakdown
// (Result / WorldStep frames); NetworkNs is the paired remainder, so
// NetworkNs + ServerWallNs partitions the breakdown-bearing share of
// ClientWallNs.
type Stats struct {
	// Requests counts traced round trips; WithServer the subset whose
	// response carried a server breakdown.
	Requests   int64
	WithServer int64
	// Errors counts requests the server answered with an error frame;
	// Cancelled those the caller's context killed.
	Errors    int64
	Cancelled int64
	// ClientWallNs is driver-stamped wall time across all traced
	// requests; ServerWallNs the server-reported service wall;
	// NetworkNs the derived wire time (clamped at zero: the two sides
	// read different clocks only through their own durations, so no
	// skew enters, but coarse timers can tie).
	ClientWallNs int64
	ServerWallNs int64
	NetworkNs    int64
	// Server segment sums, straight from the breakdowns.
	AdmissionNs int64
	GateNs      int64
	LockWaitNs  int64
	IONs        int64
	RecomputeNs int64
	ComputeNs   int64
}

func (s *Stats) add(o Stats) {
	s.Requests += o.Requests
	s.WithServer += o.WithServer
	s.Errors += o.Errors
	s.Cancelled += o.Cancelled
	s.ClientWallNs += o.ClientWallNs
	s.ServerWallNs += o.ServerWallNs
	s.NetworkNs += o.NetworkNs
	s.AdmissionNs += o.AdmissionNs
	s.GateNs += o.GateNs
	s.LockWaitNs += o.LockWaitNs
	s.IONs += o.IONs
	s.RecomputeNs += o.RecomputeNs
	s.ComputeNs += o.ComputeNs
}

// NewTracer builds a tracer. sink may be nil: stats still accumulate,
// no JSONL is written.
func NewTracer(sink *obs.WireSpanSink) *Tracer {
	return &Tracer{sink: sink, conn: make(map[int64]*Stats)}
}

// Stats returns the aggregate over every traced request so far.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.agg
}

// ConnStats returns a copy of the per-connection accounting, keyed by
// the tracer-assigned connection id (one per dialed Conn, so a pooled
// connection keeps one row across reuse).
func (t *Tracer) ConnStats() map[int64]Stats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int64]Stats, len(t.conn))
	for id, s := range t.conn {
		out[id] = *s
	}
	return out
}

// register assigns the next connection id.
func (t *Tracer) register() int64 { return t.nextConn.Add(1) }

// breakdownOf pulls the server breakdown off the response frames that
// carry one.
func breakdownOf(resp any) *wire.ServerBreakdown {
	switch r := resp.(type) {
	case *wire.Result:
		return r.Server
	case *wire.WorldStep:
		return r.Server
	}
	return nil
}

// finish records one traced round trip: stats always, a client wire
// span when the tracer has a sink.
func (t *Tracer) finish(connID int64, tc *wire.TraceContext, name string, start time.Time, wallNs int64, resp any, err error, ctx context.Context) {
	var d Stats
	d.Requests = 1
	d.ClientWallNs = wallNs
	errCode := ""
	if err != nil {
		if ctx.Err() != nil {
			d.Cancelled = 1
			errCode = wire.CodeCancelled
		} else if werr, ok := err.(*wire.Error); ok {
			d.Errors = 1
			errCode = werr.Code
		}
	}
	phase := ""
	bd := breakdownOf(resp)
	if step, ok := resp.(*wire.WorldStep); ok {
		phase = step.Phase
	}
	if bd != nil {
		d.WithServer = 1
		d.ServerWallNs = bd.WallNs
		if net := wallNs - bd.WallNs; net > 0 {
			d.NetworkNs = net
		}
		d.AdmissionNs = bd.AdmissionNs
		d.GateNs = bd.GateNs
		d.LockWaitNs = bd.LockWaitNs
		d.IONs = bd.IONs
		d.RecomputeNs = bd.RecomputeNs
		d.ComputeNs = bd.ComputeNs
	}
	t.mu.Lock()
	t.agg.add(d)
	cs := t.conn[connID]
	if cs == nil {
		cs = &Stats{}
		t.conn[connID] = cs
	}
	cs.add(d)
	t.mu.Unlock()
	if t.sink == nil {
		return
	}
	rec := obs.WireSpanRecord{
		Side: obs.SideClient, TraceID: tc.TraceID, SpanID: tc.SpanID,
		Name: name, Conn: connID, Phase: phase,
		StartUnixNs: start.UnixNano(), DurNs: wallNs,
		NetworkNs: d.NetworkNs, Err: errCode,
	}
	t.sink.Write(rec)
}

// DialTraced is Dial with every request traced through t.
func DialTraced(addr string, t *Tracer) (*Conn, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	c.tracer = t
	c.connID = t.register()
	return c, nil
}

// NewConnector returns a database/sql connector whose pooled
// connections are traced through t (pass it to sql.OpenDB). A nil
// tracer yields the same untraced pool as sql.Open("dbproc", addr).
func NewConnector(addr string, t *Tracer) driver.Connector {
	return connector{addr: addr, d: &Driver{}, tracer: t}
}
