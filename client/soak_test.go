package client_test

import (
	"context"
	"database/sql"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"dbproc/client"
	"dbproc/internal/dbtest"
	"dbproc/internal/server"
	"dbproc/internal/telemetry"
	"dbproc/internal/wire"
)

// TestServedRaceSoak hammers one loopback procserved with 8 concurrent
// database/sql clients — mixed DML, queries, cursors, procedures, and
// transactions — while two more drive a 4-session bench world through
// the "@bench next" statement dialect. Run under -race (verify.sh tier
// 3) it is the data-race gate for the whole serving stack; on a stall
// the watchdog dumps goroutines and the flight recorder's tail lands in
// TESTLOG_served_soak_flight.jsonl.
func TestServedRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	rec := telemetry.NewRecorder(4096)
	defer dbtest.Watchdog(t, 4*time.Minute, func() {
		f, err := os.Create("TESTLOG_served_soak_flight.jsonl")
		if err == nil {
			rec.DumpJSONL(f, "soak watchdog")
			f.Close()
		}
	})()
	srv, addr := startServer(t, server.Options{Recorder: rec, FetchBatch: 8})
	db, err := sql.Open("dbproc", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(8)
	seedSchema(t, db)
	mustExec(t, db, "define procedure seniors as retrieve (emp.all) where emp.age >= 41")

	const clients = 8
	const opsPer = 40
	var wg sync.WaitGroup
	errCh := make(chan error, clients+2)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				tid := 100 + c*opsPer + i
				switch i % 5 {
				case 0:
					if _, err := db.Exec(fmt.Sprintf(
						"append to emp (tid = %d, age = %d, dept = 10, salary = 1)", tid, 20+i%50)); err != nil {
						errCh <- fmt.Errorf("client %d append: %w", c, err)
						return
					}
				case 1:
					rows, err := db.Query("retrieve (emp.tid) where emp.age >= 31")
					if err != nil {
						errCh <- fmt.Errorf("client %d query: %w", c, err)
						return
					}
					rows.Next() // abandon mid-cursor on purpose
					rows.Close()
				case 2:
					rows, err := db.Query("execute seniors")
					if err != nil {
						errCh <- fmt.Errorf("client %d execute: %w", c, err)
						return
					}
					for rows.Next() {
					}
					rows.Close()
				case 3:
					tx, err := db.Begin()
					if err != nil {
						errCh <- fmt.Errorf("client %d begin: %w", c, err)
						return
					}
					if _, err := tx.Exec(fmt.Sprintf(
						"append to emp (tid = %d, age = 90, dept = 30, salary = 2)", 10000+tid)); err != nil {
						tx.Rollback()
						errCh <- fmt.Errorf("client %d tx append: %w", c, err)
						return
					}
					// Half commit, half roll back.
					if i%2 == 0 {
						err = tx.Commit()
					} else {
						err = tx.Rollback()
					}
					if err != nil {
						errCh <- fmt.Errorf("client %d tx end: %w", c, err)
						return
					}
				case 4:
					ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
					_, _ = db.QueryContext(ctx, "retrieve (emp.all) where emp.age >= 0")
					cancel()
				}
			}
		}(c)
	}

	// Two drivers race over one 4-session world through plain SQL; busy
	// responses (both drivers hitting one session) are expected and
	// retried on another session.
	cn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ctx := context.Background()
	opened, err := cn.WorldOpen(ctx, &wire.WorldOpen{
		Params: identityParams(12, 20), Model: "1", Strategy: "ci",
		Seed: 7, Clients: 4, CritPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			done := make([]bool, opened.Sessions)
			for {
				all := true
				for s := d; s < opened.Sessions; s += 1 {
					if done[s] {
						continue
					}
					all = false
					res, err := db.Exec(fmt.Sprintf("@bench next %d %d", opened.World, s))
					if err != nil {
						if werr, ok := err.(*wire.Error); ok && werr.Code == wire.CodeBusy {
							continue
						}
						errCh <- fmt.Errorf("driver %d world step: %w", d, err)
						return
					}
					if n, _ := res.RowsAffected(); n == 0 {
						done[s] = true
					}
				}
				if all {
					return
				}
			}
		}(d)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	stats, err := cn.WorldStats(ctx, opened.World)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range opened.Ops {
		total += n
	}
	if stats.Ops != total {
		t.Fatalf("world committed %d ops, dealt %d", stats.Ops, total)
	}
	if err := cn.WorldClose(ctx, opened.World); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stat(); st.Worlds != 0 {
		t.Fatalf("worlds not drained: %+v", st)
	}
	drained(t, srv, false)
}
