package client

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"

	"dbproc/internal/wire"
)

// The "dbproc" database/sql driver. The DSN is the server address
// ("host:port"). QUEL has no placeholder syntax, so statements take no
// arguments; results are int64 columns, exactly the engine's tuple
// representation.
func init() {
	sql.Register("dbproc", &Driver{})
}

// Driver implements driver.Driver and driver.DriverContext.
type Driver struct{}

// Open dials addr and returns a pooled connection.
func (d *Driver) Open(addr string) (driver.Conn, error) {
	cn, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return &sqlConn{c: cn}, nil
}

// OpenConnector returns a connector for addr; database/sql uses it to
// dial pool members lazily.
func (d *Driver) OpenConnector(addr string) (driver.Connector, error) {
	return connector{addr: addr, d: d}, nil
}

type connector struct {
	addr   string
	d      *Driver
	tracer *Tracer
}

func (c connector) Connect(ctx context.Context) (driver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.tracer != nil {
		cn, err := DialTraced(c.addr, c.tracer)
		if err != nil {
			return nil, err
		}
		return &sqlConn{c: cn}, nil
	}
	return c.d.Open(c.addr)
}

func (c connector) Driver() driver.Driver { return c.d }

// sqlConn adapts Conn to driver.Conn. The open transaction's handle
// rides on the conn — the server scopes transactions per connection.
type sqlConn struct {
	c  *Conn
	tx int
}

var _ interface {
	driver.Conn
	driver.ConnPrepareContext
	driver.ConnBeginTx
	driver.ExecerContext
	driver.QueryerContext
	driver.Pinger
	driver.Validator
} = (*sqlConn)(nil)

func (c *sqlConn) Prepare(text string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), text)
}

func (c *sqlConn) PrepareContext(ctx context.Context, text string) (driver.Stmt, error) {
	h, err := c.c.Prepare(ctx, text)
	if err != nil {
		return nil, err
	}
	return &sqlStmt{c: c, handle: h}, nil
}

func (c *sqlConn) Close() error { return c.c.Close() }

func (c *sqlConn) Begin() (driver.Tx, error) {
	return c.BeginTx(context.Background(), driver.TxOptions{})
}

func (c *sqlConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if opts.ReadOnly {
		return nil, fmt.Errorf("dbproc: read-only transactions are not supported")
	}
	if opts.Isolation != driver.IsolationLevel(sql.LevelDefault) &&
		opts.Isolation != driver.IsolationLevel(sql.LevelSerializable) {
		return nil, fmt.Errorf("dbproc: only the default (serializable) isolation level is supported")
	}
	h, err := c.c.Begin(ctx)
	if err != nil {
		return nil, err
	}
	c.tx = h
	return &sqlTx{c: c, handle: h}, nil
}

func (c *sqlConn) Ping(ctx context.Context) error { return c.c.Ping(ctx) }

// IsValid keeps broken connections out of the pool.
func (c *sqlConn) IsValid() bool {
	c.c.mu.Lock()
	defer c.c.mu.Unlock()
	return !c.c.broken
}

func (c *sqlConn) ExecContext(ctx context.Context, text string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("dbproc: QUEL statements take no arguments")
	}
	res, err := c.c.Exec(ctx, text)
	if err != nil {
		return nil, err
	}
	return sqlResult{affected: res.Affected}, nil
}

func (c *sqlConn) QueryContext(ctx context.Context, text string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("dbproc: QUEL statements take no arguments")
	}
	res, err := c.c.Query(ctx, text, 0)
	if err != nil {
		return nil, err
	}
	return newRows(c, res), nil
}

type sqlStmt struct {
	c      *sqlConn
	handle int
	closed bool
}

var _ interface {
	driver.Stmt
	driver.StmtExecContext
	driver.StmtQueryContext
} = (*sqlStmt)(nil)

func (s *sqlStmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.c.c.CloseStmt(context.Background(), s.handle)
}

// NumInput is 0: QUEL has no placeholders.
func (s *sqlStmt) NumInput() int { return 0 }

func (s *sqlStmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), nil)
}

func (s *sqlStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	res, err := s.c.c.ExecPrepared(ctx, s.handle, s.c.tx, false, 0)
	if err != nil {
		return nil, err
	}
	return sqlResult{affected: res.Affected}, nil
}

func (s *sqlStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), nil)
}

func (s *sqlStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	res, err := s.c.c.ExecPrepared(ctx, s.handle, s.c.tx, true, 0)
	if err != nil {
		return nil, err
	}
	return newRows(s.c, res), nil
}

type sqlTx struct {
	c      *sqlConn
	handle int
}

func (t *sqlTx) Commit() error {
	t.c.tx = 0
	return t.c.c.Commit(context.Background(), t.handle)
}

func (t *sqlTx) Rollback() error {
	t.c.tx = 0
	return t.c.c.Rollback(context.Background(), t.handle)
}

type sqlResult struct{ affected int64 }

func (r sqlResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("dbproc: no insert ids")
}
func (r sqlResult) RowsAffected() (int64, error) { return r.affected, nil }

// sqlRows iterates a result, fetching further cursor batches on demand.
type sqlRows struct {
	c       *sqlConn
	columns []string
	buf     [][]int64
	cursor  int
	more    bool
}

func newRows(c *sqlConn, res *wire.Result) *sqlRows {
	return &sqlRows{c: c, columns: res.Columns, buf: res.Rows, cursor: res.Cursor, more: res.More}
}

func (r *sqlRows) Columns() []string { return r.columns }

func (r *sqlRows) Close() error {
	r.buf = nil
	if r.more && r.cursor != 0 {
		r.more = false
		return r.c.c.CloseCursor(context.Background(), r.cursor)
	}
	return nil
}

func (r *sqlRows) Next(dest []driver.Value) error {
	for len(r.buf) == 0 {
		if !r.more {
			return io.EOF
		}
		batch, err := r.c.c.Fetch(context.Background(), r.cursor, 0)
		if err != nil {
			return err
		}
		r.buf = batch.Rows
		r.more = batch.More
	}
	row := r.buf[0]
	r.buf = r.buf[1:]
	for i := range dest {
		if i < len(row) {
			dest[i] = row[i]
		} else {
			dest[i] = nil
		}
	}
	return nil
}
