// Package client speaks procserved's framed wire protocol
// (docs/SERVING.md). It has two layers:
//
//   - Conn, the control plane: one framed connection with explicit
//     statements, transactions, cursors, and bench-world calls. The
//     served bench harness uses it to open worlds and drive sessions.
//   - A database/sql driver named "dbproc" (driver.go), so any Go
//     program can sql.Open("dbproc", "host:port") and run QUEL through
//     the standard interfaces.
//
// One request is in flight per Conn at a time (the protocol is strictly
// request/response); Conn serializes callers. Context cancellation
// mid-request sends a TCancel frame and then keeps reading — the server
// always answers the in-flight request, either with its result or with
// a CodeCancelled error, so the connection stays usable.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"dbproc/internal/obs"
	"dbproc/internal/wire"
)

// Conn is one wire-protocol connection.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	// wmu guards frame writes: the cancel watcher writes TCancel while
	// the request goroutine is blocked reading the response.
	wmu sync.Mutex
	bw  *bufio.Writer

	// mu serializes requests (one in flight per connection).
	mu sync.Mutex
	// broken marks the stream unusable (read error, or a cancelled
	// request whose response never arrived): framing is lost, so every
	// later request fails fast instead of misreading.
	broken bool

	// tracer, when non-nil, stamps a trace context onto every request
	// that can carry one and accounts the round trip (trace.go). connID
	// is the tracer's id for this connection.
	tracer *Tracer
	connID int64
}

// Dial connects and performs the version handshake.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	if err := c.send(wire.THello, &wire.Hello{Version: wire.Version, Client: "dbproc/client"}); err != nil {
		nc.Close()
		return nil, err
	}
	msg, err := c.read()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if _, ok := msg.(*wire.HelloOK); !ok {
		nc.Close()
		if werr, isErr := msg.(*wire.Error); isErr {
			return nil, werr
		}
		return nil, fmt.Errorf("client: handshake: unexpected %T", msg)
	}
	return c, nil
}

// Close closes the underlying connection; the server rolls back any
// open transaction and frees the connection's handles.
func (c *Conn) Close() error { return c.nc.Close() }

func (c *Conn) send(typ byte, msg any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.bw, typ, msg); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Conn) read() (any, error) {
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	return wire.Decode(typ, payload)
}

// roundTrip sends one request and reads its response. If ctx is
// cancelled while waiting, a TCancel frame goes out and the read
// continues under a deadline: the server's answer (usually
// CodeCancelled) is consumed so the next request sees a clean stream.
func (c *Conn) roundTrip(ctx context.Context, typ byte, msg any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, fmt.Errorf("client: connection is broken")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Propagate a fresh trace context: this round trip is the root span,
	// and the server parents its own span under SpanID. Requests that
	// cannot carry a context (Ping) stay untraced.
	if t := c.tracer; t != nil {
		tc := &wire.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
		if wire.Attach(msg, tc) {
			start := time.Now()
			resp, err := c.exchange(ctx, typ, msg)
			t.finish(c.connID, tc, wire.Name(typ), start, time.Since(start).Nanoseconds(), resp, err, ctx)
			return resp, err
		}
	}
	return c.exchange(ctx, typ, msg)
}

// exchange is the locked request/response cycle behind roundTrip.
func (c *Conn) exchange(ctx context.Context, typ byte, msg any) (any, error) {
	if err := c.send(typ, msg); err != nil {
		c.broken = true
		return nil, err
	}
	done := make(chan struct{})
	cancelled := make(chan struct{})
	go func() {
		defer close(cancelled)
		select {
		case <-ctx.Done():
			c.send(wire.TCancel, &wire.Cancel{})
			c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		case <-done:
		}
	}()
	resp, err := c.read()
	close(done)
	<-cancelled
	if ctx.Err() != nil {
		c.nc.SetReadDeadline(time.Time{})
		if err != nil {
			// The backstop deadline fired; the stream is unusable.
			c.broken = true
		}
		// Whether the server answered with CodeCancelled or with the
		// completed result, the caller cancelled: surface the context
		// error. The response was consumed, so the stream stays clean.
		return nil, ctx.Err()
	}
	if err != nil {
		c.broken = true
		return nil, err
	}
	if werr, ok := resp.(*wire.Error); ok {
		return nil, werr
	}
	return resp, nil
}

// expect runs roundTrip and asserts the response type.
func roundTripAs[T any](c *Conn, ctx context.Context, typ byte, msg any) (T, error) {
	var zero T
	resp, err := c.roundTrip(ctx, typ, msg)
	if err != nil {
		return zero, err
	}
	out, ok := resp.(T)
	if !ok {
		return zero, fmt.Errorf("client: unexpected response %T", resp)
	}
	return out, nil
}

// Ping checks liveness.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := roundTripAs[*wire.Pong](c, ctx, wire.TPing, &wire.Ping{})
	return err
}

// Exec runs one QUEL statement (no cursor: all rows come back in the
// result).
func (c *Conn) Exec(ctx context.Context, text string) (*wire.Result, error) {
	return roundTripAs[*wire.Result](c, ctx, wire.TStmt, &wire.Stmt{Text: text})
}

// Query runs one QUEL statement with a cursor: at most fetch rows come
// back (server default batch when fetch <= 0), the rest stay behind the
// result's cursor handle for Fetch.
func (c *Conn) Query(ctx context.Context, text string, fetch int) (*wire.Result, error) {
	return roundTripAs[*wire.Result](c, ctx, wire.TStmt, &wire.Stmt{Text: text, Cursor: true, Fetch: fetch})
}

// Prepare parses text server-side and returns its statement handle.
func (c *Conn) Prepare(ctx context.Context, text string) (int, error) {
	p, err := roundTripAs[*wire.Prepared](c, ctx, wire.TPrepare, &wire.Prepare{Text: text})
	if err != nil {
		return 0, err
	}
	return p.Stmt, nil
}

// ExecPrepared executes a prepared statement.
func (c *Conn) ExecPrepared(ctx context.Context, stmt, tx int, cursored bool, fetch int) (*wire.Result, error) {
	return roundTripAs[*wire.Result](c, ctx, wire.TStmtExec, &wire.StmtExec{Stmt: stmt, Tx: tx, Cursor: cursored, Fetch: fetch})
}

// CloseStmt frees a prepared statement handle.
func (c *Conn) CloseStmt(ctx context.Context, stmt int) error {
	_, err := roundTripAs[*wire.OK](c, ctx, wire.TStmtClose, &wire.StmtClose{Stmt: stmt})
	return err
}

// Begin opens a transaction; the server holds its statement gate until
// Commit or Rollback, so no other connection interleaves.
func (c *Conn) Begin(ctx context.Context) (int, error) {
	b, err := roundTripAs[*wire.Begun](c, ctx, wire.TBegin, &wire.Begin{})
	if err != nil {
		return 0, err
	}
	return b.Tx, nil
}

// Commit commits transaction tx.
func (c *Conn) Commit(ctx context.Context, tx int) error {
	_, err := roundTripAs[*wire.OK](c, ctx, wire.TCommit, &wire.Commit{Tx: tx})
	return err
}

// Rollback rolls back transaction tx.
func (c *Conn) Rollback(ctx context.Context, tx int) error {
	_, err := roundTripAs[*wire.OK](c, ctx, wire.TRollback, &wire.Rollback{Tx: tx})
	return err
}

// Fetch pulls the next batch from a cursor. The cursor closes itself
// (server-side) when the response's More is false.
func (c *Conn) Fetch(ctx context.Context, cursor, max int) (*wire.Fetched, error) {
	return roundTripAs[*wire.Fetched](c, ctx, wire.TFetch, &wire.Fetch{Cursor: cursor, Max: max})
}

// CloseCursor frees a cursor handle early (idempotent).
func (c *Conn) CloseCursor(ctx context.Context, cursor int) error {
	_, err := roundTripAs[*wire.OK](c, ctx, wire.TCursorClose, &wire.CursorClose{Cursor: cursor})
	return err
}

// WorldOpen builds a bench world server-side: an engine with its
// sessions opened and the canonical workload dealt across them.
func (c *Conn) WorldOpen(ctx context.Context, open *wire.WorldOpen) (*wire.WorldOpened, error) {
	return roundTripAs[*wire.WorldOpened](c, ctx, wire.TWorldOpen, open)
}

// WorldNext executes session's next dealt operation in the world.
func (c *Conn) WorldNext(ctx context.Context, world, session int) (*wire.WorldStep, error) {
	return roundTripAs[*wire.WorldStep](c, ctx, wire.TWorldNext, &wire.WorldNext{World: world, Session: session})
}

// WorldStats seals the world and returns its aggregate result; the
// first call finishes the engine, later calls return the same stats.
func (c *Conn) WorldStats(ctx context.Context, world int) (*wire.WorldStatsResult, error) {
	return roundTripAs[*wire.WorldStatsResult](c, ctx, wire.TWorldStats, &wire.WorldStats{World: world})
}

// WorldClose frees the world.
func (c *Conn) WorldClose(ctx context.Context, world int) error {
	_, err := roundTripAs[*wire.OK](c, ctx, wire.TWorldClose, &wire.WorldClose{World: world})
	return err
}
