package client_test

import (
	"context"
	"testing"
	"time"

	"dbproc/client"
	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/engine"
	"dbproc/internal/experiments"
	"dbproc/internal/server"
	"dbproc/internal/sim"
	"dbproc/internal/wire"
)

// TestServedScenarioSmoke drives a hot-key-storm world through procserved
// via the database/sql driver (DriveServed's "@bench next" loop) and
// checks the served run is byte-equal to the in-process one — counters,
// simulated cost, committed history digest — and that every server
// handle drains to zero afterwards.
func TestServedScenarioSmoke(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	srv, addr := startServer(t, server.Options{})
	ctx := context.Background()
	params := identityParams(12, 20)

	cfg := sim.Config{
		Params: params, Model: costmodel.Model2, Strategy: costmodel.CacheInvalidate,
		Seed: 61, Scenario: "hot-key-storm", R2UpdateFraction: 0.3,
	}
	seq := sim.Run(cfg)
	e := engine.New(cfg, engine.Options{Clients: 1, RecordHistory: true})
	local := e.Run(ctx)

	res, err := experiments.DriveServed(ctx, addr, &wire.WorldOpen{
		Params: params, Model: "2", Strategy: "ci",
		Seed: 61, Scenario: "hot-key-storm", R2UpdateFraction: 0.3, Clients: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Counters != seq.Counters {
		t.Fatalf("served scenario counters diverge from sequential:\n served     %v\n sequential %v",
			res.Counters, seq.Counters)
	}
	if res.SimTotalMs != seq.TotalMs {
		t.Fatalf("served scenario cost %v, sequential %v", res.SimTotalMs, seq.TotalMs)
	}
	if res.Queries != seq.Queries || res.Updates != seq.Updates {
		t.Fatalf("served op mix %d/%d, sequential %d/%d",
			res.Queries, res.Updates, seq.Queries, seq.Updates)
	}
	if want := server.HistoryDigest(local.History); res.HistoryDigest != want {
		t.Fatalf("served scenario history digest %s, in-process %s", res.HistoryDigest, want)
	}
	drained(t, srv, false)
}

// TestServedScenarioMultiSession runs the storm world with 4 driver-pool
// sessions: the world must drain completely and commit exactly the dealt
// op counts (multi-session scenario runs are schedule-dependent, so only
// the counts — not the byte stream — are asserted).
func TestServedScenarioMultiSession(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	srv, addr := startServer(t, server.Options{})
	res, err := experiments.DriveServed(context.Background(), addr, &wire.WorldOpen{
		Params: identityParams(12, 20), Model: "2", Strategy: "uc-avm",
		Seed: 62, Scenario: "storm-adversarial", Clients: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 32 || res.Queries != 20 || res.Updates != 12 {
		t.Fatalf("served scenario ran %d ops (%dq/%du), want 32 (20q/12u)",
			res.Ops, res.Queries, res.Updates)
	}
	drained(t, srv, false)
}

// TestWorldOpenRejectsUnknownScenario: a bogus scenario name must map to
// a parse error at open time, not a server-side panic.
func TestWorldOpenRejectsUnknownScenario(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	_, addr := startServer(t, server.Options{})
	cn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	_, err = cn.WorldOpen(context.Background(), &wire.WorldOpen{
		Params: identityParams(2, 2), Model: "1", Strategy: "ci",
		Seed: 1, Scenario: "no-such-scenario", Clients: 1,
	})
	if err == nil {
		t.Fatal("WorldOpen accepted an unknown scenario")
	}
	if werr, ok := err.(*wire.Error); !ok || werr.Code != wire.CodeParse {
		t.Fatalf("error %v, want code %q", err, wire.CodeParse)
	}
}
