package client_test

import (
	"bytes"
	"context"
	"database/sql"
	"strings"
	"sync"
	"testing"
	"time"

	"dbproc/client"
	"dbproc/internal/dbtest"
	"dbproc/internal/obs"
	"dbproc/internal/server"
	"dbproc/internal/telemetry"
	"dbproc/internal/wire"
)

// TestServerBreakdownSumsToWall is the tentpole invariant under load: 8
// traced clients drive a critical-path scenario world plus gate-bound
// statements concurrently, and every server breakdown — on the wire and
// in the exported JSONL — partitions its request's wall time exactly.
// Run it under -race: the breakdown path touches the shared sketch map,
// the trace sinks, and the per-conn tracing state from many goroutines.
func TestServerBreakdownSumsToWall(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	var srvSpans bytes.Buffer
	srv, addr := startServer(t, server.Options{TraceSink: obs.NewWireSpanSink(&srvSpans)})

	var cliSpans bytes.Buffer
	tracer := client.NewTracer(obs.NewWireSpanSink(&cliSpans))

	const clients = 8
	conns := make([]*client.Conn, clients)
	for i := range conns {
		cn, err := client.DialTraced(addr, tracer)
		if err != nil {
			t.Fatal(err)
		}
		defer cn.Close()
		conns[i] = cn
	}
	ctx := context.Background()

	// Seed a tiny schema so the statement path has real work to do.
	if _, err := conns[0].Exec(ctx, "create emp (tid, age) cluster on age"); err != nil {
		t.Fatal(err)
	}

	opened, err := conns[0].WorldOpen(ctx, &wire.WorldOpen{
		Params: identityParams(10, 20), Model: "1", Strategy: "ci",
		Seed: 7, Scenario: "hot-key-storm", R2UpdateFraction: 0.3,
		Clients: clients, CritPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opened.Sessions != clients {
		t.Fatalf("world opened %d sessions, want %d", opened.Sessions, clients)
	}

	var mu sync.Mutex
	var phases int
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cn := conns[i]
			// A couple of gate-bound statements: their breakdowns carry
			// admission/gate/compute.
			for j := 0; j < 2; j++ {
				res, err := cn.Exec(ctx, "retrieve (emp.all)")
				if err != nil {
					t.Errorf("conn %d exec: %v", i, err)
					return
				}
				if res.Server == nil || res.Server.SegmentSum() != res.Server.WallNs {
					t.Errorf("conn %d: stmt breakdown %+v does not sum to wall", i, res.Server)
					return
				}
			}
			// Drain the world session: lock-wait/io/recompute/compute
			// come from the engine's critical-path decomposition.
			for {
				step, err := cn.WorldNext(ctx, opened.World, i)
				if err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
				if step.Server == nil {
					t.Errorf("session %d: traced step missing breakdown", i)
					return
				}
				if got, want := step.Server.SegmentSum(), step.Server.WallNs; got != want {
					t.Errorf("session %d: segments sum %d != wall %d", i, got, want)
					return
				}
				if step.Done {
					return
				}
				if step.Phase != "" {
					mu.Lock()
					phases++
					mu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if phases == 0 {
		t.Error("no step reported a scenario phase on a scenario world")
	}
	if _, err := conns[0].WorldStats(ctx, opened.World); err != nil {
		t.Fatal(err)
	}
	if err := conns[0].WorldClose(ctx, opened.World); err != nil {
		t.Fatal(err)
	}

	// The exported JSONL must uphold the same invariant, and the two
	// sides must merge into one timeline with cross-wire arrows.
	st := tracer.Stats()
	if st.Requests == 0 || st.WithServer == 0 {
		t.Fatalf("tracer saw no traced requests: %+v", st)
	}
	if st.ClientWallNs < st.ServerWallNs {
		t.Fatalf("client wall %d below server wall %d", st.ClientWallNs, st.ServerWallNs)
	}
	srvTrace, err := obs.ReadTrace(bytes.NewReader(srvSpans.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.CheckWireSpans(srvTrace.WireSpans); len(errs) != 0 {
		t.Fatalf("server spans violate sum-to-total: %v", errs[0])
	}
	cliTrace, err := obs.ReadTrace(bytes.NewReader(cliSpans.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	merged, err2 := obs.MergeWireTrace(&bytes.Buffer{},
		append(cliTrace.WireSpans, srvTrace.WireSpans...))
	if err2 != nil {
		t.Fatal(err2)
	}
	if merged.Pairs == 0 || merged.Arrows != 2*merged.Pairs {
		t.Fatalf("merge stats %+v, want matched pairs with 2 arrows each", merged)
	}
	_ = srv
}

// TestPooledConnStats: per-connection accounting must follow the pool's
// physical connections — a reused connection accumulates on one row, and
// the rows sum to the aggregate (no double counting).
func TestPooledConnStats(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	srv, addr := startServer(t, server.Options{FetchBatch: 2})
	tracer := client.NewTracer(nil)
	db := sql.OpenDB(client.NewConnector(addr, tracer))
	defer db.Close()
	db.SetMaxOpenConns(2)
	seedSchema(t, db)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				rows, err := db.Query("retrieve (emp.age)")
				if err != nil {
					t.Error(err)
					return
				}
				countRows(t, rows)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	agg := tracer.Stats()
	per := tracer.ConnStats()
	if len(per) == 0 || len(per) > 2 {
		t.Fatalf("%d traced connections, pool capped at 2", len(per))
	}
	var sum client.Stats
	var total int64
	for _, s := range per {
		total += s.Requests
		sum.ClientWallNs += s.ClientWallNs
		sum.ServerWallNs += s.ServerWallNs
		sum.NetworkNs += s.NetworkNs
	}
	if total != agg.Requests {
		t.Fatalf("per-conn requests %d != aggregate %d", total, agg.Requests)
	}
	if sum.ClientWallNs != agg.ClientWallNs || sum.ServerWallNs != agg.ServerWallNs || sum.NetworkNs != agg.NetworkNs {
		t.Fatalf("per-conn sums %+v diverge from aggregate %+v", sum, agg)
	}
	if agg.NetworkNs+agg.ServerWallNs > agg.ClientWallNs {
		t.Fatalf("network %d + server %d exceeds client wall %d",
			agg.NetworkNs, agg.ServerWallNs, agg.ClientWallNs)
	}
	db.Close()
	drained(t, srv, true)
}

// TestMidCursorCloseStats: closing rows mid-cursor sends cursor.close;
// the tracer must count it as its own request on the same connection,
// and the server must drop the cursor handle.
func TestMidCursorCloseStats(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	srv, addr := startServer(t, server.Options{FetchBatch: 2})
	tracer := client.NewTracer(nil)
	db := sql.OpenDB(client.NewConnector(addr, tracer))
	defer db.Close()
	db.SetMaxOpenConns(1)
	seedSchema(t, db)
	before := tracer.Stats().Requests

	rows, err := db.Query("retrieve (emp.age)") // 6 rows, batch 2 -> cursor
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	drained(t, srv, false)

	// Exactly two traced requests: the cursored stmt and cursor.close.
	if got := tracer.Stats().Requests - before; got != 2 {
		t.Fatalf("mid-cursor close produced %d traced requests, want 2", got)
	}
	per := tracer.ConnStats()
	if len(per) != 1 {
		t.Fatalf("%d connections, want 1", len(per))
	}
}

// TestCancelFlightEvent: a TCancel arriving for a traced in-flight
// request must surface as a flight event naming the trace (satellite 1
// — cancels used to vanish silently).
func TestCancelFlightEvent(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	rec := telemetry.NewRecorder(256)
	srv, addr := startServer(t, server.Options{Recorder: rec})

	tracer := client.NewTracer(nil)
	holder, err := client.DialTraced(addr, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	waiter, err := client.DialTraced(addr, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()

	ctx := context.Background()
	tx, err := holder.Begin(ctx) // holds the statement gate
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := waiter.Exec(cctx, "retrieve (emp.all)"); err == nil {
		t.Fatal("gate-blocked exec did not cancel")
	}
	if err := holder.Commit(ctx, tx); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		evs, _ := rec.Snapshot()
		for _, ev := range evs {
			if ev.Kind == telemetry.EvCancel && strings.HasPrefix(ev.Detail, "trace=") {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no server.cancel flight event carrying a trace id")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Stat().Cancels == 0 {
		t.Fatal("cancel counter did not move")
	}
	if tracer.Stats().Cancelled == 0 {
		t.Fatal("tracer did not count the cancelled request")
	}
}

// TestServedRequestMetrics: the per-type service-time sketches must
// export dbproc_server_request_seconds quantile series (satellite 2).
func TestServedRequestMetrics(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	srv, addr := startServer(t, server.Options{})
	cn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ctx := context.Background()
	if _, err := cn.Exec(ctx, "create emp (tid, age) cluster on age"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := cn.Exec(ctx, "retrieve (emp.all)"); err != nil {
			t.Fatal(err)
		}
	}
	var quantiles, count int
	for _, m := range srv.TelemetryMetrics() {
		switch m.Name {
		case "dbproc_server_request_seconds":
			if m.Labels["type"] == "stmt" {
				quantiles++
				if m.Value < 0 {
					t.Fatalf("negative quantile %+v", m)
				}
			}
		case "dbproc_server_request_seconds_count":
			if m.Labels["type"] == "stmt" {
				count++
				if m.Value < 20 {
					t.Fatalf("stmt count %v, want >= 20", m.Value)
				}
			}
		}
	}
	if quantiles != 4 || count != 1 {
		t.Fatalf("got %d stmt quantile series and %d count series, want 4 and 1", quantiles, count)
	}
}

// TestServedLatencyDetector: an absurdly low served SLO must latch the
// detector once the sketch has enough observations.
func TestServedLatencyDetector(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	rec := telemetry.NewRecorder(256)
	th := telemetry.DefaultThresholds()
	th.ServedP99Ns = 1 // everything breaches
	_, addr := startServer(t, server.Options{Recorder: rec, Detect: &th})
	cn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if err := cn.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}
	fired := 0
	evs, _ := rec.Snapshot()
	for _, ev := range evs {
		if ev.Kind == telemetry.EvDetector && ev.Name == "served_p99" {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("served_p99 fired %d times, want exactly once (latched)", fired)
	}
}

// TestUntracedRequestsCarryNothing: a plain Dial must leave frames
// trace-free end to end — no breakdown comes back, and the server
// exports no spans. (The byte-level half of the contract is pinned in
// internal/wire's identity test.)
func TestUntracedRequestsCarryNothing(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	var srvSpans bytes.Buffer
	sink := obs.NewWireSpanSink(&srvSpans)
	_, addr := startServer(t, server.Options{TraceSink: sink})
	cn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ctx := context.Background()
	if _, err := cn.Exec(ctx, "create emp (tid, age) cluster on age"); err != nil {
		t.Fatal(err)
	}
	res, err := cn.Exec(ctx, "retrieve (emp.all)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Server != nil {
		t.Fatalf("untraced request got a breakdown: %+v", res.Server)
	}
	if n := sink.Count(); n != 0 {
		t.Fatalf("server exported %d spans for untraced requests", n)
	}
}
