module dbproc

go 1.22
