// Forms: "complex objects with shared subobjects" — the motivating use
// case of the paper's introduction. A form is a stored database procedure
// assembling its widgets (joined to a shared style library); the example
// runs the same forms under two strategies:
//
//  1. Cache and Invalidate, via the procedure layer: editing one widget
//     breaks exactly one form's i-lock; only that form is recomputed on
//     its next render.
//
//  2. Update Cache (Rete), with ONE style α-memory shared by every form's
//     join node: restyling the library is a single right-activation token
//     that ripples into all affected forms at once.
//
//     go run ./examples/forms
package main

import (
	"fmt"

	"dbproc/internal/cache"
	"dbproc/internal/metric"
	"dbproc/internal/proc"
	"dbproc/internal/query"
	"dbproc/internal/relation"
	"dbproc/internal/rete"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

const (
	kindLabel = 1
	kindIcon  = 2
	kindTrim  = 3
)

var kindNames = map[int64]string{kindLabel: "label", kindIcon: "icon", kindTrim: "trim"}

type formsDB struct {
	meter   *metric.Meter
	pager   *storage.Pager
	widgets *relation.Relation
	styles  *relation.Relation
}

func buildDB() *formsDB {
	meter := metric.NewMeter(metric.DefaultCosts())
	pager := storage.NewPager(storage.NewDisk(512), meter)
	pager.SetCharging(false)

	ws := tuple.NewSchema("widgets", 64,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "form"},
		tuple.Field{Name: "style"}, tuple.Field{Name: "kind"})
	widgets := relation.NewBTree(pager.Disk(), ws, "form", "tid", 16)
	tid := int64(0)
	for form := int64(1); form <= 5; form++ {
		for i := int64(0); i < 4; i++ {
			t := ws.New()
			ws.SetByName(t, "tid", tid)
			ws.SetByName(t, "form", form)
			ws.SetByName(t, "style", (form+i)%3)
			ws.SetByName(t, "kind", 1+(i%3))
			widgets.Insert(pager, t)
			tid++
		}
	}

	ss := tuple.NewSchema("styles", 64,
		tuple.Field{Name: "sid"}, tuple.Field{Name: "color"}, tuple.Field{Name: "fontpx"})
	styles := relation.NewHash(pager.Disk(), ss, "sid", 2)
	for sid := int64(0); sid < 3; sid++ {
		t := ss.New()
		ss.SetByName(t, "sid", sid)
		ss.SetByName(t, "color", 0xC0FFEE+sid)
		ss.SetByName(t, "fontpx", 12+2*sid)
		styles.Insert(pager, t)
	}

	pager.BeginOp()
	pager.SetCharging(true)
	meter.Reset()
	return &formsDB{meter: meter, pager: pager, widgets: widgets, styles: styles}
}

func (db *formsDB) formPlan(form int64) query.Plan {
	scan := query.NewBTreeRangeScan(db.widgets, form, form)
	return query.NewHashJoinProbe(scan, db.styles, "style", 128)
}

func renderForm(sch *tuple.Schema, tuples [][]byte) {
	for _, t := range tuples {
		fmt.Printf("    %-5s style=%d color=#%X font=%dpx\n",
			kindNames[sch.GetByName(t, "kind")], sch.GetByName(t, "style"),
			sch.GetByName(t, "styles_color"), sch.GetByName(t, "styles_fontpx"))
	}
}

func cacheInvalidateDemo() {
	fmt.Println("--- Cache and Invalidate: edits touch one form ---")
	db := buildDB()
	mgr := proc.NewManager()
	for form := int64(1); form <= 5; form++ {
		mgr.Define(proc.NewDefinition(int(form), fmt.Sprintf("form%d", form),
			db.formPlan(form), "form", "tid"))
	}
	store := cache.NewStore(db.pager.Disk())
	strat := proc.NewCacheInvalidate(mgr, store)
	db.pager.SetCharging(false)
	strat.Prepare(db.pager)
	db.pager.BeginOp()
	db.pager.SetCharging(true)
	db.meter.Reset()

	db.pager.BeginOp()
	out := strat.Access(db.pager, 2)
	db.pager.Flush()
	fmt.Printf("  render form 2 (warm cache, %d widgets): %.0f ms\n",
		len(out), db.meter.Milliseconds())

	// Edit one widget of form 2: move widget tid=5 to style 0.
	ws := db.widgets.Schema()
	old, _ := db.widgets.Tree().Get(db.pager, tuple.ClusterKey(2, 5))
	edited := append([]byte(nil), old...)
	ws.SetByName(edited, "style", 0)
	db.pager.SetCharging(false)
	db.widgets.DeleteKeyed(db.pager, tuple.ClusterKey(2, 5))
	db.widgets.Insert(db.pager, edited)
	db.pager.BeginOp()
	db.pager.SetCharging(true)
	strat.OnUpdate(db.pager, proc.Delta{Rel: db.widgets, Inserted: [][]byte{edited}, Deleted: [][]byte{old}})

	for _, form := range []int{1, 2} {
		valid := store.MustEntry(cache.ID(form)).Valid()
		fmt.Printf("  after editing a form-2 widget: form %d cache valid = %v\n", form, valid)
	}

	db.meter.Reset()
	db.pager.BeginOp()
	out = strat.Access(db.pager, 2)
	db.pager.Flush()
	fmt.Printf("  re-render form 2 (recompute + refresh): %.0f ms\n", db.meter.Milliseconds())
	fmt.Println("  form 2 now:")
	renderForm(mgr.MustGet(2).Plan.Schema(), out)
	fmt.Println()
}

func sharedReteDemo() {
	fmt.Println("--- Update Cache (Rete): one shared style memory feeds every form ---")
	db := buildDB()
	net := rete.NewNetwork(db.pager.Disk())
	ws, ss := db.widgets.Schema(), db.styles.Schema()

	db.pager.SetCharging(false)
	// ONE α-memory of the style library, clustered by sid, shared by all
	// five forms' join nodes: the "shared subobject".
	styleMem := net.NewMemory(ss, nil, func(t []byte) uint64 {
		return tuple.ClusterKey(ss.GetByName(t, "sid"), 0)
	})
	db.styles.Hash().ScanAll(db.pager, func(rec []byte) bool {
		styleMem.Activate(db.pager, rete.Token{Tag: rete.Plus, Tuple: append([]byte(nil), rec...)})
		return true
	})

	widgetKey := func(t []byte) uint64 {
		return tuple.ClusterKey(ws.GetByName(t, "style"), ws.GetByName(t, "tid"))
	}
	type formView struct {
		beta *rete.Memory
		sch  *tuple.Schema
	}
	views := map[int64]formView{}
	for form := int64(1); form <= 5; form++ {
		tc := net.TConst(ws, "form", form, form)
		alpha := net.NewMemory(ws, nil, widgetKey)
		tc.Attach(alpha)
		and := net.NewAndNode(alpha, styleMem, "style", "sid", "styles_", 128)
		beta := net.NewMemory(and.Schema(), nil, func(t []byte) uint64 {
			sch := and.Schema()
			return tuple.ClusterKey(sch.GetByName(t, "tid"), 0)
		})
		and.Attach(beta)
		views[form] = formView{beta, and.Schema()}
	}
	db.widgets.Tree().ScanAll(db.pager, func(rec []byte) bool {
		net.Submit(db.pager, "widgets", rete.Token{Tag: rete.Plus, Tuple: append([]byte(nil), rec...)})
		return true
	})
	db.pager.BeginOp()
	db.pager.SetCharging(true)
	db.meter.Reset()

	read := func(form int64) [][]byte {
		var out [][]byte
		views[form].beta.File().Scan(db.pager, func(_ uint64, rec []byte) bool {
			out = append(out, append([]byte(nil), rec...))
			return true
		})
		return out
	}
	fmt.Println("  form 3 before the restyle:")
	renderForm(views[3].sch, read(3))

	// Restyle the library: style 1 gets a new color. One - token and one
	// + token at the SHARED memory update every form that uses style 1.
	oldStyle, _ := db.styles.Hash().Lookup(db.pager, 1)
	newStyle := append([]byte(nil), oldStyle...)
	ss.SetByName(newStyle, "color", 0x00AA55)
	db.meter.Reset()
	db.pager.BeginOp()
	styleMem.Activate(db.pager, rete.Token{Tag: rete.Minus, Tuple: oldStyle})
	styleMem.Activate(db.pager, rete.Token{Tag: rete.Plus, Tuple: newStyle})
	db.pager.Flush()
	fmt.Printf("  restyled the shared library (every form maintained): %.0f ms\n", db.meter.Milliseconds())

	fmt.Println("  form 3 after (style-1 widgets recolored in place):")
	renderForm(views[3].sch, read(3))
	fmt.Println("\n  The style change was applied through ONE shared memory node;")
	fmt.Println("  with per-form style copies it would cost 5x the maintenance work.")
}

func main() {
	cacheInvalidateDemo()
	sharedReteDemo()
}
