// Strategy advisor: the paper's section 8 decision problem applied to
// three concrete application profiles. For each, the example evaluates the
// full cost model, prints the winner, and explains it with the paper's own
// observations.
//
//	go run ./examples/strategy_advisor
package main

import (
	"fmt"

	"dbproc"
)

type scenario struct {
	name     string
	describe string
	model    dbproc.Model
	tweak    func(*dbproc.Params)
	expect   string
}

func main() {
	scenarios := []scenario{
		{
			name:     "Form server (large shared objects, rare edits)",
			describe: "forms of ~1000 widgets (f = 0.01), P = 0.1, 3-way joins over trim/labels/icons",
			model:    dbproc.Model2,
			tweak: func(p *dbproc.Params) {
				p.F = 0.01
				*p = p.WithUpdateProbability(0.1)
			},
			expect: "Update Cache: incrementally patching a big object is far cheaper than rebuilding it.",
		},
		{
			name:     "Reference-data cache (tiny objects, hot keys)",
			describe: "single-tuple lookups (f = 1/N), heavy skew (Z = 0.05), P = 0.3",
			model:    dbproc.Model1,
			tweak: func(p *dbproc.Params) {
				p.F = 1 / p.N
				p.N1, p.N2 = 200, 0
				p.Z = 0.05
				*p = p.WithUpdateProbability(0.3)
			},
			expect: "Cache and Invalidate: as cheap as Update Cache here, and it degrades gracefully.",
		},
		{
			name:     "Write-heavy queue monitor",
			describe: "default objects, updates dominate (P = 0.9)",
			model:    dbproc.Model1,
			tweak: func(p *dbproc.Params) {
				*p = p.WithUpdateProbability(0.9)
			},
			expect: "Always Recompute / C&I plateau: maintaining caches that are immediately dirtied is wasted work.",
		},
	}

	for _, sc := range scenarios {
		p := dbproc.DefaultParams()
		sc.tweak(&p)
		w := dbproc.BestStrategy(sc.model, p)

		fmt.Printf("%s\n  workload: %s\n", sc.name, sc.describe)
		for _, s := range dbproc.Strategies {
			marker := "  "
			if s == w.Best {
				marker = "->"
			}
			fmt.Printf("  %s %-22s %9.1f ms/access\n", marker, s, w.Costs[s])
		}
		fmt.Printf("  paper's take: %s\n\n", sc.expect)
	}

	// The paper's implementation-order advice, quantified: how much of the
	// achievable saving does each implementation step capture, averaged
	// over the three scenarios?
	fmt.Println("Section 8's implementation order (Recompute -> +C&I -> +Update Cache):")
	var onlyRC, plusCI, plusUC float64
	for _, sc := range scenarios {
		p := dbproc.DefaultParams()
		sc.tweak(&p)
		c := dbproc.AllCosts(sc.model, p)
		best := c[0]
		for _, v := range c {
			if v < best {
				best = v
			}
		}
		onlyRC += c[dbproc.AlwaysRecompute] / best
		ci := min(c[dbproc.AlwaysRecompute], c[dbproc.CacheInvalidate])
		plusCI += ci / best
		uc := min(ci, min(c[dbproc.UpdateCacheAVM], c[dbproc.UpdateCacheRVM]))
		plusUC += uc / best
	}
	n := float64(len(scenarios))
	fmt.Printf("  Recompute only:        %.1fx optimal on average\n", onlyRC/n)
	fmt.Printf("  + Cache and Invalidate: %.1fx optimal\n", plusCI/n)
	fmt.Printf("  + Update Cache:         %.1fx optimal (full system)\n", plusUC/n)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
