// Materialized views by Rete: the paper's section 2 example, live.
//
// Two views over EMP(name, age, dept, salary, job) and DEPT(dname, floor):
//
//	PROGS1:  programmers on the first floor
//	CLERKS1: clerks on the first floor
//
// The Rete network shares the "DEPT.floor = 1" subexpression between the
// views (the paper's Figure 1). The program loads the base data through
// the network, then replays the paper's walk-through — inserting
//
//	<name="Susan", age=28, dept="Accounting", salary=30K, job="Programmer">
//
// — and shows the + token propagating into PROGS1 but not CLERKS1. It then
// demonstrates a right activation: moving a department to floor 1 pulls
// all of its programmers and clerks into the views at once.
//
//	go run ./examples/materialized_views
package main

import (
	"fmt"

	"dbproc/internal/metric"
	"dbproc/internal/rete"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// Attribute encodings (the engine stores int64 attributes; strings are
// dictionary-encoded).
const (
	jobProgrammer = 1
	jobClerk      = 2
)

var deptNames = map[int64]string{10: "Accounting", 20: "Shipping", 30: "Research"}
var empNames = map[int64]string{1: "Mike", 2: "Ann", 3: "Bill", 4: "Carol", 5: "Susan"}

func main() {
	meter := metric.NewMeter(metric.DefaultCosts())
	pager := storage.NewPager(storage.NewDisk(4000), meter)
	net := rete.NewNetwork(pager.Disk())

	emp := tuple.NewSchema("emp", 100,
		tuple.Field{Name: "id"}, tuple.Field{Name: "age"}, tuple.Field{Name: "dept"},
		tuple.Field{Name: "salary"}, tuple.Field{Name: "job"})
	dept := tuple.NewSchema("dept", 100,
		tuple.Field{Name: "dname"}, tuple.Field{Name: "floor"})

	// α-memories: one per t-const chain. The DEPT side — "floor = 1" — is
	// built ONCE and shared by both views.
	empKey := func(t []byte) uint64 {
		return tuple.ClusterKey(emp.GetByName(t, "dept"), emp.GetByName(t, "id"))
	}
	deptKey := func(t []byte) uint64 {
		return tuple.ClusterKey(dept.GetByName(t, "dname"), 0)
	}

	progsTC := net.TConst(emp, "job", jobProgrammer, jobProgrammer)
	progsAlpha := net.NewMemory(emp, nil, empKey)
	progsTC.Attach(progsAlpha)

	clerksTC := net.TConst(emp, "job", jobClerk, jobClerk)
	clerksAlpha := net.NewMemory(emp, nil, empKey)
	clerksTC.Attach(clerksAlpha)

	floorTC := net.TConst(dept, "floor", 1, 1)
	floorAlpha := net.NewMemory(dept, nil, deptKey)
	floorTC.Attach(floorAlpha)
	// Requesting the same condition again returns the same node: this is
	// the shared subexpression of Figure 1.
	if net.TConst(dept, "floor", 1, 1) != floorTC {
		panic("sharing failed")
	}

	viewKey := func(sch *tuple.Schema) func([]byte) uint64 {
		return func(t []byte) uint64 {
			return tuple.ClusterKey(sch.GetByName(t, "id"), sch.GetByName(t, "dname"))
		}
	}
	// Probing is by the left token's dept against the DEPT memory's dname.
	progsAnd := net.NewAndNode(progsAlpha, floorAlpha, "dept", "dname", "", 120)
	progs1 := net.NewMemory(progsAnd.Schema(), nil, viewKey(progsAnd.Schema()))
	progsAnd.Attach(progs1)

	clerksAnd := net.NewAndNode(clerksAlpha, floorAlpha, "dept", "dname", "", 120)
	clerks1 := net.NewMemory(clerksAnd.Schema(), nil, viewKey(clerksAnd.Schema()))
	clerksAnd.Attach(clerks1)

	fmt.Printf("Network built: %d t-const nodes for 2 views x 2 conditions (floor=1 shared)\n\n", net.NumTConsts())

	// Load base data as + tokens through the network root.
	addDept := func(dname, floor int64) {
		t := dept.New()
		dept.SetByName(t, "dname", dname)
		dept.SetByName(t, "floor", floor)
		net.Submit(pager, "dept", rete.Token{Tag: rete.Plus, Tuple: t})
	}
	empTuple := func(id, age, deptID, salary, job int64) []byte {
		t := emp.New()
		emp.SetByName(t, "id", id)
		emp.SetByName(t, "age", age)
		emp.SetByName(t, "dept", deptID)
		emp.SetByName(t, "salary", salary)
		emp.SetByName(t, "job", job)
		return t
	}
	addEmp := func(t []byte) { net.Submit(pager, "emp", rete.Token{Tag: rete.Plus, Tuple: t}) }

	addDept(10, 1)                                    // Accounting, first floor
	addDept(20, 2)                                    // Shipping, second floor
	addEmp(empTuple(1, 41, 10, 52000, jobProgrammer)) // Mike
	addEmp(empTuple(2, 33, 20, 48000, jobProgrammer)) // Ann (floor 2: not in view)
	addEmp(empTuple(3, 25, 10, 31000, jobClerk))      // Bill
	addEmp(empTuple(4, 28, 20, 30000, jobClerk))      // Carol (floor 2)

	show := func() {
		fmt.Println("  PROGS1 (programmers on floor 1):")
		progs1.File().Scan(pager, func(_ uint64, rec []byte) bool {
			sch := progsAnd.Schema()
			fmt.Printf("    %-6s dept=%s salary=%d\n",
				empNames[sch.GetByName(rec, "id")], deptNames[sch.GetByName(rec, "dept")],
				sch.GetByName(rec, "salary"))
			return true
		})
		fmt.Println("  CLERKS1 (clerks on floor 1):")
		clerks1.File().Scan(pager, func(_ uint64, rec []byte) bool {
			sch := clerksAnd.Schema()
			fmt.Printf("    %-6s dept=%s\n",
				empNames[sch.GetByName(rec, "id")], deptNames[sch.GetByName(rec, "dept")])
			return true
		})
		fmt.Println()
	}
	fmt.Println("After initial load:")
	show()

	// The paper's walk-through: Susan joins Accounting as a programmer.
	fmt.Println(`Inserting <name="Susan", age=28, dept="Accounting", salary=30K, job="Programmer">...`)
	susan := empTuple(5, 28, 10, 30000, jobProgrammer)
	addEmp(susan)
	show()

	// Right activation: Shipping moves to the first floor — a + token on
	// the shared DEPT memory joins against BOTH left memories.
	fmt.Println("Shipping moves from floor 2 to floor 1 (one token, two views update):")
	oldShipping := dept.New()
	dept.SetByName(oldShipping, "dname", 20)
	dept.SetByName(oldShipping, "floor", 2)
	newShipping := dept.New()
	dept.SetByName(newShipping, "dname", 20)
	dept.SetByName(newShipping, "floor", 1)
	net.SubmitModify(pager, "dept", oldShipping, newShipping)
	show()

	// And a deletion: Susan leaves.
	fmt.Println("Susan leaves the company (a - token):")
	net.Submit(pager, "emp", rete.Token{Tag: rete.Minus, Tuple: susan})
	show()

	fmt.Printf("Simulated maintenance cost so far: %.0f ms (%v)\n",
		meter.Milliseconds(), meter.Snapshot())
}
