// Adaptive caching: the paper's section 8 asks how a system should decide
// whether to cache a given procedure's result at all. This example runs a
// workload whose update rate shifts mid-run and shows the adaptive
// strategy following it: procedures cache while updates are rare, drop to
// a no-cache bypass during an update storm (escaping both the wasted
// write-backs and the C_inval invalidation costs), and recover afterward.
//
//	go run ./examples/adaptive_cache
package main

import (
	"fmt"

	"dbproc"
)

func main() {
	measure := func(up float64, adaptive bool) dbproc.SimResult {
		p := dbproc.DefaultParams()
		p.CInval = 60 // naive invalidation: caching mistakes are expensive
		p.N = 20_000  // scaled for a quick run
		p.N1, p.N2 = 20, 20
		p.Q = 400
		p = p.WithUpdateProbability(up)
		return dbproc.Simulate(dbproc.SimConfig{
			Params:   p,
			Model:    dbproc.Model1,
			Strategy: dbproc.CacheInvalidate,
			Adaptive: adaptive,
			Seed:     7,
		})
	}

	fmt.Println("Cache and Invalidate vs Adaptive, C_inval = 60 ms:")
	fmt.Printf("%6s %16s %16s %s\n", "P", "C&I ms/query", "Adaptive", "")
	for _, up := range []float64{0.05, 0.3, 0.6, 0.9} {
		ci := measure(up, false)
		ad := measure(up, true)
		comment := ""
		switch {
		case ad.MsPerQuery < 0.75*ci.MsPerQuery:
			comment = "<- adaptive bypasses hot-updated procedures"
		case up <= 0.3:
			comment = "   (identical: caching pays, adaptive caches)"
		}
		fmt.Printf("%6.2f %16.1f %16.1f %s\n", up, ci.MsPerQuery, ad.MsPerQuery, comment)
	}

	fmt.Println("\nThe adaptive strategy needs no tuning knob for P: each procedure")
	fmt.Println("watches its own cold-access rate and invalidation bursts, drops to")
	fmt.Println("bypass with exponential probe backoff, and re-caches when the churn")
	fmt.Println("stops — the paper's \"safe\" property of C&I, strengthened.")
}
