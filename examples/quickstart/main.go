// Quickstart: evaluate the paper's cost model at a workload point, pick
// the best strategy, and validate the choice by running the executable
// system on the same parameters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dbproc"
)

func main() {
	// The paper's default environment: 100,000-tuple R1, 200 stored
	// procedures, 30 ms page I/O. Dial the update probability to 0.2 and
	// shrink objects to 10 tuples each (f = 0.0001).
	p := dbproc.DefaultParams()
	p.F = 0.0001
	p.Q = 400 // run long enough to reach the steady state the model describes
	p = p.WithUpdateProbability(0.2)

	fmt.Println("Analytic cost per procedure access (model 1):")
	costs := dbproc.AllCosts(dbproc.Model1, p)
	for _, s := range dbproc.Strategies {
		fmt.Printf("  %-22s %8.1f ms\n", s, costs[s])
	}

	best := dbproc.BestStrategy(dbproc.Model1, p)
	fmt.Printf("\nCheapest strategy: %v (%.1fx better than Always Recompute)\n\n",
		best.Best, costs[dbproc.AlwaysRecompute]/costs[best.Best])

	// Now run the real system — storage engine, B-tree, hash indexes,
	// i-locks, view maintenance — on the same parameters and compare.
	fmt.Println("Measured on the executable system (same parameters):")
	for _, s := range dbproc.Strategies {
		res := dbproc.Simulate(dbproc.SimConfig{
			Params:   p,
			Model:    dbproc.Model1,
			Strategy: s,
			Seed:     42,
		})
		fmt.Printf("  %-22s %8.1f ms/query   (model predicts %.1f, ratio %.2f)\n",
			s, res.MsPerQuery, res.PredictedMs, res.MsPerQuery/res.PredictedMs)
	}
	fmt.Println("\nThe measured ordering matches the model: caching beats recomputation")
	fmt.Println("by a wide margin at P = 0.2, with both cached strategies close together")
	fmt.Println("on small objects — exactly the paper's Figure 7 regime.")
}
