#!/bin/sh
# scenario_smoke.sh — end-to-end smoke of the hostile-workload scenario
# pipeline (docs/SCENARIOS.md).
#
#   1. procbench -scenarios-json generates a small scenario benchmark
#      (two hostile scenarios + the polite baseline, scaled down),
#   2. procstat -scenarios renders its winner-region table,
#   3. procadvisor -scenarios re-derives every winner from the row
#      evidence and must confirm the recorded verdicts,
#   4. procsim -scenario drives a storm-adversarial world through the
#      8-session engine with the flight recorder armed — any watchdog,
#      serializability violation or fault dumps to the artifact dir,
#   5. a 1-client scenario run must print the served byte-identity line
#      against sim.Run (replayable from (scenario, seed) alone).
#
# Run from the repository root: sh scripts/scenario_smoke.sh
# CI runs it as the scenario-smoke job (.github/workflows/ci.yml);
# verify.sh tier 3 runs it too. VERIFY_ARTIFACTS keeps the benchmark
# JSON, renders and any flight dump for upload on failure.

set -e

SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
ART="${VERIFY_ARTIFACTS:-$SMOKE}"
mkdir -p "$ART"

go build -o "$SMOKE/procbench" ./cmd/procbench
go build -o "$SMOKE/procstat" ./cmd/procstat
go build -o "$SMOKE/procadvisor" ./cmd/procadvisor
go build -o "$SMOKE/procsim" ./cmd/procsim

# 1. Generate: polite baseline + two hostile scenarios, scaled for CI.
"$SMOKE/procbench" -scenarios-json "$ART/BENCH_scenarios_smoke.json" \
    -scale 5 -scenario-filter hot-key-storm,storm-adversarial \
    >"$ART/scenario-bench.txt"
grep -q 'scenario benchmark (3 scenarios, 24 rows' "$ART/scenario-bench.txt" || {
    echo "scenario smoke: FAIL - benchmark grid incomplete"; exit 1; }

# 2. Render: the winner-region table must carry every scenario row.
"$SMOKE/procstat" -scenarios "$ART/BENCH_scenarios_smoke.json" \
    >"$ART/scenario-stat.txt"
for sc in polite hot-key-storm storm-adversarial; do
    grep -q "^$sc " "$ART/scenario-stat.txt" || {
        echo "scenario smoke: FAIL - procstat -scenarios missing $sc rows"; exit 1; }
done

# 3. Trust: procadvisor must re-derive every recorded winner from the
# rows shipped beside it.
"$SMOKE/procadvisor" -scenarios "$ART/BENCH_scenarios_smoke.json" \
    >"$ART/scenario-advice.txt"
grep -q "verdict(s) re-derived from their row evidence and confirmed" \
    "$ART/scenario-advice.txt" || {
    echo "scenario smoke: FAIL - procadvisor did not confirm the verdicts"; exit 1; }

# 4. Hostile concurrency: 8 sessions under the nastiest catalog entry,
# flight recorder armed. The run must complete and commit the whole
# dealt schedule (15 updates + 25 queries = 40 ops).
"$SMOKE/procsim" -scenario storm-adversarial -N 600 -f 0.0133 -N1 3 -N2 3 \
    -k 15 -q 25 -clients 8 -strategy ci -flight "$ART/scenario-flight.jsonl" \
    -json >"$ART/scenario-concurrent.json"
grep -q '"ops": 40' "$ART/scenario-concurrent.json" || {
    echo "scenario smoke: FAIL - 8-session scenario run lost operations"; exit 1; }

# 5. Replayability over the wire: a served 1-client scenario world must
# be byte-identical to the sequential simulator.
"$SMOKE/procsim" -scenario hot-key-storm -N 600 -f 0.0133 -N1 3 -N2 3 \
    -k 15 -q 25 -serve -strategy ci >"$ART/scenario-served.txt"
grep -q '= sim.Run' "$ART/scenario-served.txt" || {
    echo "scenario smoke: FAIL - served 1-client scenario run did not match sim.Run"; exit 1; }

echo "scenario smoke: OK"
