#!/bin/sh
# server_smoke.sh — end-to-end smoke of the serving layer (docs/SERVING.md).
#
# Starts a real procserved process with its telemetry endpoint, then:
#
#   1. runs a workload through the standard database/sql driver
#      (procsim -connect) and checks the 1-client identity line,
#   2. runs interactive QUEL statements over the wire (procshell -connect),
#   3. scrapes /metrics for the server's connection/handle gauges and
#      admission counters,
#   4. sends SIGINT and requires a clean graceful drain (exit 0, "bye").
#
# Run from the repository root: sh scripts/server_smoke.sh
# CI runs it as the tier-2 server smoke job (.github/workflows/ci.yml);
# verify.sh tier 3 runs it too. VERIFY_ARTIFACTS keeps the transcript and
# metrics scrape for upload on failure.

set -e

SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"; kill "$SRV_PID" 2>/dev/null || true' EXIT
ART="${VERIFY_ARTIFACTS:-$SMOKE}"
mkdir -p "$ART"

go build -o "$SMOKE/procserved" ./cmd/procserved
go build -o "$SMOKE/procsim" ./cmd/procsim
go build -o "$SMOKE/procshell" ./cmd/procshell
go build -o "$SMOKE/procmon" ./cmd/procmon

"$SMOKE/procserved" -listen 127.0.0.1:0 -telemetry 127.0.0.1:0 \
    >"$ART/served-out.txt" 2>"$ART/served-err.txt" &
SRV_PID=$!

ADDR=""
TADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^procserved: listening on ##p' "$ART/served-err.txt" | head -1)
    TADDR=$(sed -n 's#^telemetry: listening on http://##p' "$ART/served-err.txt" | head -1)
    [ -n "$ADDR" ] && [ -n "$TADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ] || [ -z "$TADDR" ]; then
    echo "server smoke: FAIL - procserved never reported its bound addresses"
    exit 1
fi

# A measured workload through sql.Open("dbproc", ...): one client, so the
# run must print the byte-identity line against the sequential simulator.
"$SMOKE/procsim" -connect "$ADDR" -N 600 -f 0.0133 -N1 3 -N2 3 -k 15 -q 25 \
    -strategy ci >"$ART/served-sim.txt"
grep -q '= sim.Run' "$ART/served-sim.txt" || {
    echo "server smoke: FAIL - served 1-client run did not match sim.Run"; exit 1; }

# Interactive statements over the wire: schema, DML, a retrieve.
printf '%s\n' \
    'create emp (tid, age) cluster on age;' \
    'append to emp (tid = 1, age = 30);' \
    'retrieve (emp.all);' \
    '.quit' \
    | "$SMOKE/procshell" -connect "$ADDR" >"$ART/served-shell.txt"
grep -q 'age' "$ART/served-shell.txt" || {
    echo "server smoke: FAIL - procshell -connect retrieve printed no rows"; exit 1; }

# The server's own gauges and counters on /metrics: connection-pool
# gauges present, and the admission/request counters show the traffic
# the two clients just generated.
"$SMOKE/procmon" -addr "$TADDR" -raw >"$ART/served-metrics.txt"
for series in \
    '^dbproc_server_connections ' \
    '^dbproc_server_stmts_open ' \
    '^dbproc_server_cursors_open ' \
    '^dbproc_server_tx_open '; do
    grep -q "$series" "$ART/served-metrics.txt" || {
        echo "server smoke: FAIL - /metrics missing series $series"; exit 1; }
done
ACCEPTED=$(sed -n 's/^dbproc_server_connections_accepted_total //p' "$ART/served-metrics.txt")
case "$ACCEPTED" in
    ''|0) echo "server smoke: FAIL - no connections accepted (got '$ACCEPTED')"; exit 1 ;;
esac
REQUESTS=$(sed -n 's/^dbproc_server_requests_total //p' "$ART/served-metrics.txt")
case "$REQUESTS" in
    ''|0) echo "server smoke: FAIL - no requests recorded (got '$REQUESTS')"; exit 1 ;;
esac

# Clean drain: SIGINT must exit 0 (set -e enforces) and say goodbye.
kill -INT "$SRV_PID"
wait "$SRV_PID"
grep -q '^procserved: bye$' "$ART/served-err.txt" || {
    echo "server smoke: FAIL - no clean drain message"; exit 1; }

echo "server smoke: OK (accepted=$ACCEPTED requests=$REQUESTS)"
