#!/bin/sh
# trace_smoke.sh — end-to-end smoke of the wire tracing layer
# (docs/TRACING.md).
#
# Starts a real procserved with -trace, then:
#
#   1. drives a mixed traced workload with proctrace -drive (pooled
#      database/sql statements, a mid-cursor close, a transaction, and a
#      2-session critical-path bench world), writing the client half of
#      the trace,
#   2. SIGINTs the server and requires a clean drain that reports the
#      server half's span count,
#   3. merges the two halves with proctrace -check -o: every server
#      span's segments must sum exactly to its wall time, and the merged
#      Chrome trace must pair client and server spans with cross-wire
#      flow arrows.
#
# Run from the repository root: sh scripts/trace_smoke.sh
# CI runs it as the trace-smoke job (.github/workflows/ci.yml);
# verify.sh tier 3 runs it too. VERIFY_ARTIFACTS keeps both JSONL halves
# and the merged trace for upload on failure.

set -e

SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"; kill "$SRV_PID" 2>/dev/null || true' EXIT
ART="${VERIFY_ARTIFACTS:-$SMOKE}"
mkdir -p "$ART"

go build -o "$SMOKE/procserved" ./cmd/procserved
go build -o "$SMOKE/proctrace" ./cmd/proctrace

"$SMOKE/procserved" -listen 127.0.0.1:0 -trace "$ART/server.jsonl" \
    >"$ART/served-out.txt" 2>"$ART/served-err.txt" &
SRV_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^procserved: listening on ##p' "$ART/served-err.txt" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "trace smoke: FAIL - procserved never reported its bound address"
    exit 1
fi

# The traced workload: every request carries a fresh trace context, so
# the server half must hold one span per driven request.
"$SMOKE/proctrace" -drive "$ADDR" -o "$ART/client.jsonl" 2>"$ART/drive-err.txt"
grep -q 'proctrace: drove' "$ART/drive-err.txt" || {
    echo "trace smoke: FAIL - proctrace -drive reported no summary"; exit 1; }

# Clean drain: SIGINT must exit 0 (set -e enforces), say goodbye, and
# flush the server-side spans.
kill -INT "$SRV_PID"
wait "$SRV_PID"
grep -q '^procserved: bye$' "$ART/served-err.txt" || {
    echo "trace smoke: FAIL - no clean drain message"; exit 1; }
grep -q 'procserved: wrote [1-9][0-9]* wire spans' "$ART/served-err.txt" || {
    echo "trace smoke: FAIL - procserved flushed no wire spans"; exit 1; }

# Merge both halves. -check enforces the sum-to-total invariant on every
# server span; a violation exits nonzero and fails the smoke.
"$SMOKE/proctrace" -check -o "$ART/merged.json" \
    "$ART/client.jsonl" "$ART/server.jsonl" 2>"$ART/merge-err.txt" || {
    cat "$ART/merge-err.txt"
    echo "trace smoke: FAIL - proctrace -check rejected the trace"; exit 1; }
grep -q 'server segments sum to wall' "$ART/merge-err.txt" || {
    echo "trace smoke: FAIL - no sum-to-total confirmation"; exit 1; }

# The merged Chrome trace must actually pair the two processes: every
# client/server pair contributes a request arrow and a response arrow,
# each a flow start ("ph":"s") plus a flow finish ("ph":"f") — so both
# counts must equal twice the pair count. The merge is a single JSON
# line, so count matches with grep -o rather than per-line grep -c.
PAIRS=$(sed -n 's/.*merged.*spans, \([0-9]*\) pairs.*/\1/p' "$ART/merge-err.txt")
case "$PAIRS" in
    ''|0) echo "trace smoke: FAIL - merge paired no spans (got '$PAIRS')"; exit 1 ;;
esac
STARTS=$(grep -o '"ph":"s"' "$ART/merged.json" | wc -l)
FINISHES=$(grep -o '"ph":"f"' "$ART/merged.json" | wc -l)
if [ "$STARTS" -ne $((2 * PAIRS)) ] || [ "$FINISHES" -ne $((2 * PAIRS)) ]; then
    echo "trace smoke: FAIL - $PAIRS pairs but $STARTS/$FINISHES flow starts/finishes"
    exit 1
fi

echo "trace smoke: OK (pairs=$PAIRS arrows=$((STARTS + FINISHES)))"
