#!/bin/sh
# verify.sh — the repository's check tiers.
#
#   tier 1: go build ./... && go test ./...        (the seed contract)
#   tier 2: go vet ./... && go test -race ./...    (static + race checks)
#   tier 3: concurrency + parallel sweep guards     (docs/CONCURRENCY.md,
#           docs/PARALLEL.md: serializability oracle, race-stress soak,
#           determinism oracles, fuzz smokes)
#   tier 4: meter-attribution overhead guard        (<= 5% vs seed meter;
#           timing-sensitive — expect noise on loaded single-core boxes)
#
# Run from the repository root: sh scripts/verify.sh

set -e

echo "== tier 1: build + test =="
go build ./...
go test ./...

echo "== tier 2: vet + race =="
go vet ./...
# Vet again with the race build tag set, so any //go:build race test
# helpers (deadlock watchdogs, soak gates) are vetted too.
go vet -tags=race ./...
go test -race ./...

echo "== tier 3: concurrency + parallel sweep engine guards =="
# Serializability oracle and multi-session race-stress soak: 8 sessions
# per caching strategy under the race detector, with the deadlock
# watchdog armed (-short caps the soak matrix; GOMAXPROCS raised so
# sessions genuinely interleave on single-core CI boxes).
GOMAXPROCS=4 go test -race -short \
    -run 'TestOracleSerializable|TestOracleRejectsCorruptedHistory|TestRaceStress|TestClientsOneMatchesSequential|TestLockTable' \
    ./internal/engine/
# Injected-RNG audit: simulation worlds must be self-contained, so no
# non-test code under internal/ may draw from the package-level
# math/rand generator (rand.New(rand.NewSource(...)) instances are the
# sanctioned pattern; "rand." method calls go through those).
if grep -rn --include='*.go' --exclude='*_test.go' \
        -E 'rand\.(Int|Intn|Int31|Int63|Float32|Float64|Perm|Shuffle|Seed|ExpFloat64|NormFloat64)\(' \
        internal/ cmd/; then
    echo "verify: FAIL - package-level math/rand call in non-test code (inject rand.New(rand.NewSource(seed)))"
    exit 1
fi
echo "rand audit: OK"

# The determinism contract and the strategy-equivalence oracle, under the
# race detector with a multi-worker pool (GOMAXPROCS raised so the pool
# genuinely interleaves even on single-core CI boxes).
GOMAXPROCS=4 go test -race \
    -run 'TestDifferentialOracle|TestRunDeterminism|TestFig05WorkerCountInvariance|TestMapOrderIsDeterministic' \
    ./internal/sim/ ./internal/experiments/ ./internal/parallel/

# Parser/planner no-panic fuzz smoke.
go test -fuzz='^FuzzParse$' -fuzztime=10s -run '^FuzzParse$' ./internal/quel/

# Planner determinism fuzz smoke: concurrent compilation of transcript
# corpora must render identical plans (docs/CONCURRENCY.md).
go test -fuzz='^FuzzPlan$' -fuzztime=10s -run '^FuzzPlan$' ./internal/quel/

echo "== tier 4: meter attribution overhead guard =="
# BenchmarkMeterAttributed replays the seed meter's hot path through the
# component-attributed meter; it must stay within 5% of the baseline that
# replicates the pre-attribution implementation. Benchmarks are noisy, so
# take the best of a few runs for both sides.
go test -run '^$' -bench 'BenchmarkMeterSeedBaseline|BenchmarkMeterAttributed$' \
    -benchtime=2s -count=3 ./internal/metric/ | tee /tmp/meter_bench.txt

awk '
    /^BenchmarkMeterSeedBaseline/ { if (base == 0 || $3 < base) base = $3 }
    /^BenchmarkMeterAttributed-|^BenchmarkMeterAttributed / { if (attr == 0 || $3 < attr) attr = $3 }
    END {
        if (base == 0 || attr == 0) { print "verify: benchmark output missing"; exit 1 }
        ratio = attr / base
        printf "meter overhead: attributed %.3f ns/op vs baseline %.3f ns/op (ratio %.3f)\n", attr, base, ratio
        if (ratio > 1.05) { print "verify: FAIL - attributed meter exceeds 5% overhead"; exit 1 }
        print "meter overhead guard: OK"
    }
' /tmp/meter_bench.txt

echo "== all tiers passed =="
