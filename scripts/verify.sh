#!/bin/sh
# verify.sh — the repository's check tiers.
#
#   tier 1: go build ./... && go test ./...        (the seed contract)
#   tier 2: go vet ./... && go test -race ./...    (static + race checks)
#   tier 3: concurrency + parallel sweep guards     (docs/CONCURRENCY.md,
#           docs/PARALLEL.md: serializability oracle, race-stress soak,
#           determinism oracles, fuzz smokes), the telemetry smoke
#           (docs/TELEMETRY.md: -listen endpoints, procmon, procstat),
#           the diagnosis smoke (docs/DIAGNOSIS.md: -critpath,
#           -ledger, procdoctor), and the serving guards
#           (docs/SERVING.md: wire-frame fuzz smokes, the served race
#           soak + driver conformance under -race, the procserved
#           process smoke via scripts/server_smoke.sh), the
#           hostile-workload scenario guards (docs/SCENARIOS.md:
#           adversarial-invalidation serializability soak under -race,
#           the scenario pipeline smoke via scripts/scenario_smoke.sh),
#           and the wire-tracing guards (docs/TRACING.md: the 8-client
#           sum-to-total breakdown soak under -race, the cross-process
#           trace smoke via scripts/trace_smoke.sh), and the MVCC
#           snapshot guards (docs/MVCC.md: the 8-client storm-adversarial
#           snapshot soak under -race with the SI-aware oracle and the
#           watchdog flight dump kept as an artifact, the write-skew
#           corpus, MVCC-off byte-identity and the open-loop arrival
#           replay property)
#   tier 4: zero-diagnosis overhead guards          (vs seed meter, seed
#           lock table, blame-off acquire, ledger-off invalidate,
#           trace-off wire frames and the MVCC-off page-read route;
#           minima of VERIFY_OVERHEAD_RUNS interleaved runs)
#
# Run from the repository root: sh scripts/verify.sh
#
# Environment knobs:
#   VERIFY_MAX_TIER=N        stop after tier N (CI runs tiers 1-2)
#   VERIFY_SKIP_OVERHEAD=1   skip tier 4's timing-sensitive benchmarks
#                            (use on loaded or single-core boxes)
#   VERIFY_OVERHEAD_RUNS=N   interleaved benchmark rounds per tier-4 guard
#                            (default 8; raise on noisy shared boxes)
#   VERIFY_ARTIFACTS=DIR     keep the tier-3 smoke artifacts (metrics
#                            scrape, flight tail, ledger, doctor report)
#                            in DIR instead of a deleted temp dir — CI
#                            uploads this directory when the soak fails

set -e

MAX_TIER="${VERIFY_MAX_TIER:-4}"

stop_after() {
    if [ "$MAX_TIER" -le "$1" ]; then
        echo "== stopping after tier $1 (VERIFY_MAX_TIER=$MAX_TIER) =="
        exit 0
    fi
}

echo "== tier 1: build + test =="
go build ./...
go test ./...
stop_after 1

echo "== tier 2: vet + race =="
go vet ./...
# Vet again with the race build tag set, so any //go:build race test
# helpers (deadlock watchdogs, soak gates) are vetted too.
go vet -tags=race ./...
go test -race ./...
stop_after 2

echo "== tier 3: concurrency + parallel sweep engine guards =="
# Serializability oracle and multi-session race-stress soak: 8 sessions
# per caching strategy under the race detector, with the deadlock
# watchdog armed (-short caps the soak matrix; GOMAXPROCS raised so
# sessions genuinely interleave on single-core CI boxes).
GOMAXPROCS=4 go test -race -short \
    -run 'TestOracleSerializable|TestOracleRejectsCorruptedHistory|TestRaceStress|TestClientsOneMatchesSequential|TestLockTable|TestTelemetryPreservesSequentialIdentity|TestFlightRecorderCapturesRun|TestContentionProfile|TestCritPathSumsToWall|TestDiagnosisPreservesSequentialIdentity|TestScenarioOracleAdversarial|TestScenarioClientsOneMatchesSequential|TestScenarioConcurrentConsistent|TestScenarioRunReplayable|TestScenarioNestedFootprintCoversInner' \
    ./internal/engine/
# MVCC snapshot soak (docs/MVCC.md): 8 sessions under storm-adversarial
# traffic with snapshot reads ON — every lifted history checked by the
# SI-aware oracle, every procedure checked against a fresh recompute —
# plus the write-skew corpus the old commit-order check must miss, the
# MVCC-off byte-identity guard and the open-loop arrival replay
# property. TMPDIR points at the artifact dir so a stalled soak's
# watchdog flight dump is kept for CI upload.
MVCC_ART="${VERIFY_ARTIFACTS:-$(mktemp -d)}"
mkdir -p "$MVCC_ART"
TMPDIR="$MVCC_ART" GOMAXPROCS=4 go test -race \
    -run 'TestMVCCSnapshotSoak|TestMVCCOffMatchesSequential|TestMVCCAccessWaitShareCollapse|TestSIOracleCorpus|TestSIOracleMinimalWindow|TestSIOracleSeeded|TestTxnsFromHistoryCleanRun|TestOpenLoopArrivals' \
    ./internal/engine/
echo "mvcc snapshot soak: OK"

# Injected-RNG audit: simulation worlds must be self-contained, so no
# non-test code under internal/ may draw from the package-level
# math/rand generator (rand.New(rand.NewSource(...)) instances are the
# sanctioned pattern; "rand." method calls go through those).
if grep -rn --include='*.go' --exclude='*_test.go' \
        -E 'rand\.(Int|Intn|Int31|Int63|Float32|Float64|Perm|Shuffle|Seed|ExpFloat64|NormFloat64)\(' \
        internal/ cmd/; then
    echo "verify: FAIL - package-level math/rand call in non-test code (inject rand.New(rand.NewSource(seed)))"
    exit 1
fi
echo "rand audit: OK"

# The determinism contract and the strategy-equivalence oracle, under the
# race detector with a multi-worker pool (GOMAXPROCS raised so the pool
# genuinely interleaves even on single-core CI boxes).
GOMAXPROCS=4 go test -race \
    -run 'TestDifferentialOracle|TestRunDeterminism|TestFig05WorkerCountInvariance|TestMapOrderIsDeterministic' \
    ./internal/sim/ ./internal/experiments/ ./internal/parallel/

# Parser/planner no-panic fuzz smoke.
go test -fuzz='^FuzzParse$' -fuzztime=10s -run '^FuzzParse$' ./internal/quel/

# Planner determinism fuzz smoke: concurrent compilation of transcript
# corpora must render identical plans (docs/CONCURRENCY.md).
go test -fuzz='^FuzzPlan$' -fuzztime=10s -run '^FuzzPlan$' ./internal/quel/

# Wire-frame fuzz smokes (docs/SERVING.md): the decoder must survive
# malformed, truncated and adversarial length-prefixed frames without
# panicking or over-allocating, and encode->decode must round-trip.
go test -fuzz='^FuzzFrameDecode$' -fuzztime=10s -run '^FuzzFrameDecode$' ./internal/wire/
go test -fuzz='^FuzzFrameRoundTrip$' -fuzztime=10s -run '^FuzzFrameRoundTrip$' ./internal/wire/

# Served race soak + driver conformance + cross-wire identity + tracing
# guards: 8 concurrent database/sql clients over loopback procserved
# under the race detector, the conformance suite's handle-table drain
# checks, the byte-identity of a served 1-client world against sim.Run
# — with tracing ON (docs/SERVING.md) — and the 8-client sum-to-total
# soak: every traced response's server breakdown must partition its wall
# exactly (docs/TRACING.md).
GOMAXPROCS=4 go test -race \
    -run 'TestServedRaceSoak|TestServedIdentity|TestDriverConformance|TestAdmissionLimit|TestGracefulDrain|TestServerBreakdownSumsToWall|TestPooledConnStats|TestTracingOffByteIdentity' \
    ./client/ ./internal/wire/

# procserved process smoke: real server process, database/sql driver
# workload, /metrics scrape, clean SIGINT drain (docs/SERVING.md).
sh scripts/server_smoke.sh

# Wire-tracing process smoke: procserved -trace, a traced proctrace
# -drive workload, and the cross-process merge — sum-to-total checked,
# flow arrows counted (docs/TRACING.md).
sh scripts/trace_smoke.sh

# Hostile-workload scenario smoke: generate a scaled scenario benchmark,
# render its winner regions, have procadvisor re-derive the verdicts
# from the row evidence, and soak the 8-session engine under
# storm-adversarial traffic with the flight recorder armed
# (docs/SCENARIOS.md).
sh scripts/scenario_smoke.sh

# Telemetry smoke: a live concurrent procsim must expose /metrics that
# procmon can scrape (with the run's committed-op and per-lock counters),
# a flight tail that round-trips through procstat -flight, and a clean
# SIGINT shutdown.
echo "telemetry smoke: procsim -listen / procmon / procstat -flight"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
# Smoke artifacts (metrics scrape, flight tail, ledger, doctor report) go
# to VERIFY_ARTIFACTS when set — kept for CI upload — else to the
# deleted temp dir.
ART="${VERIFY_ARTIFACTS:-$SMOKE}"
mkdir -p "$ART"
go build -o "$SMOKE/procsim" ./cmd/procsim
go build -o "$SMOKE/procmon" ./cmd/procmon
go build -o "$SMOKE/procstat" ./cmd/procstat
go build -o "$SMOKE/procdoctor" ./cmd/procdoctor
"$SMOKE/procsim" -N 600 -f 0.0133 -N1 3 -N2 3 -k 15 -q 25 \
    -clients 8 -strategy ci -listen 127.0.0.1:0 \
    -critpath -ledger "$ART/ledger.jsonl" -flight "$ART/flight.jsonl" \
    >"$ART/out.txt" 2>"$ART/err.txt" &
SIM_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$ART/err.txt" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "verify: FAIL - procsim -listen never reported a bound address"
    kill "$SIM_PID" 2>/dev/null || true
    exit 1
fi
for _ in $(seq 1 200); do
    grep -q "run complete" "$ART/err.txt" && break
    sleep 0.1
done
"$SMOKE/procmon" -addr "$ADDR" -raw >"$ART/metrics.txt"
grep -q '^dbproc_up 1$' "$ART/metrics.txt" || {
    echo "verify: FAIL - /metrics missing dbproc_up"; exit 1; }
grep -q '^dbproc_ops_committed_total 40$' "$ART/metrics.txt" || {
    echo "verify: FAIL - /metrics committed ops != workload size 40"; exit 1; }
grep -q '^dbproc_lock_acquires_total{lock="rel:r1"}' "$ART/metrics.txt" || {
    echo "verify: FAIL - /metrics missing per-lock contention counters"; exit 1; }
# The -critpath run must export the critical-path decomposition series.
grep -q '^dbproc_critpath_seconds_total{segment="compute"}' "$ART/metrics.txt" || {
    echo "verify: FAIL - /metrics missing critical-path segment series"; exit 1; }
"$SMOKE/procmon" -addr "$ADDR" -blame -n 1 >"$ART/blame.txt"
grep -q 'critical path:' "$ART/blame.txt" || {
    echo "verify: FAIL - procmon -blame rendered no critical-path panel"; exit 1; }
"$SMOKE/procmon" -addr "$ADDR" -tail 32 >"$ART/flight-tail.jsonl"
"$SMOKE/procstat" -flight "$ART/flight-tail.jsonl" >"$ART/flightview.txt"
grep -q 'op.commit' "$ART/flightview.txt" || {
    echo "verify: FAIL - flight tail did not round-trip through procstat"; exit 1; }
kill -INT "$SIM_PID"
wait "$SIM_PID"  # procsim must exit 0 on SIGINT (set -e enforces)
echo "telemetry smoke: OK"

# Causal diagnosis smoke: the ledger the run just wrote must parse and
# yield a strategy section with a dominant bottleneck (docs/DIAGNOSIS.md).
echo "diagnosis smoke: procdoctor -ledger"
"$SMOKE/procdoctor" -ledger "$ART/ledger.jsonl" >"$ART/doctor.txt"
grep -q 'dominant bottleneck:' "$ART/doctor.txt" || {
    echo "verify: FAIL - procdoctor found no dominant bottleneck in the smoke ledger"; exit 1; }
echo "diagnosis smoke: OK"
if [ -n "${VERIFY_ARTIFACTS:-}" ]; then
    echo "smoke artifacts kept in $ART"
fi
stop_after 3

echo "== tier 4: zero-telemetry overhead guards =="
# Each guard replays a hot path through the instrumented implementation
# with instrumentation off against a baseline that replicates the
# pre-instrumentation code. The 8 samples per side come from 8 separate
# `go test -count=1` invocations, so baseline and candidate interleave in
# time — a single `-count=8` run would time all baseline samples as one block
# and all candidate samples as another, letting machine-state drift
# between the blocks masquerade as overhead. The guard compares the
# minimum of each side: timing noise on a shared box (steal time, GC,
# thermal throttling) is strictly additive, so the min of several
# interleaved runs is the best estimator of true cost for both sides,
# while a real regression raises the candidate's floor and cannot hide.
#
# Two threshold modes, because the right criterion depends on the
# denominator. The lock table's baseline is ~1us/op, so a 5% ratio is
# meaningful. The meter's baseline is ~1.5ns/op — a single extra indexed
# add (~0.3ns, the inherent cost of per-component attribution) is already
# >5% of a denominator that small, while a real regression (a map lookup,
# an interface call) costs several ns. So the meter guard bounds the
# *absolute* per-iteration delta instead of the ratio.
if [ -n "${VERIFY_SKIP_OVERHEAD:-}" ]; then
    echo "overhead guards skipped (VERIFY_SKIP_OVERHEAD set)"
else
    # overhead_guard FILE BASE_RE ATTR_RE LABEL MODE BOUND
    #   MODE=ratio: fail when median(attr)/median(base) > BOUND
    #   MODE=delta: fail when median(attr)-median(base) > BOUND ns/op
    overhead_guard() {
        awk -v base_re="$2" -v attr_re="$3" -v label="$4" \
            -v mode="$5" -v bound="$6" '
            $0 ~ base_re { if (!nb++ || $3 < mb) mb = $3 }
            $0 ~ attr_re { if (!na++ || $3 < ma) ma = $3 }
            END {
                if (nb == 0 || na == 0) { print "verify: benchmark output missing"; exit 1 }
                printf "%s overhead: %.2f ns/op vs baseline %.2f ns/op (minima of %d/%d, ratio %.3f, delta %.2f ns/op)\n", \
                    label, ma, mb, na, nb, ma / mb, ma - mb
                if (mode == "ratio" && ma / mb > bound) {
                    printf "verify: FAIL - %s overhead ratio %.3f exceeds %.2f\n", label, ma / mb, bound; exit 1
                }
                if (mode == "delta" && ma - mb > bound) {
                    printf "verify: FAIL - %s overhead delta %.2f ns/op exceeds %.2f ns/op\n", label, ma - mb, bound; exit 1
                }
                printf "%s overhead guard: OK\n", label
            }
        ' "$1"
    }

    # bench_samples OUT BENCH_RE PKG — VERIFY_OVERHEAD_RUNS (default 8)
    # interleaved base/candidate pairs. Enough rounds that both sides hit
    # a quiet scheduling window on a shared box, so their minima are
    # comparable.
    RUNS="${VERIFY_OVERHEAD_RUNS:-8}"
    bench_samples() {
        : > "$1"
        i=0
        while [ "$i" -lt "$RUNS" ]; do
            go test -run '^$' -bench "$2" -benchtime=1s -count=1 "$3" >> "$1"
            i=$((i + 1))
        done
    }

    # Meter attribution: the component-attributed meter vs the seed meter.
    # Absolute-delta bound: 2 ns per 4-charge iteration (0.5 ns/charge)
    # admits the one extra indexed add attribution inherently costs while
    # still catching any real regression on the charge path.
    bench_samples /tmp/meter_bench.txt \
        'BenchmarkMeterSeedBaseline|BenchmarkMeterAttributed$' ./internal/metric/
    overhead_guard /tmp/meter_bench.txt \
        '^BenchmarkMeterSeedBaseline' '^BenchmarkMeterAttributed' 'meter' delta 2.0

    # Lock table: Acquire/Release with the contention profiler off vs the
    # pre-profiler lock table (ratio bound — the baseline is ~1us/op, so
    # 5% is meaningful).
    bench_samples /tmp/lock_bench.txt \
        'BenchmarkAcquireSeedBaseline|BenchmarkAcquireProfilingOff' ./internal/engine/
    overhead_guard /tmp/lock_bench.txt \
        '^BenchmarkAcquireSeedBaseline' '^BenchmarkAcquireProfilingOff' 'lock table' ratio 1.05

    # Blame attribution off: AcquireAs with a session id but no blame tag
    # — the path every non-diagnosis run takes now that the lock table
    # carries holder tags — vs the same seed lock table.
    bench_samples /tmp/blame_bench.txt \
        'BenchmarkAcquireSeedBaseline|BenchmarkAcquireBlameOff' ./internal/engine/
    overhead_guard /tmp/blame_bench.txt \
        '^BenchmarkAcquireSeedBaseline' '^BenchmarkAcquireBlameOff' 'blame-off' ratio 1.05

    # Cache ledger off: the production Invalidate with no ledger attached
    # vs the pre-ledger invalidation cycle.
    bench_samples /tmp/ledger_bench.txt \
        'BenchmarkInvalidateSeedBaseline|BenchmarkInvalidateLedgerOff' ./internal/cache/
    overhead_guard /tmp/ledger_bench.txt \
        '^BenchmarkInvalidateSeedBaseline' '^BenchmarkInvalidateLedgerOff' 'ledger-off' ratio 1.05

    # Trace off: an untraced request/response frame round trip (encode +
    # decode) vs the pre-tracing struct layouts. The bound is looser
    # than the engine guards' 1.05 because the cost being admitted is
    # encoding/json's per-field omitempty checks on the added pointer
    # fields (~6% of an ~8us round trip) — the inherent price of the
    # fields existing at all. A real regression on the untraced path
    # (allocating trace state, eagerly building breakdowns) costs
    # multiples of that and still trips the guard. Byte-identity of the
    # untraced encoding is pinned separately by
    # TestTracingOffByteIdentity (tier 1).
    bench_samples /tmp/trace_bench.txt \
        'BenchmarkFrameSeedBaseline|BenchmarkFrameTraceOff' ./internal/wire/
    overhead_guard /tmp/trace_bench.txt \
        '^BenchmarkFrameSeedBaseline' '^BenchmarkFrameTraceOff' 'trace-off' ratio 1.12

    # MVCC off: the production page-read routing on a disk where MVCC was
    # never enabled vs the seed's direct live-page read. The only addition
    # is the nil check on the disk's version state (docs/MVCC.md); the
    # byte-identity side of the same guarantee is pinned by
    # TestMVCCOffMatchesSequential in tier 3.
    bench_samples /tmp/mvcc_bench.txt \
        'BenchmarkReadPageSeedBaseline|BenchmarkReadPageMVCCOff' ./internal/storage/
    overhead_guard /tmp/mvcc_bench.txt \
        '^BenchmarkReadPageSeedBaseline' '^BenchmarkReadPageMVCCOff' 'mvcc-off' ratio 1.05
fi

echo "== all tiers passed =="
