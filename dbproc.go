// Package dbproc reproduces Eric N. Hanson's "Processing Queries Against
// Database Procedures: A Performance Analysis" (UCB/ERL M87/68, SIGMOD
// 1988): the analytic cost model for the Always Recompute, Cache and
// Invalidate, and Update Cache (AVM/RVM) strategies, and an executable
// mini-DBMS — storage engine, B+-tree and hash indexes, compiled-plan
// executor, i-lock manager, algebraic and Rete view maintenance — that
// validates the model on the paper's workloads.
//
// This package is the library facade: the types most users need, re-
// exported from the internal packages.
//
//	p := dbproc.DefaultParams()            // the paper's Figure 2 values
//	p = p.WithUpdateProbability(0.1)
//	cost := dbproc.Cost(dbproc.Model1, dbproc.CacheInvalidate, p)
//	best := dbproc.BestStrategy(dbproc.Model1, p)
//
//	res := dbproc.Simulate(dbproc.SimConfig{   // run the real system
//	    Params: p, Model: dbproc.Model1,
//	    Strategy: best.Best, Seed: 42,
//	})
//	fmt.Println(res.MsPerQuery, "vs predicted", res.PredictedMs)
//
// The deeper layers are importable directly for building other systems on
// the substrates: dbproc/internal/rete is a general Rete view-maintenance
// network, dbproc/internal/btree and hashidx are standalone access
// methods, and dbproc/internal/experiments regenerates every figure of
// the paper.
package dbproc

import (
	"context"
	"io"

	"dbproc/internal/costmodel"
	"dbproc/internal/experiments"
	"dbproc/internal/sim"
)

// Params re-exports the cost-model parameter set (the paper's Figure 2).
type Params = costmodel.Params

// Model selects the procedure population: Model1 (P2 = 2-way joins) or
// Model2 (P2 = 3-way joins).
type Model = costmodel.Model

// Strategy identifies a query-processing strategy.
type Strategy = costmodel.Strategy

// Re-exported enumerations.
const (
	Model1 = costmodel.Model1
	Model2 = costmodel.Model2

	AlwaysRecompute = costmodel.AlwaysRecompute
	CacheInvalidate = costmodel.CacheInvalidate
	UpdateCacheAVM  = costmodel.UpdateCacheAVM
	UpdateCacheRVM  = costmodel.UpdateCacheRVM
)

// Strategies lists all four strategies in presentation order.
var Strategies = costmodel.Strategies

// DefaultParams returns the paper's default parameter values.
func DefaultParams() Params { return costmodel.Default() }

// Cost returns the analytic expected cost, in milliseconds, of one
// procedure access under the given strategy.
func Cost(m Model, s Strategy, p Params) float64 { return costmodel.Cost(m, s, p) }

// AllCosts evaluates every strategy at p.
func AllCosts(m Model, p Params) [costmodel.NumStrategies]float64 {
	return costmodel.AllCosts(m, p)
}

// Winner reports the cheapest strategy at a parameter point.
type Winner = costmodel.Winner

// BestStrategy evaluates all four strategies and returns the cheapest.
func BestStrategy(m Model, p Params) Winner { return costmodel.BestStrategy(m, p) }

// SimConfig configures one run of the executable system.
type SimConfig = sim.Config

// SimResult reports a run's measured and predicted cost.
type SimResult = sim.Result

// Simulate builds the paper's database and procedures and measures the
// given strategy on the paper's workload.
func Simulate(cfg SimConfig) SimResult { return sim.Run(cfg) }

// Experiment regenerates one of the paper's tables or figures.
type Experiment = experiments.Experiment

// ExperimentOptions controls experiment execution (simulated validation
// points, scaling).
type ExperimentOptions = experiments.Options

// Experiments returns every paper figure/table experiment in order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes the experiment with the given id and renders its
// tables to w, reporting whether the id exists. ctx cancels the
// experiment's simulation fan-out; opt.Workers bounds its parallelism.
func RunExperiment(ctx context.Context, id string, opt ExperimentOptions, w io.Writer) bool {
	e, ok := experiments.Get(id)
	if !ok {
		return false
	}
	for _, tb := range e.Run(ctx, opt) {
		tb.Render(w)
	}
	return true
}
