package metric

import "testing"

// seedMeter replicates the pre-attribution meter's hot path — one muted
// check and one field add per charge — as the baseline the attributed
// meter is held to (within an absolute ns-per-charge budget; see
// scripts/verify.sh tier 4).
type seedMeter struct {
	c     Counters
	muted bool
}

func (m *seedMeter) PageRead(n int) {
	if m.muted {
		return
	}
	m.c.PageReads += int64(n)
}

func (m *seedMeter) Screen(n int) {
	if m.muted {
		return
	}
	m.c.Screens += int64(n)
}

func (m *seedMeter) DeltaOp(n int) {
	if m.muted {
		return
	}
	m.c.DeltaOps += int64(n)
}

// BenchmarkMeterSeedBaseline measures the seed meter's charge mix: the
// denominator of the obs overhead guard.
func BenchmarkMeterSeedBaseline(b *testing.B) {
	m := &seedMeter{}
	for i := 0; i < b.N; i++ {
		m.Screen(1)
		m.PageRead(1)
		m.DeltaOp(1)
		m.Screen(1)
	}
	if m.c.Screens == 0 {
		b.Fatal("no events recorded")
	}
}

// BenchmarkMeterAttributed measures the same charge mix on the
// component-attributed meter with tracing disabled — the production hot
// path. The guard in scripts/verify.sh asserts it stays within an
// absolute per-charge budget of BenchmarkMeterSeedBaseline.
func BenchmarkMeterAttributed(b *testing.B) {
	m := NewMeter(DefaultCosts())
	m.SetComponent(CompBTree)
	for i := 0; i < b.N; i++ {
		m.Screen(1)
		m.PageRead(1)
		m.DeltaOp(1)
		m.Screen(1)
	}
	if m.Snapshot().Screens == 0 {
		b.Fatal("no events recorded")
	}
}

// BenchmarkMeterAttributedScoped adds a scope switch per iteration, the
// worst realistic case (every charge under a fresh component scope).
func BenchmarkMeterAttributedScoped(b *testing.B) {
	m := NewMeter(DefaultCosts())
	for i := 0; i < b.N; i++ {
		prev := m.SetComponent(CompHashIdx)
		m.Screen(1)
		m.PageRead(1)
		m.DeltaOp(1)
		m.Screen(1)
		m.SetComponent(prev)
	}
	if m.Snapshot().Screens == 0 {
		b.Fatal("no events recorded")
	}
}
