package metric

import (
	"math/rand"
	"sync"
	"testing"
)

// chargeRandom records one random event on m under a random component and
// returns nothing; the caller measures via Breakdown deltas.
func chargeRandom(m *Meter, r *rand.Rand) {
	prev := m.SetComponent(Component(r.Intn(int(NumComponents))))
	switch r.Intn(5) {
	case 0:
		m.PageRead(1 + r.Intn(3))
	case 1:
		m.PageWrite(1 + r.Intn(3))
	case 2:
		m.Screen(1 + r.Intn(10))
	case 3:
		m.DeltaOp(1 + r.Intn(5))
	case 4:
		m.Invalidation(1)
	}
	m.SetComponent(prev)
}

// TestAggregateConcurrentMergeExact is the concurrent extension of the
// sums-exactly invariant: N sessions charge goroutine-local meters and
// merge per-operation Breakdown deltas into one shared Aggregate; when
// they quiesce, the aggregate must equal the sum of the session meters
// exactly, per component.
func TestAggregateConcurrentMergeExact(t *testing.T) {
	const sessions = 8
	const opsPerSession = 200

	agg := NewAggregate()
	meters := make([]*Meter, sessions)
	for s := range meters {
		meters[s] = NewMeter(DefaultCosts())
	}

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			m := meters[s]
			r := rand.New(rand.NewSource(int64(1000 + s)))
			for op := 0; op < opsPerSession; op++ {
				before := m.Breakdown()
				for i, n := 0, 1+r.Intn(6); i < n; i++ {
					chargeRandom(m, r)
				}
				agg.AddBreakdown(m.Breakdown().Sub(before))
			}
		}(s)
	}
	wg.Wait()

	var want Breakdown
	for _, m := range meters {
		mb := m.Breakdown()
		for c := range want {
			want[c] = want[c].Add(mb[c])
		}
	}
	got := agg.Breakdown()
	if got != want {
		t.Fatalf("aggregate diverges from session-meter sum:\n got  %v\n want %v", got, want)
	}
	if got.Total() != agg.Total() {
		t.Fatalf("Total() %v inconsistent with Breakdown().Total() %v", agg.Total(), got.Total())
	}
}

// TestAggregateScrapeMonotone reads the aggregate while writers merge and
// checks every individual counter only ever grows — the property the
// telemetry scrape path depends on now that it reads the aggregate
// unconditionally instead of TryLock-ing a world latch.
func TestAggregateScrapeMonotone(t *testing.T) {
	agg := NewAggregate()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			m := NewMeter(DefaultCosts())
			r := rand.New(rand.NewSource(int64(s)))
			for op := 0; op < 500; op++ {
				before := m.Breakdown()
				chargeRandom(m, r)
				agg.AddBreakdown(m.Breakdown().Sub(before))
			}
		}(s)
	}
	go func() { wg.Wait(); close(done) }()

	var prev Counters
	for {
		c := agg.Total()
		if c.PageReads < prev.PageReads || c.PageWrites < prev.PageWrites ||
			c.Screens < prev.Screens || c.DeltaOps < prev.DeltaOps ||
			c.Invalidations < prev.Invalidations {
			t.Fatalf("scrape went backwards: %v after %v", c, prev)
		}
		prev = c
		select {
		case <-done:
			return
		default:
		}
	}
}
