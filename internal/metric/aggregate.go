package metric

import "sync/atomic"

// atomicCounters mirrors Counters with independently-atomic fields. Each
// field is monotone under concurrent merges, so a reader that loads them
// one by one sees a value no smaller than any previously observed one —
// the monotonicity a live scrape needs.
type atomicCounters struct {
	pageReads     atomic.Int64
	pageWrites    atomic.Int64
	screens       atomic.Int64
	deltaOps      atomic.Int64
	invalidations atomic.Int64
}

func (a *atomicCounters) add(c Counters) {
	a.pageReads.Add(c.PageReads)
	a.pageWrites.Add(c.PageWrites)
	a.screens.Add(c.Screens)
	a.deltaOps.Add(c.DeltaOps)
	a.invalidations.Add(c.Invalidations)
}

func (a *atomicCounters) load() Counters {
	return Counters{
		PageReads:     a.pageReads.Load(),
		PageWrites:    a.pageWrites.Load(),
		Screens:       a.screens.Load(),
		DeltaOps:      a.deltaOps.Load(),
		Invalidations: a.invalidations.Load(),
	}
}

// Aggregate is a concurrency-safe, component-attributed counter
// accumulator. Sessions charge their own goroutine-local Meters and merge
// each committed operation's Breakdown delta here; readers (telemetry
// scrapes, end-of-run reporting) may snapshot at any time without
// stalling a writer.
//
// Merging whole-operation deltas preserves the package invariant that
// per-component counters sum exactly to the aggregates: every merged
// Breakdown carries that property, and addition preserves it. A
// concurrent snapshot is not guaranteed to be a point-in-time cut across
// components, but each individual counter is monotone and, once writers
// quiesce, Breakdown().Total() equals the sum of all merged deltas
// exactly.
type Aggregate struct {
	by [NumComponents]atomicCounters
}

// NewAggregate returns a zeroed aggregate.
func NewAggregate() *Aggregate { return &Aggregate{} }

// AddBreakdown merges one per-component delta into the aggregate.
func (a *Aggregate) AddBreakdown(b Breakdown) {
	for c := range b {
		a.by[c].add(b[c])
	}
}

// Breakdown snapshots the per-component counters.
func (a *Aggregate) Breakdown() Breakdown {
	var b Breakdown
	for c := range a.by {
		b[c] = a.by[c].load()
	}
	return b
}

// Total snapshots the aggregate counters (the sum over components).
func (a *Aggregate) Total() Counters { return a.Breakdown().Total() }
