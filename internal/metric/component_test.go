package metric

import "testing"

func TestComponentNames(t *testing.T) {
	tests := []struct {
		comp Component
		want string
	}{
		{CompPager, "pager"},
		{CompBTree, "btree"},
		{CompHashIdx, "hashidx"},
		{CompCache, "cache"},
		{CompRete, "rete"},
		{CompAVM, "avm"},
		{CompProc, "proc/ci"},
		{CompVLog, "vlog"},
		{CompQuery, "query"},
		{NumComponents, "unknown"},
		{Component(200), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.comp.String(); got != tt.want {
			t.Errorf("Component(%d).String() = %q, want %q", tt.comp, got, tt.want)
		}
	}
	if got := len(Components()); got != int(NumComponents) {
		t.Errorf("Components() has %d entries, want %d", got, NumComponents)
	}
	seen := map[string]bool{}
	for _, c := range Components() {
		name := c.String()
		if name == "unknown" || seen[name] {
			t.Errorf("component %d has bad or duplicate label %q", c, name)
		}
		seen[name] = true
	}
}

func TestMeterMuted(t *testing.T) {
	tests := []struct {
		name   string
		charge func(m *Meter)
		read   func(c Counters) int64
	}{
		{"PageRead", func(m *Meter) { m.PageRead(2) }, func(c Counters) int64 { return c.PageReads }},
		{"PageWrite", func(m *Meter) { m.PageWrite(2) }, func(c Counters) int64 { return c.PageWrites }},
		{"Screen", func(m *Meter) { m.Screen(2) }, func(c Counters) int64 { return c.Screens }},
		{"DeltaOp", func(m *Meter) { m.DeltaOp(2) }, func(c Counters) int64 { return c.DeltaOps }},
		{"Invalidation", func(m *Meter) { m.Invalidation(2) }, func(c Counters) int64 { return c.Invalidations }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NewMeter(DefaultCosts())
			if prev := m.SetMuted(true); prev {
				t.Fatal("fresh meter reports muted")
			}
			tt.charge(m)
			if got := tt.read(m.Snapshot()); got != 0 {
				t.Fatalf("muted charge recorded %d events", got)
			}
			if prev := m.SetMuted(false); !prev {
				t.Fatal("SetMuted(false) did not report previous muted state")
			}
			tt.charge(m)
			if got := tt.read(m.Snapshot()); got != 2 {
				t.Fatalf("unmuted charge recorded %d events, want 2", got)
			}
			// Muted charges must not leak into any component either.
			m.SetMuted(true)
			tt.charge(m)
			if got := tt.read(m.Breakdown().Total()); got != 2 {
				t.Fatalf("muted charge leaked into breakdown: %d events, want 2", got)
			}
		})
	}
}

func TestMeterAttribution(t *testing.T) {
	m := NewMeter(DefaultCosts())
	if m.Component() != CompPager {
		t.Fatalf("fresh meter component = %v, want pager", m.Component())
	}
	m.PageRead(1) // pager (unscoped)
	prev := m.SetComponent(CompBTree)
	if prev != CompPager {
		t.Fatalf("SetComponent returned %v, want pager", prev)
	}
	m.PageRead(3)
	m.Screen(5)
	inner := m.SetComponent(CompHashIdx) // nested scope
	if inner != CompBTree {
		t.Fatalf("nested SetComponent returned %v, want btree", inner)
	}
	m.PageRead(7)
	m.SetComponent(inner)
	m.Screen(2)
	m.SetComponent(prev)
	m.Invalidation(1) // back to pager

	bd := m.Breakdown()
	if got := bd[CompBTree]; got.PageReads != 3 || got.Screens != 7 {
		t.Errorf("btree counters = %v, want reads=3 screens=7", got)
	}
	if got := bd[CompHashIdx]; got.PageReads != 7 {
		t.Errorf("hashidx counters = %v, want reads=7", got)
	}
	if got := bd[CompPager]; got.PageReads != 1 || got.Invalidations != 1 {
		t.Errorf("pager counters = %v, want reads=1 invals=1", got)
	}
	if total, snap := bd.Total(), m.Snapshot(); total != snap {
		t.Errorf("Breakdown().Total() = %v != Snapshot() = %v", total, snap)
	}
	if snap := m.Snapshot(); snap.PageReads != 11 || snap.Screens != 7 || snap.Invalidations != 1 {
		t.Errorf("aggregate = %v, want reads=11 screens=7 invals=1", snap)
	}
}

func TestMeterSinceWindowAccounting(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.PageRead(4)
	m.SetComponent(CompRete)
	m.Screen(3)

	snap := m.Snapshot()
	bdSnap := m.Breakdown()

	m.Screen(2)
	m.SetComponent(CompAVM)
	m.DeltaOp(6)
	m.SetComponent(CompPager)
	m.PageWrite(1)

	win := m.Since(snap)
	want := Counters{PageWrites: 1, Screens: 2, DeltaOps: 6}
	if win != want {
		t.Errorf("Since window = %v, want %v", win, want)
	}
	bdWin := m.Breakdown().Sub(bdSnap)
	if bdWin[CompRete].Screens != 2 || bdWin[CompAVM].DeltaOps != 6 || bdWin[CompPager].PageWrites != 1 {
		t.Errorf("breakdown window wrong: %+v", bdWin)
	}
	if bdWin.Total() != win {
		t.Errorf("breakdown window total %v != counter window %v", bdWin.Total(), win)
	}
}

func TestMeterResetClearsAllComponents(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.SetComponent(CompCache)
	m.PageRead(2)
	m.Reset()
	if m.Snapshot() != (Counters{}) {
		t.Fatal("Reset left aggregate counters")
	}
	if m.Breakdown() != (Breakdown{}) {
		t.Fatal("Reset left per-component counters")
	}
	if m.Component() != CompCache {
		t.Fatal("Reset changed the current component")
	}
}
