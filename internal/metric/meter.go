// Package metric accumulates the simulated cost events of the executable
// system and converts them to milliseconds with the paper's cost constants:
// C1 per predicate screen, C2 per disk page read or write, C3 per delta-set
// tuple operation, and C_inval per cached-value invalidation.
//
// The simulator compares these measured milliseconds against the analytic
// predictions of package costmodel.
package metric

import "fmt"

// Costs holds the per-event cost constants in milliseconds.
type Costs struct {
	// C1 is the CPU cost to screen one record against a predicate.
	C1 float64
	// C2 is the cost of one disk page read or write.
	C2 float64
	// C3 is the cost per tuple to maintain an AVM delta (A_net/D_net) set.
	C3 float64
	// CInval is the cost to record one cache invalidation.
	CInval float64
}

// DefaultCosts returns the paper's Figure 2 constants (C1=1ms, C2=30ms,
// C3=1ms, C_inval=0).
func DefaultCosts() Costs {
	return Costs{C1: 1, C2: 30, C3: 1, CInval: 0}
}

// Counters is a value snapshot of accumulated event counts.
type Counters struct {
	// PageReads and PageWrites count disk page transfers (C2 each).
	PageReads  int64
	PageWrites int64
	// Screens counts predicate evaluations (C1 each).
	Screens int64
	// DeltaOps counts delta-set tuple operations (C3 each).
	DeltaOps int64
	// Invalidations counts cache invalidation records (CInval each).
	Invalidations int64
}

// Add returns the event-wise sum of two counter snapshots.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		PageReads:     c.PageReads + o.PageReads,
		PageWrites:    c.PageWrites + o.PageWrites,
		Screens:       c.Screens + o.Screens,
		DeltaOps:      c.DeltaOps + o.DeltaOps,
		Invalidations: c.Invalidations + o.Invalidations,
	}
}

// Sub returns the event-wise difference c − o, used to cost a window of
// work between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		PageReads:     c.PageReads - o.PageReads,
		PageWrites:    c.PageWrites - o.PageWrites,
		Screens:       c.Screens - o.Screens,
		DeltaOps:      c.DeltaOps - o.DeltaOps,
		Invalidations: c.Invalidations - o.Invalidations,
	}
}

// Milliseconds prices the counters with the given constants.
func (c Counters) Milliseconds(costs Costs) float64 {
	return costs.C2*float64(c.PageReads+c.PageWrites) +
		costs.C1*float64(c.Screens) +
		costs.C3*float64(c.DeltaOps) +
		costs.CInval*float64(c.Invalidations)
}

// String formats the counters compactly for logs and test failures.
func (c Counters) String() string {
	return fmt.Sprintf("reads=%d writes=%d screens=%d deltaOps=%d invals=%d",
		c.PageReads, c.PageWrites, c.Screens, c.DeltaOps, c.Invalidations)
}

// Meter accumulates cost events. It is not safe for concurrent use; the
// simulated workload is a serial stream of operations, as in the paper.
//
// Events are attributed to the meter's current Component (see
// SetComponent); the aggregate counters are the sum over components, so
// per-component breakdowns always reconcile exactly with the totals.
type Meter struct {
	costs Costs
	by    [NumComponents]Counters
	// cur caches &by[comp] so charging is a single pointer-indirect add —
	// the same hot-path shape as an unattributed meter.
	cur   *Counters
	comp  Component
	muted bool
}

// SetMuted suspends event recording entirely (setup work that the cost
// model excludes); it returns the previous state. Storage-layer I/O is
// usually muted through the pager's charging flag instead — use this when
// CPU events (screens, delta ops) must also be excluded.
func (m *Meter) SetMuted(muted bool) bool {
	prev := m.muted
	m.muted = muted
	return prev
}

// NewMeter returns a meter pricing events with the given constants.
func NewMeter(costs Costs) *Meter {
	m := &Meter{costs: costs}
	m.cur = &m.by[CompPager]
	return m
}

// Costs returns the meter's cost constants.
func (m *Meter) Costs() Costs { return m.costs }

// SetComponent makes c the component subsequent events are attributed to
// and returns the previous one, so callers can scope attribution:
//
//	prev := m.SetComponent(metric.CompBTree)
//	... do B-tree work ...
//	m.SetComponent(prev)
//
// Scopes nest: an inner layer's scope overrides the outer one for its
// duration. The zero component (CompPager) is current initially.
func (m *Meter) SetComponent(c Component) Component {
	prev := m.comp
	m.comp = c
	m.cur = &m.by[c]
	return prev
}

// Component returns the component events are currently attributed to.
func (m *Meter) Component() Component { return m.comp }

// PageRead records n disk page reads.
func (m *Meter) PageRead(n int) {
	if m.muted {
		return
	}
	m.cur.PageReads += int64(n)
}

// PageWrite records n disk page writes.
func (m *Meter) PageWrite(n int) {
	if m.muted {
		return
	}
	m.cur.PageWrites += int64(n)
}

// Screen records n predicate screenings.
func (m *Meter) Screen(n int) {
	if m.muted {
		return
	}
	m.cur.Screens += int64(n)
}

// DeltaOp records n delta-set tuple operations.
func (m *Meter) DeltaOp(n int) {
	if m.muted {
		return
	}
	m.cur.DeltaOps += int64(n)
}

// Invalidation records n cache-invalidation writes.
func (m *Meter) Invalidation(n int) {
	if m.muted {
		return
	}
	m.cur.Invalidations += int64(n)
}

// Snapshot returns the current aggregate counter values (the sum over
// components).
func (m *Meter) Snapshot() Counters { return Breakdown(m.by).Total() }

// Breakdown returns the per-component counter values. Its Total equals
// Snapshot exactly.
func (m *Meter) Breakdown() Breakdown { return m.by }

// Since returns the counters accumulated after the given snapshot.
func (m *Meter) Since(s Counters) Counters { return m.Snapshot().Sub(s) }

// Milliseconds returns the total simulated cost so far.
func (m *Meter) Milliseconds() float64 { return m.Snapshot().Milliseconds(m.costs) }

// Reset zeroes the counters (all components), keeping the cost constants
// and the current component.
func (m *Meter) Reset() { m.by = [NumComponents]Counters{} }
