// Package metric accumulates the simulated cost events of the executable
// system and converts them to milliseconds with the paper's cost constants:
// C1 per predicate screen, C2 per disk page read or write, C3 per delta-set
// tuple operation, and C_inval per cached-value invalidation.
//
// The simulator compares these measured milliseconds against the analytic
// predictions of package costmodel.
package metric

import "fmt"

// Costs holds the per-event cost constants in milliseconds.
type Costs struct {
	// C1 is the CPU cost to screen one record against a predicate.
	C1 float64
	// C2 is the cost of one disk page read or write.
	C2 float64
	// C3 is the cost per tuple to maintain an AVM delta (A_net/D_net) set.
	C3 float64
	// CInval is the cost to record one cache invalidation.
	CInval float64
}

// DefaultCosts returns the paper's Figure 2 constants (C1=1ms, C2=30ms,
// C3=1ms, C_inval=0).
func DefaultCosts() Costs {
	return Costs{C1: 1, C2: 30, C3: 1, CInval: 0}
}

// Counters is a value snapshot of accumulated event counts.
type Counters struct {
	// PageReads and PageWrites count disk page transfers (C2 each).
	PageReads  int64
	PageWrites int64
	// Screens counts predicate evaluations (C1 each).
	Screens int64
	// DeltaOps counts delta-set tuple operations (C3 each).
	DeltaOps int64
	// Invalidations counts cache invalidation records (CInval each).
	Invalidations int64
}

// Add returns the event-wise sum of two counter snapshots.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		PageReads:     c.PageReads + o.PageReads,
		PageWrites:    c.PageWrites + o.PageWrites,
		Screens:       c.Screens + o.Screens,
		DeltaOps:      c.DeltaOps + o.DeltaOps,
		Invalidations: c.Invalidations + o.Invalidations,
	}
}

// Sub returns the event-wise difference c − o, used to cost a window of
// work between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		PageReads:     c.PageReads - o.PageReads,
		PageWrites:    c.PageWrites - o.PageWrites,
		Screens:       c.Screens - o.Screens,
		DeltaOps:      c.DeltaOps - o.DeltaOps,
		Invalidations: c.Invalidations - o.Invalidations,
	}
}

// Milliseconds prices the counters with the given constants.
func (c Counters) Milliseconds(costs Costs) float64 {
	return costs.C2*float64(c.PageReads+c.PageWrites) +
		costs.C1*float64(c.Screens) +
		costs.C3*float64(c.DeltaOps) +
		costs.CInval*float64(c.Invalidations)
}

// String formats the counters compactly for logs and test failures.
func (c Counters) String() string {
	return fmt.Sprintf("reads=%d writes=%d screens=%d deltaOps=%d invals=%d",
		c.PageReads, c.PageWrites, c.Screens, c.DeltaOps, c.Invalidations)
}

// Meter accumulates cost events. It is not safe for concurrent use; the
// simulated workload is a serial stream of operations, as in the paper.
type Meter struct {
	costs Costs
	c     Counters
	muted bool
}

// SetMuted suspends event recording entirely (setup work that the cost
// model excludes); it returns the previous state. Storage-layer I/O is
// usually muted through the pager's charging flag instead — use this when
// CPU events (screens, delta ops) must also be excluded.
func (m *Meter) SetMuted(muted bool) bool {
	prev := m.muted
	m.muted = muted
	return prev
}

// NewMeter returns a meter pricing events with the given constants.
func NewMeter(costs Costs) *Meter {
	return &Meter{costs: costs}
}

// Costs returns the meter's cost constants.
func (m *Meter) Costs() Costs { return m.costs }

// PageRead records n disk page reads.
func (m *Meter) PageRead(n int) {
	if m.muted {
		return
	}
	m.c.PageReads += int64(n)
}

// PageWrite records n disk page writes.
func (m *Meter) PageWrite(n int) {
	if m.muted {
		return
	}
	m.c.PageWrites += int64(n)
}

// Screen records n predicate screenings.
func (m *Meter) Screen(n int) {
	if m.muted {
		return
	}
	m.c.Screens += int64(n)
}

// DeltaOp records n delta-set tuple operations.
func (m *Meter) DeltaOp(n int) {
	if m.muted {
		return
	}
	m.c.DeltaOps += int64(n)
}

// Invalidation records n cache-invalidation writes.
func (m *Meter) Invalidation(n int) {
	if m.muted {
		return
	}
	m.c.Invalidations += int64(n)
}

// Snapshot returns the current counter values.
func (m *Meter) Snapshot() Counters { return m.c }

// Since returns the counters accumulated after the given snapshot.
func (m *Meter) Since(s Counters) Counters { return m.c.Sub(s) }

// Milliseconds returns the total simulated cost so far.
func (m *Meter) Milliseconds() float64 { return m.c.Milliseconds(m.costs) }

// Reset zeroes the counters, keeping the cost constants.
func (m *Meter) Reset() { m.c = Counters{} }
