package metric

// Component labels the subsystem a cost event is attributed to, so a run
// can report not just how many milliseconds were spent but which layer
// spent them. The executable system sets the meter's current component at
// layer boundaries (a B-tree scan, a hash probe, a Rete activation, ...);
// every event charged while a component is current is attributed to it.
//
// Attribution follows the layer that performs the work: a B-tree range
// scan's page reads and per-tuple screens are "btree", a hash-probe's
// bucket reads are "hashidx", cached-result reads and refreshes are
// "cache", Rete token screening and memory-node I/O are "rete", AVM
// routing and delta merging are "avm", strategy bookkeeping (invalidation
// records) is "proc/ci", validity-log I/O is "vlog", and plan-level
// predicate screens (Filter nodes) are "query". Events charged with no
// component set fall into "pager", the storage substrate.
type Component uint8

// Components, in rendering order. CompPager is the zero value: cost
// charged outside any component scope.
const (
	CompPager Component = iota
	CompBTree
	CompHashIdx
	CompCache
	CompRete
	CompAVM
	CompProc
	CompVLog
	CompQuery

	// NumComponents bounds the per-component counter array.
	NumComponents
)

var componentNames = [NumComponents]string{
	CompPager:   "pager",
	CompBTree:   "btree",
	CompHashIdx: "hashidx",
	CompCache:   "cache",
	CompRete:    "rete",
	CompAVM:     "avm",
	CompProc:    "proc/ci",
	CompVLog:    "vlog",
	CompQuery:   "query",
}

// String returns the component's label.
func (c Component) String() string {
	if c < NumComponents {
		return componentNames[c]
	}
	return "unknown"
}

// Components returns every component in rendering order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Breakdown is a snapshot of the per-component counters. Its component-wise
// sum is exactly the meter's aggregate Counters: the meter stores only the
// per-component values and derives the aggregate by summation, so the
// breakdown can never drift from the totals.
type Breakdown [NumComponents]Counters

// Total returns the component-wise sum — the aggregate Counters.
func (b Breakdown) Total() Counters {
	var t Counters
	for i := range b {
		t = t.Add(b[i])
	}
	return t
}

// Sub returns the component-wise difference b − o, for costing a window of
// work between two breakdown snapshots.
func (b Breakdown) Sub(o Breakdown) Breakdown {
	var out Breakdown
	for i := range b {
		out[i] = b[i].Sub(o[i])
	}
	return out
}
