package metric

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMeterAccumulatesAndPrices(t *testing.T) {
	m := NewMeter(Costs{C1: 1, C2: 30, C3: 2, CInval: 5})
	m.PageRead(3)
	m.PageWrite(2)
	m.Screen(10)
	m.DeltaOp(4)
	m.Invalidation(6)
	want := 30.0*(3+2) + 1*10 + 2*4 + 5*6
	if got := m.Milliseconds(); got != want {
		t.Fatalf("Milliseconds = %v, want %v", got, want)
	}
	c := m.Snapshot()
	if c.PageReads != 3 || c.PageWrites != 2 || c.Screens != 10 || c.DeltaOps != 4 || c.Invalidations != 6 {
		t.Fatalf("snapshot %+v wrong", c)
	}
}

func TestMeterSinceAndReset(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.PageRead(5)
	snap := m.Snapshot()
	m.PageRead(2)
	m.Screen(7)
	d := m.Since(snap)
	if d.PageReads != 2 || d.Screens != 7 {
		t.Fatalf("Since = %+v, want reads=2 screens=7", d)
	}
	m.Reset()
	if m.Milliseconds() != 0 {
		t.Fatal("Reset did not zero the meter")
	}
	if m.Costs() != DefaultCosts() {
		t.Fatal("Reset changed cost constants")
	}
}

func TestDefaultCostsMatchPaper(t *testing.T) {
	c := DefaultCosts()
	if c.C1 != 1 || c.C2 != 30 || c.C3 != 1 || c.CInval != 0 {
		t.Fatalf("DefaultCosts = %+v, want paper Figure 2 constants", c)
	}
}

func TestCountersAddSubRoundTrip(t *testing.T) {
	f := func(a, b Counters) bool {
		return a.Add(b).Sub(b) == a && a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersString(t *testing.T) {
	s := Counters{PageReads: 1, PageWrites: 2, Screens: 3, DeltaOps: 4, Invalidations: 5}.String()
	for _, want := range []string{"reads=1", "writes=2", "screens=3", "deltaOps=4", "invals=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestMillisecondsLinearInCounts(t *testing.T) {
	costs := Costs{C1: 1, C2: 30, C3: 1, CInval: 2}
	f := func(r1, w1, s1, r2, w2, s2 uint16) bool {
		a := Counters{PageReads: int64(r1), PageWrites: int64(w1), Screens: int64(s1)}
		b := Counters{PageReads: int64(r2), PageWrites: int64(w2), Invalidations: int64(s2)}
		sum := a.Add(b).Milliseconds(costs)
		parts := a.Milliseconds(costs) + b.Milliseconds(costs)
		diff := sum - parts
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
