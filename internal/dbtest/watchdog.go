package dbtest

import (
	"runtime"
	"testing"
	"time"
)

// Arm starts a timer that invokes fire once if the returned stop function
// is not called within d. It is the watchdog's mechanism without the
// test-failure policy, exported so the firing path itself is testable.
// stop disarms the timer and waits for the timer goroutine to exit; it is
// safe to call after the timer has fired.
func Arm(d time.Duration, fire func()) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-done:
		case <-time.After(d):
			fire()
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// Watchdog fails the test with a full goroutine dump if it has not
// finished within d — the deadlock alarm for concurrency tests, where a
// lock-ordering bug otherwise surfaces as a silent package-level test
// timeout with no indication of which locks are held. The returned stop
// function disarms it; callers typically defer it:
//
//	defer dbtest.Watchdog(t, 30*time.Second)()
//
// Optional hooks run, in order, after the watchdog fires but before the
// goroutine dump — the place to snapshot diagnostic state (e.g. dump a
// telemetry flight recorder) while the stalled goroutines still hold
// whatever they are stuck on. A panicking hook loses the goroutine dump,
// so hooks should be best-effort.
func Watchdog(t *testing.T, d time.Duration, hooks ...func()) (stop func()) {
	t.Helper()
	return Arm(d, func() {
		for _, h := range hooks {
			h()
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("dbtest: watchdog fired after %v — likely deadlock; goroutines:\n%s", d, buf[:n])
		panic("dbtest: watchdog timeout")
	})
}
