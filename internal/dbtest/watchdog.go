package dbtest

import (
	"runtime"
	"testing"
	"time"
)

// Watchdog fails the test with a full goroutine dump if it has not
// finished within d — the deadlock alarm for concurrency tests, where a
// lock-ordering bug otherwise surfaces as a silent package-level test
// timeout with no indication of which locks are held. The returned stop
// function disarms it; callers typically defer it:
//
//	defer dbtest.Watchdog(t, 30*time.Second)()
func Watchdog(t *testing.T, d time.Duration) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	fired := make(chan struct{})
	go func() {
		defer close(fired)
		select {
		case <-done:
		case <-time.After(d):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("dbtest: watchdog fired after %v — likely deadlock; goroutines:\n%s", d, buf[:n])
			panic("dbtest: watchdog timeout")
		}
	}()
	return func() {
		close(done)
		<-fired
	}
}
