package dbtest

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestArmFiresOnStalledGoroutine stalls a goroutine on purpose and checks
// the armed timer fires its hook — the dump path a deadlocked concurrency
// test relies on.
func TestArmFiresOnStalledGoroutine(t *testing.T) {
	stall := make(chan struct{})
	stalled := make(chan struct{})
	go func() {
		close(stalled)
		<-stall // deliberately stuck until the test releases it
	}()
	<-stalled

	fired := make(chan struct{})
	stop := Arm(10*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("armed timer did not fire against a stalled goroutine")
	}
	stop() // disarming after the fact must not hang or panic
	close(stall)
}

// TestArmDisarmedDoesNotFire checks stop beats the timer and waits for
// the watchdog goroutine to exit.
func TestArmDisarmedDoesNotFire(t *testing.T) {
	var fired atomic.Bool
	stop := Arm(time.Hour, func() { fired.Store(true) })
	stop()
	if fired.Load() {
		t.Fatal("disarmed timer fired")
	}
}

// TestWatchdogHooksNotRunWhenDisarmed checks the happy path: a test that
// finishes in time never runs its dump hooks.
func TestWatchdogHooksNotRunWhenDisarmed(t *testing.T) {
	var hooked atomic.Bool
	stop := Watchdog(t, time.Hour, func() { hooked.Store(true) })
	stop()
	if hooked.Load() {
		t.Fatal("hook ran although the watchdog was disarmed in time")
	}
}

// TestWatchdogHookOrder fires a watchdog-style hook chain via Arm and
// checks hooks run in registration order before the firing completes.
func TestWatchdogHookOrder(t *testing.T) {
	hooks := []func(){}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		hooks = append(hooks, func() { order = append(order, i) })
	}
	done := make(chan struct{})
	stop := Arm(time.Millisecond, func() {
		for _, h := range hooks {
			h()
		}
		close(done)
	})
	<-done
	stop()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("hooks ran out of order: %v", order)
	}
}
