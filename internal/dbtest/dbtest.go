// Package dbtest builds small deterministic databases shaped like the
// paper's R1/R2/R3 for tests of the query, maintenance and procedure
// layers. Production setup lives in package sim; this is a miniature with
// tiny pages so page-level effects appear at test scale.
package dbtest

import (
	"dbproc/internal/metric"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// World is a small three-relation database.
//
// R1 (B-tree clustered on skey): tid, skey, a — skey = tid, a = tid % |R2|.
// R2 (hash on b): tid, b, c, p2 — b unique = tid, c = tid % |R3|, p2 = tid % 10.
// R3 (hash on d): tid, d — d unique = tid.
//
// So every R1 tuple joins exactly one R2 tuple (R1.a = R2.b) and every R2
// tuple joins exactly one R3 tuple (R2.c = R3.d), as the paper's model
// assumes.
type World struct {
	Meter *metric.Meter
	Pager *storage.Pager
	Cat   *relation.Catalog
	R1    *relation.Relation
	R2    *relation.Relation
	R3    *relation.Relation

	NextTID int64 // next unused R1 tuple id
}

// Config sizes the world.
type Config struct {
	PageSize   int // bytes per page (default 256)
	TupleWidth int // bytes per tuple (default 64)
	N1         int // R1 tuples (default 200)
	N2         int // R2 tuples (default 40)
	N3         int // R3 tuples (default 20)
}

func (c *Config) fill() {
	if c.PageSize == 0 {
		c.PageSize = 256
	}
	if c.TupleWidth == 0 {
		c.TupleWidth = 64
	}
	if c.N1 == 0 {
		c.N1 = 200
	}
	if c.N2 == 0 {
		c.N2 = 40
	}
	if c.N3 == 0 {
		c.N3 = 20
	}
}

// R1Schema returns the schema used for R1 at the given width.
func R1Schema(width int) *tuple.Schema {
	return tuple.NewSchema("r1", width,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "skey"}, tuple.Field{Name: "a"})
}

// R2Schema returns the schema used for R2 at the given width.
func R2Schema(width int) *tuple.Schema {
	return tuple.NewSchema("r2", width,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "b"},
		tuple.Field{Name: "c"}, tuple.Field{Name: "p2"})
}

// R3Schema returns the schema used for R3 at the given width.
func R3Schema(width int) *tuple.Schema {
	return tuple.NewSchema("r3", width,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "d"})
}

// NewWorld builds and loads the world. Loading is uncharged; the meter is
// zero and charging enabled on return.
func NewWorld(cfg Config) *World {
	cfg.fill()
	m := metric.NewMeter(metric.DefaultCosts())
	pager := storage.NewPager(storage.NewDisk(cfg.PageSize), m)
	pager.SetCharging(false)

	s1 := R1Schema(cfg.TupleWidth)
	tuples := make([][]byte, cfg.N1)
	for i := range tuples {
		t := s1.New()
		s1.SetByName(t, "tid", int64(i))
		s1.SetByName(t, "skey", int64(i))
		s1.SetByName(t, "a", int64(i%cfg.N2))
		tuples[i] = t
	}
	r1 := relation.BulkLoadBTree(pager, s1, "skey", "tid", 16, tuples)

	s2 := R2Schema(cfg.TupleWidth)
	perPage := cfg.PageSize / cfg.TupleWidth
	buckets := (cfg.N2 + perPage - 1) / perPage
	r2 := relation.NewHash(pager.Disk(), s2, "b", buckets)
	for j := 0; j < cfg.N2; j++ {
		t := s2.New()
		s2.SetByName(t, "tid", int64(j))
		s2.SetByName(t, "b", int64(j))
		s2.SetByName(t, "c", int64(j%cfg.N3))
		s2.SetByName(t, "p2", int64(j%10))
		r2.Insert(pager, t)
	}

	s3 := R3Schema(cfg.TupleWidth)
	buckets3 := (cfg.N3 + perPage - 1) / perPage
	r3 := relation.NewHash(pager.Disk(), s3, "d", buckets3)
	for j := 0; j < cfg.N3; j++ {
		t := s3.New()
		s3.SetByName(t, "tid", int64(j))
		s3.SetByName(t, "d", int64(j))
		r3.Insert(pager, t)
	}

	cat := relation.NewCatalog()
	cat.Define(r1)
	cat.Define(r2)
	cat.Define(r3)

	pager.BeginOp()
	pager.SetCharging(true)
	m.Reset()
	return &World{Meter: m, Pager: pager, Cat: cat, R1: r1, R2: r2, R3: r3, NextTID: int64(cfg.N1)}
}

// R1Tuple builds (but does not insert) an R1 tuple.
func (w *World) R1Tuple(tid, skey, a int64) []byte {
	s := w.R1.Schema()
	t := s.New()
	s.SetByName(t, "tid", tid)
	s.SetByName(t, "skey", skey)
	s.SetByName(t, "a", a)
	return t
}
