// Package cache stores materialized procedure results on disk pages, with
// the validity flag that Cache and Invalidate toggles and the always-valid
// contents that Update Cache maintains.
//
// Each entry is a key-clustered file of result tuples (storage.OrderedFile)
// so differential maintenance touches only the pages holding the changed
// tuples, as the cost model's y(fN, fb, 2fl) refresh term assumes. Reading
// an entry charges one page read per result page (the model's C_read);
// recording an invalidation charges C_inval through the meter.
//
// Metered I/O and cost events go through the calling session's pager,
// passed per call: one shared store serves concurrent sessions, each
// charging its own meter.
package cache

import (
	"fmt"
	"sync"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

// ID identifies a cached object; procedure IDs are used directly.
type ID int

// Journal durably records validity transitions, making the in-memory
// validity table recoverable — the paper's low-C_inval alternative to
// flagging the cached object's pages (see package vlog for the
// write-ahead implementation). A nil journal means volatile validity.
type Journal interface {
	Invalidate(id int) error
	Validate(id int) error
}

// Store is the set of cached procedure results. The entry table itself is
// safe for concurrent lookup; each entry's validity transitions are
// individually atomic (see Entry).
type Store struct {
	mu         sync.RWMutex
	disk       *storage.Disk
	entries    map[ID]*Entry
	journal    Journal
	observer   func(event string, id, session int)
	ledger     *Ledger
	maintained bool
}

// SetMaintained declares that entry contents are mutated only inside
// update epochs (AVM/RVM differential maintenance), so their files stay
// MVCC-versioned and snapshot readers resolve them by stamp. Call before
// Define. Stores left unmaintained (C&I, Adaptive) rewrite entry files at
// query time under the entry mutex, so their files opt out of directory
// versioning and visibility is decided by the entry's stamps instead
// (docs/MVCC.md).
func (s *Store) SetMaintained() { s.maintained = true }

// SetJournal attaches a durability journal; every subsequent validity
// transition is logged. A journal write failure is a simulated crash and
// panics — recovery is exercised by replaying the journal's contents.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// SetObserver registers a callback notified on every validity transition
// ("cache.invalidate" / "cache.refresh") — the flight recorder's cache
// feed; session is the acting pager's session tag (-1 outside the
// engine). Like SetJournal, set it before the store is shared between
// sessions: the field is read without synchronization on the hot path,
// and the callback runs with the entry's mutex held, so it must not call
// back into the entry.
func (s *Store) SetObserver(fn func(event string, id, session int)) { s.observer = fn }

// SetLedger attaches a cache-efficacy ledger; every subsequent
// invalidation records a KindInvalidated event naming the invalidating
// op. Like SetObserver, set it before the store is shared between
// sessions — the field is read without synchronization on the hot path.
func (s *Store) SetLedger(l *Ledger) { s.ledger = l }

// LedgerRef returns the attached ledger (nil when none).
func (s *Store) LedgerRef() *Ledger { return s.ledger }

// Entry is one procedure's cached result. The mu mutex couples each
// validity flip with its journal append, so a concurrent reader never
// observes a validity state whose journal record is not yet written —
// the write-ahead invariant the recoverable validity table depends on.
// Contents (the result file) are guarded by the engine's per-entry
// locks, not here: file I/O runs on the calling session's pager over the
// shared disk.
type Entry struct {
	id    ID
	store *Store
	file  *storage.OrderedFile

	mu    sync.Mutex
	valid bool
	// MVCC visibility state (docs/MVCC.md): contents were computed at
	// snapshot stamp computedAt, and invals holds the ascending stamps of
	// invalidations recorded since, trimmed at each install. A snapshot
	// reader at S may serve the contents iff computedAt <= S and no inval
	// stamp lies in (computedAt, S]. All three fields are guarded by mu.
	hasData    bool
	computedAt uint64
	invals     []uint64
}

// NewStore creates an empty cache over the given disk.
func NewStore(disk *storage.Disk) *Store {
	return &Store{disk: disk, entries: make(map[ID]*Entry)}
}

// Define creates an (invalid, empty) entry for id with recSize-byte result
// tuples. Defining an existing id panics.
func (s *Store) Define(id ID, recSize int) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[id]; dup {
		panic(fmt.Sprintf("cache: entry %d already defined", id))
	}
	e := &Entry{
		id:    id,
		store: s,
		file:  storage.NewOrderedFile(s.disk, recSize),
	}
	if !s.maintained {
		e.file.Unversion()
	}
	s.entries[id] = e
	return e
}

// Entry returns the entry for id, or nil.
func (s *Store) Entry(id ID) *Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entries[id]
}

// MustEntry returns the entry for id or panics.
func (s *Store) MustEntry(id ID) *Entry {
	e := s.Entry(id)
	if e == nil {
		panic(fmt.Sprintf("cache: entry %d not defined", id))
	}
	return e
}

// Len returns the number of defined entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Valid reports whether the cached result may be served.
func (e *Entry) Valid() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.valid
}

// File exposes the underlying result file for differential maintenance.
func (e *Entry) File() *storage.OrderedFile { return e.file }

// Pages returns the current size of the result in pages.
func (e *Entry) Pages() int { return e.file.Pages() }

// Len returns the number of result tuples.
func (e *Entry) Len() int { return e.file.Len() }

// Invalidate marks the entry invalid and charges one invalidation record
// (the model's C_inval) to the acting session's meter. The paper's T3
// term charges every conflicting update, so callers invoke this once per
// update transaction that breaks one of the entry's i-locks, whether or
// not the entry is already invalid. The charge is attributed to the
// validity log when a journal is attached (the record is then a durable
// log append), to proc/ci otherwise.
func (e *Entry) Invalidate(pg *storage.Pager) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.valid = false
	if e.store.disk.MVCCEnabled() {
		// Stamp the invalidation with a lower bound on the invalidating
		// update's commit sequence: CommitStamp()+1. The update publishes at
		// some csn >= that bound, and no snapshot can be acquired strictly
		// between the bound and csn (stamps only advance at publish), so
		// every visibility comparison against the bound decides exactly as
		// it would against csn (docs/MVCC.md).
		r := e.store.disk.CommitStamp() + 1
		if n := len(e.invals); n == 0 || e.invals[n-1] < r {
			e.invals = append(e.invals, r)
		}
	}
	comp := metric.CompProc
	if e.store.journal != nil {
		comp = metric.CompVLog
	}
	m := pg.Meter()
	var before metric.Counters
	if e.store.ledger != nil {
		before = m.Snapshot()
	}
	prev := m.SetComponent(comp)
	m.Invalidation(1)
	m.SetComponent(prev)
	if j := e.store.journal; j != nil {
		if err := j.Invalidate(int(e.id)); err != nil {
			panic("cache: journal write failed (simulated crash): " + err.Error())
		}
	}
	if l := e.store.ledger; l != nil {
		l.Record(LedgerEvent{
			Entry:   int(e.id),
			Kind:    KindInvalidated,
			Op:      pg.OpToken(),
			Session: pg.Session(),
			CostMs:  m.Since(before).Milliseconds(m.Costs()),
		})
	}
	if fn := e.store.observer; fn != nil {
		fn("cache.invalidate", int(e.id), pg.Session())
	}
}

// Replace refreshes the whole result from sorted (key, tuple) pairs and
// marks it valid: the Cache and Invalidate refresh, costing two I/Os per
// result page (read-modify-write, the model's C_WriteCache), attributed to
// the cache component.
func (e *Entry) Replace(pg *storage.Pager, keys []uint64, recs [][]byte) {
	m := pg.Meter()
	prev := m.SetComponent(metric.CompCache)
	e.file.Replace(pg, keys, recs)
	m.SetComponent(prev)
	e.markValid(pg)
}

// ReplaceAt is the snapshot-aware install: it refreshes the contents from
// a result computed at snapshot stamp snap (same charges as Replace), then
// decides visibility. When no update committed or is in flight since snap
// — the install guard — the result is current and the entry becomes
// usable from snap onward (clean install, returns true). Otherwise the
// result may already be stale for later snapshots, so a synthetic
// invalidation at snap+1 confines its visibility to snapshot snap exactly
// (the computing session and any concurrent reader at the same stamp, for
// whom it is correct by construction); later readers recompute. See
// docs/MVCC.md.
func (e *Entry) ReplaceAt(pg *storage.Pager, keys []uint64, recs [][]byte, snap uint64) bool {
	m := pg.Meter()
	prev := m.SetComponent(metric.CompCache)
	e.file.Replace(pg, keys, recs)
	m.SetComponent(prev)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.hasData = true
	e.computedAt = snap
	// Invalidations at or before snap are subsumed: the new contents were
	// computed from a snapshot that includes those updates.
	trim := 0
	for trim < len(e.invals) && e.invals[trim] <= snap {
		trim++
	}
	e.invals = append(e.invals[:0], e.invals[trim:]...)
	clean := e.store.disk.CommitStamp() == snap && !e.store.disk.UpdateInFlight()
	if !clean && (len(e.invals) == 0 || e.invals[0] > snap+1) {
		e.invals = append([]uint64{snap + 1}, e.invals...)
	}
	e.valid = clean && len(e.invals) == 0
	if e.valid {
		if j := e.store.journal; j != nil {
			if err := j.Validate(int(e.id)); err != nil {
				panic("cache: journal write failed (simulated crash): " + err.Error())
			}
		}
	}
	if fn := e.store.observer; fn != nil {
		fn("cache.refresh", int(e.id), pg.Session())
	}
	return e.valid
}

// UsableAt reports whether a snapshot reader at stamp s may serve the
// cached contents: they were computed at or before s and no invalidation
// has been recorded in (computedAt, s]. With MVCC off it degenerates to
// the plain validity flag.
func (e *Entry) UsableAt(s uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.store.disk.MVCCEnabled() {
		return e.valid
	}
	return e.hasData && e.computedAt <= s && (len(e.invals) == 0 || e.invals[0] > s)
}

// ComputedAt returns the snapshot stamp the current contents were
// computed at (0 before any stamped install).
func (e *Entry) ComputedAt() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.computedAt
}

// MarkValid marks the entry valid without touching its contents; Update
// Cache uses it once after the initial load, after which maintenance keeps
// the contents current.
func (e *Entry) MarkValid(pg *storage.Pager) { e.markValid(pg) }

func (e *Entry) markValid(pg *storage.Pager) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.valid = true
	e.hasData = true
	e.invals = e.invals[:0]
	if e.store.disk.MVCCEnabled() {
		e.computedAt = e.store.disk.CommitStamp()
	}
	if j := e.store.journal; j != nil {
		if err := j.Validate(int(e.id)); err != nil {
			panic("cache: journal write failed (simulated crash): " + err.Error())
		}
	}
	if fn := e.store.observer; fn != nil {
		fn("cache.refresh", int(e.id), pg.Session())
	}
}

// ReadAll scans the cached result in key order (one charged read per
// page, attributed to the cache component), regardless of validity —
// callers check Valid first. The rec slice is only valid during the
// callback.
func (e *Entry) ReadAll(pg *storage.Pager, fn func(key uint64, rec []byte) bool) {
	m := pg.Meter()
	prev := m.SetComponent(metric.CompCache)
	defer m.SetComponent(prev)
	e.file.Scan(pg, fn)
}
