package cache

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestAnalyzeLifecycle walks one entry through computed → hits →
// invalidated → recompute and checks every derived statistic.
func TestAnalyzeLifecycle(t *testing.T) {
	events := []LedgerEvent{
		{Entry: 0, Kind: KindComputed, Op: 0, CostMs: 10, Digest: 111},
		{Entry: 0, Kind: KindHit, Op: 1, CostMs: 1},
		{Entry: 0, Kind: KindHit, Op: 2, CostMs: 1},
		{Entry: 0, Kind: KindInvalidated, Op: 3, CostMs: 0.5},
		{Entry: 0, Kind: KindComputed, Op: 4, CostMs: 10, Digest: 222}, // true invalidation: digest changed
	}
	st := Analyze(events, map[int]float64{0: 10})

	if st.Invalidations != 1 || st.FalseInvalidations != 0 || st.ComparableRecomputes != 1 {
		t.Fatalf("invalidation counts: %+v", st)
	}
	if st.WastedGenerations != 0 || st.WastedMs != 0 {
		t.Fatalf("generation with hits counted wasted: %+v", st)
	}
	// The first generation served 2 hits.
	if st.Survival[survivalBucket(2)] != 1 {
		t.Fatalf("survival histogram: %v", st.Survival)
	}
	if len(st.Entries) != 1 {
		t.Fatalf("entries: %+v", st.Entries)
	}
	e := st.Entries[0]
	if e.Computed != 2 || e.Hits != 2 || e.Invalidations != 1 {
		t.Fatalf("entry counts: %+v", e)
	}
	// NetBenefit = 2 hits × 10ms baseline − (20 compute + 2 hit + 0.5 inval).
	if !approx(e.NetBenefitMs, 2*10-(20+2+0.5)) {
		t.Fatalf("net benefit = %v", e.NetBenefitMs)
	}
	if !approx(st.TotalMs, 22.5) {
		t.Fatalf("total = %v", st.TotalMs)
	}
}

// TestAnalyzeFalseInvalidation: an invalidation whose recompute
// reproduces the prior digest destroyed a still-correct result.
func TestAnalyzeFalseInvalidation(t *testing.T) {
	events := []LedgerEvent{
		{Entry: 3, Kind: KindComputed, CostMs: 5, Digest: 777},
		{Entry: 3, Kind: KindInvalidated, CostMs: 0.1},
		{Entry: 3, Kind: KindComputed, CostMs: 5, Digest: 777},
	}
	st := Analyze(events, nil)
	if st.FalseInvalidations != 1 || st.ComparableRecomputes != 1 {
		t.Fatalf("false invalidation not detected: %+v", st)
	}
	if st.FalseInvalidationRate != 1 {
		t.Fatalf("rate = %v", st.FalseInvalidationRate)
	}
	// The first generation died with zero hits: wasted work.
	if st.WastedGenerations != 1 || !approx(st.WastedMs, 5) {
		t.Fatalf("wasted: %d gens, %vms", st.WastedGenerations, st.WastedMs)
	}
	if st.Survival[survivalBucket(0)] != 1 {
		t.Fatalf("survival: %v", st.Survival)
	}
}

// TestAnalyzeAggregateMaintenance: entry −1 maintenance (RVM's shared
// Rete propagation) is apportioned equally across all known entries,
// including baseline-only entries that saw no events.
func TestAnalyzeAggregateMaintenance(t *testing.T) {
	events := []LedgerEvent{
		{Entry: 0, Kind: KindHit, CostMs: 1},
		{Entry: -1, Kind: KindMaintained, CostMs: 9},
	}
	st := Analyze(events, map[int]float64{0: 4, 1: 4, 2: 4})
	if len(st.Entries) != 3 {
		t.Fatalf("want 3 entries (baseline-only ones included): %+v", st.Entries)
	}
	for _, e := range st.Entries {
		if !approx(e.MaintainMs, 3) {
			t.Fatalf("entry %d maintain share = %v, want 3", e.Entry, e.MaintainMs)
		}
	}
	if !approx(st.MaintainMs, 9) {
		t.Fatalf("run maintain = %v", st.MaintainMs)
	}
	// Entry 0: 1 hit × 4 baseline − (1 hit cost + 3 maintain share) = 0.
	if !approx(st.Entries[0].NetBenefitMs, 0) {
		t.Fatalf("entry 0 net benefit = %v", st.Entries[0].NetBenefitMs)
	}
}

// TestResultDigest pins the digest's discriminating properties.
func TestResultDigest(t *testing.T) {
	d1 := ResultDigest([]uint64{1, 2}, [][]byte{[]byte("a"), []byte("b")})
	d2 := ResultDigest([]uint64{1, 2}, [][]byte{[]byte("a"), []byte("b")})
	d3 := ResultDigest([]uint64{2, 1}, [][]byte{[]byte("b"), []byte("a")})
	d4 := ResultDigest([]uint64{1, 2}, [][]byte{[]byte("a"), []byte("c")})
	if d1 != d2 {
		t.Fatal("digest not deterministic")
	}
	if d1 == d3 || d1 == d4 {
		t.Fatal("digest failed to discriminate order/content")
	}
	if ResultDigest(nil, nil) == 0 {
		t.Fatal("empty digest must not be 0 (reserved for 'no digest')")
	}
}

// TestLedgerRoundTrip serializes two runs into one stream and parses
// them back, checking section boundaries, baselines and stats survive.
func TestLedgerRoundTrip(t *testing.T) {
	l1 := NewLedger()
	l1.SetBaseline(1, 7)
	l1.SetBaseline(0, 3)
	l1.Record(LedgerEvent{Entry: 0, Kind: KindComputed, Op: 2, Session: 1, CostMs: 3, Digest: 42})
	l1.Record(LedgerEvent{Entry: 0, Kind: KindHit, Op: 5, Session: 0, CostMs: 0.5})
	l2 := NewLedger()
	l2.Record(LedgerEvent{Entry: -1, Kind: KindMaintained, CostMs: 2})

	var buf bytes.Buffer
	if err := WriteLedger(&buf, LedgerMeta{Strategy: "CI", Model: 1, Clients: 1, Seed: 9, Queries: 2, TotalMs: 3.5}, l1); err != nil {
		t.Fatal(err)
	}
	if err := WriteLedger(&buf, LedgerMeta{Strategy: "RVM", Model: 2, Clients: 8}, l2); err != nil {
		t.Fatal(err)
	}

	runs, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d runs, want 2", len(runs))
	}
	r1 := runs[0]
	if r1.Meta.Strategy != "CI" || r1.Meta.Seed != 9 || len(r1.Events) != 2 {
		t.Fatalf("run 1: %+v", r1.Meta)
	}
	// Baselines sorted by entry.
	if len(r1.Meta.Baselines) != 2 || r1.Meta.Baselines[0].Entry != 0 || r1.Meta.Baselines[1].CostMs != 7 {
		t.Fatalf("baselines: %+v", r1.Meta.Baselines)
	}
	if bm := r1.BaselineMap(); bm[1] != 7 {
		t.Fatalf("baseline map: %v", bm)
	}
	if ev := r1.Events[0]; ev.Digest != 42 || ev.Op != 2 || ev.Session != 1 {
		t.Fatalf("event round-trip: %+v", ev)
	}
	if st := r1.Stats(); !approx(st.TotalMs, 3.5) {
		t.Fatalf("stats after round-trip: %+v", st)
	}
	if runs[1].Meta.Strategy != "RVM" || len(runs[1].Events) != 1 {
		t.Fatalf("run 2: %+v", runs[1])
	}
}

// TestReadLedgerErrors: an event line before any header is a corrupt
// stream; unknown record types interleave harmlessly.
func TestReadLedgerErrors(t *testing.T) {
	if _, err := ReadLedger(strings.NewReader(`{"type":"ledger.event","entry":0,"kind":"hit","op":0,"session":0,"cost_ms":1}` + "\n")); err == nil {
		t.Fatal("event before header accepted")
	}
	runs, err := ReadLedger(strings.NewReader(
		`{"type":"flight","reason":"tail"}` + "\n" +
			`{"type":"ledger","strategy":"CI","model":1,"clients":1,"seed":1,"queries":0,"updates":0,"total_ms":0,"baselines":null}` + "\n" +
			`{"type":"span","name":"op.query"}` + "\n"))
	if err != nil || len(runs) != 1 {
		t.Fatalf("interleaved stream: %v, %d runs", err, len(runs))
	}
}

// TestNilLedgerSafe: every method is a no-op on a nil receiver.
func TestNilLedgerSafe(t *testing.T) {
	var l *Ledger
	l.Record(LedgerEvent{})
	l.SetBaseline(0, 1)
	if l.Events() != nil || l.Baselines() != nil {
		t.Fatal("nil ledger returned data")
	}
	if st := l.Stats(); st.TotalMs != 0 {
		t.Fatal("nil ledger stats nonzero")
	}
}

func TestSurvivalBuckets(t *testing.T) {
	for hits, want := range map[int]int{0: 0, 1: 1, 3: 3, 4: 4, 7: 4, 8: 5, 15: 5, 16: 6, 100: 6} {
		if got := survivalBucket(hits); got != want {
			t.Errorf("bucket(%d) = %d, want %d", hits, got, want)
		}
	}
	if len(SurvivalBuckets) != 7 {
		t.Fatalf("bucket labels: %v", SurvivalBuckets)
	}
}
