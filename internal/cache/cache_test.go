package cache

import (
	"encoding/binary"
	"testing"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

func newStore(cinval float64) (*Store, *storage.Pager, *metric.Meter) {
	costs := metric.DefaultCosts()
	costs.CInval = cinval
	m := metric.NewMeter(costs)
	p := storage.NewPager(storage.NewDisk(32), m)
	return NewStore(p.Disk()), p, m
}

func rec8(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestDefineAndLookup(t *testing.T) {
	s, _, _ := newStore(0)
	e := s.Define(1, 8)
	if s.Entry(1) != e || s.MustEntry(1) != e {
		t.Fatal("lookup failed")
	}
	if s.Entry(2) != nil {
		t.Fatal("phantom entry")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if e.Valid() {
		t.Fatal("new entry should start invalid")
	}
	for name, fn := range map[string]func(){
		"redefine":       func() { s.Define(1, 8) },
		"MustEntry miss": func() { s.MustEntry(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReplaceValidatesAndStores(t *testing.T) {
	s, p, m := newStore(0)
	e := s.Define(1, 8)
	p.BeginOp()
	e.Replace(p, []uint64{1, 2, 3, 4, 5}, [][]byte{rec8(1), rec8(2), rec8(3), rec8(4), rec8(5)})
	p.BeginOp()
	if !e.Valid() || e.Len() != 5 || e.Pages() != 2 {
		t.Fatalf("Valid=%v Len=%d Pages=%d", e.Valid(), e.Len(), e.Pages())
	}
	// 2 pages, read-modify-write each.
	c := m.Snapshot()
	if c.PageReads != 2 || c.PageWrites != 2 {
		t.Fatalf("Replace charged %v, want 2 reads 2 writes", c)
	}
	m.Reset()
	var got []uint64
	e.ReadAll(p, func(k uint64, rec []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("ReadAll saw %d", len(got))
	}
	if r := m.Snapshot().PageReads; r != 2 {
		t.Fatalf("ReadAll charged %d reads, want 2", r)
	}
}

func TestInvalidateChargesCinval(t *testing.T) {
	s, p, m := newStore(60)
	e := s.Define(1, 8)
	e.MarkValid(p)
	e.Invalidate(p)
	if e.Valid() {
		t.Fatal("still valid after Invalidate")
	}
	// T3 semantics: every invalidation event is recorded, even when the
	// entry is already invalid.
	e.Invalidate(p)
	c := m.Snapshot()
	if c.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", c.Invalidations)
	}
	if got := m.Milliseconds(); got != 120 {
		t.Fatalf("cost = %v ms, want 120 (2 x C_inval=60)", got)
	}
}

func TestMarkValid(t *testing.T) {
	s, p, m := newStore(60)
	e := s.Define(1, 8)
	e.MarkValid(p)
	if !e.Valid() {
		t.Fatal("MarkValid did not validate")
	}
	if m.Milliseconds() != 0 {
		t.Fatal("MarkValid charged cost")
	}
	if e.File() == nil {
		t.Fatal("File accessor nil")
	}
}

func TestDifferentialMaintenanceTouchesOnePage(t *testing.T) {
	s, p, m := newStore(0)
	e := s.Define(1, 8)
	keys := make([]uint64, 12)
	recs := make([][]byte, 12)
	for i := range keys {
		keys[i] = uint64(i * 10)
		recs[i] = rec8(uint64(i))
	}
	e.Replace(p, keys, recs) // 3 pages
	e.MarkValid(p)
	p.BeginOp()
	m.Reset()
	// One differential delete + insert lands on specific pages only.
	e.File().Delete(p, 50)
	e.File().Insert(p, 55, rec8(99))
	p.BeginOp()
	c := m.Snapshot()
	if c.PageReads > 2 || c.PageWrites > 2 {
		t.Fatalf("differential maintenance charged %v; should touch at most the affected pages", c)
	}
	if !e.Valid() {
		t.Fatal("maintenance should not flip validity")
	}
}
