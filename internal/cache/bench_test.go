package cache

import (
	"sync"
	"testing"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

// seedEntry replicates the pre-ledger Invalidate hot path — validity
// flip under the entry mutex, the C_inval meter charge, and the
// journal/observer nil checks that predate the ledger, but no ledger
// branch — as the baseline the ledger-off path is held to (within ~5%;
// see scripts/verify.sh tier 4).
type seedEntry struct {
	id       ID
	journal  Journal
	observer func(event string, id, session int)

	mu    sync.Mutex
	valid bool
}

func (e *seedEntry) invalidate(pg *storage.Pager) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.valid = false
	comp := metric.CompProc
	if e.journal != nil {
		comp = metric.CompVLog
	}
	m := pg.Meter()
	prev := m.SetComponent(comp)
	m.Invalidation(1)
	m.SetComponent(prev)
	if j := e.journal; j != nil {
		if err := j.Invalidate(int(e.id)); err != nil {
			panic("cache: journal write failed (simulated crash): " + err.Error())
		}
	}
	if fn := e.observer; fn != nil {
		fn("cache.invalidate", int(e.id), pg.Session())
	}
}

// BenchmarkInvalidateSeedBaseline measures the pre-ledger invalidation
// cycle: the denominator of the cache ledger overhead guard.
func BenchmarkInvalidateSeedBaseline(b *testing.B) {
	_, pg, _ := newStore(0.1)
	e := &seedEntry{valid: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.invalidate(pg)
	}
}

// BenchmarkInvalidateLedgerOff measures the production Invalidate with
// no ledger attached — the zero-diagnosis path. The guard in
// scripts/verify.sh tier 4 asserts it stays within ~5% of
// BenchmarkInvalidateSeedBaseline.
func BenchmarkInvalidateLedgerOff(b *testing.B) {
	s, pg, _ := newStore(0.1)
	e := s.Define(1, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Invalidate(pg)
	}
	if s.LedgerRef() != nil {
		b.Fatal("ledger unexpectedly attached")
	}
}

// BenchmarkInvalidateLedgerOn prices the ledger itself (snapshot, delta
// pricing, one event append). Informational — not guarded, since
// attaching the ledger is an explicit opt-in.
func BenchmarkInvalidateLedgerOn(b *testing.B) {
	s, pg, _ := newStore(0.1)
	e := s.Define(1, 8)
	s.SetLedger(NewLedger())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Invalidate(pg)
	}
	if got := len(s.LedgerRef().Events()); got != b.N {
		b.Fatalf("recorded %d events, want %d", got, b.N)
	}
}
