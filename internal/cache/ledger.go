package cache

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
)

// Ledger event kinds: the lifecycle of one cached entry reads
// computed → hit* → invalidated-by-update-U → computed …, with
// "maintained" replacing the invalidate/recompute pair under the
// Update Cache strategies and "bypass" marking Adaptive accesses that
// skipped the cache entirely.
const (
	KindComputed    = "computed"
	KindHit         = "hit"
	KindInvalidated = "invalidated"
	KindMaintained  = "maintained"
	KindBypass      = "bypass"
)

// LedgerEvent is one entry-lifecycle transition. Costs are simulated
// milliseconds (the meter delta the transition charged), so the ledger
// holds no wall-clock state and a Clients=1 run serializes
// byte-identically across repetitions.
type LedgerEvent struct {
	// Entry is the procedure id; -1 marks strategy-level aggregate
	// maintenance that cannot be attributed to one entry (RVM's shared
	// Rete propagation).
	Entry int `json:"entry"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Op is the workload-order index of the operation that caused the
	// transition (-1 when unknown): for "invalidated" it names the
	// update U the entry was invalidated by.
	Op int `json:"op"`
	// Session is the executing session id, -1 outside the engine.
	Session int `json:"session"`
	// CostMs is the simulated cost charged by the transition.
	CostMs float64 `json:"cost_ms"`
	// Digest fingerprints the materialized result for "computed" events
	// (0 elsewhere); comparing digests across an invalidation detects
	// false invalidations.
	Digest uint64 `json:"digest,omitempty"`
}

// Ledger accumulates lifecycle events plus per-entry baseline recompute
// costs (the priced cost of running the entry's definition plan from
// scratch, measured against the initial base state). Safe for
// concurrent Record calls.
type Ledger struct {
	mu        sync.Mutex
	events    []LedgerEvent
	baselines map[int]float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{baselines: make(map[int]float64)}
}

// Record appends one event. Nil-safe: strategies call it unconditionally
// guarded by their own nil check, but a stray nil receiver must not
// crash a run.
func (l *Ledger) Record(ev LedgerEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// SetBaseline records the from-scratch recompute cost of one entry.
func (l *Ledger) SetBaseline(entry int, costMs float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.baselines[entry] = costMs
	l.mu.Unlock()
}

// Events returns a copy of the recorded events in record order.
func (l *Ledger) Events() []LedgerEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LedgerEvent(nil), l.events...)
}

// Baselines returns a copy of the per-entry baseline costs.
func (l *Ledger) Baselines() map[int]float64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int]float64, len(l.baselines))
	for k, v := range l.baselines {
		out[k] = v
	}
	return out
}

// Stats analyzes the recorded events against the baselines.
func (l *Ledger) Stats() LedgerStats {
	return Analyze(l.Events(), l.Baselines())
}

// ResultDigest fingerprints a materialized result (FNV-1a over keys and
// record bytes, order-sensitive). Two digests are equal iff the
// serialized results are byte-identical in order, which is the
// false-invalidation test: an invalidation whose recompute reproduces
// the prior digest destroyed a still-correct result.
func ResultDigest(keys []uint64, recs [][]byte) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		h.Write(buf[:])
		if i < len(recs) {
			binary.LittleEndian.PutUint64(buf[:], uint64(len(recs[i])))
			h.Write(buf[:])
			h.Write(recs[i])
		}
	}
	d := h.Sum64()
	if d == 0 {
		d = 1 // 0 is reserved for "no digest"
	}
	return d
}

// SurvivalBuckets label the entry-survival histogram: hits a cached
// generation served before being invalidated.
var SurvivalBuckets = []string{"0", "1", "2", "3", "4-7", "8-15", "16+"}

func survivalBucket(hits int) int {
	switch {
	case hits <= 3:
		return hits
	case hits <= 7:
		return 4
	case hits <= 15:
		return 5
	default:
		return 6
	}
}

// EntryStats is the per-entry efficacy summary.
type EntryStats struct {
	Entry              int     `json:"entry"`
	Computed           int     `json:"computed"`
	Hits               int     `json:"hits"`
	Invalidations      int     `json:"invalidations"`
	FalseInvalidations int     `json:"false_invalidations"`
	WastedGenerations  int     `json:"wasted_generations"`
	ComputeMs          float64 `json:"compute_ms"`
	HitMs              float64 `json:"hit_ms"`
	MaintainMs         float64 `json:"maintain_ms"`
	InvalMs            float64 `json:"inval_ms"`
	// WastedMs is the compute cost of generations invalidated before
	// serving a single hit: work the cache did for nothing.
	WastedMs float64 `json:"wasted_ms"`
	// BaselineMs is the from-scratch recompute cost of this entry.
	BaselineMs float64 `json:"baseline_ms"`
	// NetBenefitMs = Hits×BaselineMs − (ComputeMs + HitMs + MaintainMs
	// + InvalMs): simulated milliseconds saved versus recomputing every
	// access from scratch. Aggregate (entry −1) maintenance is
	// apportioned equally across entries before this is computed.
	NetBenefitMs float64 `json:"net_benefit_ms"`
}

// LedgerStats is the run-level efficacy summary.
type LedgerStats struct {
	Entries []EntryStats `json:"entries"`

	ComputeMs  float64 `json:"compute_ms"`
	HitMs      float64 `json:"hit_ms"`
	MaintainMs float64 `json:"maintain_ms"`
	InvalMs    float64 `json:"inval_ms"`
	BypassMs   float64 `json:"bypass_ms"`
	// TotalMs sums every event's cost; for the caching strategies it
	// equals the run's simulated total, so a strategy verdict can be
	// reached from ledger evidence alone.
	TotalMs float64 `json:"total_ms"`

	WastedMs          float64 `json:"wasted_ms"`
	WastedGenerations int     `json:"wasted_generations"`

	Invalidations      int `json:"invalidations"`
	FalseInvalidations int `json:"false_invalidations"`
	// ComparableRecomputes counts invalidations whose subsequent
	// recompute produced a digest to compare against — the denominator
	// of FalseInvalidationRate.
	ComparableRecomputes  int     `json:"comparable_recomputes"`
	FalseInvalidationRate float64 `json:"false_invalidation_rate"`

	// Survival[i] counts generations that served SurvivalBuckets[i]
	// hits before being invalidated.
	Survival []int `json:"survival"`

	NetBenefitMs float64 `json:"net_benefit_ms"`
}

type genState struct {
	open      bool
	computeMs float64
	hits      int
	digest    uint64
	// pendingDigest holds the digest the entry had when last
	// invalidated, awaiting the next recompute for comparison.
	pendingDigest uint64
	pending       bool
}

// Analyze folds an event stream into per-entry and run-level efficacy
// statistics. Deterministic: entries are sorted by id and all inputs are
// in the simulated-cost domain.
func Analyze(events []LedgerEvent, baselines map[int]float64) LedgerStats {
	st := LedgerStats{Survival: make([]int, len(SurvivalBuckets))}
	per := map[int]*EntryStats{}
	gens := map[int]*genState{}
	entry := func(id int) *EntryStats {
		e, ok := per[id]
		if !ok {
			e = &EntryStats{Entry: id}
			per[id] = e
		}
		return e
	}
	gen := func(id int) *genState {
		g, ok := gens[id]
		if !ok {
			g = &genState{}
			gens[id] = g
		}
		return g
	}
	var aggregateMaintainMs float64
	for _, ev := range events {
		st.TotalMs += ev.CostMs
		switch ev.Kind {
		case KindComputed:
			st.ComputeMs += ev.CostMs
			e, g := entry(ev.Entry), gen(ev.Entry)
			e.Computed++
			e.ComputeMs += ev.CostMs
			if g.pending {
				if g.pendingDigest != 0 && ev.Digest != 0 {
					st.ComparableRecomputes++
					if g.pendingDigest == ev.Digest {
						st.FalseInvalidations++
						e.FalseInvalidations++
					}
				}
				g.pending = false
			}
			g.open, g.computeMs, g.hits, g.digest = true, ev.CostMs, 0, ev.Digest
		case KindHit:
			st.HitMs += ev.CostMs
			e := entry(ev.Entry)
			e.Hits++
			e.HitMs += ev.CostMs
			if g := gen(ev.Entry); g.open {
				g.hits++
			}
		case KindInvalidated:
			st.InvalMs += ev.CostMs
			st.Invalidations++
			e, g := entry(ev.Entry), gen(ev.Entry)
			e.Invalidations++
			e.InvalMs += ev.CostMs
			if g.open {
				st.Survival[survivalBucket(g.hits)]++
				if g.hits == 0 {
					st.WastedMs += g.computeMs
					st.WastedGenerations++
					e.WastedMs += g.computeMs
					e.WastedGenerations++
				}
				g.pendingDigest, g.pending = g.digest, true
				g.open = false
			}
		case KindMaintained:
			st.MaintainMs += ev.CostMs
			if ev.Entry < 0 {
				aggregateMaintainMs += ev.CostMs
			} else {
				e := entry(ev.Entry)
				e.MaintainMs += ev.CostMs
			}
		case KindBypass:
			st.BypassMs += ev.CostMs
		}
	}
	// Every baseline entry participates even if it saw no events: a
	// never-accessed entry still bears its share of aggregate
	// maintenance cost.
	for id := range baselines {
		entry(id)
	}
	ids := make([]int, 0, len(per))
	for id := range per {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	share := 0.0
	if len(ids) > 0 {
		share = aggregateMaintainMs / float64(len(ids))
	}
	for _, id := range ids {
		e := per[id]
		e.BaselineMs = baselines[id]
		e.MaintainMs += share
		e.NetBenefitMs = float64(e.Hits)*e.BaselineMs -
			(e.ComputeMs + e.HitMs + e.MaintainMs + e.InvalMs)
		st.NetBenefitMs += e.NetBenefitMs
		st.Entries = append(st.Entries, *e)
	}
	if st.ComparableRecomputes > 0 {
		st.FalseInvalidationRate = float64(st.FalseInvalidations) / float64(st.ComparableRecomputes)
	}
	return st
}

// Ledger serialization: a JSONL section per run — one "ledger" header
// line carrying run identity and baselines, then one "ledger.event"
// line per event. Sections concatenate, so one file can hold a whole
// strategy sweep.

// LedgerMeta is the section header.
type LedgerMeta struct {
	Type      string           `json:"type"`
	Strategy  string           `json:"strategy"`
	Model     int              `json:"model"`
	Clients   int              `json:"clients"`
	Seed      int64            `json:"seed"`
	Queries   int              `json:"queries"`
	Updates   int              `json:"updates"`
	TotalMs   float64          `json:"total_ms"`
	Baselines []BaselineRecord `json:"baselines"`
}

// BaselineRecord is one entry's from-scratch recompute cost in the
// section header (sorted by entry for deterministic serialization).
type BaselineRecord struct {
	Entry  int     `json:"entry"`
	CostMs float64 `json:"cost_ms"`
}

type ledgerEventRecord struct {
	Type string `json:"type"`
	LedgerEvent
}

// RecordLedger and RecordLedgerEvent are the JSONL type tags.
const (
	RecordLedger      = "ledger"
	RecordLedgerEvent = "ledger.event"
)

// WriteLedger serializes one run's ledger as a JSONL section. The meta's
// Type and Baselines fields are filled in here.
func WriteLedger(w io.Writer, meta LedgerMeta, l *Ledger) error {
	bw := bufio.NewWriter(w)
	meta.Type = RecordLedger
	meta.Baselines = meta.Baselines[:0]
	bl := l.Baselines()
	ids := make([]int, 0, len(bl))
	for id := range bl {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		meta.Baselines = append(meta.Baselines, BaselineRecord{Entry: id, CostMs: bl[id]})
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, ev := range l.Events() {
		if err := enc.Encode(ledgerEventRecord{Type: RecordLedgerEvent, LedgerEvent: ev}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LedgerRun is one parsed section.
type LedgerRun struct {
	Meta   LedgerMeta
	Events []LedgerEvent
}

// BaselineMap rebuilds the baselines map from the section header.
func (r *LedgerRun) BaselineMap() map[int]float64 {
	out := make(map[int]float64, len(r.Meta.Baselines))
	for _, b := range r.Meta.Baselines {
		out[b.Entry] = b.CostMs
	}
	return out
}

// Stats analyzes the run's events against its baselines.
func (r *LedgerRun) Stats() LedgerStats {
	return Analyze(r.Events, r.BaselineMap())
}

// ReadLedger parses a (possibly multi-section) ledger file. Unknown
// record types are skipped so ledger sections can share a stream with
// flight records.
func ReadLedger(r io.Reader) ([]LedgerRun, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var runs []LedgerRun
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("cache: ledger line %d: %w", line, err)
		}
		switch probe.Type {
		case RecordLedger:
			var meta LedgerMeta
			if err := json.Unmarshal(raw, &meta); err != nil {
				return nil, fmt.Errorf("cache: ledger line %d: %w", line, err)
			}
			runs = append(runs, LedgerRun{Meta: meta})
		case RecordLedgerEvent:
			var rec ledgerEventRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("cache: ledger line %d: %w", line, err)
			}
			if len(runs) == 0 {
				return nil, fmt.Errorf("cache: ledger line %d: event before header", line)
			}
			runs[len(runs)-1].Events = append(runs[len(runs)-1].Events, rec.LedgerEvent)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return runs, nil
}
