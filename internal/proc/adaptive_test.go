package proc

import (
	"testing"

	"dbproc/internal/cache"
	"dbproc/internal/dbtest"
)

func newAdaptiveFixture(t *testing.T) (*dbtest.World, *Adaptive, *Manager) {
	t.Helper()
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p1Def(w, 1, 10, 19))
	m.Define(p1Def(w, 2, 100, 109))
	s := NewAdaptive(m, cache.NewStore(w.Pager.Disk()))
	s.Window = 4
	s.ProbeEvery = 20
	w.Pager.SetCharging(false)
	s.Prepare(w.Pager)
	w.Pager.BeginOp()
	w.Pager.SetCharging(true)
	w.Meter.Reset()
	return w, s, m
}

func TestAdaptiveStaysCachingWhenUpdatesRare(t *testing.T) {
	w, s, _ := newAdaptiveFixture(t)
	if s.Name() != "Adaptive Caching" {
		t.Fatal("name wrong")
	}
	for i := 0; i < 20; i++ {
		w.Pager.BeginOp()
		if got := len(s.Access(w.Pager, 1)); got != 10 {
			t.Fatalf("Access returned %d", got)
		}
		w.Pager.Flush()
	}
	if s.BypassedCount() != 0 {
		t.Fatal("quiet procedure dropped caching")
	}
	// Warm accesses charge only the cached read: 20 accesses x 3 result
	// pages (10 tuples at 4 per page), and no screens or writes.
	if c := w.Meter.Snapshot(); c.PageReads != 60 || c.Screens != 0 || c.PageWrites != 0 {
		t.Fatalf("warm accesses charged %v", c)
	}
}

// churn invalidates procedure 1's band before every access.
func churn(t *testing.T, w *dbtest.World, s *Adaptive, rounds int) {
	t.Helper()
	skey := map[int64]int64{}
	for i := 0; i < rounds; i++ {
		// Bounce tuple 15 in and out of the band [10, 19].
		tid := int64(15)
		cur, ok := skey[tid]
		if !ok {
			cur = 15
		}
		next := int64(500 + i)
		d := moveTuple(t, w, tid, cur, next)
		skey[tid] = next
		s.OnUpdate(w.Pager, d)
		// Move it back so the band keeps changing.
		d = moveTuple(t, w, tid, next, 15)
		skey[tid] = 15
		s.OnUpdate(w.Pager, d)
		w.Pager.BeginOp()
		s.Access(w.Pager, 1)
		w.Pager.Flush()
	}
}

func TestAdaptiveBypassesUnderChurnAndRecovers(t *testing.T) {
	w, s, _ := newAdaptiveFixture(t)
	churn(t, w, s, 12)
	if s.BypassedCount() != 1 {
		t.Fatalf("BypassedCount = %d, want 1 (procedure 1 under churn)", s.BypassedCount())
	}

	// Bypassed accesses recompute without write-backs.
	w.Meter.Reset()
	w.Pager.BeginOp()
	out := s.Access(w.Pager, 1)
	w.Pager.Flush()
	if len(out) != 10 {
		t.Fatalf("bypassed access returned %d", len(out))
	}
	if c := w.Meter.Snapshot(); c.PageWrites != 0 || c.Screens == 0 {
		t.Fatalf("bypassed access should recompute without refresh: %v", c)
	}

	// With the churn gone, the probe access re-enables caching...
	for i := 0; i < s.ProbeEvery; i++ {
		w.Pager.BeginOp()
		s.Access(w.Pager, 1)
		w.Pager.Flush()
	}
	if s.BypassedCount() != 0 {
		t.Fatal("procedure did not recover to caching mode")
	}
	// ...and subsequent accesses are warm reads again.
	w.Meter.Reset()
	w.Pager.BeginOp()
	s.Access(w.Pager, 1)
	w.Pager.Flush()
	if c := w.Meter.Snapshot(); c.Screens != 0 {
		t.Fatalf("recovered access should be a cached read: %v", c)
	}
}

func TestAdaptiveBypassAvoidsInvalidationCost(t *testing.T) {
	w, s, _ := newAdaptiveFixture(t)
	churn(t, w, s, 12)
	if s.BypassedCount() != 1 {
		t.Fatalf("BypassedCount = %d, want 1", s.BypassedCount())
	}
	// Procedure 1 is bypassed: it holds no locks, so updates in its band
	// record no invalidations.
	w.Meter.Reset()
	d := moveTuple(t, w, 12, 12, 600)
	s.OnUpdate(w.Pager, d)
	if c := w.Meter.Snapshot(); c.Invalidations != 0 {
		t.Fatalf("bypassed procedure still charged %d invalidations", c.Invalidations)
	}
	// Procedure 2 still caches: its band being hit does charge.
	d = moveTuple(t, w, 105, 105, 601)
	s.OnUpdate(w.Pager, d)
	if c := w.Meter.Snapshot(); c.Invalidations != 1 {
		t.Fatalf("caching procedure charged %d invalidations, want 1", c.Invalidations)
	}
}

// TestAdaptiveBypassesOnInvalidationBurst: repeated invalidations with no
// intervening access drop the procedure to bypass straight from the
// update path, before the next access even happens.
func TestAdaptiveBypassesOnInvalidationBurst(t *testing.T) {
	w, s, _ := newAdaptiveFixture(t)
	s.BypassAfterInvalidations = 5
	cur := int64(15)
	for i := 0; i < 5; i++ {
		next := int64(700 + i)
		s.OnUpdate(w.Pager, moveTuple(t, w, 15, cur, next))
		cur = next
		s.OnUpdate(w.Pager, moveTuple(t, w, 15, cur, 15))
		cur = 15
		if i < 2 && s.BypassedCount() != 0 {
			t.Fatalf("bypassed after only %d update rounds", i+1)
		}
	}
	if s.BypassedCount() != 1 {
		t.Fatalf("BypassedCount = %d after burst, want 1", s.BypassedCount())
	}
	// Further updates in the band cost nothing (no locks held).
	w.Meter.Reset()
	s.OnUpdate(w.Pager, moveTuple(t, w, 12, 12, 800))
	if c := w.Meter.Snapshot(); c.Invalidations != 0 {
		t.Fatalf("burst-bypassed procedure still charged %d invalidations", c.Invalidations)
	}
}

func TestRecomputeInterfaceCompleteness(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p1Def(w, 1, 0, 9))
	var s Strategy = NewAlwaysRecompute(m)
	s.Prepare(w.Pager) // no-op must not panic
	s.OnUpdate(w.Pager, Delta{Rel: w.R1})
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestCacheInvalidateName(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p1Def(w, 1, 0, 9))
	s := NewCacheInvalidate(m, cache.NewStore(w.Pager.Disk()))
	if s.Name() != "Cache and Invalidate" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestCacheInvalidateCoarseLocks(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p1Def(w, 1, 10, 19))
	m.Define(p1Def(w, 2, 100, 109))
	store := cache.NewStore(w.Pager.Disk())
	s := NewCacheInvalidate(m, store)
	s.SetCoarseLocks(true)
	w.Pager.SetCharging(false)
	s.Prepare(w.Pager)
	w.Pager.BeginOp()
	w.Pager.SetCharging(true)
	// An update touching NEITHER band still invalidates both procedures.
	s.OnUpdate(w.Pager, moveTuple(t, w, 150, 150, 160))
	if store.MustEntry(1).Valid() || store.MustEntry(2).Valid() {
		t.Fatal("coarse locks should invalidate every procedure")
	}
	if got := w.Meter.Snapshot().Invalidations; got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
}

func TestAdaptiveResultsStayCorrect(t *testing.T) {
	w, s, m := newAdaptiveFixture(t)
	rc := NewAlwaysRecompute(m)
	check := func() {
		t.Helper()
		for _, id := range []int{1, 2} {
			w.Pager.BeginOp()
			got := s.Access(w.Pager, id)
			w.Pager.BeginOp()
			want := rc.Access(w.Pager, id)
			w.Pager.Flush()
			if len(got) != len(want) {
				t.Fatalf("proc %d: adaptive %d tuples vs recompute %d", id, len(got), len(want))
			}
		}
	}
	check()
	churn(t, w, s, 12) // forces proc 1 into bypass
	check()
	for i := 0; i < s.ProbeEvery+1; i++ {
		w.Pager.BeginOp()
		s.Access(w.Pager, 1)
		w.Pager.Flush()
	}
	check() // after recovery
}
