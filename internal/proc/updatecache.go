package proc

import (
	"dbproc/internal/cache"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
)

// Maintainer is a differential view-maintenance engine that keeps every
// procedure's cached result current; avm.Engine satisfies it directly and
// rete networks through rete-side adapters built by the simulator. Both
// methods take the acting session's pager and charge its meter.
type Maintainer interface {
	// Name identifies the algorithm ("AVM" or "RVM").
	Name() string
	// Prepare performs the engine's one-time fill; run uncharged.
	Prepare(pg *storage.Pager)
	// Apply maintains all results after an update transaction on rel.
	Apply(pg *storage.Pager, rel *relation.Relation, inserted, deleted [][]byte)
}

// UpdateCache answers procedure queries straight from the always-current
// cache and forwards every update to its maintenance engine — the paper's
// Update Cache strategy, in its AVM (non-shared) or RVM (shared) variant
// depending on the engine supplied.
type UpdateCache struct {
	mgr   *Manager
	store *cache.Store
	maint Maintainer
	// ledger, when set, receives hit events per access. Maintenance
	// events come from the maintainer itself when it accepts a ledger
	// (AVM records per view); otherwise maintSelf is false and OnUpdate
	// records the aggregate maintenance delta under entry −1 (RVM's
	// shared Rete propagation has no per-view attribution).
	ledger    *cache.Ledger
	maintSelf bool
}

// NewUpdateCache builds the strategy over a cache store whose entries the
// engine maintains.
func NewUpdateCache(mgr *Manager, store *cache.Store, maint Maintainer) *UpdateCache {
	return &UpdateCache{mgr: mgr, store: store, maint: maint}
}

// Name implements Strategy.
func (s *UpdateCache) Name() string { return "Update Cache (" + s.maint.Name() + ")" }

// CacheStore exposes the strategy's cache store (telemetry observers
// attach here).
func (s *UpdateCache) CacheStore() *cache.Store { return s.store }

// SetTracer forwards the tracer to the maintenance engine if it accepts
// one; the strategy's own work (a cache read per access) needs no child
// spans of its own.
func (s *UpdateCache) SetTracer(t *obs.Tracer) {
	if st, ok := s.maint.(interface{ SetTracer(*obs.Tracer) }); ok {
		st.SetTracer(t)
	}
}

// SetLedger attaches a cache-efficacy ledger, forwarding it to the
// maintenance engine when it records its own per-view events.
func (s *UpdateCache) SetLedger(l *cache.Ledger) {
	s.ledger = l
	if sl, ok := s.maint.(interface{ SetLedger(*cache.Ledger) }); ok {
		sl.SetLedger(l)
		s.maintSelf = true
	}
}

// Prepare implements Strategy.
func (s *UpdateCache) Prepare(pg *storage.Pager) { s.maint.Prepare(pg) }

// Access implements Strategy: one read of the (always valid) cached
// result.
func (s *UpdateCache) Access(pg *storage.Pager, id int) [][]byte {
	m := pg.Meter()
	var before metric.Counters
	if s.ledger != nil {
		before = m.Snapshot()
	}
	e := s.store.MustEntry(cache.ID(id))
	var out [][]byte
	e.ReadAll(pg, func(_ uint64, rec []byte) bool {
		out = append(out, append([]byte(nil), rec...))
		return true
	})
	if s.ledger != nil {
		s.ledger.Record(cache.LedgerEvent{
			Entry:   id,
			Kind:    cache.KindHit,
			Op:      pg.OpToken(),
			Session: pg.Session(),
			CostMs:  m.Since(before).Milliseconds(m.Costs()),
		})
	}
	return out
}

// OnUpdate implements Strategy.
func (s *UpdateCache) OnUpdate(pg *storage.Pager, d Delta) {
	if s.ledger == nil || s.maintSelf {
		s.maint.Apply(pg, d.Rel, d.Inserted, d.Deleted)
		return
	}
	m := pg.Meter()
	before := m.Snapshot()
	s.maint.Apply(pg, d.Rel, d.Inserted, d.Deleted)
	// Flush so deferred page writes price into this event (idempotent;
	// the op-level flush then finds the frames clean).
	pg.Flush()
	s.ledger.Record(cache.LedgerEvent{
		Entry:   -1,
		Kind:    cache.KindMaintained,
		Op:      pg.OpToken(),
		Session: pg.Session(),
		CostMs:  m.Since(before).Milliseconds(m.Costs()),
	})
}
