package proc

import (
	"dbproc/internal/cache"
	"dbproc/internal/obs"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
)

// Maintainer is a differential view-maintenance engine that keeps every
// procedure's cached result current; avm.Engine satisfies it directly and
// rete networks through rete-side adapters built by the simulator. Both
// methods take the acting session's pager and charge its meter.
type Maintainer interface {
	// Name identifies the algorithm ("AVM" or "RVM").
	Name() string
	// Prepare performs the engine's one-time fill; run uncharged.
	Prepare(pg *storage.Pager)
	// Apply maintains all results after an update transaction on rel.
	Apply(pg *storage.Pager, rel *relation.Relation, inserted, deleted [][]byte)
}

// UpdateCache answers procedure queries straight from the always-current
// cache and forwards every update to its maintenance engine — the paper's
// Update Cache strategy, in its AVM (non-shared) or RVM (shared) variant
// depending on the engine supplied.
type UpdateCache struct {
	mgr   *Manager
	store *cache.Store
	maint Maintainer
}

// NewUpdateCache builds the strategy over a cache store whose entries the
// engine maintains.
func NewUpdateCache(mgr *Manager, store *cache.Store, maint Maintainer) *UpdateCache {
	return &UpdateCache{mgr: mgr, store: store, maint: maint}
}

// Name implements Strategy.
func (s *UpdateCache) Name() string { return "Update Cache (" + s.maint.Name() + ")" }

// CacheStore exposes the strategy's cache store (telemetry observers
// attach here).
func (s *UpdateCache) CacheStore() *cache.Store { return s.store }

// SetTracer forwards the tracer to the maintenance engine if it accepts
// one; the strategy's own work (a cache read per access) needs no child
// spans of its own.
func (s *UpdateCache) SetTracer(t *obs.Tracer) {
	if st, ok := s.maint.(interface{ SetTracer(*obs.Tracer) }); ok {
		st.SetTracer(t)
	}
}

// Prepare implements Strategy.
func (s *UpdateCache) Prepare(pg *storage.Pager) { s.maint.Prepare(pg) }

// Access implements Strategy: one read of the (always valid) cached
// result.
func (s *UpdateCache) Access(pg *storage.Pager, id int) [][]byte {
	e := s.store.MustEntry(cache.ID(id))
	var out [][]byte
	e.ReadAll(pg, func(_ uint64, rec []byte) bool {
		out = append(out, append([]byte(nil), rec...))
		return true
	})
	return out
}

// OnUpdate implements Strategy.
func (s *UpdateCache) OnUpdate(pg *storage.Pager, d Delta) {
	s.maint.Apply(pg, d.Rel, d.Inserted, d.Deleted)
}
