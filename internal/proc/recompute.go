package proc

import (
	"dbproc/internal/obs"
	"dbproc/internal/query"
	"dbproc/internal/storage"
)

// AlwaysRecompute executes the procedure's precompiled plan on every
// access: the conventional algorithm (TOT_Recompute in the model). It
// keeps no cached state, so updates cost it nothing.
type AlwaysRecompute struct {
	mgr    *Manager
	tracer *obs.Tracer
}

// NewAlwaysRecompute builds the strategy over the given definitions.
func NewAlwaysRecompute(mgr *Manager) *AlwaysRecompute {
	return &AlwaysRecompute{mgr: mgr}
}

// Name implements Strategy.
func (s *AlwaysRecompute) Name() string { return "Always Recompute" }

// SetTracer attaches a tracer; each access then records a recompute.scan
// child span covering the plan execution.
func (s *AlwaysRecompute) SetTracer(t *obs.Tracer) { s.tracer = t }

// Prepare implements Strategy; there is nothing to set up.
func (s *AlwaysRecompute) Prepare(*storage.Pager) {}

// Access implements Strategy: run the plan, return its output.
func (s *AlwaysRecompute) Access(pg *storage.Pager, id int) [][]byte {
	d := s.mgr.MustGet(id)
	sp := s.tracer.Begin("recompute.scan")
	sp.Set("proc", id)
	pg.BeginRecompute()
	out := query.Run(d.Plan, &query.Ctx{Meter: pg.Meter(), Pager: pg})
	pg.EndRecompute()
	sp.Set("tuples", len(out))
	s.tracer.End(sp)
	return out
}

// OnUpdate implements Strategy; recomputation needs no update hook.
func (s *AlwaysRecompute) OnUpdate(*storage.Pager, Delta) {}
