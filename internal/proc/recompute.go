package proc

import (
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/query"
)

// AlwaysRecompute executes the procedure's precompiled plan on every
// access: the conventional algorithm (TOT_Recompute in the model). It
// keeps no cached state, so updates cost it nothing.
type AlwaysRecompute struct {
	mgr    *Manager
	meter  *metric.Meter
	tracer *obs.Tracer
}

// NewAlwaysRecompute builds the strategy over the given definitions.
func NewAlwaysRecompute(mgr *Manager, meter *metric.Meter) *AlwaysRecompute {
	return &AlwaysRecompute{mgr: mgr, meter: meter}
}

// Name implements Strategy.
func (s *AlwaysRecompute) Name() string { return "Always Recompute" }

// SetTracer attaches a tracer; each access then records a recompute.scan
// child span covering the plan execution.
func (s *AlwaysRecompute) SetTracer(t *obs.Tracer) { s.tracer = t }

// Prepare implements Strategy; there is nothing to set up.
func (s *AlwaysRecompute) Prepare() {}

// Access implements Strategy: run the plan, return its output.
func (s *AlwaysRecompute) Access(id int) [][]byte {
	d := s.mgr.MustGet(id)
	sp := s.tracer.Begin("recompute.scan")
	sp.Set("proc", id)
	out := query.Run(d.Plan, &query.Ctx{Meter: s.meter})
	sp.Set("tuples", len(out))
	s.tracer.End(sp)
	return out
}

// OnUpdate implements Strategy; recomputation needs no update hook.
func (s *AlwaysRecompute) OnUpdate(Delta) {}
