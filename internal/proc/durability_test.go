package proc

import (
	"testing"

	"dbproc/internal/cache"
	"dbproc/internal/dbtest"
	"dbproc/internal/vlog"
)

// TestValidityTableSurvivesCrash runs Cache and Invalidate with a
// journaled validity table, "crashes" at an arbitrary point, and checks
// that replaying the journal reconstructs exactly the live validity
// state — the paper's recoverable low-C_inval scheme end to end.
func TestValidityTableSurvivesCrash(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p1Def(w, 0, 10, 19))
	m.Define(p1Def(w, 1, 40, 49))
	m.Define(p2Def(w, 2, 50, 69))
	store := cache.NewStore(w.Pager.Disk())

	dev := vlog.NewDevice()
	journal, err := vlog.New(dev, []int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	journal.CheckpointEvery = 5
	store.SetJournal(journal)

	s := NewCacheInvalidate(m, store)
	w.Pager.SetCharging(false)
	s.Prepare(w.Pager)
	w.Pager.BeginOp()
	w.Pager.SetCharging(true)

	checkRecovery := func(stage string) {
		t.Helper()
		recovered, err := vlog.Recover(dev.Contents())
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", stage, err)
		}
		for _, id := range m.IDs() {
			if got, want := recovered[int32(id)], store.MustEntry(cache.ID(id)).Valid(); got != want {
				t.Fatalf("%s: procedure %d recovered valid=%v, live state %v", stage, id, got, want)
			}
		}
	}
	checkRecovery("after prepare")

	// A mixed run: invalidating updates and revalidating accesses.
	skey := map[int64]int64{12: 12, 44: 44, 55: 55}
	moves := [][2]int64{{12, 99}, {44, 12}, {55, 44}, {12, 55}, {44, 200}, {55, 12}}
	for i, mv := range moves {
		tid := mv[0]
		s.OnUpdate(w.Pager, moveTuple(t, w, tid, skey[tid], mv[1]))
		skey[tid] = mv[1]
		checkRecovery("after update")
		// Access one procedure (revalidates it if cold).
		w.Pager.BeginOp()
		s.Access(w.Pager, i%3)
		w.Pager.Flush()
		checkRecovery("after access")
	}

	// Torn final write: the journal must refuse the flip, and recovery of
	// the torn log must match the state before the failed transition.
	before := store.MustEntry(0).Valid()
	dev.FailAfter(dev.Len() + 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("journal failure should crash")
			}
		}()
		s.OnUpdate(w.Pager, moveTuple(t, w, 15, 15, 300))
	}()
	recovered, err := vlog.Recover(dev.Contents())
	if err != nil {
		t.Fatal(err)
	}
	if recovered[0] != before {
		t.Fatalf("recovered valid=%v after torn write, want pre-crash %v", recovered[0], before)
	}
}
