// Package proc implements database procedures — queries stored in the
// database — and the paper's strategies for processing queries against
// them:
//
//   - AlwaysRecompute executes the procedure's compiled plan on every
//     access.
//   - CacheInvalidate serves a cached result while valid; i-locks set by
//     rule indexing during computation detect conflicting updates, which
//     invalidate the cache; the next access recomputes and refreshes it.
//   - UpdateCache keeps the cached result permanently current by routing
//     every update through a view-maintenance engine (AVM or RVM).
//
// All strategies share the Manager's procedure definitions; each strategy
// instance owns its own cache and lock state so alternatives can be
// compared on identical workloads.
package proc

import (
	"fmt"

	"dbproc/internal/query"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// Definition is one stored database procedure: a single compiled retrieve
// query (the procedure model of the paper's section 3).
type Definition struct {
	// ID is the procedure's identity across cache entries and i-locks.
	ID int
	// Name is a human-readable label.
	Name string
	// Plan is the procedure's precompiled execution plan; there is no
	// run-time compilation overhead (the paper's "statically optimized"
	// assumption).
	Plan query.Plan
	// KeyField and IDField name the result attributes whose values cluster
	// the cached result (value and unique-id tiebreaker).
	KeyField, IDField string

	keyIdx, idIdx int
	keyFn         func([]byte) uint64
}

// NewDefinition validates and completes a definition.
func NewDefinition(id int, name string, plan query.Plan, keyField, idField string) *Definition {
	if plan == nil {
		panic("proc: nil plan")
	}
	d := &Definition{
		ID: id, Name: name, Plan: plan,
		KeyField: keyField, IDField: idField,
		keyIdx: plan.Schema().MustFieldIndex(keyField),
		idIdx:  plan.Schema().MustFieldIndex(idField),
	}
	return d
}

// NewDefinitionWithKey builds a definition whose result clustering key
// comes from an arbitrary function instead of two result attributes. Used
// when the result schema carries no natural (value, unique id) pair — the
// key must still be unique per result tuple and ascending keys are
// assigned in plan output order. Definitions built this way support
// Always Recompute and Cache and Invalidate; differential maintenance
// needs content-derived keys.
func NewDefinitionWithKey(id int, name string, plan query.Plan, key func([]byte) uint64) *Definition {
	if plan == nil {
		panic("proc: nil plan")
	}
	if key == nil {
		panic("proc: nil key")
	}
	return &Definition{ID: id, Name: name, Plan: plan, keyFn: key, keyIdx: -1, idIdx: -1}
}

// ResultKey returns the cluster key of one result tuple.
func (d *Definition) ResultKey(tup []byte) uint64 {
	if d.keyFn != nil {
		return d.keyFn(tup)
	}
	s := d.Plan.Schema()
	return tuple.ClusterKey(s.Get(tup, d.keyIdx), s.Get(tup, d.idIdx))
}

// ResultWidth returns the width in bytes of the procedure's result tuples.
func (d *Definition) ResultWidth() int { return d.Plan.Schema().Width() }

// Manager registers procedure definitions.
type Manager struct {
	defs  map[int]*Definition
	order []int
}

// NewManager returns an empty registry.
func NewManager() *Manager {
	return &Manager{defs: make(map[int]*Definition)}
}

// Define registers a procedure; redefining an id panics.
func (m *Manager) Define(d *Definition) {
	if _, dup := m.defs[d.ID]; dup {
		panic(fmt.Sprintf("proc: procedure %d already defined", d.ID))
	}
	m.defs[d.ID] = d
	m.order = append(m.order, d.ID)
}

// Get returns the definition for id, or nil.
func (m *Manager) Get(id int) *Definition { return m.defs[id] }

// MustGet returns the definition for id or panics.
func (m *Manager) MustGet(id int) *Definition {
	d := m.defs[id]
	if d == nil {
		panic(fmt.Sprintf("proc: procedure %d not defined", id))
	}
	return d
}

// IDs returns the procedure ids in definition order.
func (m *Manager) IDs() []int { return m.order }

// Len returns the number of defined procedures.
func (m *Manager) Len() int { return len(m.defs) }

// Delta is one update transaction's net effect on a base relation:
// Deleted holds the old values of the modified tuples, Inserted the new
// values (an in-place modification contributes one of each).
type Delta struct {
	Rel      *relation.Relation
	Inserted [][]byte
	Deleted  [][]byte
}

// Strategy processes queries against procedures under one of the paper's
// algorithms. Every method takes the calling session's pager: strategies
// keep shared state (caches, lock tables, maintenance networks) but charge
// all metered I/O and cost events to the session doing the work. The
// engine's 2PL footprints serialize conflicting calls; strategies only
// need internal synchronization for state read outside those footprints.
type Strategy interface {
	// Name returns the paper's name for the strategy.
	Name() string
	// Prepare performs one-time setup (cache fills, lock installation,
	// network builds). The caller runs it with cost charging disabled, as
	// setup cost is excluded from the model.
	Prepare(pg *storage.Pager)
	// Access processes a query that retrieves the value of procedure id,
	// returning its result tuples.
	Access(pg *storage.Pager, id int) [][]byte
	// OnUpdate is invoked after each update transaction commits.
	OnUpdate(pg *storage.Pager, d Delta)
}
