package proc

import (
	"testing"

	"dbproc/internal/cache"
	"dbproc/internal/dbtest"
	"dbproc/internal/query"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

func p1Def(w *dbtest.World, id int, lo, hi int64) *Definition {
	return NewDefinition(id, "p1", query.NewBTreeRangeScan(w.R1, lo, hi), "skey", "tid")
}

func p2Def(w *dbtest.World, id int, lo, hi int64) *Definition {
	j := query.NewHashJoinProbe(query.NewBTreeRangeScan(w.R1, lo, hi), w.R2, "a", 80)
	plan := &query.Filter{Child: j, Pred: query.Compare{Field: "r2_p2", Op: query.Lt, Value: 5}}
	return NewDefinition(id, "p2", plan, "skey", "tid")
}

// moveTuple rewrites R1 tuple tid to a new skey and returns the delta.
func moveTuple(t *testing.T, w *dbtest.World, tid, oldSkey, newSkey int64) Delta {
	t.Helper()
	prev := w.Pager.SetCharging(false)
	old, ok := w.R1.Tree().Get(w.Pager, tuple.ClusterKey(oldSkey, tid))
	if !ok {
		t.Fatalf("tuple %d at skey %d missing", tid, oldSkey)
	}
	newTup := append([]byte(nil), old...)
	w.R1.Schema().SetByName(newTup, "skey", newSkey)
	w.R1.DeleteKeyed(w.Pager, tuple.ClusterKey(oldSkey, tid))
	w.R1.Insert(w.Pager, newTup)
	w.Pager.BeginOp()
	w.Pager.SetCharging(prev)
	return Delta{Rel: w.R1, Inserted: [][]byte{newTup}, Deleted: [][]byte{old}}
}

func TestManagerRegistry(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	d := p1Def(w, 1, 0, 9)
	m.Define(d)
	if m.Get(1) != d || m.MustGet(1) != d || m.Get(2) != nil {
		t.Fatal("lookup wrong")
	}
	if m.Len() != 1 || len(m.IDs()) != 1 {
		t.Fatal("sizes wrong")
	}
	for name, fn := range map[string]func(){
		"redefine":     func() { m.Define(d) },
		"MustGet miss": func() { m.MustGet(9) },
		"nil plan":     func() { NewDefinition(3, "x", nil, "a", "b") },
		"bad field":    func() { NewDefinition(3, "x", query.NewBTreeRangeScan(w.R1, 0, 1), "zzz", "tid") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestResultKeyOrdersResults(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	d := p1Def(w, 1, 0, 9)
	tup := w.R1Tuple(7, 3, 0)
	if got := d.ResultKey(tup); got != tuple.ClusterKey(3, 7) {
		t.Fatalf("ResultKey = %d", got)
	}
	if d.ResultWidth() != 64 {
		t.Fatalf("ResultWidth = %d", d.ResultWidth())
	}
}

func TestAlwaysRecompute(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p1Def(w, 1, 10, 19))
	s := NewAlwaysRecompute(m)
	s.Prepare(w.Pager)
	if s.Name() != "Always Recompute" {
		t.Fatal("name wrong")
	}
	w.Pager.BeginOp()
	w.Meter.Reset()
	out := s.Access(w.Pager, 1)
	if len(out) != 10 {
		t.Fatalf("Access returned %d tuples, want 10", len(out))
	}
	cost1 := w.Meter.Milliseconds()
	if cost1 == 0 {
		t.Fatal("recompute charged nothing")
	}
	// Updates are free, and every access costs the same.
	s.OnUpdate(w.Pager, moveTuple(t, w, 15, 15, 99))
	w.Pager.BeginOp()
	w.Meter.Reset()
	out = s.Access(w.Pager, 1)
	if len(out) != 9 {
		t.Fatalf("after move-out, Access returned %d, want 9", len(out))
	}
}

func TestCacheInvalidateLifecycle(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p1Def(w, 1, 10, 19))
	m.Define(p2Def(w, 2, 50, 69))
	store := cache.NewStore(w.Pager.Disk())
	s := NewCacheInvalidate(m, store)
	w.Pager.SetCharging(false)
	s.Prepare(w.Pager)
	w.Pager.BeginOp()
	w.Pager.SetCharging(true)

	// Warm access: exactly the result pages are read (T2), nothing else.
	w.Meter.Reset()
	out := s.Access(w.Pager, 1)
	if len(out) != 10 {
		t.Fatalf("Access returned %d, want 10", len(out))
	}
	w.Pager.BeginOp()
	c := w.Meter.Snapshot()
	wantReads := int64(store.MustEntry(1).Pages())
	if c.PageReads != wantReads || c.PageWrites != 0 || c.Screens != 0 {
		t.Fatalf("warm access charged %v, want %d reads only", c, wantReads)
	}

	// An in-band update invalidates procedure 1 only.
	w.Meter.Reset()
	s.OnUpdate(w.Pager, moveTuple(t, w, 12, 12, 99))
	if got := w.Meter.Snapshot().Invalidations; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	if store.MustEntry(1).Valid() {
		t.Fatal("entry 1 still valid")
	}
	if !store.MustEntry(2).Valid() {
		t.Fatal("entry 2 spuriously invalidated")
	}

	// Cold access: recompute (plan screens + scan I/O) plus write-back.
	w.Meter.Reset()
	out = s.Access(w.Pager, 1)
	w.Pager.BeginOp()
	if len(out) != 9 {
		t.Fatalf("cold access returned %d, want 9", len(out))
	}
	c = w.Meter.Snapshot()
	if c.Screens == 0 || c.PageWrites == 0 {
		t.Fatalf("cold access should recompute and refresh, charged %v", c)
	}
	if !store.MustEntry(1).Valid() {
		t.Fatal("entry 1 not revalidated")
	}
}

func TestCacheInvalidateFalseInvalidation(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p2Def(w, 2, 50, 69))
	store := cache.NewStore(w.Pager.Disk())
	s := NewCacheInvalidate(m, store)
	w.Pager.SetCharging(false)
	s.Prepare(w.Pager)
	w.Pager.BeginOp()
	w.Pager.SetCharging(true)
	before := s.Access(w.Pager, 2)

	// tid 115 -> skey 56: enters the C_f band but fails C_f2 (p2 = 5), so
	// the result does not change — yet the i-lock on the band breaks: a
	// false invalidation.
	s.OnUpdate(w.Pager, moveTuple(t, w, 115, 115, 56))
	if store.MustEntry(2).Valid() {
		t.Fatal("false invalidation did not mark the entry invalid")
	}
	after := s.Access(w.Pager, 2)
	if len(after) != len(before) {
		t.Fatalf("result changed from %d to %d tuples; should be identical", len(before), len(after))
	}
}

func TestCacheInvalidateKeyLocksCoverJoinReads(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	m.Define(p2Def(w, 2, 50, 69))
	store := cache.NewStore(w.Pager.Disk())
	s := NewCacheInvalidate(m, store)
	w.Pager.SetCharging(false)
	s.Prepare(w.Pager)
	w.Pager.SetCharging(true)
	// The plan probed R2 keys a = 10..29 (20 distinct) and scanned one R1
	// band: 21 locks.
	if got := s.Locks().HoldCount(2); got != 21 {
		t.Fatalf("HoldCount = %d, want 21 (1 range + 20 distinct keys)", got)
	}
}

// stubMaint counts maintainer calls.
type stubMaint struct {
	prepared int
	applied  int
}

func (s *stubMaint) Name() string           { return "stub" }
func (s *stubMaint) Prepare(*storage.Pager) { s.prepared++ }
func (s *stubMaint) Apply(_ *storage.Pager, _ *relation.Relation, ins, del [][]byte) {
	s.applied += len(ins) + len(del)
}

func TestUpdateCacheDelegates(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	m := NewManager()
	d := p1Def(w, 1, 10, 19)
	m.Define(d)
	store := cache.NewStore(w.Pager.Disk())
	entry := store.Define(1, d.ResultWidth())
	keys, recs := query.Materialize(d.Plan, d.ResultKey, &query.Ctx{Meter: w.Meter, Pager: w.Pager})
	entry.Replace(w.Pager, keys, recs)
	entry.MarkValid(w.Pager)

	stub := &stubMaint{}
	s := NewUpdateCache(m, store, stub)
	s.Prepare(w.Pager)
	if stub.prepared != 1 {
		t.Fatal("Prepare not delegated")
	}
	if s.Name() != "Update Cache (stub)" {
		t.Fatalf("Name = %q", s.Name())
	}
	w.Pager.BeginOp()
	w.Meter.Reset()
	out := s.Access(w.Pager, 1)
	if len(out) != 10 {
		t.Fatalf("Access returned %d", len(out))
	}
	// Pure cached read.
	c := w.Meter.Snapshot()
	if c.Screens != 0 || c.PageWrites != 0 {
		t.Fatalf("cached access charged %v", c)
	}
	s.OnUpdate(w.Pager, Delta{Rel: w.R1, Inserted: [][]byte{w.R1Tuple(1, 2, 3)}, Deleted: [][]byte{w.R1Tuple(1, 5, 3)}})
	if stub.applied != 2 {
		t.Fatalf("Apply saw %d tuples, want 2", stub.applied)
	}
}
