package proc

import (
	"sort"
	"sync"

	"dbproc/internal/cache"
	"dbproc/internal/ilock"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/query"
	"dbproc/internal/storage"
)

// Adaptive decides per procedure whether caching its result pays — the
// question the paper's section 8 raises via Sellis's work and leaves open.
// Each procedure runs in one of two modes:
//
//   - caching: behave exactly like Cache and Invalidate (serve the cache
//     while valid, refresh on a cold access, record invalidations at
//     C_inval per conflicting update);
//   - bypass: keep no cached value and hold no i-locks — every access
//     recomputes, but there is no write-back and no invalidation cost.
//
// A procedure whose recent accesses were almost always cold (the C&I
// plateau regime, where caching costs strictly more than recomputing)
// drops to bypass; a bypassed procedure periodically retries caching so it
// can recover when the update rate falls. The paper notes C&I "does not
// degrade significantly if the system makes a mistake" — Adaptive removes
// even that residual degradation (the wasted write-backs and, with
// expensive invalidation, the whole T3 term).
//
// The states map is frozen after Prepare; each procedure's state is
// mutated only under its per-state mutex, which also serializes accesses
// and update fan-outs touching the same procedure's (unversioned) cached
// file in snapshot mode — the Adaptive counterpart of C&I's entry access
// mutex (docs/MVCC.md).
type Adaptive struct {
	mgr    *Manager
	store  *cache.Store
	locks  *ilock.Manager
	tracer *obs.Tracer
	ledger *cache.Ledger

	// Window is the number of accesses per mode evaluation (default 4).
	Window int
	// ColdThreshold is the cold-access fraction above which a procedure
	// drops to bypass (default 0.9, near the plateau crossover).
	ColdThreshold float64
	// ProbeEvery is the number of bypassed accesses before caching is
	// retried (default 16).
	ProbeEvery int
	// BypassAfterInvalidations drops a procedure to bypass as soon as this
	// many invalidations arrive without an intervening access (default 8):
	// with expensive invalidation recording, waiting for the next access
	// to notice the churn wastes a C_inval per conflicting update.
	BypassAfterInvalidations int

	states map[int]*adaptiveState
}

type adaptiveState struct {
	// mu serializes this procedure's accesses and update fan-outs: mode
	// state mutation, entry-file rewrites and reads of the (unversioned)
	// cached file all happen under it in snapshot mode, replacing the
	// engine entry locks that serialized them under 2PL. Lock order is
	// st.mu before the entry's internal mutex, in both directions
	// (docs/MVCC.md).
	mu          sync.Mutex
	bypass      bool
	accesses    int
	cold        int
	sinceBypass int
	// backoff is the current probe interval; it doubles (up to 16x the
	// configured ProbeEvery) each time a caching retry immediately fails,
	// and resets when a retry sticks, so procedures under sustained churn
	// spend almost all their time in the cheap bypass mode.
	backoff int
	// stint counts accesses since caching (re)started and retried marks
	// whether the current caching period came from a bypass retry, to
	// detect immediately-failed retries.
	stint   int
	retried bool
	// invalSinceAccess counts invalidations with no intervening access.
	invalSinceAccess int
}

// NewAdaptive builds the strategy with its own cache store and lock table.
func NewAdaptive(mgr *Manager, store *cache.Store) *Adaptive {
	return &Adaptive{
		mgr:                      mgr,
		store:                    store,
		locks:                    ilock.NewManager(),
		Window:                   4,
		ColdThreshold:            0.9,
		ProbeEvery:               16,
		BypassAfterInvalidations: 8,
		states:                   make(map[int]*adaptiveState),
	}
}

// Name implements Strategy.
func (s *Adaptive) Name() string { return "Adaptive Caching" }

// CacheStore exposes the strategy's cache store (telemetry observers
// attach here).
func (s *Adaptive) CacheStore() *cache.Store { return s.store }

// SetTracer attaches a tracer; accesses then tag the enclosing op span
// with the mode taken (hit, cold, or bypass).
func (s *Adaptive) SetTracer(t *obs.Tracer) { s.tracer = t }

// SetLedger attaches a cache-efficacy ledger; accesses then record
// computed/hit/bypass events carrying their meter deltas.
func (s *Adaptive) SetLedger(l *cache.Ledger) { s.ledger = l }

// Prepare implements Strategy: start every procedure in caching mode with
// a warm cache, like Cache and Invalidate.
func (s *Adaptive) Prepare(pg *storage.Pager) {
	for _, id := range s.mgr.IDs() {
		d := s.mgr.MustGet(id)
		s.store.Define(cache.ID(id), d.ResultWidth())
		s.refresh(pg, d)
		s.states[id] = &adaptiveState{backoff: s.ProbeEvery}
	}
}

func (s *Adaptive) refresh(pg *storage.Pager, d *Definition) uint64 {
	owner := ilock.Owner(d.ID)
	sink := &lockSink{}
	keys, recs := query.Materialize(d.Plan, d.ResultKey, &query.Ctx{Meter: pg.Meter(), Pager: pg, Locks: sink})
	s.locks.ReplaceOwner(owner, sink.refs)
	e := s.store.MustEntry(cache.ID(d.ID))
	if snap, ok := pg.Snapshot(); ok {
		e.ReplaceAt(pg, keys, recs, snap)
	} else {
		e.Replace(pg, keys, recs)
	}
	if s.ledger == nil {
		return 0
	}
	return cache.ResultDigest(keys, recs)
}

// Access implements Strategy.
func (s *Adaptive) Access(pg *storage.Pager, id int) [][]byte {
	m := pg.Meter()
	var before metric.Counters
	if s.ledger != nil {
		before = m.Snapshot()
	}
	out, kind, digest := s.access(pg, id)
	if s.ledger != nil {
		// Flush so deferred page-write charges land in this access's
		// delta (idempotent; the op-level flush finds the frames clean).
		pg.Flush()
		s.ledger.Record(cache.LedgerEvent{
			Entry:   id,
			Kind:    kind,
			Op:      pg.OpToken(),
			Session: pg.Session(),
			CostMs:  m.Since(before).Milliseconds(m.Costs()),
			Digest:  digest,
		})
	}
	return out
}

func (s *Adaptive) access(pg *storage.Pager, id int) ([][]byte, string, uint64) {
	d := s.mgr.MustGet(id)
	st := s.states[id]
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.bypass {
		st.sinceBypass++
		if st.sinceBypass < st.backoff {
			// Plain recomputation; no cache write, no locks.
			s.tracer.Current().Set("cache", "bypass")
			pg.BeginRecompute()
			out := query.Run(d.Plan, &query.Ctx{Meter: pg.Meter(), Pager: pg})
			pg.EndRecompute()
			return out, cache.KindBypass, 0
		}
		// Retry caching.
		st.bypass = false
		st.retried = true
		st.accesses, st.cold, st.sinceBypass, st.stint = 0, 0, 0, 0
		s.tracer.Current().Set("cache", "retry")
		pg.BeginRecompute()
		digest := s.refresh(pg, d)
		pg.EndRecompute()
		return s.readCache(pg, id), cache.KindComputed, digest
	}

	e := s.store.MustEntry(cache.ID(id))
	st.accesses++
	st.stint++
	st.invalSinceAccess = 0
	kind := cache.KindHit
	var digest uint64
	var out [][]byte
	served := false
	snap, hasSnap := pg.Snapshot()
	var usable bool
	if hasSnap {
		usable = e.UsableAt(snap)
	} else {
		usable = e.Valid()
	}
	if !usable {
		st.cold++
		s.tracer.Current().Set("cache", "cold")
		pg.BeginRecompute()
		if hasSnap && e.ComputedAt() > snap {
			// The installed value postdates this reader's snapshot:
			// recompute at the snapshot, serve only this session, leave the
			// newer shared value and its i-locks alone (docs/MVCC.md).
			var keys []uint64
			var recs [][]byte
			keys, recs = query.Materialize(d.Plan, d.ResultKey, &query.Ctx{Meter: pg.Meter(), Pager: pg, Locks: nil})
			for _, rec := range recs {
				out = append(out, append([]byte(nil), rec...))
			}
			digest = cache.ResultDigest(keys, recs)
			served = true
		} else {
			digest = s.refresh(pg, d)
		}
		pg.EndRecompute()
		kind = cache.KindComputed
	} else {
		s.tracer.Current().Set("cache", "hit")
	}
	if !served {
		out = s.readCache(pg, id)
	}
	if st.accesses >= s.Window {
		if float64(st.cold) > s.ColdThreshold*float64(st.accesses) {
			// Caching is not paying: drop the cached value and its locks.
			st.bypass = true
			st.sinceBypass = 0
			if st.retried && st.stint <= s.Window {
				// The retry failed immediately: back off harder.
				st.backoff *= 2
				if max := 16 * s.ProbeEvery; st.backoff > max {
					st.backoff = max
				}
			} else {
				st.backoff = s.ProbeEvery
			}
			s.locks.Release(ilock.Owner(id))
		} else {
			st.backoff = s.ProbeEvery
			st.retried = false
		}
		st.accesses, st.cold = 0, 0
	}
	return out, kind, digest
}

func (s *Adaptive) readCache(pg *storage.Pager, id int) [][]byte {
	var out [][]byte
	s.store.MustEntry(cache.ID(id)).ReadAll(pg, func(_ uint64, rec []byte) bool {
		out = append(out, append([]byte(nil), rec...))
		return true
	})
	return out
}

// OnUpdate implements Strategy: invalidate conflicting cached procedures,
// exactly as Cache and Invalidate does. Bypassed procedures hold no locks,
// so they cost nothing here. Each procedure's state mutates under its
// per-state mutex, which snapshot-mode accesses also hold.
func (s *Adaptive) OnUpdate(pg *storage.Pager, dl Delta) {
	rel := dl.Rel.Schema().Name()
	field := dl.Rel.KeyField()
	sch := dl.Rel.Schema()
	hit := make(map[ilock.Owner]struct{})
	for _, tup := range dl.Deleted {
		s.locks.ConflictSet(rel, sch.Get(tup, field), hit)
	}
	for _, tup := range dl.Inserted {
		s.locks.ConflictSet(rel, sch.Get(tup, field), hit)
	}
	// Sorted fan-out: map order must not leak into the ledger's event
	// sequence (docs/DIAGNOSIS.md byte-identity contract).
	owners := make([]int, 0, len(hit))
	for owner := range hit {
		owners = append(owners, int(owner))
	}
	sort.Ints(owners)
	for _, owner := range owners {
		st := s.states[int(owner)]
		st.mu.Lock()
		s.store.MustEntry(cache.ID(owner)).Invalidate(pg)
		st.invalSinceAccess++
		if st.invalSinceAccess >= s.BypassAfterInvalidations {
			// The object churns faster than it is read: stop protecting
			// it. The next access recomputes; backoff as for a failed
			// caching stint.
			st.bypass = true
			st.sinceBypass = 0
			st.invalSinceAccess = 0
			if st.retried && st.stint <= s.Window {
				st.backoff *= 2
				if max := 16 * s.ProbeEvery; st.backoff > max {
					st.backoff = max
				}
			} else {
				st.backoff = s.ProbeEvery
			}
			s.locks.Release(ilock.Owner(owner))
		}
		st.mu.Unlock()
	}
}

// BypassedCount reports how many procedures are currently in bypass mode
// (for tests and diagnostics).
func (s *Adaptive) BypassedCount() int {
	n := 0
	for _, st := range s.states {
		st.mu.Lock()
		if st.bypass {
			n++
		}
		st.mu.Unlock()
	}
	return n
}
