package proc

import (
	"sort"
	"sync"
	"sync/atomic"

	"dbproc/internal/cache"
	"dbproc/internal/ilock"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/query"
	"dbproc/internal/storage"
)

// CacheInvalidate serves cached procedure results while they are valid
// (cost T2 = one read of the result pages) and recomputes-and-refreshes on
// access after an invalidating update (cost T1 = plan execution plus a
// read-modify-write of the result pages). Rule indexing sets i-locks on
// everything the plan reads — the B-tree interval of the R1 scan and each
// hash key probed — and a conflicting update invalidates the owning entry
// at C_inval per (procedure, update transaction), the model's T3.
type CacheInvalidate struct {
	mgr    *Manager
	store  *cache.Store
	locks  *ilock.Manager
	coarse bool
	tracer *obs.Tracer
	ledger *cache.Ledger

	accesses     atomic.Int64
	coldAccesses atomic.Int64

	// entryMu serializes snapshot-mode access to each entry's (unversioned)
	// result file: refreshes rewrite it in place at query time, so reads
	// and rewrites of one entry exclude each other. Accesses to different
	// procedures, and readers vs. updates, never meet here (docs/MVCC.md).
	entryMu sync.Map // proc id -> *sync.Mutex
}

func (s *CacheInvalidate) entryLock(id int) *sync.Mutex {
	if v, ok := s.entryMu.Load(id); ok {
		return v.(*sync.Mutex)
	}
	v, _ := s.entryMu.LoadOrStore(id, &sync.Mutex{})
	return v.(*sync.Mutex)
}

// SetTracer attaches a tracer; accesses then tag the enclosing op span
// with the cache state and record a ci.refresh child span on cold paths.
func (s *CacheInvalidate) SetTracer(t *obs.Tracer) { s.tracer = t }

// SetLedger attaches a cache-efficacy ledger; every access then records
// a computed (cold, with result digest) or hit event carrying its meter
// delta, so the ledger's event costs sum to the strategy's run total.
func (s *CacheInvalidate) SetLedger(l *cache.Ledger) { s.ledger = l }

// AccessStats reports how many procedure accesses the strategy served and
// how many found the cache invalid — the measured counterpart of the
// model's IP.
func (s *CacheInvalidate) AccessStats() (accesses, cold int) {
	return int(s.accesses.Load()), int(s.coldAccesses.Load())
}

// SetCoarseLocks switches invalidation to relation granularity: any update
// to a relation a procedure read invalidates the procedure, without
// checking intervals or keys. This is what a system without rule indexing
// must do; it exists for the ablation experiment quantifying what i-lock
// precision is worth.
func (s *CacheInvalidate) SetCoarseLocks(on bool) { s.coarse = on }

// NewCacheInvalidate builds the strategy with its own cache store and lock
// table.
func NewCacheInvalidate(mgr *Manager, store *cache.Store) *CacheInvalidate {
	return &CacheInvalidate{
		mgr:   mgr,
		store: store,
		locks: ilock.NewManager(),
	}
}

// Name implements Strategy.
func (s *CacheInvalidate) Name() string { return "Cache and Invalidate" }

// CacheStore exposes the strategy's cache store (telemetry observers
// attach here).
func (s *CacheInvalidate) CacheStore() *cache.Store { return s.store }

// Prepare implements Strategy: define and warm every cache entry, setting
// its i-locks. Run with charging disabled.
func (s *CacheInvalidate) Prepare(pg *storage.Pager) {
	for _, id := range s.mgr.IDs() {
		s.Adopt(pg, id)
	}
}

// Adopt brings one procedure (defined after Prepare, e.g. interactively)
// under the strategy: its cache entry is created, warmed and i-locked.
// Adopting an already-adopted procedure is a no-op.
func (s *CacheInvalidate) Adopt(pg *storage.Pager, id int) {
	if s.store.Entry(cache.ID(id)) != nil {
		return
	}
	d := s.mgr.MustGet(id)
	s.store.Define(cache.ID(id), d.ResultWidth())
	s.refresh(pg, d)
}

// lockSink collects what a plan execution reads as i-lock refs for one
// owner; the caller installs them afterwards with ReplaceOwner, so the old
// footprint stays in place for the whole recompute and conflict probes
// never find a window with no locks.
type lockSink struct {
	refs []ilock.Ref
	// seenKeys dedupes key locks within one computation: probing the same
	// hash key twice needs one lock.
	seenKeys map[string]map[int64]struct{}
}

func (ls *lockSink) ReadRange(rel string, lo, hi int64) {
	ls.refs = append(ls.refs, ilock.Ref{Rel: rel, Lo: lo, Hi: hi})
}

func (ls *lockSink) ReadKey(rel string, key int64) {
	if ls.seenKeys == nil {
		ls.seenKeys = make(map[string]map[int64]struct{})
	}
	m := ls.seenKeys[rel]
	if m == nil {
		m = make(map[int64]struct{})
		ls.seenKeys[rel] = m
	}
	if _, dup := m[key]; dup {
		return
	}
	m[key] = struct{}{}
	ls.refs = append(ls.refs, ilock.Ref{Rel: rel, Lo: key, Hi: key, IsKey: true})
}

// refresh recomputes d's value, refreshes the cache entry, and swaps the
// owner's i-locks to cover everything read (adds before removes, so the
// footprint never transiently disappears). In snapshot mode the install
// goes through ReplaceAt, which applies the install guard; callers hold
// the entry's access mutex, so the recompute/replace sequence is
// single-flight. It returns the result digest when a ledger is attached
// (0 otherwise).
func (s *CacheInvalidate) refresh(pg *storage.Pager, d *Definition) uint64 {
	owner := ilock.Owner(d.ID)
	sink := &lockSink{}
	keys, recs := query.Materialize(d.Plan, d.ResultKey, &query.Ctx{Meter: pg.Meter(), Pager: pg, Locks: sink})
	s.locks.ReplaceOwner(owner, sink.refs)
	e := s.store.MustEntry(cache.ID(d.ID))
	if snap, ok := pg.Snapshot(); ok {
		e.ReplaceAt(pg, keys, recs, snap)
	} else {
		e.Replace(pg, keys, recs)
	}
	if s.ledger == nil {
		return 0
	}
	return cache.ResultDigest(keys, recs)
}

// Access implements Strategy: serve the cache when usable at the
// session's snapshot, otherwise recompute. In snapshot mode the entry's
// access mutex serializes readers and refreshers of the same (unversioned)
// result file; when the cached value was installed at a newer stamp than
// this reader's snapshot, the reader recomputes at its own snapshot and
// serves itself without touching the shared file or the owner's i-locks
// (docs/MVCC.md). Without a snapshot this is exactly the validity-flag
// protocol.
func (s *CacheInvalidate) Access(pg *storage.Pager, id int) [][]byte {
	d := s.mgr.MustGet(id)
	e := s.store.MustEntry(cache.ID(id))
	s.accesses.Add(1)
	m := pg.Meter()
	var before metric.Counters
	if s.ledger != nil {
		before = m.Snapshot()
	}
	snap, hasSnap := pg.Snapshot()
	var mu *sync.Mutex
	if hasSnap {
		mu = s.entryLock(id)
		mu.Lock()
	}
	var digest uint64
	var out [][]byte
	served := false
	var cold bool
	if hasSnap {
		cold = !e.UsableAt(snap)
	} else {
		cold = !e.Valid()
	}
	if cold {
		s.coldAccesses.Add(1)
		s.tracer.Current().Set("cache", "cold")
		sp := s.tracer.Begin("ci.refresh")
		sp.Set("proc", id)
		pg.BeginRecompute()
		if hasSnap && e.ComputedAt() > snap {
			// The installed value postdates this reader's snapshot:
			// recompute at the snapshot and serve only this session, leaving
			// the newer shared value (and its i-locks) untouched.
			sp.Set("mode", "self")
			keys, recs := query.Materialize(d.Plan, d.ResultKey, &query.Ctx{Meter: pg.Meter(), Pager: pg, Locks: nil})
			for _, rec := range recs {
				out = append(out, append([]byte(nil), rec...))
			}
			digest = cache.ResultDigest(keys, recs)
			served = true
		} else {
			digest = s.refresh(pg, d)
		}
		pg.EndRecompute()
		s.tracer.End(sp)
	} else {
		s.tracer.Current().Set("cache", "hit")
	}
	if !served {
		e.ReadAll(pg, func(_ uint64, rec []byte) bool {
			out = append(out, append([]byte(nil), rec...))
			return true
		})
	}
	if mu != nil {
		mu.Unlock()
	}
	if s.ledger != nil {
		// Page writes are charged at flush time; flush now (idempotent —
		// the op-level flush then finds the frames clean) so the deferred
		// write charges land inside this access's delta.
		pg.Flush()
		ev := cache.LedgerEvent{
			Entry:   id,
			Op:      pg.OpToken(),
			Session: pg.Session(),
			CostMs:  m.Since(before).Milliseconds(m.Costs()),
		}
		if cold {
			ev.Kind, ev.Digest = cache.KindComputed, digest
		} else {
			ev.Kind = cache.KindHit
		}
		s.ledger.Record(ev)
	}
	return out
}

// OnUpdate implements Strategy: find every procedure whose i-locks the
// transaction's old or new tuple values conflict with and record one
// invalidation per procedure per transaction.
func (s *CacheInvalidate) OnUpdate(pg *storage.Pager, dl Delta) {
	if s.coarse {
		// Relation-granularity invalidation: every procedure read some
		// relation this update touched (in this system all procedures
		// read R1, and P2 procedures read R2/R3), so all are invalidated.
		for _, id := range s.mgr.IDs() {
			s.store.MustEntry(cache.ID(id)).Invalidate(pg)
		}
		return
	}
	rel := dl.Rel.Schema().Name()
	field := dl.Rel.KeyField()
	sch := dl.Rel.Schema()
	hit := make(map[ilock.Owner]struct{})
	for _, tup := range dl.Deleted {
		s.locks.ConflictSet(rel, sch.Get(tup, field), hit)
	}
	for _, tup := range dl.Inserted {
		s.locks.ConflictSet(rel, sch.Get(tup, field), hit)
	}
	// Invalidate in sorted order: the set's map order would otherwise
	// leak into the ledger's event sequence and break its byte-identity
	// contract (docs/DIAGNOSIS.md).
	owners := make([]int, 0, len(hit))
	for owner := range hit {
		owners = append(owners, int(owner))
	}
	sort.Ints(owners)
	for _, owner := range owners {
		s.store.MustEntry(cache.ID(owner)).Invalidate(pg)
	}
}

// Locks exposes the lock table (for tests and diagnostics).
func (s *CacheInvalidate) Locks() *ilock.Manager { return s.locks }
