package sim

import (
	"bytes"
	"testing"

	"dbproc/internal/costmodel"
)

// TestAblationsPreserveResults: every ablation changes only cost, never
// answers — the ablated system returns bitwise identical procedure values.
func TestAblationsPreserveResults(t *testing.T) {
	cases := map[string]Ablations{
		"naive dispatch": {NaiveReteDispatch: true},
		"no root pin":    {NoRootPin: true},
		"coarse locks":   {CoarseInvalidation: true},
	}
	strategyFor := map[string]costmodel.Strategy{
		"naive dispatch": costmodel.UpdateCacheRVM,
		"no root pin":    costmodel.AlwaysRecompute,
		"coarse locks":   costmodel.CacheInvalidate,
	}
	for name, abl := range cases {
		t.Run(name, func(t *testing.T) {
			s := strategyFor[name]
			base := Build(testConfig(costmodel.Model1, s))
			cfg := testConfig(costmodel.Model1, s)
			cfg.Ablations = abl
			ablated := Build(cfg)
			ids := base.ProcIDs()
			for round := 0; round < 5; round++ {
				base.Update()
				ablated.Update()
				for _, id := range []int{ids[0], ids[15]} {
					want := base.Access(id)
					got := ablated.Access(id)
					if len(got) != len(want) {
						t.Fatalf("round %d proc %d: %d vs %d tuples", round, id, len(got), len(want))
					}
					for i := range want {
						if !bytes.Equal(got[i], want[i]) {
							t.Fatalf("round %d proc %d tuple %d differs", round, id, i)
						}
					}
				}
			}
		})
	}
}

// TestAblationsCostMore: each ablation strictly raises the measured cost
// of the strategy it targets.
func TestAblationsCostMore(t *testing.T) {
	run := func(s costmodel.Strategy, abl Ablations) float64 {
		cfg := testConfig(costmodel.Model1, s)
		cfg.Params.K, cfg.Params.Q = 40, 40
		cfg.Ablations = abl
		return Run(cfg).TotalMs
	}
	if a, b := run(costmodel.UpdateCacheRVM, Ablations{}), run(costmodel.UpdateCacheRVM, Ablations{NaiveReteDispatch: true}); b <= a {
		t.Errorf("naive dispatch should cost more: %v vs %v", b, a)
	}
	if a, b := run(costmodel.AlwaysRecompute, Ablations{}), run(costmodel.AlwaysRecompute, Ablations{NoRootPin: true}); b <= a {
		t.Errorf("unpinned root should cost more: %v vs %v", b, a)
	}
	if a, b := run(costmodel.CacheInvalidate, Ablations{}), run(costmodel.CacheInvalidate, Ablations{CoarseInvalidation: true}); b <= a {
		t.Errorf("coarse locks should cost more: %v vs %v", b, a)
	}
}
