package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dbproc/internal/costmodel"
)

// differentialCases is the number of seeded randomized configurations the
// differential oracle sweeps. Each case draws its own parameter point, so
// widening this widens coverage of the (N, f, N1, N2, SF, Z, model,
// R2-update-mix) space.
const differentialCases = 50

// randomDifferentialConfig draws one valid, test-sized parameter point.
// Populations stay small enough that 50 cases x 4 worlds build in seconds,
// but every structural degree of freedom the strategies disagree on —
// band widths, sharing, R2 updates, both models, zero P1 or P2
// populations — is in range.
func randomDifferentialConfig(rng *rand.Rand, seed int64) Config {
	p := costmodel.Default()
	p.N = float64(400 + rng.Intn(2200))
	// Aim the C_f band at 1..40 tuples; F must stay in [0, 1].
	p.F = float64(1+rng.Intn(40)) / p.N
	p.F2 = []float64{0.0005, 0.005, 0.02, 0.1}[rng.Intn(4)]
	p.N1 = float64(rng.Intn(7))
	p.N2 = float64(rng.Intn(7))
	if p.N1+p.N2 == 0 {
		p.N1 = 1
	}
	p.L = float64(1 + rng.Intn(5))
	p.SF = []float64{0, 0.25, 0.5, 1}[rng.Intn(4)]
	p.Z = 0.05 + 0.9*rng.Float64()

	cfg := Config{
		Params: p,
		Model:  costmodel.Model1,
		Seed:   seed,
	}
	if rng.Intn(2) == 1 {
		cfg.Model = costmodel.Model2
	}
	if rng.Intn(3) == 0 {
		cfg.R2UpdateFraction = 0.3 + 0.5*rng.Float64()
	}
	return cfg
}

// tupleMultiset canonicalizes a query result for set comparison: the
// multiset of tuple byte-images, independent of delivery order.
func tupleMultiset(tuples [][]byte) map[string]int {
	m := make(map[string]int, len(tuples))
	for _, t := range tuples {
		m[string(t)]++
	}
	return m
}

// diffMultisets describes how got differs from want: tuples missing from
// got and tuples it invented, with multiplicities.
func diffMultisets(want, got map[string]int) string {
	var missing, extra []string
	for t, n := range want {
		if d := n - got[t]; d > 0 {
			missing = append(missing, fmt.Sprintf("%q x%d", t, d))
		}
	}
	for t, n := range got {
		if d := n - want[t]; d > 0 {
			extra = append(extra, fmt.Sprintf("%q x%d", t, d))
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	return fmt.Sprintf("missing %d tuple image(s) %v; extra %d tuple image(s) %v",
		len(missing), missing, len(extra), extra)
}

// TestDifferentialOracle drives Cache-and-Invalidate, Update Cache (AVM)
// and Update Cache (RVM) through identical randomized op sequences in
// differentialCases seeded configurations, and after every query op
// requires each strategy's tuple set to equal a fresh brute-force
// recompute (an Always Recompute world on the same base-table history) —
// the strategy-equivalence invariant the paper's comparison rests on.
//
// The check runs after every query, so the first divergence reported is
// the minimal op prefix that produces it; the failure message prints that
// prefix verbatim for replay.
func TestDifferentialOracle(t *testing.T) {
	cases := differentialCases
	if testing.Short() {
		cases = 10
	}
	tested := []costmodel.Strategy{
		costmodel.CacheInvalidate,
		costmodel.UpdateCacheAVM,
		costmodel.UpdateCacheRVM,
	}
	for c := 0; c < cases; c++ {
		c := c
		t.Run(fmt.Sprintf("case%02d", c), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			cfg := randomDifferentialConfig(rng, int64(c))

			// The oracle world and every strategy world share Config.Seed, so
			// their base relations and workload generators evolve in lockstep:
			// each externally driven Update draws the same tuples in every
			// world, and queries draw nothing.
			oracleCfg := cfg
			oracleCfg.Strategy = costmodel.AlwaysRecompute
			oracle := Build(oracleCfg)
			worlds := make([]*World, len(tested))
			for i, s := range tested {
				wc := cfg
				wc.Strategy = s
				worlds[i] = Build(wc)
			}

			ids := oracle.ProcIDs()
			var prefix []string
			nOps := 10 + rng.Intn(8)
			for op := 0; op < nOps; op++ {
				if rng.Intn(100) < 45 {
					prefix = append(prefix, "update()")
					oracle.Update()
					for _, w := range worlds {
						w.Update()
					}
					continue
				}
				id := ids[rng.Intn(len(ids))]
				prefix = append(prefix, fmt.Sprintf("access(%d)", id))
				want := tupleMultiset(oracle.Access(id))
				for i, w := range worlds {
					got := tupleMultiset(w.Access(id))
					if len(got) == len(want) {
						equal := true
						for tup, n := range want {
							if got[tup] != n {
								equal = false
								break
							}
						}
						if equal {
							continue
						}
					}
					t.Fatalf("config %+v\n%v diverged from fresh recompute at op %d: %s\nminimal diverging op prefix:\n  %s",
						cfg, tested[i], op, diffMultisets(want, got),
						strings.Join(prefix, "\n  "))
				}
			}
		})
	}
}
