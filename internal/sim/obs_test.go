package sim

import (
	"testing"

	"dbproc/internal/costmodel"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
)

// TestBreakdownReconcilesWithCounters is the observability invariant: the
// per-component breakdown must sum to the aggregate counters exactly, for
// every strategy, because the aggregate is defined as that sum.
func TestBreakdownReconcilesWithCounters(t *testing.T) {
	for _, s := range []costmodel.Strategy{
		costmodel.AlwaysRecompute, costmodel.CacheInvalidate,
		costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM,
	} {
		for _, m := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
			w := Build(testConfig(m, s))
			res := w.Run()
			if got := w.Meter().Breakdown().Total(); got != res.Counters {
				t.Errorf("%v/%v: breakdown total %+v != counters %+v", s, m, got, res.Counters)
			}
			if res.Counters.PageReads == 0 {
				t.Errorf("%v/%v: no page reads charged", s, m)
			}
		}
	}
}

// TestTracedRunRecordsSpans runs each strategy with tracing on and checks
// the span stream: one op span per workload operation, strategy-internal
// child spans, and span counter deltas that sum back to the totals for
// top-level spans.
func TestTracedRunRecordsSpans(t *testing.T) {
	for _, s := range []costmodel.Strategy{
		costmodel.AlwaysRecompute, costmodel.CacheInvalidate,
		costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM,
	} {
		tr := obs.NewTracer()
		cfg := testConfig(costmodel.Model2, s)
		cfg.Tracer = tr
		w := Build(cfg)
		res := w.Run()

		spans := tr.Spans()
		nOps := 0
		var opCounters metric.Counters
		for _, sp := range spans {
			if sp.Name == "op.update" || sp.Name == "op.query" {
				nOps++
				opCounters = opCounters.Add(sp.Counters)
			}
		}
		if want := res.Queries + res.Updates; nOps != want {
			t.Errorf("%v: %d op spans, want %d", s, nOps, want)
		}
		// Every charge lands inside some workload op (flush included), so
		// the op spans partition the totals.
		if opCounters != res.Counters {
			t.Errorf("%v: op span counters %+v != run counters %+v", s, opCounters, res.Counters)
		}

		child := map[string]int{}
		for _, sp := range spans {
			child[sp.Name]++
		}
		var want string
		switch s {
		case costmodel.AlwaysRecompute:
			want = "recompute.scan"
		case costmodel.CacheInvalidate:
			want = "ci.refresh"
		case costmodel.UpdateCacheAVM:
			want = "avm.route"
		case costmodel.UpdateCacheRVM:
			want = "rete.propagate"
		}
		if child[want] == 0 {
			t.Errorf("%v: no %q child spans recorded (have %v)", s, want, child)
		}

		// Parent links resolve within the stream.
		ids := map[int64]bool{}
		for _, sp := range spans {
			ids[sp.ID] = true
		}
		for _, sp := range spans {
			if sp.Parent != 0 && !ids[sp.Parent] {
				t.Errorf("%v: span %d has dangling parent %d", s, sp.ID, sp.Parent)
			}
		}
	}
}

// TestCacheStateAttrs checks that Cache-and-Invalidate op spans carry the
// hit/cold cache attribute and that cold spans agree with AccessStats.
func TestCacheStateAttrs(t *testing.T) {
	tr := obs.NewTracer()
	cfg := testConfig(costmodel.Model1, costmodel.CacheInvalidate)
	cfg.Tracer = tr
	w := Build(cfg)
	res := w.Run()

	hit, cold := 0, 0
	for _, sp := range tr.Spans() {
		if sp.Name != "op.query" {
			continue
		}
		switch sp.Attrs["cache"] {
		case "hit":
			hit++
		case "cold":
			cold++
		default:
			t.Fatalf("op.query span %d missing cache attr: %v", sp.ID, sp.Attrs)
		}
	}
	if hit+cold != res.Queries {
		t.Errorf("cache attrs on %d spans, want %d", hit+cold, res.Queries)
	}
	if res.ColdFraction != float64(cold)/float64(res.Queries) {
		t.Errorf("cold spans %d/%d disagree with ColdFraction %v", cold, res.Queries, res.ColdFraction)
	}
}

// TestUntracedRunIdentical verifies tracing is observation only: the same
// config with and without a tracer yields identical measurements.
func TestUntracedRunIdentical(t *testing.T) {
	for _, s := range []costmodel.Strategy{costmodel.CacheInvalidate, costmodel.UpdateCacheRVM} {
		plain := Run(testConfig(costmodel.Model2, s))
		cfg := testConfig(costmodel.Model2, s)
		cfg.Tracer = obs.NewTracer()
		traced := Build(cfg).Run()
		if plain.Counters != traced.Counters || plain.TotalMs != traced.TotalMs {
			t.Errorf("%v: traced run diverges: %+v vs %+v", s, plain.Counters, traced.Counters)
		}
	}
}
