// Package sim builds the paper's experimental database — R1 with a
// clustered B-tree on its selection attribute, hashed R2 and R3, N1
// selection procedures and N2 join procedures with sharing factor SF —
// and runs the paper's workload (k l-tuple update transactions randomly
// interleaved with q procedure accesses under Z-skewed locality) against
// any of the four strategies, measuring simulated milliseconds with the
// same C1/C2/C3/C_inval constants the analytic model uses.
//
// The analytic model (package costmodel) predicts these measurements; the
// experiments package compares the two.
//
// Each World is self-contained — it owns its pager, meter, tracer, and
// seeded RNGs, and touches no package-level mutable state — so distinct
// worlds may Build and Run concurrently (the parallel sweep engine's
// determinism contract, docs/PARALLEL.md). A single World is not safe
// for concurrent use.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"dbproc/internal/avm"
	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/ilock"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/proc"
	"dbproc/internal/query"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
	"dbproc/internal/workload"
)

// p2Max is the value range of R2's filter attribute; a C_f2 band has width
// F2 * p2Max.
const p2Max = 1 << 20

// Config selects one simulation run.
type Config struct {
	// Params carries the paper's parameters (Figure 2), reused verbatim
	// from the analytic model.
	Params costmodel.Params
	// Model selects 2-way (Model1) or 3-way (Model2) P2 procedures.
	Model costmodel.Model
	// Strategy is the query-processing strategy under test.
	Strategy costmodel.Strategy
	// Seed drives every random choice, so strategies can be compared on
	// identical workloads.
	Seed int64
	// Scenario names a hostile-workload scenario from the workload
	// catalog (docs/SCENARIOS.md). Empty runs the paper's polite
	// workload; an unknown name panics in Build. The scenario reshapes
	// WorkloadOps (phased k/q/skew, storm targeting, bulk L overrides,
	// adversarial update footprints, nested procedure calls) and, via
	// Schedule, the engine's per-session think-time scaling.
	Scenario string
	// R2UpdateFraction is the fraction of update transactions that modify
	// R2 (re-drawing the C_f2 attribute of l tuples) instead of R1. The
	// paper's model assumes 0 ("relations R2 and R3 are not modified");
	// nonzero values explore the section 8 question of relative update
	// frequency across relations, which the paper leaves unanalyzed.
	R2UpdateFraction float64
	// Adaptive replaces the configured Strategy with the per-procedure
	// adaptive cache/bypass strategy (the section 8 "whether to cache"
	// decision problem); Strategy is ignored and PredictedMs becomes the
	// min of the Cache-and-Invalidate and Always-Recompute predictions —
	// the envelope the adaptive strategy targets.
	Adaptive bool
	// Tracer, when non-nil, records a span per workload operation plus
	// strategy-internal child spans (recompute scans, CI refreshes, AVM
	// route/merge phases, Rete propagation). Nil disables tracing at the
	// cost of one nil check per instrumentation point.
	Tracer *obs.Tracer
	// Ledger, when non-nil, receives the cache-efficacy event stream
	// (docs/DIAGNOSIS.md): per-entry computed/hit/invalidated/maintained
	// transitions with their meter deltas, plus per-entry baseline
	// recompute costs measured against the initial base state. Ledger
	// events live entirely in the simulated-cost domain, so attaching
	// one never perturbs the run's counters. No-op for strategies
	// without cached state (Always Recompute).
	Ledger *cache.Ledger
	// Ablations disable individual design choices for the ablation
	// experiments.
	Ablations Ablations
}

// Ablations toggles off design choices the system normally relies on, to
// quantify what each is worth.
type Ablations struct {
	// NaiveReteDispatch makes the Rete root broadcast every token to every
	// t-const on its relation instead of rule-indexed dispatch.
	NaiveReteDispatch bool
	// NoRootPin charges B-tree descents for the root page read.
	NoRootPin bool
	// CoarseInvalidation makes Cache and Invalidate use relation-level
	// locks instead of i-lock intervals and keys.
	CoarseInvalidation bool
}

// Result reports one run's measurements.
type Result struct {
	Config  Config
	Queries int
	Updates int
	// TotalMs is the simulated cost of the whole workload; MsPerQuery is
	// TotalMs divided by the number of queries — the quantity the paper's
	// TOT formulas predict.
	TotalMs    float64
	MsPerQuery float64
	// PredictedMs is the analytic model's prediction for the same
	// parameters.
	PredictedMs float64
	// Counters itemizes the charged events.
	Counters metric.Counters
	// TuplesReturned counts result tuples delivered to queries.
	TuplesReturned int
	// ColdFraction is the measured fraction of Cache-and-Invalidate
	// accesses that found the cache invalid — the empirical counterpart of
	// the model's IP. NaN for other strategies.
	ColdFraction float64
}

// World is one fully built simulation instance. The meter and pager are
// the world's own sequential session (Build and the sequential Run use
// them); the concurrent engine instead gives each session a private
// meter/pager pair over the shared disk via SessionPager.
type World struct {
	cfg   Config
	costs metric.Costs
	meter *metric.Meter
	pager *storage.Pager

	r1, r2, r3 *relation.Relation
	// skey tracks each R1 tuple's current clustering value, so updates can
	// locate tuples without charged I/O; p2 does the same for R2's filter
	// attribute.
	skey []int64
	p2   []int64

	mgr    *proc.Manager
	specs  []*procSpec
	gen    *workload.Generator
	sched  *workload.Schedule // nil for the polite workload
	strat  proc.Strategy
	tracer *obs.Tracer

	// denseBand caches the densest i-lock interval — the skey range
	// covered by the most procedure bands — for adversarial updates.
	denseBand    [2]int64
	denseBandSet bool
}

// procSpec records how one procedure was generated.
type procSpec struct {
	id     int
	isP2   bool
	band   [2]int64 // C_f band on R1.skey
	p2Band [2]int64 // C_f2 band on R2.p2 (P2 only)
	shared bool     // reuses a P1 procedure's band (P2 only)
	def    *proc.Definition
}

// Build constructs the world for cfg: relations loaded, procedures
// defined, strategy prepared (uncharged), meter zeroed.
func Build(cfg Config) *World {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if cfg.Model != costmodel.Model1 && cfg.Model != costmodel.Model2 {
		panic("sim: bad model")
	}
	costs := metric.Costs{C1: p.C1, C2: p.C2, C3: p.C3, CInval: p.CInval}
	meter := metric.NewMeter(costs)
	pager := storage.NewPager(storage.NewDisk(int(p.B)), meter)
	pager.SetCharging(false)

	w := &World{cfg: cfg, costs: costs, meter: meter, pager: pager}
	w.loadRelations()
	w.generateProcs()
	w.buildStrategy()

	w.strat.Prepare(w.pager)

	// Attach tracing after Prepare so setup work records no spans. The
	// tracer is bound late because the meter it prices span deltas against
	// is created here.
	if w.tracer = cfg.Tracer; w.tracer != nil {
		w.tracer.Bind(meter)
		if st, ok := w.strat.(interface{ SetTracer(*obs.Tracer) }); ok {
			st.SetTracer(w.tracer)
		}
	}

	// Attach the efficacy ledger after Prepare so setup work records no
	// events, and measure each entry's from-scratch recompute baseline on
	// a throwaway meter (the world's counters stay untouched).
	if l := cfg.Ledger; l != nil {
		for _, id := range w.ProcIDs() {
			bm := metric.NewMeter(costs)
			bpg := storage.NewPager(pager.Disk(), bm)
			d := w.mgr.MustGet(id)
			query.Run(d.Plan, &query.Ctx{Meter: bm, Pager: bpg})
			l.SetBaseline(id, bm.Milliseconds())
		}
		if sl, ok := w.strat.(interface{ SetLedger(*cache.Ledger) }); ok {
			sl.SetLedger(l)
		}
		if cs := w.CacheStore(); cs != nil {
			cs.SetLedger(l)
		}
	}

	pager.BeginOp()
	pager.SetCharging(true)
	meter.Reset()
	return w
}

// SessionPager creates a fresh per-session pager over the world's shared
// disk, with its own zeroed meter (same cost constants) and the session
// tag set. A new session pager is in exactly the state Build leaves the
// world's own pager in — operation scope begun, charging on, meter zero —
// so a single session executing through it reproduces the sequential run
// byte for byte.
func (w *World) SessionPager(session int) *storage.Pager {
	m := metric.NewMeter(w.costs)
	pg := storage.NewPager(w.pager.Disk(), m)
	pg.SetSession(session)
	pg.BeginOp()
	return pg
}

// Disk exposes the world's shared disk.
func (w *World) Disk() *storage.Disk { return w.pager.Disk() }

func (w *World) loadRelations() {
	p := w.cfg.Params
	n := int(p.N)
	width := int(p.S)
	rng := rand.New(rand.NewSource(w.cfg.Seed))

	s1 := tuple.NewSchema("r1", width,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "skey"}, tuple.Field{Name: "a"})
	n2 := int(math.Max(1, p.FR2*p.N))
	n3 := int(math.Max(1, p.FR3*p.N))
	tuples := make([][]byte, n)
	w.skey = make([]int64, n)
	for i := range tuples {
		t := s1.New()
		s1.SetByName(t, "tid", int64(i))
		s1.SetByName(t, "skey", int64(i))
		s1.SetByName(t, "a", int64(rng.Intn(n2)))
		tuples[i] = t
		w.skey[i] = int64(i)
	}
	w.r1 = relation.BulkLoadBTree(w.pager, s1, "skey", "tid", int(p.D), tuples)
	if w.cfg.Ablations.NoRootPin {
		w.r1.Tree().SetRootPinned(false)
	}

	perPage := int(p.B / p.S)
	s2 := tuple.NewSchema("r2", width,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "b"},
		tuple.Field{Name: "c"}, tuple.Field{Name: "p2"})
	w.r2 = relation.NewHash(w.pager.Disk(), s2, "b", (n2+perPage-1)/perPage)
	w.p2 = make([]int64, n2)
	for j := 0; j < n2; j++ {
		t := s2.New()
		s2.SetByName(t, "tid", int64(j))
		s2.SetByName(t, "b", int64(j))
		s2.SetByName(t, "c", int64(rng.Intn(n3)))
		w.p2[j] = int64(rng.Intn(p2Max))
		s2.SetByName(t, "p2", w.p2[j])
		w.r2.Insert(w.pager, t)
	}

	s3 := tuple.NewSchema("r3", width,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "d"})
	w.r3 = relation.NewHash(w.pager.Disk(), s3, "d", (n3+perPage-1)/perPage)
	for j := 0; j < n3; j++ {
		t := s3.New()
		s3.SetByName(t, "tid", int64(j))
		s3.SetByName(t, "d", int64(j))
		w.r3.Insert(w.pager, t)
	}
}

// bandWidth returns the tuple count of a selectivity-f band.
func bandWidth(f, n float64) int64 {
	wd := int64(f*n + 0.5)
	if wd < 1 {
		wd = 1
	}
	return wd
}

func (w *World) generateProcs() {
	p := w.cfg.Params
	rng := rand.New(rand.NewSource(w.cfg.Seed + 1))
	n := int64(p.N)
	fw := bandWidth(p.F, p.N)
	f2w := int64(p.F2*p2Max + 0.5)
	if f2w < 1 {
		f2w = 1
	}

	w.mgr = proc.NewManager()
	pickBand := func(width int64) [2]int64 {
		start := int64(rng.Intn(int(n - width + 1)))
		return [2]int64{start, start + width - 1}
	}

	id := 0
	var p1Bands [][2]int64
	for i := 0; i < int(p.N1); i++ {
		spec := &procSpec{id: id, band: pickBand(fw)}
		spec.def = proc.NewDefinition(id, fmt.Sprintf("P1_%d", i),
			query.NewBTreeRangeScan(w.r1, spec.band[0], spec.band[1]), "skey", "tid")
		w.mgr.Define(spec.def)
		w.specs = append(w.specs, spec)
		p1Bands = append(p1Bands, spec.band)
		id++
	}

	nShared := int(p.SF*p.N2 + 0.5)
	if len(p1Bands) == 0 {
		nShared = 0 // nothing to share with
	}
	for i := 0; i < int(p.N2); i++ {
		spec := &procSpec{id: id, isP2: true}
		if i < nShared {
			spec.band = p1Bands[rng.Intn(len(p1Bands))]
			spec.shared = true
		} else {
			spec.band = pickBand(fw)
		}
		lo := int64(rng.Intn(p2Max - int(f2w) + 1))
		spec.p2Band = [2]int64{lo, lo + f2w - 1}
		spec.def = proc.NewDefinition(id, fmt.Sprintf("P2_%d", i),
			w.p2Plan(spec), "skey", "tid")
		w.mgr.Define(spec.def)
		w.specs = append(w.specs, spec)
		id++
	}

	w.gen = workload.New(w.cfg.Seed+2, p.Z, w.mgr.IDs())

	if name := w.cfg.Scenario; name != "" {
		sc, ok := workload.ByName(name)
		if !ok {
			panic(fmt.Sprintf("sim: unknown scenario %q", name))
		}
		w.sched = workload.BuildSchedule(sc, workload.Base{
			K: int(p.K + 0.5),
			Q: int(p.Q + 0.5),
			Z: p.Z,
			L: int(p.L + 0.5),
		})
	}
}

// Schedule returns the resolved scenario schedule, or nil for the polite
// workload. The concurrent engine reads it for per-session modifiers
// (slow-consumer think scaling).
func (w *World) Schedule() *workload.Schedule { return w.sched }

// p2Plan compiles the full (charged) plan of a P2 procedure: B-tree scan
// of the C_f band, hash-probe join to R2 [then R3 in model 2], and the
// C_f2 screen. In model 2 the R3 probe precedes the screen, matching the
// model's Y6 = y(fR3·N, fR3·b, f·N): all f·N joined tuples probe R3.
func (w *World) p2Plan(spec *procSpec) query.Plan {
	width := int(w.cfg.Params.S)
	var plan query.Plan = query.NewBTreeRangeScan(w.r1, spec.band[0], spec.band[1])
	plan = query.NewHashJoinProbe(plan, w.r2, "a", width)
	pred := query.Range{Field: "r2_p2", Lo: spec.p2Band[0], Hi: spec.p2Band[1]}
	if w.cfg.Model == costmodel.Model1 {
		return &query.Filter{Child: plan, Pred: pred}
	}
	plan = query.NewHashJoinProbe(plan, w.r3, "r2_c", width)
	return &query.Filter{Child: plan, Pred: pred}
}

// p2DeltaPlan compiles the maintenance (uncharged-screen) variant over a
// delta ValuesScan, for AVM.
func (w *World) p2DeltaPlan(spec *procSpec, vs *query.ValuesScan) query.Plan {
	width := int(w.cfg.Params.S)
	var plan query.Plan = query.NewHashJoinProbe(vs, w.r2, "a", width)
	pred := query.Range{Field: "r2_p2", Lo: spec.p2Band[0], Hi: spec.p2Band[1]}
	if w.cfg.Model == costmodel.Model1 {
		return &query.Refine{Child: plan, Pred: pred}
	}
	plan = query.NewHashJoinProbe(plan, w.r3, "r2_c", width)
	return &query.Refine{Child: plan, Pred: pred}
}

func (w *World) buildStrategy() {
	if w.cfg.Adaptive {
		w.strat = proc.NewAdaptive(w.mgr, cache.NewStore(w.pager.Disk()))
		return
	}
	switch w.cfg.Strategy {
	case costmodel.AlwaysRecompute:
		w.strat = proc.NewAlwaysRecompute(w.mgr)
	case costmodel.CacheInvalidate:
		ci := proc.NewCacheInvalidate(w.mgr, cache.NewStore(w.pager.Disk()))
		ci.SetCoarseLocks(w.cfg.Ablations.CoarseInvalidation)
		w.strat = ci
	case costmodel.UpdateCacheAVM:
		w.strat = w.buildAVM()
	case costmodel.UpdateCacheRVM:
		w.strat = w.buildRVM()
	default:
		panic("sim: unknown strategy")
	}
}

func (w *World) buildAVM() proc.Strategy {
	store := cache.NewStore(w.pager.Disk())
	// AVM mutates entry files only inside update epochs, so they stay
	// MVCC-versioned: maintenance publishes atomically with the base
	// relations at the update's stamp (docs/MVCC.md).
	store.SetMaintained()
	eng := avm.NewEngine(store, ilock.NewManager())
	for _, spec := range w.specs {
		spec := spec
		store.Define(cache.ID(spec.id), spec.def.ResultWidth())
		view := &avm.View{
			ID:       spec.id,
			FullPlan: spec.def.Plan,
			Key:      spec.def.ResultKey,
		}
		r1Src := avm.Source{Rel: w.r1, Attr: "skey", Band: spec.band}
		if spec.isP2 {
			r1Src.DeltaPlan = func(vs *query.ValuesScan) query.Plan { return w.p2DeltaPlan(spec, vs) }
			view.Sources = []avm.Source{
				r1Src,
				{
					Rel:  w.r2,
					Attr: "p2",
					Band: spec.p2Band,
					// An R2 delta joins back to the view's R1 band with a
					// nested loop over the band scan (R1 is clustered on
					// skey, not the join attribute).
					DeltaPlan: func(vs *query.ValuesScan) query.Plan { return w.p2R2DeltaPlan(spec, vs) },
				},
			}
		} else {
			// P1: rule indexing already restricted deltas to the band,
			// which is the whole predicate — "no extra cost".
			r1Src.DeltaPlan = func(vs *query.ValuesScan) query.Plan { return vs }
			view.Sources = []avm.Source{r1Src}
		}
		eng.Register(view)
	}
	return proc.NewUpdateCache(w.mgr, store, eng)
}

// p2R2DeltaPlan compiles the R2-side maintenance plan of a P2 procedure:
// restrict the R2 deltas to the C_f2 band, nested-loop join them to the
// view's R1 band (charged band scan), then probe R3 in model 2. Output
// tuples are byte-identical to the full plan's.
func (w *World) p2R2DeltaPlan(spec *procSpec, vs *query.ValuesScan) query.Plan {
	width := int(w.cfg.Params.S)
	refined := &query.Refine{Child: vs, Pred: query.Range{Field: "p2", Lo: spec.p2Band[0], Hi: spec.p2Band[1]}}
	var plan query.Plan = query.NewNestedLoopJoin(
		query.NewBTreeRangeScan(w.r1, spec.band[0], spec.band[1]),
		refined, "a", "b", "r2_", width)
	if w.cfg.Model == costmodel.Model2 {
		plan = query.NewHashJoinProbe(plan, w.r3, "r2_c", width)
	}
	return plan
}
