package sim

import (
	"bytes"
	"reflect"
	"testing"

	"dbproc/internal/costmodel"
	"dbproc/internal/obs"
)

// TestRunDeterminismFullResult is the byte-level half of the parallel
// sweep engine's determinism contract (docs/PARALLEL.md): two sim.Run
// invocations of the same Config must agree on the complete Result —
// every counter, cost, and tuple count — not just the headline numbers.
func TestRunDeterminismFullResult(t *testing.T) {
	for _, s := range costmodel.Strategies {
		cfg := testConfig(costmodel.Model2, s)
		a, b := Run(cfg), Run(cfg)
		// ColdFraction is NaN for non-C&I strategies and NaN != NaN; compare
		// its presence separately, then the rest of the struct exactly.
		if a.HasColdFraction() != b.HasColdFraction() {
			t.Errorf("%v: cold-fraction presence differs", s)
		}
		if !a.HasColdFraction() {
			a.ColdFraction, b.ColdFraction = 0, 0
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: identical configs produced different results:\n%+v\n%+v", s, a, b)
		}
	}
}

// TestRunDeterminismTraces extends the contract to traces: two runs of
// the same Config must emit byte-identical JSONL span streams, which is
// what lets parallel workers encode traces into private buffers and the
// reducer concatenate them without re-ordering risk.
func TestRunDeterminismTraces(t *testing.T) {
	trace := func() []byte {
		cfg := testConfig(costmodel.Model1, costmodel.UpdateCacheAVM)
		cfg.Tracer = obs.NewTracer()
		Build(cfg).Run()
		var records []any
		for _, sp := range cfg.Tracer.Records("run") {
			records = append(records, sp)
		}
		enc, err := obs.EncodeJSONL(records...)
		if err != nil {
			t.Fatalf("encoding trace: %v", err)
		}
		return enc
	}
	a, b := trace(), trace()
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical configs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}
