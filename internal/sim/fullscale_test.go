package sim

import (
	"testing"

	"dbproc/internal/costmodel"
)

// TestFullScaleModelAgreement runs the paper's exact default parameters
// (N = 100,000, 200 procedures) with a longer operation stream (k = q =
// 400, so the run reaches the steady state the closed forms describe) and
// requires the measured cost per query to land within ±35% of the analytic
// model for every strategy — the headline validation that the
// implementation and the formulas describe the same system.
//
// The known residual: the simulator measures Cache and Invalidate ~10-15%
// below the model, because the model evaluates the invalidation
// probability 1−(1−f)^(G·2l) at the MEAN inter-access gap G = X; the
// function is concave in G, so the expectation over random gaps is lower
// (Jensen's inequality). See EXPERIMENTS.md.
func TestFullScaleModelAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	p := costmodel.Default()
	p.K, p.Q = 400, 400
	for _, m := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
		for _, s := range costmodel.Strategies {
			res := Run(Config{Params: p, Model: m, Strategy: s, Seed: 1})
			ratio := res.MsPerQuery / res.PredictedMs
			if ratio < 0.65 || ratio > 1.35 {
				t.Errorf("%v %v: measured %.0f ms/query vs predicted %.0f (ratio %.2f)",
					m, s, res.MsPerQuery, res.PredictedMs, ratio)
			}
		}
	}
}
