package sim

import (
	"math"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/proc"
	"dbproc/internal/rete"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// buildRVM wires the Rete network of the paper's Figures 3 (model 1) and
// 16 (model 2):
//
//   - each P1 procedure is root → t-const(C_f) → α-memory, where the
//     α-memory IS the procedure's cached value;
//   - each P2 procedure joins a left α-memory for C_f(R1) against a right
//     memory — root → t-const(C_f2) → α(σR2) in model 1; in model 2 that α
//     joins a network-wide shared α(R3) into the right β-memory of
//     σ(R2) ⋈ R3 — and the join result feeds the β-memory that is the
//     procedure's cached value;
//   - a shared P2 procedure's left input is the α-memory of the P1
//     procedure with the same C_f band, so the network screens and
//     refreshes that subexpression once (the sharing the SF parameter
//     controls).
//
// The whole network is fed through its root: Prepare submits every R3, R2
// and R1 tuple as a + token (uncharged), and the workload's update deltas
// arrive the same way — including R2 updates, which right-activate the
// join nodes.
func (w *World) buildRVM() proc.Strategy {
	p := w.cfg.Params
	width := int(p.S)
	store := cache.NewStore(w.pager.Disk())
	// Rete propagation rewrites entry files only inside update epochs, so
	// they stay MVCC-versioned like AVM's (docs/MVCC.md).
	store.SetMaintained()
	net := rete.NewNetwork(w.pager.Disk())
	net.SetNaiveDispatch(w.cfg.Ablations.NaiveReteDispatch)
	s1, s2, s3 := w.r1.Schema(), w.r2.Schema(), w.r3.Schema()

	r1Key := func(tup []byte) uint64 {
		return tuple.ClusterKey(s1.GetByName(tup, "skey"), s1.GetByName(tup, "tid"))
	}

	// Model 2 only: one α-memory of all of R3, keyed by the join attribute
	// d, shared by every P2 procedure's right-side join.
	var alphaR3 *rete.Memory
	if w.cfg.Model == costmodel.Model2 && p.N2 > 0 {
		tcR3 := net.TConst(s3, "d", 0, math.MaxInt32)
		alphaR3 = net.NewMemory(s3, nil, func(tup []byte) uint64 {
			return tuple.ClusterKey(s3.GetByName(tup, "d"), s3.GetByName(tup, "tid"))
		})
		tcR3.Attach(alphaR3)
	}

	// Left α-memories available for sharing, by C_f band.
	alphaByBand := map[[2]int64]*rete.Memory{}
	var entries []*cache.Entry

	for _, spec := range w.specs {
		entry := store.Define(cache.ID(spec.id), spec.def.ResultWidth())
		entries = append(entries, entry)
		if !spec.isP2 {
			tc := net.TConst(s1, "skey", spec.band[0], spec.band[1])
			mem := net.NewMemory(s1, entry.File(), r1Key)
			tc.Attach(mem)
			if _, taken := alphaByBand[spec.band]; !taken {
				alphaByBand[spec.band] = mem
			}
			continue
		}

		// Left input: shared α if available, else a private t-const + α.
		left := alphaByBand[spec.band]
		if !spec.shared || left == nil {
			tc := net.TConst(s1, "skey", spec.band[0], spec.band[1])
			left = net.NewMemory(s1, nil, r1Key)
			tc.Attach(left)
		}

		// Right input: t-const(C_f2) → α(σR2); in model 2 that α joins the
		// shared α(R3) into a β clustered by the outer join attribute b.
		tc2 := net.TConst(s2, "p2", spec.p2Band[0], spec.p2Band[1])
		var right *rete.Memory
		if w.cfg.Model == costmodel.Model1 {
			right = net.NewMemory(s2, nil, func(tup []byte) uint64 {
				return tuple.ClusterKey(s2.GetByName(tup, "b"), s2.GetByName(tup, "tid"))
			})
			tc2.Attach(right)
		} else {
			alphaR2 := net.NewMemory(s2, nil, func(tup []byte) uint64 {
				return tuple.ClusterKey(s2.GetByName(tup, "c"), s2.GetByName(tup, "tid"))
			})
			tc2.Attach(alphaR2)
			and23 := net.NewAndNode(alphaR2, alphaR3, "c", "d", "r3_", width)
			right = net.NewMemory(and23.Schema(), nil, func(tup []byte) uint64 {
				sch := and23.Schema()
				return tuple.ClusterKey(sch.GetByName(tup, "b"), sch.GetByName(tup, "tid"))
			})
			and23.Attach(right)
		}

		and := net.NewAndNode(left, right, "a", "b", "r2_", width)
		beta := net.NewMemory(and.Schema(), entry.File(), func(tup []byte) uint64 {
			sch := and.Schema()
			return tuple.ClusterKey(sch.GetByName(tup, "skey"), sch.GetByName(tup, "tid"))
		})
		and.Attach(beta)
	}

	// Prepare loads the entire database through the network root, bottom
	// relation first so joins find their partners; then marks every
	// procedure's cache entry valid. The caller runs it uncharged.
	prepare := func(pg *storage.Pager) {
		w.r3.Hash().ScanAll(pg, func(rec []byte) bool {
			net.Submit(pg, "r3", rete.Token{Tag: rete.Plus, Tuple: append([]byte(nil), rec...)})
			return true
		})
		w.r2.Hash().ScanAll(pg, func(rec []byte) bool {
			net.Submit(pg, "r2", rete.Token{Tag: rete.Plus, Tuple: append([]byte(nil), rec...)})
			return true
		})
		w.r1.Tree().ScanAll(pg, func(rec []byte) bool {
			net.Submit(pg, "r1", rete.Token{Tag: rete.Plus, Tuple: append([]byte(nil), rec...)})
			return true
		})
		for _, e := range entries {
			e.MarkValid(pg)
		}
	}
	return proc.NewUpdateCache(w.mgr, store, rete.NewEngine(net, prepare))
}
