package sim

import (
	"fmt"
	"math"

	"dbproc/internal/costmodel"
	"dbproc/internal/metric"
	"dbproc/internal/proc"
	"dbproc/internal/tuple"
	"dbproc/internal/workload"
)

// HasColdFraction reports whether ColdFraction carries a measurement;
// only Cache and Invalidate keeps the statistic, so it is NaN — and this
// returns false — for every other strategy.
func (r Result) HasColdFraction() bool { return !math.IsNaN(r.ColdFraction) }

// ColdFractionString renders the cold fraction for human-readable output:
// "n/a" when the strategy records none, so the NaN sentinel never leaks
// into reports.
func (r Result) ColdFractionString() string {
	if !r.HasColdFraction() {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", r.ColdFraction)
}

// Run builds the world for cfg and executes the workload, returning the
// measured and predicted cost per query.
func Run(cfg Config) Result {
	return Build(cfg).Run()
}

// Run executes the configured workload once. The world is consumed: run a
// fresh Build for another measurement.
func (w *World) Run() Result {
	p := w.cfg.Params
	k, q := int(p.K+0.5), int(p.Q+0.5)
	ops := w.gen.Sequence(k, q)

	res := Result{Config: w.cfg}
	for _, op := range ops {
		w.pager.BeginOp()
		switch op.Kind {
		case workload.Update:
			sp := w.tracer.Begin("op.update")
			delta := w.baseUpdate()
			sp.Set("rel", delta.Rel.Schema().Name())
			sp.Set("tuples", len(delta.Inserted)+len(delta.Deleted))
			w.strat.OnUpdate(delta)
			res.Updates++
			// Flush inside the span so deferred page writes are priced into
			// the operation that dirtied them.
			w.pager.Flush()
			w.tracer.End(sp)
		case workload.Query:
			sp := w.tracer.Begin("op.query")
			sp.Set("proc", op.ProcID)
			out := w.strat.Access(op.ProcID)
			sp.Set("tuples", len(out))
			res.TuplesReturned += len(out)
			res.Queries++
			w.pager.Flush()
			w.tracer.End(sp)
		}
	}
	res.Counters = w.meter.Snapshot()
	res.TotalMs = w.meter.Milliseconds()
	res.ColdFraction = math.NaN()
	if ci, ok := w.strat.(*proc.CacheInvalidate); ok {
		if acc, cold := ci.AccessStats(); acc > 0 {
			res.ColdFraction = float64(cold) / float64(acc)
		}
	}
	if res.Queries > 0 {
		res.MsPerQuery = res.TotalMs / float64(res.Queries)
	}
	if w.cfg.Adaptive {
		ci := costmodel.CacheInvalidateCost(w.cfg.Model, p)
		rc := costmodel.RecomputeCost(w.cfg.Model, p)
		if ci < rc {
			res.PredictedMs = ci
		} else {
			res.PredictedMs = rc
		}
	} else {
		res.PredictedMs = costmodel.Cost(w.cfg.Model, w.cfg.Strategy, p)
	}
	return res
}

// baseUpdate performs one update transaction — l distinct tuples modified
// in place — without charging I/O (the base-table update cost is common to
// every strategy and excluded by the model), and returns the delta for the
// strategy hooks. By default the transaction modifies R1 (re-drawing the
// clustering attribute); with probability R2UpdateFraction it modifies R2
// instead (re-drawing the C_f2 filter attribute).
func (w *World) baseUpdate() proc.Delta {
	if f := w.cfg.R2UpdateFraction; f > 0 && w.gen.Float64() < f {
		return w.updateR2()
	}
	return w.updateR1()
}

func (w *World) updateR1() proc.Delta {
	p := w.cfg.Params
	l := int(p.L + 0.5)
	n := int(p.N)
	prev := w.pager.SetCharging(false)

	tids := w.gen.PickDistinct(l, n)
	delta := proc.Delta{Rel: w.r1}
	for _, tid := range tids {
		oldKey := tuple.ClusterKey(w.skey[tid], int64(tid))
		old, ok := w.r1.Tree().Get(oldKey)
		if !ok {
			panic("sim: base tuple lost")
		}
		newSkey := int64(w.gen.Intn(n))
		newTup := append([]byte(nil), old...)
		w.r1.Schema().SetByName(newTup, "skey", newSkey)
		w.r1.DeleteKeyed(oldKey)
		w.r1.Insert(newTup)
		w.skey[tid] = newSkey
		delta.Deleted = append(delta.Deleted, old)
		delta.Inserted = append(delta.Inserted, newTup)
	}
	w.pager.BeginOp() // flush the uncharged base-table writes
	w.pager.SetCharging(prev)
	return delta
}

func (w *World) updateR2() proc.Delta {
	p := w.cfg.Params
	l := int(p.L + 0.5)
	n2 := len(w.p2)
	if l > n2 {
		l = n2
	}
	prev := w.pager.SetCharging(false)

	tids := w.gen.PickDistinct(l, n2)
	s2 := w.r2.Schema()
	delta := proc.Delta{Rel: w.r2}
	for _, tid := range tids {
		// R2's hash key b equals the tuple id by construction.
		old, ok := w.r2.Hash().Lookup(uint64(tid))
		if !ok {
			panic("sim: R2 tuple lost")
		}
		newP2 := int64(w.gen.Intn(p2Max))
		newTup := append([]byte(nil), old...)
		s2.SetByName(newTup, "p2", newP2)
		w.r2.Hash().Delete(uint64(tid))
		w.r2.Insert(newTup)
		w.p2[tid] = newP2
		delta.Deleted = append(delta.Deleted, old)
		delta.Inserted = append(delta.Inserted, newTup)
	}
	w.pager.BeginOp()
	w.pager.SetCharging(prev)
	return delta
}

// Access runs one procedure query outside the workload loop (used by
// examples and equivalence tests).
func (w *World) Access(id int) [][]byte {
	w.pager.BeginOp()
	out := w.strat.Access(id)
	w.pager.Flush()
	return out
}

// Update applies one update transaction outside the workload loop.
func (w *World) Update() {
	w.pager.BeginOp()
	d := w.baseUpdate()
	w.strat.OnUpdate(d)
	w.pager.Flush()
}

// Strategy exposes the built strategy.
func (w *World) Strategy() proc.Strategy { return w.strat }

// ProcIDs returns the defined procedure ids.
func (w *World) ProcIDs() []int { return w.mgr.IDs() }

// Meter returns the world's cost meter.
func (w *World) Meter() *metric.Meter { return w.meter }
