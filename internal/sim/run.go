package sim

import (
	"fmt"
	"math"
	"sort"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/metric"
	"dbproc/internal/proc"
	"dbproc/internal/query"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
	"dbproc/internal/workload"
)

// HasColdFraction reports whether ColdFraction carries a measurement;
// only Cache and Invalidate keeps the statistic, so it is NaN — and this
// returns false — for every other strategy.
func (r Result) HasColdFraction() bool { return !math.IsNaN(r.ColdFraction) }

// ColdFractionString renders the cold fraction for human-readable output:
// "n/a" when the strategy records none, so the NaN sentinel never leaks
// into reports.
func (r Result) ColdFractionString() string {
	if !r.HasColdFraction() {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", r.ColdFraction)
}

// Run builds the world for cfg and executes the workload, returning the
// measured and predicted cost per query.
func Run(cfg Config) Result {
	return Build(cfg).Run()
}

// Run executes the configured workload once. The world is consumed: run a
// fresh Build for another measurement.
func (w *World) Run() Result {
	p := w.cfg.Params
	ops := w.WorkloadOps()

	res := Result{Config: w.cfg}
	for _, op := range ops {
		r := w.ExecOp(op)
		switch op.Kind {
		case workload.Update:
			res.Updates++
		case workload.Query:
			res.TuplesReturned += len(r.Tuples)
			res.Queries++
		}
	}
	res.Counters = w.meter.Snapshot()
	res.TotalMs = w.meter.Milliseconds()
	res.ColdFraction = math.NaN()
	if ci, ok := w.strat.(*proc.CacheInvalidate); ok {
		if acc, cold := ci.AccessStats(); acc > 0 {
			res.ColdFraction = float64(cold) / float64(acc)
		}
	}
	if res.Queries > 0 {
		res.MsPerQuery = res.TotalMs / float64(res.Queries)
	}
	if w.cfg.Adaptive {
		ci := costmodel.CacheInvalidateCost(w.cfg.Model, p)
		rc := costmodel.RecomputeCost(w.cfg.Model, p)
		if ci < rc {
			res.PredictedMs = ci
		} else {
			res.PredictedMs = rc
		}
	} else {
		res.PredictedMs = costmodel.Cost(w.cfg.Model, w.cfg.Strategy, p)
	}
	return res
}

// WorkloadOps draws the world's full operation stream: k update
// transactions interleaved at random with q skewed procedure accesses,
// consuming the workload generator exactly as the sequential Run loop
// always has. With a scenario configured, the stream instead comes from
// the scenario schedule's phased generation under the same seed
// derivation, so (scenario, seed) fully determines the stream. Callers
// (Run, the concurrent engine) execute the returned ops through ExecOp.
func (w *World) WorkloadOps() []workload.Op {
	if w.sched != nil {
		return w.sched.Ops(w.cfg.Seed+2, w.mgr.IDs())
	}
	p := w.cfg.Params
	return w.gen.Sequence(int(p.K+0.5), int(p.Q+0.5))
}

// OpResult reports one executed workload operation.
type OpResult struct {
	Op workload.Op
	// Update records the transaction's random draws (update ops only), so
	// the op can be replayed — and undone — on another world with the same
	// base state.
	Update UpdateRecord
	// Tuples is the query result (query ops only).
	Tuples [][]byte
}

// ExecOp executes one workload operation on the world's own sequential
// pager. Run loops over it; see ExecOpOn for the concurrent form.
func (w *World) ExecOp(op workload.Op) OpResult {
	return w.ExecOpOn(w.pager, op)
}

// ExecOpOn executes one workload operation on the given session pager: one
// pager operation scope, the op's tracing span, the base-table change plus
// strategy maintenance for updates, the strategy access for queries. The
// concurrent engine calls it once per session op under its 2PL locks;
// update ops consume the shared workload generator and mutate base
// structures, which is safe because every update footprint is exclusive on
// r1 and serializes against all other ops.
func (w *World) ExecOpOn(pg *storage.Pager, op workload.Op) OpResult {
	pg.BeginOp()
	pg.SetOpToken(op.Index)
	switch op.Kind {
	case workload.Update:
		sp := w.tracer.Begin("op.update")
		rec := w.drawUpdate(op)
		delta, _ := w.applyUpdate(pg, rec)
		sp.Set("rel", delta.Rel.Schema().Name())
		sp.Set("tuples", len(delta.Inserted)+len(delta.Deleted))
		w.strat.OnUpdate(pg, delta)
		// Flush inside the span so deferred page writes are priced into
		// the operation that dirtied them.
		pg.Flush()
		w.tracer.End(sp)
		return OpResult{Op: op, Update: rec}
	case workload.Query:
		sp := w.tracer.Begin("op.query")
		sp.Set("proc", op.ProcID)
		out := w.strat.Access(pg, op.ProcID)
		// Nested procedure calls: the body accesses further procedures,
		// derived deterministically from the op itself. Inner results
		// feed the body (discarded here), so the op's observable result
		// — and every oracle digest — stays the outer access alone.
		if op.Nest > 0 {
			inner := workload.InnerProcs(op, w.mgr.IDs())
			sp.Set("nested", len(inner))
			for _, id := range inner {
				w.strat.Access(pg, id)
			}
		}
		sp.Set("tuples", len(out))
		pg.Flush()
		w.tracer.End(sp)
		return OpResult{Op: op, Tuples: out}
	}
	panic("sim: unknown op kind")
}

// UpdateRecord captures the random draws of one update transaction: the
// modified tuple ids and, parallel to them, the new attribute values —
// skey for an R1 transaction, the C_f2 filter attribute p2 for an R2 one.
// Replaying a record against a world whose base tables are in the same
// state reproduces the transaction exactly; the inverse record returned
// by the replay restores the prior state (the serializability checker's
// backtracking step).
type UpdateRecord struct {
	R2   bool
	Tids []int
	Vals []int64
}

// drawUpdate consumes the workload generator's randomness for one update
// transaction — relation choice, tuple picks, new values — in the exact
// order the sequential simulator always has, and returns the record. By
// default the transaction modifies R1 (re-drawing the clustering
// attribute); with probability R2UpdateFraction it modifies R2 instead.
// Scenario ops reshape the draw: op.L overrides the tuple count (bulk
// load) and op.Adversarial aims the footprint at the densest i-lock band
// instead of drawing uniformly. All draws still come from the shared
// generator, in a deterministic order, so 1-client runs stay replayable.
func (w *World) drawUpdate(op workload.Op) UpdateRecord {
	p := w.cfg.Params
	l := int(p.L + 0.5)
	if op.L > 0 {
		l = op.L
	}
	if n := int(p.N); l > n {
		l = n
	}
	if op.Adversarial {
		return w.drawAdversarial(l)
	}
	if f := w.cfg.R2UpdateFraction; f > 0 && w.gen.Float64() < f {
		n2 := len(w.p2)
		if l > n2 {
			l = n2
		}
		rec := UpdateRecord{R2: true, Tids: w.gen.PickDistinct(l, n2)}
		for range rec.Tids {
			rec.Vals = append(rec.Vals, int64(w.gen.Intn(p2Max)))
		}
		return rec
	}
	n := int(p.N)
	rec := UpdateRecord{Tids: w.gen.PickDistinct(l, n)}
	for range rec.Tids {
		rec.Vals = append(rec.Vals, int64(w.gen.Intn(n)))
	}
	return rec
}

// drawAdversarial draws an update aimed at the densest i-lock region:
// the l tuples are picked (as far as supply allows) from those whose
// current clustering value lies in the skey interval covered by the most
// procedure bands, and their new values land back inside that interval —
// so both the delete and the insert side of every tuple move hit the
// maximum number of interval locks. Always an R1 transaction: R2 bands
// are per-procedure and never stack.
func (w *World) drawAdversarial(l int) UpdateRecord {
	lo, hi := w.densestBand()
	n := int(w.cfg.Params.N)
	var cand []int
	for tid, v := range w.skey {
		if v >= lo && v <= hi {
			cand = append(cand, tid)
		}
	}
	var rec UpdateRecord
	if len(cand) >= l {
		for _, i := range w.gen.PickDistinct(l, len(cand)) {
			rec.Tids = append(rec.Tids, cand[i])
		}
	} else {
		// The band holds fewer than l tuples: take them all and fill
		// the remainder with uniform picks outside the candidate set.
		rec.Tids = append(rec.Tids, cand...)
		seen := make(map[int]bool, l)
		for _, tid := range cand {
			seen[tid] = true
		}
		for len(rec.Tids) < l {
			tid := w.gen.Intn(n)
			if seen[tid] {
				continue
			}
			seen[tid] = true
			rec.Tids = append(rec.Tids, tid)
		}
	}
	span := int(hi - lo + 1)
	for range rec.Tids {
		rec.Vals = append(rec.Vals, lo+int64(w.gen.Intn(span)))
	}
	return rec
}

// densestBand sweeps the procedure R1 bands and returns the first
// maximal-coverage skey interval — the range whose tuples sit under the
// most interval locks. Bands are fixed at build time, so the result is
// cached.
func (w *World) densestBand() (int64, int64) {
	if w.denseBandSet {
		return w.denseBand[0], w.denseBand[1]
	}
	type event struct {
		x int64
		d int
	}
	evs := make([]event, 0, 2*len(w.specs))
	for _, spec := range w.specs {
		evs = append(evs, event{spec.band[0], 1}, event{spec.band[1] + 1, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].x != evs[j].x {
			return evs[i].x < evs[j].x
		}
		return evs[i].d > evs[j].d // opens before closes at the same point
	})
	cur, best := 0, 0
	var lo, hi int64
	for i, e := range evs {
		cur += e.d
		if cur > best {
			best = cur
			lo = e.x
			hi = e.x
			if i+1 < len(evs) && evs[i+1].x-1 > lo {
				hi = evs[i+1].x - 1
			}
		}
	}
	w.denseBand = [2]int64{lo, hi}
	w.denseBandSet = true
	return lo, hi
}

// applyUpdate performs the recorded transaction on the base tables
// without charging I/O (the base-table update cost is common to every
// strategy and excluded by the model). It returns the delta for the
// strategy hooks and the inverse record.
func (w *World) applyUpdate(pg *storage.Pager, rec UpdateRecord) (proc.Delta, UpdateRecord) {
	prev := pg.SetCharging(false)
	undo := UpdateRecord{R2: rec.R2, Tids: rec.Tids, Vals: make([]int64, 0, len(rec.Tids))}
	var delta proc.Delta
	if rec.R2 {
		s2 := w.r2.Schema()
		delta.Rel = w.r2
		for i, tid := range rec.Tids {
			// R2's hash key b equals the tuple id by construction.
			old, ok := w.r2.Hash().Lookup(pg, uint64(tid))
			if !ok {
				panic("sim: R2 tuple lost")
			}
			undo.Vals = append(undo.Vals, w.p2[tid])
			newTup := append([]byte(nil), old...)
			s2.SetByName(newTup, "p2", rec.Vals[i])
			w.r2.Hash().Delete(pg, uint64(tid))
			w.r2.Insert(pg, newTup)
			w.p2[tid] = rec.Vals[i]
			delta.Deleted = append(delta.Deleted, old)
			delta.Inserted = append(delta.Inserted, newTup)
		}
	} else {
		delta.Rel = w.r1
		for i, tid := range rec.Tids {
			oldKey := tuple.ClusterKey(w.skey[tid], int64(tid))
			old, ok := w.r1.Tree().Get(pg, oldKey)
			if !ok {
				panic("sim: base tuple lost")
			}
			undo.Vals = append(undo.Vals, w.skey[tid])
			newTup := append([]byte(nil), old...)
			w.r1.Schema().SetByName(newTup, "skey", rec.Vals[i])
			w.r1.DeleteKeyed(pg, oldKey)
			w.r1.Insert(pg, newTup)
			w.skey[tid] = rec.Vals[i]
			delta.Deleted = append(delta.Deleted, old)
			delta.Inserted = append(delta.Inserted, newTup)
		}
	}
	pg.BeginOp() // flush the uncharged base-table writes
	pg.SetCharging(prev)
	return delta, undo
}

// ReplayUpdate re-executes a recorded update transaction — the base-table
// change and the strategy maintenance hook — inside one pager operation
// scope, and returns the inverse record. Replaying the inverse restores
// the base tables only, not strategy-private cache state, so undo-based
// search (the serializability oracle) must run on a recompute-style world
// whose accesses carry no cached state.
func (w *World) ReplayUpdate(rec UpdateRecord) UpdateRecord {
	w.pager.BeginOp()
	delta, undo := w.applyUpdate(w.pager, rec)
	w.strat.OnUpdate(w.pager, delta)
	w.pager.Flush()
	return undo
}

// Access runs one procedure query outside the workload loop (used by
// examples and equivalence tests).
func (w *World) Access(id int) [][]byte {
	w.pager.BeginOp()
	out := w.strat.Access(w.pager, id)
	w.pager.Flush()
	return out
}

// RecomputeOracle evaluates procedure id's definition plan directly
// against the current base tables, uncharged and without touching any
// cache — the brute-force recomputer the differential and
// serializability oracles compare strategies against.
func (w *World) RecomputeOracle(id int) [][]byte {
	prevCharge := w.pager.SetCharging(false)
	prevMute := w.meter.SetMuted(true)
	w.pager.BeginOp()
	var out [][]byte
	w.mgr.MustGet(id).Plan.Execute(&query.Ctx{Meter: w.meter, Pager: w.pager}, func(tup []byte) bool {
		out = append(out, append([]byte(nil), tup...))
		return true
	})
	w.pager.BeginOp()
	w.meter.SetMuted(prevMute)
	w.pager.SetCharging(prevCharge)
	return out
}

// BaseStateHash fingerprints the mutable base-table state (every R1
// clustering value and R2 filter value), letting the serializability
// oracle memoize search states.
func (w *World) BaseStateHash() uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	for _, v := range w.skey {
		mix(v)
	}
	for _, v := range w.p2 {
		mix(v)
	}
	return h
}

// Update applies one update transaction outside the workload loop.
func (w *World) Update() {
	w.pager.BeginOp()
	rec := w.drawUpdate(workload.Op{Kind: workload.Update})
	d, _ := w.applyUpdate(w.pager, rec)
	w.strat.OnUpdate(w.pager, d)
	w.pager.Flush()
}

// Strategy exposes the built strategy.
func (w *World) Strategy() proc.Strategy { return w.strat }

// ProcIDs returns the defined procedure ids.
func (w *World) ProcIDs() []int { return w.mgr.IDs() }

// Config returns the configuration the world was built from.
func (w *World) Config() Config { return w.cfg }

// ProcRelations names the base relations procedure id's plan reads: r1
// for every procedure, plus r2 (and, in model 2, r3) for P2 procedures.
// The concurrent engine derives query lock footprints from it.
func (w *World) ProcRelations(id int) []string {
	spec := w.specs[id] // ids are assigned densely in definition order
	if spec.id != id {
		panic(fmt.Sprintf("sim: spec table out of order at %d", id))
	}
	if !spec.isP2 {
		return []string{"r1"}
	}
	if w.cfg.Model == costmodel.Model2 {
		return []string{"r1", "r2", "r3"}
	}
	return []string{"r1", "r2"}
}

// Meter returns the world's cost meter.
func (w *World) Meter() *metric.Meter { return w.meter }

// CacheStore returns the strategy's cache store, or nil for strategies
// holding no cached state (Always Recompute). The concurrent engine
// attaches telemetry observers here.
func (w *World) CacheStore() *cache.Store {
	if s, ok := w.strat.(interface{ CacheStore() *cache.Store }); ok {
		return s.CacheStore()
	}
	return nil
}
