package sim

import (
	"bytes"

	"testing"

	"dbproc/internal/costmodel"
)

// testParams returns a scaled-down parameter set that keeps the paper's
// shape (b = 250 pages, fN = 100-tuple P1 results, 1:1 joins) but runs
// fast enough for unit tests.
func testParams() costmodel.Params {
	p := costmodel.Default()
	p.N = 10_000
	p.F = 0.01 // fN = 100 tuples, like the paper's default
	p.N1, p.N2 = 10, 10
	p.K, p.Q = 15, 15
	p.L = 5
	return p
}

func testConfig(m costmodel.Model, s costmodel.Strategy) Config {
	return Config{Params: testParams(), Model: m, Strategy: s, Seed: 11}
}

// TestStrategiesAgreeOnResults drives the four strategies through an
// identical interleaving of updates and accesses and requires bitwise
// identical query answers — the core correctness property: every strategy
// computes the same procedure values.
func TestStrategiesAgreeOnResults(t *testing.T) {
	for _, m := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
		t.Run(m.String(), func(t *testing.T) {
			worlds := make([]*World, 0, 4)
			for _, s := range costmodel.Strategies {
				worlds = append(worlds, Build(testConfig(m, s)))
			}
			ids := worlds[0].ProcIDs()
			for round := 0; round < 8; round++ {
				for _, w := range worlds {
					w.Update()
				}
				for _, id := range []int{ids[0], ids[5], ids[10], ids[15], ids[len(ids)-1]} {
					ref := worlds[0].Access(id)
					for wi, w := range worlds[1:] {
						got := w.Access(id)
						if len(got) != len(ref) {
							t.Fatalf("round %d proc %d: %v returned %d tuples, recompute %d",
								round, id, costmodel.Strategies[wi+1], len(got), len(ref))
						}
						for i := range ref {
							if !bytes.Equal(got[i], ref[i]) {
								t.Fatalf("round %d proc %d tuple %d: %v differs from recompute",
									round, id, i, costmodel.Strategies[wi+1])
							}
						}
					}
				}
			}
		})
	}
}

// TestStrategiesAgreeUnderR2Updates repeats the equivalence check with
// half of the update transactions hitting R2's filter attribute — the
// section 8 extension the paper leaves unanalyzed. Every strategy must
// still compute identical procedure values.
func TestStrategiesAgreeUnderR2Updates(t *testing.T) {
	for _, m := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
		t.Run(m.String(), func(t *testing.T) {
			worlds := make([]*World, 0, 4)
			for _, s := range costmodel.Strategies {
				cfg := testConfig(m, s)
				cfg.R2UpdateFraction = 0.5
				worlds = append(worlds, Build(cfg))
			}
			ids := worlds[0].ProcIDs()
			for round := 0; round < 10; round++ {
				for _, w := range worlds {
					w.Update()
				}
				for _, id := range []int{ids[11], ids[14], ids[19]} { // P2 procs
					ref := worlds[0].Access(id)
					for wi, w := range worlds[1:] {
						got := w.Access(id)
						if len(got) != len(ref) {
							t.Fatalf("round %d proc %d: %v returned %d tuples, recompute %d",
								round, id, costmodel.Strategies[wi+1], len(got), len(ref))
						}
						for i := range ref {
							if !bytes.Equal(got[i], ref[i]) {
								t.Fatalf("round %d proc %d tuple %d: %v differs from recompute",
									round, id, i, costmodel.Strategies[wi+1])
							}
						}
					}
				}
			}
		})
	}
}

// TestR2UpdateWorkloadRuns smoke-tests a full mixed-update run and checks
// the paper-motivated expectation: R2-heavy updates hurt Update Cache
// (whose static plans must join deltas back through an unindexed
// direction) much more than Cache and Invalidate.
func TestR2UpdateWorkloadRuns(t *testing.T) {
	run := func(s costmodel.Strategy, frac float64) float64 {
		cfg := testConfig(costmodel.Model1, s)
		cfg.R2UpdateFraction = frac
		return Run(cfg).MsPerQuery
	}
	ciR1, ciR2 := run(costmodel.CacheInvalidate, 0), run(costmodel.CacheInvalidate, 1)
	avmR1, avmR2 := run(costmodel.UpdateCacheAVM, 0), run(costmodel.UpdateCacheAVM, 1)
	ciGrowth := ciR2 / ciR1
	avmGrowth := avmR2 / avmR1
	if avmGrowth <= ciGrowth {
		t.Errorf("R2-only updates should hurt AVM (x%.2f) more than C&I (x%.2f)", avmGrowth, ciGrowth)
	}
}

// TestAdaptiveTracksEnvelope: the adaptive strategy should cost about the
// same as Cache and Invalidate when updates are rare, and escape the C&I
// invalidation-cost blowup when updates dominate, landing near Always
// Recompute — the lower envelope of the two pure strategies.
func TestAdaptiveTracksEnvelope(t *testing.T) {
	base := testParams()
	base.CInval = 60
	base.K, base.Q = 200, 200 // long enough for per-procedure adaptation
	run := func(up float64, s costmodel.Strategy, adaptive bool) float64 {
		cfg := Config{
			Params:   base.WithUpdateProbability(up),
			Model:    costmodel.Model1,
			Strategy: s,
			Seed:     3,
			Adaptive: adaptive,
		}
		return Run(cfg).MsPerQuery
	}
	// Low P: adaptive ~= C&I, far below recompute.
	ciLo := run(0.1, costmodel.CacheInvalidate, false)
	adLo := run(0.1, costmodel.CacheInvalidate, true)
	rcLo := run(0.1, costmodel.AlwaysRecompute, false)
	if adLo > 1.3*ciLo {
		t.Errorf("P=0.1: adaptive %.0f should track C&I %.0f", adLo, ciLo)
	}
	if adLo > rcLo/2 {
		t.Errorf("P=0.1: adaptive %.0f should be far below recompute %.0f", adLo, rcLo)
	}
	// High P: adaptive escapes the C&I blowup and lands near recompute.
	ciHi := run(0.9, costmodel.CacheInvalidate, false)
	adHi := run(0.9, costmodel.CacheInvalidate, true)
	rcHi := run(0.9, costmodel.AlwaysRecompute, false)
	if adHi > 0.6*ciHi {
		t.Errorf("P=0.9: adaptive %.0f should escape C&I's %.0f", adHi, ciHi)
	}
	if adHi > 1.6*rcHi {
		t.Errorf("P=0.9: adaptive %.0f should approach recompute %.0f", adHi, rcHi)
	}
}

// TestRunProducesSaneMeasurements checks Run's bookkeeping and that every
// strategy measures a positive cost within an order of magnitude of the
// analytic prediction at a mid-range update probability.
func TestRunProducesSaneMeasurements(t *testing.T) {
	for _, s := range costmodel.Strategies {
		res := Run(testConfig(costmodel.Model1, s))
		if res.Queries != 15 || res.Updates != 15 {
			t.Fatalf("%v: queries=%d updates=%d", s, res.Queries, res.Updates)
		}
		if res.MsPerQuery <= 0 {
			t.Fatalf("%v: MsPerQuery = %v", s, res.MsPerQuery)
		}
		if res.PredictedMs <= 0 {
			t.Fatalf("%v: PredictedMs = %v", s, res.PredictedMs)
		}
		ratio := res.MsPerQuery / res.PredictedMs
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("%v: measured %v ms/query vs predicted %v (ratio %.2f)",
				s, res.MsPerQuery, res.PredictedMs, ratio)
		}
	}
}

// TestMeasuredStrategyOrdering reproduces the headline shape on the real
// system: at a low update probability the caching strategies beat Always
// Recompute, and at a very high update probability Update Cache loses its
// advantage against Cache and Invalidate.
func TestMeasuredStrategyOrdering(t *testing.T) {
	lowP := func(s costmodel.Strategy) float64 {
		cfg := testConfig(costmodel.Model1, s)
		cfg.Params.K, cfg.Params.Q = 4, 36 // P = 0.1
		return Run(cfg).MsPerQuery
	}
	rc, ci, uc := lowP(costmodel.AlwaysRecompute), lowP(costmodel.CacheInvalidate), lowP(costmodel.UpdateCacheAVM)
	if ci >= rc {
		t.Errorf("P=0.1: C&I %.0f should beat recompute %.0f", ci, rc)
	}
	if uc >= rc {
		t.Errorf("P=0.1: Update Cache %.0f should beat recompute %.0f", uc, rc)
	}

	highP := func(s costmodel.Strategy) float64 {
		cfg := testConfig(costmodel.Model1, s)
		cfg.Params.K, cfg.Params.Q = 90, 10 // P = 0.9
		return Run(cfg).MsPerQuery
	}
	ciHi, ucHi := highP(costmodel.CacheInvalidate), highP(costmodel.UpdateCacheAVM)
	if ucHi <= ciHi {
		t.Errorf("P=0.9: Update Cache %.0f should cost more than C&I %.0f", ucHi, ciHi)
	}
}

// TestSharingReducesRVMCost: with every P2 procedure sharing a P1
// subexpression (SF=1), RVM's per-update maintenance must cost less than
// with no sharing (SF=0) on the same workload.
func TestSharingReducesRVMCost(t *testing.T) {
	run := func(sf float64) float64 {
		cfg := testConfig(costmodel.Model1, costmodel.UpdateCacheRVM)
		cfg.Params.SF = sf
		cfg.Params.K, cfg.Params.Q = 30, 10
		return Run(cfg).TotalMs
	}
	if hi, lo := run(0), run(1); lo >= hi {
		t.Errorf("SF=1 total %.0f should be below SF=0 total %.0f", lo, hi)
	}
}

// TestCinvalChargedPerConflict: raising C_inval raises only Cache and
// Invalidate's measured cost.
func TestCinvalChargedPerConflict(t *testing.T) {
	base := testConfig(costmodel.Model1, costmodel.CacheInvalidate)
	cheap := Run(base)
	base.Params.CInval = 60
	costly := Run(base)
	if costly.TotalMs <= cheap.TotalMs {
		t.Errorf("C_inval=60 total %.0f should exceed C_inval=0 total %.0f", costly.TotalMs, cheap.TotalMs)
	}
	if costly.Counters.Invalidations == 0 {
		t.Error("no invalidations recorded")
	}
	// Invalidations are deduplicated per (procedure, transaction): never
	// more than procs x updates.
	maxInv := int64(20 * 15)
	if costly.Counters.Invalidations > maxInv {
		t.Errorf("invalidations = %d exceeds procs x updates = %d", costly.Counters.Invalidations, maxInv)
	}
}

// TestUpdateCacheAccessIsPureRead: with no updates at all, Update Cache
// and C&I accesses charge only result-page reads, and all strategies cost
// the model's C_read.
func TestUpdateCacheAccessIsPureRead(t *testing.T) {
	for _, s := range []costmodel.Strategy{costmodel.CacheInvalidate, costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM} {
		cfg := testConfig(costmodel.Model1, s)
		cfg.Params.K = 0
		res := Run(cfg)
		if res.Counters.PageWrites != 0 || res.Counters.Screens != 0 || res.Counters.DeltaOps != 0 {
			t.Errorf("%v with no updates charged %v", s, res.Counters)
		}
		if res.Counters.PageReads == 0 {
			t.Errorf("%v read nothing", s)
		}
	}
}

// TestDeterminism: identical configs give identical measurements.
func TestDeterminism(t *testing.T) {
	a := Run(testConfig(costmodel.Model2, costmodel.UpdateCacheRVM))
	b := Run(testConfig(costmodel.Model2, costmodel.UpdateCacheRVM))
	if a.TotalMs != b.TotalMs || a.Counters != b.Counters {
		t.Fatalf("nondeterministic: %v vs %v", a.Counters, b.Counters)
	}
}

func TestBuildValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"bad params":   func(c *Config) { c.Params.N = 0 },
		"bad model":    func(c *Config) { c.Model = 9 },
		"bad strategy": func(c *Config) { c.Strategy = 9 },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			cfg := testConfig(costmodel.Model1, costmodel.AlwaysRecompute)
			mutate(&cfg)
			Build(cfg)
		}()
	}
}

// TestResultTupleCounts sanity-checks result sizes: P1 procedures return
// fN tuples; P2 procedures return about f*N.
func TestResultTupleCounts(t *testing.T) {
	w := Build(testConfig(costmodel.Model1, costmodel.AlwaysRecompute))
	p := testParams()
	fN := int(p.F * p.N)
	totalP1, totalP2 := 0, 0
	for i, id := range w.ProcIDs() {
		n := len(w.Access(id))
		if i < 10 {
			if n != fN {
				t.Errorf("P1 proc %d returned %d tuples, want %d", id, n, fN)
			}
			totalP1 += n
		} else {
			totalP2 += n
		}
	}
	// Expected P2 size f*N = 10; allow generous binomial spread on the
	// per-procedure mean over 10 procedures.
	mean := float64(totalP2) / 10
	if mean < 3 || mean > 25 {
		t.Errorf("mean P2 result size %.1f, expected around %.0f", mean, p.FStar()*p.N)
	}
}
