package sim

import (
	"testing"

	"dbproc/internal/costmodel"
)

func BenchmarkBuildFullScale(b *testing.B) {
	cfg := Config{Params: costmodel.Default(), Model: costmodel.Model1, Strategy: costmodel.UpdateCacheRVM, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(cfg)
	}
}

func benchOps(b *testing.B, s costmodel.Strategy) {
	p := costmodel.Default()
	w := Build(Config{Params: p, Model: costmodel.Model1, Strategy: s, Seed: 1})
	ids := w.ProcIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Update()
		w.Access(ids[i%len(ids)])
	}
}

func BenchmarkOpPairRecompute(b *testing.B) { benchOps(b, costmodel.AlwaysRecompute) }

func BenchmarkOpPairCacheInvalidate(b *testing.B) { benchOps(b, costmodel.CacheInvalidate) }

func BenchmarkOpPairUpdateCacheAVM(b *testing.B) { benchOps(b, costmodel.UpdateCacheAVM) }

func BenchmarkOpPairUpdateCacheRVM(b *testing.B) { benchOps(b, costmodel.UpdateCacheRVM) }
