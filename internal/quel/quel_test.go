package quel

import (
	"fmt"
	"strings"
	"testing"

	"dbproc/internal/metric"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	db := Open(256, 64, metric.DefaultCosts())
	must := func(stmt string) {
		t.Helper()
		if _, err := db.Run(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	must("create emp (tid, age, dept, salary) cluster on age")
	must("create dept (dname, floor) hash on dname buckets 4")
	emps := []struct{ tid, age, dept, salary int64 }{
		{1, 25, 10, 30000}, {2, 31, 10, 45000}, {3, 35, 20, 52000},
		{4, 41, 20, 61000}, {5, 55, 30, 70000}, {6, 35, 30, 48000},
	}
	for _, e := range emps {
		must(fmt.Sprintf("append to emp (tid = %d, age = %d, dept = %d, salary = %d)",
			e.tid, e.age, e.dept, e.salary))
	}
	must("append to dept (dname = 10, floor = 1)")
	must("append to dept (dname = 20, floor = 2)")
	must("append to dept (dname = 30, floor = 1)")
	return db
}

func TestCreateAndAppendErrors(t *testing.T) {
	db := newDB(t)
	for _, bad := range []string{
		"create emp (tid) cluster on tid",                         // duplicate relation
		"create x (a, b) cluster on a",                            // no tid field
		"create y (a) sorted on a",                                // bad organization
		"append to nope (a = 1)",                                  // unknown relation
		"append to emp (zzz = 1)",                                 // unknown attribute
		"create z (a, b, c, d, e, f, g, h, i) hash on a width 16", // fields do not fit
	} {
		if _, err := db.Run(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestSimpleRetrieve(t *testing.T) {
	db := newDB(t)
	res, err := db.Run("retrieve (emp.all) where emp.age >= 31 and emp.age <= 41")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (ages 31, 35, 35, 41)", len(res.Rows))
	}
	if res.Columns[0] != "emp_tid" || len(res.Columns) != 4 {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.CostMs <= 0 {
		t.Fatal("retrieve charged nothing")
	}
	// Projection narrows columns.
	res, err = db.Run("retrieve (emp.tid, emp.salary) where emp.age = 35")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 2 {
		t.Fatalf("rows = %v cols = %v", res.Rows, res.Columns)
	}
}

func TestJoinRetrieve(t *testing.T) {
	db := newDB(t)
	// Employees on the first floor: depts 10 and 30 -> tids 1, 2, 5, 6.
	res, err := db.Run("retrieve (emp.tid, dept.floor) where emp.dept = dept.dname and dept.floor = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1] != 1 {
			t.Fatalf("floor filter leaked: %v", row)
		}
	}
	// Constant on the left side of a qual works too.
	res2, err := db.Run("retrieve (emp.tid) where 31 <= emp.age and emp.dept = dept.dname and 1 = dept.floor")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 3 { // tids 2 (31, dept 10), 6 (35, dept 30), 5 (55, dept 30)
		t.Fatalf("rows = %d, want 3: %v", len(res2.Rows), res2.Rows)
	}
}

func TestAttrAttrQualSameRelation(t *testing.T) {
	db := newDB(t)
	// tid < dept compares two attributes of the driver relation.
	res, err := db.Run("retrieve (emp.tid) where emp.tid < emp.dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
}

func TestProcedureLifecycle(t *testing.T) {
	db := newDB(t)
	if _, err := db.Run("define procedure seniors as retrieve (emp.all) where emp.age >= 41"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Run("execute seniors")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !strings.Contains(res.Message, "from cache") {
		t.Fatalf("first execute: %d rows, %q", len(res.Rows), res.Message)
	}
	warmCost := res.CostMs

	// An irrelevant append leaves the cache valid.
	if _, err := db.Run("append to emp (tid = 7, age = 22, dept = 10, salary = 1)"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Run("execute seniors")
	if !strings.Contains(res.Message, "from cache") {
		t.Fatalf("irrelevant append invalidated: %q", res.Message)
	}

	// A conflicting append invalidates; the next execute recomputes and
	// sees the new tuple.
	if _, err := db.Run("append to emp (tid = 8, age = 60, dept = 20, salary = 90000)"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Run("execute seniors")
	if len(res.Rows) != 3 || !strings.Contains(res.Message, "recomputed") {
		t.Fatalf("after conflicting append: %d rows, %q", len(res.Rows), res.Message)
	}
	if res.CostMs <= warmCost {
		t.Fatalf("recompute cost %.0f should exceed warm cost %.0f", res.CostMs, warmCost)
	}

	// Duplicate definition and unknown execute fail cleanly.
	if _, err := db.Run("define procedure seniors as retrieve (emp.all)"); err == nil {
		t.Fatal("duplicate procedure accepted")
	}
	if _, err := db.Run("execute nope"); err == nil {
		t.Fatal("unknown procedure accepted")
	}
}

func TestExplain(t *testing.T) {
	db := newDB(t)
	res, err := db.Run("explain retrieve (emp.tid) where emp.age = 35 and emp.dept = dept.dname")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Project(", "HashJoinProbe(dept = dept.dname)", "BTreeRangeScan(emp: 35 <= age <= 35)"} {
		if !strings.Contains(res.Message, want) {
			t.Errorf("explain missing %q:\n%s", want, res.Message)
		}
	}
	db.Run("define procedure p as retrieve (emp.all)")
	res, err = db.Run("explain p")
	if err != nil || !strings.Contains(res.Message, "BTreeRangeScan") {
		t.Fatalf("explain proc: %v %q", err, res.Message)
	}
	if _, err := db.Run("explain nope"); err == nil {
		t.Fatal("explain of unknown procedure accepted")
	}
}

func TestHashScanDriver(t *testing.T) {
	db := newDB(t)
	res, err := db.Run("retrieve (dept.all) where dept.floor = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestPlannerErrors(t *testing.T) {
	db := newDB(t)
	db.Run("create other (dname, x) hash on dname")
	for _, bad := range []string{
		"retrieve (emp.all) where emp.age = nope.x",                     // unknown relation
		"retrieve (emp.zzz)",                                            // unknown attribute
		"retrieve (dept.all, other.all) where dept.dname = other.dname", // no clustered driver
		"retrieve (emp.tid, dept.all) where emp.dept = dept.floor",      // join not on hash attr
		"retrieve (emp.tid, dept.all)",                                  // no join path (cross product)
		"retrieve (emp.tid) where 1 = 2",                                // constant-only qual
	} {
		if _, err := db.Run(bad); err == nil {
			t.Errorf("%q should fail to plan", bad)
		}
	}
}

func TestParserErrors(t *testing.T) {
	for _, bad := range []string{
		"", "frobnicate", "create", "create x", "create x (", "create x (a",
		"create x (a) cluster", "create x (a) cluster on",
		"append emp (a = 1)", "append to emp a = 1)", "append to emp (a 1)",
		"append to emp (a = )", "retrieve", "retrieve (", "retrieve (emp)",
		"retrieve (emp.all", "retrieve (emp.all) where", "retrieve (emp.all) where emp.age",
		"retrieve (emp.all) where emp.age ~ 3", "retrieve (emp.all) extra",
		"define x", "define procedure", "define procedure p", "define procedure p as",
		"execute", "explain", "retrieve (emp.all) where emp.age = emp.", "append to emp (a = 99999999999999999999)",
		"retrieve (emp.all) where !3",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}

func TestLexerSymbols(t *testing.T) {
	toks, err := lex("a<=1>=2!=3<4>5")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.text)
	}
	want := []string{"a", "<=", "1", ">=", "2", "!=", "3", "<", "4", ">", "5"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("lexed %v, want %v", texts, want)
	}
	if _, err := lex("a @ b"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestDeleteAndReplace(t *testing.T) {
	db := newDB(t)
	// Delete the two 35-year-olds.
	res, err := db.Run("delete from emp where emp.age = 35")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "deleted 2") {
		t.Fatalf("message = %q", res.Message)
	}
	res, _ = db.Run("retrieve (emp.all)")
	if len(res.Rows) != 4 {
		t.Fatalf("rows after delete = %d, want 4", len(res.Rows))
	}

	// Replace: give everyone in dept 10 a raise.
	res, err = db.Run("replace emp (salary = 99000) where emp.dept = 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "replaced 2") {
		t.Fatalf("message = %q", res.Message)
	}
	res, _ = db.Run("retrieve (emp.salary) where emp.dept = 10")
	for _, row := range res.Rows {
		if row[0] != 99000 {
			t.Fatalf("raise not applied: %v", res.Rows)
		}
	}

	// Delete from a hash relation uses exact-match removal.
	if _, err := db.Run("delete from dept where dept.floor = 2"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Run("retrieve (dept.all)")
	if len(res.Rows) != 2 {
		t.Fatalf("dept rows = %d, want 2", len(res.Rows))
	}

	// Quals may only reference the target relation.
	if _, err := db.Run("delete from emp where emp.dept = dept.dname"); err == nil {
		t.Fatal("cross-relation delete accepted")
	}
	if _, err := db.Run("replace emp (zzz = 1) where emp.tid = 1"); err == nil {
		t.Fatal("replace of unknown attribute accepted")
	}
	if _, err := db.Run("delete from nope"); err == nil {
		t.Fatal("delete from unknown relation accepted")
	}
}

func TestReplaceInvalidatesProcedures(t *testing.T) {
	db := newDB(t)
	db.Run("define procedure dept10 as retrieve (emp.all) where emp.dept = 10")
	res, _ := db.Run("execute dept10")
	if len(res.Rows) != 2 || !strings.Contains(res.Message, "from cache") {
		t.Fatalf("warm execute: %q", res.Message)
	}
	// Moving an employee's clustering attribute through replace must
	// invalidate the procedure (its i-lock covers the full age range).
	if _, err := db.Run("replace emp (age = 80) where emp.tid = 2"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Run("execute dept10")
	if !strings.Contains(res.Message, "recomputed") {
		t.Fatalf("replace did not invalidate: %q", res.Message)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (membership unchanged)", len(res.Rows))
	}
}

// TestMultiQueryProcedure exercises the paper's literal definition of a
// database procedure as a COLLECTION of queries: both result sets are
// cached independently and invalidated independently.
func TestMultiQueryProcedure(t *testing.T) {
	db := newDB(t)
	if _, err := db.Run("define procedure report as { retrieve (emp.tid) where emp.age >= 41 retrieve (dept.all) where dept.floor = 1 }"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Run("execute report")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Sections) != 1 || len(res.Sections[0].Rows) != 2 {
		t.Fatalf("report parts: %d + %d sections", len(res.Rows), len(res.Sections))
	}
	if !strings.Contains(res.Message, "4 tuple(s) (from cache)") {
		t.Fatalf("message = %q", res.Message)
	}

	// An update touching only the first query invalidates only it; the
	// procedure as a whole reports a recompute but the dept part's cache
	// stays warm (cost well below a full recompute of both).
	if _, err := db.Run("append to emp (tid = 9, age = 70, dept = 10, salary = 1)"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Run("execute report")
	if len(res.Rows) != 3 || !strings.Contains(res.Message, "recomputed") {
		t.Fatalf("after append: %d rows, %q", len(res.Rows), res.Message)
	}

	// explain prints one plan per query.
	res, _ = db.Run("explain report")
	if strings.Count(res.Message, "Project(") != 2 {
		t.Fatalf("explain should show 2 plans:\n%s", res.Message)
	}

	// Empty body and mid-body errors are rejected cleanly.
	if _, err := db.Run("define procedure empty as { }"); err == nil {
		t.Fatal("empty body accepted")
	}
	if _, err := db.Run("define procedure bad as { retrieve (emp.all) retrieve (zzz.all) }"); err == nil {
		t.Fatal("bad part accepted")
	}
	if _, err := db.Run("execute bad"); err == nil {
		t.Fatal("failed definition left a procedure behind")
	}
}

func TestAggregates(t *testing.T) {
	db := newDB(t)
	// Scalar aggregates over the whole relation.
	res, err := db.Run("retrieve (count(emp.tid), sum(emp.salary), min(emp.age), max(emp.age), avg(emp.salary))")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("scalar aggregate rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	// 6 emps; salaries 30000+45000+52000+61000+70000+48000 = 306000.
	if row[0] != 6 || row[1] != 306000 || row[2] != 25 || row[3] != 55 || row[4] != 51000 {
		t.Fatalf("aggregates = %v", row)
	}

	// Grouped: per-department counts and max salary.
	res, err = db.Run("retrieve (emp.dept, count(emp.tid), max(emp.salary)) where emp.age >= 25")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	want := map[int64][2]int64{10: {2, 45000}, 20: {2, 61000}, 30: {2, 70000}}
	for _, row := range res.Rows {
		w := want[row[0]]
		if row[1] != w[0] || row[2] != w[1] {
			t.Fatalf("group %d = %v, want %v", row[0], row[1:], w)
		}
	}
	if res.Columns[1] != "count_emp_tid" || res.Columns[2] != "max_emp_salary" {
		t.Fatalf("columns = %v", res.Columns)
	}

	// Scalar aggregate over an empty selection still yields one row.
	res, err = db.Run("retrieve (count(emp.tid)) where emp.age > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 0 {
		t.Fatalf("empty count = %v", res.Rows)
	}

	// Grouped aggregate over a join.
	res, err = db.Run("retrieve (dept.floor, count(emp.tid)) where emp.dept = dept.dname")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // floors 1 and 2
		t.Fatalf("join groups = %d: %v", len(res.Rows), res.Rows)
	}

	// rel.all mixed with aggregates is rejected.
	if _, err := db.Run("retrieve (emp.all, count(emp.tid))"); err == nil {
		t.Fatal("rel.all with aggregate accepted")
	}
}

// TestCachedAggregateProcedure: a stored aggregate is a materialized
// aggregate view — served from cache, invalidated by relevant updates.
func TestCachedAggregateProcedure(t *testing.T) {
	db := newDB(t)
	if _, err := db.Run("define procedure payroll as retrieve (emp.dept, sum(emp.salary))"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Run("execute payroll")
	if len(res.Rows) != 3 || !strings.Contains(res.Message, "from cache") {
		t.Fatalf("payroll: %v %q", res.Rows, res.Message)
	}
	if _, err := db.Run("replace emp (salary = 100000) where emp.tid = 1"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Run("execute payroll")
	if !strings.Contains(res.Message, "recomputed") {
		t.Fatalf("aggregate cache not invalidated: %q", res.Message)
	}
	for _, row := range res.Rows {
		if row[0] == 10 && row[1] != 145000 { // 100000 + 45000
			t.Fatalf("dept 10 payroll = %d, want 145000", row[1])
		}
	}
}

func TestSortBy(t *testing.T) {
	db := newDB(t)
	res, err := db.Run("retrieve (emp.salary, emp.tid) where emp.age >= 25 sort by emp.salary")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0] < res.Rows[i-1][0] {
			t.Fatalf("not sorted by salary: %v", res.Rows)
		}
	}
	// Multi-key sort and sort on aggregates' group keys work.
	res, err = db.Run("retrieve (emp.dept, count(emp.tid)) sort by emp.dept")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0] < res.Rows[i-1][0] {
			t.Fatalf("aggregate groups not sorted: %v", res.Rows)
		}
	}
	// Sorting on a non-target attribute is rejected.
	if _, err := db.Run("retrieve (emp.tid) sort by emp.salary"); err == nil {
		t.Fatal("sort on non-target accepted")
	}
	// Parse errors.
	if _, err := Parse("retrieve (emp.tid) sort"); err == nil {
		t.Fatal("bare sort accepted")
	}
	if _, err := Parse("retrieve (emp.tid) sort by"); err == nil {
		t.Fatal("empty sort list accepted")
	}
}
