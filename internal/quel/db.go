package quel

import (
	"fmt"
	"strings"

	"dbproc/internal/cache"
	"dbproc/internal/metric"
	"dbproc/internal/proc"
	"dbproc/internal/query"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// DB is an interactive database session: a catalog, a metered pager, and a
// procedure manager running stored procedures under Cache and Invalidate
// (with Always Recompute available through plain retrieves).
type DB struct {
	cat   *relation.Catalog
	pager *storage.Pager
	meter *metric.Meter
	width int

	procs    *proc.Manager
	strategy *proc.CacheInvalidate
	store    *cache.Store
	procIDs  map[string][]int // procedure name -> leaf query ids
	nextID   int
	nextSeq  uint64

	// tx is the open undo-log transaction, nil outside one. A session
	// holds at most one open transaction (the server's statement gate
	// serializes sessions, so this is a per-server invariant too).
	tx *Tx
}

// Open creates an empty session. pageSize and width follow the paper's
// defaults when 0 (4000-byte pages, 100-byte tuples); costs price the
// meter (metric.DefaultCosts for the paper's constants).
func Open(pageSize, width int, costs metric.Costs) *DB {
	if pageSize == 0 {
		pageSize = 4000
	}
	if width == 0 {
		width = 100
	}
	meter := metric.NewMeter(costs)
	pager := storage.NewPager(storage.NewDisk(pageSize), meter)
	db := &DB{
		cat:     relation.NewCatalog(),
		pager:   pager,
		meter:   meter,
		width:   width,
		procs:   proc.NewManager(),
		store:   cache.NewStore(pager.Disk()),
		procIDs: make(map[string][]int),
	}
	db.strategy = proc.NewCacheInvalidate(db.procs, db.store)
	return db
}

// Meter exposes the session's cost meter.
func (db *DB) Meter() *metric.Meter { return db.meter }

// Catalog exposes the session's catalog.
func (db *DB) Catalog() *relation.Catalog { return db.cat }

// Section is one result set of a multi-query procedure.
type Section struct {
	Columns []string
	Rows    [][]int64
}

// Result is the outcome of one statement.
type Result struct {
	// Message summarizes non-row results ("created emp", "appended", ...).
	Message string
	// Columns and Rows carry retrieve/execute output.
	Columns []string
	Rows    [][]int64
	// Sections carries the further result sets of a multi-query procedure
	// (the first set is in Columns/Rows).
	Sections []Section
	// Affected counts tuples changed by append/delete/replace (the wire
	// driver's RowsAffected).
	Affected int64
	// CostMs is the simulated cost charged by the statement.
	CostMs float64
}

// Run parses and executes one statement. Engine-level panics (bad widths,
// capacity violations) are converted to errors so an interactive session
// survives bad input.
func (db *DB) Run(input string) (*Result, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return db.RunParsed(stmt)
}

// RunParsed executes an already-parsed statement — the path a server
// takes for prepared statements, where Parse ran once at Prepare time.
func (db *DB) RunParsed(stmt Statement) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("quel: %v", r)
		}
	}()
	db.pager.BeginOp()
	before := db.meter.Snapshot()
	res, err = db.exec(stmt)
	db.pager.Flush()
	if err != nil {
		return nil, err
	}
	res.CostMs = db.meter.Since(before).Milliseconds(db.meter.Costs())
	return res, nil
}

func (db *DB) exec(stmt Statement) (*Result, error) {
	if db.tx != nil {
		// DDL has no undo entries (catalog and procedure definitions are
		// not logged), so a transaction may not issue it.
		switch stmt.(type) {
		case *CreateStmt, *DefineProcStmt:
			return nil, fmt.Errorf("quel: DDL is not allowed inside a transaction")
		}
	}
	switch s := stmt.(type) {
	case *CreateStmt:
		return db.create(s)
	case *AppendStmt:
		return db.append_(s)
	case *RetrieveStmt:
		return db.retrieve(s)
	case *DeleteStmt:
		return db.delete_(s)
	case *ReplaceStmt:
		return db.replace(s)
	case *DefineProcStmt:
		return db.defineProc(s)
	case *ExecuteStmt:
		return db.execute(s)
	case *ExplainStmt:
		return db.explain(s)
	default:
		return nil, fmt.Errorf("quel: unhandled statement %T", stmt)
	}
}

func (db *DB) create(s *CreateStmt) (*Result, error) {
	if db.cat.Lookup(s.Name) != nil {
		return nil, fmt.Errorf("quel: relation %q already exists", s.Name)
	}
	width := s.Width
	if width == 0 {
		width = db.width
	}
	fields := make([]tuple.Field, len(s.Fields))
	for i, f := range s.Fields {
		fields[i] = tuple.Field{Name: f}
	}
	sch := tuple.NewSchema(s.Name, width, fields...)
	var rel *relation.Relation
	switch s.Org {
	case "cluster":
		if sch.FieldIndex("tid") < 0 {
			return nil, fmt.Errorf("quel: clustered relations need a unique 'tid' field (the clustering tiebreaker)")
		}
		rel = relation.NewBTree(db.pager.Disk(), sch, s.Key, "tid", 20)
	case "hash":
		buckets := s.Buckets
		if buckets == 0 {
			buckets = 16
		}
		rel = relation.NewHash(db.pager.Disk(), sch, s.Key, buckets)
	default:
		return nil, fmt.Errorf("quel: unknown organization %q", s.Org)
	}
	db.cat.Define(rel)
	return &Result{Message: fmt.Sprintf("created %s (%s on %s, width %d)", s.Name, s.Org, s.Key, width)}, nil
}

func (db *DB) append_(s *AppendStmt) (*Result, error) {
	rel := db.cat.Lookup(s.Rel)
	if rel == nil {
		return nil, fmt.Errorf("quel: unknown relation %q", s.Rel)
	}
	sch := rel.Schema()
	tup := sch.New()
	for _, a := range s.Values {
		if sch.FieldIndex(a.Field) < 0 {
			return nil, fmt.Errorf("quel: relation %q has no attribute %q", s.Rel, a.Field)
		}
		sch.SetByName(tup, a.Field, a.Value)
	}
	rel.Insert(db.pager, tup)
	// Tell the stored-procedure layer, so conflicting cached results are
	// invalidated.
	db.strategy.OnUpdate(db.pager, proc.Delta{Rel: rel, Inserted: [][]byte{tup}})
	if db.tx != nil {
		db.tx.log(func() {
			db.removeBase(rel, tup)
			db.strategy.OnUpdate(db.pager, proc.Delta{Rel: rel, Deleted: [][]byte{tup}})
		})
	}
	return &Result{Message: "appended 1 tuple to " + s.Rel, Affected: 1}, nil
}

func (db *DB) compile(r *RetrieveStmt) (query.Plan, error) {
	pl := &planner{cat: db.cat, width: db.width}
	return pl.plan(r)
}

func (db *DB) collect(plan query.Plan) *Result {
	sch := plan.Schema()
	res := &Result{}
	for i := 0; i < sch.NumFields(); i++ {
		res.Columns = append(res.Columns, sch.FieldName(i))
	}
	plan.Execute(&query.Ctx{Meter: db.meter, Pager: db.pager}, func(tup []byte) bool {
		row := make([]int64, sch.NumFields())
		for i := range row {
			row[i] = sch.Get(tup, i)
		}
		res.Rows = append(res.Rows, row)
		return true
	})
	res.Message = fmt.Sprintf("%d tuple(s)", len(res.Rows))
	return res
}

func (db *DB) retrieve(s *RetrieveStmt) (*Result, error) {
	plan, err := db.compile(s)
	if err != nil {
		return nil, err
	}
	return db.collect(plan), nil
}

// matchTuples evaluates single-relation quals and returns the matching
// base tuples, reconstructed in schema field order.
func (db *DB) matchTuples(relName string, quals []Qual) (*relation.Relation, [][]byte, error) {
	rel := db.cat.Lookup(relName)
	if rel == nil {
		return nil, nil, fmt.Errorf("quel: unknown relation %q", relName)
	}
	for _, q := range quals {
		if (!q.Left.Const && q.Left.Rel != relName) || (!q.Right.Const && q.Right.Rel != relName) {
			return nil, nil, fmt.Errorf("quel: delete/replace quals may only reference %q", relName)
		}
	}
	plan, err := db.compile(&RetrieveStmt{
		Targets: []Target{{Rel: relName, All: true}},
		Quals:   quals,
	})
	if err != nil {
		return nil, nil, err
	}
	sch := rel.Schema()
	var tuples [][]byte
	plan.Execute(&query.Ctx{Meter: db.meter, Pager: db.pager}, func(row []byte) bool {
		// The rel.all projection preserves field order, so rebuild the
		// base tuple field by field.
		tup := sch.New()
		ps := plan.Schema()
		for i := 0; i < sch.NumFields(); i++ {
			sch.Set(tup, i, ps.Get(row, i))
		}
		tuples = append(tuples, tup)
		return true
	})
	return rel, tuples, nil
}

func (db *DB) removeBase(rel *relation.Relation, tup []byte) {
	if rel.Tree() != nil {
		rel.DeleteKeyed(db.pager, rel.Key(tup))
		return
	}
	rel.Hash().DeleteExact(db.pager, tup)
}

func (db *DB) delete_(s *DeleteStmt) (*Result, error) {
	rel, tuples, err := db.matchTuples(s.Rel, s.Quals)
	if err != nil {
		return nil, err
	}
	for _, tup := range tuples {
		db.removeBase(rel, tup)
	}
	if len(tuples) > 0 {
		db.strategy.OnUpdate(db.pager, proc.Delta{Rel: rel, Deleted: tuples})
		if db.tx != nil {
			db.tx.log(func() {
				for _, tup := range tuples {
					rel.Insert(db.pager, tup)
				}
				db.strategy.OnUpdate(db.pager, proc.Delta{Rel: rel, Inserted: tuples})
			})
		}
	}
	return &Result{
		Message:  fmt.Sprintf("deleted %d tuple(s) from %s", len(tuples), s.Rel),
		Affected: int64(len(tuples)),
	}, nil
}

func (db *DB) replace(s *ReplaceStmt) (*Result, error) {
	rel, tuples, err := db.matchTuples(s.Rel, s.Quals)
	if err != nil {
		return nil, err
	}
	sch := rel.Schema()
	for _, a := range s.Values {
		if sch.FieldIndex(a.Field) < 0 {
			return nil, fmt.Errorf("quel: relation %q has no attribute %q", s.Rel, a.Field)
		}
	}
	var inserted [][]byte
	for _, old := range tuples {
		newTup := append([]byte(nil), old...)
		for _, a := range s.Values {
			sch.SetByName(newTup, a.Field, a.Value)
		}
		db.removeBase(rel, old)
		rel.Insert(db.pager, newTup)
		inserted = append(inserted, newTup)
	}
	if len(tuples) > 0 {
		db.strategy.OnUpdate(db.pager, proc.Delta{Rel: rel, Deleted: tuples, Inserted: inserted})
		if db.tx != nil {
			db.tx.log(func() {
				for _, tup := range inserted {
					db.removeBase(rel, tup)
				}
				for _, tup := range tuples {
					rel.Insert(db.pager, tup)
				}
				db.strategy.OnUpdate(db.pager, proc.Delta{Rel: rel, Deleted: inserted, Inserted: tuples})
			})
		}
	}
	return &Result{
		Message:  fmt.Sprintf("replaced %d tuple(s) in %s", len(tuples), s.Rel),
		Affected: int64(len(tuples)),
	}, nil
}

func (db *DB) defineProc(s *DefineProcStmt) (*Result, error) {
	if _, dup := db.procIDs[s.Name]; dup {
		return nil, fmt.Errorf("quel: procedure %q already defined", s.Name)
	}
	// Compile every query before defining anything, so a failed part
	// leaves no partial procedure behind.
	plans := make([]query.Plan, len(s.Queries))
	for i, q := range s.Queries {
		p, err := db.compile(q)
		if err != nil {
			return nil, fmt.Errorf("query %d of %s: %w", i+1, s.Name, err)
		}
		plans[i] = p
	}
	var ids []int
	for i, plan := range plans {
		id := db.nextID
		db.nextID++
		// Sequence-valued result keys: unique and ascending in plan
		// output order, all Cache and Invalidate needs.
		def := proc.NewDefinitionWithKey(id, fmt.Sprintf("%s#%d", s.Name, i+1), plan,
			func([]byte) uint64 {
				db.nextSeq++
				return db.nextSeq
			})
		db.procs.Define(def)
		ids = append(ids, id)
	}
	// Warming the caches is setup, not workload: mute both the pager's
	// I/O charging and the meter's CPU events.
	prevCharge := db.pager.SetCharging(false)
	prevMute := db.meter.SetMuted(true)
	for _, id := range ids {
		db.strategy.Adopt(db.pager, id)
	}
	db.pager.BeginOp()
	db.meter.SetMuted(prevMute)
	db.pager.SetCharging(prevCharge)
	db.procIDs[s.Name] = ids
	plural := ""
	if len(ids) > 1 {
		plural = fmt.Sprintf(", %d queries", len(ids))
	}
	return &Result{Message: fmt.Sprintf("defined procedure %s (cached, i-locks set%s)", s.Name, plural)}, nil
}

// accessPart runs one leaf query of a procedure and renders its rows.
func (db *DB) accessPart(id int) (Section, bool) {
	def := db.procs.MustGet(id)
	sch := def.Plan.Schema()
	var sec Section
	for i := 0; i < sch.NumFields(); i++ {
		sec.Columns = append(sec.Columns, sch.FieldName(i))
	}
	valid := db.store.MustEntry(cache.ID(id)).Valid()
	for _, tup := range db.strategy.Access(db.pager, id) {
		row := make([]int64, sch.NumFields())
		for i := range row {
			row[i] = sch.Get(tup, i)
		}
		sec.Rows = append(sec.Rows, row)
	}
	return sec, valid
}

func (db *DB) execute(s *ExecuteStmt) (*Result, error) {
	ids, ok := db.procIDs[s.Name]
	if !ok {
		return nil, fmt.Errorf("quel: unknown procedure %q", s.Name)
	}
	res := &Result{}
	total := 0
	allValid := true
	for i, id := range ids {
		sec, valid := db.accessPart(id)
		allValid = allValid && valid
		total += len(sec.Rows)
		if i == 0 {
			res.Columns, res.Rows = sec.Columns, sec.Rows
		} else {
			res.Sections = append(res.Sections, sec)
		}
	}
	how := "from cache"
	if !allValid {
		how = "recomputed and cached"
	}
	res.Message = fmt.Sprintf("%d tuple(s) (%s)", total, how)
	return res, nil
}

func (db *DB) explain(s *ExplainStmt) (*Result, error) {
	var plans []query.Plan
	if s.Query != nil {
		plan, err := db.compile(s.Query)
		if err != nil {
			return nil, err
		}
		plans = []query.Plan{plan}
	} else {
		ids, ok := db.procIDs[s.Proc]
		if !ok {
			return nil, fmt.Errorf("quel: unknown procedure %q", s.Proc)
		}
		for _, id := range ids {
			plans = append(plans, db.procs.MustGet(id).Plan)
		}
	}
	var out []string
	for _, plan := range plans {
		out = append(out, strings.TrimRight(query.Explain(plan), "\n"))
	}
	return &Result{Message: strings.Join(out, "\n")}, nil
}
