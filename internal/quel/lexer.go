// Package quel implements a small QUEL-flavored query language for the
// engine — the INGRES lineage the paper's database procedures come from —
// with a recursive-descent parser and a rule-based planner that compiles
// statements onto the query package's plan nodes.
//
// Supported statements (keywords are case-insensitive):
//
//	create emp (tid, age, dept) cluster on age
//	create dept (dname, floor) hash on dname
//	append to emp (tid = 1, age = 30, dept = 2)
//	retrieve (emp.all) where emp.age >= 30 and emp.age < 40
//	retrieve (emp.tid, dept.floor) where emp.dept = dept.dname and dept.floor = 1
//	retrieve (emp.dept, count(emp.tid), sum(emp.salary)) sort by emp.dept
//	delete from emp where emp.tid = 3
//	replace emp (salary = 99000) where emp.dept = 10
//	define procedure senior as retrieve (emp.all) where emp.age >= 60
//	define procedure report as { retrieve (emp.all) retrieve (dept.all) }
//	execute senior
//	explain retrieve (emp.all) where emp.age = 30
//	explain senior
//
// Attribute values are int64s, as everywhere in this engine.
package quel

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokSymbol // ( ) , . = < > <= >= !=
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	num  int64
	pos  int
}

// lex splits one statement into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '=' || c == '{' || c == '}':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '<' || c == '>' || c == '!':
			text := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				text += "="
				i++
			} else if c == '!' {
				return nil, fmt.Errorf("quel: stray '!' at %d (did you mean '!='?)", i)
			}
			toks = append(toks, token{kind: tokSymbol, text: text, pos: i})
			i++
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			n, err := strconv.ParseInt(input[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("quel: bad number %q at %d", input[i:j], i)
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], num: n, pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToLower(input[i:j]), pos: i})
			i = j
		default:
			return nil, fmt.Errorf("quel: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
