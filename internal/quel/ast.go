package quel

import "dbproc/internal/query"

// Statement is one parsed QUEL statement.
type Statement interface{ statement() }

// CreateStmt defines a relation.
type CreateStmt struct {
	Name   string
	Fields []string
	// Org is "cluster" (B-tree clustered on Key, with an implicit unique
	// tuple-id tiebreaker field "tid", which must be among Fields) or
	// "hash" (static hashing on Key).
	Org     string
	Key     string
	Buckets int // hash only; 0 picks a default
	Width   int // bytes per tuple; 0 picks the session default
}

func (*CreateStmt) statement() {}

// Assign is one field = value pair.
type Assign struct {
	Field string
	Value int64
}

// AppendStmt inserts one tuple.
type AppendStmt struct {
	Rel    string
	Values []Assign
}

func (*AppendStmt) statement() {}

// Target is one retrieve target: rel.attr, rel.all (All = true), or an
// aggregate fn(rel.attr) (Agg set). Plain targets alongside aggregates
// become grouping attributes.
type Target struct {
	Rel  string
	Attr string
	All  bool
	Agg  query.AggFn
}

// Operand is one side of a qualification: a constant or rel.attr.
type Operand struct {
	Const bool
	Value int64
	Rel   string
	Attr  string
}

// Qual is one conjunct of the where clause.
type Qual struct {
	Left  Operand
	Op    query.Op
	Right Operand
}

// RetrieveStmt is a query.
type RetrieveStmt struct {
	Targets []Target
	Quals   []Qual
	// SortBy orders the output by these attributes (ascending); each must
	// also appear in Targets (or belong to a rel.all target).
	SortBy []Target
}

func (*RetrieveStmt) statement() {}

// DeleteStmt removes the tuples of one relation matching the quals.
type DeleteStmt struct {
	Rel   string
	Quals []Qual
}

func (*DeleteStmt) statement() {}

// ReplaceStmt modifies matching tuples in place (QUEL's replace): each
// matched tuple gets the assignments applied — a delete of the old value
// followed by an insert of the new one, as the maintenance layer sees it.
type ReplaceStmt struct {
	Rel    string
	Values []Assign
	Quals  []Qual
}

func (*ReplaceStmt) statement() {}

// DefineProcStmt stores one or more retrieves as a database procedure —
// the paper's "collection of query language statements stored in a field
// of a record". A single-query procedure omits the braces.
type DefineProcStmt struct {
	Name    string
	Queries []*RetrieveStmt
}

func (*DefineProcStmt) statement() {}

// ExecuteStmt processes a query against a stored procedure.
type ExecuteStmt struct{ Name string }

func (*ExecuteStmt) statement() {}

// ExplainStmt prints the compiled plan of a retrieve or of a stored
// procedure (exactly one of Query and Proc is set).
type ExplainStmt struct {
	Query *RetrieveStmt
	Proc  string
}

func (*ExplainStmt) statement() {}
