package quel

import (
	"fmt"

	"dbproc/internal/query"
)

// Parse turns one statement's text into its AST.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text, what string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errf("expected %s, found %q", what, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("quel: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) ident(what string) (string, error) {
	t, err := p.expect(tokIdent, "", what)
	return t.text, err
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.eat(tokIdent, "create"):
		return p.create()
	case p.eat(tokIdent, "append"):
		return p.append_()
	case p.at(tokIdent, "retrieve"):
		return p.retrieve()
	case p.eat(tokIdent, "delete"):
		return p.delete_()
	case p.eat(tokIdent, "replace"):
		return p.replace()
	case p.eat(tokIdent, "define"):
		return p.defineProc()
	case p.eat(tokIdent, "execute"):
		name, err := p.ident("procedure name")
		if err != nil {
			return nil, err
		}
		return &ExecuteStmt{Name: name}, nil
	case p.eat(tokIdent, "explain"):
		if p.at(tokIdent, "retrieve") {
			q, err := p.retrieve()
			if err != nil {
				return nil, err
			}
			return &ExplainStmt{Query: q.(*RetrieveStmt)}, nil
		}
		name, err := p.ident("procedure name or retrieve")
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Proc: name}, nil
	default:
		return nil, p.errf("expected a statement, found %q", p.cur().text)
	}
}

func (p *parser) create() (Statement, error) {
	name, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "(", "'('"); err != nil {
		return nil, err
	}
	stmt := &CreateStmt{Name: name}
	for {
		f, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		stmt.Fields = append(stmt.Fields, f)
		if p.eat(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")", "')'"); err != nil {
		return nil, err
	}
	switch {
	case p.eat(tokIdent, "cluster"):
		stmt.Org = "cluster"
	case p.eat(tokIdent, "hash"):
		stmt.Org = "hash"
	default:
		return nil, p.errf("expected 'cluster on <field>' or 'hash on <field>'")
	}
	if _, err := p.expect(tokIdent, "on", "'on'"); err != nil {
		return nil, err
	}
	if stmt.Key, err = p.ident("key field"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eat(tokIdent, "buckets"):
			t, err := p.expect(tokNumber, "", "bucket count")
			if err != nil {
				return nil, err
			}
			stmt.Buckets = int(t.num)
		case p.eat(tokIdent, "width"):
			t, err := p.expect(tokNumber, "", "tuple width")
			if err != nil {
				return nil, err
			}
			stmt.Width = int(t.num)
		default:
			return stmt, nil
		}
	}
}

func (p *parser) append_() (Statement, error) {
	if _, err := p.expect(tokIdent, "to", "'to'"); err != nil {
		return nil, err
	}
	rel, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "(", "'('"); err != nil {
		return nil, err
	}
	stmt := &AppendStmt{Rel: rel}
	for {
		f, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "=", "'='"); err != nil {
			return nil, err
		}
		v, err := p.expect(tokNumber, "", "value")
		if err != nil {
			return nil, err
		}
		stmt.Values = append(stmt.Values, Assign{Field: f, Value: v.num})
		if p.eat(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")", "')'"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) retrieve() (Statement, error) {
	if _, err := p.expect(tokIdent, "retrieve", "'retrieve'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "(", "'('"); err != nil {
		return nil, err
	}
	stmt := &RetrieveStmt{}
	for {
		tgt, err := p.target()
		if err != nil {
			return nil, err
		}
		stmt.Targets = append(stmt.Targets, tgt)
		if p.eat(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")", "')'"); err != nil {
		return nil, err
	}
	if p.eat(tokIdent, "where") {
		for {
			q, err := p.qual()
			if err != nil {
				return nil, err
			}
			stmt.Quals = append(stmt.Quals, q)
			if p.eat(tokIdent, "and") {
				continue
			}
			break
		}
	}
	if p.eat(tokIdent, "sort") {
		if _, err := p.expect(tokIdent, "by", "'by'"); err != nil {
			return nil, err
		}
		for {
			rel, err := p.ident("relation name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ".", "'.'"); err != nil {
				return nil, err
			}
			attr, err := p.ident("attribute")
			if err != nil {
				return nil, err
			}
			stmt.SortBy = append(stmt.SortBy, Target{Rel: rel, Attr: attr})
			if p.eat(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	return stmt, nil
}

var aggFns = map[string]query.AggFn{
	"count": query.AggCount, "sum": query.AggSum,
	"min": query.AggMin, "max": query.AggMax, "avg": query.AggAvg,
}

// target parses rel.attr, rel.all, or fn(rel.attr).
func (p *parser) target() (Target, error) {
	name, err := p.ident("target")
	if err != nil {
		return Target{}, err
	}
	if fn, isAgg := aggFns[name]; isAgg && p.eat(tokSymbol, "(") {
		rel, err := p.ident("relation name")
		if err != nil {
			return Target{}, err
		}
		if _, err := p.expect(tokSymbol, ".", "'.'"); err != nil {
			return Target{}, err
		}
		attr, err := p.ident("attribute")
		if err != nil {
			return Target{}, err
		}
		if _, err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return Target{}, err
		}
		return Target{Rel: rel, Attr: attr, Agg: fn}, nil
	}
	if _, err := p.expect(tokSymbol, ".", "'.'"); err != nil {
		return Target{}, err
	}
	attr, err := p.ident("attribute or 'all'")
	if err != nil {
		return Target{}, err
	}
	return Target{Rel: name, Attr: attr, All: attr == "all"}, nil
}

func (p *parser) operand() (Operand, error) {
	if p.at(tokNumber, "") {
		t := p.next()
		return Operand{Const: true, Value: t.num}, nil
	}
	rel, err := p.ident("relation.attribute or constant")
	if err != nil {
		return Operand{}, err
	}
	if _, err := p.expect(tokSymbol, ".", "'.'"); err != nil {
		return Operand{}, err
	}
	attr, err := p.ident("attribute")
	if err != nil {
		return Operand{}, err
	}
	return Operand{Rel: rel, Attr: attr}, nil
}

var opFor = map[string]query.Op{
	"=": query.Eq, "!=": query.Ne,
	"<": query.Lt, "<=": query.Le,
	">": query.Gt, ">=": query.Ge,
}

func (p *parser) qual() (Qual, error) {
	left, err := p.operand()
	if err != nil {
		return Qual{}, err
	}
	t := p.cur()
	op, ok := opFor[t.text]
	if t.kind != tokSymbol || !ok {
		return Qual{}, p.errf("expected a comparison operator, found %q", t.text)
	}
	p.next()
	right, err := p.operand()
	if err != nil {
		return Qual{}, err
	}
	if left.Const && right.Const {
		return Qual{}, p.errf("qualification compares two constants")
	}
	return Qual{Left: left, Op: op, Right: right}, nil
}

// quals parses an optional "where q and q and ..." suffix.
func (p *parser) whereQuals() ([]Qual, error) {
	if !p.eat(tokIdent, "where") {
		return nil, nil
	}
	var out []Qual
	for {
		q, err := p.qual()
		if err != nil {
			return nil, err
		}
		out = append(out, q)
		if !p.eat(tokIdent, "and") {
			return out, nil
		}
	}
}

func (p *parser) delete_() (Statement, error) {
	if _, err := p.expect(tokIdent, "from", "'from'"); err != nil {
		return nil, err
	}
	rel, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	quals, err := p.whereQuals()
	if err != nil {
		return nil, err
	}
	return &DeleteStmt{Rel: rel, Quals: quals}, nil
}

func (p *parser) replace() (Statement, error) {
	rel, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "(", "'('"); err != nil {
		return nil, err
	}
	stmt := &ReplaceStmt{Rel: rel}
	for {
		f, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "=", "'='"); err != nil {
			return nil, err
		}
		v, err := p.expect(tokNumber, "", "value")
		if err != nil {
			return nil, err
		}
		stmt.Values = append(stmt.Values, Assign{Field: f, Value: v.num})
		if p.eat(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")", "')'"); err != nil {
		return nil, err
	}
	if stmt.Quals, err = p.whereQuals(); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) defineProc() (Statement, error) {
	if _, err := p.expect(tokIdent, "procedure", "'procedure'"); err != nil {
		return nil, err
	}
	name, err := p.ident("procedure name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "as", "'as'"); err != nil {
		return nil, err
	}
	stmt := &DefineProcStmt{Name: name}
	if p.eat(tokSymbol, "{") {
		for !p.eat(tokSymbol, "}") {
			q, err := p.retrieve()
			if err != nil {
				return nil, err
			}
			stmt.Queries = append(stmt.Queries, q.(*RetrieveStmt))
		}
		if len(stmt.Queries) == 0 {
			return nil, p.errf("procedure body is empty")
		}
		return stmt, nil
	}
	q, err := p.retrieve()
	if err != nil {
		return nil, err
	}
	stmt.Queries = []*RetrieveStmt{q.(*RetrieveStmt)}
	return stmt, nil
}
