package quel

import (
	"fmt"
	"math"

	"dbproc/internal/query"
	"dbproc/internal/relation"
	"dbproc/internal/tuple"
)

// planner compiles a RetrieveStmt onto the query package's plan nodes,
// following the paper's fixed execution shapes: a B-tree range scan on the
// best-restricted clustered relation drives; further relations are joined
// through their hash indexes; leftover qualifications become a filter; the
// target list becomes a projection. Plans are compiled once (at statement
// or procedure-definition time), the "statically optimized" regime.
type planner struct {
	cat   *relation.Catalog
	width int
}

// field names in join outputs: the driver's attributes keep their names;
// each joined relation's attributes carry "<rel>_".
func outField(driver, rel, attr string) string {
	if rel == driver {
		return attr
	}
	return rel + "_" + attr
}

// flip mirrors an operator when its operands are swapped.
func flip(op query.Op) query.Op {
	switch op {
	case query.Lt:
		return query.Gt
	case query.Le:
		return query.Ge
	case query.Gt:
		return query.Lt
	case query.Ge:
		return query.Le
	default:
		return op
	}
}

// maxKeyValue bounds clustering attribute values (tuple.ClusterKey packs
// them into 32 bits).
const maxKeyValue = int64(math.MaxUint32)

func (pl *planner) plan(r *RetrieveStmt) (query.Plan, error) {
	if len(r.Targets) == 0 {
		return nil, fmt.Errorf("quel: no targets")
	}

	// Resolve the referenced relations (in first-mention order) and check
	// every attribute.
	var relOrder []string
	rels := map[string]*relation.Relation{}
	mention := func(name string) error {
		if _, ok := rels[name]; ok {
			return nil
		}
		rel := pl.cat.Lookup(name)
		if rel == nil {
			return fmt.Errorf("quel: unknown relation %q", name)
		}
		rels[name] = rel
		relOrder = append(relOrder, name)
		return nil
	}
	checkAttr := func(rel, attr string) error {
		if err := mention(rel); err != nil {
			return err
		}
		if rels[rel].Schema().FieldIndex(attr) < 0 {
			return fmt.Errorf("quel: relation %q has no attribute %q", rel, attr)
		}
		return nil
	}
	hasAgg := false
	for _, tgt := range r.Targets {
		if tgt.Agg != "" {
			hasAgg = true
		}
		if tgt.All {
			if err := mention(tgt.Rel); err != nil {
				return nil, err
			}
			continue
		}
		if err := checkAttr(tgt.Rel, tgt.Attr); err != nil {
			return nil, err
		}
	}
	// Normalize quals: constants to the right.
	quals := make([]Qual, len(r.Quals))
	for i, q := range r.Quals {
		if q.Left.Const {
			q.Left, q.Op, q.Right = q.Right, flip(q.Op), q.Left
		}
		if err := checkAttr(q.Left.Rel, q.Left.Attr); err != nil {
			return nil, err
		}
		if !q.Right.Const {
			if err := checkAttr(q.Right.Rel, q.Right.Attr); err != nil {
				return nil, err
			}
		}
		quals[i] = q
	}

	// Pick the driver: the clustered relation with a constant restriction
	// on its clustering attribute, else any clustered relation, else (for
	// single-relation queries) a hash scan.
	driver := ""
	for _, name := range relOrder {
		rel := rels[name]
		if rel.Tree() == nil {
			continue
		}
		clusterAttr := rel.Schema().FieldName(rel.ClusterField())
		restricted := false
		for _, q := range quals {
			if q.Right.Const && q.Left.Rel == name && q.Left.Attr == clusterAttr && q.Op != query.Ne {
				restricted = true
				break
			}
		}
		if restricted {
			driver = name
			break
		}
		if driver == "" {
			driver = name
		}
	}

	var plan query.Plan
	consumed := make([]bool, len(quals))
	switch {
	case driver != "":
		rel := rels[driver]
		clusterAttr := rel.Schema().FieldName(rel.ClusterField())
		lo, hi := int64(0), maxKeyValue
		for i, q := range quals {
			if !q.Right.Const || q.Left.Rel != driver || q.Left.Attr != clusterAttr {
				continue
			}
			v := q.Right.Value
			switch q.Op {
			case query.Eq:
				lo, hi = max64(lo, v), min64(hi, v)
			case query.Le:
				hi = min64(hi, v)
			case query.Lt:
				hi = min64(hi, v-1)
			case query.Ge:
				lo = max64(lo, v)
			case query.Gt:
				lo = max64(lo, v+1)
			default:
				continue // != stays a filter
			}
			consumed[i] = true
		}
		plan = query.NewBTreeRangeScan(rel, lo, hi)
	case len(relOrder) == 1:
		plan = query.NewHashScan(rels[relOrder[0]])
		driver = relOrder[0]
	default:
		return nil, fmt.Errorf("quel: joins need at least one clustered relation to drive the scan")
	}

	// Join in the remaining relations through their hash indexes.
	joined := map[string]bool{driver: true}
	for len(joined) < len(relOrder) {
		progressed := false
		for i, q := range quals {
			if consumed[i] || q.Right.Const || q.Op != query.Eq {
				continue
			}
			l, r := q.Left, q.Right
			if joined[r.Rel] && !joined[l.Rel] {
				l, r = r, l
			}
			if !joined[l.Rel] || joined[r.Rel] {
				continue
			}
			target := rels[r.Rel]
			if target.Hash() == nil {
				return nil, fmt.Errorf("quel: cannot join %s: not hash-organized", r.Rel)
			}
			hashAttr := target.Schema().FieldName(target.HashField())
			if r.Attr != hashAttr {
				return nil, fmt.Errorf("quel: join on %s.%s needs the hash attribute %s.%s",
					r.Rel, r.Attr, r.Rel, hashAttr)
			}
			width := pl.joinWidth(plan.Schema().NumFields() + target.Schema().NumFields())
			plan = query.NewHashJoinProbe(plan, target, outField(driver, l.Rel, l.Attr), width)
			joined[r.Rel] = true
			consumed[i] = true
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("quel: no usable join path (joins must equate an attribute of an already-joined relation with another relation's hash attribute)")
		}
	}

	// Leftover qualifications become one filter.
	var preds query.And
	for i, q := range quals {
		if consumed[i] {
			continue
		}
		lf := outField(driver, q.Left.Rel, q.Left.Attr)
		if q.Right.Const {
			preds = append(preds, query.Compare{Field: lf, Op: q.Op, Value: q.Right.Value})
			continue
		}
		rf := outField(driver, q.Right.Rel, q.Right.Attr)
		preds = append(preds, attrCompare{Left: lf, Op: q.Op, Right: rf})
	}
	if len(preds) > 0 {
		plan = &query.Filter{Child: plan, Pred: preds}
	}

	var final query.Plan
	if hasAgg {
		// Plain targets become grouping attributes; aggregates compute per
		// group (one row total if there are none).
		var groupBy, fields, names []string
		var aggs []query.AggSpec
		for _, tgt := range r.Targets {
			if tgt.All {
				return nil, fmt.Errorf("quel: rel.all cannot be mixed with aggregates")
			}
			if tgt.Agg == "" {
				f := outField(driver, tgt.Rel, tgt.Attr)
				groupBy = append(groupBy, f)
				fields = append(fields, f)
				names = append(names, tgt.Rel+"_"+tgt.Attr)
				continue
			}
			name := string(tgt.Agg) + "_" + tgt.Rel + "_" + tgt.Attr
			aggs = append(aggs, query.AggSpec{
				Fn:    tgt.Agg,
				Field: outField(driver, tgt.Rel, tgt.Attr),
				Name:  name,
			})
			fields = append(fields, name)
			names = append(names, name)
		}
		final = query.NewProject(query.NewAggregate(plan, groupBy, aggs), fields, names)
	} else {
		// Projection from the target list.
		var fields, names []string
		for _, tgt := range r.Targets {
			if tgt.All {
				sch := rels[tgt.Rel].Schema()
				for i := 0; i < sch.NumFields(); i++ {
					fields = append(fields, outField(driver, tgt.Rel, sch.FieldName(i)))
					names = append(names, tgt.Rel+"_"+sch.FieldName(i))
				}
				continue
			}
			fields = append(fields, outField(driver, tgt.Rel, tgt.Attr))
			names = append(names, tgt.Rel+"_"+tgt.Attr)
		}
		final = query.NewProject(plan, fields, names)
	}

	if len(r.SortBy) > 0 {
		var sortFields []string
		for _, tgt := range r.SortBy {
			name := tgt.Rel + "_" + tgt.Attr
			if final.Schema().FieldIndex(name) < 0 {
				return nil, fmt.Errorf("quel: sort attribute %s.%s is not among the targets", tgt.Rel, tgt.Attr)
			}
			sortFields = append(sortFields, name)
		}
		final = query.NewSort(final, sortFields)
	}
	return final, nil
}

// joinWidth sizes join output tuples: the session default, grown when a
// wide join needs more room for its attributes.
func (pl *planner) joinWidth(nFields int) int {
	if need := 8 * nFields; need > pl.width {
		return need
	}
	return pl.width
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// attrCompare is the attribute-op-attribute predicate of QUEL quals (the
// query package's Compare handles attribute-op-constant).
type attrCompare struct {
	Left  string
	Op    query.Op
	Right string
}

// Eval implements query.Predicate.
func (c attrCompare) Eval(s *tuple.Schema, tup []byte) bool {
	return c.Op.Eval(s.GetByName(tup, c.Left), s.GetByName(tup, c.Right))
}

// String implements query.Predicate.
func (c attrCompare) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}
