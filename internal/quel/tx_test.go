package quel

import (
	"fmt"
	"strings"
	"testing"
)

// rowsOf retrieves every emp tuple, for before/after comparison.
func rowsOf(t *testing.T, db *DB) string {
	t.Helper()
	res, err := db.Run("retrieve (emp.all) where emp.age >= 0")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%v\n", row)
	}
	return b.String()
}

func TestTxCommitKeepsEffects(t *testing.T) {
	db := newDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("nested Begin accepted")
	}
	res, err := db.Run("append to emp (tid = 9, age = 99, dept = 10, salary = 1)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("append Affected = %d, want 1", res.Affected)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.InTx() {
		t.Fatal("tx still open after commit")
	}
	res, err = db.Run("retrieve (emp.tid) where emp.age = 99")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("committed append lost: %v", res.Rows)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestTxRollbackRestoresBaseTables(t *testing.T) {
	db := newDB(t)
	before := rowsOf(t, db)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	stmts := []struct {
		text     string
		affected int64
	}{
		{"append to emp (tid = 9, age = 99, dept = 10, salary = 1)", 1},
		{"delete from emp where emp.age = 35", 2},
		{"replace emp (salary = 0) where emp.dept = 10", 3}, // tids 1, 2 and the new 9
	}
	for _, s := range stmts {
		res, err := db.Run(s.text)
		if err != nil {
			t.Fatalf("%s: %v", s.text, err)
		}
		if res.Affected != s.affected {
			t.Fatalf("%s: Affected = %d, want %d", s.text, res.Affected, s.affected)
		}
	}
	// The transaction sees its own writes.
	mid, err := db.Run("retrieve (emp.tid) where emp.age = 35")
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Rows) != 0 {
		t.Fatalf("deleted rows still visible in tx: %v", mid.Rows)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if after := rowsOf(t, db); after != before {
		t.Fatalf("rollback did not restore emp:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if err := tx.Rollback(); err == nil {
		t.Fatal("double rollback accepted")
	}
}

func TestTxRollbackReinvalidatesProcedureCache(t *testing.T) {
	db := newDB(t)
	if _, err := db.Run("define procedure seniors as retrieve (emp.all) where emp.age >= 41"); err != nil {
		t.Fatal(err)
	}
	run := func(stmt string) *Result {
		t.Helper()
		res, err := db.Run(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		return res
	}
	if res := run("execute seniors"); len(res.Rows) != 2 {
		t.Fatalf("warm execute: %d rows", len(res.Rows))
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	run("append to emp (tid = 9, age = 80, dept = 10, salary = 1)")
	// The cache saw the invalidation; executing inside the tx recomputes
	// over the transactional state.
	if res := run("execute seniors"); len(res.Rows) != 3 {
		t.Fatalf("in-tx execute: %d rows, want 3", len(res.Rows))
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The rollback's inverse delta re-invalidated the entry, so the next
	// execute recomputes against the restored base state.
	if res := run("execute seniors"); len(res.Rows) != 2 {
		t.Fatalf("post-rollback execute: %d rows, want 2", len(res.Rows))
	}
}

func TestTxRejectsDDL(t *testing.T) {
	db := newDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	for _, ddl := range []string{
		"create late (tid, a) cluster on a",
		"define procedure p as retrieve (emp.tid) where emp.age = 35",
	} {
		if _, err := db.Run(ddl); err == nil {
			t.Errorf("%q accepted inside tx", ddl)
		}
	}
	// Reads are fine.
	if _, err := db.Run("retrieve (emp.tid) where emp.age = 35"); err != nil {
		t.Errorf("read inside tx: %v", err)
	}
}

func TestTxRollbackIsUncharged(t *testing.T) {
	db := newDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run("delete from emp where emp.age >= 0"); err != nil {
		t.Fatal(err)
	}
	before := db.Meter().Milliseconds()
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if after := db.Meter().Milliseconds(); after != before {
		t.Fatalf("rollback charged %v ms", after-before)
	}
}
