package quel

import (
	"fmt"
	"testing"

	"dbproc/internal/metric"
)

func benchDB(b *testing.B) *DB {
	b.Helper()
	db := Open(4000, 100, metric.DefaultCosts())
	stmts := []string{
		"create emp (tid, age, dept, salary) cluster on age",
		"create dept (dname, floor) hash on dname buckets 8",
	}
	for _, s := range stmts {
		if _, err := db.Run(s); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		stmt := fmt.Sprintf("append to emp (tid = %d, age = %d, dept = %d, salary = %d)",
			i, i%80, i%10, 30000+i)
		if _, err := db.Run(stmt); err != nil {
			b.Fatal(err)
		}
	}
	for d := 0; d < 10; d++ {
		if _, err := db.Run(fmt.Sprintf("append to dept (dname = %d, floor = %d)", d, d%3)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkParse(b *testing.B) {
	const stmt = "retrieve (emp.tid, dept.floor, count(emp.salary)) where emp.age >= 30 and emp.age < 40 and emp.dept = dept.dname"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanJoin(b *testing.B) {
	db := benchDB(b)
	stmt, err := Parse("retrieve (emp.tid) where emp.age >= 30 and emp.age < 40 and emp.dept = dept.dname and dept.floor = 1")
	if err != nil {
		b.Fatal(err)
	}
	r := stmt.(*RetrieveStmt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.compile(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieveJoin(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run("retrieve (emp.tid, dept.floor) where emp.age >= 30 and emp.age < 40 and emp.dept = dept.dname and dept.floor = 1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteCachedProcedure(b *testing.B) {
	db := benchDB(b)
	if _, err := db.Run("define procedure p as retrieve (emp.all) where emp.age >= 30 and emp.age < 40"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run("execute p"); err != nil {
			b.Fatal(err)
		}
	}
}
