package quel

import (
	"strings"
	"sync"
	"testing"

	"dbproc/internal/metric"
	"dbproc/internal/query"
)

// fuzzDB builds the fixture catalog the planner is fuzzed against: the
// clustered and hashed relations the package tests use. Plan compilation
// is read-only against the catalog, so one session serves every input.
func fuzzDB(f *testing.F) *DB {
	db := Open(0, 0, metric.Costs{C1: 1, C2: 30, C3: 1})
	for _, stmt := range []string{
		"create emp (tid, age, dept, salary) cluster on age",
		"create dept (dname, floor) hash on dname buckets 4",
	} {
		if _, err := db.Run(stmt); err != nil {
			f.Fatalf("fixture %q: %v", stmt, err)
		}
	}
	return db
}

// FuzzParse asserts the no-panic contract of the QUEL front end: Parse
// must return a Statement or an error for arbitrary input, and the
// planner must compile any parsed retrieve against a real catalog without
// panicking (unknown relations and attributes are errors, not crashes).
// Execution is deliberately out of scope — creates and appends can
// allocate proportionally to their literals, which is the session layer's
// recover()'s job, not the parser's.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"create emp (tid, age, dept, salary) cluster on age",
		"create dept (dname, floor) hash on dname buckets 4",
		"create z (a, b, c, d, e, f, g, h, i) hash on a width 16",
		"create y (a) sorted on a",
		"append to emp (tid = 1, age = 35, dept = 10, salary = 50000)",
		"append to dept (dname = 10, floor = 1)",
		"retrieve (emp.all) where emp.age >= 31 and emp.age <= 41",
		"retrieve (emp.tid, emp.salary) where emp.age = 35",
		"retrieve (emp.tid, dept.floor) where emp.dept = dept.dname and dept.floor = 1",
		"retrieve (emp.tid) where 31 <= emp.age and emp.dept = dept.dname and 1 = dept.floor",
		"retrieve (emp.tid) where emp.tid < emp.dept",
		"define procedure seniors as retrieve (emp.all) where emp.age >= 41",
		"execute seniors",
		"delete emp where emp.age = 35",
		"replace emp (salary = 1) where emp.tid = 1",
		"explain retrieve (emp.all) where emp.age = 35",
		"",
		"retrieve (",
		"retrieve (emp.all) where",
		"append to emp (tid = 99999999999999999999)",
	} {
		f.Add(seed)
	}
	db := fuzzDB(f)
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		if r, ok := stmt.(*RetrieveStmt); ok {
			if _, err := db.compile(r); err != nil {
				return
			}
		}
	})
}

// FuzzPlan asserts the planner contracts the concurrent engine leans on,
// over whole shell transcripts (newline-separated statements, the shape
// of a multi-session shell session):
//
//   - compilation is deterministic: planning the same retrieve twice
//     renders the identical plan, so two sessions compiling one
//     procedure access cannot disagree;
//   - compilation is read-only and race-safe against a shared catalog:
//     two goroutines planning the same statement concurrently produce
//     that same rendering (run under -race, this is also a data-race
//     probe of the catalog and planner).
//
// The seed corpus in testdata/fuzz/FuzzPlan holds transcripts recorded
// from interleaved shell sessions.
func FuzzPlan(f *testing.F) {
	for _, seed := range []string{
		"retrieve (emp.all) where emp.age >= 31 and emp.age <= 41",
		"retrieve (emp.tid, dept.floor) where emp.dept = dept.dname and dept.floor = 1\nretrieve (emp.tid, emp.salary) where emp.age = 35",
		"explain retrieve (emp.all) where emp.age = 35\nretrieve (emp.all) where emp.age >= 41\nretrieve (dept.all) where dept.floor = 2",
		"retrieve (emp.tid) where emp.tid < emp.dept\nnot a statement\nretrieve (emp.all)",
	} {
		f.Add(seed)
	}
	db := fuzzDB(f)
	f.Fuzz(func(t *testing.T, transcript string) {
		for _, line := range strings.Split(transcript, "\n") {
			stmt, err := Parse(line)
			if err != nil {
				continue
			}
			r, ok := stmt.(*RetrieveStmt)
			if !ok {
				continue
			}
			plan1, err := db.compile(r)
			if err != nil {
				continue
			}
			want := query.Explain(plan1)
			var wg sync.WaitGroup
			renders := make([]string, 2)
			for i := range renders {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					p, err := db.compile(r)
					if err != nil {
						return
					}
					renders[i] = query.Explain(p)
				}(i)
			}
			wg.Wait()
			for i, got := range renders {
				if got != want {
					t.Fatalf("compile %d of %q diverged:\n--- first\n%s\n--- concurrent\n%s",
						i, line, want, got)
				}
			}
		}
	})
}
