package quel

import "fmt"

// Tx is an undo-log transaction over the session: every mutating
// statement (append, delete, replace) executed while the transaction is
// open logs an inverse closure, and Rollback applies the closures in
// reverse. The inverses restore the base tables exactly and re-run the
// strategy's OnUpdate hook with the inverse delta, so cached procedure
// results that saw the rolled-back state are invalidated again and the
// next access recomputes from the restored base. DDL (create, define
// procedure) has no undo entries and is rejected inside a transaction.
//
// Rollback work is uncharged and unmetered — undo is bookkeeping, not
// workload, exactly like the simulator's uncharged base-table updates.
//
// Isolation across connections is the server's job (cmd/procserved
// holds its statement gate from Begin to Commit/Rollback); the DB
// itself supports one open transaction at a time.
type Tx struct {
	db   *DB
	undo []func()
	done bool
}

// Begin opens a transaction. It fails if one is already open.
func (db *DB) Begin() (*Tx, error) {
	if db.tx != nil {
		return nil, fmt.Errorf("quel: transaction already open")
	}
	db.tx = &Tx{db: db}
	return db.tx, nil
}

// InTx reports whether a transaction is open.
func (db *DB) InTx() bool { return db.tx != nil }

// log records one inverse closure.
func (t *Tx) log(undo func()) { t.undo = append(t.undo, undo) }

// Commit makes the transaction's effects permanent (they are already
// applied; commit just discards the undo log).
func (t *Tx) Commit() error {
	if t.done {
		return fmt.Errorf("quel: transaction already closed")
	}
	t.done = true
	t.db.tx = nil
	t.undo = nil
	return nil
}

// Rollback undoes the transaction's statements in reverse order.
func (t *Tx) Rollback() (err error) {
	if t.done {
		return fmt.Errorf("quel: transaction already closed")
	}
	t.done = true
	db := t.db
	db.tx = nil
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("quel: rollback: %v", r)
		}
	}()
	prevCharge := db.pager.SetCharging(false)
	prevMute := db.meter.SetMuted(true)
	db.pager.BeginOp()
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	db.pager.BeginOp() // flush the uncharged undo writes
	db.meter.SetMuted(prevMute)
	db.pager.SetCharging(prevCharge)
	t.undo = nil
	return nil
}
