package ilock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func collect(m *Manager, rel string, v int64) []Owner {
	var got []Owner
	m.Conflicts(rel, v, func(o Owner) { got = append(got, o) })
	return got
}

func TestRangeConflicts(t *testing.T) {
	m := NewManager()
	m.LockRange("r1", 10, 19, 1)
	m.LockRange("r1", 15, 30, 2)
	m.LockRange("r1", 100, 100, 3)

	cases := map[int64][]Owner{
		9:   nil,
		10:  {1},
		15:  {1, 2},
		19:  {1, 2},
		20:  {2},
		31:  nil,
		100: {3},
	}
	for v, want := range cases {
		got := collect(m, "r1", v)
		if len(got) != len(want) {
			t.Errorf("v=%d: conflicts %v, want %v", v, got, want)
			continue
		}
		seen := map[Owner]bool{}
		for _, o := range got {
			seen[o] = true
		}
		for _, o := range want {
			if !seen[o] {
				t.Errorf("v=%d: conflicts %v missing %v", v, got, o)
			}
		}
	}
	// Other relations are independent.
	if got := collect(m, "r2", 15); got != nil {
		t.Errorf("wrong relation conflicted: %v", got)
	}
}

func TestKeyLocks(t *testing.T) {
	m := NewManager()
	m.LockKey("r2", 7, 1)
	m.LockKey("r2", 7, 2)
	m.LockKey("r2", 8, 1)
	if got := collect(m, "r2", 7); len(got) != 2 {
		t.Fatalf("key 7 conflicts = %v", got)
	}
	if got := collect(m, "r2", 9); got != nil {
		t.Fatalf("key 9 conflicts = %v", got)
	}
	if m.HoldCount(1) != 2 || m.HoldCount(2) != 1 {
		t.Fatalf("HoldCount = %d, %d", m.HoldCount(1), m.HoldCount(2))
	}
}

func TestRelease(t *testing.T) {
	m := NewManager()
	m.LockRange("r1", 0, 100, 1)
	m.LockRange("r1", 50, 60, 2)
	m.LockKey("r2", 5, 1)
	m.Release(1)
	if got := collect(m, "r1", 55); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after release, conflicts = %v, want [2]", got)
	}
	if got := collect(m, "r2", 5); got != nil {
		t.Fatalf("key lock survived release: %v", got)
	}
	if m.HoldCount(1) != 0 {
		t.Fatalf("HoldCount(1) = %d after release", m.HoldCount(1))
	}
	// Releasing an owner with no locks is a no-op.
	m.Release(42)
	// Re-locking after release works.
	m.LockRange("r1", 55, 55, 1)
	if got := collect(m, "r1", 55); len(got) != 2 {
		t.Fatalf("re-lock failed: %v", got)
	}
}

func TestConflictSetDeduplicates(t *testing.T) {
	m := NewManager()
	m.LockRange("r1", 0, 10, 1)
	m.LockRange("r1", 5, 15, 1) // same owner, overlapping
	m.LockKey("r1", 7, 1)
	set := map[Owner]struct{}{}
	m.ConflictSet("r1", 7, set)
	if len(set) != 1 {
		t.Fatalf("ConflictSet = %v, want one owner", set)
	}
}

func TestInvertedIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager().LockRange("r1", 5, 4, 1)
}

// Property: Conflicts agrees with a brute-force reference over random lock
// tables and probes, including after random releases.
func TestConflictsMatchReference(t *testing.T) {
	type lk struct {
		lo, hi int64
		owner  Owner
		key    bool
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager()
		var locks []lk
		for i := 0; i < 40; i++ {
			owner := Owner(rng.Intn(8))
			if rng.Intn(3) == 0 {
				k := int64(rng.Intn(50))
				m.LockKey("r", k, owner)
				locks = append(locks, lk{k, k, owner, true})
			} else {
				lo := int64(rng.Intn(50))
				hi := lo + int64(rng.Intn(20))
				m.LockRange("r", lo, hi, owner)
				locks = append(locks, lk{lo, hi, owner, false})
			}
		}
		// Release a couple of owners entirely.
		for _, o := range []Owner{Owner(rng.Intn(8)), Owner(rng.Intn(8))} {
			m.Release(o)
			kept := locks[:0]
			for _, l := range locks {
				if l.owner != o {
					kept = append(kept, l)
				}
			}
			locks = kept
		}
		for v := int64(0); v < 75; v++ {
			want := map[Owner]int{}
			for _, l := range locks {
				if v >= l.lo && v <= l.hi {
					want[l.owner]++
				}
			}
			got := map[Owner]int{}
			m.Conflicts("r", v, func(o Owner) { got[o]++ })
			if len(got) != len(want) {
				return false
			}
			for o, n := range want {
				if got[o] != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
