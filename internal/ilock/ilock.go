// Package ilock implements invalidate locks ("i-locks") via rule indexing,
// the mechanism of Stonebraker, Sellis and Hanson (1986) the paper relies
// on: when a procedure's value is computed, persistent locks are set on
// all data read — index intervals for B-tree range reads, keys for hash
// probes. A later write that falls inside a locked interval conflicts, and
// the lock's owner (the cached procedure value) must be invalidated or
// differentially maintained.
//
// Conflict detection itself is lock-manager machinery and charges no cost;
// what the strategies do with a conflict (invalidate, screen, join) is
// charged by them. The cost model likewise prices invalidation recording
// and screening but not the lock check.
package ilock

import (
	"sort"
	"sync"
)

// Owner identifies the holder of an i-lock: a cached procedure value or a
// maintained view.
type Owner int

// Manager is the i-lock table for one database. It is safe for concurrent
// use: the table is shared by every session of the concurrent engine, and
// one session setting locks while another scans for conflicts must each
// see a consistent table. Atomicity across calls (e.g. conflict detection
// coupled with a validity flip) is the caller's concern — the engine's
// lock footprints provide it.
type Manager struct {
	mu     sync.RWMutex
	rels   map[string]*relLocks
	owners map[Owner][]lockRef
}

type relLocks struct {
	// intervals, kept sorted by lo for deterministic iteration and an
	// early-out on scan. Overlapping intervals from different owners are
	// expected (procedures share attribute ranges).
	intervals []interval
	// keys maps an exact locked value to its owners.
	keys map[int64][]Owner
}

type interval struct {
	lo, hi int64
	owner  Owner
}

type lockRef struct {
	rel string
	// For interval locks, the bounds; key locks use lo == hi and isKey.
	lo, hi int64
	isKey  bool
}

// NewManager returns an empty i-lock table.
func NewManager() *Manager {
	return &Manager{
		rels:   make(map[string]*relLocks),
		owners: make(map[Owner][]lockRef),
	}
}

func (m *Manager) rel(name string) *relLocks {
	r := m.rels[name]
	if r == nil {
		r = &relLocks{keys: make(map[int64][]Owner)}
		m.rels[name] = r
	}
	return r
}

// LockRange sets an interval i-lock on relation rel's indexed attribute
// values [lo, hi] (inclusive) for owner.
func (m *Manager) LockRange(rel string, lo, hi int64, owner Owner) {
	if lo > hi {
		panic("ilock: inverted interval")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.rel(rel)
	iv := interval{lo: lo, hi: hi, owner: owner}
	pos := sort.Search(len(r.intervals), func(i int) bool { return r.intervals[i].lo >= lo })
	r.intervals = append(r.intervals, interval{})
	copy(r.intervals[pos+1:], r.intervals[pos:])
	r.intervals[pos] = iv
	m.owners[owner] = append(m.owners[owner], lockRef{rel: rel, lo: lo, hi: hi})
}

// LockKey sets a key i-lock on relation rel's indexed attribute value key
// for owner (the lock form of a hash-index probe).
func (m *Manager) LockKey(rel string, key int64, owner Owner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.rel(rel)
	r.keys[key] = append(r.keys[key], owner)
	m.owners[owner] = append(m.owners[owner], lockRef{rel: rel, lo: key, hi: key, isKey: true})
}

// Release removes every lock held by owner.
func (m *Manager) Release(owner Owner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	refs := m.owners[owner]
	if refs == nil {
		return
	}
	delete(m.owners, owner)
	for _, ref := range refs {
		r := m.rels[ref.rel]
		if r == nil {
			continue
		}
		if ref.isKey {
			owners := r.keys[ref.lo]
			for i, o := range owners {
				if o == owner {
					r.keys[ref.lo] = append(owners[:i], owners[i+1:]...)
					break
				}
			}
			if len(r.keys[ref.lo]) == 0 {
				delete(r.keys, ref.lo)
			}
			continue
		}
		for i := range r.intervals {
			iv := r.intervals[i]
			if iv.owner == owner && iv.lo == ref.lo && iv.hi == ref.hi {
				r.intervals = append(r.intervals[:i], r.intervals[i+1:]...)
				break
			}
		}
	}
}

// HoldCount returns the number of locks held by owner.
func (m *Manager) HoldCount(owner Owner) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.owners[owner])
}

// Conflicts calls fn once per lock that conflicts with a write of the
// indexed attribute value v on relation rel. An owner holding several
// conflicting locks is reported once per lock; use ConflictSet for the
// deduplicated owner set.
func (m *Manager) Conflicts(rel string, v int64, fn func(Owner)) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r := m.rels[rel]
	if r == nil {
		return
	}
	for _, iv := range r.intervals {
		if iv.lo > v {
			break // sorted by lo: nothing further can cover v
		}
		if v <= iv.hi {
			fn(iv.owner)
		}
	}
	for _, o := range r.keys[v] {
		fn(o)
	}
}

// ConflictSet accumulates into set the owners whose locks conflict with a
// write of value v on rel.
func (m *Manager) ConflictSet(rel string, v int64, set map[Owner]struct{}) {
	m.Conflicts(rel, v, func(o Owner) { set[o] = struct{}{} })
}
