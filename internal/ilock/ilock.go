// Package ilock implements invalidate locks ("i-locks") via rule indexing,
// the mechanism of Stonebraker, Sellis and Hanson (1986) the paper relies
// on: when a procedure's value is computed, persistent locks are set on
// all data read — index intervals for B-tree range reads, keys for hash
// probes. A later write that falls inside a locked interval conflicts, and
// the lock's owner (the cached procedure value) must be invalidated or
// differentially maintained.
//
// Conflict detection itself is lock-manager machinery and charges no cost;
// what the strategies do with a conflict (invalidate, screen, join) is
// charged by them. The cost model likewise prices invalidation recording
// and screening but not the lock check.
package ilock

import (
	"sort"
	"sync"
)

// Owner identifies the holder of an i-lock: a cached procedure value or a
// maintained view.
type Owner int

// Manager is the i-lock table for one database. It is safe for concurrent
// use and striped per relation: the relation directory and the owner
// index each have their own lock, and every relation's interval/key
// buckets have theirs, so sessions setting locks on one relation do not
// serialize against sessions probing another. No path holds two stripe
// locks at once, so the striping cannot deadlock. Atomicity across calls
// (e.g. conflict detection coupled with a validity flip) is the caller's
// concern — the engine's lock footprints provide it.
type Manager struct {
	relMu sync.RWMutex
	rels  map[string]*relLocks

	ownerMu sync.Mutex
	owners  map[Owner][]lockRef
}

type relLocks struct {
	mu sync.RWMutex
	// intervals, kept sorted by lo for deterministic iteration and an
	// early-out on scan. Overlapping intervals from different owners are
	// expected (procedures share attribute ranges).
	intervals []interval
	// keys maps an exact locked value to its owners.
	keys map[int64][]Owner
}

type interval struct {
	lo, hi int64
	owner  Owner
}

type lockRef struct {
	rel string
	// For interval locks, the bounds; key locks use lo == hi and isKey.
	lo, hi int64
	isKey  bool
}

// NewManager returns an empty i-lock table.
func NewManager() *Manager {
	return &Manager{
		rels:   make(map[string]*relLocks),
		owners: make(map[Owner][]lockRef),
	}
}

// rel returns the bucket for name, creating it if needed.
func (m *Manager) rel(name string) *relLocks {
	m.relMu.RLock()
	r := m.rels[name]
	m.relMu.RUnlock()
	if r != nil {
		return r
	}
	m.relMu.Lock()
	defer m.relMu.Unlock()
	if r = m.rels[name]; r == nil {
		r = &relLocks{keys: make(map[int64][]Owner)}
		m.rels[name] = r
	}
	return r
}

// lookup returns the bucket for name, or nil.
func (m *Manager) lookup(name string) *relLocks {
	m.relMu.RLock()
	defer m.relMu.RUnlock()
	return m.rels[name]
}

// addRef records that owner holds ref.
func (m *Manager) addRef(owner Owner, ref lockRef) {
	m.ownerMu.Lock()
	m.owners[owner] = append(m.owners[owner], ref)
	m.ownerMu.Unlock()
}

// LockRange sets an interval i-lock on relation rel's indexed attribute
// values [lo, hi] (inclusive) for owner.
func (m *Manager) LockRange(rel string, lo, hi int64, owner Owner) {
	if lo > hi {
		panic("ilock: inverted interval")
	}
	r := m.rel(rel)
	r.mu.Lock()
	iv := interval{lo: lo, hi: hi, owner: owner}
	pos := sort.Search(len(r.intervals), func(i int) bool { return r.intervals[i].lo >= lo })
	r.intervals = append(r.intervals, interval{})
	copy(r.intervals[pos+1:], r.intervals[pos:])
	r.intervals[pos] = iv
	r.mu.Unlock()
	m.addRef(owner, lockRef{rel: rel, lo: lo, hi: hi})
}

// LockKey sets a key i-lock on relation rel's indexed attribute value key
// for owner (the lock form of a hash-index probe).
func (m *Manager) LockKey(rel string, key int64, owner Owner) {
	r := m.rel(rel)
	r.mu.Lock()
	r.keys[key] = append(r.keys[key], owner)
	r.mu.Unlock()
	m.addRef(owner, lockRef{rel: rel, lo: key, hi: key, isKey: true})
}

// Ref describes one lock for ReplaceOwner. Key locks use Lo == Hi with
// IsKey set; interval locks use the inclusive bounds.
type Ref struct {
	Rel    string
	Lo, Hi int64
	IsKey  bool
}

// ReplaceOwner swaps owner's lock set for refs by adding every new lock
// before removing any old one. A concurrent update's conflict probe
// therefore always sees at least one of the two sets — the footprint
// never transiently disappears, so an invalidation can be spuriously
// duplicated (harmless: Invalidate is idempotent per update) but never
// missed. This is what lets a snapshot-read refresh rebuild its footprint
// without holding the entry's value locked (docs/MVCC.md).
func (m *Manager) ReplaceOwner(owner Owner, refs []Ref) {
	m.ownerMu.Lock()
	old := m.owners[owner]
	delete(m.owners, owner)
	m.ownerMu.Unlock()
	newRefs := make([]lockRef, 0, len(refs))
	for _, ref := range refs {
		r := m.rel(ref.Rel)
		r.mu.Lock()
		if ref.IsKey {
			r.keys[ref.Lo] = append(r.keys[ref.Lo], owner)
		} else {
			if ref.Lo > ref.Hi {
				r.mu.Unlock()
				panic("ilock: inverted interval")
			}
			iv := interval{lo: ref.Lo, hi: ref.Hi, owner: owner}
			pos := sort.Search(len(r.intervals), func(i int) bool { return r.intervals[i].lo >= ref.Lo })
			r.intervals = append(r.intervals, interval{})
			copy(r.intervals[pos+1:], r.intervals[pos:])
			r.intervals[pos] = iv
			r.mu.Unlock()
			newRefs = append(newRefs, lockRef{rel: ref.Rel, lo: ref.Lo, hi: ref.Hi})
			continue
		}
		r.mu.Unlock()
		newRefs = append(newRefs, lockRef{rel: ref.Rel, lo: ref.Lo, hi: ref.Hi, isKey: true})
	}
	m.ownerMu.Lock()
	m.owners[owner] = append(m.owners[owner], newRefs...)
	m.ownerMu.Unlock()
	// Old locks go last: identical (owner, rel, bounds) pairs exist twice
	// in the buckets during the window, and removal drops exactly one.
	m.removeRefs(owner, old)
}

// Release removes every lock held by owner.
func (m *Manager) Release(owner Owner) {
	m.ownerMu.Lock()
	refs := m.owners[owner]
	delete(m.owners, owner)
	m.ownerMu.Unlock()
	m.removeRefs(owner, refs)
}

// removeRefs deletes one bucket entry per ref for owner.
func (m *Manager) removeRefs(owner Owner, refs []lockRef) {
	for _, ref := range refs {
		r := m.lookup(ref.rel)
		if r == nil {
			continue
		}
		r.mu.Lock()
		if ref.isKey {
			owners := r.keys[ref.lo]
			for i, o := range owners {
				if o == owner {
					r.keys[ref.lo] = append(owners[:i], owners[i+1:]...)
					break
				}
			}
			if len(r.keys[ref.lo]) == 0 {
				delete(r.keys, ref.lo)
			}
		} else {
			for i := range r.intervals {
				iv := r.intervals[i]
				if iv.owner == owner && iv.lo == ref.lo && iv.hi == ref.hi {
					r.intervals = append(r.intervals[:i], r.intervals[i+1:]...)
					break
				}
			}
		}
		r.mu.Unlock()
	}
}

// HoldCount returns the number of locks held by owner.
func (m *Manager) HoldCount(owner Owner) int {
	m.ownerMu.Lock()
	defer m.ownerMu.Unlock()
	return len(m.owners[owner])
}

// Conflicts calls fn once per lock that conflicts with a write of the
// indexed attribute value v on relation rel. An owner holding several
// conflicting locks is reported once per lock; use ConflictSet for the
// deduplicated owner set.
func (m *Manager) Conflicts(rel string, v int64, fn func(Owner)) {
	r := m.lookup(rel)
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, iv := range r.intervals {
		if iv.lo > v {
			break // sorted by lo: nothing further can cover v
		}
		if v <= iv.hi {
			fn(iv.owner)
		}
	}
	for _, o := range r.keys[v] {
		fn(o)
	}
}

// ConflictSet accumulates into set the owners whose locks conflict with a
// write of value v on rel.
func (m *Manager) ConflictSet(rel string, v int64, set map[Owner]struct{}) {
	m.Conflicts(rel, v, func(o Owner) { set[o] = struct{}{} })
}
