package btree

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

// Test trees use 16-byte records (key in the first 8 bytes) on small pages
// so splits and height growth happen quickly.

func keyOf(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }

func recFor(key uint64, val uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], val)
	return b
}

func newTestTree(pageSize int) (*Tree, *storage.Pager, *metric.Meter) {
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(pageSize), m)
	// 4 records per leaf, 5 entries per internal node.
	return New(p.Disk(), 16, pageSize/5, keyOf), p, m
}

func TestEmptyTree(t *testing.T) {
	tr, p, _ := newTestTree(64)
	if tr.Len() != 0 || tr.Height() != 1 || tr.LeafPages() != 1 {
		t.Fatalf("empty tree: Len=%d Height=%d Leaves=%d", tr.Len(), tr.Height(), tr.LeafPages())
	}
	if _, ok := tr.Get(p, 5); ok {
		t.Fatal("Get on empty tree hit")
	}
	if tr.Delete(p, 5) {
		t.Fatal("Delete on empty tree hit")
	}
	tr.ScanAll(p, func([]byte) bool { t.Fatal("scan on empty tree visited"); return true })
}

func TestInsertGetSequential(t *testing.T) {
	tr, p, _ := newTestTree(64)
	const n = 500
	for i := uint64(0); i < n; i++ {
		tr.Insert(p, recFor(i, i*10))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 3 {
		t.Fatalf("Height = %d, want >= 3 for %d records at 4/leaf", tr.Height(), n)
	}
	for i := uint64(0); i < n; i++ {
		rec, ok := tr.Get(p, i)
		if !ok || binary.LittleEndian.Uint64(rec[8:]) != i*10 {
			t.Fatalf("Get(%d) = %v, %v", i, rec, ok)
		}
	}
	if _, ok := tr.Get(p, n); ok {
		t.Fatal("Get past end hit")
	}
}

func TestInsertRandomScanSorted(t *testing.T) {
	tr, p, _ := newTestTree(64)
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(1000)
	for _, k := range perm {
		tr.Insert(p, recFor(uint64(k), uint64(k)))
	}
	var got []uint64
	tr.ScanAll(p, func(rec []byte) bool {
		got = append(got, keyOf(rec))
		return true
	})
	if len(got) != 1000 {
		t.Fatalf("scan visited %d records", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	tr, p, _ := newTestTree(64)
	tr.Insert(p, recFor(7, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert should panic")
		}
	}()
	tr.Insert(p, recFor(7, 2))
}

func TestScanRange(t *testing.T) {
	tr, p, _ := newTestTree(64)
	for i := uint64(0); i < 200; i += 2 {
		tr.Insert(p, recFor(i, i))
	}
	var got []uint64
	tr.ScanRange(p, 50, 61, func(rec []byte) bool {
		got = append(got, keyOf(rec))
		return true
	})
	want := []uint64{50, 52, 54, 56, 58, 60}
	if len(got) != len(want) {
		t.Fatalf("ScanRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanRange = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.ScanRange(p, 0, 1000, func([]byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
	// Inverted and out-of-range scans visit nothing.
	tr.ScanRange(p, 61, 50, func([]byte) bool { t.Fatal("inverted range visited"); return true })
	hits := 0
	tr.ScanRange(p, 500, 1000, func([]byte) bool { hits++; return true })
	if hits != 0 {
		t.Fatalf("out-of-range scan visited %d", hits)
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	tr, p, _ := newTestTree(64)
	const n = 300
	for i := uint64(0); i < n; i++ {
		tr.Insert(p, recFor(i, i))
	}
	// Delete the evens.
	for i := uint64(0); i < n; i += 2 {
		if !tr.Delete(p, i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Get(p, i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	// Reinsert the evens; everything should be back.
	for i := uint64(0); i < n; i += 2 {
		tr.Insert(p, recFor(i, i))
	}
	var count int
	prev := int64(-1)
	tr.ScanAll(p, func(rec []byte) bool {
		k := int64(keyOf(rec))
		if k <= prev {
			t.Fatalf("order violated at %d after churn", k)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan after churn visited %d, want %d", count, n)
	}
}

func TestDeleteAllCollapsesTree(t *testing.T) {
	tr, p, _ := newTestTree(64)
	const n = 200
	for i := uint64(0); i < n; i++ {
		tr.Insert(p, recFor(i, i))
	}
	for i := uint64(0); i < n; i++ {
		if !tr.Delete(p, i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 || tr.LeafPages() != 1 {
		t.Fatalf("tree did not collapse: Height=%d Leaves=%d", tr.Height(), tr.LeafPages())
	}
	// The tree is usable again.
	tr.Insert(p, recFor(5, 5))
	if _, ok := tr.Get(p, 5); !ok {
		t.Fatal("insert after drain failed")
	}
	_ = p
}

func TestLeafPagesTracksBlockingFactor(t *testing.T) {
	tr, p, _ := newTestTree(64) // 4 records per leaf
	for i := uint64(0); i < 400; i++ {
		tr.Insert(p, recFor(i, i))
	}
	// Splits leave leaves at least half full: 400 records needs >= 100 and
	// <= 200 leaves.
	if lp := tr.LeafPages(); lp < 100 || lp > 200 {
		t.Fatalf("LeafPages = %d for 400 records at cap 4", lp)
	}
	if tr.LeafCapacity() != 4 {
		t.Fatalf("LeafCapacity = %d", tr.LeafCapacity())
	}
}

func TestRangeScanIOCharges(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	// Page 4000 bytes, records 100 bytes -> 40/leaf; index entries 20
	// bytes -> fanout 200, as in the paper.
	p := storage.NewPager(storage.NewDisk(4000), m)
	p.SetCharging(false)
	const n = 10_000
	recs := make([][]byte, n)
	for i := range recs {
		r := make([]byte, 100)
		binary.LittleEndian.PutUint64(r, uint64(i))
		recs[i] = r
	}
	tr := BulkLoad(p, 100, 20, func(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }, recs)
	p.SetCharging(true)
	if tr.Fanout() != 200 {
		t.Fatalf("Fanout = %d, want 200", tr.Fanout())
	}

	// Scan 100 consecutive records: expect H reads for the descent below
	// the pinned root plus ceil(100/40)..+1 leaf reads.
	p.BeginOp()
	m.Reset()
	count := 0
	tr.ScanRange(p, 4000, 4099, func([]byte) bool { count++; return true })
	if count != 100 {
		t.Fatalf("scanned %d records, want 100", count)
	}
	reads := m.Snapshot().PageReads
	internalLevels := int64(tr.Height() - 2) // minus leaf level, minus pinned root
	wantLo := internalLevels + 3             // 100 records over >= 3 leaves
	wantHi := internalLevels + 4             // may straddle one extra leaf
	if reads < wantLo || reads > wantHi {
		t.Fatalf("range scan charged %d reads, want in [%d, %d] (height %d)", reads, wantLo, wantHi, tr.Height())
	}
}

func TestGetChargesDescent(t *testing.T) {
	tr, p, m := newTestTree(64)
	p.SetCharging(false)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(p, recFor(i, i))
	}
	p.SetCharging(true)
	p.BeginOp()
	m.Reset()
	if _, ok := tr.Get(p, 50); !ok {
		t.Fatal("Get missed")
	}
	// Height levels minus the pinned root, including the leaf.
	want := int64(tr.Height() - 1)
	if got := m.Snapshot().PageReads; got != want {
		t.Fatalf("Get charged %d reads, want %d (height %d, root pinned)", got, want, tr.Height())
	}
}

func TestConstructorPanics(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(64), m)
	for name, fn := range map[string]func(){
		"record too large": func() { New(p.Disk(), 40, 16, keyOf) },
		"entry too small":  func() { New(p.Disk(), 16, 8, keyOf) },
		"fanout too small": func() { New(p.Disk(), 16, 32, keyOf) },
		"nil key func":     func() { New(p.Disk(), 16, 13, nil) },
		"bad record size":  func() { tr, p, _ := newTestTree(64); tr.Insert(p, make([]byte, 8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property test: the tree behaves like a sorted map under random
// insert/delete interleavings.
func TestTreeMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr, p, _ := newTestTree(64)
		ref := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(seed))
		ops := int(n) + 50
		for i := 0; i < ops; i++ {
			k := uint64(rng.Intn(64))
			if rng.Intn(3) > 0 { // insert-biased
				if _, dup := ref[k]; !dup {
					v := rng.Uint64()
					tr.Insert(p, recFor(k, v))
					ref[k] = v
				}
			} else {
				had := tr.Delete(p, k)
				if _, want := ref[k]; had != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		ok := true
		prev := int64(-1)
		count := 0
		tr.ScanAll(p, func(rec []byte) bool {
			k := keyOf(rec)
			if int64(k) <= prev {
				ok = false
				return false
			}
			prev = int64(k)
			v, in := ref[k]
			if !in || binary.LittleEndian.Uint64(rec[8:]) != v {
				ok = false
				return false
			}
			count++
			return true
		})
		return ok && count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperGeometry checks the default-parameter geometry the cost model
// assumes: 100,000 records of 100 bytes on 4,000-byte pages with 20-byte
// index entries give 2,500 full leaves at blocking factor 40.
func TestPaperGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk geometry test")
	}
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(4000), m)
	tr := New(p.Disk(), 100, 20, func(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) })
	p.SetCharging(false)
	rec := make([]byte, 100)
	for i := uint64(0); i < 100_000; i++ {
		binary.LittleEndian.PutUint64(rec, i)
		tr.Insert(p, append([]byte(nil), rec...))
	}
	if tr.Len() != 100_000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Sequential load splits leave ~half-full leaves in general, but our
	// split puts the new key in the right half, so sequential keys fill
	// ~50%: accept [2500, 5100].
	if lp := tr.LeafPages(); lp < 2500 || lp > 5100 {
		t.Fatalf("LeafPages = %d", lp)
	}
	if h := tr.Height(); h < 3 || h > 4 {
		t.Fatalf("Height = %d", h)
	}
}
