package btree

import (
	"encoding/binary"
	"testing"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

func TestBulkLoadPacksLeaves(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(64), m)
	recs := make([][]byte, 400)
	for i := range recs {
		recs[i] = recFor(uint64(i), uint64(i)*3)
	}
	tr := BulkLoad(p, 16, 64/5, keyOf, recs)
	if tr.Len() != 400 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if lp := tr.LeafPages(); lp != 100 { // 400 records, 4 per leaf, packed
		t.Fatalf("LeafPages = %d, want 100", lp)
	}
	for i := uint64(0); i < 400; i++ {
		rec, ok := tr.Get(p, i)
		if !ok || binary.LittleEndian.Uint64(rec[8:]) != i*3 {
			t.Fatalf("Get(%d) failed", i)
		}
	}
	// The loaded tree accepts further inserts and deletes.
	tr.Insert(p, recFor(1000, 1))
	if !tr.Delete(p, 0) || !tr.Delete(p, 399) {
		t.Fatal("delete after bulk load failed")
	}
	var count int
	prev := int64(-1)
	tr.ScanAll(p, func(rec []byte) bool {
		if k := int64(keyOf(rec)); k <= prev {
			t.Fatalf("order violated at %d", k)
		} else {
			prev = k
		}
		count++
		return true
	})
	if count != 399 {
		t.Fatalf("scan after churn visited %d, want 399", count)
	}
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(64), m)
	tr := BulkLoad(p, 16, 64/5, keyOf, nil)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty bulk load wrong")
	}
	p2 := storage.NewPager(storage.NewDisk(64), m)
	tr2 := BulkLoad(p2, 16, 64/5, keyOf, [][]byte{recFor(9, 9)})
	if tr2.Len() != 1 || tr2.Height() != 1 {
		t.Fatal("single-record bulk load wrong")
	}
	if _, ok := tr2.Get(p2, 9); !ok {
		t.Fatal("single record missing")
	}
}

func TestBulkLoadValidation(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	for name, recs := range map[string][][]byte{
		"descending":  {recFor(2, 0), recFor(1, 0)},
		"duplicate":   {recFor(2, 0), recFor(2, 1)},
		"wrong width": {make([]byte, 8)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			p := storage.NewPager(storage.NewDisk(64), m)
			BulkLoad(p, 16, 64/5, keyOf, recs)
		}()
	}
}

func TestBulkLoadPaperGeometryExact(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk geometry test")
	}
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(4000), m)
	p.SetCharging(false)
	recs := make([][]byte, 100_000)
	for i := range recs {
		r := make([]byte, 100)
		binary.LittleEndian.PutUint64(r, uint64(i))
		recs[i] = r
	}
	tr := BulkLoad(p, 100, 20, func(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }, recs)
	if lp := tr.LeafPages(); lp != 2500 {
		t.Fatalf("LeafPages = %d, want exactly 2500 (the model's b)", lp)
	}
	// 2500 leaves at fanout 200: one internal level of 13 nodes + root.
	if h := tr.Height(); h != 3 {
		t.Fatalf("Height = %d, want 3", h)
	}
}
