package btree

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

// paperTree builds a bulk-loaded tree with the paper's geometry: 100-byte
// records on 4000-byte pages, 20-byte index entries.
func paperTree(b *testing.B, n int) (*Tree, *storage.Pager) {
	b.Helper()
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(4000), m)
	p.SetCharging(false)
	recs := make([][]byte, n)
	for i := range recs {
		r := make([]byte, 100)
		binary.LittleEndian.PutUint64(r, uint64(i*2)) // gaps for later inserts
		recs[i] = r
	}
	return BulkLoad(p, 100, 20, func(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }, recs), p
}

func BenchmarkInsertDeleteChurn(b *testing.B) {
	tr, p := paperTree(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	rec := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(100_000))*2 + 1 // odd keys: absent
		binary.LittleEndian.PutUint64(rec, k)
		tr.Insert(p, append([]byte(nil), rec...))
		tr.Delete(p, k)
	}
}

func BenchmarkGet(b *testing.B) {
	tr, p := paperTree(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(p, uint64(rng.Intn(100_000))*2); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkRangeScan100(b *testing.B) {
	tr, p := paperTree(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BeginOp()
		lo := uint64(rng.Intn(99_000)) * 2
		count := 0
		tr.ScanRange(p, lo, lo+198, func([]byte) bool { count++; return true })
		if count == 0 {
			b.Fatal("empty scan")
		}
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	recs := make([][]byte, 100_000)
	for i := range recs {
		r := make([]byte, 100)
		binary.LittleEndian.PutUint64(r, uint64(i))
		recs[i] = r
	}
	key := func(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := metric.NewMeter(metric.DefaultCosts())
		p := storage.NewPager(storage.NewDisk(4000), m)
		p.SetCharging(false)
		BulkLoad(p, 100, 20, key, recs)
	}
}
