// Package btree implements the clustered B+-tree used as the primary
// access method of relation R1: leaf pages hold full S-byte tuples in key
// order (blocking factor ⌊B/S⌋), and internal pages hold d-byte index
// entries (fanout ⌊B/d⌋), exactly the geometry of the paper's cost model.
//
// Node headers (record counts, sibling links) are kept in an out-of-band
// in-memory table so the on-page blocking factors match the model exactly;
// the pages themselves hold the real records. The root page is treated as
// pinned in memory: descending through it is not a charged read, so a
// default-parameter index lookup charges H1 = 1 page read as in the model.
//
// A Tree is bound to a Disk; every access method takes the calling
// session's Pager, so concurrent sessions can read one shared tree while
// each charges its own meter. The tree's live directory state (meta table,
// root, height) is not internally synchronized — mutations are serialized
// by the engine's update locks, and snapshot readers traverse an immutable
// published directory copy at their stamp instead (docs/MVCC.md).
package btree

import (
	"fmt"

	"dbproc/internal/storage"
)

// KeyFunc extracts the ordering key from a record's bytes. Keys must be
// unique; compose a tiebreaker into the low bits if the indexed attribute
// is not (see tuple.ClusterKey).
type KeyFunc func(rec []byte) uint64

// Tree is a clustered B+-tree of fixed-size records.
type Tree struct {
	disk    *storage.Disk
	recSize int
	leafCap int // records per leaf page
	fanout  int // index entries (children) per internal page
	stride  int // bytes reserved per index entry (the paper's d)
	keyOf   KeyFunc

	dir       treeDir
	dv        *storage.DirVersions
	noRootPin bool
}

// treeDir is the tree's in-memory directory: the node meta table and the
// shape counters. The live copy is mutated in place by updates; published
// copies are immutable and traversed by snapshot readers.
type treeDir struct {
	root      storage.PageID
	meta      map[storage.PageID]*nodeMeta
	height    int // levels including the leaf level; 1 = root is a leaf
	n         int
	numLeaves int
}

// SetRootPinned controls whether descending through the root of a
// multi-level tree is a charged page read. The default (pinned) models the
// universal practice of keeping the root resident, and makes the
// default-parameter descent cost match the model's H1 = 1; unpinning
// exists for the ablation experiment.
func (t *Tree) SetRootPinned(pinned bool) { t.noRootPin = !pinned }

type nodeMeta struct {
	leaf       bool
	count      int // records (leaf) or children (internal)
	next, prev storage.PageID
}

// New creates an empty tree. recSize is the record width; indexEntrySize
// is the paper's d, the bytes reserved per internal index entry (at least
// 12 are needed for the stored key and child id).
func New(disk *storage.Disk, recSize, indexEntrySize int, keyOf KeyFunc) *Tree {
	pageSize := disk.PageSize()
	leafCap := pageSize / recSize
	fanout := pageSize / indexEntrySize
	if recSize <= 0 || leafCap < 2 {
		panic(fmt.Sprintf("btree: need at least 2 records per leaf (recSize %d, page %d)", recSize, pageSize))
	}
	if indexEntrySize < 12 || fanout < 3 {
		panic(fmt.Sprintf("btree: index entry size %d invalid for page %d", indexEntrySize, pageSize))
	}
	if keyOf == nil {
		panic("btree: nil KeyFunc")
	}
	t := &Tree{
		disk:    disk,
		recSize: recSize,
		leafCap: leafCap,
		fanout:  fanout,
		stride:  indexEntrySize,
		keyOf:   keyOf,
		dir:     treeDir{meta: make(map[storage.PageID]*nodeMeta), height: 1},
	}
	t.dir.root = t.newNode(true)
	t.dir.numLeaves = 1
	t.dv = disk.RegisterDir(t.snapshotDir)
	return t
}

// snapshotDir returns an immutable deep copy of the live directory.
func (t *Tree) snapshotDir() any {
	d := &treeDir{
		root:      t.dir.root,
		meta:      make(map[storage.PageID]*nodeMeta, len(t.dir.meta)),
		height:    t.dir.height,
		n:         t.dir.n,
		numLeaves: t.dir.numLeaves,
	}
	for id, m := range t.dir.meta {
		cp := *m
		d.meta[id] = &cp
	}
	return d
}

// dirFor resolves the directory a reader should traverse: the newest
// published copy at the pager's snapshot stamp, else the live directory.
func (t *Tree) dirFor(pg *storage.Pager) *treeDir {
	if s, ok := pg.Snapshot(); ok {
		if d := t.dv.Lookup(s); d != nil {
			return d.(*treeDir)
		}
	}
	return &t.dir
}

// Len returns the number of records.
func (t *Tree) Len() int { return t.dir.n }

// Height returns the number of levels including the leaf level.
func (t *Tree) Height() int { return t.dir.height }

// LeafPages returns the number of leaf pages.
func (t *Tree) LeafPages() int { return t.dir.numLeaves }

// LeafCapacity returns the blocking factor of leaf pages.
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Fanout returns the maximum number of children of an internal node.
func (t *Tree) Fanout() int { return t.fanout }

func (t *Tree) newNode(leaf bool) storage.PageID {
	id := t.disk.Alloc()
	t.dir.meta[id] = &nodeMeta{leaf: leaf, next: storage.NilPage, prev: storage.NilPage}
	return id
}

// readNode fetches a node page for reading against directory d. The root
// of a multi-level tree is pinned: no charge.
func (t *Tree) readNode(pg *storage.Pager, d *treeDir, id storage.PageID) []byte {
	if id == d.root && d.height > 1 && !t.noRootPin {
		prev := pg.SetCharging(false)
		buf := pg.Read(id)
		pg.SetCharging(prev)
		return buf
	}
	return pg.Read(id)
}

func (t *Tree) writeNode(pg *storage.Pager, id storage.PageID) []byte {
	if id == t.dir.root && t.dir.height > 1 && !t.noRootPin {
		prev := pg.SetCharging(false)
		buf := pg.Update(id)
		pg.SetCharging(prev)
		return buf
	}
	return pg.Update(id)
}

// Leaf record accessors.

func (t *Tree) leafRec(buf []byte, i int) []byte {
	return buf[i*t.recSize : (i+1)*t.recSize]
}

// Internal entry accessors: entry i is (key uint64, child int32) stored at
// offset i*stride.

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

func (t *Tree) entryKey(buf []byte, i int) uint64 {
	return getU64(buf[i*t.stride:])
}

func (t *Tree) entryChild(buf []byte, i int) storage.PageID {
	o := i*t.stride + 8
	return storage.PageID(uint32(buf[o]) | uint32(buf[o+1])<<8 | uint32(buf[o+2])<<16 | uint32(buf[o+3])<<24)
}

func (t *Tree) setEntry(buf []byte, i int, key uint64, child storage.PageID) {
	putU64(buf[i*t.stride:], key)
	o := i*t.stride + 8
	v := uint32(child)
	buf[o], buf[o+1], buf[o+2], buf[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// childIndex returns the index of the child to descend into for key: the
// rightmost entry whose separator is <= key, clamped to 0 so keys below
// every separator go to the leftmost child.
func (t *Tree) childIndex(buf []byte, count int, key uint64) int {
	lo, hi := 0, count // search first entry with sep > key
	for lo < hi {
		mid := (lo + hi) / 2
		if t.entryKey(buf, mid) > key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// leafSlot returns the insertion position for key among the leaf's
// records, and whether the key is already present at that position.
func (t *Tree) leafSlot(buf []byte, count int, key uint64) (int, bool) {
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyOf(t.leafRec(buf, mid)) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < count && t.keyOf(t.leafRec(buf, lo)) == key
	return lo, found
}

// Insert adds a record; its key must not already be present.
func (t *Tree) Insert(pg *storage.Pager, rec []byte) {
	if len(rec) != t.recSize {
		panic(fmt.Sprintf("btree: record of %d bytes, want %d", len(rec), t.recSize))
	}
	t.dv.MarkDirty()
	key := t.keyOf(rec)
	newID, sep, split := t.insertAt(pg, t.dir.root, key, rec)
	if split {
		oldRoot := t.dir.root
		newRoot := t.newNode(false)
		// Temporarily make newRoot the root before writing so pin logic
		// applies consistently; height grows by one level.
		t.dir.root = newRoot
		t.dir.height++
		buf := t.writeNode(pg, newRoot)
		t.setEntry(buf, 0, 0, oldRoot) // leftmost separator is an open bound
		t.setEntry(buf, 1, sep, newID)
		t.dir.meta[newRoot].count = 2
	}
	t.dir.n++
}

// insertAt inserts into the subtree rooted at id, returning a new right
// sibling and its separator key if the node split.
func (t *Tree) insertAt(pg *storage.Pager, id storage.PageID, key uint64, rec []byte) (storage.PageID, uint64, bool) {
	m := t.dir.meta[id]
	if m.leaf {
		return t.insertLeaf(pg, id, m, key, rec)
	}
	buf := t.readNode(pg, &t.dir, id)
	ci := t.childIndex(buf, m.count, key)
	child := t.entryChild(buf, ci)
	newChild, sep, split := t.insertAt(pg, child, key, rec)
	if !split {
		return storage.NilPage, 0, false
	}
	return t.insertEntry(pg, id, m, ci+1, sep, newChild)
}

func (t *Tree) insertLeaf(pg *storage.Pager, id storage.PageID, m *nodeMeta, key uint64, rec []byte) (storage.PageID, uint64, bool) {
	buf := t.writeNode(pg, id)
	slot, found := t.leafSlot(buf, m.count, key)
	if found {
		panic(fmt.Sprintf("btree: duplicate key %d", key))
	}
	if m.count < t.leafCap {
		copy(buf[(slot+1)*t.recSize:(m.count+1)*t.recSize], buf[slot*t.recSize:m.count*t.recSize])
		copy(buf[slot*t.recSize:], rec)
		m.count++
		return storage.NilPage, 0, false
	}
	// Split: upper half moves to a new right sibling.
	rightID := t.newNode(true)
	t.dir.numLeaves++
	rm := t.dir.meta[rightID]
	half := m.count / 2
	rbuf := pg.Overwrite(rightID)
	copy(rbuf, buf[half*t.recSize:m.count*t.recSize])
	clear(buf[half*t.recSize : m.count*t.recSize])
	rm.count = m.count - half
	m.count = half
	// Fix the leaf chain.
	rm.next, rm.prev = m.next, id
	if m.next != storage.NilPage {
		t.dir.meta[m.next].prev = rightID
	}
	m.next = rightID
	// Insert into the proper side.
	sep := t.keyOf(t.leafRec(rbuf, 0))
	if key >= sep {
		rslot, _ := t.leafSlot(rbuf, rm.count, key)
		copy(rbuf[(rslot+1)*t.recSize:(rm.count+1)*t.recSize], rbuf[rslot*t.recSize:rm.count*t.recSize])
		copy(rbuf[rslot*t.recSize:], rec)
		rm.count++
	} else {
		copy(buf[(slot+1)*t.recSize:(m.count+1)*t.recSize], buf[slot*t.recSize:m.count*t.recSize])
		copy(buf[slot*t.recSize:], rec)
		m.count++
	}
	return rightID, t.keyOf(t.leafRec(rbuf, 0)), true
}

// insertEntry inserts (sep, child) at position pos of internal node id,
// splitting it if full.
func (t *Tree) insertEntry(pg *storage.Pager, id storage.PageID, m *nodeMeta, pos int, sep uint64, child storage.PageID) (storage.PageID, uint64, bool) {
	buf := t.writeNode(pg, id)
	if m.count < t.fanout {
		copy(buf[(pos+1)*t.stride:(m.count+1)*t.stride], buf[pos*t.stride:m.count*t.stride])
		t.setEntry(buf, pos, sep, child)
		m.count++
		return storage.NilPage, 0, false
	}
	rightID := t.newNode(false)
	rm := t.dir.meta[rightID]
	half := m.count / 2
	rbuf := pg.Overwrite(rightID)
	copy(rbuf, buf[half*t.stride:m.count*t.stride])
	clear(buf[half*t.stride : m.count*t.stride])
	rm.count = m.count - half
	m.count = half
	rightSep := t.entryKey(rbuf, 0)
	if sep >= rightSep {
		rpos := pos - half
		copy(rbuf[(rpos+1)*t.stride:(rm.count+1)*t.stride], rbuf[rpos*t.stride:rm.count*t.stride])
		t.setEntry(rbuf, rpos, sep, child)
		rm.count++
	} else {
		copy(buf[(pos+1)*t.stride:(m.count+1)*t.stride], buf[pos*t.stride:m.count*t.stride])
		t.setEntry(buf, pos, sep, child)
		m.count++
	}
	return rightID, rightSep, true
}

// Get returns a copy of the record with the given key.
func (t *Tree) Get(pg *storage.Pager, key uint64) ([]byte, bool) {
	d := t.dirFor(pg)
	id := d.root
	for !d.meta[id].leaf {
		buf := t.readNode(pg, d, id)
		id = t.entryChild(buf, t.childIndex(buf, d.meta[id].count, key))
	}
	m := d.meta[id]
	buf := t.readNode(pg, d, id)
	slot, found := t.leafSlot(buf, m.count, key)
	if !found {
		return nil, false
	}
	out := make([]byte, t.recSize)
	copy(out, t.leafRec(buf, slot))
	return out, true
}

// Delete removes the record with the given key, reporting whether it was
// present. Emptied nodes are freed and unlinked; no other rebalancing is
// performed (the workload's delete+insert churn keeps pages near full).
func (t *Tree) Delete(pg *storage.Pager, key uint64) bool {
	t.dv.MarkDirty()
	// Record the descent path for cascade cleanup.
	type step struct {
		id storage.PageID
		ci int
	}
	var path []step
	id := t.dir.root
	for !t.dir.meta[id].leaf {
		buf := t.readNode(pg, &t.dir, id)
		ci := t.childIndex(buf, t.dir.meta[id].count, key)
		path = append(path, step{id, ci})
		id = t.entryChild(buf, ci)
	}
	m := t.dir.meta[id]
	buf := t.writeNode(pg, id)
	slot, found := t.leafSlot(buf, m.count, key)
	if !found {
		return false
	}
	copy(buf[slot*t.recSize:], buf[(slot+1)*t.recSize:m.count*t.recSize])
	clear(buf[(m.count-1)*t.recSize : m.count*t.recSize])
	m.count--
	t.dir.n--

	// Cascade removal of emptied nodes.
	for m.count == 0 && id != t.dir.root {
		if m.leaf {
			if m.prev != storage.NilPage {
				t.dir.meta[m.prev].next = m.next
			}
			if m.next != storage.NilPage {
				t.dir.meta[m.next].prev = m.prev
			}
			t.dir.numLeaves--
		}
		t.freeNode(pg, id)
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		pm := t.dir.meta[parent.id]
		pbuf := t.writeNode(pg, parent.id)
		copy(pbuf[parent.ci*t.stride:], pbuf[(parent.ci+1)*t.stride:pm.count*t.stride])
		clear(pbuf[(pm.count-1)*t.stride : pm.count*t.stride])
		pm.count--
		id, m = parent.id, pm
	}

	// Collapse a single-child root to reduce height.
	for id == t.dir.root && m.count == 1 && !m.leaf {
		buf := t.readNode(pg, &t.dir, id)
		child := t.entryChild(buf, 0)
		t.freeNode(pg, id)
		t.dir.root = child
		t.dir.height--
		id, m = child, t.dir.meta[child]
	}
	if m.count == 0 && m.leaf && id == t.dir.root {
		// Tree is empty; keep the root leaf.
		t.dir.numLeaves = 1
	}
	return true
}

func (t *Tree) freeNode(pg *storage.Pager, id storage.PageID) {
	delete(t.dir.meta, id)
	pg.Drop(id)
	pg.FreePage(id)
}

// ScanRange calls fn for each record with lo <= key <= hi in ascending key
// order until fn returns false. It descends once (charging internal page
// reads below the pinned root) and then follows the leaf chain, charging
// one read per leaf touched. The rec slice is only valid during the call.
func (t *Tree) ScanRange(pg *storage.Pager, lo, hi uint64, fn func(rec []byte) bool) {
	d := t.dirFor(pg)
	if lo > hi || d.n == 0 {
		return
	}
	id := d.root
	for !d.meta[id].leaf {
		buf := t.readNode(pg, d, id)
		id = t.entryChild(buf, t.childIndex(buf, d.meta[id].count, lo))
	}
	for id != storage.NilPage {
		m := d.meta[id]
		buf := t.readNode(pg, d, id)
		start, _ := t.leafSlot(buf, m.count, lo)
		for i := start; i < m.count; i++ {
			rec := t.leafRec(buf, i)
			if t.keyOf(rec) > hi {
				return
			}
			if !fn(rec) {
				return
			}
		}
		id = m.next
	}
}

// ScanAll visits every record in ascending key order.
func (t *Tree) ScanAll(pg *storage.Pager, fn func(rec []byte) bool) {
	t.ScanRange(pg, 0, ^uint64(0), fn)
}
