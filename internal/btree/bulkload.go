package btree

import (
	"fmt"

	"dbproc/internal/storage"
)

// BulkLoad builds a tree from records already sorted by ascending key,
// packing every leaf and internal node completely full. The simulator uses
// it to load R1 so the relation occupies exactly ⌈N/(B/S)⌉ pages, the b of
// the cost model; incremental Insert would leave splits half full.
//
// Bulk loading performs no charged I/O bookkeeping beyond the pager's
// normal rules; load with charging disabled as usual for setup. The pager
// is only the loading session's handle — the returned tree is bound to
// its disk and serves any session's pager afterwards.
func BulkLoad(pg *storage.Pager, recSize, indexEntrySize int, keyOf KeyFunc, records [][]byte) *Tree {
	t := New(pg.Disk(), recSize, indexEntrySize, keyOf)
	if len(records) == 0 {
		return t
	}

	// Validate widths and strict key order up front.
	for i, rec := range records {
		if len(rec) != recSize {
			panic(fmt.Sprintf("btree: record %d has %d bytes, want %d", i, len(rec), recSize))
		}
		if i > 0 && keyOf(rec) <= keyOf(records[i-1]) {
			panic(fmt.Sprintf("btree: bulk load records not strictly ascending at %d", i))
		}
	}

	// Level 0: packed leaves.
	type nodeRef struct {
		id  storage.PageID
		min uint64
	}
	var level []nodeRef
	var prevLeaf storage.PageID = storage.NilPage
	for start := 0; start < len(records); start += t.leafCap {
		end := start + t.leafCap
		if end > len(records) {
			end = len(records)
		}
		var id storage.PageID
		if len(level) == 0 {
			id = t.dir.root // reuse the empty root leaf
		} else {
			id = t.newNode(true)
			t.dir.numLeaves++
		}
		m := t.dir.meta[id]
		buf := pg.Overwrite(id)
		for i := start; i < end; i++ {
			copy(buf[(i-start)*t.recSize:], records[i])
		}
		m.count = end - start
		m.prev = prevLeaf
		if prevLeaf != storage.NilPage {
			t.dir.meta[prevLeaf].next = id
		}
		prevLeaf = id
		level = append(level, nodeRef{id, keyOf(records[start])})
	}
	t.dir.n = len(records)

	// Upper levels: packed internal nodes until a single root remains.
	for len(level) > 1 {
		var upper []nodeRef
		for start := 0; start < len(level); start += t.fanout {
			end := start + t.fanout
			if end > len(level) {
				end = len(level)
			}
			id := t.newNode(false)
			m := t.dir.meta[id]
			buf := pg.Overwrite(id)
			for i := start; i < end; i++ {
				t.setEntry(buf, i-start, level[i].min, level[i].id)
			}
			m.count = end - start
			upper = append(upper, nodeRef{id, level[start].min})
		}
		level = upper
		t.dir.height++
	}
	t.dir.root = level[0].id
	return t
}
