package obs

import (
	"fmt"
	"io"
	"sort"

	"dbproc/internal/metric"
)

// RenderBreakdown writes the per-component cost table for one run: raw
// event counts and the C1/C2/C3/C_inval milliseconds they price to, one
// row per component that charged anything, plus a total row. Because the
// meter stores only per-component counters and derives the aggregate by
// summation, every column of the total row equals the run's aggregate
// Counters exactly.
func RenderBreakdown(w io.Writer, bd metric.Breakdown, costs metric.Costs) {
	fmt.Fprintf(w, "  %-8s %8s %8s %9s %9s %7s %10s %12s %10s %10s %12s\n",
		"component", "reads", "writes", "screens", "deltaOps", "invals",
		"C1 ms", "C2 ms", "C3 ms", "Cinv ms", "total ms")
	row := func(name string, c metric.Counters) {
		c1 := costs.C1 * float64(c.Screens)
		c2 := costs.C2 * float64(c.PageReads+c.PageWrites)
		c3 := costs.C3 * float64(c.DeltaOps)
		ci := costs.CInval * float64(c.Invalidations)
		fmt.Fprintf(w, "  %-8s %8d %8d %9d %9d %7d %10.1f %12.1f %10.1f %10.1f %12.1f\n",
			name, c.PageReads, c.PageWrites, c.Screens, c.DeltaOps, c.Invalidations,
			c1, c2, c3, ci, c.Milliseconds(costs))
	}
	for _, comp := range metric.Components() {
		if bd[comp] == (metric.Counters{}) {
			continue
		}
		row(comp.String(), bd[comp])
	}
	row("TOTAL", bd.Total())
}

// RenderBreakdownRecord renders a breakdown parsed from a trace file in
// the same format, ordering components as metric.Components does and
// appending any unknown labels.
func RenderBreakdownRecord(w io.Writer, rec BreakdownRecord) {
	var bd metric.Breakdown
	extra := map[string]CountersJSON{}
	for name, c := range rec.Components {
		placed := false
		for _, comp := range metric.Components() {
			if comp.String() == name {
				bd[comp] = c.Counters()
				placed = true
				break
			}
		}
		if !placed {
			extra[name] = c
		}
	}
	if len(extra) == 0 {
		RenderBreakdown(w, bd, rec.Costs.Costs())
		return
	}
	// Unknown labels (from a newer producer): fold them into the table by
	// rendering known components first, then extras, then the grand total.
	costs := rec.Costs.Costs()
	total := bd.Total()
	fmt.Fprintf(w, "  %-8s %8s %8s %9s %9s %7s %10s %12s %10s %10s %12s\n",
		"component", "reads", "writes", "screens", "deltaOps", "invals",
		"C1 ms", "C2 ms", "C3 ms", "Cinv ms", "total ms")
	row := func(name string, c metric.Counters) {
		fmt.Fprintf(w, "  %-8s %8d %8d %9d %9d %7d %10.1f %12.1f %10.1f %10.1f %12.1f\n",
			name, c.PageReads, c.PageWrites, c.Screens, c.DeltaOps, c.Invalidations,
			costs.C1*float64(c.Screens), costs.C2*float64(c.PageReads+c.PageWrites),
			costs.C3*float64(c.DeltaOps), costs.CInval*float64(c.Invalidations),
			c.Milliseconds(costs))
	}
	for _, comp := range metric.Components() {
		if bd[comp] != (metric.Counters{}) {
			row(comp.String(), bd[comp])
		}
	}
	names := make([]string, 0, len(extra))
	for name := range extra {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row(name, extra[name].Counters())
		total = total.Add(extra[name].Counters())
	}
	row("TOTAL", total)
}
