// Package obs is the observability layer of the executable system: per-
// operation tracing, component-attributed cost breakdowns, bounded-bucket
// latency histograms, and a drift monitor that checks the measured cost of
// every run against the analytic model's prediction.
//
// Everything here measures *simulated* milliseconds — the C1/C2/C3-priced
// cost the paper analyzes — not wall-clock time, so traces are exactly
// reproducible for a given seed. The package depends only on internal/
// metric; the execution stack (storage, query, proc, avm, rete, sim)
// threads a *Tracer through its layers, and all tracing calls are nil-safe
// so a disabled tracer costs one nil check.
//
// See docs/OBSERVABILITY.md for the trace schema and the procsim/procstat
// workflow.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dbproc/internal/metric"
)

// Span is one traced region of work: a workload operation ("op.query",
// "op.update") or a strategy-internal step ("ci.refresh", "avm.merge",
// "rete.propagate", ...). Start and duration are simulated milliseconds;
// Counters is the cost-event delta accumulated while the span was open
// (children included).
type Span struct {
	ID     int64
	Parent int64 // 0 for root spans
	Name   string
	// StartMs is the meter's priced total when the span opened.
	StartMs float64
	// DurMs is the priced cost accumulated while the span was open.
	DurMs float64
	// Counters is the raw event delta over the span.
	Counters metric.Counters
	// Attrs carries span-specific labels (proc id, cache state, tuple
	// counts ...). Nil until the first Set.
	Attrs map[string]any

	start metric.Counters
}

// Set attaches an attribute; nil-safe so call sites need no tracing check.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]any, 4)
	}
	s.Attrs[key] = v
}

// Tracer collects spans for one run. The workload is serial, so spans
// open and close in LIFO order; Begin parents the new span under the
// innermost open one.
//
// All methods are nil-safe: a nil *Tracer is the disabled state and every
// call on it is a no-op, so instrumented code pays one nil check when
// tracing is off.
type Tracer struct {
	meter  *metric.Meter
	reg    *Registry
	spans  []*Span
	stack  []*Span
	nextID int64
}

// NewTracer returns an empty tracer. Bind must be called (the simulator
// does it) before spans are begun.
func NewTracer() *Tracer {
	return &Tracer{reg: NewRegistry(), nextID: 1}
}

// Bind attaches the meter whose snapshots time the spans.
func (t *Tracer) Bind(m *metric.Meter) {
	if t == nil {
		return
	}
	t.meter = m
}

// Registry returns the tracer's metrics registry, which accumulates one
// bounded-bucket latency histogram per span name as spans end.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Begin opens a span. It returns nil (still safe to use) when the tracer
// is nil.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	if t.meter == nil {
		panic("obs: tracer not bound to a meter")
	}
	sp := &Span{ID: t.nextID, Name: name, start: t.meter.Snapshot()}
	t.nextID++
	sp.StartMs = sp.start.Milliseconds(t.meter.Costs())
	if n := len(t.stack); n > 0 {
		sp.Parent = t.stack[n-1].ID
	}
	t.stack = append(t.stack, sp)
	t.spans = append(t.spans, sp)
	return sp
}

// End closes the innermost open span, which must be sp. It records the
// span's event delta, prices its duration, and feeds the latency histogram
// keyed by the span's name.
func (t *Tracer) End(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	n := len(t.stack)
	if n == 0 || t.stack[n-1] != sp {
		panic(fmt.Sprintf("obs: End(%q) does not match the innermost open span", sp.Name))
	}
	t.stack = t.stack[:n-1]
	sp.Counters = t.meter.Since(sp.start)
	sp.DurMs = sp.Counters.Milliseconds(t.meter.Costs())
	comp, event := splitName(sp.Name)
	t.reg.Observe(comp, event, sp.DurMs)
}

// Adopt appends a completed root span assembled by the caller and feeds
// the latency histogram, exactly as End would. It exists for the
// concurrent engine's commit path: sessions meter their operations on
// private meters, so there is no shared meter for Begin/End to snapshot;
// instead each commit hands the tracer the span's placement (startMs, the
// run's priced cost committed before it) and its measured delta. Callers
// serialize Adopt calls (the engine holds its commit mutex); the returned
// span is open for Set until the trace is rendered.
func (t *Tracer) Adopt(name string, startMs float64, counters metric.Counters, costs metric.Costs) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{
		ID:       t.nextID,
		Name:     name,
		StartMs:  startMs,
		Counters: counters,
		DurMs:    counters.Milliseconds(costs),
	}
	t.nextID++
	t.spans = append(t.spans, sp)
	comp, event := splitName(name)
	t.reg.Observe(comp, event, sp.DurMs)
	return sp
}

// Current returns the innermost open span (nil if none), letting deep
// layers attach attributes — e.g. Cache and Invalidate marks the enclosing
// operation span hit or cold — without threading the span through every
// signature.
func (t *Tracer) Current() *Span {
	if t == nil || len(t.stack) == 0 {
		return nil
	}
	return t.stack[len(t.stack)-1]
}

// Spans returns every span begun so far, in begin order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// splitName splits a span name "component.event" at the first dot; a name
// without a dot is its own component with event "".
func splitName(name string) (comp, event string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:]
		}
	}
	return name, ""
}

// ---------------------------------------------------------------------------
// Trace file records (JSONL)

// Record types, the "type" field of each JSONL line.
const (
	RecordSpan      = "span"
	RecordRun       = "run"
	RecordBreakdown = "breakdown"
)

// CountersJSON mirrors metric.Counters with stable JSON field names.
type CountersJSON struct {
	PageReads     int64 `json:"reads"`
	PageWrites    int64 `json:"writes"`
	Screens       int64 `json:"screens"`
	DeltaOps      int64 `json:"delta_ops"`
	Invalidations int64 `json:"invals"`
}

// ToCountersJSON converts a metric snapshot.
func ToCountersJSON(c metric.Counters) CountersJSON {
	return CountersJSON{
		PageReads:     c.PageReads,
		PageWrites:    c.PageWrites,
		Screens:       c.Screens,
		DeltaOps:      c.DeltaOps,
		Invalidations: c.Invalidations,
	}
}

// Counters converts back to the metric type.
func (c CountersJSON) Counters() metric.Counters {
	return metric.Counters{
		PageReads:     c.PageReads,
		PageWrites:    c.PageWrites,
		Screens:       c.Screens,
		DeltaOps:      c.DeltaOps,
		Invalidations: c.Invalidations,
	}
}

// CostsJSON mirrors metric.Costs with stable JSON field names.
type CostsJSON struct {
	C1     float64 `json:"c1_ms"`
	C2     float64 `json:"c2_ms"`
	C3     float64 `json:"c3_ms"`
	CInval float64 `json:"c_inval_ms"`
}

// ToCostsJSON converts the meter constants.
func ToCostsJSON(c metric.Costs) CostsJSON {
	return CostsJSON{C1: c.C1, C2: c.C2, C3: c.C3, CInval: c.CInval}
}

// Costs converts back to the metric type.
func (c CostsJSON) Costs() metric.Costs {
	return metric.Costs{C1: c.C1, C2: c.C2, C3: c.C3, CInval: c.CInval}
}

// SpanRecord is one span line in a trace file. Run labels which strategy
// run the span belongs to (procsim uses the strategy name).
type SpanRecord struct {
	Type     string         `json:"type"`
	Run      string         `json:"run"`
	ID       int64          `json:"id"`
	Parent   int64          `json:"parent,omitempty"`
	Name     string         `json:"name"`
	StartMs  float64        `json:"start_ms"`
	DurMs    float64        `json:"dur_ms"`
	Counters CountersJSON   `json:"counters"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// RunRecord summarizes one strategy run: the measured and predicted cost
// the drift monitor compares.
type RunRecord struct {
	Type     string `json:"type"`
	Run      string `json:"run"`
	Strategy string `json:"strategy"`
	Model    string `json:"model"`
	Seed     int64  `json:"seed"`
	Queries  int    `json:"queries"`
	Updates  int    `json:"updates"`
	// MeasuredMsPerQuery and PredictedMsPerQuery are the paper's TOT
	// quantities: total workload cost divided by the number of queries.
	MeasuredMsPerQuery  float64 `json:"measured_ms_per_query"`
	PredictedMsPerQuery float64 `json:"predicted_ms_per_query"`
	// ColdFraction is the measured Cache-and-Invalidate cold-access
	// fraction; nil when the strategy keeps no such statistic.
	ColdFraction *float64 `json:"cold_fraction,omitempty"`
}

// BreakdownRecord carries one run's per-component cost counters plus the
// constants needed to price them.
type BreakdownRecord struct {
	Type       string                  `json:"type"`
	Run        string                  `json:"run"`
	Costs      CostsJSON               `json:"costs"`
	Components map[string]CountersJSON `json:"components"`
}

// Records converts the tracer's spans to serializable span records labeled
// with the given run name.
func (t *Tracer) Records(run string) []SpanRecord {
	if t == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(t.spans))
	for _, sp := range t.spans {
		out = append(out, SpanRecord{
			Type:     RecordSpan,
			Run:      run,
			ID:       sp.ID,
			Parent:   sp.Parent,
			Name:     sp.Name,
			StartMs:  sp.StartMs,
			DurMs:    sp.DurMs,
			Counters: ToCountersJSON(sp.Counters),
			Attrs:    sp.Attrs,
		})
	}
	return out
}

// BreakdownToRecord converts a meter breakdown for a trace file, keeping
// only components with any events.
func BreakdownToRecord(run string, bd metric.Breakdown, costs metric.Costs) BreakdownRecord {
	comps := make(map[string]CountersJSON)
	for _, c := range metric.Components() {
		if bd[c] != (metric.Counters{}) {
			comps[c.String()] = ToCountersJSON(bd[c])
		}
	}
	return BreakdownRecord{
		Type:       RecordBreakdown,
		Run:        run,
		Costs:      ToCostsJSON(costs),
		Components: comps,
	}
}

// WriteJSONL appends records (any mix of SpanRecord, RunRecord,
// BreakdownRecord values) to w, one JSON object per line.
func WriteJSONL(w io.Writer, records ...any) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeJSONL renders records as JSON Lines in memory. Parallel sweep
// workers encode their own run's records into a private buffer and the
// reducer concatenates the buffers in canonical cell order, so a trace
// file written under `-workers N` is byte-identical to the sequential
// one.
func EncodeJSONL(records ...any) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records...); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Trace is the parsed contents of one or more trace files.
type Trace struct {
	Spans      []SpanRecord
	Runs       []RunRecord
	Breakdowns []BreakdownRecord
	// WireSpans are the wall-clock served-request spans
	// (docs/TRACING.md); client and server files both contribute here.
	WireSpans []WireSpanRecord
}

// ReadTrace parses a JSONL trace stream, dispatching lines on their "type"
// field. Unknown record types are skipped so trace formats can grow.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		switch probe.Type {
		case RecordSpan:
			var rec SpanRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			tr.Spans = append(tr.Spans, rec)
		case RecordRun:
			var rec RunRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			tr.Runs = append(tr.Runs, rec)
		case RecordBreakdown:
			var rec BreakdownRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			tr.Breakdowns = append(tr.Breakdowns, rec)
		case RecordWireSpan:
			var rec WireSpanRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			tr.WireSpans = append(tr.WireSpans, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteChromeTrace renders span records in the Chrome trace-event format
// (load the file at chrome://tracing or https://ui.perfetto.dev). Each run
// becomes one named thread; timestamps are simulated microseconds (1 ms of
// simulated cost = 1000 µs on the timeline).
//
// Spans carrying a "blame_sessions" attribute (the concurrent engine's
// lock-wait blame edges) additionally produce flow events: an arrow from
// the blamed session's most recent span in the same run to the blocked
// span, so causal wait chains are visible on the timeline.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	type event struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	type metaEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	type flowEvent struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		ID   int     `json:"id"`
		BP   string  `json:"bp,omitempty"`
	}
	// anchor is where a flow arrow can originate: the end of a session's
	// latest span on the run's timeline.
	type anchor struct {
		ts  float64
		tid int
	}
	tids := map[string]int{}
	last := map[string]map[int]anchor{} // run -> session -> latest span end
	flowID := 0
	var events []any
	for _, sp := range spans {
		tid, ok := tids[sp.Run]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Run] = tid
			events = append(events, metaEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": sp.Run},
			})
		}
		args := map[string]any{
			"reads":     sp.Counters.PageReads,
			"writes":    sp.Counters.PageWrites,
			"screens":   sp.Counters.Screens,
			"delta_ops": sp.Counters.DeltaOps,
			"invals":    sp.Counters.Invalidations,
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		events = append(events, event{
			Name: sp.Name, Ph: "X",
			Ts: sp.StartMs * 1000, Dur: sp.DurMs * 1000,
			Pid: 1, Tid: tid, Args: args,
		})
		// Flow arrows from each blamed session's latest span to this one.
		// Consulting `last` before updating it keeps a span from flowing
		// to itself when a session blames its own earlier operation.
		if bs, ok := sp.Attrs["blame_sessions"].(string); ok && bs != "" {
			seen := map[int]bool{}
			for _, tok := range strings.Split(bs, ",") {
				h, err := strconv.Atoi(tok)
				if err != nil || h < 0 || seen[h] {
					continue
				}
				seen[h] = true
				src, ok := last[sp.Run][h]
				if !ok {
					continue
				}
				flowID++
				events = append(events,
					flowEvent{Name: "lock-blame", Cat: "blame", Ph: "s",
						Ts: src.ts, Pid: 1, Tid: src.tid, ID: flowID},
					flowEvent{Name: "lock-blame", Cat: "blame", Ph: "f", BP: "e",
						Ts: sp.StartMs * 1000, Pid: 1, Tid: tid, ID: flowID})
			}
		}
		if sess, ok := attrInt(sp.Attrs["session"]); ok {
			if last[sp.Run] == nil {
				last[sp.Run] = map[int]anchor{}
			}
			last[sp.Run][sess] = anchor{ts: (sp.StartMs + sp.DurMs) * 1000, tid: tid}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// attrInt reads a numeric span attribute, tolerating the types an attr
// can arrive as: int when set in-process, float64 after a JSON
// round-trip through a trace file.
func attrInt(v any) (int, bool) {
	switch n := v.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case float64:
		return int(n), true
	}
	return 0, false
}
