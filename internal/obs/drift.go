package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DefaultDriftThreshold is the relative-error bound above which a
// strategy's measured cost is flagged as drifting from the analytic
// prediction. The repository's standing validation claim is that measured
// cost lands within ±15% of the closed forms at paper scale (see
// EXPERIMENTS.md), so 0.15 turns that claim into a checked invariant.
const DefaultDriftThreshold = 0.15

// DriftEntry accumulates measured-vs-predicted cost for one (strategy,
// model) pair across runs.
type DriftEntry struct {
	Strategy string
	Model    string
	Runs     int
	// SumMeasured and SumPredicted total the per-run ms/query values;
	// dividing by Runs gives the mean the relative error is computed on.
	SumMeasured  float64
	SumPredicted float64
}

// MeanMeasured returns the mean measured ms/query.
func (e DriftEntry) MeanMeasured() float64 {
	if e.Runs == 0 {
		return 0
	}
	return e.SumMeasured / float64(e.Runs)
}

// MeanPredicted returns the mean predicted ms/query.
func (e DriftEntry) MeanPredicted() float64 {
	if e.Runs == 0 {
		return 0
	}
	return e.SumPredicted / float64(e.Runs)
}

// RelErr returns |measured − predicted| / predicted on the means. It is
// +Inf when the prediction is zero but the measurement is not.
func (e DriftEntry) RelErr() float64 {
	p := e.MeanPredicted()
	m := e.MeanMeasured()
	if p == 0 {
		if m == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(m-p) / p
}

// Drift accumulates measured-vs-predicted cost per (strategy, model) and
// flags entries whose relative error exceeds Threshold — the paper's
// model-validation exercise turned into a continuously checked invariant.
type Drift struct {
	// Threshold is the flagging bound; zero means DefaultDriftThreshold.
	Threshold float64

	entries map[[2]string]*DriftEntry
}

// NewDrift returns a monitor with the given threshold (0 = default).
func NewDrift(threshold float64) *Drift {
	return &Drift{Threshold: threshold, entries: make(map[[2]string]*DriftEntry)}
}

func (d *Drift) threshold() float64 {
	if d.Threshold > 0 {
		return d.Threshold
	}
	return DefaultDriftThreshold
}

// Record adds one run's measured and predicted ms/query.
func (d *Drift) Record(strategy, model string, measured, predicted float64) {
	k := [2]string{strategy, model}
	e := d.entries[k]
	if e == nil {
		e = &DriftEntry{Strategy: strategy, Model: model}
		d.entries[k] = e
	}
	e.Runs++
	e.SumMeasured += measured
	e.SumPredicted += predicted
}

// Flagged reports whether the entry's relative error exceeds the monitor's
// threshold.
func (d *Drift) Flagged(e DriftEntry) bool { return e.RelErr() > d.threshold() }

// Entries returns the accumulated entries sorted by model then strategy.
func (d *Drift) Entries() []DriftEntry {
	out := make([]DriftEntry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].Strategy < out[j].Strategy
	})
	return out
}

// AnyFlagged reports whether any entry exceeds the threshold.
func (d *Drift) AnyFlagged() bool {
	for _, e := range d.entries {
		if d.Flagged(*e) {
			return true
		}
	}
	return false
}

// Render writes the drift summary table: one row per (strategy, model)
// with measured and predicted means, the relative error, and a DRIFT flag
// when it exceeds the threshold.
func (d *Drift) Render(w io.Writer) {
	fmt.Fprintf(w, "model drift (threshold %.0f%%):\n", 100*d.threshold())
	fmt.Fprintf(w, "  %-22s %-8s %5s %12s %12s %8s\n",
		"strategy", "model", "runs", "measured", "predicted", "relerr")
	for _, e := range d.Entries() {
		flag := ""
		if d.Flagged(e) {
			flag = "  DRIFT"
		}
		fmt.Fprintf(w, "  %-22s %-8s %5d %9.1f ms %9.1f ms %7.1f%%%s\n",
			e.Strategy, e.Model, e.Runs, e.MeanMeasured(), e.MeanPredicted(), 100*e.RelErr(), flag)
	}
}
