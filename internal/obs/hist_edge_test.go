package obs

import (
	"strings"
	"testing"
)

// TestHistogramQuantileEmpty: an empty histogram answers 0 for every
// quantile instead of panicking or reporting a bucket edge.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	var b strings.Builder
	h.Render(&b)
	if !strings.Contains(b.String(), "no observations") {
		t.Fatalf("empty render: %q", b.String())
	}
}

// TestHistogramQuantileSingleSample: with one observation every quantile
// collapses to it (clamped to max, never a wider bucket edge).
func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(7)
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) = %v, want 7 (the only sample)", q, got)
		}
	}
}

// TestHistogramQuantileFull: q = 1.0 is the max, and tiny q still ranks
// at least the first observation.
func TestHistogramQuantileFull(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 4.9} {
		h.Observe(v)
	}
	if got := h.Quantile(1); got != 4.9 {
		t.Fatalf("Quantile(1) = %v, want observed max 4.9", got)
	}
	// Rank clamps to >= 1: an absurdly small q reports the first bucket.
	if got := h.Quantile(1e-9); got != 1 {
		t.Fatalf("Quantile(1e-9) = %v, want first bucket edge 1", got)
	}
}

// TestHistogramQuantileAllOverflow: every observation above the last
// bound lands in the overflow bucket, whose reported edge is the observed
// max — quantiles must stay finite and ordered.
func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for _, v := range []float64{10, 20, 30} {
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 30 {
			t.Fatalf("overflow Quantile(%v) = %v, want max 30", q, got)
		}
	}
}

// TestHistogramQuantileMonotone: quantiles are non-decreasing in q and
// each is an upper bound for the exact value of its rank — the guarantee
// the telemetry package's P² sketch is cross-checked against.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(nil)
	vals := []float64{0.3, 0.9, 1.4, 3, 7, 7, 18, 44, 130, 820}
	for _, v := range vals {
		h.Observe(v)
	}
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, got, prev)
		}
		prev = got
		exact := vals[int(q*float64(len(vals))+0.999)-1]
		if got < exact {
			t.Fatalf("Quantile(%v) = %v below exact rank value %v", q, got, exact)
		}
	}
}
