package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dbproc/internal/metric"
)

func TestTracerSpansAndNesting(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	tr := NewTracer()
	tr.Bind(m)

	op := tr.Begin("op.query")
	m.PageRead(2) // 60 ms
	child := tr.Begin("ci.refresh")
	if tr.Current() != child {
		t.Fatal("Current() is not the innermost span")
	}
	child.Set("proc", 7)
	m.Screen(5) // 5 ms
	tr.End(child)
	m.PageWrite(1) // 30 ms
	tr.End(op)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0] != op || spans[1] != child {
		t.Fatal("spans not in begin order")
	}
	if child.Parent != op.ID {
		t.Fatalf("child.Parent = %d, want %d", child.Parent, op.ID)
	}
	if op.Parent != 0 {
		t.Fatalf("root span has parent %d", op.Parent)
	}
	if op.DurMs != 95 { // 2 reads + 1 write = 90, 5 screens = 5
		t.Fatalf("op.DurMs = %v, want 95", op.DurMs)
	}
	if child.DurMs != 5 {
		t.Fatalf("child.DurMs = %v, want 5", child.DurMs)
	}
	if child.StartMs != 60 {
		t.Fatalf("child.StartMs = %v, want 60", child.StartMs)
	}
	if op.Counters.PageReads != 2 || op.Counters.PageWrites != 1 || op.Counters.Screens != 5 {
		t.Fatalf("op.Counters = %v", op.Counters)
	}
	if got, want := child.Attrs["proc"], 7; got != want {
		t.Fatalf("child attr proc = %v, want %v", got, want)
	}
	// The registry accumulated one latency observation per span name.
	if n := tr.Registry().Count("op", "query"); n != 1 {
		t.Fatalf("registry count op.query = %d, want 1", n)
	}
	if h := tr.Registry().Hist("ci", "refresh"); h == nil || h.Count() != 1 {
		t.Fatal("registry missing ci.refresh histogram")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("op.query")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Set("k", 1) // nil span: no-op
	tr.End(sp)
	if tr.Current() != nil || tr.Spans() != nil || tr.Registry() != nil || tr.Records("x") != nil {
		t.Fatal("nil tracer leaked state")
	}
	tr.Bind(nil)
}

func TestTracerEndMismatchPanics(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	tr := NewTracer()
	tr.Bind(m)
	outer := tr.Begin("a")
	tr.Begin("b")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched End did not panic")
		}
	}()
	tr.End(outer)
}

func TestJSONLRoundTrip(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	tr := NewTracer()
	tr.Bind(m)
	sp := tr.Begin("op.update")
	m.DeltaOp(3)
	sp.Set("cache", "cold")
	tr.End(sp)

	cf := 0.25
	run := RunRecord{
		Type: RecordRun, Run: "Cache and Invalidate", Strategy: "Cache and Invalidate",
		Model: "model 1", Seed: 1, Queries: 10, Updates: 5,
		MeasuredMsPerQuery: 100, PredictedMsPerQuery: 90, ColdFraction: &cf,
	}
	bd := m.Breakdown()
	var buf bytes.Buffer
	recs := []any{run, BreakdownToRecord("Cache and Invalidate", bd, m.Costs())}
	for _, s := range tr.Records("Cache and Invalidate") {
		recs = append(recs, s)
	}
	if err := WriteJSONL(&buf, recs...); err != nil {
		t.Fatal(err)
	}

	tc, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Runs) != 1 || len(tc.Breakdowns) != 1 || len(tc.Spans) != 1 {
		t.Fatalf("parsed %d runs, %d breakdowns, %d spans", len(tc.Runs), len(tc.Breakdowns), len(tc.Spans))
	}
	if tc.Runs[0].ColdFraction == nil || *tc.Runs[0].ColdFraction != 0.25 {
		t.Fatalf("cold fraction lost: %+v", tc.Runs[0])
	}
	got := tc.Spans[0]
	if got.Name != "op.update" || got.DurMs != 3 || got.Counters.DeltaOps != 3 {
		t.Fatalf("span mangled: %+v", got)
	}
	if got.Attrs["cache"] != "cold" {
		t.Fatalf("span attrs mangled: %+v", got.Attrs)
	}
	// The breakdown record's component sums must reproduce the aggregate.
	var total metric.Counters
	for _, c := range tc.Breakdowns[0].Components {
		total = total.Add(c.Counters())
	}
	if total != m.Snapshot() {
		t.Fatalf("breakdown record total %v != snapshot %v", total, m.Snapshot())
	}
}

func TestReadTraceSkipsUnknownTypes(t *testing.T) {
	in := strings.NewReader(`{"type":"future-record","x":1}` + "\n" +
		`{"type":"run","run":"r","strategy":"s","model":"m","measured_ms_per_query":1,"predicted_ms_per_query":1}` + "\n")
	tc, err := ReadTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Runs) != 1 {
		t.Fatalf("parsed %d runs, want 1", len(tc.Runs))
	}
}

func TestChromeTraceExport(t *testing.T) {
	spans := []SpanRecord{
		{Type: RecordSpan, Run: "A", ID: 1, Name: "op.query", StartMs: 10, DurMs: 5,
			Attrs: map[string]any{"proc": 3}},
		{Type: RecordSpan, Run: "B", ID: 1, Name: "op.update", StartMs: 0, DurMs: 2},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// 2 thread_name metadata events + 2 duration events.
	if len(out.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(out.TraceEvents))
	}
	var x map[string]any
	for _, ev := range out.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "op.query" {
			x = ev
		}
	}
	if x == nil {
		t.Fatal("no X event for op.query")
	}
	if x["ts"].(float64) != 10000 || x["dur"].(float64) != 5000 {
		t.Fatalf("µs conversion wrong: ts=%v dur=%v", x["ts"], x["dur"])
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-111.24) > 0.01 {
		t.Fatalf("mean = %v", got)
	}
	if q := h.Quantile(0.5); q != 10 { // 3rd of 5 obs is in (1,10]
		t.Fatalf("p50 = %v, want 10", q)
	}
	if q := h.Quantile(1); q != 500 {
		t.Fatalf("p100 = %v, want 500", q)
	}
	var buf bytes.Buffer
	h.Render(&buf)
	if !strings.Contains(buf.String(), "n=5") {
		t.Fatalf("render missing summary: %q", buf.String())
	}
}

func TestRegistryKeyedByComponentEvent(t *testing.T) {
	r := NewRegistry()
	r.Observe("op", "query", 30)
	r.Observe("op", "query", 60)
	r.Observe("avm", "merge", 5)
	r.Add("rete", "tokens", 12)
	if r.Count("op", "query") != 2 || r.Count("avm", "merge") != 1 || r.Count("rete", "tokens") != 12 {
		t.Fatalf("counts wrong: %v %v %v",
			r.Count("op", "query"), r.Count("avm", "merge"), r.Count("rete", "tokens"))
	}
	keys := r.Keys()
	if len(keys) != 3 || keys[0] != (Key{"op", "query"}) || keys[2] != (Key{"rete", "tokens"}) {
		t.Fatalf("keys order wrong: %v", keys)
	}
	if h := r.Hist("op", "query"); h == nil || h.Sum() != 90 {
		t.Fatal("op.query histogram wrong")
	}
	if h := r.Hist("rete", "tokens"); h != nil {
		t.Fatal("Add must not create a histogram")
	}
}

func TestDriftMonitor(t *testing.T) {
	d := NewDrift(0.15)
	d.Record("Always Recompute", "model 1", 110, 100) // 10% — fine
	d.Record("Cache and Invalidate", "model 1", 150, 100)
	d.Record("Cache and Invalidate", "model 1", 130, 100) // mean 140 → 40% drift
	entries := d.Entries()
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	var ci, ar DriftEntry
	for _, e := range entries {
		switch e.Strategy {
		case "Cache and Invalidate":
			ci = e
		case "Always Recompute":
			ar = e
		}
	}
	if ci.Runs != 2 || math.Abs(ci.RelErr()-0.40) > 1e-9 {
		t.Fatalf("ci entry wrong: %+v relerr %v", ci, ci.RelErr())
	}
	if d.Flagged(ar) {
		t.Fatal("10%% error flagged at 15%% threshold")
	}
	if !d.Flagged(ci) || !d.AnyFlagged() {
		t.Fatal("40%% error not flagged")
	}
	var buf bytes.Buffer
	d.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "DRIFT") || !strings.Contains(out, "Always Recompute") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if strings.Count(out, "DRIFT") != 1 {
		t.Fatalf("want exactly one DRIFT flag:\n%s", out)
	}
}

func TestDriftZeroPrediction(t *testing.T) {
	d := NewDrift(0)
	d.Record("s", "m", 5, 0)
	if e := d.Entries()[0]; !math.IsInf(e.RelErr(), 1) || !d.Flagged(e) {
		t.Fatal("nonzero measurement against zero prediction must flag")
	}
	if d.threshold() != DefaultDriftThreshold {
		t.Fatal("zero threshold did not default")
	}
}

func TestRenderBreakdownSumsToAggregate(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	m.SetComponent(metric.CompBTree)
	m.PageRead(4)
	m.Screen(10)
	m.SetComponent(metric.CompCache)
	m.PageWrite(2)
	m.SetComponent(metric.CompPager)

	var buf bytes.Buffer
	RenderBreakdown(&buf, m.Breakdown(), m.Costs())
	out := buf.String()
	for _, want := range []string{"btree", "cache", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rete") {
		t.Errorf("breakdown shows idle component:\n%s", out)
	}
	// TOTAL row must carry the aggregate counts.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	for _, want := range []string{"TOTAL", "4", "2", "10"} {
		if !strings.Contains(last, want) {
			t.Errorf("total row missing %q: %q", want, last)
		}
	}

	// Round-trip through a trace record renders identically.
	rec := BreakdownToRecord("r", m.Breakdown(), m.Costs())
	var buf2 bytes.Buffer
	RenderBreakdownRecord(&buf2, rec)
	if buf2.String() != out {
		t.Errorf("record render differs:\n%s\nvs\n%s", buf2.String(), out)
	}
}
