package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Wire-span records are the wall-clock half of the trace schema
// (docs/TRACING.md). Unlike the simulated-millisecond spans above, a
// wire span times one served request on a real clock: the client side
// spans the driver call (send → response decoded), the server side
// spans the request's service (dispatch → response build), and the two
// are tied together by the trace context the request frame propagated.
// Both sides write the same JSONL record type, so one reader
// (ReadTrace) parses either file and proctrace merges them.

// RecordWireSpan is the "type" field of a wire-span JSONL line.
const RecordWireSpan = "wire_span"

// Sides of a wire span.
const (
	SideClient = "client"
	SideServer = "server"
)

// Canonical segment keys of a server span's breakdown, in rendering
// order. The segments partition the span's DurNs exactly — see
// wire.ServerBreakdown and CheckWireSpans.
var SegmentOrder = []string{"admission", "gate", "lock_wait", "io", "recompute", "compute"}

// WireSpanRecord is one wire span line in a trace file.
type WireSpanRecord struct {
	Type string `json:"type"`
	// Side is "client" or "server".
	Side string `json:"side"`
	// TraceID ties the two sides of one request together; SpanID is
	// this span, ParentSpanID the client span a server span nests under.
	TraceID      string `json:"trace_id"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Name is the request name (wire.Name: "stmt", "world.next", ...).
	Name string `json:"name"`
	// Conn identifies the connection (client-side dial counter or
	// server-side conn id — the two spaces are independent).
	Conn int64 `json:"conn,omitempty"`
	// Phase is the op's scenario phase, when the step reported one.
	Phase string `json:"phase,omitempty"`
	// StartUnixNs and DurNs place the span on that side's wall clock.
	StartUnixNs int64 `json:"start_unix_ns"`
	DurNs       int64 `json:"dur_ns"`
	// NetworkNs is the client-derived wire time: client wall minus the
	// server-reported wall (client spans only, and only when the
	// response carried a breakdown).
	NetworkNs int64 `json:"network_ns,omitempty"`
	// Segments is the server-side partition of DurNs, keyed by
	// SegmentOrder (server spans only).
	Segments map[string]int64 `json:"segments,omitempty"`
	// Err carries the error code when the request failed.
	Err string `json:"err,omitempty"`
}

// ---------------------------------------------------------------------------
// Trace and span identifiers

var (
	idSalt    = uint64(time.Now().UnixNano())
	idCounter atomic.Uint64
)

// NewTraceID returns a 16-hex-digit process-unique identifier. IDs mix
// a process salt with a sequence counter (no math/rand: worlds keep
// their injected-RNG discipline, and trace IDs are wall-clock artifacts
// with no replay contract).
func NewTraceID() string {
	n := idCounter.Add(1)
	return fmt.Sprintf("%016x", idSalt^(n*0x9e3779b97f4a7c15))
}

// NewSpanID returns a span identifier from the same sequence.
func NewSpanID() string { return NewTraceID() }

// ---------------------------------------------------------------------------
// Sink

// WireSpanSink serializes wire-span records to one JSONL stream. Safe
// for concurrent use; nil-safe, so an untraced server passes a nil sink
// and pays one nil check per request.
type WireSpanSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	n   int64
}

// NewWireSpanSink wraps w (typically a file) in a sink.
func NewWireSpanSink(w io.Writer) *WireSpanSink {
	bw := bufio.NewWriter(w)
	return &WireSpanSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record, stamping its type.
func (s *WireSpanSink) Write(rec WireSpanRecord) error {
	if s == nil {
		return nil
	}
	rec.Type = RecordWireSpan
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	if err := s.enc.Encode(rec); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Count reports how many records the sink has written.
func (s *WireSpanSink) Count() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// ---------------------------------------------------------------------------
// Checking

// CheckWireSpans verifies the server-side sum-to-total invariant: every
// server span carrying segments must have them sum exactly to its
// DurNs. It returns one error per violating span.
func CheckWireSpans(spans []WireSpanRecord) []error {
	var errs []error
	for _, sp := range spans {
		if sp.Side != SideServer || len(sp.Segments) == 0 {
			continue
		}
		var sum int64
		for _, v := range sp.Segments {
			sum += v
		}
		if sum != sp.DurNs {
			errs = append(errs, fmt.Errorf("server span %s (%s, trace %s): segments sum %d != wall %d",
				sp.SpanID, sp.Name, sp.TraceID, sum, sp.DurNs))
		}
	}
	return errs
}

// ---------------------------------------------------------------------------
// Merging

// MergeStats summarizes one MergeWireTrace call.
type MergeStats struct {
	ClientSpans int
	ServerSpans int
	// Pairs counts client spans matched to a server span by trace id.
	Pairs int
	// MeanOffsetNs is the clock offset subtracted from server
	// timestamps to align them with the client clock (estimated from
	// matched-pair midpoints, so it absorbs both clock skew and the
	// symmetric half of the network round trip).
	MeanOffsetNs int64
	// Arrows counts the cross-wire flow arrows emitted (request +
	// response per pair).
	Arrows int
}

// MergeWireTrace renders client- and server-side wire spans as one
// clock-aligned Chrome trace (chrome://tracing, ui.perfetto.dev):
// process 1 is the client, process 2 the server, one thread per
// connection. Matched requests get cross-wire flow arrows — client send
// to server dispatch, server response to client receive — and server
// spans with a breakdown get child slices, one per segment in
// SegmentOrder.
//
// The two sides run on different clocks. For every matched pair the
// midpoint difference client−server estimates that clock's offset (the
// server span sits inside the client span, so midpoints coincide up to
// skew plus network asymmetry); the mean over all pairs realigns the
// server timeline.
func MergeWireTrace(w io.Writer, spans []WireSpanRecord) (MergeStats, error) {
	var st MergeStats
	type event struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		ID   int            `json:"id,omitempty"`
		BP   string         `json:"bp,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}

	// Index the server side by trace id; estimate the clock offset.
	serverByTrace := map[string]*WireSpanRecord{}
	var clients, servers []*WireSpanRecord
	for i := range spans {
		sp := &spans[i]
		switch sp.Side {
		case SideClient:
			clients = append(clients, sp)
		case SideServer:
			servers = append(servers, sp)
			serverByTrace[sp.TraceID] = sp
		}
	}
	st.ClientSpans, st.ServerSpans = len(clients), len(servers)
	var offSum, offN int64
	for _, c := range clients {
		s, ok := serverByTrace[c.TraceID]
		if !ok {
			continue
		}
		st.Pairs++
		cMid := c.StartUnixNs + c.DurNs/2
		sMid := s.StartUnixNs + s.DurNs/2
		offSum += cMid - sMid
		offN++
	}
	if offN > 0 {
		st.MeanOffsetNs = offSum / offN
	}

	// Base timestamp: earliest aligned start, so the timeline begins
	// near zero.
	base := int64(0)
	first := true
	aligned := func(sp *WireSpanRecord) int64 {
		if sp.Side == SideServer {
			return sp.StartUnixNs + st.MeanOffsetNs
		}
		return sp.StartUnixNs
	}
	for i := range spans {
		if s := aligned(&spans[i]); first || s < base {
			base, first = s, false
		}
	}
	ts := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	pidOf := map[string]int{SideClient: 1, SideServer: 2}
	events := []any{
		map[string]any{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
			"args": map[string]any{"name": "client"}},
		map[string]any{"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
			"args": map[string]any{"name": "server"}},
	}

	// Deterministic output: spans sorted by aligned start, ties by span id.
	order := make([]*WireSpanRecord, 0, len(spans))
	for i := range spans {
		if spans[i].Side == SideClient || spans[i].Side == SideServer {
			order = append(order, &spans[i])
		}
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := aligned(order[i]), aligned(order[j])
		if si != sj {
			return si < sj
		}
		return order[i].SpanID < order[j].SpanID
	})

	flowID := 0
	for _, sp := range order {
		start := aligned(sp)
		args := map[string]any{"trace_id": sp.TraceID, "span_id": sp.SpanID}
		if sp.ParentSpanID != "" {
			args["parent_span_id"] = sp.ParentSpanID
		}
		if sp.Phase != "" {
			args["phase"] = sp.Phase
		}
		if sp.NetworkNs != 0 {
			args["network_ns"] = sp.NetworkNs
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		events = append(events, event{
			Name: sp.Name, Ph: "X", Ts: ts(start), Dur: float64(sp.DurNs) / 1e3,
			Pid: pidOf[sp.Side], Tid: sp.Conn, Args: args,
		})
		// Server breakdown child slices, laid end to end in canonical
		// segment order (they partition the span exactly).
		if sp.Side == SideServer && len(sp.Segments) > 0 {
			segStart := start
			for _, key := range SegmentOrder {
				d := sp.Segments[key]
				if d <= 0 {
					continue
				}
				events = append(events, event{
					Name: key, Cat: "segment", Ph: "X",
					Ts: ts(segStart), Dur: float64(d) / 1e3,
					Pid: pidOf[SideServer], Tid: sp.Conn,
				})
				segStart += d
			}
		}
		// Cross-wire flow arrows for the matched pair, drawn from the
		// client span so each pair is emitted once.
		if sp.Side == SideClient {
			srv, ok := serverByTrace[sp.TraceID]
			if !ok {
				continue
			}
			sStart := aligned(srv)
			flowID++
			events = append(events,
				event{Name: "request", Cat: "wire", Ph: "s", Ts: ts(start),
					Pid: pidOf[SideClient], Tid: sp.Conn, ID: flowID},
				event{Name: "request", Cat: "wire", Ph: "f", BP: "e", Ts: ts(sStart),
					Pid: pidOf[SideServer], Tid: srv.Conn, ID: flowID})
			flowID++
			events = append(events,
				event{Name: "response", Cat: "wire", Ph: "s", Ts: ts(sStart + srv.DurNs),
					Pid: pidOf[SideServer], Tid: srv.Conn, ID: flowID},
				event{Name: "response", Cat: "wire", Ph: "f", BP: "e", Ts: ts(start + sp.DurNs),
					Pid: pidOf[SideClient], Tid: sp.Conn, ID: flowID})
			st.Arrows += 2
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]any{"traceEvents": events}); err != nil {
		return st, err
	}
	return st, nil
}
