package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// span builds a matched client/server pair: the server span sits inside
// the client span on its own clock, shifted by skewNs.
func pair(trace string, conn int64, startNs, clientDur, serverDur, skewNs int64, segs map[string]int64) (WireSpanRecord, WireSpanRecord) {
	c := WireSpanRecord{
		Side: SideClient, TraceID: trace, SpanID: trace + "-c", Name: "stmt",
		Conn: conn, StartUnixNs: startNs, DurNs: clientDur,
		NetworkNs: clientDur - serverDur,
	}
	gap := (clientDur - serverDur) / 2
	s := WireSpanRecord{
		Side: SideServer, TraceID: trace, SpanID: trace + "-s", ParentSpanID: c.SpanID,
		Name: "stmt", Conn: 100 + conn,
		StartUnixNs: startNs + gap - skewNs, DurNs: serverDur,
		Segments: segs,
	}
	return c, s
}

func TestMergeWireTrace(t *testing.T) {
	segs := map[string]int64{"admission": 100, "gate": 400, "compute": 500}
	c1, s1 := pair("t1", 1, 1_000_000, 5000, 1000, 250_000, segs)
	c2, s2 := pair("t2", 2, 2_000_000, 8000, 2000, 250_000,
		map[string]int64{"admission": 200, "lock_wait": 800, "io": 600, "compute": 400})
	orphan := WireSpanRecord{Side: SideClient, TraceID: "t3", SpanID: "t3-c",
		Name: "ping", Conn: 1, StartUnixNs: 3_000_000, DurNs: 100}

	var buf bytes.Buffer
	st, err := MergeWireTrace(&buf, []WireSpanRecord{c1, s1, c2, s2, orphan})
	if err != nil {
		t.Fatal(err)
	}
	if st.ClientSpans != 3 || st.ServerSpans != 2 || st.Pairs != 2 {
		t.Fatalf("stats = %+v, want 3 client / 2 server / 2 pairs", st)
	}
	if st.Arrows != 4 {
		t.Fatalf("arrows = %d, want 4 (request+response per pair)", st.Arrows)
	}
	// Both pairs were built with the same skew, so the midpoint
	// estimator must recover it exactly.
	if st.MeanOffsetNs != 250_000 {
		t.Fatalf("mean offset = %d, want 250000", st.MeanOffsetNs)
	}

	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("merged output is not JSON: %v", err)
	}
	var flows, segments, slices int
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "s", "f":
			flows++
		case "X":
			if ev["cat"] == "segment" {
				segments++
			} else {
				slices++
			}
		}
	}
	if flows != 8 { // 2 pairs x 2 arrows x 2 endpoints
		t.Errorf("flow events = %d, want 8", flows)
	}
	if segments != 7 { // 3 + 4 nonzero segments
		t.Errorf("segment slices = %d, want 7", segments)
	}
	if slices != 5 { // 3 client + 2 server spans
		t.Errorf("span slices = %d, want 5", slices)
	}
	// After alignment the server span must start inside its client span.
	evByName := func(name string) map[string]any {
		for _, ev := range out.TraceEvents {
			if args, ok := ev["args"].(map[string]any); ok && args["span_id"] == name {
				return ev
			}
		}
		return nil
	}
	cEv, sEv := evByName("t1-c"), evByName("t1-s")
	if cEv == nil || sEv == nil {
		t.Fatal("merged trace lost a span")
	}
	cs, ss := cEv["ts"].(float64), sEv["ts"].(float64)
	if ss < cs || ss+sEv["dur"].(float64) > cs+cEv["dur"].(float64) {
		t.Errorf("aligned server span [%v +%v] not inside client span [%v +%v]",
			ss, sEv["dur"], cs, cEv["dur"])
	}
}

func TestCheckWireSpans(t *testing.T) {
	good := WireSpanRecord{Side: SideServer, SpanID: "a", Name: "stmt", DurNs: 1000,
		Segments: map[string]int64{"gate": 400, "compute": 600}}
	bad := WireSpanRecord{Side: SideServer, SpanID: "b", Name: "stmt", DurNs: 1000,
		Segments: map[string]int64{"gate": 400, "compute": 500}}
	clientNoSegs := WireSpanRecord{Side: SideClient, SpanID: "c", DurNs: 7}
	errs := CheckWireSpans([]WireSpanRecord{good, bad, clientNoSegs})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "span b") {
		t.Fatalf("errs = %v, want exactly the bad span", errs)
	}
}

func TestWireSpanSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewWireSpanSink(&buf)
	recs := []WireSpanRecord{
		{Side: SideClient, TraceID: "t", SpanID: "c1", Name: "stmt", StartUnixNs: 10, DurNs: 5},
		{Side: SideServer, TraceID: "t", SpanID: "s1", ParentSpanID: "c1", Name: "stmt",
			StartUnixNs: 11, DurNs: 3, Phase: "crowd",
			Segments: map[string]int64{"admission": 1, "compute": 2}},
	}
	for _, r := range recs {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if sink.Count() != 2 {
		t.Fatalf("count = %d", sink.Count())
	}
	// A nil sink must be a no-op.
	var nilSink *WireSpanSink
	if err := nilSink.Write(recs[0]); err != nil || nilSink.Count() != 0 {
		t.Fatal("nil sink not a no-op")
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.WireSpans) != 2 {
		t.Fatalf("ReadTrace parsed %d wire spans, want 2", len(tr.WireSpans))
	}
	got := tr.WireSpans[1]
	if got.Phase != "crowd" || got.Segments["compute"] != 2 || got.ParentSpanID != "c1" {
		t.Fatalf("round-tripped span = %+v", got)
	}
	if errs := CheckWireSpans(tr.WireSpans); len(errs) != 0 {
		t.Fatalf("sink output violates sum-to-total: %v", errs)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("id %q duplicate or malformed", id)
		}
		seen[id] = true
	}
}
