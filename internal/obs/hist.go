package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// defaultBounds are the upper edges of the default histogram buckets, in
// simulated milliseconds: a 1-2-5 decade ladder wide enough for anything
// from a single predicate screen (1 ms) to a full recompute at paper scale
// (minutes). Values above the last bound land in an overflow bucket.
var defaultBounds = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6,
}

// Histogram is a bounded-bucket histogram of simulated milliseconds.
// Memory is fixed at construction: one counter per bucket plus running
// count/sum/min/max, so per-op observation is O(log buckets) with no
// allocation.
type Histogram struct {
	bounds []float64 // upper edges, ascending; len(counts) = len(bounds)+1
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram with the given ascending upper bucket
// edges, or the default 1-2-5 ladder when bounds is nil.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = defaultBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket holding the q-th observation, clamped to the
// observed max. Exact-enough for latency reporting with 1-2-5 buckets.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			var edge float64
			if i < len(h.bounds) {
				edge = h.bounds[i]
			} else {
				edge = h.max
			}
			return math.Min(edge, h.max)
		}
	}
	return h.max
}

// Render writes a fixed-width ASCII view of the non-empty buckets, one row
// per bucket with a proportional bar.
func (h *Histogram) Render(w io.Writer) {
	if h.count == 0 {
		fmt.Fprintln(w, "  (no observations)")
		return
	}
	var peak int64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	lo := 0.0
	for i, c := range h.counts {
		hi := math.Inf(1)
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		if c > 0 {
			bar := strings.Repeat("#", int(math.Ceil(40*float64(c)/float64(peak))))
			if math.IsInf(hi, 1) {
				fmt.Fprintf(w, "  %10.6g+ ms %8d %s\n", lo, c, bar)
			} else {
				fmt.Fprintf(w, "  %10.6g-%-6.6g ms %8d %s\n", lo, hi, c, bar)
			}
		}
		lo = hi
	}
	fmt.Fprintf(w, "  n=%d mean=%.1f ms min=%.6g max=%.6g p50<=%.6g p95<=%.6g p99<=%.6g\n",
		h.count, h.Mean(), h.Min(), h.Max(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
}

// Key identifies one metric in a Registry: a (component, event) pair, e.g.
// ("op", "query") for workload-operation latency or ("avm", "merge") for
// the AVM delta-merge step.
type Key struct {
	Component string
	Event     string
}

// String renders "component.event".
func (k Key) String() string {
	if k.Event == "" {
		return k.Component
	}
	return k.Component + "." + k.Event
}

// Registry holds counters and bounded-bucket histograms keyed by
// (component, event), in first-use order. The tracer feeds it one latency
// histogram per span name; other code may add counters freely.
type Registry struct {
	counts map[Key]int64
	hists  map[Key]*Histogram
	order  []Key
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counts: make(map[Key]int64), hists: make(map[Key]*Histogram)}
}

func (r *Registry) key(component, event string) Key {
	k := Key{component, event}
	if _, seen := r.counts[k]; !seen {
		if _, seen := r.hists[k]; !seen {
			r.order = append(r.order, k)
		}
	}
	return k
}

// Add increments the counter for (component, event) by n.
func (r *Registry) Add(component, event string, n int64) {
	if r == nil {
		return
	}
	r.counts[r.key(component, event)] += n
}

// Observe records a value into the histogram for (component, event),
// creating it with default bounds on first use, and bumps its counter.
func (r *Registry) Observe(component, event string, v float64) {
	if r == nil {
		return
	}
	k := r.key(component, event)
	h := r.hists[k]
	if h == nil {
		h = NewHistogram(nil)
		r.hists[k] = h
	}
	h.Observe(v)
	r.counts[k]++
}

// Count returns the counter for (component, event).
func (r *Registry) Count(component, event string) int64 {
	if r == nil {
		return 0
	}
	return r.counts[Key{component, event}]
}

// Hist returns the histogram for (component, event), or nil.
func (r *Registry) Hist(component, event string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[Key{component, event}]
}

// Keys returns every registered key in first-use order.
func (r *Registry) Keys() []Key {
	if r == nil {
		return nil
	}
	return append([]Key(nil), r.order...)
}

// Render writes every histogram in first-use order.
func (r *Registry) Render(w io.Writer) {
	if r == nil {
		return
	}
	for _, k := range r.order {
		if h := r.hists[k]; h != nil {
			fmt.Fprintf(w, "%s:\n", k)
			h.Render(w)
		}
	}
}
