package storage

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func rec4(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func TestRecordFileAppendGet(t *testing.T) {
	p, _ := newTestPager(16) // 4 records of 4 bytes per page
	f := NewRecordFile(p.Disk(), 4)
	if f.PerPage() != 4 || f.RecordSize() != 4 {
		t.Fatalf("PerPage=%d RecordSize=%d", f.PerPage(), f.RecordSize())
	}
	for i := uint32(0); i < 10; i++ {
		if got := f.Append(p, rec4(i)); got != int(i) {
			t.Fatalf("Append returned %d, want %d", got, i)
		}
	}
	if f.Len() != 10 || f.Pages() != 3 {
		t.Fatalf("Len=%d Pages=%d, want 10 and 3", f.Len(), f.Pages())
	}
	for i := uint32(0); i < 10; i++ {
		if got := f.Get(p, int(i)); !bytes.Equal(got, rec4(i)) {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
}

func TestRecordFileSetAndScan(t *testing.T) {
	p, _ := newTestPager(16)
	f := NewRecordFile(p.Disk(), 4)
	for i := uint32(0); i < 6; i++ {
		f.Append(p, rec4(i))
	}
	f.Set(p, 3, rec4(99))
	var seen []uint32
	f.Scan(p, func(i int, rec []byte) bool {
		seen = append(seen, binary.LittleEndian.Uint32(rec))
		return true
	})
	want := []uint32{0, 1, 2, 99, 4, 5}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Scan saw %v, want %v", seen, want)
		}
	}
	// Early termination.
	count := 0
	f.Scan(p, func(i int, rec []byte) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("Scan visited %d records after early stop, want 2", count)
	}
}

func TestRecordFileSwapDelete(t *testing.T) {
	p, _ := newTestPager(16)
	f := NewRecordFile(p.Disk(), 4)
	for i := uint32(0); i < 5; i++ {
		f.Append(p, rec4(i))
	}
	f.SwapDelete(p, 1) // record 4 moves into slot 1
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if got := binary.LittleEndian.Uint32(f.Get(p, 1)); got != 4 {
		t.Fatalf("slot 1 = %d, want 4", got)
	}
	if f.Pages() != 1 {
		t.Fatalf("Pages = %d, want 1 after shrink past boundary", f.Pages())
	}
	// Deleting the last record needs no move.
	f.SwapDelete(p, f.Len()-1)
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
}

func TestRecordFileClearFreesPages(t *testing.T) {
	p, _ := newTestPager(16)
	f := NewRecordFile(p.Disk(), 4)
	for i := uint32(0); i < 8; i++ {
		f.Append(p, rec4(i))
	}
	before := p.Disk().NumPages()
	f.Clear(p)
	if f.Len() != 0 || f.Pages() != 0 {
		t.Fatal("Clear left records behind")
	}
	// Freed pages are reused, not newly allocated.
	for i := uint32(0); i < 8; i++ {
		f.Append(p, rec4(i))
	}
	if got := p.Disk().NumPages(); got != before {
		t.Fatalf("refill allocated new pages: %d vs %d", got, before)
	}
}

func TestRecordFileIOCharges(t *testing.T) {
	p, m := newTestPager(16)
	f := NewRecordFile(p.Disk(), 4)
	p.BeginOp()
	for i := uint32(0); i < 8; i++ { // exactly 2 pages, appended fresh
		f.Append(p, rec4(i))
	}
	p.BeginOp() // flush
	c := m.Snapshot()
	if c.PageReads != 0 || c.PageWrites != 2 {
		t.Fatalf("bulk append charged %v, want 0 reads 2 writes", c)
	}

	m.Reset()
	p.BeginOp()
	f.Scan(p, func(int, []byte) bool { return true })
	if got := m.Snapshot().PageReads; got != 2 {
		t.Fatalf("scan charged %d reads, want 2", got)
	}

	m.Reset()
	p.BeginOp()
	f.Set(p, 0, rec4(42))
	p.BeginOp()
	c = m.Snapshot()
	if c.PageReads != 1 || c.PageWrites != 1 {
		t.Fatalf("in-place set charged %v, want 1 read 1 write", c)
	}
}

func TestRecordFilePanics(t *testing.T) {
	p, _ := newTestPager(16)
	f := NewRecordFile(p.Disk(), 4)
	f.Append(p, rec4(1))
	for name, fn := range map[string]func(){
		"get out of range": func() { f.Get(p, 1) },
		"get negative":     func() { f.Get(p, -1) },
		"set wrong size":   func() { f.Set(p, 0, []byte{1}) },
		"append wrong":     func() { f.Append(p, []byte{1, 2}) },
		"record too big":   func() { NewRecordFile(p.Disk(), 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
