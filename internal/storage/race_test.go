package storage

import (
	"sync"
	"testing"

	"dbproc/internal/metric"
)

// runPattern executes one session's access pattern against the shared
// disk through its own pager: ops operations, each reading every page in
// the set, dirtying each once, then re-touching each (which must stay
// free within the operation). It returns the counters the session's
// private meter charged — the per-operation distinct-page C2 accounting.
func runPattern(d *Disk, pages []PageID, ops int) metric.Counters {
	m := metric.NewMeter(metric.DefaultCosts())
	p := NewPager(d, m)
	for op := 0; op < ops; op++ {
		p.BeginOp()
		for _, id := range pages {
			_ = p.Read(id)
		}
		for _, id := range pages {
			buf := p.Update(id)
			buf[0]++
		}
		for _, id := range pages {
			_ = p.Read(id) // re-touch: free within the op
		}
	}
	p.BeginOp() // flush the last operation
	return m.Snapshot()
}

// patternBaseline is what one session charges running the pattern alone:
// per operation, one read and one write per distinct page, nothing for
// re-touches — the sequential C2 model.
func patternBaseline(t *testing.T, nPages, ops int) metric.Counters {
	t.Helper()
	d := NewDisk(128)
	pages := make([]PageID, nPages)
	for i := range pages {
		pages[i] = d.Alloc()
	}
	c := runPattern(d, pages, ops)
	if c.PageReads != int64(nPages*ops) || c.PageWrites != int64(nPages*ops) {
		t.Fatalf("sequential baseline charged %v, want %d reads and writes", c, nPages*ops)
	}
	return c
}

// TestConcurrentPagersDisjointPages runs many sessions against one Disk,
// each on its own page set. Every session's per-op distinct-page counts
// must be identical to the sequential baseline, and since the sets are
// disjoint the page contents must come out exactly as a serial run would
// leave them. Run under -race this also exercises the striped page
// latches and the directory lock.
func TestConcurrentPagersDisjointPages(t *testing.T) {
	const sessions, perSession, ops = 8, 5, 40
	want := patternBaseline(t, perSession, ops)

	d := NewDisk(128)
	sets := make([][]PageID, sessions)
	for s := range sets {
		sets[s] = make([]PageID, perSession)
		for i := range sets[s] {
			sets[s][i] = d.Alloc()
		}
	}

	got := make([]metric.Counters, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			got[s] = runPattern(d, sets[s], ops)
		}(s)
	}
	wg.Wait()

	for s, c := range got {
		if c != want {
			t.Errorf("session %d charged %v under concurrency, sequential charges %v", s, c, want)
		}
	}
	// Disjoint sets conflict with nobody: the final page images equal a
	// serial run's (each page's first byte incremented once per op).
	for s, set := range sets {
		for i, id := range set {
			if b := d.ReadRaw(id)[0]; b != byte(ops) {
				t.Errorf("session %d page %d: byte0 = %d, want %d", s, i, b, ops)
			}
		}
	}
}

// TestConcurrentPagersOverlappingPages points every session at the SAME
// page set. Physical outcomes on shared pages are racy by design — in
// the engine the 2PL lock table serializes such conflicts — but the C2
// accounting is per-session frame-table state and must charge exactly
// the sequential figure regardless of interleaving, and -race must stay
// silent (page contents move only under the striped latches).
func TestConcurrentPagersOverlappingPages(t *testing.T) {
	const sessions, nPages, ops = 8, 5, 40
	want := patternBaseline(t, nPages, ops)

	d := NewDisk(128)
	pages := make([]PageID, nPages)
	for i := range pages {
		pages[i] = d.Alloc()
	}

	got := make([]metric.Counters, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			got[s] = runPattern(d, pages, ops)
		}(s)
	}
	wg.Wait()

	for s, c := range got {
		if c != want {
			t.Errorf("session %d charged %v under page conflicts, sequential charges %v", s, c, want)
		}
	}
}

// TestConcurrentAllocAndAccess races page allocation against reads and
// writes of already-allocated pages: growing the directory must never
// invalidate a concurrent session's view of its own pages.
func TestConcurrentAllocAndAccess(t *testing.T) {
	d := NewDisk(64)
	pages := make([]PageID, 16)
	for i := range pages {
		pages[i] = d.Alloc()
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			id := d.Alloc()
			if i%3 == 0 {
				d.Free(id)
			}
		}
	}()
	go func() {
		defer wg.Done()
		m := metric.NewMeter(metric.DefaultCosts())
		p := NewPager(d, m)
		for i := 0; i < 500; i++ {
			p.BeginOp()
			for _, id := range pages {
				buf := p.Update(id)
				buf[1]++
			}
		}
		p.BeginOp()
		if r := m.Snapshot().PageReads; r != int64(len(pages)*500) {
			t.Errorf("reads = %d, want %d", r, len(pages)*500)
		}
	}()
	wg.Wait()
}
