package storage

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"dbproc/internal/metric"
)

func benchPager(pageSize int) *Pager {
	return NewPager(NewDisk(pageSize), metric.NewMeter(metric.DefaultCosts()))
}

func BenchmarkPagerReadWarm(b *testing.B) {
	p := benchPager(4000)
	id := p.Disk().Alloc()
	p.Read(id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Read(id)
	}
}

func BenchmarkPagerReadCold(b *testing.B) {
	p := benchPager(4000)
	id := p.Disk().Alloc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BeginOp()
		p.Read(id)
	}
}

func BenchmarkOrderedFileChurn(b *testing.B) {
	p := benchPager(4000)
	f := NewOrderedFile(p.Disk(), 100)
	rec := make([]byte, 100)
	for i := uint64(0); i < 1000; i++ {
		binary.LittleEndian.PutUint64(rec, i)
		f.Insert(p, i*2, append([]byte(nil), rec...))
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(1000))*2 + 1
		f.Insert(p, k, rec)
		f.Delete(p, k)
	}
}

func BenchmarkOrderedFileScan(b *testing.B) {
	p := benchPager(4000)
	f := NewOrderedFile(p.Disk(), 100)
	rec := make([]byte, 100)
	for i := uint64(0); i < 1000; i++ {
		f.Insert(p, i, rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BeginOp()
		n := 0
		f.Scan(p, func(uint64, []byte) bool { n++; return true })
		if n != 1000 {
			b.Fatal("short scan")
		}
	}
}

func BenchmarkRecordFileAppend(b *testing.B) {
	p := benchPager(4000)
	f := NewRecordFile(p.Disk(), 100)
	rec := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Append(p, rec)
	}
}

// BenchmarkReadPageSeedBaseline is the seed's page-read route — a direct
// live-page copy with no version-mode dispatch. The tier-4 MVCC-off
// overhead guard (scripts/verify.sh) compares it against
// BenchmarkReadPageMVCCOff below.
func BenchmarkReadPageSeedBaseline(b *testing.B) {
	p := benchPager(4000)
	id := p.Disk().Alloc()
	dst := make([]byte, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.disk.readInto(id, dst)
	}
}

// BenchmarkReadPageMVCCOff is the production page-read routing on a disk
// where MVCC was never enabled: the only addition over the seed baseline
// is the nil check on the disk's version state (docs/MVCC.md).
func BenchmarkReadPageMVCCOff(b *testing.B) {
	p := benchPager(4000)
	id := p.Disk().Alloc()
	dst := make([]byte, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.readPage(id, dst)
	}
}
