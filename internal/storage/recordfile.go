package storage

import "fmt"

// RecordFile is an append-ordered file of fixed-size records packed into
// pages, the storage layout used for heap relations and scratch sets. The
// file is bound to a Disk; every metered access takes the calling
// session's Pager (the same convention as OrderedFile). Directory state
// is not internally synchronized — callers serialize mutations.
type RecordFile struct {
	disk    *Disk
	recSize int
	perPage int
	pages   []PageID
	n       int
}

// NewRecordFile creates an empty record file whose records are recSize
// bytes. At least one record must fit per page.
func NewRecordFile(disk *Disk, recSize int) *RecordFile {
	perPage := disk.PageSize() / recSize
	if recSize <= 0 || perPage < 1 {
		panic(fmt.Sprintf("storage: record size %d does not fit page size %d", recSize, disk.PageSize()))
	}
	return &RecordFile{disk: disk, recSize: recSize, perPage: perPage}
}

// Len returns the number of records.
func (f *RecordFile) Len() int { return f.n }

// RecordSize returns the fixed record width in bytes.
func (f *RecordFile) RecordSize() int { return f.recSize }

// PerPage returns the blocking factor (records per page).
func (f *RecordFile) PerPage() int { return f.perPage }

// Pages returns the number of pages currently holding records.
func (f *RecordFile) Pages() int { return len(f.pages) }

// Append stores a record at the end of the file and returns its index.
// Appending to a fresh page charges only the page write (at flush);
// appending into a partially filled page is a read-modify-write.
func (f *RecordFile) Append(pg *Pager, rec []byte) int {
	f.checkRec(rec)
	slot := f.n % f.perPage
	var buf []byte
	if slot == 0 {
		id := f.disk.Alloc()
		f.pages = append(f.pages, id)
		buf = pg.Overwrite(id)
	} else {
		buf = pg.Update(f.pages[len(f.pages)-1])
	}
	copy(buf[slot*f.recSize:], rec)
	f.n++
	return f.n - 1
}

// Get returns a copy of record i.
func (f *RecordFile) Get(pg *Pager, i int) []byte {
	f.checkIndex(i)
	buf := pg.Read(f.pages[i/f.perPage])
	out := make([]byte, f.recSize)
	copy(out, buf[(i%f.perPage)*f.recSize:])
	return out
}

// Set overwrites record i in place (read-modify-write of its page).
func (f *RecordFile) Set(pg *Pager, i int, rec []byte) {
	f.checkIndex(i)
	f.checkRec(rec)
	buf := pg.Update(f.pages[i/f.perPage])
	copy(buf[(i%f.perPage)*f.recSize:], rec)
}

// Scan calls fn for every record in index order until fn returns false.
// The rec slice aliases the page frame and is valid only during the call.
func (f *RecordFile) Scan(pg *Pager, fn func(i int, rec []byte) bool) {
	for pi, id := range f.pages {
		buf := pg.Read(id)
		base := pi * f.perPage
		limit := f.perPage
		if rem := f.n - base; rem < limit {
			limit = rem
		}
		for s := 0; s < limit; s++ {
			if !fn(base+s, buf[s*f.recSize:(s+1)*f.recSize]) {
				return
			}
		}
	}
}

// SwapDelete removes record i by moving the last record into its slot,
// shrinking the file by one. Indices of other records are stable except
// for the moved last record.
func (f *RecordFile) SwapDelete(pg *Pager, i int) {
	f.checkIndex(i)
	last := f.n - 1
	if i != last {
		f.Set(pg, i, f.Get(pg, last))
	}
	f.n--
	if f.n%f.perPage == 0 && len(f.pages) > 0 {
		// Last page became empty; release it.
		lastPage := f.pages[len(f.pages)-1]
		f.pages = f.pages[:len(f.pages)-1]
		pg.Drop(lastPage)
		f.disk.Free(lastPage)
	}
}

// Clear frees every page, leaving an empty file. No I/O is charged;
// deallocation is a catalog operation.
func (f *RecordFile) Clear(pg *Pager) {
	for _, id := range f.pages {
		pg.Drop(id)
		f.disk.Free(id)
	}
	f.pages = f.pages[:0]
	f.n = 0
}

func (f *RecordFile) checkIndex(i int) {
	if i < 0 || i >= f.n {
		panic(fmt.Sprintf("storage: record %d out of range [0,%d)", i, f.n))
	}
}

func (f *RecordFile) checkRec(rec []byte) {
	if len(rec) != f.recSize {
		panic(fmt.Sprintf("storage: record of %d bytes, want %d", len(rec), f.recSize))
	}
}
