// Package storage provides the simulated disk substrate: fixed-size pages,
// an operation-scoped pager that meters page I/O, and two file
// abstractions — an append-only RecordFile and a key-clustered OrderedFile.
//
// Cost fidelity follows the paper's model: every *distinct* page touched by
// one logical operation costs one C2 read (plus one C2 write if dirtied);
// repeated touches within the operation are free, and nothing is retained
// across operations (the model assumes no buffer-pool hits between
// operations). Call Pager.BeginOp at each operation boundary.
//
// Concurrency: a Disk is safe for concurrent use by many Pagers — the
// page directory (allocation state) is guarded by one RWMutex and page
// contents by striped page latches, so readers of distinct pages do not
// serialize. A Pager is single-session state (its frame table is the
// per-operation distinct-page accounting) and must be confined to one
// goroutine; concurrent sessions each own a Pager over the shared Disk.
package storage

import (
	"fmt"
	"sync"
	"time"

	"dbproc/internal/metric"
)

// PageID names one page on the simulated disk.
type PageID int32

// NilPage is the invalid page id.
const NilPage PageID = -1

// latchStripes is the number of page-latch stripes. Pages hash to
// stripes by id, so two sessions touching different pages rarely share a
// latch, while the latch array stays small and allocation-free.
const latchStripes = 64

// Disk is a volume of fixed-size pages held in memory. All metered access
// goes through a Pager; the Disk's own read/write methods are raw
// (uncharged) and intended for bulk loading and for the pager itself.
type Disk struct {
	pageSize int

	// mu guards the page directory: the pages slice header and the free
	// list. Page *contents* are guarded by the striped latches below; the
	// lock order is directory before latch, and no path holds two latches.
	mu    sync.RWMutex
	pages [][]byte
	free  []PageID

	latches [latchStripes]sync.RWMutex

	// dirs holds the registered in-memory directory version handles
	// (guarded by mu); mvcc is non-nil once EnableMVCC has run. EnableMVCC
	// must happen before concurrent access starts — the pointer is read
	// without synchronization on the hot paths.
	dirs []*DirVersions
	mvcc *mvccState
}

// NewDisk creates an empty disk with the given page size in bytes.
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	return &Disk{pageSize: pageSize}
}

// PageSize returns the size of every page in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages (including freed ones,
// which remain reserved until reused).
func (d *Disk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// latch returns the stripe latch guarding the page's contents.
func (d *Disk) latch(id PageID) *sync.RWMutex {
	return &d.latches[uint32(id)%latchStripes]
}

// Alloc reserves a zeroed page and returns its id. Allocation itself is
// not a charged I/O; the first write to the page is.
func (d *Disk) Alloc() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		l := d.latch(id)
		l.Lock()
		clear(d.pages[id])
		l.Unlock()
		return id
	}
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1)
}

// Free returns a page to the allocator. Accessing a freed page is a bug
// and panics on the next checked access.
func (d *Disk) Free(id PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.check(id)
	d.free = append(d.free, id)
}

// lookup returns the page's backing slice under the directory read lock.
// The slice itself must only be touched under the page's latch.
func (d *Disk) lookup(id PageID) []byte {
	d.mu.RLock()
	d.check(id)
	p := d.pages[id]
	d.mu.RUnlock()
	return p
}

// readInto copies the page's contents into dst (which must be one page
// long) without charging any cost.
func (d *Disk) readInto(id PageID, dst []byte) {
	p := d.lookup(id)
	l := d.latch(id)
	l.RLock()
	copy(dst, p)
	l.RUnlock()
}

// ReadRaw copies the page's contents into a fresh slice without charging
// any cost. Use only for bulk setup and debugging.
func (d *Disk) ReadRaw(id PageID) []byte {
	out := make([]byte, d.pageSize)
	d.readInto(id, out)
	return out
}

// WriteRaw replaces the page's contents without charging any cost. Use
// only for bulk setup and by the pager's flush. The data must be at most
// one page.
func (d *Disk) WriteRaw(id PageID, data []byte) {
	if len(data) > d.pageSize {
		panic(fmt.Sprintf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize))
	}
	p := d.lookup(id)
	l := d.latch(id)
	l.Lock()
	clear(p)
	copy(p, data)
	l.Unlock()
}

// check validates id against the directory; callers hold d.mu.
func (d *Disk) check(id PageID) {
	if id < 0 || int(id) >= len(d.pages) {
		panic(fmt.Sprintf("storage: page %d out of range [0,%d)", id, len(d.pages)))
	}
}

// Pager provides metered, operation-scoped access to a Disk. Within one
// operation (delimited by BeginOp calls) the first read of each page
// charges one C2 page read; dirtying a page charges one C2 page write when
// the operation's frames are flushed. Nothing survives an operation
// boundary, matching the model's assumption of no cross-operation
// buffering.
//
// A Pager is not safe for concurrent use: it is one session's execution
// handle, coupling the shared Disk to that session's private Meter and
// per-operation frame table. The concurrent engine creates one per
// session; the sequential simulator owns exactly one.
type Pager struct {
	disk     *Disk
	meter    *metric.Meter
	charging bool
	session  int
	opToken  int
	frames   map[PageID]*frame
	// snap/hasSnap route reads through the version chains at a fixed
	// stamp; epoch routes this pager's reads and writes through the update
	// epoch's pending buffers. At most one of the two modes is active.
	snap    uint64
	hasSnap bool
	epoch   bool
	// wall, when non-nil, accumulates wall-clock I/O and recompute time
	// for the critical-path decomposition (docs/DIAGNOSIS.md). It lives
	// entirely in the wall-clock domain: enabling it never touches the
	// meter, so simulated costs stay byte-identical.
	wall *WallStats
}

// WallStats accumulates wall-clock execution segments for one pager's
// current operation. IONs counts time spent in Disk reads and writes;
// RecomputeNs counts time inside cache-miss recompute scopes (see
// BeginRecompute) excluding the I/O accrued within them, so the two
// segments are disjoint and sum to at most the operation's service time.
type WallStats struct {
	IONs        int64
	RecomputeNs int64

	recomputeDepth int
	recomputeStart time.Time
	ioAtStart      int64
}

// Reset zeroes the accumulated segments at an operation boundary.
func (w *WallStats) Reset() {
	w.IONs, w.RecomputeNs, w.recomputeDepth = 0, 0, 0
}

type frame struct {
	data  []byte
	dirty bool
	// comp is the meter component that dirtied the frame; the write is
	// charged at flush time, after the dirtier's attribution scope has
	// ended, so it must be remembered here.
	comp metric.Component
}

// NewPager creates a pager over disk charging I/O to meter. Charging
// starts enabled; the session tag starts at -1 (no session).
func NewPager(disk *Disk, meter *metric.Meter) *Pager {
	return &Pager{disk: disk, meter: meter, charging: true, session: -1, opToken: -1, frames: make(map[PageID]*frame)}
}

// SetOpToken tags the pager with the workload-order index of the
// operation it is currently executing; -1 means no operation. The
// cache-efficacy ledger reads it to name the op that computed, hit, or
// invalidated an entry.
func (p *Pager) SetOpToken(idx int) { p.opToken = idx }

// OpToken returns the current operation's workload-order index, -1 if
// untagged.
func (p *Pager) OpToken() int { return p.opToken }

// EnableWallStats attaches (or returns the existing) wall-clock segment
// accumulator. Off by default; when off, the pager's hot paths cost one
// nil check extra.
func (p *Pager) EnableWallStats() *WallStats {
	if p.wall == nil {
		p.wall = &WallStats{}
	}
	return p.wall
}

// Wall returns the attached wall-clock accumulator, nil when disabled.
func (p *Pager) Wall() *WallStats { return p.wall }

// BeginRecompute opens a cache-miss recompute scope: until the matching
// EndRecompute, elapsed wall time (minus I/O, which stays in the I/O
// segment) accrues to RecomputeNs. Scopes nest; only the outermost pair
// measures. Nil-safe no-op when wall stats are disabled.
func (p *Pager) BeginRecompute() {
	w := p.wall
	if w == nil {
		return
	}
	w.recomputeDepth++
	if w.recomputeDepth == 1 {
		w.recomputeStart = time.Now()
		w.ioAtStart = w.IONs
	}
}

// EndRecompute closes the scope opened by BeginRecompute.
func (p *Pager) EndRecompute() {
	w := p.wall
	if w == nil {
		return
	}
	w.recomputeDepth--
	if w.recomputeDepth == 0 {
		elapsed := time.Since(w.recomputeStart).Nanoseconds()
		if d := elapsed - (w.IONs - w.ioAtStart); d > 0 {
			w.RecomputeNs += d
		}
	}
}

// SetSnapshot pins the pager's reads to the version world visible at
// stamp s (obtained from Disk.AcquireSnapshot). Reads of versioned pages
// and directories then resolve at s; writes still go to live pages (only
// unversioned cache pages are written under a snapshot).
func (p *Pager) SetSnapshot(s uint64) {
	p.snap, p.hasSnap = s, true
}

// ClearSnapshot returns the pager to reading live state.
func (p *Pager) ClearSnapshot() { p.hasSnap = false }

// Snapshot returns the pinned stamp and whether one is set.
func (p *Pager) Snapshot() (uint64, bool) { return p.snap, p.hasSnap }

// SetEpoch marks this pager as the update epoch's writer: its writes are
// staged in pending version buffers and its reads observe them.
func (p *Pager) SetEpoch(on bool) { p.epoch = on }

// Epoch reports whether the pager is the update epoch's writer.
func (p *Pager) Epoch() bool { return p.epoch }

// FreePage returns a page to the allocator. Inside an update epoch (with
// MVCC on) the free is deferred until the GC horizon passes the epoch's
// commit stamp, because older directory snapshots may still name the page.
func (p *Pager) FreePage(id PageID) {
	if p.epoch && p.disk.mvcc != nil {
		p.disk.freeEpoch(id)
		return
	}
	p.disk.Free(id)
}

// readPage routes a page read through the pager's version mode.
func (p *Pager) readPage(id PageID, dst []byte) {
	if m := p.disk.mvcc; m != nil {
		if p.epoch {
			p.disk.readEpoch(id, dst)
			return
		}
		if p.hasSnap {
			p.disk.readAt(id, dst, p.snap)
			return
		}
	}
	p.disk.readInto(id, dst)
}

// writePage routes a page write through the pager's version mode.
func (p *Pager) writePage(id PageID, data []byte) {
	if p.epoch && p.disk.mvcc != nil {
		p.disk.writeEpoch(id, data)
		return
	}
	p.disk.WriteRaw(id, data)
}

// Disk returns the underlying disk.
func (p *Pager) Disk() *Disk { return p.disk }

// Meter returns the meter I/O is charged to.
func (p *Pager) Meter() *metric.Meter { return p.meter }

// SetSession tags the pager with the owning session id (observers use it
// to attribute events); -1 means no session.
func (p *Pager) SetSession(s int) { p.session = s }

// Session returns the owning session id, -1 if untagged.
func (p *Pager) Session() int { return p.session }

// SetCharging enables or disables cost accounting. Bulk loading and base
// relation updates (whose cost is common to every strategy and excluded by
// the paper's model) run with charging disabled. It returns the previous
// setting.
func (p *Pager) SetCharging(on bool) bool {
	prev := p.charging
	p.charging = on
	return prev
}

// Charging reports whether cost accounting is enabled.
func (p *Pager) Charging() bool { return p.charging }

// BeginOp flushes all dirty frames (charging their writes) and forgets
// every cached frame, starting a fresh operation scope.
func (p *Pager) BeginOp() {
	p.Flush()
	clear(p.frames)
}

// Flush writes every dirty frame back to disk, charging one page write
// each — attributed to the component that dirtied the frame — and marks
// them clean. Clean frames stay cached for the rest of the operation.
func (p *Pager) Flush() {
	for id, f := range p.frames {
		if f.dirty {
			if p.wall != nil {
				t0 := time.Now()
				p.writePage(id, f.data)
				p.wall.IONs += time.Since(t0).Nanoseconds()
			} else {
				p.writePage(id, f.data)
			}
			if p.charging {
				prev := p.meter.SetComponent(f.comp)
				p.meter.PageWrite(1)
				p.meter.SetComponent(prev)
			}
			f.dirty = false
		}
	}
}

// Read returns the page contents for reading. The first access in this
// operation charges one page read. The returned slice aliases the frame
// buffer: do not retain it across BeginOp, and do not modify it (use
// Update for that).
func (p *Pager) Read(id PageID) []byte {
	return p.fetch(id, true).data
}

// Update returns the page contents for read-modify-write. It charges like
// Read on first access and additionally marks the frame dirty, so the
// operation's flush charges one page write, attributed to the component
// that first dirtied the frame.
func (p *Pager) Update(id PageID) []byte {
	f := p.fetch(id, true)
	if !f.dirty {
		f.dirty = true
		f.comp = p.meter.Component()
	}
	return f.data
}

// Overwrite returns a zeroed buffer for the page, marking it dirty without
// charging a read: use it when the previous contents are irrelevant (a
// freshly allocated or fully rewritten page).
func (p *Pager) Overwrite(id PageID) []byte {
	f, ok := p.frames[id]
	if !ok {
		f = &frame{data: make([]byte, p.disk.pageSize)}
		p.disk.mu.RLock()
		p.disk.check(id)
		p.disk.mu.RUnlock()
		p.frames[id] = f
	} else {
		clear(f.data)
	}
	if !f.dirty {
		f.dirty = true
		f.comp = p.meter.Component()
	}
	return f.data
}

// Drop discards the page's frame without flushing it, even if dirty. Call
// it before freeing a page so a stale dirty frame is not written back (and
// charged) later.
func (p *Pager) Drop(id PageID) {
	delete(p.frames, id)
}

func (p *Pager) fetch(id PageID, charge bool) *frame {
	if f, ok := p.frames[id]; ok {
		return f
	}
	data := make([]byte, p.disk.pageSize)
	if p.wall != nil {
		t0 := time.Now()
		p.readPage(id, data)
		p.wall.IONs += time.Since(t0).Nanoseconds()
	} else {
		p.readPage(id, data)
	}
	f := &frame{data: data}
	p.frames[id] = f
	if charge && p.charging {
		p.meter.PageRead(1)
	}
	return f
}
