package storage

import (
	"fmt"
	"sort"
)

// OrderedFile is a key-clustered file of fixed-size records: records live
// on pages in ascending key order, and an in-memory directory (one key per
// record) locates the page holding any key without charged I/O. This is
// the layout the paper's model implies for materialized procedure results
// and Rete memory nodes: changing the 2fl affected tuples touches only the
// y(fN, fb, 2fl) pages they live on, never a scan, and the locating
// directory (a B-tree's internal levels, assumed memory-resident for these
// small objects) is not charged.
//
// Keys are unique uint64s; callers that cluster by a non-unique attribute
// pack a tiebreaker into the low bits (see tuple.ClusterKey).
//
// The file is bound to a Disk; every metered access takes the calling
// session's Pager, so one shared file (a cache entry, a Rete memory) can
// be read by concurrent sessions each charging its own meter. The file's
// live directory state is not internally synchronized — mutations are
// serialized against each other by the engine's update locks (or the
// cache layer's entry mutexes), and snapshot readers resolve an immutable
// published directory copy instead (docs/MVCC.md).
type OrderedFile struct {
	disk    *Disk
	recSize int
	perPage int
	dir     ofDir
	dv      *DirVersions
}

// ofDir is the file's directory: the page list and the record count. The
// live copy is mutated in place; published copies are immutable.
type ofDir struct {
	pages []*ofPage
	n     int
}

type ofPage struct {
	id   PageID
	keys []uint64 // sorted; len(keys) = records on this page
}

// NewOrderedFile creates an empty ordered file with recSize-byte records.
func NewOrderedFile(disk *Disk, recSize int) *OrderedFile {
	perPage := disk.PageSize() / recSize
	if recSize <= 0 || perPage < 1 {
		panic(fmt.Sprintf("storage: record size %d does not fit page size %d", recSize, disk.PageSize()))
	}
	f := &OrderedFile{disk: disk, recSize: recSize, perPage: perPage}
	f.dv = disk.RegisterDir(f.snapshotDir)
	return f
}

// Unversion excludes the file from MVCC directory snapshots: readers
// always see the live directory. Cache entry files rewritten at query
// time under their entry mutex use this (docs/MVCC.md).
func (f *OrderedFile) Unversion() { f.dv.Unversion() }

// snapshotDir returns an immutable deep copy of the live directory.
func (f *OrderedFile) snapshotDir() any {
	d := &ofDir{pages: make([]*ofPage, len(f.dir.pages)), n: f.dir.n}
	for i, p := range f.dir.pages {
		d.pages[i] = &ofPage{id: p.id, keys: append([]uint64(nil), p.keys...)}
	}
	return d
}

// dirFor resolves the directory a reader should walk: the newest published
// copy at the pager's snapshot stamp, else the live directory.
func (f *OrderedFile) dirFor(pg *Pager) *ofDir {
	if s, ok := pg.Snapshot(); ok {
		if d := f.dv.Lookup(s); d != nil {
			return d.(*ofDir)
		}
	}
	return &f.dir
}

// Len returns the number of records (live directory).
func (f *OrderedFile) Len() int { return f.dir.n }

// Pages returns the number of data pages (live directory).
func (f *OrderedFile) Pages() int { return len(f.dir.pages) }

// RecordSize returns the fixed record width in bytes.
func (f *OrderedFile) RecordSize() int { return f.recSize }

// pageFor returns the index of the page that does or should contain key.
func (d *ofDir) pageFor(key uint64) int {
	// First page whose max key >= key; otherwise the last page.
	i := sort.Search(len(d.pages), func(i int) bool {
		ks := d.pages[i].keys
		return ks[len(ks)-1] >= key
	})
	if i == len(d.pages) {
		i--
	}
	return i
}

// Insert stores rec under key, keeping key order. Inserting into an
// existing page is a read-modify-write of that page; a page split
// additionally writes the new page. Inserting a key that is already
// present panics: result and memory files hold sets, and a duplicate
// insertion indicates a maintenance bug upstream.
func (f *OrderedFile) Insert(pg *Pager, key uint64, rec []byte) {
	if len(rec) != f.recSize {
		panic(fmt.Sprintf("storage: record of %d bytes, want %d", len(rec), f.recSize))
	}
	f.dv.MarkDirty()
	if len(f.dir.pages) == 0 {
		id := f.disk.Alloc()
		buf := pg.Overwrite(id)
		copy(buf, rec)
		f.dir.pages = append(f.dir.pages, &ofPage{id: id, keys: []uint64{key}})
		f.dir.n = 1
		return
	}
	pi := f.dir.pageFor(key)
	p := f.dir.pages[pi]
	slot := sort.Search(len(p.keys), func(i int) bool { return p.keys[i] >= key })
	if slot < len(p.keys) && p.keys[slot] == key {
		panic(fmt.Sprintf("storage: duplicate key %d", key))
	}
	if len(p.keys) == f.perPage {
		f.split(pg, pi)
		// Re-locate after the split.
		pi = f.dir.pageFor(key)
		p = f.dir.pages[pi]
		slot = sort.Search(len(p.keys), func(i int) bool { return p.keys[i] >= key })
	}
	buf := pg.Update(p.id)
	// Shift records [slot, len) up one slot within the page.
	copy(buf[(slot+1)*f.recSize:(len(p.keys)+1)*f.recSize], buf[slot*f.recSize:len(p.keys)*f.recSize])
	copy(buf[slot*f.recSize:], rec)
	p.keys = append(p.keys, 0)
	copy(p.keys[slot+1:], p.keys[slot:])
	p.keys[slot] = key
	f.dir.n++
}

// split divides page pi in half, moving the upper half to a fresh page
// inserted after it.
func (f *OrderedFile) split(pg *Pager, pi int) {
	p := f.dir.pages[pi]
	half := len(p.keys) / 2
	newID := f.disk.Alloc()
	oldBuf := pg.Update(p.id)
	newBuf := pg.Overwrite(newID)
	copy(newBuf, oldBuf[half*f.recSize:len(p.keys)*f.recSize])
	clear(oldBuf[half*f.recSize : len(p.keys)*f.recSize])
	newPage := &ofPage{id: newID, keys: append([]uint64(nil), p.keys[half:]...)}
	p.keys = p.keys[:half]
	f.dir.pages = append(f.dir.pages, nil)
	copy(f.dir.pages[pi+2:], f.dir.pages[pi+1:])
	f.dir.pages[pi+1] = newPage
}

// Delete removes the record stored under key, reporting whether it was
// present. A hit is a read-modify-write of the record's page; an emptied
// page is freed.
func (f *OrderedFile) Delete(pg *Pager, key uint64) bool {
	pi, slot, ok := f.dir.find(key)
	if !ok {
		return false
	}
	f.dv.MarkDirty()
	p := f.dir.pages[pi]
	buf := pg.Update(p.id)
	copy(buf[slot*f.recSize:], buf[(slot+1)*f.recSize:len(p.keys)*f.recSize])
	clear(buf[(len(p.keys)-1)*f.recSize : len(p.keys)*f.recSize])
	p.keys = append(p.keys[:slot], p.keys[slot+1:]...)
	f.dir.n--
	if len(p.keys) == 0 {
		pg.Drop(p.id)
		pg.FreePage(p.id)
		f.dir.pages = append(f.dir.pages[:pi], f.dir.pages[pi+1:]...)
	}
	return true
}

// Contains reports whether key is present, using only the live in-memory
// directory (no charged I/O).
func (f *OrderedFile) Contains(key uint64) bool {
	_, _, ok := f.dir.find(key)
	return ok
}

// Get returns a copy of the record stored under key.
func (f *OrderedFile) Get(pg *Pager, key uint64) ([]byte, bool) {
	d := f.dirFor(pg)
	pi, slot, ok := d.find(key)
	if !ok {
		return nil, false
	}
	buf := pg.Read(d.pages[pi].id)
	out := make([]byte, f.recSize)
	copy(out, buf[slot*f.recSize:])
	return out, true
}

func (d *ofDir) find(key uint64) (pi, slot int, ok bool) {
	if len(d.pages) == 0 {
		return 0, 0, false
	}
	pi = d.pageFor(key)
	ks := d.pages[pi].keys
	slot = sort.Search(len(ks), func(i int) bool { return ks[i] >= key })
	if slot == len(ks) || ks[slot] != key {
		return 0, 0, false
	}
	return pi, slot, true
}

// Scan calls fn for every record in ascending key order until fn returns
// false, charging one read per page touched. The rec slice aliases the
// page frame and is valid only during the call.
func (f *OrderedFile) Scan(pg *Pager, fn func(key uint64, rec []byte) bool) {
	d := f.dirFor(pg)
	for _, p := range d.pages {
		buf := pg.Read(p.id)
		for s, k := range p.keys {
			if !fn(k, buf[s*f.recSize:(s+1)*f.recSize]) {
				return
			}
		}
	}
}

// ScanRange calls fn for every record with lo <= key <= hi in ascending
// order, reading only the pages that overlap the range.
func (f *OrderedFile) ScanRange(pg *Pager, lo, hi uint64, fn func(key uint64, rec []byte) bool) {
	d := f.dirFor(pg)
	if len(d.pages) == 0 || lo > hi {
		return
	}
	for pi := d.pageFor(lo); pi < len(d.pages); pi++ {
		p := d.pages[pi]
		if p.keys[0] > hi {
			return
		}
		if p.keys[len(p.keys)-1] < lo {
			continue
		}
		buf := pg.Read(p.id)
		for s, k := range p.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, buf[s*f.recSize:(s+1)*f.recSize]) {
				return
			}
		}
	}
}

// Clear frees every page, leaving an empty file, without charged I/O.
func (f *OrderedFile) Clear(pg *Pager) {
	f.dv.MarkDirty()
	for _, p := range f.dir.pages {
		pg.Drop(p.id)
		pg.FreePage(p.id)
	}
	f.dir.pages = f.dir.pages[:0]
	f.dir.n = 0
}

// Replace rebuilds the file from the given sorted records, modeling the
// cache refresh of the paper's C_WriteCache: each resulting page is a
// read-modify-write (2 charged I/Os). Keys must be strictly ascending and
// recs the same length as keys.
func (f *OrderedFile) Replace(pg *Pager, keys []uint64, recs [][]byte) {
	if len(keys) != len(recs) {
		panic("storage: Replace keys/recs length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			panic("storage: Replace keys must be strictly ascending")
		}
	}
	f.Clear(pg)
	for i := 0; i < len(keys); i += f.perPage {
		end := i + f.perPage
		if end > len(keys) {
			end = len(keys)
		}
		id := f.disk.Alloc()
		// Update (not Overwrite) so the rebuild charges read+write per
		// page, matching C_WriteCache = 2·C2·ProcSize.
		buf := pg.Update(id)
		p := &ofPage{id: id, keys: append([]uint64(nil), keys[i:end]...)}
		for s := i; s < end; s++ {
			if len(recs[s]) != f.recSize {
				panic(fmt.Sprintf("storage: record of %d bytes, want %d", len(recs[s]), f.recSize))
			}
			copy(buf[(s-i)*f.recSize:], recs[s])
		}
		f.dir.pages = append(f.dir.pages, p)
	}
	f.dir.n = len(keys)
}
