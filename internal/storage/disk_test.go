package storage

import (
	"bytes"
	"testing"

	"dbproc/internal/metric"
)

func newTestPager(pageSize int) (*Pager, *metric.Meter) {
	m := metric.NewMeter(metric.DefaultCosts())
	return NewPager(NewDisk(pageSize), m), m
}

func TestDiskAllocFreeReuse(t *testing.T) {
	d := NewDisk(128)
	a := d.Alloc()
	b := d.Alloc()
	if a == b {
		t.Fatal("Alloc returned the same page twice")
	}
	d.WriteRaw(a, []byte("hello"))
	if got := d.ReadRaw(a)[:5]; !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("ReadRaw = %q", got)
	}
	d.Free(a)
	c := d.Alloc()
	if c != a {
		t.Fatalf("expected freed page %d to be reused, got %d", a, c)
	}
	if got := d.ReadRaw(c); !bytes.Equal(got, make([]byte, 128)) {
		t.Fatal("reused page was not zeroed")
	}
	if d.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", d.NumPages())
	}
}

func TestDiskPanics(t *testing.T) {
	d := NewDisk(64)
	id := d.Alloc()
	for name, fn := range map[string]func(){
		"read out of range":  func() { d.ReadRaw(id + 1) },
		"write out of range": func() { d.WriteRaw(-1, nil) },
		"oversized write":    func() { d.WriteRaw(id, make([]byte, 65)) },
		"zero page size":     func() { NewDisk(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPagerChargesFirstReadOnly(t *testing.T) {
	p, m := newTestPager(100)
	id := p.Disk().Alloc()
	p.Disk().WriteRaw(id, []byte("abc"))

	p.BeginOp()
	_ = p.Read(id)
	_ = p.Read(id)
	_ = p.Read(id)
	if got := m.Snapshot().PageReads; got != 1 {
		t.Fatalf("repeated reads in one op charged %d, want 1", got)
	}
	p.BeginOp()
	_ = p.Read(id)
	if got := m.Snapshot().PageReads; got != 2 {
		t.Fatalf("read in new op charged %d total, want 2", got)
	}
}

func TestPagerUpdateChargesReadAndWrite(t *testing.T) {
	p, m := newTestPager(100)
	id := p.Disk().Alloc()
	p.BeginOp()
	buf := p.Update(id)
	buf[0] = 42
	buf = p.Update(id) // same op: no extra charge
	buf[1] = 43
	p.BeginOp() // flushes
	c := m.Snapshot()
	if c.PageReads != 1 || c.PageWrites != 1 {
		t.Fatalf("counters %v, want 1 read 1 write", c)
	}
	if got := p.Disk().ReadRaw(id); got[0] != 42 || got[1] != 43 {
		t.Fatalf("flush did not persist: %v", got[:2])
	}
}

func TestPagerOverwriteSkipsReadCharge(t *testing.T) {
	p, m := newTestPager(100)
	id := p.Disk().Alloc()
	p.Disk().WriteRaw(id, []byte{9, 9, 9})
	p.BeginOp()
	buf := p.Overwrite(id)
	if buf[0] != 0 {
		t.Fatal("Overwrite buffer not zeroed")
	}
	buf[0] = 7
	p.Flush()
	c := m.Snapshot()
	if c.PageReads != 0 || c.PageWrites != 1 {
		t.Fatalf("counters %v, want 0 reads 1 write", c)
	}
	if got := p.Disk().ReadRaw(id)[0]; got != 7 {
		t.Fatalf("persisted %d, want 7", got)
	}
}

func TestPagerOverwriteAfterReadZeroes(t *testing.T) {
	p, _ := newTestPager(100)
	id := p.Disk().Alloc()
	p.Disk().WriteRaw(id, []byte{1, 2, 3})
	p.BeginOp()
	if got := p.Read(id)[1]; got != 2 {
		t.Fatalf("Read saw %d", got)
	}
	buf := p.Overwrite(id)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d after Overwrite, want 0", i, b)
		}
	}
}

func TestPagerFlushIdempotent(t *testing.T) {
	p, m := newTestPager(100)
	id := p.Disk().Alloc()
	p.Update(id)[0] = 1
	p.Flush()
	p.Flush() // clean frame: no second write
	if got := m.Snapshot().PageWrites; got != 1 {
		t.Fatalf("double flush charged %d writes, want 1", got)
	}
}

func TestPagerChargingToggle(t *testing.T) {
	p, m := newTestPager(100)
	id := p.Disk().Alloc()
	if prev := p.SetCharging(false); !prev {
		t.Fatal("charging should start enabled")
	}
	if p.Charging() {
		t.Fatal("Charging() should be false")
	}
	p.BeginOp()
	p.Update(id)[0] = 1
	p.BeginOp()
	if got := m.Milliseconds(); got != 0 {
		t.Fatalf("uncharged I/O cost %v ms", got)
	}
	p.SetCharging(true)
	p.Read(id)
	if got := m.Snapshot().PageReads; got != 1 {
		t.Fatalf("re-enabled charging recorded %d reads, want 1", got)
	}
}

func TestPagerReadSeesPriorOpWrites(t *testing.T) {
	p, _ := newTestPager(100)
	id := p.Disk().Alloc()
	p.BeginOp()
	p.Update(id)[5] = 99
	p.BeginOp()
	if got := p.Read(id)[5]; got != 99 {
		t.Fatalf("next op read %d, want 99", got)
	}
}
