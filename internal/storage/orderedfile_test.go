package storage

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newOrdered(t *testing.T) (*OrderedFile, *Pager) {
	t.Helper()
	p, _ := newTestPager(32) // 4 records of 8 bytes per page
	return NewOrderedFile(p.Disk(), 8), p
}

func rec8(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestOrderedFileInsertGetDelete(t *testing.T) {
	f, p := newOrdered(t)
	keys := []uint64{50, 10, 30, 20, 40, 60, 5, 55}
	for _, k := range keys {
		f.Insert(p, k, rec8(k*100))
	}
	if f.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(keys))
	}
	for _, k := range keys {
		got, ok := f.Get(p, k)
		if !ok || binary.LittleEndian.Uint64(got) != k*100 {
			t.Fatalf("Get(%d) = %v, %v", k, got, ok)
		}
		if !f.Contains(k) {
			t.Fatalf("Contains(%d) = false", k)
		}
	}
	if _, ok := f.Get(p, 99); ok {
		t.Fatal("Get(99) should miss")
	}
	if f.Delete(p, 99) {
		t.Fatal("Delete(99) should miss")
	}
	if !f.Delete(p, 30) || f.Contains(30) {
		t.Fatal("Delete(30) failed")
	}
	if f.Len() != len(keys)-1 {
		t.Fatalf("Len after delete = %d", f.Len())
	}
}

func TestOrderedFileScanOrder(t *testing.T) {
	f, p := newOrdered(t)
	perm := rand.New(rand.NewSource(7)).Perm(100)
	for _, k := range perm {
		f.Insert(p, uint64(k), rec8(uint64(k)))
	}
	var got []uint64
	f.Scan(p, func(k uint64, rec []byte) bool {
		if binary.LittleEndian.Uint64(rec) != k {
			t.Fatalf("record for key %d holds %v", k, rec)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 100 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Scan out of order or incomplete: %v", got)
	}
}

func TestOrderedFileScanRange(t *testing.T) {
	f, p := newOrdered(t)
	for k := uint64(0); k < 50; k += 2 { // even keys 0..48
		f.Insert(p, k, rec8(k))
	}
	var got []uint64
	f.ScanRange(p, 10, 20, func(k uint64, _ []byte) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("ScanRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanRange = %v, want %v", got, want)
		}
	}
	// Degenerate ranges.
	f.ScanRange(p, 20, 10, func(uint64, []byte) bool { t.Fatal("lo>hi visited"); return true })
	var hits int
	f.ScanRange(p, 49, 1000, func(uint64, []byte) bool { hits++; return true })
	if hits != 0 {
		t.Fatalf("range past top visited %d", hits)
	}
}

func TestOrderedFileDuplicatePanics(t *testing.T) {
	f, p := newOrdered(t)
	f.Insert(p, 5, rec8(5))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert should panic")
		}
	}()
	f.Insert(p, 5, rec8(6))
}

func TestOrderedFileEmptyPageFreed(t *testing.T) {
	f, p := newOrdered(t)
	for k := uint64(0); k < 8; k++ {
		f.Insert(p, k, rec8(k))
	}
	pagesBefore := f.Pages()
	for k := uint64(0); k < 8; k++ {
		f.Delete(p, k)
	}
	if f.Len() != 0 || f.Pages() != 0 {
		t.Fatalf("Len=%d Pages=%d after deleting all", f.Len(), f.Pages())
	}
	_ = pagesBefore
	// All pages returned to the allocator: inserting again reuses them.
	n := p.Disk().NumPages()
	for k := uint64(0); k < 8; k++ {
		f.Insert(p, k, rec8(k))
	}
	if got := p.Disk().NumPages(); got != n {
		t.Fatalf("reinsert allocated pages: %d vs %d", got, n)
	}
}

func TestOrderedFileIOCharges(t *testing.T) {
	p, m := newTestPager(32)
	f := NewOrderedFile(p.Disk(), 8)
	// Load 16 records (4 full pages) without charging.
	p.SetCharging(false)
	for k := uint64(0); k < 32; k += 2 {
		f.Insert(p, k, rec8(k))
	}
	p.SetCharging(true)
	p.BeginOp()

	// One insert into an existing page: read + (on flush) write of 1 page,
	// possibly plus a split write.
	m.Reset()
	f.Insert(p, 1, rec8(1))
	p.BeginOp()
	c := m.Snapshot()
	if c.PageReads != 1 {
		t.Fatalf("insert charged %d reads, want 1", c.PageReads)
	}
	if c.PageWrites < 1 || c.PageWrites > 2 {
		t.Fatalf("insert charged %d writes, want 1 or 2", c.PageWrites)
	}

	// A delete is a read-modify-write of exactly one page.
	m.Reset()
	f.Delete(p, 1)
	p.BeginOp()
	c = m.Snapshot()
	if c.PageReads != 1 || c.PageWrites != 1 {
		t.Fatalf("delete charged %v, want 1 read 1 write", c)
	}

	// Scanning reads each page once.
	m.Reset()
	f.Scan(p, func(uint64, []byte) bool { return true })
	if got := m.Snapshot().PageReads; got != int64(f.Pages()) {
		t.Fatalf("scan charged %d reads over %d pages", got, f.Pages())
	}
}

func TestOrderedFileReplaceCharges2IOsPerPage(t *testing.T) {
	p, m := newTestPager(32)
	f := NewOrderedFile(p.Disk(), 8)
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9} // 3 pages at 4/page
	recs := make([][]byte, len(keys))
	for i, k := range keys {
		recs[i] = rec8(k)
	}
	p.BeginOp()
	m.Reset()
	f.Replace(p, keys, recs)
	p.BeginOp()
	c := m.Snapshot()
	if c.PageReads != 3 || c.PageWrites != 3 {
		t.Fatalf("Replace charged %v, want 3 reads 3 writes (2 I/Os per page)", c)
	}
	if f.Len() != 9 || f.Pages() != 3 {
		t.Fatalf("Replace left Len=%d Pages=%d", f.Len(), f.Pages())
	}
	got, ok := f.Get(p, 5)
	if !ok || !bytes.Equal(got, rec8(5)) {
		t.Fatal("Replace contents wrong")
	}
}

func TestOrderedFileReplaceValidation(t *testing.T) {
	f, p := newOrdered(t)
	for name, fn := range map[string]func(){
		"length mismatch": func() { f.Replace(p, []uint64{1}, nil) },
		"unsorted keys":   func() { f.Replace(p, []uint64{2, 1}, [][]byte{rec8(2), rec8(1)}) },
		"bad record size": func() { f.Replace(p, []uint64{1}, [][]byte{{1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: after any sequence of inserts and deletes the file agrees with
// a reference map and scans in sorted order.
func TestOrderedFileMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		p, _ := newTestPager(32)
		of := NewOrderedFile(p.Disk(), 8)
		ref := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range opsRaw {
			k := uint64(rng.Intn(40))
			if op%2 == 0 {
				if _, dup := ref[k]; !dup {
					v := rng.Uint64()
					of.Insert(p, k, rec8(v))
					ref[k] = v
				}
			} else {
				had := of.Delete(p, k)
				_, want := ref[k]
				if had != want {
					return false
				}
				delete(ref, k)
			}
		}
		if of.Len() != len(ref) {
			return false
		}
		prev := int64(-1)
		ok := true
		of.Scan(p, func(k uint64, rec []byte) bool {
			if int64(k) <= prev {
				ok = false
				return false
			}
			prev = int64(k)
			v, in := ref[k]
			if !in || binary.LittleEndian.Uint64(rec) != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
