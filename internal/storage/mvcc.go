// MVCC: single-writer multi-version concurrency control for the simulated
// disk, so snapshot readers never block behind the update in flight.
//
// The engine's canonical-order 2PL already serializes updates against each
// other (every update footprint takes the base relations exclusive), so at
// most one update epoch is ever open. That single-writer shape is the
// load-bearing simplification here, as in LMDB or SQLite's WAL: versioning
// only has to mediate one mutator against many lock-free readers.
//
// Two kinds of state are versioned:
//
//   - Page contents. The first epoch write to a page seeds a version chain
//     with the page's pre-epoch bytes at stamp 0; epoch writes then go to a
//     pending buffer invisible to readers, and Publish links the pending
//     bytes as the chain head stamped with the update's commit sequence
//     number (and copies them to the live page, which stays in sync with
//     the newest version for non-snapshot readers). A snapshot reader at
//     stamp S walks the chain for the newest version with stamp <= S; a
//     page with no chain has never been written by an epoch and its live
//     bytes are valid at every stamp.
//
//   - Directory state. The in-memory directories of the access methods
//     (B-tree meta table and root, hash bucket table, ordered-file page
//     list) are mutated in place by updates; readers cannot walk a live
//     directory that is being rewritten. Each structure registers a
//     DirVersions handle with its snapshot function; epoch mutations mark
//     the handle dirty, and Publish deep-copies dirty directories as new
//     immutable heads. Snapshot readers resolve the directory the same way
//     they resolve pages: newest published copy with stamp <= S, falling
//     back to the live directory when the structure is unversioned (cache
//     entry files mutated at query time under their entry mutex) or MVCC
//     is off.
//
// Pages freed inside an epoch are deferred: they rejoin the allocator only
// once the garbage-collection horizon (the oldest registered snapshot)
// passes the freeing update's stamp, since older directory snapshots may
// still name them. GCVersions also prunes chain tails below the horizon.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// pageVer is one published version of a page's contents.
type pageVer struct {
	stamp uint64
	data  []byte
	prev  atomic.Pointer[pageVer]
}

// pageChain is the per-page version list plus the epoch writer's private
// pending buffer. Only the (single) epoch writer touches pending; readers
// only load head and walk prev pointers.
type pageChain struct {
	head    atomic.Pointer[pageVer]
	pending []byte
}

// dirVer is one published immutable copy of a structure's directory.
type dirVer struct {
	stamp uint64
	dir   any
	prev  atomic.Pointer[dirVer]
}

// DirVersions is the version handle one in-memory directory registers with
// its Disk. The zero value is not usable; obtain handles via RegisterDir.
type DirVersions struct {
	disk      *Disk
	versioned bool
	snap      func() any
	head      atomic.Pointer[dirVer]
	dirty     bool
}

// deferredFree is a batch of pages freed by the update that committed at
// stamp; they become reusable once the GC horizon reaches the stamp.
type deferredFree struct {
	stamp uint64
	ids   []PageID
}

// mvccState hangs off a Disk once EnableMVCC is called.
type mvccState struct {
	// mu guards the snapshot registry, the deferred-free list and the
	// commit stamp's publication point.
	mu          sync.Mutex
	commitStamp atomic.Uint64
	active      map[uint64]int
	epoch       atomic.Bool

	// chMu guards the chains map header; chain contents are accessed via
	// atomics (published versions) or by the single epoch writer (pending).
	chMu   sync.RWMutex
	chains map[PageID]*pageChain

	// Epoch-writer private state: pages written and freed this epoch, and
	// directories dirtied this epoch. Only the session holding the update
	// footprint touches these.
	epochPages []PageID
	epochFrees []PageID
	dirtyDirs  []*DirVersions

	deferred []deferredFree
}

// EnableMVCC switches the disk into multi-version mode: every registered
// versioned directory is published at stamp 0 so snapshot readers always
// find a consistent copy. Call it once, after bulk load and strategy
// preparation, before any concurrent access begins.
func (d *Disk) EnableMVCC() {
	if d.mvcc != nil {
		return
	}
	m := &mvccState{
		active: make(map[uint64]int),
		chains: make(map[PageID]*pageChain),
	}
	d.mvcc = m
	d.mu.RLock()
	dirs := append([]*DirVersions(nil), d.dirs...)
	d.mu.RUnlock()
	for _, dv := range dirs {
		if dv.versioned {
			dv.publish(0)
		}
	}
}

// MVCCEnabled reports whether the disk is in multi-version mode.
func (d *Disk) MVCCEnabled() bool { return d.mvcc != nil }

// CommitStamp returns the newest published version stamp (0 before any
// update publishes).
func (d *Disk) CommitStamp() uint64 {
	if d.mvcc == nil {
		return 0
	}
	return d.mvcc.commitStamp.Load()
}

// UpdateInFlight reports whether an update epoch is currently open. The
// cache layer's optimistic install check reads it.
func (d *Disk) UpdateInFlight() bool {
	return d.mvcc != nil && d.mvcc.epoch.Load()
}

// AcquireSnapshot registers a reader at the current commit stamp and
// returns the stamp plus a release function. The garbage-collection
// horizon never passes a registered snapshot.
func (d *Disk) AcquireSnapshot() (uint64, func()) {
	m := d.mvcc
	m.mu.Lock()
	s := m.commitStamp.Load()
	m.active[s]++
	m.mu.Unlock()
	return s, func() {
		m.mu.Lock()
		if m.active[s]--; m.active[s] == 0 {
			delete(m.active, s)
		}
		m.mu.Unlock()
	}
}

// BeginEpoch opens the update epoch. The caller must hold the update
// footprint (the engine's exclusive base-relation locks), which guarantees
// a single writer.
func (d *Disk) BeginEpoch() {
	if m := d.mvcc; m != nil {
		m.epoch.Store(true)
	}
}

// Publish stamps everything the open epoch wrote — pending page versions,
// dirty directories, deferred frees — with the update's commit sequence
// number and makes it visible: after the commit stamp advances, snapshots
// taken at or beyond stamp see the new versions, older snapshots keep the
// old ones. Call under the engine's commit mutex, which assigns the stamp.
func (d *Disk) Publish(stamp uint64) {
	m := d.mvcc
	if m == nil {
		return
	}
	m.chMu.RLock()
	for _, id := range m.epochPages {
		c := m.chains[id]
		v := &pageVer{stamp: stamp, data: c.pending}
		v.prev.Store(c.head.Load())
		c.head.Store(v)
		// Keep the live page in sync with the newest version so readers
		// without a snapshot (and the next epoch's first read) see it.
		d.WriteRaw(id, v.data)
		c.pending = nil
	}
	m.chMu.RUnlock()
	m.epochPages = m.epochPages[:0]
	for _, dv := range m.dirtyDirs {
		dv.publish(stamp)
		dv.dirty = false
	}
	m.dirtyDirs = m.dirtyDirs[:0]
	m.mu.Lock()
	if len(m.epochFrees) > 0 {
		m.deferred = append(m.deferred, deferredFree{stamp: stamp, ids: m.epochFrees})
		m.epochFrees = nil
	}
	m.commitStamp.Store(stamp)
	m.mu.Unlock()
	m.epoch.Store(false)
}

// GCVersions prunes version chains and reclaims deferred frees below the
// horizon — the oldest registered snapshot (or the commit stamp when no
// reader is active). It returns the number of pages returned to the
// allocator. Safe to call concurrently with readers and with an open
// epoch; the engine wraps calls in the "mvcc:gc" lock so residual waits
// are attributable (see procdoctor).
func (d *Disk) GCVersions() int {
	m := d.mvcc
	if m == nil {
		return 0
	}
	m.mu.Lock()
	horizon := m.commitStamp.Load()
	for s := range m.active {
		if s < horizon {
			horizon = s
		}
	}
	var ready []PageID
	rest := m.deferred[:0]
	for _, df := range m.deferred {
		if df.stamp <= horizon {
			ready = append(ready, df.ids...)
		} else {
			rest = append(rest, df)
		}
	}
	m.deferred = rest
	m.mu.Unlock()

	m.chMu.Lock()
	for _, id := range ready {
		delete(m.chains, id)
	}
	m.chMu.Unlock()
	m.chMu.RLock()
	for _, c := range m.chains {
		pruneBelow(c.head.Load(), horizon)
	}
	m.chMu.RUnlock()

	d.mu.RLock()
	dirs := append([]*DirVersions(nil), d.dirs...)
	d.mu.RUnlock()
	for _, dv := range dirs {
		pruneDirBelow(dv.head.Load(), horizon)
	}

	if len(ready) > 0 {
		d.mu.Lock()
		d.free = append(d.free, ready...)
		d.mu.Unlock()
	}
	return len(ready)
}

// pruneBelow cuts the chain after the newest version at or below horizon:
// no registered snapshot can reach anything older.
func pruneBelow(v *pageVer, horizon uint64) {
	for v != nil {
		if v.stamp <= horizon {
			v.prev.Store(nil)
			return
		}
		v = v.prev.Load()
	}
}

func pruneDirBelow(v *dirVer, horizon uint64) {
	for v != nil {
		if v.stamp <= horizon {
			v.prev.Store(nil)
			return
		}
		v = v.prev.Load()
	}
}

// RegisterDir registers an in-memory directory with the disk and returns
// its version handle. snap must return an immutable deep copy of the live
// directory. Structures register at construction; cache entry files that
// are rewritten at query time call Unversion on the handle instead.
func (d *Disk) RegisterDir(snap func() any) *DirVersions {
	dv := &DirVersions{disk: d, versioned: true, snap: snap}
	d.mu.Lock()
	d.dirs = append(d.dirs, dv)
	d.mu.Unlock()
	if d.mvcc != nil {
		dv.publish(d.CommitStamp())
	}
	return dv
}

// Unversion excludes the directory from snapshotting: readers always see
// the live directory. Correct only for structures whose mutations are
// serialized against their readers by other means (the cache layer's
// per-entry mutexes).
func (dv *DirVersions) Unversion() {
	dv.versioned = false
	dv.head.Store(nil)
}

// Versioned reports whether the directory participates in snapshotting.
func (dv *DirVersions) Versioned() bool { return dv.versioned }

// MarkDirty records that the live directory was mutated inside the open
// update epoch, scheduling a fresh copy at Publish. No-op outside an
// epoch (bulk load, unversioned cache rewrites, MVCC off).
func (dv *DirVersions) MarkDirty() {
	if !dv.versioned {
		return
	}
	m := dv.disk.mvcc
	if m == nil || !m.epoch.Load() {
		return
	}
	if !dv.dirty {
		dv.dirty = true
		m.dirtyDirs = append(m.dirtyDirs, dv)
	}
}

// Lookup returns the newest published directory copy with stamp <= snap,
// or nil when the structure is unversioned (read the live directory).
func (dv *DirVersions) Lookup(snap uint64) any {
	if dv == nil || !dv.versioned {
		return nil
	}
	for v := dv.head.Load(); v != nil; v = v.prev.Load() {
		if v.stamp <= snap {
			return v.dir
		}
	}
	return nil
}

// publish links a fresh directory copy as the new head.
func (dv *DirVersions) publish(stamp uint64) {
	v := &dirVer{stamp: stamp, dir: dv.snap()}
	v.prev.Store(dv.head.Load())
	dv.head.Store(v)
}

// readAt copies the newest version of the page with stamp <= snap into
// dst. Pages without a chain have never been epoch-written: their live
// bytes are valid at every stamp.
func (d *Disk) readAt(id PageID, dst []byte, snap uint64) {
	m := d.mvcc
	m.chMu.RLock()
	c := m.chains[id]
	m.chMu.RUnlock()
	if c == nil {
		d.readInto(id, dst)
		return
	}
	for v := c.head.Load(); v != nil; v = v.prev.Load() {
		if v.stamp <= snap {
			copy(dst, v.data)
			return
		}
	}
	panic(fmt.Sprintf("storage: page %d has no version visible at snapshot %d", id, snap))
}

// readEpoch serves the epoch writer its own pending writes, falling back
// to the live page (which equals the newest published version).
func (d *Disk) readEpoch(id PageID, dst []byte) {
	m := d.mvcc
	m.chMu.RLock()
	c := m.chains[id]
	m.chMu.RUnlock()
	if c != nil && c.pending != nil {
		copy(dst, c.pending)
		return
	}
	d.readInto(id, dst)
}

// writeEpoch stages a page write in the epoch's pending buffer, seeding
// the version chain with the pre-epoch contents on first touch.
func (d *Disk) writeEpoch(id PageID, data []byte) {
	if len(data) > d.pageSize {
		panic(fmt.Sprintf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize))
	}
	m := d.mvcc
	m.chMu.RLock()
	c := m.chains[id]
	m.chMu.RUnlock()
	if c == nil {
		base := &pageVer{stamp: 0, data: make([]byte, d.pageSize)}
		d.readInto(id, base.data)
		c = &pageChain{}
		c.head.Store(base)
		m.chMu.Lock()
		m.chains[id] = c
		m.chMu.Unlock()
	}
	if c.pending == nil {
		c.pending = make([]byte, d.pageSize)
		m.epochPages = append(m.epochPages, id)
	} else {
		clear(c.pending)
	}
	copy(c.pending, data)
}

// freeEpoch defers a page freed inside the epoch until the GC horizon
// passes the epoch's eventual stamp.
func (d *Disk) freeEpoch(id PageID) {
	m := d.mvcc
	d.mu.RLock()
	d.check(id)
	d.mu.RUnlock()
	m.epochFrees = append(m.epochFrees, id)
}
