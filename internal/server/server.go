// Package server implements procserved's TCP front-end: it multiplexes
// wire-protocol connections onto one shared quel session and onto
// engine-backed bench worlds.
//
// Concurrency model. The quel.DB is a single-threaded interpreter, so
// the server serializes statement execution through a capacity-1 gate
// channel. A connection acquires the gate per statement — except inside
// an explicit transaction, where Begin holds the gate until
// Commit/Rollback so no other connection can observe (or interleave
// with) uncommitted state. Gate waits are context-cancellable: a TCancel
// frame for the in-flight request aborts the wait and the request fails
// with CodeCancelled. Bench worlds bypass the gate entirely — each world
// owns an engine whose lock table isolates its sessions.
//
// Admission. Connections, prepared statements, cursors, transactions and
// worlds are all bounded (Options); admission is a single atomic
// increment-then-check, so an over-limit request is rejected with
// CodeLimit before it allocates anything.
//
// Drain. Shutdown stops the listener, lets every connection finish its
// in-flight request, then closes them; stragglers are force-closed when
// the context expires.
package server

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/quel"
	"dbproc/internal/telemetry"
)

// Options bounds and configures a Server. Zero values take defaults.
type Options struct {
	// MaxConns bounds concurrently open connections (default 64).
	MaxConns int
	// MaxStmts bounds prepared statements per connection (default 256).
	MaxStmts int
	// MaxCursors bounds open cursors per connection (default 256).
	MaxCursors int
	// MaxWorlds bounds concurrently open bench worlds (default 8).
	MaxWorlds int
	// FetchBatch is the default cursor batch when a Stmt/Fetch frame
	// does not name one (default 256 rows).
	FetchBatch int
	// PageSize and Width configure the shared quel session's pager;
	// zero takes the paper defaults (4000-byte pages, 100-byte tuples),
	// matching a local procshell session.
	PageSize int
	Width    int
	// Costs prices the shared session's simulated work.
	Costs metric.Costs
	// Recorder, when non-nil, receives one flight event per request
	// (kind "server.request"), so a stalled served run can be diagnosed
	// from the same flight tail as an in-process one.
	Recorder *telemetry.Recorder
	// TraceSink, when non-nil, receives one server-side wire span per
	// sampled traced request (docs/TRACING.md). Nil keeps the served
	// path span-free.
	TraceSink *obs.WireSpanSink
	// Detect, when non-nil, arms the served-path SLO detector: a request
	// type whose running p99 service time breaches ServedP99Ns records
	// an EvDetector flight event (once per run).
	Detect *telemetry.Thresholds
}

func (o *Options) fill() {
	if o.MaxConns <= 0 {
		o.MaxConns = 64
	}
	if o.MaxStmts <= 0 {
		o.MaxStmts = 256
	}
	if o.MaxCursors <= 0 {
		o.MaxCursors = 256
	}
	if o.MaxWorlds <= 0 {
		o.MaxWorlds = 8
	}
	if o.FetchBatch <= 0 {
		o.FetchBatch = 256
	}
	if o.Costs == (metric.Costs{}) {
		o.Costs = metric.DefaultCosts()
	}
}

// Server is one procserved instance.
type Server struct {
	opt Options

	db   *quel.DB
	gate chan struct{} // capacity 1: serializes quel statement execution

	ln      net.Listener
	mu      sync.Mutex
	conns   map[*conn]struct{}
	wg      sync.WaitGroup
	drainCh chan struct{}
	drained atomic.Bool

	worldMu   sync.Mutex
	worlds    map[int]*world
	nextWorld int

	// Gauges and counters (atomic; scraped by TelemetryMetrics).
	nConns      atomic.Int64
	nStmts      atomic.Int64
	nCursors    atomic.Int64
	nTx         atomic.Int64
	nWorlds     atomic.Int64
	accepted    atomic.Int64
	rejected    atomic.Int64
	requests    atomic.Int64
	errorsTotal atomic.Int64
	cancels     atomic.Int64
	nextConnID  atomic.Int64

	// Per-request-type service-time sketches (P²), always on: they feed
	// the dbproc_server_request_seconds quantile series and the served
	// SLO detector.
	sketchMu sync.Mutex
	sketches map[string]*telemetry.Sketch

	det *telemetry.Detectors
}

// New builds an unstarted server with one fresh quel session.
func New(opt Options) *Server {
	opt.fill()
	s := &Server{
		opt:      opt,
		db:       quel.Open(opt.PageSize, opt.Width, opt.Costs),
		gate:     make(chan struct{}, 1),
		conns:    make(map[*conn]struct{}),
		drainCh:  make(chan struct{}),
		worlds:   make(map[int]*world),
		sketches: make(map[string]*telemetry.Sketch),
	}
	if opt.Detect != nil {
		s.det = telemetry.NewDetectors(*opt.Detect, opt.Recorder)
	}
	return s
}

// DB exposes the shared quel session (tests inspect meter state through
// it; the server itself only touches it under the gate).
func (s *Server) DB() *quel.DB { return s.db }

// Serve accepts connections on ln until Shutdown closes it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.drained.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// ListenAndServe binds addr (use "127.0.0.1:0" in tests), serves in the
// background, and returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown drains the server: the listener closes, every connection
// finishes its in-flight request and is then closed. Connections still
// busy when ctx expires are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.drained.Swap(true) {
		return nil
	}
	close(s.drainCh)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool { return s.drained.Load() }

// admit is the bounded-handle idiom: increment, check, roll back on
// overflow. It keeps admission to one atomic op on the accept path.
func admit(n *atomic.Int64, max int) bool {
	if n.Add(1) > int64(max) {
		n.Add(-1)
		return false
	}
	return true
}

// acquireGate takes the statement gate, waiting until the holder (a
// statement, or a whole transaction) releases it. The wait aborts when
// ctx is cancelled — the caller maps that to CodeCancelled.
func (s *Server) acquireGate(ctx context.Context) error {
	select {
	case s.gate <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.gate <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) releaseGate() { <-s.gate }

// Stats is a point-in-time snapshot of the server's handle tables; the
// conformance suite asserts these drain to zero after each scenario.
type Stats struct {
	Conns    int64
	Stmts    int64
	Cursors  int64
	Tx       int64
	Worlds   int64
	Accepted int64
	Rejected int64
	Requests int64
	Errors   int64
	Cancels  int64
}

// Stat snapshots the gauges.
func (s *Server) Stat() Stats {
	return Stats{
		Conns:    s.nConns.Load(),
		Stmts:    s.nStmts.Load(),
		Cursors:  s.nCursors.Load(),
		Tx:       s.nTx.Load(),
		Worlds:   s.nWorlds.Load(),
		Accepted: s.accepted.Load(),
		Rejected: s.rejected.Load(),
		Requests: s.requests.Load(),
		Errors:   s.errorsTotal.Load(),
		Cancels:  s.cancels.Load(),
	}
}

// TelemetryMetrics implements telemetry.Source: the server's own
// connection-pool and handle gauges, plus every open world's engine
// metrics labelled with the world id.
func (s *Server) TelemetryMetrics() []telemetry.Metric {
	st := s.Stat()
	ms := []telemetry.Metric{
		telemetry.Gauge("dbproc_server_connections", "Open client connections.", float64(st.Conns), nil),
		telemetry.Gauge("dbproc_server_stmts_open", "Open prepared statements.", float64(st.Stmts), nil),
		telemetry.Gauge("dbproc_server_cursors_open", "Open cursors.", float64(st.Cursors), nil),
		telemetry.Gauge("dbproc_server_tx_open", "Open transactions.", float64(st.Tx), nil),
		telemetry.Gauge("dbproc_server_worlds_open", "Open bench worlds.", float64(st.Worlds), nil),
		telemetry.Counter("dbproc_server_connections_accepted_total", "Connections admitted.", float64(st.Accepted), nil),
		telemetry.Counter("dbproc_server_connections_rejected_total", "Connections refused at admission.", float64(st.Rejected), nil),
		telemetry.Counter("dbproc_server_requests_total", "Request frames handled.", float64(st.Requests), nil),
		telemetry.Counter("dbproc_server_errors_total", "Requests answered with an error frame.", float64(st.Errors), nil),
		telemetry.Counter("dbproc_server_cancels_total", "TCancel frames received.", float64(st.Cancels), nil),
	}
	s.sketchMu.Lock()
	types := make([]string, 0, len(s.sketches))
	for name := range s.sketches {
		types = append(types, name)
	}
	sort.Strings(types)
	for _, name := range types {
		sk := s.sketches[name]
		ms = append(ms, telemetry.Counter("dbproc_server_request_seconds_count",
			"Requests observed by the service-time sketch.", float64(sk.Count()),
			map[string]string{"type": name}))
		for _, q := range sk.Quantiles() {
			ms = append(ms, telemetry.Gauge("dbproc_server_request_seconds",
				"Per-type request service time (P² estimate).", sk.Quantile(q)/1e9,
				map[string]string{"type": name, "quantile": fmt.Sprintf("%g", q)}))
		}
	}
	s.sketchMu.Unlock()
	s.worldMu.Lock()
	worlds := make(map[int]*world, len(s.worlds))
	for id, w := range s.worlds {
		worlds[id] = w
	}
	s.worldMu.Unlock()
	for id, w := range worlds {
		label := map[string]string{"world": strconv.Itoa(id)}
		for _, m := range w.eng.TelemetryMetrics() {
			if len(m.Labels) > 0 {
				merged := make(map[string]string, len(m.Labels)+1)
				for k, v := range m.Labels {
					merged[k] = v
				}
				merged["world"] = label["world"]
				m.Labels = merged
			} else {
				m.Labels = label
			}
			ms = append(ms, m)
		}
	}
	return ms
}

// record emits one flight event for a handled request; a traced request
// stamps its trace id into the event detail so a flight tail can be
// joined against the wire-span JSONL. Nil-safe.
func (s *Server) record(connID int64, seq int64, name string, serviceNs int64, traceID string) {
	if rec := s.opt.Recorder; rec != nil {
		detail := ""
		if traceID != "" {
			detail = "trace=" + traceID
		}
		rec.Record(telemetry.Event{Kind: "server.request", Session: int(connID), Seq: int(seq),
			Name: name, HoldNs: serviceNs, Detail: detail})
	}
}

// recordCancel counts a TCancel frame and records it as a flight event
// carrying the cancelled request's trace id (or "untraced request" when
// the in-flight request carried no context). Cancels used to vanish
// silently; now a flight tail shows who pulled the plug.
func (s *Server) recordCancel(connID int64, traceID string) {
	s.cancels.Add(1)
	if rec := s.opt.Recorder; rec != nil {
		detail := "untraced request"
		if traceID != "" {
			detail = "trace=" + traceID
		}
		rec.Record(telemetry.Event{Kind: telemetry.EvCancel, Session: int(connID), Seq: -1,
			Name: "cancel", Detail: detail})
	}
}

// observe feeds one request's service time into its type's sketch and,
// every 16th observation, tests the running p99 against the served SLO.
func (s *Server) observe(name string, serviceNs int64) {
	s.sketchMu.Lock()
	sk := s.sketches[name]
	if sk == nil {
		sk = telemetry.NewSketch()
		s.sketches[name] = sk
	}
	s.sketchMu.Unlock()
	sk.Observe(float64(serviceNs))
	if n := sk.Count(); s.det != nil && n >= 16 && n%16 == 0 {
		s.det.CheckServedLatency(name, sk.Quantile(0.99))
	}
}
