package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dbproc/internal/obs"
	"dbproc/internal/quel"
	"dbproc/internal/wire"
)

// conn is one client connection. A dedicated reader goroutine pulls
// frames off the socket so TCancel is seen even while the handler is
// blocked (on the gate, or mid-request); every other frame is forwarded
// to the handler goroutine, which owns the handle tables and is the only
// writer of response frames.
type conn struct {
	srv *Server
	id  int64
	nc  net.Conn
	bw  *bufio.Writer

	// Handle tables, owned by the handler goroutine.
	stmts      map[int]quel.Statement
	cursors    map[int]*cursor
	tx         *quel.Tx
	txHandle   int
	nextHandle int

	// cancelMu guards the in-flight request's cancel func and trace id,
	// shared with the reader goroutine (a TCancel flight event names the
	// trace it killed).
	cancelMu      sync.Mutex
	cancel        context.CancelFunc
	inflightTrace string

	// Per-request tracing state, owned by the handler goroutine: the
	// propagated context (nil when the client sent none), the server
	// span id minted for it, when dispatch started, and what the
	// response handler stashed for the span export — the breakdown that
	// went out on the wire, the scenario phase, and the error code.
	trace     *wire.TraceContext
	spanID    string
	reqStart  time.Time
	breakdown *wire.ServerBreakdown
	phase     string
	lastErr   string
}

// cursor is the server-side remainder of a cursored statement: the rows
// not yet fetched.
type cursor struct {
	rows [][]int64
}

type request struct {
	typ     byte
	payload []byte
}

func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	if s.draining() || !admit(&s.nConns, s.opt.MaxConns) {
		s.rejected.Add(1)
		code := wire.CodeLimit
		if s.draining() {
			code = wire.CodeDraining
		}
		bw := bufio.NewWriter(nc)
		wire.WriteFrame(bw, wire.TError, &wire.Error{Code: code, Msg: "connection refused"})
		bw.Flush()
		return
	}
	defer s.nConns.Add(-1)
	s.accepted.Add(1)

	c := &conn{
		srv:     s,
		id:      s.nextConnID.Add(1),
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		stmts:   make(map[int]quel.Statement),
		cursors: make(map[int]*cursor),
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.teardown()
	}()

	br := bufio.NewReader(nc)

	// Handshake: the first frame must be THello with a matching version.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	nc.SetReadDeadline(time.Time{})
	if typ != wire.THello {
		c.writeError(wire.CodeProtocol, "expected hello")
		return
	}
	msg, err := wire.Decode(typ, payload)
	if err != nil {
		c.writeError(wire.CodeProtocol, err.Error())
		return
	}
	hello := msg.(*wire.Hello)
	if hello.Version != wire.Version {
		c.writeError(wire.CodeProtocol, fmt.Sprintf("protocol version %d, server speaks %d", hello.Version, wire.Version))
		return
	}
	if err := c.write(wire.THelloOK, &wire.HelloOK{Version: wire.Version, Server: "procserved"}); err != nil {
		return
	}

	// Reader goroutine: dispatches TCancel immediately, forwards the rest.
	// done unblocks a reader stuck handing off a request after the
	// handler loop has exited.
	reqCh := make(chan request)
	readErr := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(readErr)
		for {
			typ, payload, err := wire.ReadFrame(br)
			if err != nil {
				return
			}
			if typ == wire.TCancel {
				c.cancelMu.Lock()
				trace := c.inflightTrace
				c.cancelMu.Unlock()
				c.srv.recordCancel(c.id, trace)
				c.cancelInflight()
				continue
			}
			select {
			case reqCh <- request{typ, payload}:
			case <-done:
				return
			}
		}
	}()

	for {
		select {
		case r := <-reqCh:
			if !c.handle(r) {
				return
			}
		case <-readErr:
			return
		case <-s.drainCh:
			return
		}
	}
}

// teardown releases everything the connection holds: an open
// transaction rolls back (and frees the gate), cursors and prepared
// statements drop their admission slots.
func (c *conn) teardown() {
	c.cancelInflight()
	if c.tx != nil {
		c.tx.Rollback()
		c.tx = nil
		c.srv.nTx.Add(-1)
		c.srv.releaseGate()
	}
	c.srv.nStmts.Add(-int64(len(c.stmts)))
	c.stmts = nil
	c.srv.nCursors.Add(-int64(len(c.cursors)))
	c.cursors = nil
}

func (c *conn) cancelInflight() {
	c.cancelMu.Lock()
	if c.cancel != nil {
		c.cancel()
	}
	c.cancelMu.Unlock()
}

func (c *conn) write(typ byte, msg any) error {
	if err := wire.WriteFrame(c.bw, typ, msg); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *conn) writeError(code, msg string) error {
	c.srv.errorsTotal.Add(1)
	c.lastErr = code
	return c.write(wire.TError, &wire.Error{Code: code, Msg: msg})
}

// finishRequest closes out one handled request: the service time feeds
// the per-type sketch and the flight recorder, and a sampled traced
// request exports its server span. When the response carried a
// breakdown the span's duration is the breakdown's WallNs — the wall
// the segments partition exactly — rather than the slightly larger
// dispatch-to-here time, so the sum-to-total invariant survives into
// the JSONL.
func (c *conn) finishRequest(typ byte, start time.Time) {
	service := time.Since(start).Nanoseconds()
	name := wire.Name(typ)
	c.srv.observe(name, service)
	traceID := ""
	if c.trace != nil {
		traceID = c.trace.TraceID
	}
	c.srv.record(c.id, c.srv.requests.Load(), name, service, traceID)
	if c.trace == nil || !c.trace.Sampled {
		return
	}
	rec := obs.WireSpanRecord{
		Side: obs.SideServer, TraceID: c.trace.TraceID, SpanID: c.spanID,
		ParentSpanID: c.trace.SpanID, Name: name, Conn: c.id, Phase: c.phase,
		StartUnixNs: start.UnixNano(), DurNs: service, Err: c.lastErr,
	}
	if bd := c.breakdown; bd != nil {
		rec.DurNs = bd.WallNs
		rec.Segments = segmentsOf(bd)
	}
	c.srv.opt.TraceSink.Write(rec)
}

// segmentsOf maps a wire breakdown onto the JSONL segment keys
// (obs.SegmentOrder). Compute is always present so the partition stays
// checkable even when it is the only segment.
func segmentsOf(b *wire.ServerBreakdown) map[string]int64 {
	m := map[string]int64{"compute": b.ComputeNs}
	if b.AdmissionNs != 0 {
		m["admission"] = b.AdmissionNs
	}
	if b.GateNs != 0 {
		m["gate"] = b.GateNs
	}
	if b.LockWaitNs != 0 {
		m["lock_wait"] = b.LockWaitNs
	}
	if b.IONs != 0 {
		m["io"] = b.IONs
	}
	if b.RecomputeNs != 0 {
		m["recompute"] = b.RecomputeNs
	}
	return m
}

// handle services one request frame and writes exactly one response.
// It returns false when the connection should close (write failure or
// protocol violation).
func (c *conn) handle(r request) bool {
	c.srv.requests.Add(1)
	start := time.Now()
	c.reqStart = start
	c.trace, c.spanID, c.breakdown, c.phase, c.lastErr = nil, "", nil, "", ""
	ctx, cancel := context.WithCancel(context.Background())
	c.cancelMu.Lock()
	c.cancel = cancel
	c.cancelMu.Unlock()
	defer func() {
		c.cancelMu.Lock()
		c.cancel = nil
		c.inflightTrace = ""
		c.cancelMu.Unlock()
		cancel()
		c.finishRequest(r.typ, start)
	}()

	msg, err := wire.Decode(r.typ, r.payload)
	if err != nil {
		c.writeError(wire.CodeProtocol, err.Error())
		return false
	}
	// Adopt the client's propagated trace context: this request becomes
	// a child span of the driver-side call, and the reader goroutine can
	// name the trace if a TCancel arrives for it.
	if tc := wire.TraceOf(msg); tc != nil {
		c.trace = tc
		c.spanID = obs.NewSpanID()
		c.cancelMu.Lock()
		c.inflightTrace = tc.TraceID
		c.cancelMu.Unlock()
	}
	switch m := msg.(type) {
	case *wire.Ping:
		return c.write(wire.TPong, &wire.Pong{}) == nil
	case *wire.Stmt:
		return c.handleStmt(ctx, m) == nil
	case *wire.Prepare:
		return c.handlePrepare(m) == nil
	case *wire.StmtExec:
		return c.handleStmtExec(ctx, m) == nil
	case *wire.StmtClose:
		if _, ok := c.stmts[m.Stmt]; ok {
			delete(c.stmts, m.Stmt)
			c.srv.nStmts.Add(-1)
		}
		return c.write(wire.TOK, &wire.OK{}) == nil
	case *wire.Begin:
		return c.handleBegin(ctx) == nil
	case *wire.Commit:
		return c.handleTxEnd(m.Tx, true) == nil
	case *wire.Rollback:
		return c.handleTxEnd(m.Tx, false) == nil
	case *wire.Fetch:
		return c.handleFetch(m) == nil
	case *wire.CursorClose:
		if _, ok := c.cursors[m.Cursor]; ok {
			delete(c.cursors, m.Cursor)
			c.srv.nCursors.Add(-1)
		}
		return c.write(wire.TOK, &wire.OK{}) == nil
	case *wire.WorldOpen:
		return c.handleWorldOpen(m) == nil
	case *wire.WorldNext:
		return c.handleWorldNext(m) == nil
	case *wire.WorldStats:
		return c.handleWorldStats(m) == nil
	case *wire.WorldClose:
		return c.handleWorldClose(m) == nil
	default:
		c.writeError(wire.CodeProtocol, fmt.Sprintf("unexpected frame type %d", r.typ))
		return false
	}
}

// enterGate acquires the statement gate unless this connection already
// holds it through an open transaction. The returned release is a no-op
// in that case — the transaction keeps the gate until Commit/Rollback.
func (c *conn) enterGate(ctx context.Context) (func(), error) {
	if c.tx != nil {
		return func() {}, nil
	}
	if err := c.srv.acquireGate(ctx); err != nil {
		return nil, err
	}
	return c.srv.releaseGate, nil
}

func (c *conn) handleStmt(ctx context.Context, m *wire.Stmt) error {
	if strings.HasPrefix(m.Text, "@bench ") {
		return c.handleBench(m.Text)
	}
	stmt, err := quel.Parse(m.Text)
	if err != nil {
		return c.writeError(wire.CodeParse, err.Error())
	}
	return c.execParsed(ctx, stmt, m.Tx, m.Cursor, m.Fetch)
}

func (c *conn) handlePrepare(m *wire.Prepare) error {
	stmt, err := quel.Parse(m.Text)
	if err != nil {
		return c.writeError(wire.CodeParse, err.Error())
	}
	if !admit(&c.srv.nStmts, c.srv.opt.MaxStmts) {
		return c.writeError(wire.CodeLimit, "too many prepared statements")
	}
	c.nextHandle++
	c.stmts[c.nextHandle] = stmt
	return c.write(wire.TPrepared, &wire.Prepared{Stmt: c.nextHandle})
}

func (c *conn) handleStmtExec(ctx context.Context, m *wire.StmtExec) error {
	stmt, ok := c.stmts[m.Stmt]
	if !ok {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no prepared statement %d", m.Stmt))
	}
	return c.execParsed(ctx, stmt, m.Tx, m.Cursor, m.Fetch)
}

// execParsed runs one parsed statement under the gate and answers with
// TResult, slicing off a cursor when asked and more rows remain.
func (c *conn) execParsed(ctx context.Context, stmt quel.Statement, tx int, wantCursor bool, fetch int) error {
	if tx != 0 && (c.tx == nil || tx != c.txHandle) {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no transaction %d", tx))
	}
	preGate := time.Now()
	release, err := c.enterGate(ctx)
	if err != nil {
		return c.writeError(wire.CodeCancelled, "cancelled waiting for the statement gate")
	}
	start := time.Now()
	res, err := c.srv.db.RunParsed(stmt)
	release()
	if err != nil {
		return c.writeError(wire.CodeExec, err.Error())
	}
	out := toWireResult(res)
	out.WallNs = time.Since(start).Nanoseconds()
	if wantCursor {
		if fetch <= 0 {
			fetch = c.srv.opt.FetchBatch
		}
		if len(out.Rows) > fetch {
			if !admit(&c.srv.nCursors, c.srv.opt.MaxCursors) {
				return c.writeError(wire.CodeLimit, "too many open cursors")
			}
			c.nextHandle++
			c.cursors[c.nextHandle] = &cursor{rows: out.Rows[fetch:]}
			out.Cursor = c.nextHandle
			out.More = true
			out.Rows = out.Rows[:fetch]
		}
	}
	if c.trace != nil {
		// Partition the service wall exactly: admission is dispatch to
		// the gate attempt, gate is the wait for the statement gate, and
		// compute is the remainder (execution plus response build), so
		// the three always sum to WallNs.
		wall := time.Since(c.reqStart).Nanoseconds()
		bd := &wire.ServerBreakdown{
			SpanID:      c.spanID,
			WallNs:      wall,
			AdmissionNs: preGate.Sub(c.reqStart).Nanoseconds(),
			GateNs:      start.Sub(preGate).Nanoseconds(),
		}
		bd.ComputeNs = wall - bd.AdmissionNs - bd.GateNs
		out.Server = bd
		c.breakdown = bd
	}
	return c.write(wire.TResult, out)
}

func (c *conn) handleBegin(ctx context.Context) error {
	if c.tx != nil {
		return c.writeError(wire.CodeExec, "transaction already open on this connection")
	}
	if err := c.srv.acquireGate(ctx); err != nil {
		return c.writeError(wire.CodeCancelled, "cancelled waiting for the statement gate")
	}
	tx, err := c.srv.db.Begin()
	if err != nil {
		c.srv.releaseGate()
		return c.writeError(wire.CodeExec, err.Error())
	}
	c.srv.nTx.Add(1)
	c.tx = tx
	c.nextHandle++
	c.txHandle = c.nextHandle
	return c.write(wire.TBegun, &wire.Begun{Tx: c.txHandle})
}

func (c *conn) handleTxEnd(handle int, commit bool) error {
	if c.tx == nil || handle != c.txHandle {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no transaction %d", handle))
	}
	var err error
	if commit {
		err = c.tx.Commit()
	} else {
		err = c.tx.Rollback()
	}
	c.tx = nil
	c.txHandle = 0
	c.srv.nTx.Add(-1)
	c.srv.releaseGate()
	if err != nil {
		return c.writeError(wire.CodeExec, err.Error())
	}
	return c.write(wire.TOK, &wire.OK{})
}

func (c *conn) handleFetch(m *wire.Fetch) error {
	cur, ok := c.cursors[m.Cursor]
	if !ok {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no cursor %d", m.Cursor))
	}
	max := m.Max
	if max <= 0 {
		max = c.srv.opt.FetchBatch
	}
	out := &wire.Fetched{}
	if len(cur.rows) > max {
		out.Rows = cur.rows[:max]
		cur.rows = cur.rows[max:]
		out.More = true
	} else {
		out.Rows = cur.rows
		cur.rows = nil
		delete(c.cursors, m.Cursor)
		c.srv.nCursors.Add(-1)
	}
	return c.write(wire.TFetched, out)
}

// handleBench intercepts the "@bench ..." statement dialect that lets a
// plain database/sql client drive an open bench world:
//
//	@bench next <world> <session>
//
// executes that session's next dealt operation (RowsAffected 1) or
// reports exhaustion (RowsAffected 0). World steps bypass the statement
// gate — the world's engine does its own locking.
func (c *conn) handleBench(text string) error {
	var worldID, session int
	if _, err := fmt.Sscanf(text, "@bench next %d %d", &worldID, &session); err != nil {
		return c.writeError(wire.CodeParse, fmt.Sprintf("bad @bench statement %q", text))
	}
	step, werr := c.srv.worldNext(worldID, session)
	if werr != nil {
		return c.writeError(werr.Code, werr.Msg)
	}
	out := &wire.Result{CostMs: step.CostMs, WallNs: step.WallNs}
	if step.Done {
		out.Message = "world session drained"
	} else {
		out.Message = fmt.Sprintf("committed seq %d", step.Seq)
		out.Affected = 1
	}
	out.Server = c.worldBreakdown(step)
	return c.write(wire.TResult, out)
}

// worldBreakdown partitions a traced world step's service wall. The
// engine already decomposed the execution (WallNs = lock wait + io +
// recompute + compute under the critical-path invariant; lock wait +
// compute otherwise), so the server's own overhead — dispatch, dealing
// the op, response build — lands in admission and the engine remainder
// in compute, keeping the segments an exact partition. Returns nil on
// untraced requests, and stashes the breakdown and scenario phase for
// the span export.
func (c *conn) worldBreakdown(step *wire.WorldStep) *wire.ServerBreakdown {
	if c.trace == nil {
		return nil
	}
	c.phase = step.Phase
	wall := time.Since(c.reqStart).Nanoseconds()
	adm := wall - step.WallNs
	if adm < 0 {
		adm = 0
	}
	bd := &wire.ServerBreakdown{
		SpanID:      c.spanID,
		WallNs:      wall,
		AdmissionNs: adm,
		LockWaitNs:  step.WaitNs,
		IONs:        step.IONs,
		RecomputeNs: step.RecomputeNs,
	}
	bd.ComputeNs = wall - adm - bd.LockWaitNs - bd.IONs - bd.RecomputeNs
	c.breakdown = bd
	return bd
}

// toWireResult converts a quel result for the wire.
func toWireResult(res *quel.Result) *wire.Result {
	out := &wire.Result{
		Message:  res.Message,
		Columns:  res.Columns,
		Rows:     res.Rows,
		Affected: res.Affected,
		CostMs:   res.CostMs,
	}
	for _, s := range res.Sections {
		out.Sections = append(out.Sections, wire.Section{Columns: s.Columns, Rows: s.Rows})
	}
	return out
}
