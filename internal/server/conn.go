package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dbproc/internal/quel"
	"dbproc/internal/wire"
)

// conn is one client connection. A dedicated reader goroutine pulls
// frames off the socket so TCancel is seen even while the handler is
// blocked (on the gate, or mid-request); every other frame is forwarded
// to the handler goroutine, which owns the handle tables and is the only
// writer of response frames.
type conn struct {
	srv *Server
	id  int64
	nc  net.Conn
	bw  *bufio.Writer

	// Handle tables, owned by the handler goroutine.
	stmts      map[int]quel.Statement
	cursors    map[int]*cursor
	tx         *quel.Tx
	txHandle   int
	nextHandle int

	// cancelMu guards the in-flight request's cancel func, shared with
	// the reader goroutine.
	cancelMu sync.Mutex
	cancel   context.CancelFunc
}

// cursor is the server-side remainder of a cursored statement: the rows
// not yet fetched.
type cursor struct {
	rows [][]int64
}

type request struct {
	typ     byte
	payload []byte
}

func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	if s.draining() || !admit(&s.nConns, s.opt.MaxConns) {
		s.rejected.Add(1)
		code := wire.CodeLimit
		if s.draining() {
			code = wire.CodeDraining
		}
		bw := bufio.NewWriter(nc)
		wire.WriteFrame(bw, wire.TError, &wire.Error{Code: code, Msg: "connection refused"})
		bw.Flush()
		return
	}
	defer s.nConns.Add(-1)
	s.accepted.Add(1)

	c := &conn{
		srv:     s,
		id:      s.nextConnID.Add(1),
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		stmts:   make(map[int]quel.Statement),
		cursors: make(map[int]*cursor),
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.teardown()
	}()

	br := bufio.NewReader(nc)

	// Handshake: the first frame must be THello with a matching version.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	nc.SetReadDeadline(time.Time{})
	if typ != wire.THello {
		c.writeError(wire.CodeProtocol, "expected hello")
		return
	}
	msg, err := wire.Decode(typ, payload)
	if err != nil {
		c.writeError(wire.CodeProtocol, err.Error())
		return
	}
	hello := msg.(*wire.Hello)
	if hello.Version != wire.Version {
		c.writeError(wire.CodeProtocol, fmt.Sprintf("protocol version %d, server speaks %d", hello.Version, wire.Version))
		return
	}
	if err := c.write(wire.THelloOK, &wire.HelloOK{Version: wire.Version, Server: "procserved"}); err != nil {
		return
	}

	// Reader goroutine: dispatches TCancel immediately, forwards the rest.
	// done unblocks a reader stuck handing off a request after the
	// handler loop has exited.
	reqCh := make(chan request)
	readErr := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(readErr)
		for {
			typ, payload, err := wire.ReadFrame(br)
			if err != nil {
				return
			}
			if typ == wire.TCancel {
				c.cancelInflight()
				continue
			}
			select {
			case reqCh <- request{typ, payload}:
			case <-done:
				return
			}
		}
	}()

	for {
		select {
		case r := <-reqCh:
			if !c.handle(r) {
				return
			}
		case <-readErr:
			return
		case <-s.drainCh:
			return
		}
	}
}

// teardown releases everything the connection holds: an open
// transaction rolls back (and frees the gate), cursors and prepared
// statements drop their admission slots.
func (c *conn) teardown() {
	c.cancelInflight()
	if c.tx != nil {
		c.tx.Rollback()
		c.tx = nil
		c.srv.nTx.Add(-1)
		c.srv.releaseGate()
	}
	c.srv.nStmts.Add(-int64(len(c.stmts)))
	c.stmts = nil
	c.srv.nCursors.Add(-int64(len(c.cursors)))
	c.cursors = nil
}

func (c *conn) cancelInflight() {
	c.cancelMu.Lock()
	if c.cancel != nil {
		c.cancel()
	}
	c.cancelMu.Unlock()
}

func (c *conn) write(typ byte, msg any) error {
	if err := wire.WriteFrame(c.bw, typ, msg); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *conn) writeError(code, msg string) error {
	c.srv.errorsTotal.Add(1)
	return c.write(wire.TError, &wire.Error{Code: code, Msg: msg})
}

// handle services one request frame and writes exactly one response.
// It returns false when the connection should close (write failure or
// protocol violation).
func (c *conn) handle(r request) bool {
	c.srv.requests.Add(1)
	start := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	c.cancelMu.Lock()
	c.cancel = cancel
	c.cancelMu.Unlock()
	defer func() {
		c.cancelMu.Lock()
		c.cancel = nil
		c.cancelMu.Unlock()
		cancel()
		c.srv.record(c.id, c.srv.requests.Load(), wireName(r.typ), time.Since(start).Nanoseconds())
	}()

	msg, err := wire.Decode(r.typ, r.payload)
	if err != nil {
		c.writeError(wire.CodeProtocol, err.Error())
		return false
	}
	switch m := msg.(type) {
	case *wire.Ping:
		return c.write(wire.TPong, &wire.Pong{}) == nil
	case *wire.Stmt:
		return c.handleStmt(ctx, m) == nil
	case *wire.Prepare:
		return c.handlePrepare(m) == nil
	case *wire.StmtExec:
		return c.handleStmtExec(ctx, m) == nil
	case *wire.StmtClose:
		if _, ok := c.stmts[m.Stmt]; ok {
			delete(c.stmts, m.Stmt)
			c.srv.nStmts.Add(-1)
		}
		return c.write(wire.TOK, &wire.OK{}) == nil
	case *wire.Begin:
		return c.handleBegin(ctx) == nil
	case *wire.Commit:
		return c.handleTxEnd(m.Tx, true) == nil
	case *wire.Rollback:
		return c.handleTxEnd(m.Tx, false) == nil
	case *wire.Fetch:
		return c.handleFetch(m) == nil
	case *wire.CursorClose:
		if _, ok := c.cursors[m.Cursor]; ok {
			delete(c.cursors, m.Cursor)
			c.srv.nCursors.Add(-1)
		}
		return c.write(wire.TOK, &wire.OK{}) == nil
	case *wire.WorldOpen:
		return c.handleWorldOpen(m) == nil
	case *wire.WorldNext:
		return c.handleWorldNext(m) == nil
	case *wire.WorldStats:
		return c.handleWorldStats(m) == nil
	case *wire.WorldClose:
		return c.handleWorldClose(m) == nil
	default:
		c.writeError(wire.CodeProtocol, fmt.Sprintf("unexpected frame type %d", r.typ))
		return false
	}
}

// enterGate acquires the statement gate unless this connection already
// holds it through an open transaction. The returned release is a no-op
// in that case — the transaction keeps the gate until Commit/Rollback.
func (c *conn) enterGate(ctx context.Context) (func(), error) {
	if c.tx != nil {
		return func() {}, nil
	}
	if err := c.srv.acquireGate(ctx); err != nil {
		return nil, err
	}
	return c.srv.releaseGate, nil
}

func (c *conn) handleStmt(ctx context.Context, m *wire.Stmt) error {
	if strings.HasPrefix(m.Text, "@bench ") {
		return c.handleBench(m.Text)
	}
	stmt, err := quel.Parse(m.Text)
	if err != nil {
		return c.writeError(wire.CodeParse, err.Error())
	}
	return c.execParsed(ctx, stmt, m.Tx, m.Cursor, m.Fetch)
}

func (c *conn) handlePrepare(m *wire.Prepare) error {
	stmt, err := quel.Parse(m.Text)
	if err != nil {
		return c.writeError(wire.CodeParse, err.Error())
	}
	if !admit(&c.srv.nStmts, c.srv.opt.MaxStmts) {
		return c.writeError(wire.CodeLimit, "too many prepared statements")
	}
	c.nextHandle++
	c.stmts[c.nextHandle] = stmt
	return c.write(wire.TPrepared, &wire.Prepared{Stmt: c.nextHandle})
}

func (c *conn) handleStmtExec(ctx context.Context, m *wire.StmtExec) error {
	stmt, ok := c.stmts[m.Stmt]
	if !ok {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no prepared statement %d", m.Stmt))
	}
	return c.execParsed(ctx, stmt, m.Tx, m.Cursor, m.Fetch)
}

// execParsed runs one parsed statement under the gate and answers with
// TResult, slicing off a cursor when asked and more rows remain.
func (c *conn) execParsed(ctx context.Context, stmt quel.Statement, tx int, wantCursor bool, fetch int) error {
	if tx != 0 && (c.tx == nil || tx != c.txHandle) {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no transaction %d", tx))
	}
	release, err := c.enterGate(ctx)
	if err != nil {
		return c.writeError(wire.CodeCancelled, "cancelled waiting for the statement gate")
	}
	start := time.Now()
	res, err := c.srv.db.RunParsed(stmt)
	release()
	if err != nil {
		return c.writeError(wire.CodeExec, err.Error())
	}
	out := toWireResult(res)
	out.WallNs = time.Since(start).Nanoseconds()
	if wantCursor {
		if fetch <= 0 {
			fetch = c.srv.opt.FetchBatch
		}
		if len(out.Rows) > fetch {
			if !admit(&c.srv.nCursors, c.srv.opt.MaxCursors) {
				return c.writeError(wire.CodeLimit, "too many open cursors")
			}
			c.nextHandle++
			c.cursors[c.nextHandle] = &cursor{rows: out.Rows[fetch:]}
			out.Cursor = c.nextHandle
			out.More = true
			out.Rows = out.Rows[:fetch]
		}
	}
	return c.write(wire.TResult, out)
}

func (c *conn) handleBegin(ctx context.Context) error {
	if c.tx != nil {
		return c.writeError(wire.CodeExec, "transaction already open on this connection")
	}
	if err := c.srv.acquireGate(ctx); err != nil {
		return c.writeError(wire.CodeCancelled, "cancelled waiting for the statement gate")
	}
	tx, err := c.srv.db.Begin()
	if err != nil {
		c.srv.releaseGate()
		return c.writeError(wire.CodeExec, err.Error())
	}
	c.srv.nTx.Add(1)
	c.tx = tx
	c.nextHandle++
	c.txHandle = c.nextHandle
	return c.write(wire.TBegun, &wire.Begun{Tx: c.txHandle})
}

func (c *conn) handleTxEnd(handle int, commit bool) error {
	if c.tx == nil || handle != c.txHandle {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no transaction %d", handle))
	}
	var err error
	if commit {
		err = c.tx.Commit()
	} else {
		err = c.tx.Rollback()
	}
	c.tx = nil
	c.txHandle = 0
	c.srv.nTx.Add(-1)
	c.srv.releaseGate()
	if err != nil {
		return c.writeError(wire.CodeExec, err.Error())
	}
	return c.write(wire.TOK, &wire.OK{})
}

func (c *conn) handleFetch(m *wire.Fetch) error {
	cur, ok := c.cursors[m.Cursor]
	if !ok {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no cursor %d", m.Cursor))
	}
	max := m.Max
	if max <= 0 {
		max = c.srv.opt.FetchBatch
	}
	out := &wire.Fetched{}
	if len(cur.rows) > max {
		out.Rows = cur.rows[:max]
		cur.rows = cur.rows[max:]
		out.More = true
	} else {
		out.Rows = cur.rows
		cur.rows = nil
		delete(c.cursors, m.Cursor)
		c.srv.nCursors.Add(-1)
	}
	return c.write(wire.TFetched, out)
}

// handleBench intercepts the "@bench ..." statement dialect that lets a
// plain database/sql client drive an open bench world:
//
//	@bench next <world> <session>
//
// executes that session's next dealt operation (RowsAffected 1) or
// reports exhaustion (RowsAffected 0). World steps bypass the statement
// gate — the world's engine does its own locking.
func (c *conn) handleBench(text string) error {
	var worldID, session int
	if _, err := fmt.Sscanf(text, "@bench next %d %d", &worldID, &session); err != nil {
		return c.writeError(wire.CodeParse, fmt.Sprintf("bad @bench statement %q", text))
	}
	step, werr := c.srv.worldNext(worldID, session)
	if werr != nil {
		return c.writeError(werr.Code, werr.Msg)
	}
	out := &wire.Result{CostMs: step.CostMs, WallNs: step.WallNs}
	if step.Done {
		out.Message = "world session drained"
	} else {
		out.Message = fmt.Sprintf("committed seq %d", step.Seq)
		out.Affected = 1
	}
	return c.write(wire.TResult, out)
}

// toWireResult converts a quel result for the wire.
func toWireResult(res *quel.Result) *wire.Result {
	out := &wire.Result{
		Message:  res.Message,
		Columns:  res.Columns,
		Rows:     res.Rows,
		Affected: res.Affected,
		CostMs:   res.CostMs,
	}
	for _, s := range res.Sections {
		out.Sections = append(out.Sections, wire.Section{Columns: s.Columns, Rows: s.Rows})
	}
	return out
}

func wireName(typ byte) string {
	switch typ {
	case wire.TStmt:
		return "stmt"
	case wire.TPrepare:
		return "prepare"
	case wire.TStmtExec:
		return "stmt.exec"
	case wire.TBegin:
		return "begin"
	case wire.TCommit:
		return "commit"
	case wire.TRollback:
		return "rollback"
	case wire.TFetch:
		return "fetch"
	case wire.TWorldOpen:
		return "world.open"
	case wire.TWorldNext:
		return "world.next"
	case wire.TWorldStats:
		return "world.stats"
	default:
		return fmt.Sprintf("frame.%d", typ)
	}
}
