package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/engine"
	"dbproc/internal/sim"
	"dbproc/internal/wire"
	"dbproc/internal/workload"
)

// world is one served bench world: an engine with its sessions opened up
// front and the canonical workload dealt round-robin across them, so a
// served run commits the same per-session operation streams as
// engine.Run with the same client count — and, with one session, the
// same byte stream as sim.Run.
type world struct {
	id  int
	cfg sim.Config
	eng *engine.Engine

	sessions []*engine.Session
	ops      [][]workload.Op
	// scenario and phases label steps with the workload phase they
	// belong to; both stay empty on polite (scenario-less) workloads so
	// a polite served run's frames are byte-identical to before phases
	// existed.
	scenario string
	phases   []string
	// pos[i] is session i's next operation; semu[i] serializes the
	// session (a session is single-submitter by contract, but wire
	// clients may race — TryLock maps the race to CodeBusy).
	pos  []int
	semu []sync.Mutex

	started time.Time

	// statsOnce seals the world: the first WorldStats closes every
	// session, finishes the engine, and caches the result.
	statsOnce sync.Once
	stats     *wire.WorldStatsResult
	statsErr  *wire.Error
}

// strategies and models name the costmodel enums on the wire, matching
// cmd/procsim's flag vocabulary.
var strategies = map[string]costmodel.Strategy{
	"recompute": costmodel.AlwaysRecompute,
	"ci":        costmodel.CacheInvalidate,
	"uc-avm":    costmodel.UpdateCacheAVM,
	"uc-rvm":    costmodel.UpdateCacheRVM,
}

var models = map[string]costmodel.Model{
	"1": costmodel.Model1, "model1": costmodel.Model1,
	"2": costmodel.Model2, "model2": costmodel.Model2,
}

func (c *conn) handleWorldOpen(m *wire.WorldOpen) error {
	strat, ok := strategies[m.Strategy]
	if !ok && !m.Adaptive {
		return c.writeError(wire.CodeParse, fmt.Sprintf("unknown strategy %q", m.Strategy))
	}
	model, ok := models[m.Model]
	if !ok {
		return c.writeError(wire.CodeParse, fmt.Sprintf("unknown model %q", m.Model))
	}
	params := m.Params
	if params == (costmodel.Params{}) {
		params = costmodel.Default()
	}
	if m.Scenario != "" {
		if _, ok := workload.ByName(m.Scenario); !ok {
			return c.writeError(wire.CodeParse, fmt.Sprintf("unknown scenario %q", m.Scenario))
		}
	}
	clients := m.Clients
	if clients < 1 {
		clients = 1
	}
	cfg := sim.Config{
		Params:           params,
		Model:            model,
		Strategy:         strat,
		Seed:             m.Seed,
		Scenario:         m.Scenario,
		R2UpdateFraction: m.R2UpdateFraction,
		Adaptive:         m.Adaptive,
	}
	if m.Ledger {
		cfg.Ledger = cache.NewLedger()
	}
	if !admit(&c.srv.nWorlds, c.srv.opt.MaxWorlds) {
		return c.writeError(wire.CodeLimit, "too many open worlds")
	}

	eng := engine.New(cfg, engine.Options{
		Clients:       clients,
		RecordHistory: true,
		CritPath:      m.CritPath,
		Recorder:      c.srv.opt.Recorder,
	})
	w := &world{
		cfg:      cfg,
		eng:      eng,
		sessions: make([]*engine.Session, clients),
		ops:      engine.Deal(eng.World().WorkloadOps(), clients),
		pos:      make([]int, clients),
		semu:     make([]sync.Mutex, clients),
		started:  time.Now(),
	}
	for i := 0; i < clients; i++ {
		w.sessions[i] = eng.OpenSession(i)
	}
	if sched := eng.World().Schedule(); sched != nil && sched.Scenario != "" {
		w.scenario = sched.Scenario
		for _, p := range sched.Phases {
			w.phases = append(w.phases, p.Name)
		}
	}

	c.srv.worldMu.Lock()
	c.srv.nextWorld++
	w.id = c.srv.nextWorld
	c.srv.worlds[w.id] = w
	c.srv.worldMu.Unlock()

	counts := make([]int, clients)
	for i, per := range w.ops {
		counts[i] = len(per)
	}
	return c.write(wire.TWorldOpened, &wire.WorldOpened{World: w.id, Sessions: clients, Ops: counts})
}

func (s *Server) lookupWorld(id int) *world {
	s.worldMu.Lock()
	defer s.worldMu.Unlock()
	return s.worlds[id]
}

// worldNext executes session's next dealt operation in world id. It is
// shared by the TWorldNext frame handler and the "@bench next" statement
// dialect.
func (s *Server) worldNext(id, session int) (*wire.WorldStep, *wire.Error) {
	w := s.lookupWorld(id)
	if w == nil {
		return nil, &wire.Error{Code: wire.CodeBadHandle, Msg: fmt.Sprintf("no world %d", id)}
	}
	if session < 0 || session >= len(w.sessions) {
		return nil, &wire.Error{Code: wire.CodeBadHandle, Msg: fmt.Sprintf("world %d has no session %d", id, session)}
	}
	if !w.semu[session].TryLock() {
		return nil, &wire.Error{Code: wire.CodeBusy, Msg: fmt.Sprintf("world %d session %d has a request in flight", id, session)}
	}
	defer w.semu[session].Unlock()
	if w.stats != nil {
		return nil, &wire.Error{Code: wire.CodeExec, Msg: fmt.Sprintf("world %d already finished", id)}
	}
	if w.pos[session] >= len(w.ops[session]) {
		return &wire.WorldStep{Done: true}, nil
	}
	op := w.ops[session][w.pos[session]]
	w.pos[session]++
	out := w.sessions[session].Exec(op)
	step := &wire.WorldStep{
		Seq:         out.Seq,
		Update:      op.Kind == workload.Update,
		Tuples:      out.Tuples,
		CostMs:      out.CostMs,
		WallNs:      out.WallNs,
		WaitNs:      out.WaitNs,
		IONs:        out.IONs,
		RecomputeNs: out.RecomputeNs,
		ComputeNs:   out.ComputeNs,
	}
	if w.scenario != "" && op.Phase >= 0 && op.Phase < len(w.phases) {
		step.Phase = w.phases[op.Phase]
	}
	return step, nil
}

func (c *conn) handleWorldNext(m *wire.WorldNext) error {
	step, werr := c.srv.worldNext(m.World, m.Session)
	if werr != nil {
		return c.writeError(werr.Code, werr.Msg)
	}
	step.Server = c.worldBreakdown(step)
	return c.write(wire.TWorldStep, step)
}

func (c *conn) handleWorldStats(m *wire.WorldStats) error {
	w := c.srv.lookupWorld(m.World)
	if w == nil {
		return c.writeError(wire.CodeBadHandle, fmt.Sprintf("no world %d", m.World))
	}
	w.statsOnce.Do(func() {
		// Take every session mutex so a racing worldNext either commits
		// before the seal or observes the finished world.
		for i := range w.semu {
			w.semu[i].Lock()
		}
		defer func() {
			for i := range w.semu {
				w.semu[i].Unlock()
			}
		}()
		for _, sess := range w.sessions {
			sess.Close()
		}
		res := w.eng.Finish(time.Since(w.started).Seconds())
		stats := &wire.WorldStatsResult{
			Ops:           res.Ops,
			Queries:       res.Queries,
			Updates:       res.Updates,
			Tuples:        res.TuplesReturned,
			SimTotalMs:    res.SimTotalMs,
			Counters:      res.Counters,
			HistoryDigest: HistoryDigest(res.History),
		}
		if w.cfg.Ledger != nil {
			var buf bytes.Buffer
			meta := cache.LedgerMeta{
				Strategy: w.cfg.Strategy.String(), Model: int(w.cfg.Model),
				Clients: len(w.sessions), Seed: w.cfg.Seed,
				Queries: res.Queries, Updates: res.Updates,
				TotalMs: res.SimTotalMs,
			}
			if err := cache.WriteLedger(&buf, meta, w.cfg.Ledger); err != nil {
				w.statsErr = &wire.Error{Code: wire.CodeExec, Msg: err.Error()}
				return
			}
			stats.Ledger = buf.Bytes()
		}
		w.stats = stats
	})
	if w.statsErr != nil {
		return c.writeError(w.statsErr.Code, w.statsErr.Msg)
	}
	return c.write(wire.TWorldStatsResult, w.stats)
}

func (c *conn) handleWorldClose(m *wire.WorldClose) error {
	c.srv.worldMu.Lock()
	_, ok := c.srv.worlds[m.World]
	if ok {
		delete(c.srv.worlds, m.World)
	}
	c.srv.worldMu.Unlock()
	if ok {
		c.srv.nWorlds.Add(-1)
	}
	return c.write(wire.TOK, &wire.OK{})
}

// HistoryDigest canonically hashes a committed history: one line per
// entry in commit order covering session, sequence, op identity, tuple
// count, simulated cost, and the query-result digest. A served run and
// an in-process run that committed identical histories produce identical
// digests, which is how the end-to-end identity test compares them
// without shipping the whole history over the wire.
func HistoryDigest(h []engine.HistoryEntry) string {
	sum := sha256.New()
	for _, e := range h {
		fmt.Fprintf(sum, "%d %d %d %d %d %d %.6f %x\n",
			e.Seq, e.Session, int(e.Op.Kind), e.Op.ProcID, e.Op.Index, e.Tuples, e.CostMs, e.Result)
	}
	return hex.EncodeToString(sum.Sum(nil))
}
