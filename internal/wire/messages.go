package wire

import (
	"encoding/json"
	"fmt"

	"dbproc/internal/costmodel"
	"dbproc/internal/metric"
)

// Frame type bytes. Requests and responses share one space; each
// request type documents its response type.
const (
	// THello opens a connection (client → server); the server answers
	// THelloOK or TError. It must be the first frame on the wire.
	THello byte = iota + 1
	THelloOK
	// TPing answers TPong; a no-op round-trip for liveness checks and
	// driver Ping/IsValid.
	TPing
	TPong
	// TCancel aborts the connection's in-flight request. It is the only
	// frame with no response of its own; the aborted request still gets
	// its response (normally TError with CodeCancelled).
	TCancel
	// TOK acknowledges requests with no other payload (close frames,
	// commit, rollback).
	TOK
	TError

	// TStmt executes one QUEL statement; answers TResult or TError.
	TStmt
	// TPrepare parses a statement for repeated execution; answers
	// TPrepared with the statement handle.
	TPrepare
	TPrepared
	// TStmtExec executes a prepared statement; answers TResult.
	TStmtExec
	// TStmtClose frees a statement handle; answers TOK.
	TStmtClose

	// TBegin opens a transaction; answers TBegun with the tx handle.
	TBegin
	TBegun
	// TCommit / TRollback end a transaction; answer TOK.
	TCommit
	TRollback

	// TFetch pulls the next rows of an open cursor; answers TFetched.
	TFetch
	TFetched
	// TCursorClose frees a cursor handle; answers TOK.
	TCursorClose

	// TResult is the response to TStmt / TStmtExec.
	TResult

	// TWorldOpen builds a benchmark world (sim.Build + engine.New) on the
	// server; answers TWorldOpened. TWorldNext executes one dealt
	// operation for a session (answers TWorldStep), TWorldStats closes
	// the sessions and reports the run's aggregate (answers
	// TWorldStatsResult), TWorldClose frees the world (answers TOK).
	TWorldOpen
	TWorldOpened
	TWorldNext
	TWorldStep
	TWorldStats
	TWorldStatsResult
	TWorldClose
)

// Error codes.
const (
	// CodeParse: the statement failed to parse.
	CodeParse = "parse"
	// CodeExec: the statement parsed but failed to execute.
	CodeExec = "exec"
	// CodeBusy: the target (a world session) already has a request in
	// flight.
	CodeBusy = "busy"
	// CodeLimit: a bounded handle table or the admission gate is full.
	CodeLimit = "limit"
	// CodeBadHandle: the request named a handle this connection does not
	// hold.
	CodeBadHandle = "bad_handle"
	// CodeCancelled: the request was aborted by TCancel or by the client
	// vanishing.
	CodeCancelled = "cancelled"
	// CodeDraining: the server is shutting down and admits no new work.
	CodeDraining = "draining"
	// CodeProtocol: the frame sequence itself was invalid.
	CodeProtocol = "protocol"
)

// TraceContext is the trace identity a client propagates with a
// request (docs/TRACING.md). The server adopts it: the request's
// server-side span is created with SpanID as its parent, under TraceID.
// All trace fields are omitempty pointers appended after the
// pre-tracing fields, so a request without one encodes byte-identically
// to the pre-tracing protocol (TestTracingOffByteIdentity).
type TraceContext struct {
	// TraceID names the end-to-end trace (one driver call, usually).
	TraceID string `json:"trace_id"`
	// SpanID is the client-side span the server's span nests under.
	SpanID string `json:"span_id"`
	// Sampled asks the server to export the request's span; an
	// unsampled context still propagates identity for flight events.
	Sampled bool `json:"sampled,omitempty"`
}

// ServerBreakdown partitions a request's server-side wall time exactly:
//
//	WallNs = AdmissionNs + GateNs + LockWaitNs + IONs + RecomputeNs + ComputeNs
//
// WallNs here is the full service time from frame dispatch to response
// build (a superset of the legacy Result.WallNs, which times execution
// only and is unchanged). AdmissionNs is pre-execution overhead
// (decode, parse, handle lookup, world bookkeeping), GateNs the
// statement-gate queue, LockWaitNs the engine lock-table wait, IONs and
// RecomputeNs the engine critical-path segments, and ComputeNs the
// remainder — computed as WallNs minus the others, so the sum-to-total
// invariant holds by construction and is asserted end to end by
// TestServerBreakdownSumsToWall and proctrace -check.
type ServerBreakdown struct {
	// SpanID is the server-side span exported for this request, a child
	// of the propagated TraceContext.SpanID.
	SpanID      string `json:"span_id,omitempty"`
	WallNs      int64  `json:"wall_ns"`
	AdmissionNs int64  `json:"admission_ns,omitempty"`
	GateNs      int64  `json:"gate_ns,omitempty"`
	LockWaitNs  int64  `json:"lock_wait_ns,omitempty"`
	IONs        int64  `json:"io_ns,omitempty"`
	RecomputeNs int64  `json:"recompute_ns,omitempty"`
	ComputeNs   int64  `json:"compute_ns"`
}

// SegmentSum adds the six segments; it equals WallNs on any breakdown
// the server builds.
func (b *ServerBreakdown) SegmentSum() int64 {
	return b.AdmissionNs + b.GateNs + b.LockWaitNs + b.IONs + b.RecomputeNs + b.ComputeNs
}

// Hello opens the connection.
type Hello struct {
	// Version is the protocol version the client speaks; the server
	// rejects versions it does not know.
	Version int `json:"version"`
	// Client names the connecting program (diagnostics only).
	Client string `json:"client,omitempty"`
}

// Version is the protocol version this package implements.
const Version = 1

// HelloOK acknowledges Hello.
type HelloOK struct {
	Version int `json:"version"`
	// Server names the serving program.
	Server string `json:"server,omitempty"`
}

// Error is the failure response to any request. It implements error so
// clients can surface it directly.
type Error struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

func (e *Error) Error() string { return fmt.Sprintf("dbproc: %s: %s", e.Code, e.Msg) }

// Ping has no fields; Pong answers it.
type Ping struct{}

// Pong answers Ping.
type Pong struct{}

// Cancel aborts the connection's in-flight request. No response.
type Cancel struct{}

// OK acknowledges a request with no other payload.
type OK struct{}

// Stmt executes one QUEL statement.
type Stmt struct {
	Text string `json:"text"`
	// Tx scopes the statement to an open transaction handle; 0 runs it
	// auto-committed.
	Tx int `json:"tx,omitempty"`
	// Cursor asks for cursored delivery: the Result carries the first
	// Fetch rows plus a cursor handle for the rest.
	Cursor bool `json:"cursor,omitempty"`
	// Fetch is the first-batch row cap when Cursor is set (server
	// default if 0).
	Fetch int `json:"fetch,omitempty"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Prepare parses a statement for repeated execution.
type Prepare struct {
	Text string `json:"text"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Prepared answers Prepare.
type Prepared struct {
	// Stmt is the statement handle.
	Stmt int `json:"stmt"`
}

// StmtExec executes a prepared statement. Fields as in Stmt.
type StmtExec struct {
	Stmt   int  `json:"stmt"`
	Tx     int  `json:"tx,omitempty"`
	Cursor bool `json:"cursor,omitempty"`
	Fetch  int  `json:"fetch,omitempty"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// StmtClose frees a statement handle.
type StmtClose struct {
	Stmt int `json:"stmt"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Begin opens a transaction.
type Begin struct {
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Begun answers Begin.
type Begun struct {
	Tx int `json:"tx"`
}

// Commit commits a transaction.
type Commit struct {
	Tx int `json:"tx"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Rollback rolls a transaction back.
type Rollback struct {
	Tx int `json:"tx"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Fetch pulls the next rows of a cursor.
type Fetch struct {
	Cursor int `json:"cursor"`
	// Max caps the batch (server default if 0).
	Max int `json:"max,omitempty"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Fetched answers Fetch.
type Fetched struct {
	Rows [][]int64 `json:"rows"`
	// More reports whether the cursor still holds rows; false means the
	// server already freed the handle.
	More bool `json:"more"`
}

// CursorClose frees a cursor handle.
type CursorClose struct {
	Cursor int `json:"cursor"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Section is one further result set of a multi-query procedure.
type Section struct {
	Columns []string  `json:"columns"`
	Rows    [][]int64 `json:"rows"`
}

// Result is the response to Stmt / StmtExec.
type Result struct {
	// Message summarizes non-row results ("created emp", "appended", ...).
	Message string `json:"message,omitempty"`
	// Columns and Rows carry retrieve/execute output (the first batch
	// under cursored delivery).
	Columns []string  `json:"columns,omitempty"`
	Rows    [][]int64 `json:"rows,omitempty"`
	// Sections carries the further result sets of a multi-query
	// procedure.
	Sections []Section `json:"sections,omitempty"`
	// Affected counts tuples changed by append/delete/replace (the
	// driver's RowsAffected).
	Affected int64 `json:"affected,omitempty"`
	// CostMs is the statement's simulated cost; WallNs its wall-clock
	// service time on the server (per-op latency attribution surviving
	// the hop).
	CostMs float64 `json:"cost_ms,omitempty"`
	WallNs int64   `json:"wall_ns,omitempty"`
	// Cursor and More are set under cursored delivery: the handle to
	// Fetch the remaining rows from, and whether any remain.
	Cursor int  `json:"cursor,omitempty"`
	More   bool `json:"more,omitempty"`
	// Server is the exact server-side wall-time partition, attached
	// only when the request carried a trace context.
	Server *ServerBreakdown `json:"server,omitempty"`
}

// WorldOpen builds a benchmark world on the server: sim.Build(cfg) plus
// engine.New with the given session count, history recording on. The
// world's handle is server-global (worlds outlive any one connection's
// request, and several connections drive one world's sessions).
type WorldOpen struct {
	Params   costmodel.Params `json:"params"`
	Model    string           `json:"model"`
	Strategy string           `json:"strategy"`
	Seed     int64            `json:"seed"`
	Adaptive bool             `json:"adaptive,omitempty"`
	// Scenario names a hostile-workload scenario from the workload
	// catalog (sim.Config.Scenario); empty runs the polite workload.
	Scenario string `json:"scenario,omitempty"`
	// R2UpdateFraction is sim.Config.R2UpdateFraction.
	R2UpdateFraction float64 `json:"r2_update_fraction,omitempty"`
	// Clients is the session count the workload is dealt across.
	Clients int `json:"clients"`
	// Ledger attaches a cache-efficacy ledger; its bytes come back in
	// WorldStatsResult.
	Ledger bool `json:"ledger,omitempty"`
	// CritPath enables per-op critical-path decomposition; the segments
	// ride on each WorldStep.
	CritPath bool `json:"critpath,omitempty"`
}

// WorldOpened answers WorldOpen.
type WorldOpened struct {
	// World is the world handle.
	World int `json:"world"`
	// Sessions echoes the session count; Ops is the dealt per-session
	// operation count (engine.Deal of the canonical stream).
	Sessions int   `json:"sessions"`
	Ops      []int `json:"ops"`
}

// WorldNext executes session Session's next dealt operation.
type WorldNext struct {
	World   int `json:"world"`
	Session int `json:"session"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// WorldStep answers WorldNext: one committed operation's attributes, or
// Done when the session's stream is drained.
type WorldStep struct {
	// Done is set when the session has no operations left; the other
	// fields are then zero.
	Done bool `json:"done,omitempty"`
	// Seq is the engine's global commit sequence.
	Seq int `json:"seq"`
	// Update distinguishes update ops from queries.
	Update bool `json:"update,omitempty"`
	// Tuples counts the query's result tuples.
	Tuples int `json:"tuples,omitempty"`
	// CostMs is the op's simulated cost; the *Ns fields are the per-op
	// wall-clock critical path (docs/DIAGNOSIS.md) — IONs, RecomputeNs
	// and ComputeNs only under WorldOpen.CritPath.
	CostMs      float64 `json:"cost_ms"`
	WallNs      int64   `json:"wall_ns"`
	WaitNs      int64   `json:"wait_ns,omitempty"`
	IONs        int64   `json:"io_ns,omitempty"`
	RecomputeNs int64   `json:"recompute_ns,omitempty"`
	ComputeNs   int64   `json:"compute_ns,omitempty"`
	// Phase names the op's scenario phase (empty on polite workloads,
	// so 1-client polite steps stay byte-identical to pre-tracing runs).
	Phase string `json:"phase,omitempty"`
	// Server is the exact server-side wall-time partition, attached
	// only when the request carried a trace context.
	Server *ServerBreakdown `json:"server,omitempty"`
}

// WorldStats seals the world's sessions and reports the run aggregate.
type WorldStats struct {
	World int `json:"world"`
	// Trace is the propagated trace context (nil when untraced).
	Trace *TraceContext `json:"trace,omitempty"`
}

// WorldStatsResult answers WorldStats.
type WorldStatsResult struct {
	Ops     int `json:"ops"`
	Queries int `json:"queries"`
	Updates int `json:"updates"`
	Tuples  int `json:"tuples"`
	// SimTotalMs and Counters are the run's simulated cost, the
	// quantities the identity test compares against sim.Run.
	SimTotalMs float64         `json:"sim_total_ms"`
	Counters   metric.Counters `json:"counters"`
	// HistoryDigest hashes the committed history in commit order
	// (session, seq, op kind, proc, result digest, tuple count, cost).
	HistoryDigest string `json:"history_digest,omitempty"`
	// Ledger is the cache-efficacy ledger serialized by
	// cache.WriteLedger; nil unless WorldOpen.Ledger.
	Ledger []byte `json:"ledger,omitempty"`
}

// WorldClose frees the world handle.
type WorldClose struct {
	World int `json:"world"`
}

// Attach sets the trace context on a request message that carries one
// and reports whether it did. Handshake, liveness and cancel frames
// carry no context (TCancel aborts the request that did).
func Attach(msg any, tc *TraceContext) bool {
	switch m := msg.(type) {
	case *Stmt:
		m.Trace = tc
	case *Prepare:
		m.Trace = tc
	case *StmtExec:
		m.Trace = tc
	case *StmtClose:
		m.Trace = tc
	case *Begin:
		m.Trace = tc
	case *Commit:
		m.Trace = tc
	case *Rollback:
		m.Trace = tc
	case *Fetch:
		m.Trace = tc
	case *CursorClose:
		m.Trace = tc
	case *WorldNext:
		m.Trace = tc
	case *WorldStats:
		m.Trace = tc
	default:
		return false
	}
	return true
}

// TraceOf returns the trace context a decoded request carries (nil when
// untraced or the frame type has no trace field).
func TraceOf(msg any) *TraceContext {
	switch m := msg.(type) {
	case *Stmt:
		return m.Trace
	case *Prepare:
		return m.Trace
	case *StmtExec:
		return m.Trace
	case *StmtClose:
		return m.Trace
	case *Begin:
		return m.Trace
	case *Commit:
		return m.Trace
	case *Rollback:
		return m.Trace
	case *Fetch:
		return m.Trace
	case *CursorClose:
		return m.Trace
	case *WorldNext:
		return m.Trace
	case *WorldStats:
		return m.Trace
	}
	return nil
}

// Name returns the short request name used for span names, flight
// events and the per-type latency sketches ("stmt", "world.next", ...).
func Name(typ byte) string {
	switch typ {
	case TPing:
		return "ping"
	case TStmt:
		return "stmt"
	case TPrepare:
		return "prepare"
	case TStmtExec:
		return "stmt.exec"
	case TStmtClose:
		return "stmt.close"
	case TBegin:
		return "begin"
	case TCommit:
		return "commit"
	case TRollback:
		return "rollback"
	case TFetch:
		return "fetch"
	case TCursorClose:
		return "cursor.close"
	case TWorldOpen:
		return "world.open"
	case TWorldNext:
		return "world.next"
	case TWorldStats:
		return "world.stats"
	case TWorldClose:
		return "world.close"
	default:
		return fmt.Sprintf("frame.%d", typ)
	}
}

// Decode unmarshals a frame payload into its message struct — the
// single table tying type bytes to payload shapes. Unknown type bytes
// are an error; FuzzFrameDecode drives every arm with adversarial
// payloads.
func Decode(typ byte, payload []byte) (any, error) {
	var msg any
	switch typ {
	case THello:
		msg = &Hello{}
	case THelloOK:
		msg = &HelloOK{}
	case TPing:
		msg = &Ping{}
	case TPong:
		msg = &Pong{}
	case TCancel:
		msg = &Cancel{}
	case TOK:
		msg = &OK{}
	case TError:
		msg = &Error{}
	case TStmt:
		msg = &Stmt{}
	case TPrepare:
		msg = &Prepare{}
	case TPrepared:
		msg = &Prepared{}
	case TStmtExec:
		msg = &StmtExec{}
	case TStmtClose:
		msg = &StmtClose{}
	case TBegin:
		msg = &Begin{}
	case TBegun:
		msg = &Begun{}
	case TCommit:
		msg = &Commit{}
	case TRollback:
		msg = &Rollback{}
	case TFetch:
		msg = &Fetch{}
	case TFetched:
		msg = &Fetched{}
	case TCursorClose:
		msg = &CursorClose{}
	case TResult:
		msg = &Result{}
	case TWorldOpen:
		msg = &WorldOpen{}
	case TWorldOpened:
		msg = &WorldOpened{}
	case TWorldNext:
		msg = &WorldNext{}
	case TWorldStep:
		msg = &WorldStep{}
	case TWorldStats:
		msg = &WorldStats{}
	case TWorldStatsResult:
		msg = &WorldStatsResult{}
	case TWorldClose:
		msg = &WorldClose{}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", typ)
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return nil, fmt.Errorf("wire: decode type %d: %w", typ, err)
	}
	return msg, nil
}
