// Package wire is the framed protocol between a dbproc client and
// cmd/procserved (docs/SERVING.md).
//
// A frame is a 4-byte big-endian length, one type byte, and a JSON
// payload; the length covers the type byte plus the payload, so the
// smallest legal frame is a bare type (length 1). The length field is
// bounded by MaxFrame before any allocation happens, so a malformed or
// adversarial prefix can never make ReadFrame allocate more than
// MaxFrame bytes — FuzzFrameDecode holds the package to that.
//
//	+--------+--------+--------+--------+------+----------------+
//	|        length (big endian)        | type |  JSON payload  |
//	+--------+--------+--------+--------+------+----------------+
//
// One request frame gets exactly one response frame, with a single
// exception: Cancel is fire-and-forget (no response of its own — the
// in-flight request it aborts still gets its response, normally an
// Error with CodeCancelled). Handles (statements, cursors,
// transactions, worlds) are small integers scoped to the connection
// that created them; the server bounds every handle table and rejects
// allocation past the bound with CodeLimit.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds the length field: type byte plus payload. Frames
// claiming more are rejected before allocation.
const MaxFrame = 1 << 20

// headerSize is the length prefix's width.
const headerSize = 4

// WriteFrame marshals msg and writes one frame. The msg must be one of
// the package's message structs (its type tag is typ).
func WriteFrame(w io.Writer, typ byte, msg any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("wire: marshal type %d: %w", typ, err)
	}
	return WriteRawFrame(w, typ, payload)
}

// WriteRawFrame writes one frame with an already-encoded payload.
func WriteRawFrame(w io.Writer, typ byte, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame too large (%d > %d)", n, MaxFrame)
	}
	buf := make([]byte, headerSize+n)
	binary.BigEndian.PutUint32(buf, uint32(n))
	buf[headerSize] = typ
	copy(buf[headerSize+1:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, returning the type byte and payload. The
// length field is validated against MaxFrame before the payload buffer
// is allocated; truncated input surfaces as io.ErrUnexpectedEOF, a
// clean EOF before any header byte as io.EOF.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return body[0], body[1:], nil
}
