package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	msgs := []struct {
		typ byte
		msg any
	}{
		{THello, &Hello{Version: 1, Client: "test"}},
		{TStmt, &Stmt{Text: "retrieve (emp.name)", Cursor: true, Fetch: 10}},
		{TResult, &Result{Columns: []string{"a"}, Rows: [][]int64{{1}, {2}}, CostMs: 31, Affected: 2}},
		{TError, &Error{Code: CodeParse, Msg: "bad statement"}},
		{TWorldNext, &WorldNext{World: 3, Session: 1}},
		{TOK, &OK{}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&buf, m.typ, m.msg); err != nil {
			t.Fatalf("write type %d: %v", m.typ, err)
		}
	}
	for _, m := range msgs {
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read type %d: %v", m.typ, err)
		}
		if typ != m.typ {
			t.Fatalf("read type %d, want %d", typ, m.typ)
		}
		got, err := Decode(typ, payload)
		if err != nil {
			t.Fatalf("decode type %d: %v", typ, err)
		}
		want, _ := json.Marshal(m.msg)
		have, _ := json.Marshal(got)
		if !bytes.Equal(want, have) {
			t.Fatalf("type %d round-trip: got %s want %s", typ, have, want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over", buf.Len())
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Zero length.
	var zero [4]byte
	if _, _, err := ReadFrame(bytes.NewReader(zero[:])); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Length beyond MaxFrame: must error before trying to read (or
	// allocate) the claimed body.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(huge[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Adversarial prefix claiming 4 GiB.
	var adv [4]byte
	binary.BigEndian.PutUint32(adv[:], 0xFFFFFFFF)
	if _, _, err := ReadFrame(bytes.NewReader(adv[:])); err == nil {
		t.Fatal("4GiB frame accepted")
	}
}

func TestReadFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TStmt, &Stmt{Text: "retrieve (emp.all)"}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) accepted", cut, len(whole))
		}
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	big := &Stmt{Text: strings.Repeat("x", MaxFrame)}
	if err := WriteFrame(io.Discard, TStmt, big); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode(0, []byte("{}")); err == nil {
		t.Fatal("type 0 decoded")
	}
	if _, err := Decode(200, []byte("{}")); err == nil {
		t.Fatal("type 200 decoded")
	}
}

func TestErrorImplementsError(t *testing.T) {
	var err error = &Error{Code: CodeBusy, Msg: "session 2 busy"}
	if !strings.Contains(err.Error(), CodeBusy) {
		t.Fatalf("error string %q lacks code", err.Error())
	}
}
