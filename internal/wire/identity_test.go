package wire

import (
	"bytes"
	"testing"
)

// TestAttachTraceOfAgree: every request type Attach accepts must yield
// the same context back through TraceOf after an encode/decode round
// trip, and the sum helper must match the documented partition.
func TestAttachTraceOfAgree(t *testing.T) {
	tc := &TraceContext{TraceID: "t1", SpanID: "s1", Sampled: true}
	msgs := []struct {
		typ byte
		msg any
	}{
		{TStmt, &Stmt{Text: "x"}},
		{TPrepare, &Prepare{Text: "x"}},
		{TStmtExec, &StmtExec{Stmt: 1}},
		{TStmtClose, &StmtClose{Stmt: 1}},
		{TBegin, &Begin{}},
		{TCommit, &Commit{Tx: 1}},
		{TRollback, &Rollback{Tx: 1}},
		{TFetch, &Fetch{Cursor: 1}},
		{TCursorClose, &CursorClose{Cursor: 1}},
		{TWorldNext, &WorldNext{World: 1}},
		{TWorldStats, &WorldStats{World: 1}},
	}
	for _, m := range msgs {
		if !Attach(m.msg, tc) {
			t.Fatalf("Attach refused %T", m.msg)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m.typ, m.msg); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(typ, payload)
		if err != nil {
			t.Fatal(err)
		}
		got := TraceOf(dec)
		if got == nil || *got != *tc {
			t.Errorf("%T: trace context did not survive the wire: %+v", m.msg, got)
		}
	}
	if Attach(&Ping{}, tc) || TraceOf(&Ping{}) != nil {
		t.Error("Ping should not carry a trace context")
	}
	bd := &ServerBreakdown{WallNs: 60, AdmissionNs: 10, GateNs: 20, LockWaitNs: 5, IONs: 5, RecomputeNs: 5, ComputeNs: 15}
	if bd.SegmentSum() != bd.WallNs {
		t.Errorf("SegmentSum %d != WallNs %d", bd.SegmentSum(), bd.WallNs)
	}
}

// TestTracingOffByteIdentity pins the encoded bytes of every frame a
// tracing-off client or server produces. The expected strings were
// captured before trace contexts and server breakdowns existed, so this
// test is the wire half of the PR's compatibility contract: a client
// that never sets Trace and a server that never attaches a breakdown
// put exactly the pre-tracing bytes on the wire. (The trace fields are
// omitempty pointers appended after the pre-existing fields, which is
// what makes this hold.)
func TestTracingOffByteIdentity(t *testing.T) {
	frames := []struct {
		name string
		typ  byte
		msg  any
		want string // JSON payload inside the frame
	}{
		{"stmt", TStmt, &Stmt{Text: "retrieve (e.all)"},
			`{"text":"retrieve (e.all)"}`},
		{"stmt_tx_cursor", TStmt, &Stmt{Text: "retrieve (e.all)", Tx: 3, Cursor: true, Fetch: 16},
			`{"text":"retrieve (e.all)","tx":3,"cursor":true,"fetch":16}`},
		{"prepare", TPrepare, &Prepare{Text: "retrieve (e.all)"},
			`{"text":"retrieve (e.all)"}`},
		{"stmt_exec", TStmtExec, &StmtExec{Stmt: 2, Cursor: true},
			`{"stmt":2,"cursor":true}`},
		{"stmt_close", TStmtClose, &StmtClose{Stmt: 2},
			`{"stmt":2}`},
		{"begin", TBegin, &Begin{},
			`{}`},
		{"commit", TCommit, &Commit{Tx: 4},
			`{"tx":4}`},
		{"rollback", TRollback, &Rollback{Tx: 4},
			`{"tx":4}`},
		{"fetch", TFetch, &Fetch{Cursor: 7, Max: 32},
			`{"cursor":7,"max":32}`},
		{"cursor_close", TCursorClose, &CursorClose{Cursor: 7},
			`{"cursor":7}`},
		{"result", TResult, &Result{Message: "appended", Affected: 3, CostMs: 1.5, WallNs: 42},
			`{"message":"appended","affected":3,"cost_ms":1.5,"wall_ns":42}`},
		{"result_rows", TResult, &Result{Columns: []string{"age"}, Rows: [][]int64{{30}}, Cursor: 7, More: true},
			`{"columns":["age"],"rows":[[30]],"cursor":7,"more":true}`},
		{"world_next", TWorldNext, &WorldNext{World: 1, Session: 5},
			`{"world":1,"session":5}`},
		{"world_step", TWorldStep, &WorldStep{Seq: 9, Update: true, CostMs: 2.5, WallNs: 100, WaitNs: 10},
			`{"seq":9,"update":true,"cost_ms":2.5,"wall_ns":100,"wait_ns":10}`},
		{"world_stats", TWorldStats, &WorldStats{World: 1},
			`{"world":1}`},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f.typ, f.msg); err != nil {
			t.Fatalf("%s: WriteFrame: %v", f.name, err)
		}
		b := buf.Bytes()
		if len(b) < headerSize+1 {
			t.Fatalf("%s: short frame %x", f.name, b)
		}
		got := string(b[headerSize+1:])
		if got != f.want {
			t.Errorf("%s: tracing-off payload changed\n got: %s\nwant: %s", f.name, got, f.want)
		}
	}
}
