package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// seedFrames are the canonical corpus: one well-formed frame per major
// message type plus adversarial shapes (truncations, wild lengths,
// unknown types). TestRegenCorpus writes them to testdata; the checked
// in corpus is what CI's fuzz smoke mutates from.
func seedFrames(t testing.TB) [][]byte {
	frame := func(typ byte, msg any) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, msg); err != nil {
			t.Fatalf("seed frame type %d: %v", typ, err)
		}
		return buf.Bytes()
	}
	seeds := [][]byte{
		frame(THello, &Hello{Version: Version, Client: "fuzz"}),
		frame(TStmt, &Stmt{Text: "retrieve (emp.name) where emp.dept = 4", Cursor: true, Fetch: 32}),
		frame(TPrepare, &Prepare{Text: "execute all_employees"}),
		frame(TStmtExec, &StmtExec{Stmt: 1, Tx: 2}),
		frame(TBegin, &Begin{}),
		frame(TFetch, &Fetch{Cursor: 7, Max: 128}),
		frame(TResult, &Result{Columns: []string{"name", "floor"}, Rows: [][]int64{{1, 2}, {3, 4}}, CostMs: 62, Cursor: 7, More: true}),
		frame(TError, &Error{Code: CodeBadHandle, Msg: "no cursor 9"}),
		frame(TWorldOpen, &WorldOpen{Model: "model1", Strategy: "ci", Seed: 1, Clients: 2, Ledger: true, CritPath: true}),
		frame(TWorldStep, &WorldStep{Seq: 14, Tuples: 100, CostMs: 431, WallNs: 812345, WaitNs: 1000}),
		frame(TWorldStats, &WorldStats{World: 1}),
		frame(TCancel, &Cancel{}),
		// Trace-bearing requests and breakdown-bearing responses
		// (docs/TRACING.md): the fuzzer mutates the trace/server fields
		// too, so the decoder's coverage includes the tracing shapes.
		frame(TStmt, &Stmt{Text: "retrieve (emp.all)",
			Trace: &TraceContext{TraceID: "3f2a9c1d00aa55ee", SpanID: "0000000000000001", Sampled: true}}),
		frame(TWorldNext, &WorldNext{World: 1, Session: 3,
			Trace: &TraceContext{TraceID: "deadbeefcafef00d", SpanID: "0000000000000002"}}),
		frame(TResult, &Result{Message: "committed seq 9", Affected: 1, WallNs: 52000,
			Server: &ServerBreakdown{SpanID: "00000000000000aa", WallNs: 52000,
				AdmissionNs: 1000, GateNs: 11000, ComputeNs: 40000}}),
		frame(TWorldStep, &WorldStep{Seq: 15, CostMs: 12, WallNs: 90000, WaitNs: 20000,
			IONs: 30000, RecomputeNs: 10000, ComputeNs: 30000, Phase: "storm",
			Server: &ServerBreakdown{SpanID: "00000000000000ab", WallNs: 95000,
				AdmissionNs: 5000, LockWaitNs: 20000, IONs: 30000, RecomputeNs: 10000, ComputeNs: 30000}}),
	}
	// Adversarial shapes.
	var wild [4]byte
	binary.BigEndian.PutUint32(wild[:], 0xFFFFFFFF)
	seeds = append(seeds,
		wild[:],                     // 4 GiB length claim
		[]byte{0, 0, 0, 0},          // zero length
		[]byte{0, 0, 0, 2, 99, '{'}, // unknown type, truncated JSON
		seeds[1][:len(seeds[1])/2],  // half a legitimate frame
		[]byte{0, 0},                // half a header
	)
	return seeds
}

// FuzzFrameDecode holds ReadFrame + Decode to: no panic on any input,
// and no allocation driven by the attacker-controlled length prefix
// beyond MaxFrame (ReadFrame validates the length before allocating —
// a 4 GiB claim must fail fast, not OOM).
func FuzzFrameDecode(f *testing.F) {
	for _, s := range seedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(payload) > MaxFrame {
				t.Fatalf("payload %d exceeds MaxFrame", len(payload))
			}
			// Decode must never panic, whatever the payload bytes.
			if _, err := Decode(typ, payload); err != nil {
				return
			}
		}
	})
}

// FuzzFrameRoundTrip: any payload that decodes re-encodes to a frame
// that reads and decodes back to the same message (canonical-JSON
// fixpoint), i.e. encode∘decode is idempotent on the wire.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, s := range seedFrames(f) {
		if len(s) > 5 {
			f.Add(s[4], s[5:])
		}
	}
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		msg, err := Decode(typ, payload)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, msg); err != nil {
			// Only legitimate failure: canonical encoding exceeds MaxFrame.
			if buf.Len() == 0 {
				return
			}
			t.Fatalf("re-encode wrote partial frame: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if typ2 != typ {
			t.Fatalf("type %d became %d", typ, typ2)
		}
		msg2, err := Decode(typ2, payload2)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		want, _ := json.Marshal(msg)
		got, _ := json.Marshal(msg2)
		if !bytes.Equal(want, got) {
			t.Fatalf("round trip changed message: %s -> %s", want, got)
		}
	})
}

// TestRegenCorpus rewrites the checked-in FuzzFrameDecode seed corpus
// from seedFrames. Run with WIRE_REGEN_CORPUS=1 after changing the
// frame format or message set.
func TestRegenCorpus(t *testing.T) {
	if os.Getenv("WIRE_REGEN_CORPUS") == "" {
		t.Skip("set WIRE_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzFrameDecode")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seedFrames(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
