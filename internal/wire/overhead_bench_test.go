package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The tier-4 tracing-off overhead guard (scripts/verify.sh). The trace
// plumbing added optional fields to the hot frame types — Trace on
// requests, Server on responses — all pointer-valued and omitempty, so
// an untraced frame must cost what it did before the fields existed.
// seedStmt / seedResult replicate the pre-tracing struct layouts; the
// guard interleaves both benchmarks and bounds the candidate's minimum
// against the baseline's. Byte-identity of the untraced encoding is
// pinned separately by TestTracingOffByteIdentity.

type seedStmt struct {
	Text   string `json:"text"`
	Tx     int    `json:"tx,omitempty"`
	Cursor bool   `json:"cursor,omitempty"`
	Fetch  int    `json:"fetch,omitempty"`
}

type seedResult struct {
	Message  string    `json:"message,omitempty"`
	Columns  []string  `json:"columns,omitempty"`
	Rows     [][]int64 `json:"rows,omitempty"`
	Sections []Section `json:"sections,omitempty"`
	Affected int64     `json:"affected,omitempty"`
	CostMs   float64   `json:"cost_ms,omitempty"`
	WallNs   int64     `json:"wall_ns,omitempty"`
	Cursor   int       `json:"cursor,omitempty"`
	More     bool      `json:"more,omitempty"`
}

// benchRows is a realistic small result batch: four rows of three
// columns, the shape a cursored retrieve puts in its first frame.
var benchRows = [][]int64{{1, 30, 10}, {2, 41, 20}, {3, 35, 10}, {4, 50, 20}}

// roundTrip encodes a request and a response frame into buf and decodes
// both back — one full wire exchange without the socket.
func roundTrip(b *testing.B, buf *bytes.Buffer, req any, reqOut any, res any, resOut any) {
	buf.Reset()
	if err := WriteFrame(buf, TStmt, req); err != nil {
		b.Fatal(err)
	}
	if err := WriteFrame(buf, TResult, res); err != nil {
		b.Fatal(err)
	}
	for _, out := range []any{reqOut, resOut} {
		_, payload, err := ReadFrame(buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.Unmarshal(payload, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameSeedBaseline(b *testing.B) {
	var buf bytes.Buffer
	req := &seedStmt{Text: "retrieve (emp.age) where emp.dept = 10", Cursor: true, Fetch: 4}
	res := &seedResult{Columns: []string{"tid", "age", "dept"}, Rows: benchRows,
		CostMs: 12.5, WallNs: 41_200, Cursor: 7, More: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reqOut seedStmt
		var resOut seedResult
		roundTrip(b, &buf, req, &reqOut, res, &resOut)
	}
}

func BenchmarkFrameTraceOff(b *testing.B) {
	var buf bytes.Buffer
	req := &Stmt{Text: "retrieve (emp.age) where emp.dept = 10", Cursor: true, Fetch: 4}
	res := &Result{Columns: []string{"tid", "age", "dept"}, Rows: benchRows,
		CostMs: 12.5, WallNs: 41_200, Cursor: 7, More: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reqOut Stmt
		var resOut Result
		roundTrip(b, &buf, req, &reqOut, res, &resOut)
	}
}
