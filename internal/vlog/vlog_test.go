package vlog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ids(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestBasicFlipAndRecover(t *testing.T) {
	dev := NewDevice()
	l, err := New(dev, ids(4))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if !l.Valid(id) {
			t.Fatalf("procedure %d should start valid", id)
		}
	}
	if err := l.Invalidate(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(2); err != nil {
		t.Fatal(err)
	}
	if l.Valid(0) || !l.Valid(1) || !l.Valid(2) {
		t.Fatalf("in-memory state wrong: %v", l.State())
	}

	got, err := Recover(dev.Contents())
	if err != nil {
		t.Fatal(err)
	}
	want := l.State()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for id, v := range want {
		if got[id] != v {
			t.Fatalf("id %d recovered %v, want %v", id, got[id], v)
		}
	}
}

func TestUnknownProcedureRejected(t *testing.T) {
	l, _ := New(NewDevice(), ids(2))
	if err := l.Invalidate(7); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRecoverEmptyDeviceFails(t *testing.T) {
	if _, err := Recover(nil); err == nil {
		t.Fatal("recovery without a checkpoint should fail")
	}
}

func TestRecoverCorruptKind(t *testing.T) {
	dev := NewDevice()
	l, _ := New(dev, ids(2))
	l.Invalidate(1)
	snapshot := l.State()
	// Append garbage: recovery must stop at it and keep the good prefix.
	dev.buf = append(dev.buf, 0xFF, 0x00, 0x01)
	got, err := Recover(dev.Contents())
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range snapshot {
		if got[id] != v {
			t.Fatalf("id %d = %v after corrupt tail, want %v", id, got[id], v)
		}
	}
}

func TestRecoverCorruptCRC(t *testing.T) {
	dev := NewDevice()
	l, _ := New(dev, ids(2))
	l.Invalidate(0)
	l.Invalidate(1) // this record will be corrupted
	dev.buf[len(dev.buf)-1] ^= 0x55
	got, err := Recover(dev.Contents())
	if err != nil {
		t.Fatal(err)
	}
	// id 0's flip is intact; id 1's is corrupt, so it stays valid.
	if got[0] || !got[1] {
		t.Fatalf("recovered %v, want 0 invalid and 1 valid", got)
	}
}

func TestCheckpointEvery(t *testing.T) {
	dev := NewDevice()
	l, _ := New(dev, ids(3))
	l.CheckpointEvery = 2
	before := dev.Len()
	l.Invalidate(0)
	l.Invalidate(1) // triggers an automatic checkpoint
	afterTwo := dev.Len()
	// 2 flips (9 bytes each) + one checkpoint (5 + 15 + 4 = 24 bytes).
	if afterTwo-before != 2*9+24 {
		t.Fatalf("log grew by %d, want %d", afterTwo-before, 2*9+24)
	}
	got, err := Recover(dev.Contents())
	if err != nil {
		t.Fatal(err)
	}
	if got[0] || got[1] || !got[2] {
		t.Fatalf("recovered %v", got)
	}
}

func TestTornWriteMidRecord(t *testing.T) {
	dev := NewDevice()
	l, _ := New(dev, ids(2))
	l.Invalidate(0)
	stateBefore := l.State()
	dev.FailAfter(dev.Len() + 4) // the next record tears after 4 bytes
	if err := l.Invalidate(1); err != ErrDeviceFull {
		t.Fatalf("expected ErrDeviceFull, got %v", err)
	}
	got, err := Recover(dev.Contents())
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range stateBefore {
		if got[id] != v {
			t.Fatalf("id %d = %v after torn write, want %v", id, got[id], v)
		}
	}
}

func TestTornCheckpointFallsBackToPrevious(t *testing.T) {
	dev := NewDevice()
	l, _ := New(dev, ids(3))
	l.Invalidate(0)
	expect := l.State()
	dev.FailAfter(dev.Len() + 7) // the checkpoint tears partway
	if err := l.Checkpoint(); err != ErrDeviceFull {
		t.Fatalf("expected ErrDeviceFull, got %v", err)
	}
	got, err := Recover(dev.Contents())
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range expect {
		if got[id] != v {
			t.Fatalf("id %d = %v, want %v (first checkpoint + flip)", id, got[id], v)
		}
	}
}

// Property: crash at ANY byte boundary recovers the state as of the last
// record fully written before the crash point.
func TestCrashAtAnyPointRecoversPrefixState(t *testing.T) {
	f := func(seed int64, opsRaw uint8, cutSeed uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		dev := NewDevice()
		l, err := New(dev, ids(n))
		if err != nil {
			return false
		}
		l.CheckpointEvery = 4
		// Track state-after-each-complete-append (including checkpoints'
		// implicit boundaries) by device length.
		type snap struct {
			size  int
			state map[int32]bool
		}
		snaps := []snap{{dev.Len(), l.State()}}
		ops := int(opsRaw)%40 + 5
		for i := 0; i < ops; i++ {
			id := rng.Intn(n)
			prevLen := dev.Len()
			if rng.Intn(2) == 0 {
				_ = l.Invalidate(id)
			} else {
				_ = l.Validate(id)
			}
			if dev.Len()-prevLen > 9 {
				// The flip also wrote an automatic checkpoint: the flip
				// record alone is already a complete recovery boundary
				// with the same state.
				snaps = append(snaps, snap{prevLen + 9, l.State()})
			}
			snaps = append(snaps, snap{dev.Len(), l.State()})
		}
		// Crash: truncate at an arbitrary point.
		cut := int(cutSeed) % (dev.Len() + 1)
		got, err := Recover(dev.Contents()[:cut])
		if cut < snaps[0].size {
			// Before the first complete checkpoint: recovery must refuse.
			return err != nil
		}
		if err != nil {
			return false
		}
		// Find the last snapshot fully contained in the cut.
		var want map[int32]bool
		for _, s := range snaps {
			if s.size <= cut {
				want = s.state
			}
		}
		if len(got) != len(want) {
			return false
		}
		for id, v := range want {
			if got[id] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringAutoCheckpoint targets the checkpoint a flip triggers
// internally (CheckpointEvery): size-based arming cannot easily isolate
// it, but count-based injection can — the write sequence here is the
// initial checkpoint (1), two flips (2, 3), then the automatic
// checkpoint (4). The flip record itself lands intact, so recovery
// returns the state including that flip, served from the previous
// complete checkpoint plus the log tail.
func TestCrashDuringAutoCheckpoint(t *testing.T) {
	for _, off := range []int{0, 1, 7, 23} {
		dev := NewDevice()
		l, _ := New(dev, ids(3))
		l.CheckpointEvery = 2
		dev.FailOnWrite(4, off)
		if err := l.Invalidate(0); err != nil {
			t.Fatal(err)
		}
		if err := l.Invalidate(1); err != ErrDeviceFull {
			t.Fatalf("off %d: auto-checkpoint should tear, got %v", off, err)
		}
		if !dev.Dead() {
			t.Fatal("device should be dead after the injected failure")
		}
		got, err := Recover(dev.Contents())
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		// Both flips' records were fully written before the checkpoint
		// tore, so recovery sees them.
		if got[0] || got[1] || !got[2] {
			t.Fatalf("off %d: recovered %v, want 0,1 invalid and 2 valid", off, got)
		}
	}
}

// TestFailOnWriteEveryOffset tears a flip record at every possible byte
// offset; recovery must always return the state as of the previous
// record.
func TestFailOnWriteEveryOffset(t *testing.T) {
	for off := 0; off <= 9; off++ {
		dev := NewDevice()
		l, _ := New(dev, ids(2))
		if err := l.Invalidate(0); err != nil {
			t.Fatal(err)
		}
		want := l.State()
		dev.FailOnWrite(3, off) // writes: checkpoint, flip(0), flip(1)
		err := l.Invalidate(1)
		if off >= 9 {
			// The tear offset covers the whole record: the write still
			// fails, but the record is complete on disk and recovery may
			// legitimately include it.
			if err != ErrDeviceFull {
				t.Fatalf("off %d: got %v", off, err)
			}
			continue
		}
		if err != ErrDeviceFull {
			t.Fatalf("off %d: expected ErrDeviceFull, got %v", off, err)
		}
		got, rerr := Recover(dev.Contents())
		if rerr != nil {
			t.Fatalf("off %d: %v", off, rerr)
		}
		for id, v := range want {
			if got[id] != v {
				t.Fatalf("off %d: id %d = %v, want %v", off, id, got[id], v)
			}
		}
	}
}

// TestDeviceDeadAfterFailure verifies the crashed device accepts nothing
// further — the log cannot silently keep appending past its own crash.
func TestDeviceDeadAfterFailure(t *testing.T) {
	dev := NewDevice()
	l, _ := New(dev, ids(2))
	dev.FailOnWrite(2, 0)
	if err := l.Invalidate(0); err != ErrDeviceFull {
		t.Fatalf("expected ErrDeviceFull, got %v", err)
	}
	size := dev.Len()
	if err := l.Invalidate(1); err != ErrDeviceDead {
		t.Fatalf("expected ErrDeviceDead, got %v", err)
	}
	if err := l.Checkpoint(); err != ErrDeviceDead {
		t.Fatalf("checkpoint on dead device: got %v", err)
	}
	if dev.Len() != size {
		t.Fatal("dead device stored bytes")
	}
	// The in-memory table must not have applied the failed flips.
	if !l.Valid(0) || !l.Valid(1) {
		t.Fatalf("failed flips leaked into memory: %v", l.State())
	}
}
