// Package vlog implements the recoverable validity table the paper
// sketches for Cache and Invalidate (section 3): instead of flagging
// invalidation on the cached object's first page (two I/Os, the expensive
// C_inval = 2·C2 regime of Figure 4), the system keeps the validity table
// in memory and makes it recoverable with conventional write-ahead logging
// [Gra78] — append the identifier of each procedure whose validity flips,
// checkpoint the whole table periodically, and after a crash replay the
// log tail against the last checkpoint.
//
// The log writes to a Device, an append-only byte store with optional
// write-failure injection so tests can crash the system mid-record and
// verify that recovery returns exactly the state as of the last fully
// written record. Every record carries a CRC32; recovery stops at the
// first torn or corrupt record.
package vlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Record kinds.
const (
	kindInvalidate = byte(1)
	kindValidate   = byte(2)
	kindCheckpoint = byte(3)
)

// ErrDeviceFull is returned when the device's injected failure point is
// reached; the write may be torn.
var ErrDeviceFull = errors.New("vlog: device write failed")

// ErrDeviceDead is returned for every write after a failure has fired:
// the crashed device accepts nothing further, so a test cannot
// accidentally keep logging past its own simulated crash.
var ErrDeviceDead = errors.New("vlog: device is dead after injected failure")

// Device is an append-only byte store with two fault-injection modes.
//
// FailAfter arms a size-based crash: once the total bytes written would
// exceed the threshold, the write is truncated at the boundary and
// ErrDeviceFull returned — a torn write, exactly what recovery must
// tolerate. FailOnWrite arms a count-based crash: the nth append call
// (1-based) tears after a given byte offset within that write, which can
// target a specific logical record — e.g. the checkpoint that a flip
// triggers automatically — independent of how many bytes preceded it.
//
// After either failure fires the device is dead: every later append
// returns ErrDeviceDead without storing anything, as a crashed disk
// would.
type Device struct {
	buf       []byte
	failAfter int // total-size threshold; -1 = never
	failOnNth int // 1-based write index; 0 = never
	failAtOff int // tear offset within the failing write
	writes    int // appends attempted so far
	dead      bool
}

// NewDevice returns an empty device with no failure point.
func NewDevice() *Device { return &Device{failAfter: -1} }

// FailAfter arms the crash point at the given total size in bytes.
func (d *Device) FailAfter(n int) { d.failAfter = n }

// FailOnWrite arms a crash on the nth append call (1-based), tearing it
// after off bytes (off = 0 loses the write entirely; off >= the write's
// length still fails but tears nothing).
func (d *Device) FailOnWrite(nth, off int) {
	if nth < 1 || off < 0 {
		panic("vlog: invalid FailOnWrite arming")
	}
	d.failOnNth = nth
	d.failAtOff = off
}

// Writes returns the number of append calls attempted.
func (d *Device) Writes() int { return d.writes }

// Dead reports whether an injected failure has fired.
func (d *Device) Dead() bool { return d.dead }

// Len returns the bytes stored.
func (d *Device) Len() int { return len(d.buf) }

// Contents returns the raw bytes (for handing to Recover).
func (d *Device) Contents() []byte { return d.buf }

// append writes p, honoring the failure points.
func (d *Device) append(p []byte) error {
	if d.dead {
		return ErrDeviceDead
	}
	d.writes++
	if d.failOnNth > 0 && d.writes == d.failOnNth {
		d.dead = true
		room := d.failAtOff
		if room > len(p) {
			room = len(p)
		}
		d.buf = append(d.buf, p[:room]...)
		return ErrDeviceFull
	}
	if d.failAfter >= 0 && len(d.buf)+len(p) > d.failAfter {
		d.dead = true
		room := d.failAfter - len(d.buf)
		if room > 0 {
			d.buf = append(d.buf, p[:room]...)
		}
		return ErrDeviceFull
	}
	d.buf = append(d.buf, p...)
	return nil
}

// Log is a write-ahead validity log. It is safe for concurrent use: each
// flip (and the checkpoint it may trigger) appends and updates the
// in-memory table atomically with respect to other flips and reads.
type Log struct {
	// CheckpointEvery triggers an automatic checkpoint after this many
	// appended flip records (0 disables automatic checkpoints). Set it
	// before the log is shared between sessions.
	CheckpointEvery int

	mu              sync.Mutex
	dev             *Device
	sinceCheckpoint int
	state           map[int32]bool // procedure id -> valid
	observer        func(event string, id int, detail string)
}

// SetObserver registers a callback notified after each log transition:
// "vlog.flip" on a successful flip, "vlog.checkpoint" on a checkpoint
// (id -1), and "vlog.fault" when the device rejects a write (detail
// carries the error) — the flight recorder's validity-log feed, where a
// fault triggers an automatic dump. The callback runs with the log's
// mutex held; it must not call back into the Log.
func (l *Log) SetObserver(fn func(event string, id int, detail string)) {
	l.mu.Lock()
	l.observer = fn
	l.mu.Unlock()
}

// notify invokes the observer; callers hold l.mu.
func (l *Log) notify(event string, id int, detail string) {
	if l.observer != nil {
		l.observer(event, id, detail)
	}
}

// New creates a log on dev whose initial state marks every given
// procedure id valid, and writes that state as the first checkpoint.
func New(dev *Device, ids []int32) (*Log, error) {
	l := &Log{dev: dev, state: make(map[int32]bool, len(ids))}
	for _, id := range ids {
		l.state[id] = true
	}
	if err := l.Checkpoint(); err != nil {
		return nil, err
	}
	return l, nil
}

// record encodes one flip record: kind, id, crc of the payload.
func record(kind byte, id int32) []byte {
	var b [9]byte
	b[0] = kind
	binary.LittleEndian.PutUint32(b[1:], uint32(id))
	binary.LittleEndian.PutUint32(b[5:], crc32.ChecksumIEEE(b[:5]))
	return b[:]
}

func (l *Log) flip(kind byte, id int32, valid bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, known := l.state[id]; !known {
		return fmt.Errorf("vlog: unknown procedure %d", id)
	}
	if err := l.dev.append(record(kind, id)); err != nil {
		l.notify("vlog.fault", int(id), err.Error())
		return err
	}
	l.state[id] = valid
	l.notify("vlog.flip", int(id), "")
	l.sinceCheckpoint++
	if l.CheckpointEvery > 0 && l.sinceCheckpoint >= l.CheckpointEvery {
		return l.checkpoint()
	}
	return nil
}

// Invalidate durably records that procedure id's cached value is invalid.
func (l *Log) Invalidate(id int) error { return l.flip(kindInvalidate, int32(id), false) }

// Validate durably records that procedure id's cached value was refreshed.
func (l *Log) Validate(id int) error { return l.flip(kindValidate, int32(id), true) }

// Valid reports the in-memory state for id.
func (l *Log) Valid(id int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state[int32(id)]
}

// State returns a copy of the full validity table.
func (l *Log) State() map[int32]bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int32]bool, len(l.state))
	for id, v := range l.state {
		out[id] = v
	}
	return out
}

// Checkpoint writes the complete validity table. Recovery needs only the
// log suffix from the last complete checkpoint, so in a real system the
// prefix could be truncated; the simulated device keeps it for test
// introspection.
//
// Layout: kind, count, count x (id, validByte), crc of everything prior.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint()
}

func (l *Log) checkpoint() error {
	ids := make([]int32, 0, len(l.state))
	for id := range l.state {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, 5+5*len(ids)+4)
	buf = append(buf, kindCheckpoint)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(ids)))
	buf = append(buf, n[:]...)
	for _, id := range ids {
		var e [5]byte
		binary.LittleEndian.PutUint32(e[:], uint32(id))
		if l.state[id] {
			e[4] = 1
		}
		buf = append(buf, e[:]...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)
	if err := l.dev.append(buf); err != nil {
		l.notify("vlog.fault", -1, err.Error())
		return err
	}
	l.sinceCheckpoint = 0
	l.notify("vlog.checkpoint", -1, "")
	return nil
}

// Recover scans a device's contents and rebuilds the validity table as of
// the last fully written record: the most recent complete checkpoint plus
// every complete flip record after it. A torn or corrupt record ends the
// scan (everything before it is intact — the write-ahead property).
func Recover(contents []byte) (map[int32]bool, error) {
	var state map[int32]bool
	pos := 0
	sawCheckpoint := false
	for pos < len(contents) {
		kind := contents[pos]
		switch kind {
		case kindInvalidate, kindValidate:
			if pos+9 > len(contents) {
				return finish(state, sawCheckpoint) // torn tail
			}
			rec := contents[pos : pos+9]
			if crc32.ChecksumIEEE(rec[:5]) != binary.LittleEndian.Uint32(rec[5:]) {
				return finish(state, sawCheckpoint)
			}
			if state != nil {
				id := int32(binary.LittleEndian.Uint32(rec[1:]))
				state[id] = kind == kindValidate
			}
			pos += 9
		case kindCheckpoint:
			if pos+5 > len(contents) {
				return finish(state, sawCheckpoint)
			}
			count := int(binary.LittleEndian.Uint32(contents[pos+1:]))
			end := pos + 5 + 5*count
			if end+4 > len(contents) {
				return finish(state, sawCheckpoint)
			}
			body := contents[pos:end]
			if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(contents[end:]) {
				return finish(state, sawCheckpoint)
			}
			cp := make(map[int32]bool, count)
			for i := 0; i < count; i++ {
				e := contents[pos+5+5*i:]
				cp[int32(binary.LittleEndian.Uint32(e))] = e[4] == 1
			}
			state = cp
			sawCheckpoint = true
			pos = end + 4
		default:
			return finish(state, sawCheckpoint) // corrupt kind byte
		}
	}
	return finish(state, sawCheckpoint)
}

func finish(state map[int32]bool, sawCheckpoint bool) (map[int32]bool, error) {
	if !sawCheckpoint {
		return nil, errors.New("vlog: no complete checkpoint found")
	}
	return state, nil
}
