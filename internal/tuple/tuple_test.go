package tuple

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSchemaLayout(t *testing.T) {
	s := NewSchema("emp", 100, Field{"tid"}, Field{"skey"}, Field{"salary"})
	if s.Name() != "emp" || s.Width() != 100 || s.NumFields() != 3 {
		t.Fatalf("schema basics wrong: %v %v %v", s.Name(), s.Width(), s.NumFields())
	}
	if s.FieldIndex("skey") != 1 || s.FieldIndex("nope") != -1 {
		t.Fatal("FieldIndex wrong")
	}
	if s.FieldName(2) != "salary" {
		t.Fatal("FieldName wrong")
	}
	tup := s.New()
	if len(tup) != 100 {
		t.Fatalf("New() length %d", len(tup))
	}
	s.Set(tup, 0, 7)
	s.SetByName(tup, "skey", -42)
	s.Set(tup, 2, 1<<40)
	if s.Get(tup, 0) != 7 || s.GetByName(tup, "skey") != -42 || s.Get(tup, 2) != 1<<40 {
		t.Fatalf("round trip failed: %s", s.String(tup))
	}
	if got := s.String(tup); !strings.Contains(got, "skey=-42") || !strings.HasPrefix(got, "emp(") {
		t.Fatalf("String = %q", got)
	}
}

func TestSchemaPanics(t *testing.T) {
	s := NewSchema("r", 16, Field{"a"}, Field{"b"})
	for name, fn := range map[string]func(){
		"width too small":     func() { NewSchema("x", 8, Field{"a"}, Field{"b"}) },
		"no fields":           func() { NewSchema("x", 8) },
		"duplicate field":     func() { NewSchema("x", 32, Field{"a"}, Field{"a"}) },
		"empty name":          func() { NewSchema("x", 32, Field{""}) },
		"wrong tuple width":   func() { s.Get(make([]byte, 8), 0) },
		"field out of range":  func() { s.Get(s.New(), 2) },
		"negative field":      func() { s.Set(s.New(), -1, 0) },
		"unknown byname":      func() { s.GetByName(s.New(), "zzz") },
		"MustFieldIndex miss": func() { s.MustFieldIndex("zzz") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClusterKeyOrdering(t *testing.T) {
	// Keys order by value first, id second.
	f := func(v1, v2, id1, id2 uint32) bool {
		k1 := ClusterKey(int64(v1), int64(id1))
		k2 := ClusterKey(int64(v2), int64(id2))
		switch {
		case v1 < v2:
			return k1 < k2
		case v1 > v2:
			return k1 > k2
		default:
			return (id1 < id2) == (k1 < k2) && (id1 == id2) == (k1 == k2)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterKeyRoundTrip(t *testing.T) {
	f := func(v, id uint32) bool {
		k := ClusterKey(int64(v), int64(id))
		return ClusterKeyValue(k) == int64(v) && ClusterKeyID(k) == int64(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterKeyBounds(t *testing.T) {
	lo, hi := MinKeyFor(5), MaxKeyFor(5)
	if lo > hi {
		t.Fatal("MinKeyFor > MaxKeyFor")
	}
	if ClusterKeyValue(lo) != 5 || ClusterKeyValue(hi) != 5 {
		t.Fatal("bounds have wrong value part")
	}
	// Every key with value 5 lies within [lo, hi]; value 6 lies above.
	if k := ClusterKey(5, 12345); k < lo || k > hi {
		t.Fatal("key escaped its value bounds")
	}
	if k := ClusterKey(6, 0); k <= hi {
		t.Fatal("next value's key not above MaxKeyFor")
	}
}

func TestClusterKeyPanics(t *testing.T) {
	for _, pair := range [][2]int64{{-1, 0}, {0, -1}, {1 << 33, 0}, {0, 1 << 33}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ClusterKey(%d, %d) should panic", pair[0], pair[1])
				}
			}()
			ClusterKey(pair[0], pair[1])
		}()
	}
}
