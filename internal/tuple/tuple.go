// Package tuple defines fixed-width tuples and their schemas. The paper's
// model uses S-byte tuples throughout (base relations and procedure
// results alike); a Schema lays out named int64 attributes at the front of
// an S-byte record, with the remainder as uninterpreted payload padding.
package tuple

import (
	"encoding/binary"
	"fmt"
)

// Field describes one named attribute of a schema. All attributes are
// int64s, stored little-endian; the paper's predicates (attribute op
// constant, attribute op attribute) only need ordered numeric values.
type Field struct {
	// Name identifies the attribute, e.g. "skey" or "salary".
	Name string
}

// Schema describes the layout of a fixed-width tuple: len(Fields) int64
// attributes at offsets 0, 8, 16, ..., then padding up to Width bytes.
type Schema struct {
	name   string
	fields []Field
	width  int
	byName map[string]int
}

// NewSchema builds a schema with the given byte width and attributes. The
// attributes must fit in the width and names must be unique.
func NewSchema(name string, width int, fields ...Field) *Schema {
	if width < 8*len(fields) {
		panic(fmt.Sprintf("tuple: %d fields need %d bytes, width is %d", len(fields), 8*len(fields), width))
	}
	if len(fields) == 0 {
		panic("tuple: schema needs at least one field")
	}
	byName := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			panic("tuple: empty field name")
		}
		if _, dup := byName[f.Name]; dup {
			panic("tuple: duplicate field name " + f.Name)
		}
		byName[f.Name] = i
	}
	return &Schema{name: name, fields: append([]Field(nil), fields...), width: width, byName: byName}
}

// Name returns the schema's name.
func (s *Schema) Name() string { return s.name }

// Width returns the tuple width in bytes (the paper's S).
func (s *Schema) Width() int { return s.width }

// NumFields returns the number of attributes.
func (s *Schema) NumFields() int { return len(s.fields) }

// FieldName returns the name of attribute i.
func (s *Schema) FieldName(i int) string { return s.fields[i].Name }

// FieldIndex returns the index of the named attribute, or -1.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustFieldIndex is FieldIndex but panics on an unknown name.
func (s *Schema) MustFieldIndex(name string) int {
	i := s.FieldIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("tuple: schema %q has no field %q", s.name, name))
	}
	return i
}

// New returns a zeroed tuple of this schema.
func (s *Schema) New() []byte { return make([]byte, s.width) }

// Get reads attribute i from tup.
func (s *Schema) Get(tup []byte, i int) int64 {
	s.check(tup, i)
	return int64(binary.LittleEndian.Uint64(tup[8*i:]))
}

// Set writes attribute i of tup.
func (s *Schema) Set(tup []byte, i int, v int64) {
	s.check(tup, i)
	binary.LittleEndian.PutUint64(tup[8*i:], uint64(v))
}

// GetByName reads the named attribute.
func (s *Schema) GetByName(tup []byte, name string) int64 {
	return s.Get(tup, s.MustFieldIndex(name))
}

// SetByName writes the named attribute.
func (s *Schema) SetByName(tup []byte, name string, v int64) {
	s.Set(tup, s.MustFieldIndex(name), v)
}

func (s *Schema) check(tup []byte, i int) {
	if len(tup) != s.width {
		panic(fmt.Sprintf("tuple: %d-byte tuple for %d-byte schema %q", len(tup), s.width, s.name))
	}
	if i < 0 || i >= len(s.fields) {
		panic(fmt.Sprintf("tuple: field %d out of range in schema %q", i, s.name))
	}
}

// String formats a tuple's attributes for debugging.
func (s *Schema) String(tup []byte) string {
	out := s.name + "("
	for i, f := range s.fields {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%d", f.Name, s.Get(tup, i))
	}
	return out + ")"
}

// Concat builds the schema of a join result: left's attributes (names
// unchanged) followed by right's attributes with rightPrefix prepended, in
// a tuple of the given width. The paper keeps result tuples at the same
// S-byte width as base tuples, so the combined attributes must fit within
// width; joins of narrow attribute sets into S = 100 bytes always do.
func Concat(name string, width int, left *Schema, right *Schema, rightPrefix string) *Schema {
	fields := make([]Field, 0, left.NumFields()+right.NumFields())
	for _, f := range left.fields {
		fields = append(fields, f)
	}
	for _, f := range right.fields {
		fields = append(fields, Field{Name: rightPrefix + f.Name})
	}
	return NewSchema(name, width, fields...)
}

// ClusterKey packs an attribute value and a unique tuple id into a single
// uint64 ordering key: tuples sort by value first, id second. Both must be
// non-negative and fit 32 bits, plenty for the paper's N = 100,000.
func ClusterKey(value, id int64) uint64 {
	if value < 0 || value > 0xFFFFFFFF || id < 0 || id > 0xFFFFFFFF {
		panic(fmt.Sprintf("tuple: cluster key parts out of range: value=%d id=%d", value, id))
	}
	return uint64(value)<<32 | uint64(id)
}

// ClusterKeyValue extracts the attribute value from a cluster key.
func ClusterKeyValue(key uint64) int64 { return int64(key >> 32) }

// ClusterKeyID extracts the tuple id from a cluster key.
func ClusterKeyID(key uint64) int64 { return int64(key & 0xFFFFFFFF) }

// MinKeyFor and MaxKeyFor bound the cluster keys of all tuples whose
// attribute value lies in [lo, hi].
func MinKeyFor(lo int64) uint64 { return ClusterKey(lo, 0) }

// MaxKeyFor returns the largest cluster key for attribute value hi.
func MaxKeyFor(hi int64) uint64 { return ClusterKey(hi, 0xFFFFFFFF) }
