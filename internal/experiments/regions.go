package experiments

import (
	"context"
	"fmt"

	"dbproc/internal/costmodel"
)

// Region maps sweep object size f (columns, log scale) against update
// probability P (rows) and mark each cell with the winning strategy:
// R = Always Recompute, C = Cache and Invalidate, A = Update Cache (AVM),
// V = Update Cache (RVM).

var regionPs = costmodel.LinSpace(0.02, 0.95, 16)
var regionFs = costmodel.LogSpace(1e-5, 0.05, 14)

func strategyLetter(s costmodel.Strategy) string {
	switch s {
	case costmodel.AlwaysRecompute:
		return "R"
	case costmodel.CacheInvalidate:
		return "C"
	case costmodel.UpdateCacheAVM:
		return "A"
	case costmodel.UpdateCacheRVM:
		return "V"
	default:
		return "?"
	}
}

func regionHeader() []string {
	h := []string{"P \\ f"}
	for _, f := range regionFs {
		h = append(h, fmt.Sprintf("%.0e", f))
	}
	return h
}

// regionExperiment renders a winner map for a base parameter set.
func regionExperiment(id, title, note string, model costmodel.Model, mutate func(*costmodel.Params)) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(context.Context, Options) []*Table {
			base := costmodel.Default()
			if mutate != nil {
				mutate(&base)
			}
			g := costmodel.WinnerGrid(model, base, regionPs, regionFs)
			t := &Table{
				ID: id, Title: title,
				Note:   note + " R=Recompute C=Cache&Invalidate A=UC-AVM V=UC-RVM.",
				Header: regionHeader(),
			}
			for i, up := range g.Ps {
				row := []string{fmt.Sprintf("%.2f", up)}
				for j := range g.Fs {
					row = append(row, strategyLetter(g.Cells[i][j].Best))
				}
				t.Rows = append(t.Rows, row)
			}
			return []*Table{t}
		},
	}
}

// closenessExperiment renders where C&I is within the given factor of the
// best Update Cache variant.
func closenessExperiment(id, title, note string, factor float64, mutate func(*costmodel.Params)) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(context.Context, Options) []*Table {
			base := costmodel.Default()
			if mutate != nil {
				mutate(&base)
			}
			g := costmodel.WinnerGrid(costmodel.Model1, base, regionPs, regionFs)
			t := &Table{
				ID: id, Title: title,
				Note:   note + fmt.Sprintf(" '*' = C&I within %.0fx of Update Cache, '.' = not.", factor),
				Header: regionHeader(),
			}
			for i, up := range g.Ps {
				row := []string{fmt.Sprintf("%.2f", up)}
				for j := range g.Fs {
					cell := "."
					if g.Cells[i][j].CacheInvalWithinFactor(factor) {
						cell = "*"
					}
					row = append(row, cell)
				}
				t.Rows = append(t.Rows, row)
			}
			return []*Table{t}
		},
	}
}

func init() {
	register(regionExperiment("fig12",
		"Winner regions: update probability vs object size (model 1)",
		"Paper Figure 12: Update Cache wins a narrower P-range for large objects.",
		costmodel.Model1, nil))

	register(regionExperiment("fig13",
		"Winner regions with high locality (Z = 0.05)",
		"Paper Figure 13: locality expands the C&I region, especially for small objects.",
		costmodel.Model1,
		func(p *costmodel.Params) { p.Z = 0.05 }))

	register(closenessExperiment("fig14",
		"Closeness of C&I to Update Cache (factor 2)",
		"Paper Figure 14.", 2, nil))

	register(closenessExperiment("fig15",
		"Closeness of C&I to Update Cache with no false invalidations (f2 = 1)",
		"Paper Figure 15: without false invalidations C&I is close for small objects too.",
		2,
		func(p *costmodel.Params) { p.F2 = 1 }))

	register(regionExperiment("fig19",
		"Winner regions (model 2)",
		"Paper Figure 19: like Figure 12 but the winning Update Cache variant is RVM (SF=0.5 > crossover).",
		costmodel.Model2,
		func(p *costmodel.Params) { p.SF = 0.6 }))
}
