package experiments

import (
	"context"
	"fmt"

	"dbproc/internal/costmodel"
	"dbproc/internal/sim"
)

// componentTable renders an Update Cache cost-component breakdown (the
// tables of sections 4.3, 4.4, 6.3 and 6.4).
func componentTable(id, title string, comps func(costmodel.Model, costmodel.Params) []costmodel.Component) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(context.Context, Options) []*Table {
			p := costmodel.Default()
			t := &Table{
				ID: id, Title: title,
				Note:   "Default parameters; per-update components are multiplied by k/q in the per-access total.",
				Header: []string{"component", "paid per", "model 1 (ms)", "model 2 (ms)"},
			}
			m1 := comps(costmodel.Model1, p)
			m2 := comps(costmodel.Model2, p)
			for i, c := range m1 {
				per := "access"
				if c.PerUpdate {
					per = "update"
				}
				name := c.Name
				v2 := fmtMs(m2[i].Value)
				if m2[i].Name != c.Name {
					name = c.Name + " / " + m2[i].Name
				}
				t.Rows = append(t.Rows, []string{name, per, fmtMs(c.Value), v2})
			}
			return []*Table{t}
		},
	}
}

func init() {
	register(componentTable("tbl-avm",
		"AVM cost components (sections 4.3 and 6.3)", costmodel.AVMComponents))
	register(componentTable("tbl-rvm",
		"RVM cost components (sections 4.4 and 6.4)", costmodel.RVMComponents))

	register(Experiment{
		ID:    "claims",
		Title: "Section 8 quantitative claims",
		Run: func(ctx context.Context, opt Options) []*Table {
			t := &Table{
				ID: "claims", Title: "Section 8 quantitative claims",
				Header: []string{"claim", "paper", "model", "simulated"},
			}
			// Claim 1: speedups at f = 0.0001, P = 0.1.
			p := costmodel.Default().WithUpdateProbability(0.1)
			p.F = 0.0001
			rc := costmodel.RecomputeCost(costmodel.Model1, p)
			ci := rc / costmodel.CacheInvalidateCost(costmodel.Model1, p)
			uc := rc / costmodel.AVMCost(costmodel.Model1, p)
			simCI, simUC := "-", "-"
			if opt.Sim {
				sp := scaled(p, opt)
				sp.K *= 4
				sp.Q *= 4 // reach the steady state the closed forms describe
				var cfgs []sim.Config
				for _, s := range []costmodel.Strategy{costmodel.AlwaysRecompute, costmodel.CacheInvalidate, costmodel.UpdateCacheAVM} {
					cfgs = append(cfgs, sim.Config{Params: sp, Model: costmodel.Model1, Strategy: s, Seed: opt.SimSeed})
				}
				if results, err := simCells(ctx, opt, cfgs); err == nil {
					simRC := results[0].MsPerQuery
					simCI = fmt.Sprintf("%.1fx", simRC/results[1].MsPerQuery)
					simUC = fmt.Sprintf("%.1fx", simRC/results[2].MsPerQuery)
				}
			}
			t.Rows = append(t.Rows, []string{
				"C&I speedup over Recompute (f=1e-4, P=0.1)", "~5x",
				fmt.Sprintf("%.1fx", ci), simCI})
			t.Rows = append(t.Rows, []string{
				"Update Cache speedup over Recompute (f=1e-4, P=0.1)", "~7x",
				fmt.Sprintf("%.1fx", uc), simUC})

			// Claim 2: model-2 crossover SF.
			cross := sharingCrossover(costmodel.Model2)
			t.Rows = append(t.Rows, []string{
				"AVM = RVM crossover SF (model 2)", "~0.47",
				fmt.Sprintf("%.2f", cross), "-"})
			// Claim 3: model-1 crossover only near SF = 1.
			cross1 := sharingCrossover(costmodel.Model1)
			t.Rows = append(t.Rows, []string{
				"AVM = RVM crossover SF (model 1)", "~1",
				fmt.Sprintf("%.2f", cross1), "-"})
			return []*Table{t}
		},
	})
}

// sharingCrossover bisects for the SF where AVM and RVM cost the same;
// returns 1 if RVM never becomes cheaper.
func sharingCrossover(m costmodel.Model) float64 {
	p := costmodel.Default()
	diff := func(sf float64) float64 {
		p.SF = sf
		return costmodel.AVMCost(m, p) - costmodel.RVMCost(m, p)
	}
	if diff(1) < 0 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if diff(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
