package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRendersCurves(t *testing.T) {
	tb := runOne(t, "fig05", Options{})[0]
	if !tb.Chartable() {
		t.Fatal("fig05 should be chartable")
	}
	var buf bytes.Buffer
	tb.Chart(&buf)
	out := buf.String()
	for _, want := range []string{"log y", "R=Recompute", "C=C&I", "(*=overlap)", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != chartHeight+4 {
		t.Fatalf("chart has %d lines, want %d", len(lines), chartHeight+4)
	}
	// Every series symbol appears somewhere in the plot body.
	body := strings.Join(lines[1:chartHeight+1], "\n")
	for _, sym := range []string{"R", "C", "U", "V"} {
		if !strings.Contains(body, sym) && !strings.Contains(body, "*") {
			t.Errorf("series %s never plotted", sym)
		}
	}
}

func TestChartSkipsNonCurves(t *testing.T) {
	tb := runOne(t, "fig12", Options{})[0] // region letters, not numbers
	if tb.Chartable() {
		t.Fatal("region grid should not be chartable")
	}
	var buf bytes.Buffer
	tb.Chart(&buf)
	if buf.Len() != 0 {
		t.Fatal("Chart drew a non-chartable table")
	}
	// Parameter table likewise.
	tb2 := runOne(t, "fig02", Options{})[0]
	if tb2.Chartable() {
		t.Fatal("parameter table should not be chartable")
	}
}

func TestSeriesSymbolsDistinct(t *testing.T) {
	syms := seriesSymbols([]string{"Recompute", "C&I", "UC-AVM", "UC-RVM", "sim:Recompute", "zzz", "zzz", "zzz"})
	seen := map[rune]bool{}
	for i, s := range syms {
		if s == '*' || s == ' ' {
			t.Fatalf("symbol %d is reserved %q", i, s)
		}
		if seen[s] {
			t.Fatalf("duplicate symbol %q", s)
		}
		seen[s] = true
	}
}
