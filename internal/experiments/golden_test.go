package experiments

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"dbproc/internal/dbtest"
)

// TestGoldenScenarioVerdicts is the golden-verdict regression gate: the
// checked-in BENCH_scenarios.json must be exactly reproducible from its
// own recorded (scale, seed) — every row, every per-seed total, and
// every winner verdict. A deliberate change to the workload, the
// scenario catalog or the cost model shows up here as a diff to commit;
// an accidental one shows up as a failure.
func TestGoldenScenarioVerdicts(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	data, err := os.ReadFile("../../BENCH_scenarios.json")
	if err != nil {
		t.Skipf("benchmark artifact not present: %v", err)
	}
	var golden ScenarioBenchReport
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("BENCH_scenarios.json: %v", err)
	}
	if len(golden.Scenarios) < 7 || len(golden.Verdicts) != len(golden.Scenarios)*2 {
		t.Fatalf("artifact too small: %d scenarios, %d verdicts", len(golden.Scenarios), len(golden.Verdicts))
	}

	got := ScenarioBench(context.Background(), Options{Scale: golden.Scale, SimSeed: golden.Seed})
	if !reflect.DeepEqual(got.Scenarios, golden.Scenarios) {
		t.Fatalf("scenario axis drifted:\n got  %v\n want %v", got.Scenarios, golden.Scenarios)
	}
	if !reflect.DeepEqual(got.Rows, golden.Rows) {
		for i := range got.Rows {
			if i < len(golden.Rows) && !reflect.DeepEqual(got.Rows[i], golden.Rows[i]) {
				t.Fatalf("row %d diverges from the artifact:\n got  %+v\n want %+v", i, got.Rows[i], golden.Rows[i])
			}
		}
		t.Fatalf("rows diverge from the artifact (%d vs %d rows)", len(got.Rows), len(golden.Rows))
	}
	if !reflect.DeepEqual(got.Verdicts, golden.Verdicts) {
		for i := range got.Verdicts {
			if i < len(golden.Verdicts) && !reflect.DeepEqual(got.Verdicts[i], golden.Verdicts[i]) {
				t.Fatalf("verdict %d diverges from the artifact:\n got  %+v\n want %+v", i, got.Verdicts[i], golden.Verdicts[i])
			}
		}
		t.Fatalf("verdicts diverge from the artifact (%d vs %d)", len(got.Verdicts), len(golden.Verdicts))
	}
}
