package experiments

import (
	"context"
	"fmt"
	"math"

	"dbproc/internal/costmodel"
	"dbproc/internal/sim"
)

// Extension experiments: questions the paper raises but does not analyze.
// These are simulation-only — there is no closed form in the paper to
// compare against — and run at reduced scale by default.

func init() {
	register(Experiment{
		ID: "ext-adaptive",
		Title: "EXTENSION: adaptive per-procedure caching vs the pure strategies " +
			"(section 8: the 'whether to cache' decision problem)",
		Run: func(ctx context.Context, opt Options) []*Table {
			base := costmodel.Default()
			base.CInval = 60 // the regime where caching mistakes are costly
			scale := opt.Scale
			if scale <= 1 {
				scale = 5
			}
			seed := opt.SimSeed
			if seed == 0 {
				seed = 1
			}
			sp := scaled(base, Options{Scale: scale})
			sp.Q *= 20 // long runs so each procedure sees enough accesses to adapt
			sp.K *= 20
			t := &Table{
				ID: "ext-adaptive",
				Title: fmt.Sprintf("Measured ms/query vs P with C_inval = 60 ms (1/%.0f scale)",
					scale),
				Note: "Adaptive drops procedures to a no-cache bypass when their accesses are\n" +
					"almost always cold, then tracks whichever pure strategy is cheaper —\n" +
					"without knowing P in advance.",
				Header: []string{"P", "Recompute", "C&I", "Adaptive"},
			}
			ups := []float64{0.05, 0.2, 0.5, 0.8, 0.95}
			var cfgs []sim.Config
			for _, up := range ups {
				pp := sp.WithUpdateProbability(up)
				for _, s := range []costmodel.Strategy{costmodel.AlwaysRecompute, costmodel.CacheInvalidate} {
					cfgs = append(cfgs, sim.Config{Params: pp, Model: costmodel.Model1, Strategy: s, Seed: seed})
				}
				cfgs = append(cfgs, sim.Config{Params: pp, Model: costmodel.Model1, Adaptive: true, Seed: seed})
			}
			results, err := simCells(ctx, opt, cfgs)
			if err != nil {
				return []*Table{t}
			}
			for i, up := range ups {
				row := []string{fmt.Sprintf("%.2f", up)}
				for c := 0; c < 3; c++ {
					row = append(row, fmtMs(results[i*3+c].MsPerQuery))
				}
				t.Rows = append(t.Rows, row)
			}
			return []*Table{t}
		},
	})

	register(Experiment{
		ID: "ext-sensitivity",
		Title: "EXTENSION: cost sensitivity to each model parameter " +
			"(±50% around the defaults, P = 0.3)",
		Run: func(context.Context, Options) []*Table {
			base := costmodel.Default().WithUpdateProbability(0.3)
			t := &Table{
				ID:    "ext-sensitivity",
				Title: "Percent cost change when one parameter moves ±50% (model 1, P = 0.3)",
				Note: "Each cell is (cost at 1.5x param / cost at 0.5x param - 1): how strongly\n" +
					"the strategy's cost depends on that parameter. The paper varies f, P, SF,\n" +
					"Z and n; this sweeps everything at once.",
				Header: []string{"parameter", "Recompute", "C&I", "UC-AVM", "UC-RVM"},
			}
			params := []struct {
				name string
				set  func(*costmodel.Params, float64)
				get  func(costmodel.Params) float64
			}{
				{"f (object size)", func(p *costmodel.Params, v float64) { p.F = v }, func(p costmodel.Params) float64 { return p.F }},
				{"f2", func(p *costmodel.Params, v float64) { p.F2 = v }, func(p costmodel.Params) float64 { return p.F2 }},
				{"l (tuples/update)", func(p *costmodel.Params, v float64) { p.L = v }, func(p costmodel.Params) float64 { return p.L }},
				{"N1+N2 (objects)", func(p *costmodel.Params, v float64) { p.N1, p.N2 = v, v }, func(p costmodel.Params) float64 { return p.N1 }},
				{"Z (locality)", func(p *costmodel.Params, v float64) { p.Z = v }, func(p costmodel.Params) float64 { return p.Z }},
				{"C2 (page I/O ms)", func(p *costmodel.Params, v float64) { p.C2 = v }, func(p costmodel.Params) float64 { return p.C2 }},
				{"SF (sharing)", func(p *costmodel.Params, v float64) { p.SF = v }, func(p costmodel.Params) float64 { return p.SF }},
			}
			for _, prm := range params {
				row := []string{prm.name}
				for _, s := range costmodel.Strategies {
					lo, hi := base, base
					v := prm.get(base)
					prm.set(&lo, 0.5*v)
					prm.set(&hi, 1.5*v)
					if err := hi.Validate(); err != nil {
						// Clamp fractions that would exceed their domain.
						prm.set(&hi, math.Min(1.5*v, 0.99))
					}
					cLo := costmodel.Cost(costmodel.Model1, s, lo)
					cHi := costmodel.Cost(costmodel.Model1, s, hi)
					row = append(row, fmt.Sprintf("%+.0f%%", 100*(cHi/cLo-1)))
				}
				t.Rows = append(t.Rows, row)
			}
			return []*Table{t}
		},
	})

	register(Experiment{
		ID: "ext-ip",
		Title: "EXTENSION: invalidation probability, model vs measured " +
			"(the IP formula's Jensen bias quantified)",
		Run: func(ctx context.Context, opt Options) []*Table {
			base := costmodel.Default()
			scale := opt.Scale
			if scale <= 1 {
				scale = 5
			}
			seed := opt.SimSeed
			if seed == 0 {
				seed = 1
			}
			sp := scaled(base, Options{Scale: scale})
			sp.K *= 20
			sp.Q *= 20 // long runs: steady-state IP
			t := &Table{
				ID: "ext-ip",
				Title: fmt.Sprintf("Invalidation probability vs P (1/%.0f scale, k=q=%0.f base)",
					scale, sp.Q),
				Note: "The model evaluates 1-(1-f)^(G*2l) at the MEAN inter-access gap G; the\n" +
					"function is concave in G, so the expectation over actual random gaps is\n" +
					"smaller (Jensen's inequality). The measured column is the cold-access\n" +
					"fraction of a real Cache-and-Invalidate run.",
				Header: []string{"P", "model IP", "measured IP", "bias"},
			}
			ups := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
			cfgs := make([]sim.Config, len(ups))
			for i, up := range ups {
				cfgs[i] = sim.Config{Params: sp.WithUpdateProbability(up), Model: costmodel.Model1, Strategy: costmodel.CacheInvalidate, Seed: seed}
			}
			results, err := simCells(ctx, opt, cfgs)
			if err != nil {
				return []*Table{t}
			}
			for i, up := range ups {
				pp := sp.WithUpdateProbability(up)
				modelIP := costmodel.CacheInvalidateCosts(costmodel.Model1, pp).IP
				res := results[i]
				measured, bias := "n/a", "n/a"
				if res.HasColdFraction() {
					measured = fmt.Sprintf("%.3f", res.ColdFraction)
					if res.ColdFraction != 0 {
						bias = fmt.Sprintf("%+.0f%%", 100*(modelIP-res.ColdFraction)/res.ColdFraction)
					}
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%.1f", up),
					fmt.Sprintf("%.3f", modelIP),
					measured,
					bias,
				})
			}
			return []*Table{t}
		},
	})

	register(Experiment{
		ID: "ext-r2updates",
		Title: "EXTENSION: cost vs fraction of updates hitting R2 " +
			"(section 8: relative update frequency across relations)",
		Run: func(ctx context.Context, opt Options) []*Table {
			base := costmodel.Default()
			scale := opt.Scale
			if scale <= 1 {
				scale = 5 // simulation-only: default to a faster scale
			}
			p := scaled(base, Options{Scale: scale})
			seed := opt.SimSeed
			if seed == 0 {
				seed = 1
			}
			t := &Table{
				ID: "ext-r2updates",
				Title: fmt.Sprintf("Measured ms/query vs R2-update fraction (P = 0.5, 1/%.0f scale)",
					scale),
				Note: "The paper's model assumes R2 is never updated. When it is, Update Cache's\n" +
					"static maintenance plans must join R2 deltas back through a direction R1 has\n" +
					"no index for, so both variants degrade while C&I's key i-locks absorb it.",
				Header: []string{"R2 frac", "Recompute", "C&I", "UC-AVM", "UC-RVM"},
			}
			fracs := []float64{0, 0.25, 0.5, 0.75, 1}
			var cfgs []sim.Config
			for _, frac := range fracs {
				for _, s := range costmodel.Strategies {
					cfgs = append(cfgs, sim.Config{
						Params:           p,
						Model:            costmodel.Model1,
						Strategy:         s,
						Seed:             seed,
						R2UpdateFraction: frac,
					})
				}
			}
			results, err := simCells(ctx, opt, cfgs)
			if err != nil {
				return []*Table{t}
			}
			for i, frac := range fracs {
				row := []string{fmt.Sprintf("%.2f", frac)}
				for c := range costmodel.Strategies {
					row = append(row, fmtMs(results[i*len(costmodel.Strategies)+c].MsPerQuery))
				}
				t.Rows = append(t.Rows, row)
			}
			return []*Table{t}
		},
	})
}
