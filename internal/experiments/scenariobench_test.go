package experiments

import (
	"context"
	"reflect"
	"testing"
	"time"

	"dbproc/internal/dbtest"
	"dbproc/internal/workload"
)

// TestScenarioBenchDeterministicAcrossWorkers: the scenario benchmark
// must render byte-identical reports for any worker count (the standing
// workers=1 ≡ workers=N contract).
func TestScenarioBenchDeterministicAcrossWorkers(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	opt := Options{Scale: 5, SimSeed: 1, Scenarios: []string{"hot-key-storm", "adversarial-inval"}}
	opt.Workers = 1
	a := ScenarioBench(context.Background(), opt)
	opt.Workers = 4
	b := ScenarioBench(context.Background(), opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scenario benchmark differs between workers=1 and workers=4")
	}
}

// TestScenarioBenchShape checks the report grid is complete and the
// verdicts are internally consistent with their rows.
func TestScenarioBenchShape(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	opt := Options{Scale: 5, SimSeed: 1, Scenarios: []string{"flash-crowd", "nested-batched"}}
	rep := ScenarioBench(context.Background(), opt)

	wantScenarios := []string{PoliteScenario, "flash-crowd", "nested-batched"}
	if !reflect.DeepEqual(rep.Scenarios, wantScenarios) {
		t.Fatalf("scenario axis %v, want %v", rep.Scenarios, wantScenarios)
	}
	if want := len(wantScenarios) * 2 * 4; len(rep.Rows) != want {
		t.Fatalf("%d rows, want %d", len(rep.Rows), want)
	}
	if want := len(wantScenarios) * 2; len(rep.Verdicts) != want {
		t.Fatalf("%d verdicts, want %d", len(rep.Verdicts), want)
	}
	caching := map[string]bool{
		"Cache and Invalidate": true, "Update Cache (AVM)": true, "Update Cache (RVM)": true,
	}
	for _, row := range rep.Rows {
		if len(row.PerSeedTotalMs) != rep.SeedsPerCell {
			t.Fatalf("row %s/%s/%s has %d per-seed totals", row.Scenario, row.Model, row.Strategy, len(row.PerSeedTotalMs))
		}
		if row.Queries <= 0 {
			t.Fatalf("row %s/%s/%s ran no queries", row.Scenario, row.Model, row.Strategy)
		}
		if caching[row.Strategy] && row.LedgerEventMs == nil {
			t.Fatalf("caching row %s/%s/%s carries no ledger evidence", row.Scenario, row.Model, row.Strategy)
		}
		if !caching[row.Strategy] && row.LedgerEventMs != nil {
			t.Fatalf("non-caching row %s/%s/%s carries ledger evidence", row.Scenario, row.Model, row.Strategy)
		}
	}
	for _, v := range rep.Verdicts {
		if v.Winner == "" || v.RunnerUp == "" || v.CachingWinner == "" {
			t.Fatalf("verdict %s/%s incomplete: %+v", v.Scenario, v.Model, v)
		}
		if !caching[v.CachingWinner] {
			t.Fatalf("caching winner %q is not a caching strategy", v.CachingWinner)
		}
		if len(v.PerSeedWinners) != rep.SeedsPerCell || len(v.PerSeedCachingWinners) != rep.SeedsPerCell {
			t.Fatalf("verdict %s/%s per-seed winners incomplete: %+v", v.Scenario, v.Model, v)
		}
		if v.Scenario == PoliteScenario && v.Flipped {
			t.Fatal("polite baseline flipped from itself")
		}
		if v.PoliteWinner == "" {
			t.Fatalf("verdict %s/%s has no polite baseline", v.Scenario, v.Model)
		}
		if v.Flipped != (v.Scenario != PoliteScenario && v.Winner != v.PoliteWinner) {
			t.Fatalf("verdict %s/%s flip flag inconsistent", v.Scenario, v.Model)
		}
	}
}

// TestScenarioBenchVerdictMatchesRows re-derives every verdict from the
// report's rows alone — the same re-derivation procadvisor -scenarios
// performs — and checks it reproduces the recorded winners.
func TestScenarioBenchVerdictMatchesRows(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	opt := Options{Scale: 5, SimSeed: 1, Scenarios: []string{"bulk-load", "storm-adversarial"}}
	rep := ScenarioBench(context.Background(), opt)
	for _, v := range rep.Verdicts {
		var rows []ScenarioBenchRow
		for _, r := range rep.Rows {
			if r.Scenario == v.Scenario && r.Model == v.Model {
				rows = append(rows, r)
			}
		}
		got := deriveVerdict(v.Scenario, v.Model, rows)
		if got.Winner != v.Winner || got.CachingWinner != v.CachingWinner ||
			!reflect.DeepEqual(got.PerSeedWinners, v.PerSeedWinners) ||
			!reflect.DeepEqual(got.PerSeedCachingWinners, v.PerSeedCachingWinners) {
			t.Fatalf("re-derived verdict diverges for %s/%s:\n got  %+v\n want %+v", v.Scenario, v.Model, got, v)
		}
	}
}

// TestScenarioListIncludesCatalog: with no filter, the benchmark sweeps
// the polite baseline plus the entire catalog.
func TestScenarioListIncludesCatalog(t *testing.T) {
	got := scenarioList(Options{})
	want := append([]string{PoliteScenario}, workload.Names()...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scenario list %v, want %v", got, want)
	}
	if len(want) < 7 {
		t.Fatalf("catalog too small: %v", want)
	}
}
