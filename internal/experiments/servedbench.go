package experiments

import (
	"context"
	"database/sql"
	"fmt"
	"sync"
	"time"

	"dbproc/client"
	"dbproc/internal/costmodel"
	"dbproc/internal/metric"
	"dbproc/internal/wire"
)

// ServedResult is one workload measured through procserved: the same
// aggregate quantities an in-process engine run reports, but produced by
// real wire round-trips — the first multi-client numbers on this
// codebase that are measured rather than schedule-projected.
type ServedResult struct {
	Clients int
	Ops     int
	Queries int
	Updates int
	// WallSec is client-side elapsed wall-clock over the whole drive;
	// ThroughputOps is Ops over it. Both include wire round-trip time,
	// which is the point.
	WallSec       float64
	ThroughputOps float64
	// SimTotalMs and Counters are the server-side world's aggregate
	// simulated cost and counters; with one client they are byte-equal
	// to sim.Run on the same Config.
	SimTotalMs float64
	Counters   metric.Counters
	// HistoryDigest canonically hashes the committed history
	// (server.HistoryDigest), comparable against an in-process run.
	HistoryDigest string
}

// WireStrategy and WireModel name costmodel enums in the wire protocol's
// vocabulary (the same short names cmd/procsim's -strategy flag takes).
func WireStrategy(s costmodel.Strategy) string {
	switch s {
	case costmodel.AlwaysRecompute:
		return "recompute"
	case costmodel.CacheInvalidate:
		return "ci"
	case costmodel.UpdateCacheAVM:
		return "uc-avm"
	case costmodel.UpdateCacheRVM:
		return "uc-rvm"
	}
	return s.String()
}

func WireModel(m costmodel.Model) string {
	if m == costmodel.Model2 {
		return "2"
	}
	return "1"
}

// DriveServed runs one workload through the procserved at addr: it opens
// a bench world over the control connection, then drives every session
// concurrently through the standard database/sql driver — one pooled
// connection per session, each step a "@bench next" statement — and
// finally collects the world's sealed statistics. The server deals the
// canonical operation stream exactly like engine.Run, so the committed
// per-session streams match an in-process run's.
func DriveServed(ctx context.Context, addr string, open *wire.WorldOpen) (*ServedResult, error) {
	control, err := client.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("served: dial control: %w", err)
	}
	defer control.Close()
	opened, err := control.WorldOpen(ctx, open)
	if err != nil {
		return nil, fmt.Errorf("served: open world: %w", err)
	}
	defer control.WorldClose(context.Background(), opened.World)

	db, err := sql.Open("dbproc", addr)
	if err != nil {
		return nil, fmt.Errorf("served: open driver: %w", err)
	}
	defer db.Close()
	db.SetMaxOpenConns(opened.Sessions)

	errCh := make(chan error, opened.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < opened.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			step := fmt.Sprintf("@bench next %d %d", opened.World, s)
			for {
				if ctx.Err() != nil {
					errCh <- ctx.Err()
					return
				}
				res, err := db.ExecContext(ctx, step)
				if err != nil {
					errCh <- fmt.Errorf("served: session %d: %w", s, err)
					return
				}
				if n, _ := res.RowsAffected(); n == 0 {
					return
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}

	stats, err := control.WorldStats(ctx, opened.World)
	if err != nil {
		return nil, fmt.Errorf("served: world stats: %w", err)
	}
	out := &ServedResult{
		Clients:       opened.Sessions,
		Ops:           stats.Ops,
		Queries:       stats.Queries,
		Updates:       stats.Updates,
		WallSec:       wall,
		SimTotalMs:    stats.SimTotalMs,
		Counters:      stats.Counters,
		HistoryDigest: stats.HistoryDigest,
	}
	if wall > 0 {
		out.ThroughputOps = float64(stats.Ops) / wall
	}
	return out, nil
}
