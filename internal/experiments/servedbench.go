package experiments

import (
	"context"
	"database/sql"
	"fmt"
	"sync"
	"time"

	"dbproc/client"
	"dbproc/internal/costmodel"
	"dbproc/internal/metric"
	"dbproc/internal/server"
	"dbproc/internal/wire"
)

// ServedResult is one workload measured through procserved: the same
// aggregate quantities an in-process engine run reports, but produced by
// real wire round-trips — the first multi-client numbers on this
// codebase that are measured rather than schedule-projected.
type ServedResult struct {
	Clients int
	Ops     int
	Queries int
	Updates int
	// WallSec is client-side elapsed wall-clock over the whole drive;
	// ThroughputOps is Ops over it. Both include wire round-trip time,
	// which is the point.
	WallSec       float64
	ThroughputOps float64
	// SimTotalMs and Counters are the server-side world's aggregate
	// simulated cost and counters; with one client they are byte-equal
	// to sim.Run on the same Config.
	SimTotalMs float64
	Counters   metric.Counters
	// HistoryDigest canonically hashes the committed history
	// (server.HistoryDigest), comparable against an in-process run.
	HistoryDigest string
}

// WireStrategy and WireModel name costmodel enums in the wire protocol's
// vocabulary (the same short names cmd/procsim's -strategy flag takes).
func WireStrategy(s costmodel.Strategy) string {
	switch s {
	case costmodel.AlwaysRecompute:
		return "recompute"
	case costmodel.CacheInvalidate:
		return "ci"
	case costmodel.UpdateCacheAVM:
		return "uc-avm"
	case costmodel.UpdateCacheRVM:
		return "uc-rvm"
	}
	return s.String()
}

func WireModel(m costmodel.Model) string {
	if m == costmodel.Model2 {
		return "2"
	}
	return "1"
}

// DriveServed runs one workload through the procserved at addr: it opens
// a bench world over the control connection, then drives every session
// concurrently through the standard database/sql driver — one pooled
// connection per session, each step a "@bench next" statement — and
// finally collects the world's sealed statistics. The server deals the
// canonical operation stream exactly like engine.Run, so the committed
// per-session streams match an in-process run's.
func DriveServed(ctx context.Context, addr string, open *wire.WorldOpen) (*ServedResult, error) {
	control, err := client.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("served: dial control: %w", err)
	}
	defer control.Close()
	opened, err := control.WorldOpen(ctx, open)
	if err != nil {
		return nil, fmt.Errorf("served: open world: %w", err)
	}
	defer control.WorldClose(context.Background(), opened.World)

	db, err := sql.Open("dbproc", addr)
	if err != nil {
		return nil, fmt.Errorf("served: open driver: %w", err)
	}
	defer db.Close()
	db.SetMaxOpenConns(opened.Sessions)

	errCh := make(chan error, opened.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < opened.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			step := fmt.Sprintf("@bench next %d %d", opened.World, s)
			for {
				if ctx.Err() != nil {
					errCh <- ctx.Err()
					return
				}
				res, err := db.ExecContext(ctx, step)
				if err != nil {
					errCh <- fmt.Errorf("served: session %d: %w", s, err)
					return
				}
				if n, _ := res.RowsAffected(); n == 0 {
					return
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}

	stats, err := control.WorldStats(ctx, opened.World)
	if err != nil {
		return nil, fmt.Errorf("served: world stats: %w", err)
	}
	out := &ServedResult{
		Clients:       opened.Sessions,
		Ops:           stats.Ops,
		Queries:       stats.Queries,
		Updates:       stats.Updates,
		WallSec:       wall,
		SimTotalMs:    stats.SimTotalMs,
		Counters:      stats.Counters,
		HistoryDigest: stats.HistoryDigest,
	}
	if wall > 0 {
		out.ThroughputOps = float64(stats.Ops) / wall
	}
	return out, nil
}

// ServedLatencyRow is one row of the served-path latency decomposition
// in BENCH_obs.json (docs/TRACING.md): a mixed gated-statement plus
// bench-world workload driven through traced driver connections, with
// the driver-observed client wall split into its wire and server-side
// shares. NetworkShare is derived time on the wire (client wall minus
// server wall, per request); GateShare and LockWaitShare surface the
// two served-path queueing segments — the capacity-1 statement gate and
// the engine's lock table — as fractions of the same client wall, so
// the 1-client and 8-client rows show where added concurrency goes.
type ServedLatencyRow struct {
	Clients int `json:"clients"`
	// Requests counts traced round trips; WithServer the subset whose
	// response carried a server breakdown (and therefore contributes to
	// the share columns' numerators).
	Requests   int64 `json:"requests"`
	WithServer int64 `json:"with_server"`
	// ClientWallMs / ServerWallMs are the summed driver-stamped and
	// server-reported walls across all traced requests.
	ClientWallMs  float64 `json:"client_wall_ms"`
	ServerWallMs  float64 `json:"server_wall_ms"`
	NetworkShare  float64 `json:"network_share"`
	GateShare     float64 `json:"gate_share"`
	LockWaitShare float64 `json:"lock_wait_share"`
}

// ServedLatencyBench measures the served path's latency decomposition
// against a loopback procserved at each requested client count. Unlike
// the report's simulated rows these are wall-clock measurements — the
// shares vary run to run; the simulated rows stay byte-identical.
func ServedLatencyBench(ctx context.Context, opt Options, clientCounts ...int) ([]ServedLatencyRow, error) {
	srv := server.New(server.Options{})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("served latency: listen: %w", err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	p := scaled(costmodel.Default(), opt)
	var rows []ServedLatencyRow
	for _, n := range clientCounts {
		row, err := servedLatencyCell(ctx, addr, p, opt.SimSeed, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// servedLatencyCell drives one client count: every connection is traced,
// so each response carries the server's exact wall partition and the
// tracer aggregates the decomposition for free.
func servedLatencyCell(ctx context.Context, addr string, p costmodel.Params, seed int64, clients int) (*ServedLatencyRow, error) {
	tracer := client.NewTracer(nil)
	control, err := client.DialTraced(addr, tracer)
	if err != nil {
		return nil, fmt.Errorf("served latency: dial: %w", err)
	}
	defer control.Close()

	// Phase 1 — gated statements: the server serializes statement
	// execution through a capacity-1 gate, so concurrent appenders
	// accumulate GateNs in their breakdowns. A per-cell relation keeps
	// the cells independent on the shared server database.
	rel := fmt.Sprintf("lat%d", clients)
	if _, err := control.Exec(ctx, fmt.Sprintf("create %s (tid, v) cluster on v", rel)); err != nil {
		return nil, fmt.Errorf("served latency: create: %w", err)
	}
	const appendsPerClient = 12
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cn, err := client.DialTraced(addr, tracer)
			if err != nil {
				errs[c] = err
				return
			}
			defer cn.Close()
			for i := 0; i < appendsPerClient; i++ {
				stmt := fmt.Sprintf("append to %s (tid = %d, v = %d)", rel, c*appendsPerClient+i, i)
				if _, err := cn.Exec(ctx, stmt); err != nil {
					errs[c] = err
					return
				}
			}
			if _, err := cn.Query(ctx, fmt.Sprintf("retrieve (%s.all)", rel), 0); err != nil {
				errs[c] = err
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("served latency: statements: %w", err)
		}
	}

	// Phase 2 — a hostile bench world with the critical path armed:
	// world.next breakdowns carry the engine's lock-wait / io /
	// recompute split, and hot-key-storm traffic makes the lock table
	// genuinely queue once several sessions drive it (a polite workload
	// barely contends here — each session has at most one step in
	// flight, paced by its own wire round trips).
	opened, err := control.WorldOpen(ctx, &wire.WorldOpen{
		Params: p, Model: "1", Strategy: "ci",
		Seed: seed, Clients: clients, CritPath: true,
		Scenario: "hot-key-storm", R2UpdateFraction: 0.3,
	})
	if err != nil {
		return nil, fmt.Errorf("served latency: open world: %w", err)
	}
	defer control.WorldClose(context.Background(), opened.World)
	for c := 0; c < opened.Sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cn, err := client.DialTraced(addr, tracer)
			if err != nil {
				errs[c] = err
				return
			}
			defer cn.Close()
			for {
				step, err := cn.WorldNext(ctx, opened.World, c)
				if err != nil {
					errs[c] = err
					return
				}
				if step.Done {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("served latency: world: %w", err)
		}
	}

	st := tracer.Stats()
	row := &ServedLatencyRow{
		Clients:      clients,
		Requests:     st.Requests,
		WithServer:   st.WithServer,
		ClientWallMs: float64(st.ClientWallNs) / 1e6,
		ServerWallMs: float64(st.ServerWallNs) / 1e6,
	}
	if st.ClientWallNs > 0 {
		wall := float64(st.ClientWallNs)
		row.NetworkShare = float64(st.NetworkNs) / wall
		row.GateShare = float64(st.GateNs) / wall
		row.LockWaitShare = float64(st.LockWaitNs) / wall
	}
	return row, nil
}
