package experiments

import (
	"bytes"
	"context"
	"math"
	"strconv"
	"strings"
	"testing"

	"dbproc/internal/costmodel"
)

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"fig02", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig17",
		"fig18", "fig19", "tbl-avm", "tbl-rvm", "abl-dispatch", "abl-locks", "abl-rootpin", "claims", "ext-adaptive", "ext-ip", "ext-r2updates", "ext-sensitivity",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("Get(%q) missed", id)
		}
	}
	if _, ok := Get("fig99"); ok {
		t.Error("Get of unknown id succeeded")
	}
}

func runOne(t *testing.T, id string, opt Options) []*Table {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	tables := e.Run(context.Background(), opt)
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 || len(tb.Header) == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s row width %d != header width %d", id, len(row), len(tb.Header))
			}
		}
	}
	return tables
}

func TestAllExperimentsRunAnalytically(t *testing.T) {
	for _, e := range All() {
		runOne(t, e.ID, Options{})
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig05Shape(t *testing.T) {
	tb := runOne(t, "fig05", Options{})[0]
	// Columns: P, Recompute, C&I, AVM, RVM.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if cell(t, first[0]) != 0 || cell(t, last[0]) != 0.95 {
		t.Fatalf("P sweep endpoints wrong: %v .. %v", first[0], last[0])
	}
	// At P=0 caching strategies tie at the read cost, far below recompute.
	if cell(t, first[2]) != cell(t, first[3]) || cell(t, first[3]) != cell(t, first[4]) {
		t.Errorf("caching strategies should tie at P=0: %v", first)
	}
	if cell(t, first[1]) < 10*cell(t, first[2]) {
		t.Errorf("recompute should dwarf cached read at P=0: %v", first)
	}
	// At P=0.95 Update Cache exceeds C&I.
	if cell(t, last[3]) <= cell(t, last[2]) {
		t.Errorf("at P=0.95 AVM should exceed C&I: %v", last)
	}
	// Recompute column is flat.
	for _, row := range tb.Rows {
		if cell(t, row[1]) != cell(t, first[1]) {
			t.Errorf("recompute cost should not vary with P: %v", row)
		}
	}
}

func TestFig04MoreExpensiveThanFig05(t *testing.T) {
	t4 := runOne(t, "fig04", Options{})[0]
	t5 := runOne(t, "fig05", Options{})[0]
	// Same P grid; C&I column must be >= everywhere and > at P > 0.
	for i := range t4.Rows {
		c4, c5 := cell(t, t4.Rows[i][2]), cell(t, t5.Rows[i][2])
		if c4 < c5 {
			t.Fatalf("row %d: C_inval=60 cost %v below C_inval=0 cost %v", i, c4, c5)
		}
		if i > 0 && c4 == c5 {
			t.Fatalf("row %d: C_inval had no effect at P>0", i)
		}
	}
}

func TestFig18ReportsCrossover(t *testing.T) {
	tb := runOne(t, "fig18", Options{})[0]
	if !strings.Contains(tb.Note, "crossover at SF") {
		t.Fatalf("fig18 note lacks crossover: %q", tb.Note)
	}
	// Extract the computed value (the last "SF ≈" in the note; the static
	// text also cites the paper's 0.47).
	idx := strings.LastIndex(tb.Note, "SF ≈ ")
	v, err := strconv.ParseFloat(strings.TrimSuffix(tb.Note[idx+len("SF ≈ "):], "."), 64)
	if err != nil {
		t.Fatalf("cannot parse crossover from %q", tb.Note)
	}
	if v < 0.40 || v > 0.55 {
		t.Errorf("model-2 crossover %.2f, paper reports ~0.47", v)
	}
	// Model 1 must NOT cross in (0, 1) interior: fig11's note has either no
	// crossover or one at SF ~= 1.
	tb11 := runOne(t, "fig11", Options{})[0]
	if i := strings.LastIndex(tb11.Note, "SF ≈ "); i >= 0 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(tb11.Note[i+len("SF ≈ "):], "."), 64)
		if v < 0.9 {
			t.Errorf("model-1 crossover at %.2f; paper says RVM competitive only near SF=1", v)
		}
	}
}

func TestRegionGridLetters(t *testing.T) {
	tb := runOne(t, "fig12", Options{})[0]
	seen := map[string]bool{}
	for _, row := range tb.Rows {
		for _, c := range row[1:] {
			if c != "R" && c != "C" && c != "A" && c != "V" {
				t.Fatalf("unexpected region letter %q", c)
			}
			seen[c] = true
		}
	}
	if !seen["R"] {
		t.Error("Always Recompute never wins; high-P rows should be R")
	}
	if !seen["A"] && !seen["V"] {
		t.Error("Update Cache never wins; low-P rows should be A or V")
	}
	// fig19 (model 2, SF above crossover): the UC winner should be V.
	tb19 := runOne(t, "fig19", Options{})[0]
	for _, row := range tb19.Rows {
		for _, c := range row[1:] {
			if c == "A" {
				t.Fatal("AVM wins a model-2 cell at SF=0.6; RVM should dominate")
			}
		}
	}
}

func TestClosenessGridF2OneIsLarger(t *testing.T) {
	count := func(id string) int {
		tb := runOne(t, id, Options{})[0]
		n := 0
		for _, row := range tb.Rows {
			for _, c := range row[1:] {
				if c == "*" {
					n++
				}
			}
		}
		return n
	}
	if c14, c15 := count("fig14"), count("fig15"); c15 < c14 {
		t.Errorf("fig15 (no false invalidations) has %d close cells < fig14's %d", c15, c14)
	}
}

func TestClaimsTable(t *testing.T) {
	tb := runOne(t, "claims", Options{})[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("claims rows = %d, want 4", len(tb.Rows))
	}
}

func TestRenderAlignment(t *testing.T) {
	tb := runOne(t, "fig02", Options{})[0]
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== fig02") || !strings.Contains(out, "tuples in R1") {
		t.Fatalf("render output wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < len(tb.Rows)+2 {
		t.Fatalf("render produced %d lines", len(lines))
	}
}

// TestSimulatedCurveValidatesModel runs fig05 with scaled simulation and
// checks every simulated point lands within a factor of 4 of the analytic
// prediction at the SAME scaled parameters. (Scaled-down populations are
// noisy — a handful of procedures and queries — so this is a sanity band;
// full-scale agreement, within ~±20%, is asserted in package sim.)
func TestSimulatedCurveValidatesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := Options{Sim: true, SimPoints: 3, SimSeed: 5, Scale: 4}
	tb := runOne(t, "fig05", opt)[0]
	base := costmodel.Default()
	sp := scaled(base, opt)
	for _, row := range tb.Rows {
		if row[5] == "-" {
			continue
		}
		up := cell(t, row[0])
		for si, s := range costmodel.Strategies {
			measured := cell(t, row[5+si])
			predicted := costmodel.Cost(costmodel.Model1, s, sp.WithUpdateProbability(up))
			if predicted == 0 {
				continue
			}
			ratio := measured / predicted
			if math.IsNaN(ratio) || ratio < 0.25 || ratio > 4 {
				t.Errorf("P=%v %v: measured %v vs predicted (scaled) %v", up, s, measured, predicted)
			}
		}
	}
}

func TestScaledPreservesShape(t *testing.T) {
	p := costmodel.Default()
	sp := scaled(p, Options{Scale: 10})
	if sp.N != 10000 || sp.N1 != 10 || sp.N2 != 10 || sp.K != 10 || sp.Q != 10 {
		t.Fatalf("scaled = %+v", sp)
	}
	if sp.F != p.F || sp.S != p.S || sp.B != p.B {
		t.Fatal("scaling must not touch selectivities or page geometry")
	}
	if got := scaled(p, Options{}); got != p {
		t.Fatal("scale<=1 must be identity")
	}
}
