package experiments

import (
	"context"
	"testing"
)

// TestConcurrentBenchShape runs the concurrent benchmark at heavy scale
// reduction and checks the report's structural invariants: full ladder
// coverage per strategy/model, sequential identity on every one-client
// row, and positive throughput everywhere.
func TestConcurrentBenchShape(t *testing.T) {
	opt := Options{Scale: 50, SimSeed: 3, Clients: 2}
	rep := ConcurrentBench(context.Background(), opt)

	// 4 strategies x 2 models x ladder {1, 2}, plus one storm-adversarial
	// contention row per strategy/model at the ladder's top rung.
	if want := 4*2*2 + 4*2; len(rep.Rows) != want {
		t.Fatalf("report has %d rows, want %d", len(rep.Rows), want)
	}
	scenarioRows := 0
	for _, row := range rep.Rows {
		if row.Scenario != "" {
			scenarioRows++
			if row.Scenario != "storm-adversarial" {
				t.Errorf("%s/%s: scenario row %q, want storm-adversarial", row.Strategy, row.Model, row.Scenario)
			}
			if row.Clients != 2 {
				t.Errorf("%s/%s: scenario row at clients=%d, want top rung 2", row.Strategy, row.Model, row.Clients)
			}
			if row.AccessWaitShare2PL <= 0 {
				t.Errorf("%s/%s: scenario row missing 2PL wait-share baseline", row.Strategy, row.Model)
			}
		}
		if row.ThroughputOps <= 0 {
			t.Errorf("%s/%s clients=%d: throughput %v", row.Strategy, row.Model, row.Clients, row.ThroughputOps)
		}
		if row.Clients == 1 {
			if !row.MatchesSequential {
				t.Errorf("%s/%s: one-client row diverges from sequential run", row.Strategy, row.Model)
			}
			if row.Speedup != 1 {
				t.Errorf("%s/%s: one-client speedup %v, want 1", row.Strategy, row.Model, row.Speedup)
			}
		}
		if row.SimTotalMs <= 0 {
			t.Errorf("%s/%s clients=%d: simulated cost %v", row.Strategy, row.Model, row.Clients, row.SimTotalMs)
		}
		// The latch-free schedule bound: a list schedule can never beat
		// the worker count nor lose to serial execution.
		if row.WallParallelSpeedup < 1 || row.WallParallelSpeedup > float64(row.Clients)+1e-9 {
			t.Errorf("%s/%s clients=%d: wall_parallel_speedup %v outside [1, clients]",
				row.Strategy, row.Model, row.Clients, row.WallParallelSpeedup)
		}
		if row.Clients == 1 && row.WallParallelSpeedup != 1 {
			t.Errorf("%s/%s: one-client schedule bound %v, want 1", row.Strategy, row.Model, row.WallParallelSpeedup)
		}
	}
	if scenarioRows != 4*2 {
		t.Errorf("report has %d scenario rows, want %d", scenarioRows, 4*2)
	}
}

// TestConcurrentBenchLadderCap checks opt.Clients trims and extends the
// ladder correctly.
func TestConcurrentBenchLadderCap(t *testing.T) {
	opt := Options{Scale: 50, SimSeed: 3, Clients: 3}
	rep := ConcurrentBench(context.Background(), opt)
	seen := map[int]bool{}
	for _, row := range rep.Rows {
		seen[row.Clients] = true
	}
	for _, want := range []int{1, 2, 3} {
		if !seen[want] {
			t.Errorf("ladder missing clients=%d: %v", want, seen)
		}
	}
	if seen[4] || seen[8] {
		t.Errorf("ladder not capped at 3: %v", seen)
	}
}
