package experiments

import (
	"context"
	"fmt"
	"math"

	"dbproc/internal/costmodel"
	"dbproc/internal/sim"
)

// sweepPs are the update-probability points for cost-vs-P curves. P = 1 is
// not representable (cost per query diverges); 0.95 shows the asymptote.
var sweepPs = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// curveExperiment builds a cost-vs-update-probability figure: the four
// strategies' analytic cost at each P, plus simulated validation columns
// when requested.
func curveExperiment(id, title, note string, model costmodel.Model, mutate func(*costmodel.Params)) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(ctx context.Context, opt Options) []*Table {
			base := costmodel.Default()
			if mutate != nil {
				mutate(&base)
			}
			t := &Table{
				ID:     id,
				Title:  title,
				Note:   note,
				Header: []string{"P", "Recompute", "C&I", "UC-AVM", "UC-RVM"},
			}
			if opt.Sim {
				t.Header = append(t.Header, "sim:Recompute", "sim:C&I", "sim:AVM", "sim:RVM")
			}
			simEvery := 1
			if opt.Sim && opt.SimPoints > 0 && opt.SimPoints < len(sweepPs) {
				simEvery = (len(sweepPs) + opt.SimPoints - 1) / opt.SimPoints
			}
			// Fan the measured cells out in canonical row-major order
			// (P point, then strategy); the reduction consumes them in
			// the same order below.
			var cfgs []sim.Config
			if opt.Sim {
				for i, up := range sweepPs {
					if i%simEvery != 0 {
						continue
					}
					sp := scaled(base, opt).WithUpdateProbability(up)
					for _, s := range costmodel.Strategies {
						cfgs = append(cfgs, sim.Config{Params: sp, Model: model, Strategy: s, Seed: opt.SimSeed})
					}
				}
			}
			results, err := simCells(ctx, opt, cfgs)
			next := 0
			for i, up := range sweepPs {
				p := base.WithUpdateProbability(up)
				row := []string{fmt.Sprintf("%.2f", up)}
				for _, s := range costmodel.Strategies {
					row = append(row, fmtMs(costmodel.Cost(model, s, p)))
				}
				if opt.Sim {
					if i%simEvery == 0 && err == nil {
						for range costmodel.Strategies {
							row = append(row, fmtMs(results[next].MsPerQuery))
							next++
						}
					} else {
						row = append(row, "-", "-", "-", "-")
					}
				}
				t.Rows = append(t.Rows, row)
			}
			return []*Table{t}
		},
	}
}

// sharingExperiment builds a cost-vs-sharing-factor figure comparing the
// two Update Cache variants.
func sharingExperiment(id, title, note string, model costmodel.Model) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(ctx context.Context, opt Options) []*Table {
			base := costmodel.Default()
			t := &Table{
				ID: id, Title: title, Note: note,
				Header: []string{"SF", "UC-AVM", "UC-RVM"},
			}
			if opt.Sim {
				t.Header = append(t.Header, "sim:AVM", "sim:RVM")
			}
			sfs := costmodel.LinSpace(0, 1, 11)
			simEvery := 1
			if opt.Sim && opt.SimPoints > 0 && opt.SimPoints < len(sfs) {
				simEvery = (len(sfs) + opt.SimPoints - 1) / opt.SimPoints
			}
			var cfgs []sim.Config
			if opt.Sim {
				for i, sf := range sfs {
					if i%simEvery != 0 {
						continue
					}
					p := base
					p.SF = sf
					sp := scaled(p, opt)
					for _, s := range []costmodel.Strategy{costmodel.UpdateCacheAVM, costmodel.UpdateCacheRVM} {
						cfgs = append(cfgs, sim.Config{Params: sp, Model: model, Strategy: s, Seed: opt.SimSeed})
					}
				}
			}
			results, simErr := simCells(ctx, opt, cfgs)
			next := 0
			var cross float64 = math.NaN()
			prevDiff := math.NaN()
			for i, sf := range sfs {
				p := base
				p.SF = sf
				avmC := costmodel.AVMCost(model, p)
				rvmC := costmodel.RVMCost(model, p)
				row := []string{fmt.Sprintf("%.1f", sf), fmtMs(avmC), fmtMs(rvmC)}
				if opt.Sim {
					if i%simEvery == 0 && simErr == nil {
						row = append(row,
							fmtMs(results[next].MsPerQuery),
							fmtMs(results[next+1].MsPerQuery))
						next += 2
					} else {
						row = append(row, "-", "-")
					}
				}
				t.Rows = append(t.Rows, row)
				diff := avmC - rvmC
				if !math.IsNaN(prevDiff) && prevDiff < 0 && diff >= 0 && math.IsNaN(cross) {
					// Linear interpolation for the crossover SF.
					frac := -prevDiff / (diff - prevDiff)
					cross = sfs[i-1] + frac*(sfs[i]-sfs[i-1])
				}
				prevDiff = diff
			}
			if !math.IsNaN(cross) {
				t.Note += fmt.Sprintf(" AVM/RVM crossover at SF ≈ %.2f.", cross)
			}
			return []*Table{t}
		},
	}
}

func init() {
	register(Experiment{
		ID:    "fig02",
		Title: "Default parameter values (paper Figure 2)",
		Run: func(context.Context, Options) []*Table {
			p := costmodel.Default()
			t := &Table{
				ID: "fig02", Title: "Default parameter values (paper Figure 2)",
				Header: []string{"parameter", "value", "meaning"},
			}
			add := func(name string, v, meaning string) {
				t.Rows = append(t.Rows, []string{name, v, meaning})
			}
			add("N", fmt.Sprintf("%.0f", p.N), "tuples in R1")
			add("S", fmt.Sprintf("%.0f", p.S), "bytes per tuple")
			add("B", fmt.Sprintf("%.0f", p.B), "bytes per block")
			add("b", fmt.Sprintf("%.0f", p.Blocks()), "blocks in R1 (N/(B/S))")
			add("d", fmt.Sprintf("%.0f", p.D), "bytes per index record")
			add("k", fmt.Sprintf("%.0f", p.K), "update transactions")
			add("l", fmt.Sprintf("%.0f", p.L), "tuples modified per update")
			add("q", fmt.Sprintf("%.0f", p.Q), "procedure accesses")
			add("f", fmt.Sprintf("%g", p.F), "selectivity of C_f")
			add("f2", fmt.Sprintf("%g", p.F2), "selectivity of C_f2")
			add("fR2", fmt.Sprintf("%g", p.FR2), "size of R2 / N")
			add("fR3", fmt.Sprintf("%g", p.FR3), "size of R3 / N")
			add("C1", fmt.Sprintf("%.0f ms", p.C1), "screen one record")
			add("C2", fmt.Sprintf("%.0f ms", p.C2), "one page I/O")
			add("C3", fmt.Sprintf("%.0f ms", p.C3), "one delta-set tuple op")
			add("C_inval", fmt.Sprintf("%.0f ms", p.CInval), "record one invalidation")
			add("N1", fmt.Sprintf("%.0f", p.N1), "type-P1 procedures")
			add("N2", fmt.Sprintf("%.0f", p.N2), "type-P2 procedures")
			add("SF", fmt.Sprintf("%g", p.SF), "sharing factor")
			add("Z", fmt.Sprintf("%g", p.Z), "locality (Z procs get 1-Z of refs)")
			return []*Table{t}
		},
	})

	register(curveExperiment("fig04",
		"Query cost vs update probability, expensive invalidation (C_inval = 60 ms)",
		"Paper Figure 4: C&I is highly sensitive to the invalidation cost.",
		costmodel.Model1,
		func(p *costmodel.Params) { p.CInval = 60 }))

	register(curveExperiment("fig05",
		"Query cost vs update probability, free invalidation (C_inval = 0)",
		"Paper Figure 5: Update Cache wins for 0 < P < ~0.7; C&I plateaus just above Recompute for high P.",
		costmodel.Model1, nil))

	register(curveExperiment("fig06",
		"Query cost vs update probability, large objects (f = 0.01)",
		"Paper Figure 6: incremental update of large objects beats invalidate-and-recompute at low P.",
		costmodel.Model1,
		func(p *costmodel.Params) { p.F = 0.01 }))

	register(curveExperiment("fig07",
		"Query cost vs update probability, small objects (f = 0.0001)",
		"Paper Figure 7: C&I is competitive with Update Cache for small objects, and safer at high P.",
		costmodel.Model1,
		func(p *costmodel.Params) { p.F = 0.0001 }))

	register(curveExperiment("fig08",
		"Query cost vs update probability, single-tuple objects (N1=100, N2=0, f=1/N)",
		"Paper Figure 8: with one-tuple objects, C&I is essentially equivalent to Update Cache except at high P.",
		costmodel.Model1,
		func(p *costmodel.Params) { p.N1, p.N2, p.F = 100, 0, 1/p.N }))

	register(curveExperiment("fig09",
		"Query cost vs update probability, high locality (Z = 0.05)",
		"Paper Figure 9: locality helps C&I (fewer cold reads of invalid objects) but not Update Cache.",
		costmodel.Model1,
		func(p *costmodel.Params) { p.Z = 0.05 }))

	register(curveExperiment("fig10",
		"Query cost vs update probability, many objects (N1 = N2 = 1000)",
		"Paper Figure 10: more objects steepen the Update Cache slope and shift the C&I plateau.",
		costmodel.Model1,
		func(p *costmodel.Params) { p.N1, p.N2 = 1000, 1000 }))

	register(sharingExperiment("fig11",
		"Update Cache variants vs sharing factor (model 1)",
		"Paper Figure 11: with 2-way joins RVM only approaches AVM when SF ≈ 1.",
		costmodel.Model1))

	register(curveExperiment("fig17",
		"Query cost vs update probability (model 2, 3-way joins)",
		"Paper Figure 17: same shape as Figure 5 with a more expensive recompute.",
		costmodel.Model2, nil))

	register(sharingExperiment("fig18",
		"Update Cache variants vs sharing factor (model 2)",
		"Paper Figure 18: with 3-way joins the variants cross at SF ≈ 0.47; RVM wins above.",
		costmodel.Model2))
}
