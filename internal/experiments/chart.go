package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// chartHeight and chartWidth size the ASCII plots.
const (
	chartHeight = 18
	chartWidth  = 64
)

// Chartable reports whether the table is a curve (an x column followed by
// numeric series columns) that Chart can draw.
func (t *Table) Chartable() bool {
	if len(t.Header) < 2 || len(t.Rows) < 2 {
		return false
	}
	numeric := 0
	for _, row := range t.Rows {
		for _, c := range row[1:] {
			if _, err := strconv.ParseFloat(c, 64); err == nil {
				numeric++
			}
		}
	}
	return numeric >= 2*len(t.Rows)
}

// Chart draws the table as an ASCII line chart with a logarithmic y axis:
// x is the first column, each further column one series, marked with the
// first distinctive letter of its header ("Recompute" -> R, "C&I" -> C,
// "UC-AVM" -> A, "UC-RVM" -> V). Cells holding several series show '*'.
func (t *Table) Chart(w io.Writer) {
	if !t.Chartable() {
		return
	}
	series := t.Header[1:]
	symbols := seriesSymbols(series)

	// Collect points and the log-y range.
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := make([][]float64, len(t.Rows)) // per row, per series (NaN = absent)
	for i, row := range t.Rows {
		vals[i] = make([]float64, len(series))
		for j := range series {
			v, err := strconv.ParseFloat(row[1+j], 64)
			if err != nil || v <= 0 {
				vals[i][j] = math.NaN()
				continue
			}
			vals[i][j] = v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) || lo == hi {
		return
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)

	grid := make([][]rune, chartHeight)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", chartWidth))
	}
	n := len(t.Rows)
	for i := range t.Rows {
		x := i * (chartWidth - 1) / (n - 1)
		for j := range series {
			v := vals[i][j]
			if math.IsNaN(v) {
				continue
			}
			y := int((math.Log10(v) - logLo) / (logHi - logLo) * float64(chartHeight-1))
			r := chartHeight - 1 - y
			switch grid[r][x] {
			case ' ':
				grid[r][x] = symbols[j]
			case symbols[j]:
			default:
				grid[r][x] = '*'
			}
		}
	}

	fmt.Fprintf(w, "%s (log y, ms/query)\n", t.ID)
	for r := 0; r < chartHeight; r++ {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.0f ", hi)
		case chartHeight - 1:
			label = fmt.Sprintf("%7.0f ", lo)
		case chartHeight / 2:
			label = fmt.Sprintf("%7.0f ", math.Pow(10, (logLo+logHi)/2))
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", chartWidth))
	fmt.Fprintf(w, "         %-8s%*s\n", t.Rows[0][0], chartWidth-9, t.Rows[n-1][0])
	var legend []string
	for j, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", symbols[j], s))
	}
	fmt.Fprintf(w, "         %s  (*=overlap)\n\n", strings.Join(legend, "  "))
}

// seriesSymbols picks one distinctive rune per series name.
func seriesSymbols(names []string) []rune {
	used := map[rune]bool{'*': true, ' ': true}
	out := make([]rune, len(names))
	for i, name := range names {
		picked := rune(0)
		for _, r := range name {
			u := []rune(strings.ToUpper(string(r)))[0]
			if u >= 'A' && u <= 'Z' && !used[u] {
				picked = u
				break
			}
		}
		if picked == 0 {
			for c := '1'; c <= '9'; c++ {
				if !used[c] {
					picked = c
					break
				}
			}
		}
		if picked == 0 {
			picked = '?'
		}
		used[picked] = true
		out[i] = picked
	}
	return out
}
