package experiments

import (
	"context"
	"fmt"

	"dbproc/internal/costmodel"
	"dbproc/internal/sim"
)

// Ablation experiments: measure what each load-bearing design choice is
// worth by turning it off on the executable system. Simulation-only.

func init() {
	register(Experiment{
		ID: "abl-dispatch",
		Title: "ABLATION: rule-indexed Rete dispatch vs naive root broadcast " +
			"(screening cost N·C1·2fl vs N·C1·2l)",
		Run: func(ctx context.Context, opt Options) []*Table {
			return ablate(ctx, opt, "abl-dispatch",
				"With indexed dispatch only t-consts whose band contains the token's value\n"+
					"activate; the naive root broadcasts every token to every t-const, as the\n"+
					"paper describes the data structure literally.",
				costmodel.UpdateCacheRVM,
				sim.Ablations{}, sim.Ablations{NaiveReteDispatch: true},
				"indexed dispatch", "naive broadcast")
		},
	})
	register(Experiment{
		ID: "abl-rootpin",
		Title: "ABLATION: pinned B-tree root vs charging the root read " +
			"(the model's H1 vs full-height descents)",
		Run: func(ctx context.Context, opt Options) []*Table {
			return ablate(ctx, opt, "abl-rootpin",
				"Every index descent pays one extra C2 when the root is not memory-resident;\n"+
					"recomputation-heavy strategies feel it most.",
				costmodel.AlwaysRecompute,
				sim.Ablations{}, sim.Ablations{NoRootPin: true},
				"root pinned", "root charged")
		},
	})
	register(Experiment{
		ID: "abl-locks",
		Title: "ABLATION: i-lock intervals/keys vs relation-granularity invalidation " +
			"(what rule indexing is worth to Cache and Invalidate)",
		Run: func(ctx context.Context, opt Options) []*Table {
			return ablate(ctx, opt, "abl-locks",
				"With relation-level locks every update invalidates every procedure, so C&I\n"+
					"degenerates to Always Recompute plus write-backs even at low P.",
				costmodel.CacheInvalidate,
				sim.Ablations{}, sim.Ablations{CoarseInvalidation: true},
				"i-locks (rule indexing)", "relation-level locks")
		},
	})
}

// ablate measures one strategy across P with and without an ablation.
func ablate(ctx context.Context, opt Options, id, note string, strat costmodel.Strategy, base, ablated sim.Ablations, baseName, ablName string) []*Table {
	scale := opt.Scale
	if scale <= 1 {
		scale = 5
	}
	seed := opt.SimSeed
	if seed == 0 {
		seed = 1
	}
	p := scaled(costmodel.Default(), Options{Scale: scale})
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Measured ms/query for %v (1/%.0f scale)", strat, scale),
		Note:   note,
		Header: []string{"P", baseName, ablName, "penalty"},
	}
	ups := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	var cfgs []sim.Config
	for _, up := range ups {
		pp := p.WithUpdateProbability(up)
		cfgs = append(cfgs,
			sim.Config{Params: pp, Model: costmodel.Model1, Strategy: strat, Seed: seed, Ablations: base},
			sim.Config{Params: pp, Model: costmodel.Model1, Strategy: strat, Seed: seed, Ablations: ablated})
	}
	results, err := simCells(ctx, opt, cfgs)
	if err != nil {
		return []*Table{t}
	}
	for i, up := range ups {
		a := results[2*i].MsPerQuery
		b := results[2*i+1].MsPerQuery
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", up), fmtMs(a), fmtMs(b), fmt.Sprintf("%.2fx", b/a),
		})
	}
	return []*Table{t}
}
