// Package experiments regenerates every table and figure of the paper's
// evaluation (sections 5 and 7): cost-versus-update-probability curves,
// sharing-factor comparisons, winner-region maps, closeness maps, the cost
// component tables, and the quantitative claims of section 8. Each
// experiment produces the analytic series from package costmodel and,
// optionally, measured validation points from package sim.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/parallel"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
)

// Options control experiment execution.
type Options struct {
	// Sim adds measured points from the executable system next to the
	// analytic curves. Simulated sweeps subsample to SimPoints points.
	Sim bool
	// SimPoints caps the simulated points per curve (0 means all).
	SimPoints int
	// SimSeed drives the simulated workloads.
	SimSeed int64
	// Scale divides N, N1, N2, K and Q for faster simulated sweeps while
	// preserving shape (0 or 1 means full scale).
	Scale float64
	// Workers bounds the simulation cells run concurrently; zero or
	// negative means one worker per CPU. Results are reduced in canonical
	// cell order, so any worker count renders byte-identical tables.
	Workers int
	// Clients caps the session ladder of the concurrent engine benchmark
	// (ConcurrentBench): ladder points above it are dropped. Zero keeps
	// the full 1/2/4/8 ladder.
	Clients int
	// ThinkMeanMs is the concurrent benchmark's mean per-session think
	// time between operations (exponential); zero disables thinking and
	// measures pure contention.
	ThinkMeanMs float64
	// Hub, when non-nil, exposes each concurrent-benchmark engine live:
	// the engine becomes the hub's /metrics source and its events stream
	// into the hub's flight recorder (procbench -listen).
	Hub *telemetry.Hub
	// Served adds a second, measured pass to each concurrent-benchmark
	// cell: the same configuration driven through procserved over the
	// database/sql driver (docs/SERVING.md), recorded as the row's
	// wall_served throughput. ServedAddr names an external server;
	// empty starts a loopback server in-process for the bench's
	// duration.
	Served     bool
	ServedAddr string
	// Scenarios restricts the hostile-workload scenario benchmark
	// (ScenarioBench) to a subset of the catalog; empty sweeps it all.
	// The polite baseline is always included.
	Scenarios []string
}

// Table is one rendered result: a titled grid of cells.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	// ID is the handle used on the command line, e.g. "fig05".
	ID string
	// Title describes what the paper's figure shows.
	Title string
	// Run produces the tables. ctx cancels the simulation fan-out between
	// cells; a cancelled run renders its remaining simulated columns as
	// "-" placeholders.
	Run func(ctx context.Context, opt Options) []*Table
}

// All returns every experiment, figures in paper order followed by the
// component tables and the claims check.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts "figNN" numerically first, then tables, then claims.
func orderKey(id string) string {
	switch {
	case strings.HasPrefix(id, "fig"):
		return "0" + id
	case strings.HasPrefix(id, "tbl"):
		return "1" + id
	default:
		return "2" + id
	}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the experiment ids in presentation order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// fmtMs renders a cost in milliseconds compactly.
func fmtMs(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case v >= 10000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// scaled derives simulation parameters from the analytic ones, dividing
// the population sizes and operation counts by opt.Scale to keep sweeps
// fast while preserving per-query shape.
func scaled(p costmodel.Params, opt Options) costmodel.Params {
	s := opt.Scale
	if s <= 1 {
		return p
	}
	q := p
	q.N = math.Max(1000, math.Round(p.N/s))
	q.N1 = math.Round(p.N1 / s)
	q.N2 = math.Round(p.N2 / s)
	if q.N1+q.N2 == 0 {
		q.N1 = 1
	}
	q.K = math.Max(0, math.Round(p.K/s))
	q.Q = math.Max(4, math.Round(p.Q/s))
	return q
}

// simCells is the parallel sweep engine's entry point: it measures every
// config across opt.Workers workers — each cell building and running its
// own self-contained sim.World — and returns the results in input order.
// That input-order reduction is the determinism contract: tables are
// filled from the returned slice, never from completion order, so
// Workers=1 and Workers=N render byte-identical output.
func simCells(ctx context.Context, opt Options, cfgs []sim.Config) ([]sim.Result, error) {
	tm := parallel.TimingsFrom(ctx)
	return parallel.Map(ctx, parallel.Workers(opt.Workers), len(cfgs), func(ctx context.Context, i int) (sim.Result, error) {
		start := time.Now()
		res := sim.Run(cfgs[i])
		tm.Observe(time.Since(start))
		return res, nil
	})
}
