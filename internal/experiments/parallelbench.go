package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"time"

	"dbproc/internal/parallel"
)

// ParallelBenchReport is the shape of BENCH_parallel.json: wall-clock
// for regenerating every figure and table (simulated points included)
// with one worker versus a full pool, a byte-identity verdict for the
// two outputs, and pool-width projections replayed from the measured
// per-cell durations. The projections matter on core-starved CI boxes:
// MeasuredSpeedup can only reach min(Cores, Workers), while
// ProjectedSpeedup reports what the same cells imply for a pool of
// each width with real concurrency behind it.
type ParallelBenchReport struct {
	// Cores is runtime.NumCPU() — the concurrency the measured columns
	// could actually use.
	Cores int `json:"cores"`
	// Workers is the pool width of the parallel pass.
	Workers int `json:"workers"`
	// Experiments counts the figures/tables regenerated per pass; Cells
	// counts the simulation worlds each pass built and ran.
	Experiments int `json:"experiments"`
	Cells       int `json:"cells"`
	// Scale and Seed are the simulation options both passes shared.
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	// SequentialWallMs and ParallelWallMs time the two full regenerations.
	SequentialWallMs float64 `json:"sequential_wall_ms"`
	ParallelWallMs   float64 `json:"parallel_wall_ms"`
	// MeasuredSpeedup is SequentialWallMs / ParallelWallMs on this box.
	MeasuredSpeedup float64 `json:"measured_speedup"`
	// ProjectedSpeedup maps pool widths ("2", "4", "8") to the speedup the
	// sequential pass's per-cell durations imply under greedy scheduling.
	ProjectedSpeedup map[string]float64 `json:"projected_speedup"`
	// OutputIdentical asserts the determinism contract: both passes
	// rendered byte-identical tables.
	OutputIdentical bool `json:"output_identical"`
}

// renderAll regenerates every experiment into one buffer, timing the
// wall clock and (via ctx) every simulation cell.
func renderAll(ctx context.Context, opt Options) (time.Duration, []byte, int) {
	var buf bytes.Buffer
	all := All()
	start := time.Now()
	for _, e := range all {
		for _, tb := range e.Run(ctx, opt) {
			tb.Render(&buf)
		}
	}
	return time.Since(start), buf.Bytes(), len(all)
}

// ParallelBench regenerates the full figure set twice — Workers=1, then
// Workers=opt.Workers (default: one per CPU) — and reports wall-clock,
// byte-identity, and projected pool speedups. It is the harness behind
// `procbench -parallel-json BENCH_parallel.json`.
func ParallelBench(ctx context.Context, opt Options) ParallelBenchReport {
	if !opt.Sim {
		opt.Sim = true // wall-clock is all simulation; analytic-only is microseconds
	}
	workers := parallel.Workers(opt.Workers)

	seqOpt := opt
	seqOpt.Workers = 1
	seqTimings := &parallel.Timings{}
	seqWall, seqOut, nExp := renderAll(parallel.WithTimings(ctx, seqTimings), seqOpt)

	parOpt := opt
	parOpt.Workers = workers
	parWall, parOut, _ := renderAll(ctx, parOpt)

	rep := ParallelBenchReport{
		Cores:            runtime.NumCPU(),
		Workers:          workers,
		Experiments:      nExp,
		Cells:            len(seqTimings.Cells()),
		Scale:            opt.Scale,
		Seed:             opt.SimSeed,
		SequentialWallMs: float64(seqWall) / float64(time.Millisecond),
		ParallelWallMs:   float64(parWall) / float64(time.Millisecond),
		ProjectedSpeedup: make(map[string]float64),
		OutputIdentical:  bytes.Equal(seqOut, parOut),
	}
	if parWall > 0 {
		rep.MeasuredSpeedup = float64(seqWall) / float64(parWall)
	}
	for _, w := range []int{2, 4, 8} {
		rep.ProjectedSpeedup[fmt.Sprintf("%d", w)] = seqTimings.ProjectedSpeedup(w)
	}
	return rep
}
