package experiments

import (
	"context"
	"time"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/parallel"
	"dbproc/internal/sim"
	"dbproc/internal/workload"
)

// PoliteScenario names the baseline row set of the scenario benchmark:
// the paper's unmodified workload, included so every hostile scenario's
// verdict can report whether the winner flipped relative to it.
const PoliteScenario = "polite"

// scenarioBenchSeeds is the number of workload seeds each
// (scenario, model, strategy) cell averages over — and the number of
// per-seed winner columns the golden-verdict regression test pins.
const scenarioBenchSeeds = 3

// ScenarioBenchRow is one (scenario, model, strategy) aggregate in
// BENCH_scenarios.json, averaged over scenarioBenchSeeds seeds with the
// per-seed totals retained (the winner-region evidence).
type ScenarioBenchRow struct {
	Scenario string `json:"scenario"`
	Model    string `json:"model"`
	Strategy string `json:"strategy"`
	// Queries/Updates are per-seed op counts; the schedule fixes them,
	// so they are identical across the row's seeds.
	Queries int `json:"queries"`
	Updates int `json:"updates"`
	// TotalMs is the mean simulated cost across seeds; MsPerQuery
	// divides it by the query count.
	TotalMs        float64   `json:"total_ms"`
	MsPerQuery     float64   `json:"ms_per_query"`
	PerSeedTotalMs []float64 `json:"per_seed_total_ms"`
	// LedgerEventMs is the mean cache-lifecycle event cost from the
	// per-cell efficacy ledger — the evidence procdoctor ranks caching
	// strategies by. Nil for Always Recompute (no cache, no events).
	LedgerEventMs  *float64  `json:"ledger_event_ms,omitempty"`
	PerSeedLedger  []float64 `json:"per_seed_ledger_event_ms,omitempty"`
	WastedWorkMs   *float64  `json:"wasted_work_ms,omitempty"`
	FalseInvalRate *float64  `json:"false_invalidation_rate,omitempty"`
}

// ScenarioVerdict is one scenario × model winner-region cell: which
// strategy wins under hostile traffic, by how much, and whether the
// hostile conditions flipped the verdict the polite workload gives.
type ScenarioVerdict struct {
	Scenario string `json:"scenario"`
	Model    string `json:"model"`
	// Winner is the cheapest strategy by mean simulated total;
	// PerSeedWinners pins the per-seed outcomes for regression.
	Winner           string   `json:"winner"`
	WinnerMsPerQuery float64  `json:"winner_ms_per_query"`
	RunnerUp         string   `json:"runner_up"`
	MarginPct        float64  `json:"margin_pct"`
	PerSeedWinners   []string `json:"per_seed_winners"`
	// CachingWinner ranks only the ledger-recording strategies by mean
	// ledger event cost — the same evidence and ordering procdoctor's
	// ledger verdict uses, so the two must agree.
	CachingWinner         string   `json:"caching_winner"`
	PerSeedCachingWinners []string `json:"per_seed_caching_winners"`
	// PoliteWinner is the same model's winner under the polite
	// workload; Flipped marks scenarios that dethrone it.
	PoliteWinner string `json:"polite_winner"`
	Flipped      bool   `json:"flipped_from_polite"`
}

// ScenarioBenchReport is the top-level shape of BENCH_scenarios.json.
type ScenarioBenchReport struct {
	Scale        float64            `json:"scale"`
	Seed         int64              `json:"seed"`
	SeedsPerCell int                `json:"seeds_per_cell"`
	Scenarios    []string           `json:"scenarios"`
	Params       costmodel.Params   `json:"params"`
	Rows         []ScenarioBenchRow `json:"rows"`
	Verdicts     []ScenarioVerdict  `json:"verdicts"`
}

// ScenarioBenchParams is the parameter point the scenario benchmark
// runs at (divided by opt.Scale): small enough that the full
// scenario × model × strategy × seed grid finishes in CI time, large
// enough that bands overlap (adversarial invalidation has a densest
// region to aim at) and the cache actually pays rent.
func ScenarioBenchParams(opt Options) costmodel.Params {
	p := costmodel.Default()
	p.N = 3000
	p.N1 = 8
	p.N2 = 8
	p.F = 0.004
	p.K = 30
	p.Q = 45
	p.L = 10
	return scaled(p, opt)
}

// scenarioList resolves the benchmark's scenario axis: the polite
// baseline first, then opt.Scenarios (or the full catalog when empty),
// in canonical order.
func scenarioList(opt Options) []string {
	names := opt.Scenarios
	if len(names) == 0 {
		names = workload.Names()
	}
	out := []string{PoliteScenario}
	for _, n := range names {
		if n != PoliteScenario {
			out = append(out, n)
		}
	}
	return out
}

type scenarioCell struct {
	res       sim.Result
	led       cache.LedgerStats
	ledEvents int
}

// ScenarioBench measures every strategy under both models across the
// hostile-workload scenario catalog (plus the polite baseline),
// averaging over scenarioBenchSeeds seeds, and derives a winner verdict
// per scenario × model. Cells run sequentially within a worker and fan
// out across opt.Workers; the reduction walks the canonical
// (scenario, model, strategy, seed) order, so any worker count renders
// a byte-identical report — and each cell is a 1-client sim.Run,
// replayable from (scenario, seed) alone.
func ScenarioBench(ctx context.Context, opt Options) ScenarioBenchReport {
	p := ScenarioBenchParams(opt)
	scenarios := scenarioList(opt)
	models := []costmodel.Model{costmodel.Model1, costmodel.Model2}

	var cfgs []sim.Config
	for _, sc := range scenarios {
		name := sc
		if name == PoliteScenario {
			name = ""
		}
		for _, m := range models {
			for _, s := range costmodel.Strategies {
				for i := 0; i < scenarioBenchSeeds; i++ {
					cfgs = append(cfgs, sim.Config{
						Params: p, Model: m, Strategy: s,
						Seed: opt.SimSeed + int64(i), Scenario: name,
					})
				}
			}
		}
	}

	tm := parallel.TimingsFrom(ctx)
	cells, err := parallel.Map(ctx, parallel.Workers(opt.Workers), len(cfgs), func(ctx context.Context, i int) (scenarioCell, error) {
		start := time.Now()
		cfg := cfgs[i]
		cfg.Ledger = cache.NewLedger() // per-cell: workers must not share
		res := sim.Run(cfg)
		tm.Observe(time.Since(start))
		return scenarioCell{
			res: res, led: cfg.Ledger.Stats(), ledEvents: len(cfg.Ledger.Events()),
		}, nil
	})

	rep := ScenarioBenchReport{
		Scale:        opt.Scale,
		Seed:         opt.SimSeed,
		SeedsPerCell: scenarioBenchSeeds,
		Scenarios:    scenarios,
		Params:       p,
	}
	if err != nil {
		return rep
	}

	// Reduce in canonical order; remember each scenario × model's rows
	// so the verdict pass below can rank them.
	type groupKey struct {
		scenario string
		model    string
	}
	rowsOf := map[groupKey][]ScenarioBenchRow{}
	next := 0
	for _, sc := range scenarios {
		for _, m := range models {
			for _, s := range costmodel.Strategies {
				row := ScenarioBenchRow{Scenario: sc, Model: m.String(), Strategy: s.String()}
				ledgered := 0
				wastedSum := 0.0
				falseInv, comparable := 0, 0
				for i := 0; i < scenarioBenchSeeds; i++ {
					cell := cells[next]
					next++
					row.Queries = cell.res.Queries
					row.Updates = cell.res.Updates
					row.TotalMs += cell.res.TotalMs
					row.PerSeedTotalMs = append(row.PerSeedTotalMs, cell.res.TotalMs)
					if cell.ledEvents > 0 {
						ledgered++
						row.PerSeedLedger = append(row.PerSeedLedger, cell.led.TotalMs)
						wastedSum += cell.led.WastedMs
						falseInv += cell.led.FalseInvalidations
						comparable += cell.led.ComparableRecomputes
					}
				}
				row.TotalMs /= scenarioBenchSeeds
				if row.Queries > 0 {
					row.MsPerQuery = row.TotalMs / float64(row.Queries)
				}
				if ledgered > 0 {
					var ledSum float64
					for _, v := range row.PerSeedLedger {
						ledSum += v
					}
					mean := ledSum / float64(ledgered)
					wasted := wastedSum / float64(ledgered)
					row.LedgerEventMs, row.WastedWorkMs = &mean, &wasted
					rate := 0.0
					if comparable > 0 {
						rate = float64(falseInv) / float64(comparable)
					}
					row.FalseInvalRate = &rate
				}
				k := groupKey{sc, m.String()}
				rowsOf[k] = append(rowsOf[k], row)
				rep.Rows = append(rep.Rows, row)
			}
		}
	}

	politeWinner := map[string]string{} // model -> polite winner
	for _, sc := range scenarios {
		for _, m := range models {
			v := deriveVerdict(sc, m.String(), rowsOf[groupKey{sc, m.String()}])
			if sc == PoliteScenario {
				politeWinner[v.Model] = v.Winner
			}
			v.PoliteWinner = politeWinner[v.Model]
			v.Flipped = sc != PoliteScenario && v.Winner != v.PoliteWinner
			rep.Verdicts = append(rep.Verdicts, v)
		}
	}
	return rep
}

// deriveVerdict ranks one scenario × model's strategy rows. Winners are
// strict minima walked in canonical strategy order, so ties break to
// the earlier strategy — the same stable ordering procdoctor's
// sort.SliceStable ledger ranking produces.
func deriveVerdict(scenario, model string, rows []ScenarioBenchRow) ScenarioVerdict {
	v := ScenarioVerdict{Scenario: scenario, Model: model}
	winner, runner := -1, -1
	for i, r := range rows {
		if winner < 0 || r.TotalMs < rows[winner].TotalMs {
			winner, runner = i, winner
		} else if runner < 0 || r.TotalMs < rows[runner].TotalMs {
			runner = i
		}
	}
	if winner < 0 {
		return v
	}
	v.Winner = rows[winner].Strategy
	v.WinnerMsPerQuery = rows[winner].MsPerQuery
	if runner >= 0 {
		v.RunnerUp = rows[runner].Strategy
		if rows[winner].TotalMs > 0 {
			v.MarginPct = 100 * (rows[runner].TotalMs - rows[winner].TotalMs) / rows[winner].TotalMs
		}
	}
	for seed := 0; seed < scenarioBenchSeeds; seed++ {
		best := -1
		for i, r := range rows {
			if seed >= len(r.PerSeedTotalMs) {
				continue
			}
			if best < 0 || r.PerSeedTotalMs[seed] < rows[best].PerSeedTotalMs[seed] {
				best = i
			}
		}
		if best >= 0 {
			v.PerSeedWinners = append(v.PerSeedWinners, rows[best].Strategy)
		}
	}
	// Caching-only ranking by ledger event cost (procdoctor's metric).
	best := -1
	for i, r := range rows {
		if r.LedgerEventMs == nil {
			continue
		}
		if best < 0 || *r.LedgerEventMs < *rows[best].LedgerEventMs {
			best = i
		}
	}
	if best >= 0 {
		v.CachingWinner = rows[best].Strategy
	}
	for seed := 0; seed < scenarioBenchSeeds; seed++ {
		sbest := -1
		for i, r := range rows {
			if seed >= len(r.PerSeedLedger) {
				continue
			}
			if sbest < 0 || r.PerSeedLedger[seed] < rows[sbest].PerSeedLedger[seed] {
				sbest = i
			}
		}
		if sbest >= 0 {
			v.PerSeedCachingWinners = append(v.PerSeedCachingWinners, rows[sbest].Strategy)
		}
	}
	return v
}

// DeriveScenarioVerdict re-derives the winner verdict for one
// scenario × model cell from its rows alone — the same procedure
// ScenarioBench runs, exported so procadvisor -scenarios can check a
// report's recorded verdicts against the evidence that produced them.
// The returned verdict carries no polite baseline (PoliteWinner and
// Flipped are cross-scenario facts the caller fills in).
func DeriveScenarioVerdict(scenario, model string, rows []ScenarioBenchRow) ScenarioVerdict {
	return deriveVerdict(scenario, model, rows)
}

// FindScenarioVerdict returns the report's verdict for a scenario ×
// model cell, if present.
func (r *ScenarioBenchReport) FindScenarioVerdict(scenario, model string) (ScenarioVerdict, bool) {
	for _, v := range r.Verdicts {
		if v.Scenario == scenario && v.Model == model {
			return v, true
		}
	}
	return ScenarioVerdict{}, false
}
