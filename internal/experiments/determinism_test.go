package experiments

import (
	"bytes"
	"context"
	"testing"
)

// renderFig05 regenerates fig05 with simulated points into a buffer.
func renderFig05(t *testing.T, opt Options) []byte {
	t.Helper()
	e, ok := Get("fig05")
	if !ok {
		t.Fatal("fig05 missing")
	}
	var buf bytes.Buffer
	for _, tb := range e.Run(context.Background(), opt) {
		tb.Render(&buf)
	}
	return buf.Bytes()
}

// TestFig05WorkerCountInvariance is the sweep engine's determinism
// contract at the experiment level: fig05 with simulated points renders
// byte-identically whether its cells run sequentially or fan out over a
// worker pool — the `-workers 1` == `-workers 4` guarantee behind
// `procbench -workers`.
func TestFig05WorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := Options{Sim: true, SimPoints: 3, SimSeed: 5, Scale: 10}
	opt.Workers = 1
	seq := renderFig05(t, opt)
	opt.Workers = 4
	par := renderFig05(t, opt)
	if !bytes.Equal(seq, par) {
		t.Fatalf("fig05 output depends on worker count:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", seq, par)
	}
	// And run-to-run: a second parallel pass must reproduce the first.
	again := renderFig05(t, opt)
	if !bytes.Equal(par, again) {
		t.Fatal("fig05 output differs between two workers=4 runs")
	}
}
