package experiments

import (
	"context"
	"runtime"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/engine"
	"dbproc/internal/server"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
	"dbproc/internal/wire"
)

// ConcurrentBenchReport is the shape of BENCH_concurrent.json: for each
// strategy × model, the closed-loop multi-session engine's throughput
// and latency across the session ladder, with the one-session row's
// equality against the sequential simulator as the correctness anchor.
type ConcurrentBenchReport struct {
	// Cores bounds the wall-clock concurrency the measured rows could use.
	Cores int `json:"cores"`
	// Scale and Seed are the simulation settings every row shared.
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	// ThinkMeanMs is the per-session mean think time (exponential); think
	// time is what concurrent sessions overlap, so zero means rows measure
	// pure lock/latch contention.
	ThinkMeanMs float64 `json:"think_mean_ms"`
	// Ops is the workload length each row executed (K + Q).
	Ops int `json:"ops"`
	// Served reports whether rows carry a measured wall_served pass
	// (the same cell driven through procserved over the wire driver).
	Served bool `json:"served,omitempty"`

	Rows []ConcurrentBenchRow `json:"rows"`
}

// ConcurrentBenchRow is one (strategy, model, clients, scenario)
// measurement.
type ConcurrentBenchRow struct {
	Strategy string `json:"strategy"`
	Model    string `json:"model"`
	Clients  int    `json:"clients"`
	// Scenario names the hostile workload the row ran under; empty is
	// the polite baseline. Only the ladder's top rung — the contention
	// cells — gets scenario rows.
	Scenario string `json:"scenario,omitempty"`
	// ThroughputOps is operations per wall-clock second.
	ThroughputOps float64 `json:"throughput_ops_per_sec"`
	// Speedup is this row's throughput over the same strategy/model's
	// one-client throughput.
	Speedup float64 `json:"speedup_vs_1"`
	// P50LatencyUs / P95LatencyUs are wall-clock operation latencies
	// (lock wait + latched service) in microseconds.
	P50LatencyUs float64 `json:"p50_latency_us"`
	P95LatencyUs float64 `json:"p95_latency_us"`
	// SimTotalMs is the simulated cost of the whole workload — identical
	// across the ladder for a serializable engine executing the same
	// committed schedule amount of work.
	SimTotalMs float64 `json:"sim_total_ms"`
	// MatchesSequential is set on one-client rows: counters, tuple counts
	// and simulated cost equal the sequential simulator's byte for byte.
	MatchesSequential bool `json:"matches_sequential,omitempty"`
	// WallParallelSpeedup bounds the wall-clock speedup the latch-free
	// substrate admits at this session count: total simulated work over
	// the makespan of a greedy list schedule of the committed history onto
	// Clients workers, where operations whose 2PL footprints conflict may
	// not overlap. Unlike Speedup (which also counts overlapped think
	// time), this isolates genuine parallel execution of operation bodies.
	WallParallelSpeedup float64 `json:"wall_parallel_speedup,omitempty"`
	// Projected marks rows measured on a host with fewer cores than
	// sessions: there the measured throughput cannot corroborate
	// WallParallelSpeedup, so the figure is the schedule bound only. A
	// served pass clears the flag — WallServedOps is then a genuine
	// wall-clock measurement of real concurrent clients over the wire,
	// not a schedule projection.
	Projected bool `json:"projected,omitempty"`
	// WallServedOps is the measured throughput (ops per wall-clock
	// second, wire round-trips included) of the same cell driven
	// through procserved by concurrent database/sql clients — one
	// pooled connection per session. Zero when the served pass is off.
	WallServedOps float64 `json:"wall_served_ops_per_sec,omitempty"`
	// ServedMatchesSequential is set on served 1-client rows: the
	// served world's counters and simulated cost equal the sequential
	// simulator's byte for byte, extending the MatchesSequential anchor
	// across the wire.
	ServedMatchesSequential bool `json:"served_matches_sequential,omitempty"`
	// WallLatency / SimLatency summarize per-operation latency from the
	// engine's streaming P² sketches: wall-clock nanoseconds (lock wait +
	// latched service) and simulated milliseconds.
	WallLatency telemetry.SketchSummary `json:"wall_latency"`
	SimLatency  telemetry.SketchSummary `json:"sim_latency"`
	// Contention is the run's per-lock wall-clock contention profile,
	// sorted by total wait time descending.
	Contention []telemetry.LockContentionJSON `json:"contention,omitempty"`
	// AccessWaitShare is the fraction of access (query) wall time this
	// row's sessions spent waiting on locks, as measured — under the
	// default MVCC read path queries take no locks, so it collapses
	// toward zero.
	AccessWaitShare float64 `json:"access_wait_share"`
	// AccessWaitShare2PL is the same cell re-run with MVCC disabled
	// (pure-2PL read path): the "before" of the before/after wait-share
	// delta procstat -concurrent renders. Only contention cells — the
	// ladder's top rung — pay for the paired run.
	AccessWaitShare2PL float64 `json:"access_wait_share_2pl,omitempty"`
}

// wallParallelSpeedup bounds the wall-clock speedup the latch-free
// substrate could realize for a committed history on `workers` cores: a
// greedy list schedule in commit order, where an operation may not
// overlap any earlier operation whose 2PL footprint conflicts with its
// own, priced in simulated milliseconds. Total work over makespan is the
// speedup. One worker (or an empty history) trivially yields 1.
func wallParallelSpeedup(e *engine.Engine, hist []engine.HistoryEntry, workers int) float64 {
	if len(hist) == 0 || workers <= 1 {
		return 1
	}
	fps := make([]engine.Footprint, len(hist))
	var total float64
	for i, he := range hist {
		fps[i] = e.OpFootprint(he.Op)
		total += he.CostMs
	}
	ends := make([]float64, len(hist))
	free := make([]float64, workers)
	var makespan float64
	for i, he := range hist {
		var ready float64
		for j := 0; j < i; j++ {
			if ends[j] > ready && fps[i].Conflicts(fps[j]) {
				ready = ends[j]
			}
		}
		w := 0
		for k := 1; k < workers; k++ {
			if free[k] < free[w] {
				w = k
			}
		}
		start := ready
		if free[w] > start {
			start = free[w]
		}
		ends[i] = start + he.CostMs
		free[w] = ends[i]
		if ends[i] > makespan {
			makespan = ends[i]
		}
	}
	if makespan <= 0 {
		return 1
	}
	return total / makespan
}

// concurrentBenchParams is the measured workload: the paper's default
// parameter point, scaled like every other simulated sweep.
func concurrentBenchParams(opt Options) costmodel.Params {
	return scaled(costmodel.Default(), opt)
}

// BenchParams exposes the concurrent benchmark's exact parameter point
// (the paper's defaults under opt.Scale), so external harnesses can
// replay a BENCH_concurrent.json row — procdoctor's verdict test
// regenerates a row's ledger evidence from it.
func BenchParams(opt Options) costmodel.Params {
	return concurrentBenchParams(opt)
}

// ConcurrentBench measures the multi-session engine across the client
// ladder for every strategy and model. It is the harness behind
// `procbench -concurrent-json BENCH_concurrent.json`.
func ConcurrentBench(ctx context.Context, opt Options) ConcurrentBenchReport {
	p := concurrentBenchParams(opt)
	ladder := []int{1, 2, 4, 8}
	if opt.Clients > 0 {
		trimmed := ladder[:0]
		for _, c := range ladder {
			if c <= opt.Clients {
				trimmed = append(trimmed, c)
			}
		}
		ladder = trimmed
		if len(ladder) == 0 || ladder[len(ladder)-1] != opt.Clients {
			ladder = append(ladder, opt.Clients)
		}
	}
	think := opt.ThinkMeanMs

	rep := ConcurrentBenchReport{
		Cores:       runtime.NumCPU(),
		Scale:       opt.Scale,
		Seed:        opt.SimSeed,
		ThinkMeanMs: think,
		Ops:         int(p.K+0.5) + int(p.Q+0.5),
	}

	// The served pass measures each cell a second time through
	// procserved over the database/sql driver; with no external address
	// a loopback server lives for the duration of the bench.
	var servedAddr string
	if opt.Served {
		servedAddr = opt.ServedAddr
		if servedAddr == "" {
			srv := server.New(server.Options{})
			addr, err := srv.ListenAndServe("127.0.0.1:0")
			if err == nil {
				servedAddr = addr
				defer func() {
					sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					srv.Shutdown(sctx)
				}()
			}
		}
	}
	rep.Served = servedAddr != ""

	strategies := []costmodel.Strategy{
		costmodel.AlwaysRecompute,
		costmodel.CacheInvalidate,
		costmodel.UpdateCacheAVM,
		costmodel.UpdateCacheRVM,
	}
	for _, strat := range strategies {
		for _, model := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
			cfg := sim.Config{
				Params:   p,
				Model:    model,
				Strategy: strat,
				Seed:     opt.SimSeed,
			}
			var base float64
			var seq sim.Result
			for i, clients := range ladder {
				if ctx.Err() != nil {
					return rep
				}
				eopt := engine.Options{
					Clients:       clients,
					ThinkMeanMs:   think,
					RecordHistory: true,
					ProfileLocks:  true,
					Sketches:      true,
				}
				if opt.Hub != nil {
					eopt.Recorder = opt.Hub.Recorder()
				}
				e := engine.New(cfg, eopt)
				if opt.Hub != nil {
					opt.Hub.SetSource(e)
				}
				res := e.Run(ctx)
				row := ConcurrentBenchRow{
					Strategy:        strat.String(),
					Model:           model.String(),
					Clients:         clients,
					ThroughputOps:   res.Throughput,
					P50LatencyUs:    float64(res.Percentile(50)) / float64(time.Microsecond),
					P95LatencyUs:    float64(res.Percentile(95)) / float64(time.Microsecond),
					SimTotalMs:      res.SimTotalMs,
					WallLatency:     res.WallLatency,
					SimLatency:      res.SimLatency,
					Contention:      engine.ContentionJSON(res.Contention),
					AccessWaitShare: e.WaitProfile().AccessWaitShare(),
				}
				row.WallParallelSpeedup = wallParallelSpeedup(e, res.History, clients)
				row.Projected = clients > rep.Cores
				// Contention cells (top rung, >1 session) get the paired
				// pure-2PL run for the before/after wait-share delta.
				topRung := clients == ladder[len(ladder)-1] && clients > 1
				if topRung {
					row.AccessWaitShare2PL = accessWaitShare2PL(ctx, cfg, clients, think)
				}
				if i == 0 {
					base = res.Throughput
					if clients == 1 {
						seq = sim.Run(cfg)
						row.MatchesSequential = res.Counters == seq.Counters &&
							res.TuplesReturned == seq.TuplesReturned &&
							res.SimTotalMs == seq.TotalMs
					}
				}
				if base > 0 {
					row.Speedup = res.Throughput / base
				}
				if servedAddr != "" {
					sres, err := DriveServed(ctx, servedAddr, &wire.WorldOpen{
						Params:   p,
						Model:    WireModel(model),
						Strategy: WireStrategy(strat),
						Seed:     opt.SimSeed,
						Clients:  clients,
					})
					if err == nil {
						row.WallServedOps = sres.ThroughputOps
						// A genuine wall measurement of real concurrent
						// clients replaces the schedule projection.
						row.Projected = false
						if clients == 1 {
							row.ServedMatchesSequential = sres.Counters == seq.Counters &&
								sres.SimTotalMs == seq.TotalMs
						}
					}
				}
				rep.Rows = append(rep.Rows, row)

				// Scenario axis: the same contention cell re-measured
				// under the storm-adversarial workload (hot-key query
				// storm stacked on adversarial invalidation), with its
				// own MVCC/2PL wait-share pair. The polite top-rung row
				// above and this one are the two scenario cells the
				// wait-share delta is read from.
				if topRung {
					scfg := cfg
					scfg.Scenario = "storm-adversarial"
					se := engine.New(scfg, engine.Options{
						Clients:       clients,
						ThinkMeanMs:   think,
						RecordHistory: true,
						ProfileLocks:  true,
						Sketches:      true,
					})
					sres := se.Run(ctx)
					srow := ConcurrentBenchRow{
						Strategy:        strat.String(),
						Model:           model.String(),
						Clients:         clients,
						Scenario:        scfg.Scenario,
						ThroughputOps:   sres.Throughput,
						P50LatencyUs:    float64(sres.Percentile(50)) / float64(time.Microsecond),
						P95LatencyUs:    float64(sres.Percentile(95)) / float64(time.Microsecond),
						SimTotalMs:      sres.SimTotalMs,
						WallLatency:     sres.WallLatency,
						SimLatency:      sres.SimLatency,
						Contention:      engine.ContentionJSON(sres.Contention),
						AccessWaitShare: se.WaitProfile().AccessWaitShare(),
					}
					srow.WallParallelSpeedup = wallParallelSpeedup(se, sres.History, clients)
					srow.Projected = clients > rep.Cores
					srow.AccessWaitShare2PL = accessWaitShare2PL(ctx, scfg, clients, think)
					if base > 0 {
						srow.Speedup = sres.Throughput / base
					}
					rep.Rows = append(rep.Rows, srow)
				}
			}
		}
	}
	return rep
}

// accessWaitShare2PL re-runs a cell with MVCC disabled and returns the
// pure-2PL read path's access wait share — the "before" figure of the
// wait-share delta.
func accessWaitShare2PL(ctx context.Context, cfg sim.Config, clients int, think float64) float64 {
	e := engine.New(cfg, engine.Options{
		Clients:      clients,
		ThinkMeanMs:  think,
		DisableMVCC:  true,
		ProfileLocks: true,
	})
	e.Run(ctx)
	return e.WaitProfile().AccessWaitShare()
}
