// Package relation ties a schema to a physical organization — a clustered
// B+-tree (R1's access method) or a static hash file (R2's and R3's) — and
// provides the catalog mapping names to relations.
package relation

import (
	"fmt"

	"dbproc/internal/btree"
	"dbproc/internal/hashidx"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// Relation is a named, schema'd table with exactly one primary
// organization.
type Relation struct {
	schema *tuple.Schema

	// Exactly one of the following is non-nil.
	tree *btree.Tree
	hash *hashidx.Table

	// For B-tree relations: the clustering attribute and the unique tuple
	// id attribute composed into the ordering key.
	clusterField int
	idField      int
	// For hash relations: the hashed attribute.
	hashField int
}

// NewBTree creates an empty B-tree-organized relation clustered on
// clusterField, with idField (a unique tuple id) as the key tiebreaker.
// indexEntrySize is the paper's d.
func NewBTree(disk *storage.Disk, schema *tuple.Schema, clusterField, idField string, indexEntrySize int) *Relation {
	r := &Relation{
		schema:       schema,
		clusterField: schema.MustFieldIndex(clusterField),
		idField:      schema.MustFieldIndex(idField),
	}
	r.tree = btree.New(disk, schema.Width(), indexEntrySize, r.Key)
	return r
}

// BulkLoadBTree creates a B-tree relation from tuples already sorted by
// (clusterField, idField), packing pages completely full.
func BulkLoadBTree(pg *storage.Pager, schema *tuple.Schema, clusterField, idField string, indexEntrySize int, tuples [][]byte) *Relation {
	r := &Relation{
		schema:       schema,
		clusterField: schema.MustFieldIndex(clusterField),
		idField:      schema.MustFieldIndex(idField),
	}
	r.tree = btree.BulkLoad(pg, schema.Width(), indexEntrySize, r.Key, tuples)
	return r
}

// NewHash creates an empty hash-organized relation on hashField with the
// given number of primary buckets.
func NewHash(disk *storage.Disk, schema *tuple.Schema, hashField string, buckets int) *Relation {
	r := &Relation{
		schema:    schema,
		hashField: schema.MustFieldIndex(hashField),
	}
	r.hash = hashidx.New(disk, schema.Width(), buckets, func(rec []byte) uint64 {
		return uint64(schema.Get(rec, r.hashField))
	})
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *tuple.Schema { return r.schema }

// Tree returns the B-tree organization, or nil for hash relations.
func (r *Relation) Tree() *btree.Tree { return r.tree }

// Hash returns the hash organization, or nil for B-tree relations.
func (r *Relation) Hash() *hashidx.Table { return r.hash }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if r.tree != nil {
		return r.tree.Len()
	}
	return r.hash.Len()
}

// Key returns the clustering key of a tuple of a B-tree relation:
// ClusterKey(clusterField value, id value).
func (r *Relation) Key(tup []byte) uint64 {
	if r.hash != nil {
		panic("relation: Key on a hash relation")
	}
	return tuple.ClusterKey(r.schema.Get(tup, r.clusterField), r.schema.Get(tup, r.idField))
}

// ClusterField returns the index of the clustering attribute (B-tree
// relations only).
func (r *Relation) ClusterField() int { return r.clusterField }

// IDField returns the index of the tuple-id attribute (B-tree relations
// only).
func (r *Relation) IDField() int { return r.idField }

// HashField returns the index of the hashed attribute (hash relations
// only).
func (r *Relation) HashField() int { return r.hashField }

// KeyField returns the index of the attribute the primary organization
// indexes on: the clustering attribute for B-tree relations, the hashed
// attribute for hash relations. I-lock conflict checks route on this
// attribute's values.
func (r *Relation) KeyField() int {
	if r.hash != nil {
		return r.hashField
	}
	return r.clusterField
}

// Insert adds a tuple to the relation's primary organization, charging
// I/O to the calling session's pager.
func (r *Relation) Insert(pg *storage.Pager, tup []byte) {
	if r.tree != nil {
		r.tree.Insert(pg, tup)
		return
	}
	r.hash.Insert(pg, tup)
}

// DeleteKeyed removes the B-tree tuple with the given cluster key.
func (r *Relation) DeleteKeyed(pg *storage.Pager, key uint64) bool {
	if r.tree == nil {
		panic("relation: DeleteKeyed on a hash relation")
	}
	return r.tree.Delete(pg, key)
}

// Catalog maps relation names to relations.
type Catalog struct {
	rels map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]*Relation)}
}

// Define registers a relation under its schema name; redefining panics.
func (c *Catalog) Define(r *Relation) {
	name := r.Schema().Name()
	if _, dup := c.rels[name]; dup {
		panic(fmt.Sprintf("relation: %q already defined", name))
	}
	c.rels[name] = r
}

// Lookup returns the named relation, or nil.
func (c *Catalog) Lookup(name string) *Relation { return c.rels[name] }

// MustLookup returns the named relation or panics.
func (c *Catalog) MustLookup(name string) *Relation {
	r := c.rels[name]
	if r == nil {
		panic(fmt.Sprintf("relation: %q not defined", name))
	}
	return r
}

// Names returns the defined relation names in unspecified order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.rels))
	for name := range c.rels {
		out = append(out, name)
	}
	return out
}
