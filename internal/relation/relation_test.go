package relation

import (
	"testing"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

func newPager(pageSize int) *storage.Pager {
	return storage.NewPager(storage.NewDisk(pageSize), metric.NewMeter(metric.DefaultCosts()))
}

func empSchema() *tuple.Schema {
	return tuple.NewSchema("emp", 64,
		tuple.Field{Name: "tid"}, tuple.Field{Name: "age"}, tuple.Field{Name: "dept"})
}

func TestBTreeRelation(t *testing.T) {
	p := newPager(256)
	s := empSchema()
	r := NewBTree(p.Disk(), s, "age", "tid", 16)
	if r.Tree() == nil || r.Hash() != nil {
		t.Fatal("organization wrong")
	}
	for i := int64(0); i < 20; i++ {
		tup := s.New()
		s.SetByName(tup, "tid", i)
		s.SetByName(tup, "age", 30+i%5)
		r.Insert(p, tup)
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Keys order by (age, tid); delete one specific tuple.
	if !r.DeleteKeyed(p, tuple.ClusterKey(30, 0)) {
		t.Fatal("DeleteKeyed missed")
	}
	if r.Len() != 19 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
	if r.ClusterField() != s.MustFieldIndex("age") || r.IDField() != 0 {
		t.Fatal("field indexes wrong")
	}
}

func TestBulkLoadBTreeRelation(t *testing.T) {
	p := newPager(256)
	s := empSchema()
	tuples := make([][]byte, 50)
	for i := range tuples {
		tup := s.New()
		s.SetByName(tup, "tid", int64(i))
		s.SetByName(tup, "age", int64(i))
		tuples[i] = tup
	}
	r := BulkLoadBTree(p, s, "age", "tid", 16, tuples)
	if r.Len() != 50 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := r.Key(tuples[7]); got != tuple.ClusterKey(7, 7) {
		t.Fatalf("Key = %d", got)
	}
}

func TestHashRelation(t *testing.T) {
	p := newPager(256)
	s := empSchema()
	r := NewHash(p.Disk(), s, "dept", 4)
	if r.Hash() == nil || r.Tree() != nil {
		t.Fatal("organization wrong")
	}
	for i := int64(0); i < 12; i++ {
		tup := s.New()
		s.SetByName(tup, "tid", i)
		s.SetByName(tup, "dept", i%3)
		r.Insert(p, tup)
	}
	if r.Len() != 12 {
		t.Fatalf("Len = %d", r.Len())
	}
	count := 0
	r.Hash().LookupEach(p, 1, func([]byte) bool { count++; return true })
	if count != 4 {
		t.Fatalf("dept=1 has %d tuples, want 4", count)
	}
	if r.HashField() != s.MustFieldIndex("dept") {
		t.Fatal("HashField wrong")
	}
	// Misusing the B-tree-only API panics.
	for name, fn := range map[string]func(){
		"Key on hash": func() { r.Key(s.New()) },
		"DeleteKeyed": func() { r.DeleteKeyed(p, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCatalog(t *testing.T) {
	p := newPager(256)
	c := NewCatalog()
	r := NewBTree(p.Disk(), empSchema(), "age", "tid", 16)
	c.Define(r)
	if c.Lookup("emp") != r || c.MustLookup("emp") != r {
		t.Fatal("lookup failed")
	}
	if c.Lookup("nope") != nil {
		t.Fatal("phantom relation")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "emp" {
		t.Fatalf("Names = %v", names)
	}
	for name, fn := range map[string]func(){
		"redefine":        func() { c.Define(r) },
		"MustLookup miss": func() { c.MustLookup("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
