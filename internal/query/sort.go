package query

import (
	"sort"
	"strings"

	"dbproc/internal/tuple"
)

// Sort materializes its input and emits it ordered by the given fields
// (ascending, field by field). QUEL's "sort by" clause compiles to it.
// Sorting is query-processing machinery over the already-charged input: it
// charges nothing itself.
type Sort struct {
	Child  Plan
	Fields []string

	idx []int
}

// NewSort validates and builds the node.
func NewSort(child Plan, fields []string) *Sort {
	if len(fields) == 0 {
		panic("query: sort with no fields")
	}
	cs := child.Schema()
	idx := make([]int, len(fields))
	for i, f := range fields {
		idx[i] = cs.MustFieldIndex(f)
	}
	return &Sort{Child: child, Fields: append([]string(nil), fields...), idx: idx}
}

// Schema implements Plan.
func (s *Sort) Schema() *tuple.Schema { return s.Child.Schema() }

// Children implements Plan.
func (s *Sort) Children() []Plan { return []Plan{s.Child} }

// Execute implements Plan.
func (s *Sort) Execute(ctx *Ctx, emit func([]byte) bool) {
	cs := s.Child.Schema()
	var rows [][]byte
	s.Child.Execute(ctx, func(tup []byte) bool {
		rows = append(rows, tup)
		return true
	})
	sort.SliceStable(rows, func(i, j int) bool {
		for _, f := range s.idx {
			a, b := cs.Get(rows[i], f), cs.Get(rows[j], f)
			if a != b {
				return a < b
			}
		}
		return false
	})
	for _, tup := range rows {
		if !emit(tup) {
			return
		}
	}
}

// String implements Plan.
func (s *Sort) String() string {
	return "Sort(" + strings.Join(s.Fields, ", ") + ")"
}
