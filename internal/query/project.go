package query

import (
	"fmt"

	"dbproc/internal/metric"
	"dbproc/internal/relation"
	"dbproc/internal/tuple"
)

// Project narrows each input tuple to the named fields, optionally
// renaming them. The output tuple keeps the child's width (the paper's
// fixed S-byte result tuples).
type Project struct {
	Child Plan

	out     *tuple.Schema
	srcIdx  []int
	nFields int
}

// NewProject builds the node. fields lists child field names to keep;
// names lists the corresponding output names (nil keeps the child names).
func NewProject(child Plan, fields []string, names []string) *Project {
	if len(fields) == 0 {
		panic("query: projection of no fields")
	}
	if names == nil {
		names = fields
	}
	if len(names) != len(fields) {
		panic("query: projection names/fields length mismatch")
	}
	cs := child.Schema()
	outFields := make([]tuple.Field, len(fields))
	srcIdx := make([]int, len(fields))
	for i, f := range fields {
		srcIdx[i] = cs.MustFieldIndex(f)
		outFields[i] = tuple.Field{Name: names[i]}
	}
	out := tuple.NewSchema(cs.Name()+"_proj", cs.Width(), outFields...)
	return &Project{Child: child, out: out, srcIdx: srcIdx, nFields: len(fields)}
}

// Schema implements Plan.
func (p *Project) Schema() *tuple.Schema { return p.out }

// Children implements Plan.
func (p *Project) Children() []Plan { return []Plan{p.Child} }

// Execute implements Plan.
func (p *Project) Execute(ctx *Ctx, emit func([]byte) bool) {
	cs := p.Child.Schema()
	p.Child.Execute(ctx, func(tup []byte) bool {
		out := p.out.New()
		for i, src := range p.srcIdx {
			p.out.Set(out, i, cs.Get(tup, src))
		}
		return emit(out)
	})
}

// String implements Plan.
func (p *Project) String() string {
	out := "Project("
	for i := 0; i < p.out.NumFields(); i++ {
		if i > 0 {
			out += ", "
		}
		out += p.out.FieldName(i)
	}
	return out + ")"
}

// HashScan reads every tuple of a hash-organized relation, charging one
// predicate screen per tuple (the qualification test of a full scan) plus
// the storage layer's page reads. It is the driver of last resort for
// queries with no usable B-tree restriction.
type HashScan struct {
	Rel *relation.Relation
}

// NewHashScan validates and builds the node.
func NewHashScan(rel *relation.Relation) *HashScan {
	if rel.Hash() == nil {
		panic("query: HashScan needs a hash relation")
	}
	return &HashScan{Rel: rel}
}

// Schema implements Plan.
func (s *HashScan) Schema() *tuple.Schema { return s.Rel.Schema() }

// Children implements Plan.
func (s *HashScan) Children() []Plan { return nil }

// Execute implements Plan. The scan's bucket reads and per-tuple screens
// are attributed to the hashidx component.
func (s *HashScan) Execute(ctx *Ctx, emit func([]byte) bool) {
	prev := ctx.Meter.SetComponent(metric.CompHashIdx)
	defer ctx.Meter.SetComponent(prev)
	s.Rel.Hash().ScanAll(ctx.Pager, func(rec []byte) bool {
		ctx.Meter.Screen(1)
		out := make([]byte, len(rec))
		copy(out, rec)
		return emit(out)
	})
}

// String implements Plan.
func (s *HashScan) String() string {
	return fmt.Sprintf("HashScan(%s)", s.Rel.Schema().Name())
}
