// Package query provides predicates, compiled query plans, and a metered
// executor. Plans are built once when a procedure or view is defined and
// executed without further optimization — the paper's "statically
// optimized" regime: all planning cost is paid at definition time.
//
// The executor charges the meter C1 per predicate screen; page I/O is
// charged by the storage layer as plans touch relations.
package query

import (
	"fmt"

	"dbproc/internal/tuple"
)

// Op is a comparison operator, the operator set of the paper's t-const
// nodes: {<, <=, =, !=, >=, >}.
type Op int

// Comparison operators.
const (
	Lt Op = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

// Eval applies the operator to two attribute values.
func (op Op) Eval(a, b int64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Ge:
		return a >= b
	case Gt:
		return a > b
	default:
		panic(fmt.Sprintf("query: invalid operator %d", int(op)))
	}
}

// String returns the operator's SQL-ish spelling.
func (op Op) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "!="
	case Ge:
		return ">="
	case Gt:
		return ">"
	default:
		return "?"
	}
}

// Predicate is a boolean condition over one tuple.
type Predicate interface {
	// Eval reports whether the tuple satisfies the predicate.
	Eval(s *tuple.Schema, tup []byte) bool
	// String renders the predicate for explain output.
	String() string
}

// Compare is "attribute op constant", the condition form of a t-const
// node.
type Compare struct {
	Field string
	Op    Op
	Value int64
}

// Eval implements Predicate.
func (c Compare) Eval(s *tuple.Schema, tup []byte) bool {
	return c.Op.Eval(s.GetByName(tup, c.Field), c.Value)
}

// String implements Predicate.
func (c Compare) String() string {
	return fmt.Sprintf("%s %s %d", c.Field, c.Op, c.Value)
}

// Range is the inclusive band "lo <= attribute <= hi", the natural form of
// the paper's selectivity-f restriction C_f over a clustered attribute.
type Range struct {
	Field  string
	Lo, Hi int64
}

// Eval implements Predicate.
func (r Range) Eval(s *tuple.Schema, tup []byte) bool {
	v := s.GetByName(tup, r.Field)
	return v >= r.Lo && v <= r.Hi
}

// String implements Predicate.
func (r Range) String() string {
	return fmt.Sprintf("%d <= %s <= %d", r.Lo, r.Field, r.Hi)
}

// And is the conjunction of its members; an empty And is true.
type And []Predicate

// Eval implements Predicate.
func (a And) Eval(s *tuple.Schema, tup []byte) bool {
	for _, p := range a {
		if !p.Eval(s, tup) {
			return false
		}
	}
	return true
}

// String implements Predicate.
func (a And) String() string {
	if len(a) == 0 {
		return "true"
	}
	out := ""
	for i, p := range a {
		if i > 0 {
			out += " and "
		}
		out += p.String()
	}
	return out
}

// True is the always-true predicate.
type True struct{}

// Eval implements Predicate.
func (True) Eval(*tuple.Schema, []byte) bool { return true }

// String implements Predicate.
func (True) String() string { return "true" }
