package query

import (
	"testing"

	"dbproc/internal/tuple"
)

var predSchema = tuple.NewSchema("t", 24, tuple.Field{Name: "x"}, tuple.Field{Name: "y"})

func tup(x, y int64) []byte {
	t := predSchema.New()
	predSchema.Set(t, 0, x)
	predSchema.Set(t, 1, y)
	return t
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Eq, 5, 5, true}, {Eq, 5, 6, false},
		{Ne, 5, 6, true}, {Ne, 5, 5, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	if Lt.String() != "<" || Ge.String() != ">=" || Op(99).String() != "?" {
		t.Error("Op.String wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid op Eval should panic")
		}
	}()
	Op(99).Eval(1, 2)
}

func TestComparePredicate(t *testing.T) {
	p := Compare{Field: "x", Op: Gt, Value: 10}
	if !p.Eval(predSchema, tup(11, 0)) || p.Eval(predSchema, tup(10, 0)) {
		t.Error("Compare.Eval wrong")
	}
	if p.String() != "x > 10" {
		t.Errorf("String = %q", p.String())
	}
}

func TestRangePredicate(t *testing.T) {
	p := Range{Field: "y", Lo: 5, Hi: 7}
	for v, want := range map[int64]bool{4: false, 5: true, 6: true, 7: true, 8: false} {
		if got := p.Eval(predSchema, tup(0, v)); got != want {
			t.Errorf("range eval y=%d = %v, want %v", v, got, want)
		}
	}
	if p.String() != "5 <= y <= 7" {
		t.Errorf("String = %q", p.String())
	}
}

func TestAndPredicate(t *testing.T) {
	p := And{
		Compare{Field: "x", Op: Ge, Value: 1},
		Compare{Field: "y", Op: Lt, Value: 10},
	}
	if !p.Eval(predSchema, tup(1, 9)) {
		t.Error("And should pass")
	}
	if p.Eval(predSchema, tup(0, 9)) || p.Eval(predSchema, tup(1, 10)) {
		t.Error("And should fail")
	}
	if got := p.String(); got != "x >= 1 and y < 10" {
		t.Errorf("String = %q", got)
	}
	empty := And{}
	if !empty.Eval(predSchema, tup(0, 0)) || empty.String() != "true" {
		t.Error("empty And should be true")
	}
}

func TestTruePredicate(t *testing.T) {
	if !(True{}).Eval(predSchema, tup(0, 0)) || (True{}).String() != "true" {
		t.Error("True predicate wrong")
	}
}
