package query

import (
	"testing"

	"dbproc/internal/dbtest"
)

func TestAggregateScalarAndGrouped(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	scan := NewBTreeRangeScan(w.R1, 0, 79) // skey 0..79, a = tid % 40

	// Scalar.
	agg := NewAggregate(scan, nil, []AggSpec{
		{Fn: AggCount, Name: "n"},
		{Fn: AggSum, Field: "a", Name: "sum_a"},
		{Fn: AggMin, Field: "a", Name: "min_a"},
		{Fn: AggMax, Field: "a", Name: "max_a"},
		{Fn: AggAvg, Field: "a", Name: "avg_a"},
	})
	out := Run(agg, ctx)
	if len(out) != 1 {
		t.Fatalf("scalar rows = %d", len(out))
	}
	s := agg.Schema()
	// a values: 0..39 twice -> sum = 2*780 = 1560, avg = 19 (truncated).
	if s.GetByName(out[0], "n") != 80 || s.GetByName(out[0], "sum_a") != 1560 ||
		s.GetByName(out[0], "min_a") != 0 || s.GetByName(out[0], "max_a") != 39 ||
		s.GetByName(out[0], "avg_a") != 19 {
		t.Fatalf("scalar aggregates wrong: %s", s.String(out[0]))
	}

	// Grouped by a (two tuples per group).
	g := NewAggregate(scan, []string{"a"}, []AggSpec{{Fn: AggCount, Name: "n"}})
	rows := Run(g, ctx)
	if len(rows) != 40 {
		t.Fatalf("groups = %d, want 40", len(rows))
	}
	gs := g.Schema()
	prev := int64(-1)
	for _, row := range rows {
		if gs.GetByName(row, "n") != 2 {
			t.Fatalf("group count = %d, want 2", gs.GetByName(row, "n"))
		}
		if v := gs.GetByName(row, "a"); v <= prev {
			t.Fatal("groups not in ascending key order")
		} else {
			prev = v
		}
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	empty := &ValuesScan{Sch: w.R1.Schema()}
	// Scalar over empty: one zero row.
	agg := NewAggregate(empty, nil, []AggSpec{{Fn: AggCount, Name: "n"}, {Fn: AggAvg, Field: "a", Name: "avg"}})
	out := Run(agg, ctx)
	if len(out) != 1 || agg.Schema().GetByName(out[0], "n") != 0 || agg.Schema().GetByName(out[0], "avg") != 0 {
		t.Fatalf("empty scalar = %v", out)
	}
	// Grouped over empty: no rows.
	g := NewAggregate(empty, []string{"a"}, []AggSpec{{Fn: AggCount, Name: "n"}})
	if rows := Run(g, ctx); len(rows) != 0 {
		t.Fatalf("empty grouped = %d rows", len(rows))
	}
}

func TestAggregateNegativeValues(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	s1 := w.R1.Schema()
	vs := &ValuesScan{Sch: s1, Tuples: [][]byte{
		w.R1Tuple(1, 0, 0), w.R1Tuple(2, 0, 0),
	}}
	// Write negative values into 'a' directly.
	s1.SetByName(vs.Tuples[0], "a", -5)
	s1.SetByName(vs.Tuples[1], "a", -9)
	agg := NewAggregate(vs, nil, []AggSpec{
		{Fn: AggMin, Field: "a", Name: "mn"},
		{Fn: AggMax, Field: "a", Name: "mx"},
		{Fn: AggSum, Field: "a", Name: "sm"},
	})
	out := Run(agg, ctx)
	sch := agg.Schema()
	if sch.GetByName(out[0], "mn") != -9 || sch.GetByName(out[0], "mx") != -5 || sch.GetByName(out[0], "sm") != -14 {
		t.Fatalf("negative aggregates wrong: %s", sch.String(out[0]))
	}
}

func TestAggregateEarlyStopAndString(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	scan := NewBTreeRangeScan(w.R1, 0, 79)
	g := NewAggregate(scan, []string{"a"}, []AggSpec{{Fn: AggCount, Name: "n"}})
	count := 0
	g.Execute(ctx, func([]byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
	if got := g.String(); got != "Aggregate(count() by a)" {
		t.Fatalf("String = %q", got)
	}
	if len(g.Children()) != 1 {
		t.Fatal("Children wrong")
	}
}

func TestAggregatePanics(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	scan := NewBTreeRangeScan(w.R1, 0, 9)
	for name, fn := range map[string]func(){
		"no aggs":      func() { NewAggregate(scan, nil, nil) },
		"unknown fn":   func() { NewAggregate(scan, nil, []AggSpec{{Fn: "median", Field: "a", Name: "m"}}) },
		"bad field":    func() { NewAggregate(scan, nil, []AggSpec{{Fn: AggSum, Field: "zzz", Name: "s"}}) },
		"bad group":    func() { NewAggregate(scan, []string{"zzz"}, []AggSpec{{Fn: AggCount, Name: "n"}}) },
		"missing name": func() { NewAggregate(scan, nil, []AggSpec{{Fn: AggCount}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSortNode(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	s1 := w.R1.Schema()
	vs := &ValuesScan{Sch: s1, Tuples: [][]byte{
		w.R1Tuple(3, 9, 2), w.R1Tuple(1, 9, 1), w.R1Tuple(2, 4, 9),
	}}
	srt := NewSort(vs, []string{"skey", "a"})
	out := Run(srt, ctx)
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	wantTids := []int64{2, 1, 3} // skey 4 first; then skey 9 by a (1 then 2)
	for i, tup := range out {
		if got := s1.GetByName(tup, "tid"); got != wantTids[i] {
			t.Fatalf("order = %v at %d, want %v", got, i, wantTids)
		}
	}
	if srt.String() != "Sort(skey, a)" || len(srt.Children()) != 1 || srt.Schema() != s1 {
		t.Fatal("Sort accessors wrong")
	}
	// Early stop.
	n := 0
	srt.Execute(ctx, func([]byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
	for name, fn := range map[string]func(){
		"no fields": func() { NewSort(vs, nil) },
		"bad field": func() { NewSort(vs, []string{"zzz"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
