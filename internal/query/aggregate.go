package query

import (
	"fmt"
	"sort"
	"strings"

	"dbproc/internal/tuple"
)

// AggFn is an aggregate function over int64 attribute values.
type AggFn string

// Supported aggregate functions. Avg truncates toward zero (the engine is
// integer-valued, like QUEL's aggregates over int domains).
const (
	AggCount AggFn = "count"
	AggSum   AggFn = "sum"
	AggMin   AggFn = "min"
	AggMax   AggFn = "max"
	AggAvg   AggFn = "avg"
)

// AggSpec is one aggregate target.
type AggSpec struct {
	Fn    AggFn
	Field string // child field aggregated; ignored for count
	Name  string // output field name
}

// Aggregate groups its input by the GroupBy fields and computes the
// aggregates per group (hash aggregation; groups are emitted in ascending
// group-key order for determinism). With no GroupBy fields it emits one
// row for the whole input — also when the input is empty (count = 0,
// sum = 0, min/max = 0), matching QUEL's scalar aggregates.
//
// Aggregation state is query-processing machinery: it charges nothing
// beyond what the child charges.
type Aggregate struct {
	Child   Plan
	GroupBy []string
	Aggs    []AggSpec

	out      *tuple.Schema
	groupIdx []int
	aggIdx   []int
}

// NewAggregate validates and builds the node.
func NewAggregate(child Plan, groupBy []string, aggs []AggSpec) *Aggregate {
	if len(aggs) == 0 {
		panic("query: aggregate with no aggregate targets")
	}
	cs := child.Schema()
	fields := make([]tuple.Field, 0, len(groupBy)+len(aggs))
	groupIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		groupIdx[i] = cs.MustFieldIndex(g)
		fields = append(fields, tuple.Field{Name: g})
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		switch a.Fn {
		case AggCount:
			aggIdx[i] = -1
			if a.Field != "" {
				aggIdx[i] = cs.MustFieldIndex(a.Field)
			}
		case AggSum, AggMin, AggMax, AggAvg:
			aggIdx[i] = cs.MustFieldIndex(a.Field)
		default:
			panic(fmt.Sprintf("query: unknown aggregate %q", a.Fn))
		}
		if a.Name == "" {
			panic("query: aggregate target needs an output name")
		}
		fields = append(fields, tuple.Field{Name: a.Name})
	}
	width := cs.Width()
	if need := 8 * len(fields); need > width {
		width = need
	}
	return &Aggregate{
		Child:    child,
		GroupBy:  append([]string(nil), groupBy...),
		Aggs:     append([]AggSpec(nil), aggs...),
		out:      tuple.NewSchema(cs.Name()+"_agg", width, fields...),
		groupIdx: groupIdx,
		aggIdx:   aggIdx,
	}
}

// Schema implements Plan.
func (a *Aggregate) Schema() *tuple.Schema { return a.out }

// Children implements Plan.
func (a *Aggregate) Children() []Plan { return []Plan{a.Child} }

type aggState struct {
	group []int64
	count int64
	sum   []int64
	min   []int64
	max   []int64
}

// Execute implements Plan.
func (a *Aggregate) Execute(ctx *Ctx, emit func([]byte) bool) {
	cs := a.Child.Schema()
	groups := map[string]*aggState{}
	a.Child.Execute(ctx, func(tup []byte) bool {
		keyParts := make([]int64, len(a.groupIdx))
		var key strings.Builder
		for i, gi := range a.groupIdx {
			keyParts[i] = cs.Get(tup, gi)
			fmt.Fprintf(&key, "%d|", keyParts[i])
		}
		st := groups[key.String()]
		if st == nil {
			st = &aggState{
				group: keyParts,
				sum:   make([]int64, len(a.Aggs)),
				min:   make([]int64, len(a.Aggs)),
				max:   make([]int64, len(a.Aggs)),
			}
			groups[key.String()] = st
		}
		st.count++
		for i, ai := range a.aggIdx {
			if ai < 0 {
				continue
			}
			v := cs.Get(tup, ai)
			st.sum[i] += v
			if st.count == 1 || v < st.min[i] {
				st.min[i] = v
			}
			if st.count == 1 || v > st.max[i] {
				st.max[i] = v
			}
		}
		return true
	})
	// Scalar aggregates over an empty input still produce one row.
	if len(groups) == 0 && len(a.GroupBy) == 0 {
		groups[""] = &aggState{
			sum: make([]int64, len(a.Aggs)),
			min: make([]int64, len(a.Aggs)),
			max: make([]int64, len(a.Aggs)),
		}
	}

	states := make([]*aggState, 0, len(groups))
	for _, st := range groups {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool {
		gi, gj := states[i].group, states[j].group
		for k := range gi {
			if gi[k] != gj[k] {
				return gi[k] < gj[k]
			}
		}
		return false
	})

	for _, st := range states {
		out := a.out.New()
		for i, v := range st.group {
			a.out.Set(out, i, v)
		}
		for i, spec := range a.Aggs {
			var v int64
			switch spec.Fn {
			case AggCount:
				v = st.count
			case AggSum:
				v = st.sum[i]
			case AggMin:
				v = st.min[i]
			case AggMax:
				v = st.max[i]
			case AggAvg:
				if st.count > 0 {
					v = st.sum[i] / st.count
				}
			}
			a.out.Set(out, len(st.group)+i, v)
		}
		if !emit(out) {
			return
		}
	}
}

// String implements Plan.
func (a *Aggregate) String() string {
	var parts []string
	for _, spec := range a.Aggs {
		parts = append(parts, fmt.Sprintf("%s(%s)", spec.Fn, spec.Field))
	}
	s := "Aggregate(" + strings.Join(parts, ", ")
	if len(a.GroupBy) > 0 {
		s += " by " + strings.Join(a.GroupBy, ", ")
	}
	return s + ")"
}
