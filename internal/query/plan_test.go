package query

import (
	"strings"
	"testing"

	"dbproc/internal/dbtest"
)

func TestBTreeRangeScanSelectsBand(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	scan := NewBTreeRangeScan(w.R1, 50, 59)
	w.Pager.BeginOp()
	out := Run(scan, ctx)
	if len(out) != 10 {
		t.Fatalf("scan returned %d tuples, want 10", len(out))
	}
	s := w.R1.Schema()
	for i, tup := range out {
		if got := s.GetByName(tup, "skey"); got != int64(50+i) {
			t.Fatalf("tuple %d has skey %d", i, got)
		}
	}
	// One screen per tuple in the band.
	if got := w.Meter.Snapshot().Screens; got != 10 {
		t.Fatalf("scan charged %d screens, want 10", got)
	}
	// Inverted band yields nothing.
	if got := Run(NewBTreeRangeScan(w.R1, 59, 50), ctx); len(got) != 0 {
		t.Fatalf("inverted band returned %d tuples", len(got))
	}
}

func TestFilterScreensAndFilters(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	plan := &Filter{
		Child: NewBTreeRangeScan(w.R1, 0, 99),
		Pred:  Compare{Field: "a", Op: Lt, Value: 5},
	}
	w.Pager.BeginOp()
	w.Meter.Reset()
	out := Run(plan, ctx)
	// a = tid % 40; tids 0..99 with a<5: tids 0-4,40-44,80-84 = 15.
	if len(out) != 15 {
		t.Fatalf("filter returned %d tuples, want 15", len(out))
	}
	// 100 screens by the scan + 100 by the filter.
	if got := w.Meter.Snapshot().Screens; got != 200 {
		t.Fatalf("charged %d screens, want 200", got)
	}
}

func TestHashJoinProbeModel1Shape(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	// The model-1 P2 plan: scan R1 band, probe R2 on a=b, filter C_f2(p2).
	join := NewHashJoinProbe(NewBTreeRangeScan(w.R1, 0, 39), w.R2, "a", 64)
	plan := &Filter{Child: join, Pred: Compare{Field: "r2_p2", Op: Lt, Value: 3}}
	w.Pager.BeginOp()
	out := Run(plan, ctx)
	// skey 0..39 -> a = 0..39, each joins r2 tuple with b=a; p2 = b%10 < 3
	// keeps b in {0,1,2,10,11,12,20,21,22,30,31,32} = 12 tuples.
	if len(out) != 12 {
		t.Fatalf("join returned %d tuples, want 12", len(out))
	}
	s := plan.Schema()
	for _, tup := range out {
		if s.GetByName(tup, "a") != s.GetByName(tup, "r2_b") {
			t.Fatalf("join key mismatch in %s", s.String(tup))
		}
		if s.GetByName(tup, "r2_p2") >= 3 {
			t.Fatalf("filter leaked %s", s.String(tup))
		}
	}
}

func TestThreeWayJoinModel2Shape(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	// 9 output attributes need 72 bytes; use a wider result tuple.
	j1 := NewHashJoinProbe(NewBTreeRangeScan(w.R1, 10, 19), w.R2, "a", 80)
	j2 := NewHashJoinProbe(j1, w.R3, "r2_c", 80)
	w.Pager.BeginOp()
	out := Run(j2, ctx)
	if len(out) != 10 {
		t.Fatalf("three-way join returned %d tuples, want 10", len(out))
	}
	s := j2.Schema()
	for _, tup := range out {
		if s.GetByName(tup, "r2_c") != s.GetByName(tup, "r3_d") {
			t.Fatalf("second join key mismatch in %s", s.String(tup))
		}
	}
}

func TestValuesScan(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	vs := &ValuesScan{Sch: w.R1.Schema(), Tuples: [][]byte{
		w.R1Tuple(1000, 5, 3), w.R1Tuple(1001, 6, 4),
	}}
	out := Run(vs, ctx)
	if len(out) != 2 {
		t.Fatalf("ValuesScan returned %d", len(out))
	}
	if w.Meter.Milliseconds() != 0 {
		t.Fatal("ValuesScan charged cost")
	}
	// Early stop.
	count := 0
	vs.Execute(ctx, func([]byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	// Emitted tuples are copies: mutating one must not corrupt the source.
	out[0][0] = 0xFF
	out2 := Run(vs, ctx)
	if out2[0][0] == 0xFF {
		t.Fatal("ValuesScan aliases its input tuples")
	}
}

func TestJoinIOCharges(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	// 10 probes into R2 (40 tuples on 10 pages at 4/page, b unique):
	// distinct buckets touched <= 10 pages, >= 1.
	join := NewHashJoinProbe(NewBTreeRangeScan(w.R1, 0, 9), w.R2, "a", 64)
	w.Pager.BeginOp()
	w.Meter.Reset()
	Run(join, ctx)
	reads := w.Meter.Snapshot().PageReads
	if reads < 3 || reads > 14 {
		t.Fatalf("join charged %d reads, expected a handful (scan+probes)", reads)
	}
}

func TestExplainRendersTree(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	j1 := NewHashJoinProbe(NewBTreeRangeScan(w.R1, 0, 9), w.R2, "a", 64)
	plan := &Filter{Child: j1, Pred: And{
		Compare{Field: "r2_p2", Op: Le, Value: 3},
		Range{Field: "skey", Lo: 0, Hi: 9},
	}}
	got := Explain(plan)
	for _, want := range []string{"Filter(", "HashJoinProbe(a = r2.b)", "BTreeRangeScan(r1:", "  "} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain output %q missing %q", got, want)
		}
	}
	lines := strings.Count(got, "\n")
	if lines != 3 {
		t.Errorf("Explain rendered %d lines, want 3:\n%s", lines, got)
	}
}

func TestPlanConstructorPanics(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	for name, fn := range map[string]func(){
		"range scan on hash relation": func() { NewBTreeRangeScan(w.R2, 0, 1) },
		"hash join on btree relation": func() { NewHashJoinProbe(&ValuesScan{Sch: w.R2.Schema()}, w.R1, "b", 64) },
		"unknown probe field":         func() { NewHashJoinProbe(&ValuesScan{Sch: w.R1.Schema()}, w.R2, "zzz", 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
