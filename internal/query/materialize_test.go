package query

import (
	"testing"

	"dbproc/internal/dbtest"
	"dbproc/internal/tuple"
)

func TestMaterializeSortsByKey(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	s1 := w.R1.Schema()
	// Feed values out of key order; Materialize must sort them.
	vs := &ValuesScan{Sch: s1, Tuples: [][]byte{
		w.R1Tuple(3, 30, 0), w.R1Tuple(1, 10, 0), w.R1Tuple(2, 20, 0),
	}}
	key := func(tup []byte) uint64 {
		return tuple.ClusterKey(s1.GetByName(tup, "skey"), s1.GetByName(tup, "tid"))
	}
	keys, recs := Materialize(vs, key, ctx)
	if len(keys) != 3 || len(recs) != 3 {
		t.Fatalf("Materialize returned %d/%d", len(keys), len(recs))
	}
	want := []uint64{tuple.ClusterKey(10, 1), tuple.ClusterKey(20, 2), tuple.ClusterKey(30, 3)}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
		if s1.GetByName(recs[i], "skey") != int64((i+1)*10) {
			t.Fatalf("record %d out of order", i)
		}
	}
	// Empty plan materializes to empty slices.
	keys, recs = Materialize(&ValuesScan{Sch: s1}, key, ctx)
	if len(keys) != 0 || len(recs) != 0 {
		t.Fatal("empty Materialize not empty")
	}
}

func TestRefineFiltersWithoutScreens(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	vs := &ValuesScan{Sch: w.R1.Schema(), Tuples: [][]byte{
		w.R1Tuple(1, 5, 0), w.R1Tuple(2, 15, 0), w.R1Tuple(3, 25, 0),
	}}
	r := &Refine{Child: vs, Pred: Range{Field: "skey", Lo: 10, Hi: 20}}
	if r.Schema() != vs.Sch {
		t.Fatal("Refine.Schema wrong")
	}
	if len(r.Children()) != 1 {
		t.Fatal("Refine.Children wrong")
	}
	w.Meter.Reset()
	out := Run(r, ctx)
	if len(out) != 1 || w.R1.Schema().GetByName(out[0], "tid") != 2 {
		t.Fatalf("Refine output wrong: %d tuples", len(out))
	}
	if c := w.Meter.Snapshot(); c.Screens != 0 {
		t.Fatalf("Refine charged %d screens; maintenance filters are free", c.Screens)
	}
	if got := r.String(); got != "Refine(10 <= skey <= 20)" {
		t.Fatalf("String = %q", got)
	}
	// Early stop propagates.
	count := 0
	big := &Refine{Child: vs, Pred: True{}}
	big.Execute(ctx, func([]byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestValuesScanStringAndChildren(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	vs := &ValuesScan{Sch: w.R1.Schema(), Tuples: [][]byte{w.R1Tuple(1, 1, 1)}}
	if got := vs.String(); got != "ValuesScan(r1, 1 tuples)" {
		t.Fatalf("String = %q", got)
	}
	if vs.Children() != nil {
		t.Fatal("ValuesScan has no children")
	}
}
