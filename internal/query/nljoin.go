package query

import (
	"fmt"

	"dbproc/internal/tuple"
)

// NestedLoopJoin joins every outer tuple against an in-memory
// materialization of the inner plan on OuterField = InnerField. It is the
// maintenance-plan join for the direction the storage has no index for:
// e.g. joining an R2 delta set back to the R1 tuples of a view's C_f band,
// where R1 is clustered on its selection attribute, not the join
// attribute. The outer side's page reads and screens are charged as usual
// by its own nodes; the in-memory hash of the (small) inner delta set is
// maintenance machinery and charges nothing.
//
// The output schema is Outer's attributes followed by Inner's with
// InnerPrefix, so a NestedLoopJoin(R1-scan, R2-deltas) emits tuples
// byte-identical to HashJoinProbe(R1-scan, R2).
type NestedLoopJoin struct {
	Outer, Inner           Plan
	OuterField, InnerField string

	out      *tuple.Schema
	outerIdx int
	innerIdx int
	outerN   int
}

// NewNestedLoopJoin validates and builds the node. width is the output
// tuple width in bytes.
func NewNestedLoopJoin(outer, inner Plan, outerField, innerField, innerPrefix string, width int) *NestedLoopJoin {
	out := tuple.Concat(
		outer.Schema().Name()+"_nljoin_"+inner.Schema().Name(),
		width, outer.Schema(), inner.Schema(), innerPrefix)
	return &NestedLoopJoin{
		Outer:      outer,
		Inner:      inner,
		OuterField: outerField,
		InnerField: innerField,
		out:        out,
		outerIdx:   outer.Schema().MustFieldIndex(outerField),
		innerIdx:   inner.Schema().MustFieldIndex(innerField),
		outerN:     outer.Schema().NumFields(),
	}
}

// Schema implements Plan.
func (j *NestedLoopJoin) Schema() *tuple.Schema { return j.out }

// Children implements Plan.
func (j *NestedLoopJoin) Children() []Plan { return []Plan{j.Outer, j.Inner} }

// Execute implements Plan.
func (j *NestedLoopJoin) Execute(ctx *Ctx, emit func([]byte) bool) {
	is := j.Inner.Schema()
	byKey := make(map[int64][][]byte)
	j.Inner.Execute(ctx, func(tup []byte) bool {
		k := is.Get(tup, j.innerIdx)
		byKey[k] = append(byKey[k], tup)
		return true
	})
	if len(byKey) == 0 {
		return
	}
	os := j.Outer.Schema()
	j.Outer.Execute(ctx, func(otup []byte) bool {
		for _, itup := range byKey[os.Get(otup, j.outerIdx)] {
			out := j.out.New()
			for i := 0; i < j.outerN; i++ {
				j.out.Set(out, i, os.Get(otup, i))
			}
			for i := 0; i < is.NumFields(); i++ {
				j.out.Set(out, j.outerN+i, is.Get(itup, i))
			}
			if !emit(out) {
				return false
			}
		}
		return true
	})
}

// String implements Plan.
func (j *NestedLoopJoin) String() string {
	return fmt.Sprintf("NestedLoopJoin(%s = %s.%s)", j.OuterField, j.Inner.Schema().Name(), j.InnerField)
}
