package query

import (
	"bytes"
	"sort"
	"testing"

	"dbproc/internal/dbtest"
)

// TestNestedLoopJoinMatchesHashJoin: joining the same inputs must produce
// the same combined tuples as the hash-probe join, independent of which
// side drives.
func TestNestedLoopJoinMatchesHashJoin(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}

	hash := NewHashJoinProbe(NewBTreeRangeScan(w.R1, 20, 59), w.R2, "a", 80)
	want := Run(hash, ctx)

	// Nested loop with the full R2 contents as the in-memory side.
	var r2Tuples [][]byte
	w.R2.Hash().ScanAll(w.Pager, func(rec []byte) bool {
		r2Tuples = append(r2Tuples, append([]byte(nil), rec...))
		return true
	})
	nl := NewNestedLoopJoin(
		NewBTreeRangeScan(w.R1, 20, 59),
		&ValuesScan{Sch: w.R2.Schema(), Tuples: r2Tuples},
		"a", "b", "r2_", 80)
	got := Run(nl, ctx)

	key := func(b []byte) string { return string(b) }
	sortTuples := func(ts [][]byte) {
		sort.Slice(ts, func(i, j int) bool { return key(ts[i]) < key(ts[j]) })
	}
	sortTuples(want)
	sortTuples(got)
	if len(got) != len(want) {
		t.Fatalf("nested loop returned %d tuples, hash join %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("tuple %d differs between join implementations", i)
		}
	}
	// Schemas expose the same field names.
	for i := 0; i < hash.Schema().NumFields(); i++ {
		if hash.Schema().FieldName(i) != nl.Schema().FieldName(i) {
			t.Fatalf("field %d: %q vs %q", i, hash.Schema().FieldName(i), nl.Schema().FieldName(i))
		}
	}
}

func TestNestedLoopJoinEmptyInner(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	nl := NewNestedLoopJoin(
		NewBTreeRangeScan(w.R1, 0, 50),
		&ValuesScan{Sch: w.R2.Schema()},
		"a", "b", "r2_", 80)
	w.Pager.BeginOp()
	w.Meter.Reset()
	if out := Run(nl, ctx); len(out) != 0 {
		t.Fatalf("empty inner joined %d tuples", len(out))
	}
	// An empty inner must not even scan the outer.
	if c := w.Meter.Snapshot(); c.PageReads != 0 || c.Screens != 0 {
		t.Fatalf("empty inner still scanned the outer: %v", c)
	}
}

func TestNestedLoopJoinEarlyStop(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	var r2Tuples [][]byte
	w.R2.Hash().ScanAll(w.Pager, func(rec []byte) bool {
		r2Tuples = append(r2Tuples, append([]byte(nil), rec...))
		return true
	})
	nl := NewNestedLoopJoin(
		NewBTreeRangeScan(w.R1, 0, 99),
		&ValuesScan{Sch: w.R2.Schema(), Tuples: r2Tuples},
		"a", "b", "r2_", 80)
	count := 0
	nl.Execute(ctx, func([]byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestNestedLoopJoinDuplicateInnerKeys(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager}
	s2 := w.R2.Schema()
	dup := func(b, tid int64) []byte {
		tup := s2.New()
		s2.SetByName(tup, "tid", tid)
		s2.SetByName(tup, "b", b)
		return tup
	}
	nl := NewNestedLoopJoin(
		NewBTreeRangeScan(w.R1, 5, 5), // one tuple, a = 5
		&ValuesScan{Sch: s2, Tuples: [][]byte{dup(5, 100), dup(5, 101), dup(6, 102)}},
		"a", "b", "r2_", 80)
	out := Run(nl, ctx)
	if len(out) != 2 {
		t.Fatalf("duplicate inner keys joined %d tuples, want 2", len(out))
	}
}

func TestNestedLoopJoinExplain(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	nl := NewNestedLoopJoin(
		NewBTreeRangeScan(w.R1, 0, 9),
		&ValuesScan{Sch: w.R2.Schema()},
		"a", "b", "r2_", 80)
	if got := nl.String(); got != "NestedLoopJoin(a = r2.b)" {
		t.Fatalf("String = %q", got)
	}
	if len(nl.Children()) != 2 {
		t.Fatal("Children should expose both inputs")
	}
}

func TestLockSinkObservesReads(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	sink := &recordingSink{keys: map[string][]int64{}}
	ctx := &Ctx{Meter: w.Meter, Pager: w.Pager, Locks: sink}
	plan := NewHashJoinProbe(NewBTreeRangeScan(w.R1, 10, 14), w.R2, "a", 80)
	Run(plan, ctx)
	if len(sink.ranges) != 1 || sink.ranges[0] != [3]interface{}{"r1", int64(10), int64(14)} {
		t.Fatalf("ranges = %v", sink.ranges)
	}
	if got := len(sink.keys["r2"]); got != 5 {
		t.Fatalf("probe keys recorded = %d, want 5", got)
	}
}

type recordingSink struct {
	ranges [][3]interface{}
	keys   map[string][]int64
}

func (s *recordingSink) ReadRange(rel string, lo, hi int64) {
	s.ranges = append(s.ranges, [3]interface{}{rel, lo, hi})
}

func (s *recordingSink) ReadKey(rel string, key int64) {
	s.keys[rel] = append(s.keys[rel], key)
}
