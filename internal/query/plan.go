package query

import (
	"fmt"
	"sort"
	"strings"

	"dbproc/internal/metric"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// LockSink observes what a plan reads, so rule indexing can set i-locks on
// all data touched during query processing. Scans report their index
// interval; hash probes report the probed key.
type LockSink interface {
	ReadRange(rel string, lo, hi int64)
	ReadKey(rel string, key int64)
}

// Ctx carries per-execution state: the meter that predicate screens are
// charged to, the executing session's pager that storage-layer page I/O
// goes through (required by plans that touch relations; Pager.Meter()
// must be the same meter), and an optional lock sink for rule indexing.
type Ctx struct {
	Meter *metric.Meter
	Pager *storage.Pager
	Locks LockSink
}

// Plan is a compiled, executable query plan node. Execute streams output
// tuples to emit until the input is exhausted or emit returns false.
// Emitted slices are freshly allocated and may be retained by the caller.
type Plan interface {
	// Schema describes the emitted tuples.
	Schema() *tuple.Schema
	// Execute runs the plan.
	Execute(ctx *Ctx, emit func(tup []byte) bool)
	// String names the node for explain output.
	String() string
	// Children returns the node's inputs, outermost first.
	Children() []Plan
}

// BTreeRangeScan scans a B-tree relation's clustering attribute over the
// inclusive value band [Lo, Hi] — the paper's "B-tree index scan on R1"
// used by both procedure types. It charges one predicate screen per tuple
// in the band (the model's C1·fN term) on top of the storage layer's index
// descent and leaf reads.
type BTreeRangeScan struct {
	Rel    *relation.Relation
	Lo, Hi int64
}

// NewBTreeRangeScan validates and builds the scan node.
func NewBTreeRangeScan(rel *relation.Relation, lo, hi int64) *BTreeRangeScan {
	if rel.Tree() == nil {
		panic("query: BTreeRangeScan needs a B-tree relation")
	}
	return &BTreeRangeScan{Rel: rel, Lo: lo, Hi: hi}
}

// Schema implements Plan.
func (s *BTreeRangeScan) Schema() *tuple.Schema { return s.Rel.Schema() }

// Children implements Plan.
func (s *BTreeRangeScan) Children() []Plan { return nil }

// Execute implements Plan. The scan's index descent, leaf reads and
// per-tuple screens are attributed to the btree component; work done by
// the emit chain runs under the caller's own scope only if the consuming
// node sets one (see HashJoinProbe).
func (s *BTreeRangeScan) Execute(ctx *Ctx, emit func([]byte) bool) {
	if s.Lo > s.Hi {
		return
	}
	if ctx.Locks != nil {
		ctx.Locks.ReadRange(s.Rel.Schema().Name(), s.Lo, s.Hi)
	}
	prev := ctx.Meter.SetComponent(metric.CompBTree)
	defer ctx.Meter.SetComponent(prev)
	lo := tuple.MinKeyFor(s.Lo)
	hi := tuple.MaxKeyFor(s.Hi)
	s.Rel.Tree().ScanRange(ctx.Pager, lo, hi, func(rec []byte) bool {
		ctx.Meter.Screen(1)
		out := make([]byte, len(rec))
		copy(out, rec)
		return emit(out)
	})
}

// String implements Plan.
func (s *BTreeRangeScan) String() string {
	cf := s.Rel.Schema().FieldName(s.Rel.ClusterField())
	return fmt.Sprintf("BTreeRangeScan(%s: %d <= %s <= %d)", s.Rel.Schema().Name(), s.Lo, cf, s.Hi)
}

// ValuesScan replays in-memory tuples, the input node of AVM delta plans
// (the paper's V(a, B) and V(d, B) evaluations over the A_net/D_net sets).
// It charges nothing itself.
type ValuesScan struct {
	Sch    *tuple.Schema
	Tuples [][]byte
}

// Schema implements Plan.
func (v *ValuesScan) Schema() *tuple.Schema { return v.Sch }

// Children implements Plan.
func (v *ValuesScan) Children() []Plan { return nil }

// Execute implements Plan.
func (v *ValuesScan) Execute(_ *Ctx, emit func([]byte) bool) {
	for _, t := range v.Tuples {
		out := make([]byte, len(t))
		copy(out, t)
		if !emit(out) {
			return
		}
	}
}

// String implements Plan.
func (v *ValuesScan) String() string {
	return fmt.Sprintf("ValuesScan(%s, %d tuples)", v.Sch.Name(), len(v.Tuples))
}

// Filter passes through tuples satisfying Pred, charging one screen per
// input tuple.
type Filter struct {
	Child Plan
	Pred  Predicate
}

// Schema implements Plan.
func (f *Filter) Schema() *tuple.Schema { return f.Child.Schema() }

// Children implements Plan.
func (f *Filter) Children() []Plan { return []Plan{f.Child} }

// Execute implements Plan. Filter screens are attributed to the query
// component (plan-level predicate evaluation, distinct from the screens an
// index scan performs itself).
func (f *Filter) Execute(ctx *Ctx, emit func([]byte) bool) {
	s := f.Child.Schema()
	f.Child.Execute(ctx, func(tup []byte) bool {
		prev := ctx.Meter.SetComponent(metric.CompQuery)
		ctx.Meter.Screen(1)
		ctx.Meter.SetComponent(prev)
		if !f.Pred.Eval(s, tup) {
			return true
		}
		return emit(tup)
	})
}

// String implements Plan.
func (f *Filter) String() string { return "Filter(" + f.Pred.String() + ")" }

// Refine passes through tuples satisfying Pred like Filter, but charges no
// predicate screens: it is for maintenance (delta) plans, where the cost
// model attributes all screening either to rule indexing (charged when
// deltas are routed to views) or to nothing at all (the model's C_join
// terms are pure page I/O). Use Filter in user-facing query plans.
type Refine struct {
	Child Plan
	Pred  Predicate
}

// Schema implements Plan.
func (f *Refine) Schema() *tuple.Schema { return f.Child.Schema() }

// Children implements Plan.
func (f *Refine) Children() []Plan { return []Plan{f.Child} }

// Execute implements Plan.
func (f *Refine) Execute(ctx *Ctx, emit func([]byte) bool) {
	s := f.Child.Schema()
	f.Child.Execute(ctx, func(tup []byte) bool {
		if !f.Pred.Eval(s, tup) {
			return true
		}
		return emit(tup)
	})
}

// String implements Plan.
func (f *Refine) String() string { return "Refine(" + f.Pred.String() + ")" }

// HashJoinProbe implements index-nested-loop join through a hash-organized
// relation: for each input tuple it probes the table's hash index with the
// input's ProbeField value and emits one concatenated tuple per match.
// Probing charges page reads through the storage layer; key comparison
// inside a bucket is hash machinery, not a predicate screen.
type HashJoinProbe struct {
	Child      Plan
	Table      *relation.Relation
	ProbeField string

	out        *tuple.Schema
	probeIdx   int
	leftFields int
}

// NewHashJoinProbe builds the join node. The output schema is the child's
// attributes followed by the table's attributes prefixed with the table's
// name and an underscore, in a tuple of width bytes.
func NewHashJoinProbe(child Plan, table *relation.Relation, probeField string, width int) *HashJoinProbe {
	if table.Hash() == nil {
		panic("query: HashJoinProbe needs a hash relation")
	}
	rightPrefix := table.Schema().Name() + "_"
	out := tuple.Concat(
		child.Schema().Name()+"_join_"+table.Schema().Name(),
		width, child.Schema(), table.Schema(), rightPrefix)
	return &HashJoinProbe{
		Child:      child,
		Table:      table,
		ProbeField: probeField,
		out:        out,
		probeIdx:   child.Schema().MustFieldIndex(probeField),
		leftFields: child.Schema().NumFields(),
	}
}

// Schema implements Plan.
func (j *HashJoinProbe) Schema() *tuple.Schema { return j.out }

// Children implements Plan.
func (j *HashJoinProbe) Children() []Plan { return []Plan{j.Child} }

// Execute implements Plan. Each probe's bucket I/O is attributed to the
// hashidx component, scoped inside the emit callback so the child scan
// keeps its own attribution.
func (j *HashJoinProbe) Execute(ctx *Ctx, emit func([]byte) bool) {
	ls := j.Child.Schema()
	rs := j.Table.Schema()
	j.Child.Execute(ctx, func(ltup []byte) bool {
		key := uint64(ls.Get(ltup, j.probeIdx))
		if ctx.Locks != nil {
			ctx.Locks.ReadKey(j.Table.Schema().Name(), int64(key))
		}
		prev := ctx.Meter.SetComponent(metric.CompHashIdx)
		defer ctx.Meter.SetComponent(prev)
		cont := true
		j.Table.Hash().LookupEach(ctx.Pager, key, func(rtup []byte) bool {
			out := j.out.New()
			for i := 0; i < j.leftFields; i++ {
				j.out.Set(out, i, ls.Get(ltup, i))
			}
			for i := 0; i < rs.NumFields(); i++ {
				j.out.Set(out, j.leftFields+i, rs.Get(rtup, i))
			}
			cont = emit(out)
			return cont
		})
		return cont
	})
}

// String implements Plan.
func (j *HashJoinProbe) String() string {
	return fmt.Sprintf("HashJoinProbe(%s = %s.%s)",
		j.ProbeField, j.Table.Schema().Name(),
		j.Table.Schema().FieldName(j.Table.HashField()))
}

// Materialize runs a plan and returns its results sorted by the given
// cluster key, ready to Replace a cached object's contents.
func Materialize(p Plan, key func([]byte) uint64, ctx *Ctx) ([]uint64, [][]byte) {
	type row struct {
		k uint64
		r []byte
	}
	var rows []row
	p.Execute(ctx, func(tup []byte) bool {
		rows = append(rows, row{key(tup), tup})
		return true
	})
	// Plans rooted at a clustered scan emit in key order already; sort
	// defensively for plans that do not.
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	keys := make([]uint64, len(rows))
	recs := make([][]byte, len(rows))
	for i, r := range rows {
		keys[i] = r.k
		recs[i] = r.r
	}
	return keys, recs
}

// Run executes the plan and collects every output tuple.
func Run(p Plan, ctx *Ctx) [][]byte {
	var out [][]byte
	p.Execute(ctx, func(tup []byte) bool {
		out = append(out, tup)
		return true
	})
	return out
}

// Explain renders the plan tree, one node per line, children indented.
func Explain(p Plan) string {
	var b strings.Builder
	var walk func(Plan, int)
	walk = func(n Plan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}
