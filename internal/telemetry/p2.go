package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// P2 is the Jain & Chlamtac P² streaming estimator for one quantile:
// five markers track the running min, max, the target quantile and its
// half-way neighbors, adjusted per observation with a piecewise-parabolic
// height update. Memory is O(1) and each Observe is O(1), so a sketch
// can ride inside every session of a soak without growing.
type P2 struct {
	q     float64
	count int64
	// pos are the markers' current positions (1-based observation ranks),
	// want their desired positions, h their heights (value estimates).
	pos  [5]float64
	want [5]float64
	inc  [5]float64
	h    [5]float64
}

// NewP2 returns an estimator for the q-quantile, 0 < q < 1.
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("telemetry: P2 quantile %v out of (0, 1)", q))
	}
	p := &P2{q: q}
	p.pos = [5]float64{1, 2, 3, 4, 5}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Observe feeds one value.
func (p *P2) Observe(v float64) {
	p.count++
	if p.count <= 5 {
		p.h[p.count-1] = v
		if p.count == 5 {
			sort.Float64s(p.h[:])
		}
		return
	}

	// Find the cell k holding v, stretching the extremes if needed.
	var k int
	switch {
	case v < p.h[0]:
		p.h[0] = v
		k = 0
	case v >= p.h[4]:
		p.h[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < p.h[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			hp := p.parabolic(i, s)
			if p.h[i-1] < hp && hp < p.h[i+1] {
				p.h[i] = hp
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (p *P2) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots
// a neighbor.
func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Count returns the observations fed so far.
func (p *P2) Count() int64 { return p.count }

// Value returns the current quantile estimate (exact while count <= 5).
func (p *P2) Value() float64 {
	if p.count == 0 {
		return 0
	}
	if p.count <= 5 {
		s := append([]float64(nil), p.h[:p.count]...)
		sort.Float64s(s)
		rank := int(math.Ceil(p.q*float64(p.count))) - 1
		if rank < 0 {
			rank = 0
		}
		return s[rank]
	}
	return p.h[2]
}

// defaultQuantiles are the sketch's tracked quantiles when none are
// given.
var defaultQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// Sketch tracks several quantiles of one stream with independent P²
// estimators plus running count/sum/min/max, behind a mutex so a live
// /metrics scrape can read while a session observes. Memory is O(1):
// five markers per quantile, nothing proportional to the stream.
type Sketch struct {
	mu    sync.Mutex
	qs    []float64
	est   []*P2
	count int64
	sum   float64
	min   float64
	max   float64
}

// NewSketch builds a sketch for the given quantiles (each in (0, 1)), or
// p50/p90/p95/p99 when none are given.
func NewSketch(qs ...float64) *Sketch {
	if len(qs) == 0 {
		qs = defaultQuantiles
	}
	s := &Sketch{qs: append([]float64(nil), qs...), min: math.Inf(1), max: math.Inf(-1)}
	for _, q := range s.qs {
		s.est = append(s.est, NewP2(q))
	}
	return s
}

// Observe feeds one value. Nil-safe.
func (s *Sketch) Observe(v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	for _, e := range s.est {
		e.Observe(v)
	}
	s.mu.Unlock()
}

// Quantile returns the estimate for q, which must be one of the tracked
// quantiles; untracked q (or a nil or empty sketch) returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, tq := range s.qs {
		if tq == q {
			return s.est[i].Value()
		}
	}
	return 0
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// SketchSummary is a point-in-time view of a sketch, embedded in engine
// results and benchmark artifacts.
type SketchSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary snapshots the sketch. Quantiles not tracked read 0. Nil-safe:
// a nil sketch summarizes to the zero value.
func (s *Sketch) Summary() SketchSummary {
	if s == nil {
		return SketchSummary{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := SketchSummary{Count: s.count}
	if s.count > 0 {
		sum.Mean = s.sum / float64(s.count)
		sum.Min = s.min
		sum.Max = s.max
	}
	for i, q := range s.qs {
		v := s.est[i].Value()
		switch q {
		case 0.5:
			sum.P50 = v
		case 0.9:
			sum.P90 = v
		case 0.95:
			sum.P95 = v
		case 0.99:
			sum.P99 = v
		}
	}
	return sum
}

// Quantiles returns the tracked quantiles in construction order.
func (s *Sketch) Quantiles() []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s.qs...)
}

// Render writes a one-line human-readable summary.
func (s *Sketch) Render(w io.Writer, label string) {
	sum := s.Summary()
	fmt.Fprintf(w, "%s: n=%d mean=%.3g p50=%.3g p90=%.3g p95=%.3g p99=%.3g max=%.3g\n",
		label, sum.Count, sum.Mean, sum.P50, sum.P90, sum.P95, sum.P99, sum.Max)
}
