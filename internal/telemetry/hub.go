package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Metric is one sample exposed on /metrics. Type is "counter" or
// "gauge" (Prometheus text exposition types).
type Metric struct {
	Name   string
	Help   string
	Type   string
	Labels map[string]string
	Value  float64
}

// Counter and Gauge build a Metric of the respective type.
func Counter(name, help string, value float64, labels map[string]string) Metric {
	return Metric{Name: name, Help: help, Type: "counter", Labels: labels, Value: value}
}

func Gauge(name, help string, value float64, labels map[string]string) Metric {
	return Metric{Name: name, Help: help, Type: "gauge", Labels: labels, Value: value}
}

// Source supplies the current metric samples for a scrape. The engine
// implements this; the hub polls it on every /metrics request.
type Source interface {
	TelemetryMetrics() []Metric
}

// Hub is the live ops endpoint: an HTTP server exposing Prometheus-text
// /metrics, expvar /debug/vars, /debug/pprof, and the flight-recorder
// tail at /events. A Hub outlives individual runs — SetSource swaps in
// the current run's engine, so a bench sweeping many configurations
// serves whichever run is live.
type Hub struct {
	mu  sync.Mutex
	src Source
	rec *Recorder

	srv *http.Server
	ln  net.Listener
}

// NewHub returns an unstarted hub.
func NewHub() *Hub { return &Hub{} }

// SetSource installs (or replaces) the metric source. Nil-safe.
func (h *Hub) SetSource(src Source) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.src = src
	h.mu.Unlock()
}

// SetRecorder installs the flight recorder served at /events. Nil-safe.
func (h *Hub) SetRecorder(rec *Recorder) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.rec = rec
	h.mu.Unlock()
}

// Recorder returns the installed flight recorder (nil when none, or on a
// nil hub) so callers can share one ring between the hub and the engine.
func (h *Hub) Recorder() *Recorder {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rec
}

// Handler returns the hub's mux. The pprof handlers are registered on
// this mux explicitly rather than on http.DefaultServeMux, so importing
// this package does not pollute the global mux.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.serveMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/events", h.serveEvents)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "dbproc telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n/events?n=100\n")
	})
	return mux
}

// ListenAndServe binds addr (":0" picks a free port), prints the bound
// address to stderr in a greppable form, and serves in the background.
// Returns the bound address.
func (h *Hub) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	h.ln = ln
	h.srv = &http.Server{Handler: h.Handler(), ReadHeaderTimeout: 5 * time.Second}
	srv := h.srv
	h.mu.Unlock()
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "telemetry: listening on http://%s\n", bound)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "telemetry: serve: %v\n", err)
		}
	}()
	return bound, nil
}

// Close shuts the server down, waiting briefly for in-flight requests.
func (h *Hub) Close() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	srv := h.srv
	h.srv = nil
	h.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func (h *Hub) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	src, rec := h.src, h.rec
	h.mu.Unlock()

	ms := []Metric{
		Gauge("dbproc_up", "Whether the dbproc telemetry hub is serving.", 1, nil),
		Gauge("dbproc_goroutines", "Goroutines in the process.", float64(runtime.NumGoroutine()), nil),
	}
	if rec != nil {
		ms = append(ms, Counter("dbproc_flight_events_total",
			"Events recorded by the flight recorder (including overwritten).",
			float64(rec.Len()), nil))
	}
	if src != nil {
		ms = append(ms, src.TelemetryMetrics()...)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, ms)
}

// WriteMetrics renders samples in Prometheus text exposition format,
// grouped by metric name with one HELP/TYPE header per family.
func WriteMetrics(w interface{ Write([]byte) (int, error) }, ms []Metric) {
	byName := map[string][]Metric{}
	var names []string
	for _, m := range ms {
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := byName[name]
		if fam[0].Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, fam[0].Help)
		}
		if fam[0].Type != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, fam[0].Type)
		}
		for _, m := range fam {
			fmt.Fprintf(w, "%s%s %s\n", name, formatLabels(m.Labels),
				strconv.FormatFloat(m.Value, 'g', -1, 64))
		}
	}
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// serveEvents streams the flight-recorder tail as JSONL: the dump header
// then the newest events. ?n=K limits the tail to the last K events.
func (h *Hub) serveEvents(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	rec := h.rec
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/jsonl")
	// Buffer the tail so a large ring streams in full writes and the
	// final line is flushed before the handler returns (an unbuffered
	// encoder on a hijacked/slow connection could truncate the tail).
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	if rec == nil {
		json.NewEncoder(bw).Encode(FlightRecord{Type: RecordFlight, Reason: "tail", Events: 0})
		return
	}
	events, dropped := rec.Snapshot()
	if s := r.URL.Query().Get("n"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
			dropped += int64(len(events) - n)
			events = events[len(events)-n:]
		}
	}
	enc := json.NewEncoder(bw)
	enc.Encode(FlightRecord{
		Type:        RecordFlight,
		Reason:      "tail",
		Events:      len(events),
		Dropped:     dropped,
		StartUnixNs: rec.start.UnixNano(),
	})
	for _, ev := range events {
		enc.Encode(EventRecord{Type: RecordEvent, Event: ev})
	}
}
