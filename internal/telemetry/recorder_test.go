package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: EvOpBegin})
	r.Op(EvOpCommit, 1, 2, "x", 0, 0)
	r.VlogEvent(EvVlogFlip, 3, "")
	r.SetAutoDumpWriter(nil)
	r.SetAutoDumpFile("")
	if r.Len() != 0 {
		t.Fatal("nil recorder Len != 0")
	}
	if evs, dropped := r.Snapshot(); evs != nil || dropped != 0 {
		t.Fatal("nil recorder Snapshot not empty")
	}
	if err := r.DumpJSONL(&bytes.Buffer{}, "x"); err != nil {
		t.Fatal(err)
	}
	r.Timeline(&bytes.Buffer{})
}

func TestRecorderSnapshotOrderAndWrap(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Op(EvOpCommit, i%4, i, "op", 0, 0)
	}
	events, dropped := r.Snapshot()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want 16", len(events))
	}
	if dropped != 24 {
		t.Fatalf("dropped = %d, want 24", dropped)
	}
	for i, ev := range events {
		if ev.I != int64(24+i) {
			t.Fatalf("event %d has index %d, want %d", i, ev.I, 24+i)
		}
		if ev.Seq != 24+i {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, 24+i)
		}
	}
	if r.Len() != 40 {
		t.Fatalf("Len = %d, want 40", r.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Op(EvLockAcquire, w, i, "lock:r1", int64(i), 0)
				if i%10 == 0 {
					r.Snapshot() // readers race writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", r.Len(), writers*per)
	}
	events, _ := r.Snapshot()
	if len(events) != 128 {
		t.Fatalf("retained %d, want 128", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].I <= events[i-1].I {
			t.Fatalf("snapshot not strictly ordered at %d", i)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	r.Op(EvOpBegin, 0, -1, "query", 0, 0)
	r.Op(EvLockAcquire, 0, -1, "rel:r1", 1500, 0)
	r.Op(EvOpCommit, 0, 7, "query", 0, 2500)
	r.Record(Event{Kind: EvViolation, Session: -1, Seq: -1, Detail: "no serial order", Seqs: []int{5, 7}})

	var buf bytes.Buffer
	if err := r.DumpJSONL(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Headers) != 1 || d.Headers[0].Reason != "test" || d.Headers[0].Events != 4 {
		t.Fatalf("header = %+v", d.Headers)
	}
	if len(d.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(d.Events))
	}
	if d.Events[1].Kind != EvLockAcquire || d.Events[1].WaitNs != 1500 {
		t.Fatalf("lock event = %+v", d.Events[1])
	}
	v := d.Violations()
	if len(v) != 1 || len(v[0].Seqs) != 2 || v[0].Seqs[1] != 7 {
		t.Fatalf("violations = %+v", v)
	}
	// Sessions and seqs survive as -1, not 0.
	if d.Events[0].Seq != -1 || v[0].Session != -1 {
		t.Fatalf("n/a fields lost: %+v %+v", d.Events[0], v[0])
	}
}

func TestReadDumpSkipsUnknownTypes(t *testing.T) {
	in := `{"type":"span","name":"x"}
{"type":"flight","reason":"tail","events":1}

{"type":"event","i":0,"t_ns":5,"kind":"op.commit","session":1,"seq":2}
{"type":"contention","run":"ci","locks":[{"name":"rel:r1","acquires":3,"wait_share":1}]}
{"type":"run","strategy":"ci"}`
	d, err := ReadDump(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Headers) != 1 || len(d.Events) != 1 || len(d.Contention) != 1 {
		t.Fatalf("parsed %d/%d/%d", len(d.Headers), len(d.Events), len(d.Contention))
	}
	if d.Contention[0].Locks[0].Name != "rel:r1" {
		t.Fatalf("contention = %+v", d.Contention[0])
	}
}

func TestAutoDumpOnTriggerKinds(t *testing.T) {
	r := NewRecorder(32)
	var buf bytes.Buffer
	r.SetAutoDumpWriter(&buf)
	r.Op(EvOpCommit, 0, 0, "q", 0, 0)
	if buf.Len() != 0 {
		t.Fatal("non-trigger kind dumped")
	}
	r.Record(Event{Kind: EvWatchdog, Session: -1, Seq: -1, Detail: "stall"})
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Headers) != 1 || d.Headers[0].Reason != EvWatchdog {
		t.Fatalf("header = %+v", d.Headers)
	}
	if len(d.Events) != 2 {
		t.Fatalf("events = %d, want 2 (commit + watchdog)", len(d.Events))
	}
}

func TestAutoDumpFileAndVlogAdapter(t *testing.T) {
	r := NewRecorder(32)
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r.SetAutoDumpFile(path)
	r.VlogEvent(EvVlogFlip, 3, "")
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("dump file created before any trigger")
	}
	r.VlogEvent(EvVlogFault, 3, "device dead after 2 writes")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("auto-dump file: %v", err)
	}
	defer f.Close()
	d, err := ReadDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Headers[0].Reason != EvVlogFault {
		t.Fatalf("reason = %q", d.Headers[0].Reason)
	}
	if len(d.Events) != 2 || d.Events[0].Kind != EvVlogFlip || d.Events[1].Detail != "device dead after 2 writes" {
		t.Fatalf("events = %+v", d.Events)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder(32)
	r.Op(EvLockAcquire, 2, -1, "rel:r1", 1500000, 0)
	r.Op(EvOpCommit, 2, 9, "update", 0, 300000)
	var buf bytes.Buffer
	r.Timeline(&buf)
	out := buf.String()
	for _, want := range []string{"2 events retained", "lock.acquire", "rel:r1", "wait=1.5ms", "hold=300", "op.commit"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}

	// mark flags matching rows with '*'.
	events, dropped := r.Snapshot()
	buf.Reset()
	WriteTimeline(&buf, events, dropped, func(ev Event) bool { return ev.Seq == 9 })
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "*") {
		t.Fatalf("marked row not flagged: %q", last)
	}
}

func TestRenderContention(t *testing.T) {
	rec := ContentionRecord{
		Type: RecordContention,
		Run:  "ci/model1",
		Locks: []LockContentionJSON{
			{Name: "rel:r1", Acquires: 100, Contended: 40, WaitMs: 12.5, HoldMs: 3.25, MaxWaitUs: 900, WaitShare: 0.8},
			{Name: "cache:000017", Acquires: 60, Contended: 5, WaitMs: 3.1, HoldMs: 1.0, MaxWaitUs: 200, WaitShare: 0.2},
		},
	}
	var buf bytes.Buffer
	RenderContention(&buf, rec, 1)
	out := buf.String()
	if !strings.Contains(out, "top 1 of 2") || !strings.Contains(out, "rel:r1") {
		t.Fatalf("render:\n%s", out)
	}
	if strings.Contains(out, "cache:000017") {
		t.Fatalf("topK not honored:\n%s", out)
	}
	buf.Reset()
	RenderContention(&buf, rec, 0)
	if !strings.Contains(buf.String(), "cache:000017") {
		t.Fatalf("topK=0 should render all:\n%s", buf.String())
	}
}
