package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Thresholds configures the always-on detectors. A zero threshold
// disables that detector; DefaultThresholds gives the documented
// production set.
type Thresholds struct {
	// P99WallNs fires the latency detector when the running p99
	// operation wall time (nanoseconds) exceeds it.
	P99WallNs float64
	// ContentionShare fires when lock-wait time exceeds this fraction
	// of total operation wall time.
	ContentionShare float64
	// WastedWorkRatio fires when the ledger's wasted compute exceeds
	// this fraction of all cache-compute cost.
	WastedWorkRatio float64
	// ServedP99Ns fires the served-path SLO detector when a request
	// type's p99 service time (nanoseconds, measured dispatch to
	// response build on the server) exceeds it.
	ServedP99Ns float64
}

// DefaultThresholds returns the standard detector configuration:
// p99 above 50ms, more than half of wall time spent waiting on locks,
// more than half of cache-compute cost wasted, or a served request
// type's p99 above 250ms.
func DefaultThresholds() Thresholds {
	return Thresholds{P99WallNs: 50e6, ContentionShare: 0.5, WastedWorkRatio: 0.5, ServedP99Ns: 250e6}
}

// Detectors evaluates the thresholds against live run statistics and,
// on first breach, records an EvDetector event — which triggers the
// flight recorder's auto-dump, turning the anomaly into a post-mortem.
// Each detector fires at most once per run. Nil-safe: a nil *Detectors
// ignores every check.
type Detectors struct {
	th  Thresholds
	rec *Recorder

	latencyFired    atomic.Bool
	contentionFired atomic.Bool
	wastedFired     atomic.Bool
	servedFired     atomic.Bool
}

// NewDetectors builds a detector set recording through rec (which may
// be nil; events are then dropped but firing state still latches).
func NewDetectors(th Thresholds, rec *Recorder) *Detectors {
	return &Detectors{th: th, rec: rec}
}

func (d *Detectors) fire(latch *atomic.Bool, name, detail string) {
	if latch.CompareAndSwap(false, true) {
		d.rec.Record(Event{Kind: EvDetector, Session: -1, Seq: -1, Name: name, Detail: detail})
	}
}

// CheckLatency tests the running p99 operation wall time (ns).
func (d *Detectors) CheckLatency(p99Ns float64) {
	if d == nil || d.th.P99WallNs <= 0 || p99Ns <= d.th.P99WallNs {
		return
	}
	d.fire(&d.latencyFired, "p99_latency",
		fmt.Sprintf("p99 op wall %.2fms exceeds %.2fms", p99Ns/1e6, d.th.P99WallNs/1e6))
}

// CheckContention tests cumulative lock-wait against cumulative wall time.
func (d *Detectors) CheckContention(waitNs, wallNs int64) {
	if d == nil || d.th.ContentionShare <= 0 || wallNs <= 0 {
		return
	}
	share := float64(waitNs) / float64(wallNs)
	if share <= d.th.ContentionShare {
		return
	}
	d.fire(&d.contentionFired, "contention_share",
		fmt.Sprintf("lock-wait share %.2f exceeds %.2f (%dns of %dns)", share, d.th.ContentionShare, waitNs, wallNs))
}

// CheckWastedWork tests the ledger's wasted compute cost against all
// compute cost (simulated milliseconds).
func (d *Detectors) CheckWastedWork(wastedMs, computeMs float64) {
	if d == nil || d.th.WastedWorkRatio <= 0 || computeMs <= 0 {
		return
	}
	ratio := wastedMs / computeMs
	if ratio <= d.th.WastedWorkRatio {
		return
	}
	d.fire(&d.wastedFired, "wasted_work",
		fmt.Sprintf("wasted-work ratio %.2f exceeds %.2f (%.1fms of %.1fms)", ratio, d.th.WastedWorkRatio, wastedMs, computeMs))
}

// CheckServedLatency tests one request type's running p99 service time
// (ns) against the served-path SLO.
func (d *Detectors) CheckServedLatency(reqType string, p99Ns float64) {
	if d == nil || d.th.ServedP99Ns <= 0 || p99Ns <= d.th.ServedP99Ns {
		return
	}
	d.fire(&d.servedFired, "served_p99",
		fmt.Sprintf("served %s p99 %.2fms exceeds %.2fms", reqType, p99Ns/1e6, d.th.ServedP99Ns/1e6))
}
