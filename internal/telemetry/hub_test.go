package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type staticSource []Metric

func (s staticSource) TelemetryMetrics() []Metric { return s }

func TestHubMetricsEndpoint(t *testing.T) {
	h := NewHub()
	h.SetRecorder(NewRecorder(16))
	h.Recorder().Op(EvOpCommit, 0, 0, "q", 0, 0)
	h.SetSource(staticSource{
		Counter("dbproc_ops_committed_total", "Committed ops.", 42, nil),
		Counter("dbproc_lock_wait_seconds_total", "Lock wait.", 0.5, map[string]string{"lock": "rel:r1"}),
		Counter("dbproc_lock_wait_seconds_total", "Lock wait.", 0.25, map[string]string{"lock": `we"ird\`}),
	})
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE dbproc_up gauge",
		"dbproc_up 1",
		"dbproc_goroutines ",
		"dbproc_flight_events_total 1",
		"# HELP dbproc_ops_committed_total Committed ops.",
		"dbproc_ops_committed_total 42",
		`dbproc_lock_wait_seconds_total{lock="rel:r1"} 0.5`,
		`dbproc_lock_wait_seconds_total{lock="we\"ird\\"} 0.25`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// One TYPE header per family even with several label sets.
	if n := strings.Count(body, "# TYPE dbproc_lock_wait_seconds_total"); n != 1 {
		t.Errorf("TYPE header appears %d times", n)
	}
}

func TestHubEventsEndpoint(t *testing.T) {
	h := NewHub()
	rec := NewRecorder(64)
	h.SetRecorder(rec)
	for i := 0; i < 10; i++ {
		rec.Op(EvOpCommit, i%2, i, "q", 0, 0)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	d, err := ReadDump(strings.NewReader(get(t, srv.URL+"/events")))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 10 || d.Headers[0].Reason != "tail" {
		t.Fatalf("tail: %d events, header %+v", len(d.Events), d.Headers)
	}

	d, err = ReadDump(strings.NewReader(get(t, srv.URL+"/events?n=3")))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 3 || d.Events[0].Seq != 7 {
		t.Fatalf("n=3 tail: %+v", d.Events)
	}
	if d.Headers[0].Dropped != 7 {
		t.Fatalf("n=3 dropped = %d, want 7", d.Headers[0].Dropped)
	}
}

func TestHubEventsWithoutRecorder(t *testing.T) {
	srv := httptest.NewServer(NewHub().Handler())
	defer srv.Close()
	d, err := ReadDump(strings.NewReader(get(t, srv.URL+"/events")))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Headers) != 1 || d.Headers[0].Events != 0 {
		t.Fatalf("header = %+v", d.Headers)
	}
}

func TestHubDebugEndpointsAndIndex(t *testing.T) {
	srv := httptest.NewServer(NewHub().Handler())
	defer srv.Close()
	if body := get(t, srv.URL+"/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats")
	}
	if body := get(t, srv.URL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ missing goroutine profile link")
	}
	if body := get(t, srv.URL+"/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index missing /metrics")
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", resp.StatusCode)
	}
}

func TestHubListenAndServeClose(t *testing.T) {
	h := NewHub()
	addr, err := h.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	body := get(t, fmt.Sprintf("http://%s/metrics", addr))
	if !strings.Contains(body, "dbproc_up 1") {
		t.Fatalf("live /metrics:\n%s", body)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var nilHub *Hub
	if err := nilHub.Close(); err != nil {
		t.Fatal(err)
	}
	nilHub.SetSource(nil)
	nilHub.SetRecorder(nil)
	if nilHub.Recorder() != nil {
		t.Fatal("nil hub Recorder != nil")
	}
}

func TestWriteMetricsGrouping(t *testing.T) {
	var buf bytes.Buffer
	WriteMetrics(&buf, []Metric{
		Gauge("b_metric", "B.", 2, nil),
		Counter("a_metric", "A.", 1, map[string]string{"x": "1"}),
		Counter("a_metric", "", 3, map[string]string{"x": "2"}),
	})
	out := buf.String()
	// Families sorted by name, samples kept in insertion order.
	if !strings.Contains(out, "# HELP a_metric A.\n# TYPE a_metric counter\na_metric{x=\"1\"} 1\na_metric{x=\"2\"} 3\n") {
		t.Fatalf("grouping:\n%s", out)
	}
	if strings.Index(out, "a_metric") > strings.Index(out, "b_metric") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

// TestHubContentTypes pins the Content-Type of every hand-written
// handler: Prometheus text on /metrics, JSONL on /events, plain text on
// the index. A missing header makes Go sniff the body, which misreports
// JSONL tails as text/plain and breaks strict scrapers.
func TestHubContentTypes(t *testing.T) {
	h := NewHub()
	h.SetRecorder(NewRecorder(16))
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	for _, tc := range []struct{ path, want string }{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/events", "application/jsonl"},
		{"/", "text/plain; charset=utf-8"},
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != tc.want {
			t.Errorf("GET %s Content-Type = %q, want %q", tc.path, ct, tc.want)
		}
	}
}

// TestHubEventsTailComplete verifies the /events body arrives as
// complete JSONL: every line (including the last) parses on its own and
// the body ends with a newline — the buffered writer must flush the
// final event before the handler returns.
func TestHubEventsTailComplete(t *testing.T) {
	h := NewHub()
	rec := NewRecorder(256)
	h.SetRecorder(rec)
	for i := 0; i < 200; i++ {
		rec.Op(EvOpCommit, i%4, i, "q", int64(i), 0)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	body := get(t, srv.URL+"/events")
	if !strings.HasSuffix(body, "\n") {
		t.Fatalf("body does not end in newline: %q", body[len(body)-40:])
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 201 { // header + 200 events
		t.Fatalf("got %d lines, want 201", len(lines))
	}
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
