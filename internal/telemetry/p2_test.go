package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dbproc/internal/obs"
)

// exactQuantile returns the ceil-rank empirical quantile of sorted s.
func exactQuantile(s []float64, q float64) float64 {
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

func TestP2AgainstExactQuantiles(t *testing.T) {
	dists := map[string]struct {
		gen func(r *rand.Rand) float64
		qs  []float64
	}{
		"uniform":     {func(r *rand.Rand) float64 { return r.Float64() * 1000 }, []float64{0.5, 0.9, 0.95, 0.99}},
		"exponential": {func(r *rand.Rand) float64 { return r.ExpFloat64() * 50 }, []float64{0.5, 0.9, 0.95, 0.99}},
		// P² is known to misestimate a quantile sitting exactly on a bimodal
		// mode boundary (here p90 = the 10% split), so probe inside the modes.
		"bimodal": {func(r *rand.Rand) float64 {
			if r.Intn(10) == 0 {
				return 500 + r.Float64()*100
			}
			return 10 + r.Float64()*5
		}, []float64{0.5, 0.99}},
	}
	for name, dist := range dists {
		gen := dist.gen
		for _, q := range dist.qs {
			r := rand.New(rand.NewSource(7))
			p := NewP2(q)
			samples := make([]float64, 0, 100000)
			for i := 0; i < 100000; i++ {
				v := gen(r)
				p.Observe(v)
				samples = append(samples, v)
			}
			sort.Float64s(samples)
			exact := exactQuantile(samples, q)
			got := p.Value()
			// P² is an estimator: allow 5% relative error (plus an absolute
			// floor for near-zero exponential medians).
			tol := 0.05*math.Abs(exact) + 0.5
			if math.Abs(got-exact) > tol {
				t.Errorf("%s p%g: P2=%v exact=%v (tol %v)", name, 100*q, got, exact, tol)
			}
		}
	}
}

func TestP2SmallCounts(t *testing.T) {
	p := NewP2(0.5)
	if got := p.Value(); got != 0 {
		t.Fatalf("empty P2.Value() = %v, want 0", got)
	}
	p.Observe(42)
	if got := p.Value(); got != 42 {
		t.Fatalf("single-sample P2.Value() = %v, want 42", got)
	}
	p.Observe(10)
	p.Observe(99)
	// 3 samples, median is the rank-2 value.
	if got := p.Value(); got != 42 {
		t.Fatalf("3-sample median = %v, want 42", got)
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3", p.Count())
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

// TestSketchWithinHistogramBound is the cross-check required by ISSUE 4:
// on 1e5 seeded samples, each P² estimate must respect the bounded-bucket
// histogram's guarantee — obs.Histogram.Quantile returns an *upper bound*
// (bucket upper edge clamped to max), so the sketch estimate must not
// exceed it by more than estimator noise, and must sit above the bucket's
// lower edge.
func TestSketchWithinHistogramBound(t *testing.T) {
	r := rand.New(rand.NewSource(1988))
	s := NewSketch()
	h := obs.NewHistogram(nil)
	samples := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		// Latency-shaped: lognormal-ish spread across several 1-2-5 decades.
		v := math.Exp(r.NormFloat64()*1.2 + 3.5)
		s.Observe(v)
		h.Observe(v)
		samples = append(samples, v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		sk := s.Quantile(q)
		hb := h.Quantile(q)
		exact := exactQuantile(samples, q)
		if sk > hb*1.02 {
			t.Errorf("p%g: sketch %v exceeds histogram upper bound %v", 100*q, sk, hb)
		}
		if rel := math.Abs(sk-exact) / exact; rel > 0.05 {
			t.Errorf("p%g: sketch %v vs exact %v (rel err %.3f > 0.05)", 100*q, sk, exact, rel)
		}
	}
}

func TestSketchSummaryAndNil(t *testing.T) {
	var nilSketch *Sketch
	nilSketch.Observe(1) // must not panic
	if got := nilSketch.Quantile(0.5); got != 0 {
		t.Fatalf("nil sketch Quantile = %v", got)
	}
	if got := nilSketch.Summary(); got != (SketchSummary{}) {
		t.Fatalf("nil sketch Summary = %+v", got)
	}
	if nilSketch.Count() != 0 || nilSketch.Quantiles() != nil {
		t.Fatalf("nil sketch Count/Quantiles not zero")
	}

	s := NewSketch()
	if got := s.Summary(); got != (SketchSummary{}) {
		t.Fatalf("empty sketch Summary = %+v", got)
	}
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	sum := s.Summary()
	if sum.Count != 100 || sum.Min != 1 || sum.Max != 100 {
		t.Fatalf("Summary = %+v", sum)
	}
	if math.Abs(sum.Mean-50.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 50.5", sum.Mean)
	}
	if sum.P50 < 40 || sum.P50 > 60 {
		t.Fatalf("P50 = %v, want ~50", sum.P50)
	}
	if sum.P99 < 90 || sum.P99 > 100 {
		t.Fatalf("P99 = %v, want ~99", sum.P99)
	}
	if got := s.Quantile(0.123); got != 0 {
		t.Fatalf("untracked quantile = %v, want 0", got)
	}

	var b strings.Builder
	s.Render(&b, "wall ns")
	if !strings.Contains(b.String(), "wall ns: n=100") {
		t.Fatalf("Render output %q", b.String())
	}
}

func TestSketchCustomQuantiles(t *testing.T) {
	s := NewSketch(0.25, 0.75)
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i))
	}
	if got := s.Quantile(0.25); math.Abs(got-250) > 25 {
		t.Fatalf("p25 = %v", got)
	}
	if got := s.Quantile(0.75); math.Abs(got-750) > 25 {
		t.Fatalf("p75 = %v", got)
	}
	qs := s.Quantiles()
	if len(qs) != 2 || qs[0] != 0.25 || qs[1] != 0.75 {
		t.Fatalf("Quantiles = %v", qs)
	}
	// Summary only fills the default fields; custom quantiles read zero.
	if sum := s.Summary(); sum.P50 != 0 || sum.Count != 1000 {
		t.Fatalf("Summary = %+v", sum)
	}
}
